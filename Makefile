GO ?= go

.PHONY: all build vet test race check bench faults clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The pre-merge gate: everything must compile, vet clean, and pass the
# full suite under the race detector (the DES kernel's strict-handoff
# scheduling is -race clean by design).
check: build vet race

bench:
	$(GO) test -bench=. -benchmem

# Regenerate the fault-injection outcome matrix (robustness extension).
faults:
	$(GO) run ./cmd/ninjabench -run=ext-faults

clean:
	$(GO) clean ./...
