#!/bin/sh
# ninjad crash-recovery smoke: start the daemon, submit an evacuation,
# kill -9 the process, restart it on the same state directory, and verify
# the accepted directive still runs to completion — no job lost. Finish
# with a SIGTERM drain to prove clean shutdown. Run from anywhere inside
# the repository.
set -eu
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
BIN="$TMP/ninjad"
STATE="$TMP/state"
ADDRFILE="$TMP/addr"
NINJAD_PID=""
cleanup() {
    [ -n "$NINJAD_PID" ] && kill -9 "$NINJAD_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/ninjad

wait_addr() {
    i=0
    while [ ! -s "$ADDRFILE" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "ninjad-smoke: daemon never bound" >&2; exit 1; }
        sleep 0.1
    done
    ADDR=$(cat "$ADDRFILE")
}

wait_done() {
    # $1 = job id; polls until the job is terminal, fails unless done.
    i=0
    while :; do
        state=$(curl -sf "http://$ADDR/jobs/$1" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')
        case "$state" in
        done) return 0 ;;
        failed | cancelled)
            echo "ninjad-smoke: job $1 ended $state" >&2
            curl -sf "http://$ADDR/jobs/$1" >&2
            exit 1
            ;;
        esac
        i=$((i + 1))
        [ "$i" -gt 300 ] && { echo "ninjad-smoke: job $1 stuck in '$state'" >&2; exit 1; }
        sleep 0.1
    done
}

# First incarnation: accept the directive, then die without warning.
"$BIN" -addr 127.0.0.1:0 -addr-file "$ADDRFILE" -state-dir "$STATE" >"$TMP/log1" 2>&1 &
NINJAD_PID=$!
wait_addr
curl -sf -d '{"id":"smoke-evac","directive":{"kind":"evacuate","placement":"swap","batched":true,"cap":4,"jobs":2,"vms_per_job":1}}' \
    "http://$ADDR/jobs" >/dev/null
kill -9 "$NINJAD_PID"
wait "$NINJAD_PID" 2>/dev/null || true
NINJAD_PID=""
[ -f "$STATE/smoke-evac.json" ] || { echo "ninjad-smoke: accepted job not on disk after kill -9" >&2; exit 1; }

# Second incarnation on the same state directory: the job must recover
# and complete, whatever lifecycle state the crash caught it in.
rm -f "$ADDRFILE"
"$BIN" -addr 127.0.0.1:0 -addr-file "$ADDRFILE" -state-dir "$STATE" >"$TMP/log2" 2>&1 &
NINJAD_PID=$!
wait_addr
wait_done smoke-evac
curl -sf "http://$ADDR/jobs/smoke-evac/events" | grep -q '"kind": *"done"' ||
    { echo "ninjad-smoke: event trail missing terminal mark" >&2; exit 1; }

# Clean SIGTERM drain.
kill -TERM "$NINJAD_PID"
i=0
while kill -0 "$NINJAD_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "ninjad-smoke: daemon ignored SIGTERM" >&2; exit 1; }
    sleep 0.1
done
wait "$NINJAD_PID" 2>/dev/null || { echo "ninjad-smoke: drain exited nonzero" >&2; exit 1; }
NINJAD_PID=""
grep -q "drained cleanly" "$TMP/log2" || { echo "ninjad-smoke: no clean-drain log line" >&2; exit 1; }
echo "ninjad-smoke: ok (accepted directive survived kill -9 and completed after restart)"
