#!/bin/sh
# Bench-regression gate: runs the paper benchmarks at -benchtime 1x and
# compares every deterministic sim-* metric — plus the farm-* Monte Carlo
# sweep aggregates, churn-* policy costs, seq-* sequencer predictions and
# rdma-* QP-replay ladder observables —
# against the committed baseline (scripts/bench_baseline.json) via
# cmd/benchdiff. Wall-clock metrics (ns/op, events/sec, runs/sec) are
# informational only and never compared.
#
# Usage:
#   scripts/bench.sh            # full suite; writes BENCH_<date>.json
#   scripts/bench.sh --smoke    # fast subset (Table 2 / Fig 6 / ablations)
#   scripts/bench.sh --update   # intentionally re-baseline after a change
#
# Exits non-zero if any sim-*/farm-* metric drifts beyond 1e-6 relative.
set -eu
cd "$(dirname "$0")/.."

mode="${1:-}"
pattern='Benchmark'
diffargs=""
case "$mode" in
--smoke)
    # Subset chosen for coverage per second: hotplug+link-up, the
    # migration-time sweep, and the single-shot ablations. ~2 s total.
    pattern='BenchmarkTable2HotplugLinkup|BenchmarkFig6MemtestOverhead|BenchmarkAblation'
    ;;
--update)
    diffargs="-update"
    ;;
"") ;;
*)
    echo "usage: scripts/bench.sh [--smoke|--update]" >&2
    exit 2
    ;;
esac

out=$(mktemp)
trap 'rm -f "$out"' EXIT
go test -run '^$' -bench "$pattern" -benchtime 1x . | tee "$out"

if [ "$mode" = "" ]; then
    diffargs="-write BENCH_$(date +%F).json"
fi
# shellcheck disable=SC2086
go run ./cmd/benchdiff $diffargs <"$out"
