#!/bin/sh
# Pre-merge gate, equivalent to `make check`: formatting + build + vet +
# race-enabled full test suite + a fast fleet-evacuation smoke run. Run
# from anywhere inside the repository.
set -eux
cd "$(dirname "$0")/.."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
go build ./...
go vet ./...
go test -race ./...
# Smoke the fleet control plane end to end (small fleet, ~1 s). The
# matrix includes the rolling-maintenance drain and the bidirectional
# return-home rows. Exercise both kernel backends.
go run ./cmd/ninjabench -run=ext-fleet -fleet-jobs=3 -fleet-drain-cap=2 >/dev/null
go run ./cmd/ninjabench -run=ext-fleet -fleet-jobs=3 -fleet-drain-cap=2 -kernel=wheel >/dev/null
# ...and the time-expanded max-flow sequencing matrix (the alternate
# planner drives the same executor through merged rounds).
go run ./cmd/ninjabench -run=ext-fleet -fleet-jobs=3 -fleet-drain-cap=2 -fleet-seq=maxflow >/dev/null
# RDMA-native ladder smoke under the race detector: every rung (clean QP
# replay, the three injected demotions, the preflight demotion and the
# hotplug baseline) on a 2-VM deployment.
go run -race ./cmd/ninjabench -run=ext-rdma >/dev/null
# Monte Carlo sweep smoke under the race detector: 5×3×2 = 30 cells run
# twice (parallelism 1 and 8) with the byte-identity check — 60 runs, just
# under the 64-run budget; a nondeterministic summary or a data race in
# the farm's worker pool fails here.
go run -race ./cmd/ninjabench -run=ext-sweep -sweep-jobs=2 -sweep-seeds=2 >/dev/null
# Online churn smoke under the race detector: the full policy × fault
# matrix (greedy vs destination-swap, fault free and through a node
# crash) on a reduced arrival count; the engine's mini-plan pipeline and
# fault injection run on the shared kernel here.
go run -race ./cmd/ninjabench -run=ext-churn -churn-jobs=24 >/dev/null
# Bench-regression smoke: deterministic sim-* metrics vs the committed
# baseline (full sweep: scripts/bench.sh).
sh scripts/bench.sh --smoke >/dev/null
# ninjad crash-recovery smoke: submit a directive, kill -9 the daemon
# mid-lifecycle, restart it on the same state directory, and verify the
# job still completes — then drain cleanly on SIGTERM.
sh scripts/ninjad-smoke.sh
