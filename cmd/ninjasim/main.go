// Command ninjasim runs a single configurable Ninja migration scenario on
// the simulated AGC testbed and prints the workload timeline plus the
// migration overhead breakdown.
//
// Examples:
//
//	ninjasim -vms=4 -ranks=8 -workload=bcast -steps=20 -migrate-step=5 -dst=eth
//	ninjasim -vms=8 -ranks=1 -workload=memtest -array-gb=8 -migrate-at=30 -dst=ib
//	ninjasim -vms=8 -ranks=8 -workload=CG -scale=0.1 -migrate-at=60 -dst=ib
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/ninja"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	nVMs := flag.Int("vms", 4, "number of VMs (1-8)")
	ranks := flag.Int("ranks", 1, "MPI ranks per VM")
	workload := flag.String("workload", "bcast", "bcast | memtest | BT | CG | FT | LU")
	steps := flag.Int("steps", 20, "iterations (bcast) / passes (memtest)")
	arrayGB := flag.Float64("array-gb", 2, "memtest array size per VM [GB]")
	scale := flag.Float64("scale", 0.1, "NPB iteration scale")
	migrateAt := flag.Float64("migrate-at", 30, "trigger time [s after start]; <0 disables")
	dst := flag.String("dst", "eth", "destination cluster: ib | eth")
	mode := flag.String("mode", "live", "transfer mechanism: live | cold (checkpoint/restart via NFS)")
	clr := flag.Bool("continue-like-restart", true, "set ompi_cr_continue_like_restart")
	faultPlan := flag.String("faults", "none",
		"fault plan: builtin name ("+strings.Join(faults.BuiltinNames(), ", ")+
			") or spec string like 'migrate-abort@60s:vm=vm00,pass=1'; enables retry policy. "+
			"@times are absolute simulated time (boot at 0; the run starts after ≈31s of link training)")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "ninjasim:", err)
		os.Exit(1)
	}

	// Ctrl-C / SIGTERM stop the simulation cooperatively: the workload
	// iteration hooks check ctx and halt the kernel at the current event,
	// so the process exits cleanly instead of spinning through the rest of
	// the run (memtest has no iteration hook and runs to completion).
	ctx, cancelSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancelSignals()

	plan, err := faults.ParsePlan(*faultPlan)
	if err != nil {
		die(err)
	}

	d, err := experiments.Deploy(experiments.DeployConfig{
		NVMs: *nVMs, RanksPerVM: *ranks, AttachHCA: true,
		DstHasIB: strings.EqualFold(*dst, "ib"), ContinueLikeRestart: *clr,
	})
	if err != nil {
		die(err)
	}

	if !plan.Empty() {
		// Faulty runs get the resilient orchestrator: bounded phases,
		// retries, degradation to TCP, spare destinations.
		pol := ninja.DefaultRetryPolicy()
		spares := scheduler.NewSpares(d.Dst.Nodes[*nVMs:]...)
		d.Orch = ninja.New(d.Job, ninja.Options{Retry: &pol, Spares: spares})
		inj := faults.NewInjector(d.K, plan, faults.Env{
			VMs: d.VMs, Nodes: d.DstNodes(*nVMs), Store: d.NFS,
			Log: func(kind, subject, detail string) {
				d.Orch.Events().Record(metrics.EventFaultInjected, kind, subject, detail)
			},
		})
		if err := inj.Arm(); err != nil {
			die(err)
		}
	}

	// checkpoint is the cooperative cancellation point, called from the
	// iteration hooks (inside the kernel's single event loop, so no
	// synchronization is needed).
	checkpoint := func() {
		if ctx.Err() != nil {
			d.K.Stop()
		}
	}
	series := metrics.Series{Label: *workload}
	var w workloads.Workload
	switch strings.ToLower(*workload) {
	case "bcast":
		w = &workloads.BcastReduce{BytesPerNode: 8e9, Steps: *steps,
			StepDone: func(s int, e sim.Time) { series.Add(s+1, e); checkpoint() }}
	case "memtest":
		w = &workloads.Memtest{ArrayBytes: *arrayGB * 1e9, Passes: *steps}
	default:
		b, err := workloads.NPBClassD(strings.ToUpper(*workload))
		if err != nil {
			die(err)
		}
		b.Iterations = int(float64(b.Iterations) * *scale)
		if b.Iterations < 4 {
			b.Iterations = 4
		}
		b.IterDone = func(s int, e sim.Time) { series.Add(s+1, e); checkpoint() }
		w = b
	}

	appDone, err := workloads.Run(d.Job, w)
	if err != nil {
		die(err)
	}

	var rep ninja.Report
	var migErr error
	migrated := false
	if *migrateAt >= 0 {
		d.K.Go("driver", func(p *sim.Proc) {
			p.Sleep(sim.FromSeconds(*migrateAt))
			dsts := make([]*hw.Node, *nVMs)
			for i := range dsts {
				dsts[i] = d.Dst.Nodes[i]
			}
			var r ninja.Report
			var err error
			if strings.EqualFold(*mode, "cold") {
				r, err = d.Orch.ColdMigrate(p, dsts)
			} else {
				r, err = d.Orch.Migrate(p, dsts)
			}
			if err != nil && r.Outcome != ninja.OutcomeRolledBack {
				die(err)
			}
			rep, migErr = r, err
			migrated = true
		})
	}
	start := d.K.Now()
	d.K.Run()
	if ctx.Err() != nil && !appDone.Done() {
		fmt.Fprintf(os.Stderr, "ninjasim: interrupted at t=%.2fs (%d workload steps recorded)\n",
			d.K.Now().Seconds(), len(series.Points))
		os.Exit(130)
	}
	if !appDone.Done() {
		die(fmt.Errorf("workload did not finish (deadlock?)"))
	}

	fmt.Printf("workload %s on %d VMs × %d ranks finished in %.2fs\n",
		*workload, *nVMs, *ranks, (d.K.Now() - start).Seconds())
	if migrated {
		fmt.Printf("ninja migration → %s cluster: coordination %.2fs, detach %.2fs, migration %.2fs, attach %.2fs, link-up %.2fs, total %.2fs\n",
			*dst, rep.Coordination.Seconds(), rep.Detach.Seconds(), rep.Migration.Seconds(),
			rep.Attach.Seconds(), rep.Linkup.Seconds(), rep.Total.Seconds())
		if name, err := d.Job.Rank(0).TransportTo(d.Job.Size() - 1); err == nil {
			fmt.Printf("transport now: %s\n", name)
		}
		if !plan.Empty() {
			fmt.Printf("outcome: %s (retries %d, spares %d, degraded-to-tcp %d)\n",
				rep.Outcome, rep.Retries, rep.SparesUsed, rep.DegradedToTCP)
			if migErr != nil {
				fmt.Printf("orchestration error: %v\n", migErr)
			}
			for _, ev := range rep.Events {
				fmt.Println("  " + ev.String())
			}
		}
	}
	if len(series.Points) > 0 {
		fmt.Println()
		fmt.Println(series.Bars(50))
	}
}
