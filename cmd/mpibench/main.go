// Command mpibench runs IMB-style MPI microbenchmarks on the simulated
// testbed, optionally straddling a Ninja migration — the quickest way to
// see a deployment's communication profile change from openib to tcp and
// back.
//
// Examples:
//
//	mpibench -pattern=pingpong
//	mpibench -pattern=allreduce -vms=8 -ranks=8
//	mpibench -pattern=exchange -compare   # before vs after fallback
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// run measures the sweep. With tcpOnly the VMs boot without passthrough
// HCAs, so the job selects the tcp BTL — the transport it would be on
// after a fallback migration.
func run(pattern string, nVMs, ranks int, tcpOnly bool) ([]workloads.IMBResult, error) {
	d, err := experiments.Deploy(experiments.DeployConfig{
		NVMs: nVMs, RanksPerVM: ranks, AttachHCA: !tcpOnly,
		DstHasIB: false, ContinueLikeRestart: true,
	})
	if err != nil {
		return nil, err
	}
	bench := &workloads.IMB{Pattern: pattern}
	done, err := workloads.Run(d.Job, bench)
	if err != nil {
		return nil, err
	}
	d.K.Run()
	if !done.Done() {
		return nil, fmt.Errorf("benchmark did not finish")
	}
	return bench.Results, nil
}

func render(title string, rows []workloads.IMBResult) {
	t := metrics.NewTable(title, "bytes", "t_avg [µs]", "throughput [MB/s]")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.0f", r.Bytes),
			fmt.Sprintf("%.2f", float64(r.AvgTime)/float64(sim.Microsecond)),
			fmt.Sprintf("%.1f", r.Throughput/1e6))
	}
	fmt.Println(t)
}

func main() {
	pattern := flag.String("pattern", "pingpong", "pingpong | exchange | allreduce | bcast | alltoall")
	nVMs := flag.Int("vms", 2, "number of VMs")
	ranks := flag.Int("ranks", 1, "ranks per VM")
	compare := flag.Bool("compare", false, "also measure after a fallback migration to Ethernet/TCP")
	flag.Parse()

	rows, err := run(strings.ToLower(*pattern), *nVMs, *ranks, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpibench:", err)
		os.Exit(1)
	}
	render(fmt.Sprintf("IMB %s — %d×%d ranks, VMM-bypass InfiniBand", *pattern, *nVMs, *ranks), rows)

	if *compare {
		rows, err := run(strings.ToLower(*pattern), *nVMs, *ranks, true)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpibench:", err)
			os.Exit(1)
		}
		render(fmt.Sprintf("IMB %s — fallback-operation transport (tcp/virtio)", *pattern), rows)
	}
}
