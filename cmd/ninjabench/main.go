// Command ninjabench regenerates every table and figure of the paper's
// evaluation section (§IV) and prints them in the paper's layout.
//
// Usage:
//
//	ninjabench -run=all            # everything (Fig. 7 takes the longest)
//	ninjabench -run=table2
//	ninjabench -run=fig7 -scale=0.25
//	ninjabench -run=fig8a,fig8b
//	ninjabench -run=ext-fleet -fleet-jobs=4
//	ninjabench -run=ext-fleet -fleet-seq=maxflow          # max-flow rounds vs the capped LPT rows
//	ninjabench -run=ext-churn -churn-jobs=64              # online churn: greedy vs destination-swap
//	ninjabench -run=ext-sweep -sweep-seeds=32             # Monte Carlo fault sweep
//	ninjabench -run=ext-sweep -sweep-par=8 -sweep-jobs=2  # fixed worker count
//	ninjabench -run=table2,ext-fleet -json results.json
//	ninjabench -scale-jobs=128                      # kernel scale sweep, both backends
//	ninjabench -run=ext-fleet -kernel=wheel -cpuprofile fleet.pprof
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simfarm"
)

// main delegates to run so deferred profile writers and the partial -json
// flush still execute on the interrupted-exit path.
func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx))
}

// run executes the selected benchmarks, checking ctx between blocks:
// Ctrl-C finishes the block in flight, flushes whatever tables completed
// (including a partial -json dump), and exits 130.
func run(ctx context.Context) int {
	run := flag.String("run", "all", "comma-separated: table1,table2,fig6,fig7,fig8a,fig8b,ext-faults,ext-rdma,ext-fleet,ext-churn,ext-sweep or 'all'")
	scale := flag.Float64("scale", 1.0, "iteration scale for fig7 (1.0 = full class D)")
	fleetJobs := flag.Int("fleet-jobs", 0, "fleet size for ext-fleet (0 = default 8-job evacuation)")
	drainCap := flag.Int("fleet-drain-cap", 0, "jobs-in-flight cap per rolling-maintenance mini-plan (0 = default 2)")
	fleetSeq := flag.String("fleet-seq", "", "sequencing mode for ext-fleet: lpt (default) or maxflow (time-expanded max-flow rounds)")
	churnJobs := flag.Int("churn-jobs", 0, "arrival count for ext-churn (0 = default 64 jobs)")
	churnSeed := flag.Int64("churn-seed", 0, "workload seed for ext-churn")
	sweepSeeds := flag.Int("sweep-seeds", 32, "seeds per matrix row for ext-sweep")
	sweepPar := flag.Int("sweep-par", 0, "worker count for ext-sweep (0 = run at 1 and 8, verify byte-identical summaries, report speedup)")
	sweepJobs := flag.Int("sweep-jobs", 0, "fleet size per ext-sweep cell (0 = default 4 jobs)")
	jsonPath := flag.String("json", "", "also write the selected tables to this file as JSON")
	kernel := flag.String("kernel", "", "kernel event-queue backend for ext-fleet: heap (default) or wheel")
	scaleJobs := flag.Int("scale-jobs", 0, "run the synthetic fleet-scale kernel sweep up to this many jobs on both backends")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected runs to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the selected runs) to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ninjabench: cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ninjabench: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ninjabench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ninjabench: memprofile: %v\n", err)
			}
		}()
	}

	switch *fleetSeq {
	case "", "lpt", "maxflow":
	default:
		fmt.Fprintf(os.Stderr, "ninjabench: unknown -fleet-seq %q (want lpt or maxflow)\n", *fleetSeq)
		os.Exit(1)
	}

	var backend sim.Backend
	switch *kernel {
	case "", "heap":
		backend = sim.BackendHeap
	case "wheel":
		backend = sim.BackendWheel
	default:
		fmt.Fprintf(os.Stderr, "ninjabench: unknown -kernel %q (want heap or wheel)\n", *kernel)
		os.Exit(1)
	}

	fail := func(id string, err error) {
		fmt.Fprintf(os.Stderr, "ninjabench: %s: %v\n", id, err)
		os.Exit(1)
	}

	// emit prints a table and keeps it for the -json dump.
	var tables []*metrics.Table
	emit := func(t *metrics.Table) {
		tables = append(tables, t)
		fmt.Println(t)
	}

	// -scale-jobs runs the kernel scale sweep on its own; combine with an
	// explicit -run to also regenerate paper tables in the same (profiled)
	// process.
	runSet := *run != "all"
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "run" {
			runSet = true
		}
	})

	want := map[string]bool{}
	switch {
	case *run == "all" && *scaleJobs > 0 && !runSet:
		// sweep only
	case *run == "all":
		for _, id := range []string{"table1", "table2", "fig6", "fig7", "fig8a", "fig8b",
			"ext-scalability", "ext-coldvslive", "ext-bypass", "ext-faults", "ext-rdma",
			"ext-fleet", "ext-churn", "ext-sweep"} {
			want[id] = true
		}
	default:
		for _, id := range strings.Split(*run, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}

	if *scaleJobs > 0 && ctx.Err() == nil {
		emit(scaleSweep(*scaleJobs, backend, *kernel != ""))
	}

	if want["table1"] && ctx.Err() == nil {
		emit(experiments.Table1())
	}
	if want["table2"] && ctx.Err() == nil {
		rows, err := experiments.Table2()
		if err != nil {
			fail("table2", err)
		}
		emit(experiments.Table2Render(rows))
	}
	if want["fig6"] && ctx.Err() == nil {
		rows, err := experiments.Fig6(nil)
		if err != nil {
			fail("fig6", err)
		}
		emit(experiments.Fig6Render(rows))
	}
	if want["fig7"] && ctx.Err() == nil {
		rows, err := experiments.Fig7(nil, *scale)
		if err != nil {
			fail("fig7", err)
		}
		if *scale != 1.0 {
			fmt.Printf("(fig7 at scale %.2f — iteration counts reduced proportionally)\n", *scale)
		}
		emit(experiments.Fig7Render(rows))
	}
	for _, f := range []struct {
		id    string
		ranks int
	}{{"fig8a", 1}, {"fig8b", 8}} {
		if !want[f.id] || ctx.Err() != nil {
			continue
		}
		res, err := experiments.Fig8(f.ranks, 40)
		if err != nil {
			fail(f.id, err)
		}
		emit(experiments.Fig8Render(res))
		fmt.Println(res.Series.Bars(50))
		for i, rep := range res.Reports {
			fmt.Printf("migration %d: coordination %.2fs, hotplug %.2fs, migration %.2fs, link-up %.2fs, total %.2fs\n",
				i+1, rep.Coordination.Seconds(), rep.Hotplug().Seconds(),
				rep.Migration.Seconds(), rep.Linkup.Seconds(), rep.Total.Seconds())
		}
		fmt.Println()
	}
	if want["ext-scalability"] && ctx.Err() == nil {
		rows, err := experiments.ExtScalability(nil)
		if err != nil {
			fail("ext-scalability", err)
		}
		emit(experiments.ExtScalabilityRender(rows))
	}
	if want["ext-coldvslive"] && ctx.Err() == nil {
		rows, err := experiments.ExtColdVsLive(nil)
		if err != nil {
			fail("ext-coldvslive", err)
		}
		emit(experiments.ExtColdVsLiveRender(rows))
	}
	if want["ext-bypass"] && ctx.Err() == nil {
		rows, err := experiments.ExtBypassOverhead()
		if err != nil {
			fail("ext-bypass", err)
		}
		emit(experiments.ExtBypassOverheadRender(rows))
	}
	if want["ext-faults"] && ctx.Err() == nil {
		rows, err := experiments.ExtFaultMatrix()
		if err != nil {
			fail("ext-faults", err)
		}
		emit(experiments.ExtFaultMatrixRender(rows))
	}
	if want["ext-rdma"] && ctx.Err() == nil {
		rows, err := experiments.ExtRDMA()
		if err != nil {
			fail("ext-rdma", err)
		}
		emit(experiments.ExtRDMARender(rows))
	}
	if want["ext-fleet"] && ctx.Err() == nil {
		rows, err := experiments.ExtFleetMatrixCtx(ctx,
			experiments.FleetConfig{Jobs: *fleetJobs, DrainCap: *drainCap, Backend: backend, SeqMode: *fleetSeq})
		if err != nil && !errors.Is(err, context.Canceled) {
			fail("ext-fleet", err)
		}
		emit(experiments.ExtFleetRender(rows))
	}

	if want["ext-churn"] && ctx.Err() == nil {
		cfg := experiments.ChurnConfig{Backend: backend}
		cfg.Workload.Jobs = *churnJobs
		cfg.Workload.Seed = *churnSeed
		rows, err := experiments.ExtChurnMatrixCtx(ctx, cfg)
		if err != nil && !errors.Is(err, context.Canceled) {
			fail("ext-churn", err)
		}
		emit(experiments.ExtChurnRender(rows))
	}

	if want["ext-sweep"] && ctx.Err() == nil {
		tbl, err := runSweep(ctx, *sweepJobs, *sweepSeeds, *sweepPar)
		if err != nil && !errors.Is(err, context.Canceled) {
			fail("ext-sweep", err)
		}
		if tbl != nil {
			emit(tbl)
		}
	}

	if *jsonPath != "" {
		out, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fail("json", err)
		}
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			fail("json", err)
		}
		fmt.Fprintf(os.Stderr, "ninjabench: wrote %d table(s) to %s\n", len(tables), *jsonPath)
	}
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "ninjabench: interrupted; %d table(s) completed before the signal\n", len(tables))
		return 130
	}
	return 0
}

// runSweep runs the default Monte Carlo matrix. With par > 0 it runs once
// at that worker count; with par = 0 it runs the same matrix at
// parallelism 1 and 8, verifies the two summaries are byte-identical (the
// farm's core determinism claim), and reports the wall-clock speedup.
func runSweep(ctx context.Context, jobs, seeds, par int) (*metrics.Table, error) {
	m := simfarm.DefaultMatrix(jobs, seeds)
	fmt.Printf("ext-sweep: %d directive(s) × %d plan(s) × %d seed(s) = %d run(s)\n",
		len(m.Directives), len(m.Plans), m.Seeds.Count, m.Runs())

	runOnce := func(par int) (*simfarm.Result, error) {
		f, err := simfarm.New(m, simfarm.Options{Parallelism: par})
		if err != nil {
			return nil, err
		}
		res, err := f.Run(ctx)
		if res != nil {
			fmt.Printf("ext-sweep: parallelism %d: %d run(s) in %.2fs (%.0f runs/sec)\n",
				res.Wall.Parallelism, res.Summary.Runs, res.Wall.Elapsed.Seconds(), res.Wall.RunsPerSec)
		}
		return res, err
	}

	if par > 0 {
		res, err := runOnce(par)
		if res == nil {
			return nil, err
		}
		return res.Summary.Render(), err
	}

	seq, err := runOnce(1)
	if seq == nil || err != nil {
		if seq != nil {
			return seq.Summary.Render(), err
		}
		return nil, err
	}
	pool, err := runOnce(8)
	if pool == nil {
		return seq.Summary.Render(), err
	}
	if a, b := seq.Summary.JSON(), pool.Summary.JSON(); !bytes.Equal(a, b) {
		return nil, fmt.Errorf("summaries differ between parallelism 1 and 8 — determinism contract broken:\n%s\nvs\n%s", a, b)
	}
	fmt.Printf("ext-sweep: summaries byte-identical at parallelism 1 and 8; speedup %.2fx (wall-clock, %d CPU(s))\n",
		seq.Wall.Elapsed.Seconds()/pool.Wall.Elapsed.Seconds(), runtime.NumCPU())
	return pool.Summary.Render(), err
}

// scaleSweep runs FleetScaleSim at doubling fleet sizes up to maxJobs and
// tabulates wall-clock throughput. With no explicit -kernel it compares
// both backends side by side; otherwise it sweeps only the selected one.
func scaleSweep(maxJobs int, backend sim.Backend, only bool) *metrics.Table {
	backends := []sim.Backend{sim.BackendHeap, sim.BackendWheel}
	if only {
		backends = []sim.Backend{backend}
	}
	t := metrics.NewTable("Kernel scale sweep (synthetic fleet, 200 iterations/job)",
		"jobs", "backend", "events", "sim-end-s", "wall-ms", "events/sec")
	for jobs := 8; ; jobs *= 2 {
		if jobs > maxJobs {
			jobs = maxJobs
		}
		for _, b := range backends {
			start := time.Now()
			res := experiments.FleetScaleSim(jobs, 0, b)
			wall := time.Since(start)
			t.AddRow(res.Jobs, string(res.Backend), res.Stats.Executed,
				res.End,
				fmt.Sprintf("%.1f", float64(wall.Microseconds())/1e3),
				fmt.Sprintf("%.0f", float64(res.Stats.Executed)/wall.Seconds()))
		}
		if jobs == maxJobs {
			break
		}
	}
	return t
}
