// Command ninjabench regenerates every table and figure of the paper's
// evaluation section (§IV) and prints them in the paper's layout.
//
// Usage:
//
//	ninjabench -run=all            # everything (Fig. 7 takes the longest)
//	ninjabench -run=table2
//	ninjabench -run=fig7 -scale=0.25
//	ninjabench -run=fig8a,fig8b
//	ninjabench -run=ext-fleet -fleet-jobs=4
//	ninjabench -run=table2,ext-fleet -json results.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	run := flag.String("run", "all", "comma-separated: table1,table2,fig6,fig7,fig8a,fig8b,ext-faults,ext-fleet or 'all'")
	scale := flag.Float64("scale", 1.0, "iteration scale for fig7 (1.0 = full class D)")
	fleetJobs := flag.Int("fleet-jobs", 0, "fleet size for ext-fleet (0 = default 8-job evacuation)")
	drainCap := flag.Int("fleet-drain-cap", 0, "jobs-in-flight cap per rolling-maintenance mini-plan (0 = default 2)")
	jsonPath := flag.String("json", "", "also write the selected tables to this file as JSON")
	flag.Parse()

	want := map[string]bool{}
	if *run == "all" {
		for _, id := range []string{"table1", "table2", "fig6", "fig7", "fig8a", "fig8b",
			"ext-scalability", "ext-coldvslive", "ext-bypass", "ext-faults", "ext-fleet"} {
			want[id] = true
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}

	fail := func(id string, err error) {
		fmt.Fprintf(os.Stderr, "ninjabench: %s: %v\n", id, err)
		os.Exit(1)
	}

	// emit prints a table and keeps it for the -json dump.
	var tables []*metrics.Table
	emit := func(t *metrics.Table) {
		tables = append(tables, t)
		fmt.Println(t)
	}

	if want["table1"] {
		emit(experiments.Table1())
	}
	if want["table2"] {
		rows, err := experiments.Table2()
		if err != nil {
			fail("table2", err)
		}
		emit(experiments.Table2Render(rows))
	}
	if want["fig6"] {
		rows, err := experiments.Fig6(nil)
		if err != nil {
			fail("fig6", err)
		}
		emit(experiments.Fig6Render(rows))
	}
	if want["fig7"] {
		rows, err := experiments.Fig7(nil, *scale)
		if err != nil {
			fail("fig7", err)
		}
		if *scale != 1.0 {
			fmt.Printf("(fig7 at scale %.2f — iteration counts reduced proportionally)\n", *scale)
		}
		emit(experiments.Fig7Render(rows))
	}
	for _, f := range []struct {
		id    string
		ranks int
	}{{"fig8a", 1}, {"fig8b", 8}} {
		if !want[f.id] {
			continue
		}
		res, err := experiments.Fig8(f.ranks, 40)
		if err != nil {
			fail(f.id, err)
		}
		emit(experiments.Fig8Render(res))
		fmt.Println(res.Series.Bars(50))
		for i, rep := range res.Reports {
			fmt.Printf("migration %d: coordination %.2fs, hotplug %.2fs, migration %.2fs, link-up %.2fs, total %.2fs\n",
				i+1, rep.Coordination.Seconds(), rep.Hotplug().Seconds(),
				rep.Migration.Seconds(), rep.Linkup.Seconds(), rep.Total.Seconds())
		}
		fmt.Println()
	}
	if want["ext-scalability"] {
		rows, err := experiments.ExtScalability(nil)
		if err != nil {
			fail("ext-scalability", err)
		}
		emit(experiments.ExtScalabilityRender(rows))
	}
	if want["ext-coldvslive"] {
		rows, err := experiments.ExtColdVsLive(nil)
		if err != nil {
			fail("ext-coldvslive", err)
		}
		emit(experiments.ExtColdVsLiveRender(rows))
	}
	if want["ext-bypass"] {
		rows, err := experiments.ExtBypassOverhead()
		if err != nil {
			fail("ext-bypass", err)
		}
		emit(experiments.ExtBypassOverheadRender(rows))
	}
	if want["ext-faults"] {
		rows, err := experiments.ExtFaultMatrix()
		if err != nil {
			fail("ext-faults", err)
		}
		emit(experiments.ExtFaultMatrixRender(rows))
	}
	if want["ext-fleet"] {
		rows, err := experiments.ExtFleetMatrix(experiments.FleetConfig{Jobs: *fleetJobs, DrainCap: *drainCap})
		if err != nil {
			fail("ext-fleet", err)
		}
		emit(experiments.ExtFleetRender(rows))
	}

	if *jsonPath != "" {
		out, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fail("json", err)
		}
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			fail("json", err)
		}
		fmt.Fprintf(os.Stderr, "ninjabench: wrote %d table(s) to %s\n", len(tables), *jsonPath)
	}
}
