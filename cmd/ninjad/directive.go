package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/churn"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/ninja"
	"repro/internal/simfarm"
)

// DirectiveSpec is the wire form of a fleet directive: the JSON body of
// POST /jobs. It maps onto experiments.RunFleetScenarioWith, which deploys
// a fresh three-site simulated fleet and runs the directive over it — a
// pure function of this spec, which is what makes re-executing an
// interrupted job after a crash converge on the identical report.
type DirectiveSpec struct {
	// Kind is "evacuate" (default), "rolling-maintenance", "sweep" — a
	// Monte Carlo fault sweep over a simfarm matrix, sized by
	// jobs/seeds/seed_base/parallelism and shaped by matrix/fault_plans
	// below — or "churn", the continuous online-placement workload of
	// internal/churn under one policy. "consolidate" is rejected: the
	// ninjad testbed boots one VM per source node, so there is no packing
	// headroom to consolidate into.
	Kind string `json:"kind,omitempty"`
	// Placement is "greedy" (default) or "swap". For kind "churn" it
	// selects the online policy: greedy first-fit or adaptive
	// destination-swap.
	Placement string `json:"placement,omitempty"`
	// Batched enables concurrent gang execution; Cap bounds concurrent
	// migrations per batch (0 = unlimited).
	Batched bool `json:"batched,omitempty"`
	Cap     int  `json:"cap,omitempty"`
	// Seq selects the sequencing algorithm: "lpt" (default) or "maxflow"
	// (time-expanded max-flow rounds). For kind "churn" it sequences the
	// engine's mini-plans; not valid for kind "sweep" (the matrix carries
	// its own policies).
	Seq string `json:"seq,omitempty"`
	// Mode selects the transfer mechanism for evacuate/rolling-maintenance
	// directives: "live" (default), "rdma" (RDMA-native QP checkpoint/
	// replay — IB-capable jobs skip hotplug and link training, demoting
	// per VM to the hotplug rung on replay faults), or "cold"
	// (checkpoint/restart through the shared store).
	Mode string `json:"mode,omitempty"`
	// MaxInFlight caps jobs migrating concurrently per rolling-maintenance
	// mini-plan.
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// ReturnHome makes an evacuation bidirectional (site outage + return).
	ReturnHome bool `json:"return_home,omitempty"`
	// Faulted crashes a planned destination mid-directive; ForcedRollback
	// forces job00 into a rollback-in-place re-queue.
	Faulted        bool `json:"faulted,omitempty"`
	ForcedRollback bool `json:"forced_rollback,omitempty"`
	// Jobs / VMsPerJob size the fleet (defaults 8 × 2; for a sweep, Jobs
	// sizes each cell's fleet and defaults to 4).
	Jobs      int `json:"jobs,omitempty"`
	VMsPerJob int `json:"vms_per_job,omitempty"`
	// Seeds / SeedBase / Parallelism apply to kind "sweep" only: seeds per
	// matrix row (0 = 16), first seed (0 = 1), and worker count (0 =
	// GOMAXPROCS). Parallelism affects wall-clock only — the committed
	// result is byte-identical at any worker count, which is what lets a
	// crashed sweep job re-execute and converge on the identical record.
	Seeds       int   `json:"seeds,omitempty"`
	SeedBase    int64 `json:"seed_base,omitempty"`
	Parallelism int   `json:"parallelism,omitempty"`
	// Matrix selects the sweep matrix (kind "sweep" only): "default" (the
	// evacuation directive × fault-plan matrix) or "churn" (online
	// placement policies × node-crash).
	Matrix string `json:"matrix,omitempty"`
	// FaultPlans restricts the sweep's fault axis to the named plans
	// (kind "sweep" only; empty keeps the matrix's full axis). Unknown
	// names are rejected with the matrix's plan list.
	FaultPlans []string `json:"fault_plans,omitempty"`
	// Seed seeds a churn run's arrival workload (kind "churn" only; 0 is
	// a valid, fixed seed).
	Seed int64 `json:"seed,omitempty"`
}

// parseSpec decodes and validates a directive body. Unknown fields are
// rejected so a typo ("placment") cannot silently run the default fleet.
func parseSpec(raw json.RawMessage) (DirectiveSpec, error) {
	var spec DirectiveSpec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("directive: %w", err)
	}
	switch spec.Kind {
	case "", "evacuate", "rolling-maintenance":
		if spec.Seeds != 0 || spec.SeedBase != 0 || spec.Parallelism != 0 ||
			spec.Matrix != "" || spec.FaultPlans != nil {
			return spec, fmt.Errorf("directive: seeds/seed_base/parallelism/matrix/fault_plans apply to kind \"sweep\" only")
		}
		if spec.Seed != 0 {
			return spec, fmt.Errorf("directive: seed applies to kind \"churn\" only")
		}
	case "sweep":
		if spec.Mode != "" {
			return spec, fmt.Errorf("directive: mode applies to evacuate/rolling-maintenance only")
		}
		if spec.Placement != "" || spec.Batched || spec.Cap != 0 || spec.Seq != "" || spec.MaxInFlight != 0 ||
			spec.ReturnHome || spec.Faulted || spec.ForcedRollback || spec.VMsPerJob != 0 || spec.Seed != 0 {
			return spec, fmt.Errorf("directive: a sweep runs a directive × fault-plan matrix; only jobs, seeds, seed_base, parallelism, matrix and fault_plans apply")
		}
		if spec.Seeds < 0 || spec.SeedBase < 0 || spec.Parallelism < 0 {
			return spec, fmt.Errorf("directive: negative counts are not valid")
		}
		switch spec.Matrix {
		case "", "default", "churn":
		default:
			return spec, fmt.Errorf("directive: unknown matrix %q (want default or churn)", spec.Matrix)
		}
		if _, err := spec.sweepMatrix(); err != nil {
			return spec, fmt.Errorf("directive: %w", err)
		}
	case "churn":
		if spec.Mode != "" {
			return spec, fmt.Errorf("directive: mode applies to evacuate/rolling-maintenance only")
		}
		if spec.Batched || spec.Cap != 0 || spec.MaxInFlight != 0 || spec.ReturnHome ||
			spec.ForcedRollback || spec.VMsPerJob != 0 || spec.Seeds != 0 || spec.SeedBase != 0 ||
			spec.Parallelism != 0 || spec.Matrix != "" || spec.FaultPlans != nil {
			return spec, fmt.Errorf("directive: a churn run takes only placement, seq, jobs, seed and faulted")
		}
		if spec.Seed < 0 {
			return spec, fmt.Errorf("directive: negative counts are not valid")
		}
	case "consolidate":
		return spec, fmt.Errorf("directive: kind %q not supported: the ninjad testbed has no packing headroom (one VM per source node)", spec.Kind)
	default:
		return spec, fmt.Errorf("directive: unknown kind %q (want evacuate, rolling-maintenance, sweep or churn)", spec.Kind)
	}
	switch spec.Placement {
	case "", "greedy", "swap":
	default:
		return spec, fmt.Errorf("directive: unknown placement %q (want greedy or swap)", spec.Placement)
	}
	switch spec.Seq {
	case "", fleet.SeqLPT, fleet.SeqMaxFlow:
	default:
		return spec, fmt.Errorf("directive: unknown seq %q (want %s or %s)", spec.Seq, fleet.SeqLPT, fleet.SeqMaxFlow)
	}
	switch spec.Mode {
	case "", "live", "rdma", "cold":
	default:
		return spec, fmt.Errorf("directive: unknown mode %q (want live, rdma or cold)", spec.Mode)
	}
	if spec.MaxInFlight < 0 || spec.Cap < 0 || spec.Jobs < 0 || spec.VMsPerJob < 0 {
		return spec, fmt.Errorf("directive: negative counts are not valid")
	}
	if spec.Kind == "rolling-maintenance" && spec.ReturnHome {
		return spec, fmt.Errorf("directive: return_home applies to evacuations only")
	}
	return spec, nil
}

// scenario maps a validated spec onto the experiment types.
func (spec DirectiveSpec) scenario() (experiments.FleetConfig, experiments.FleetScenario) {
	cfg := experiments.FleetConfig{Jobs: spec.Jobs, VMsPerJob: spec.VMsPerJob}
	sc := experiments.FleetScenario{
		Seq:            fleet.SeqPolicy{Batched: spec.Batched, Cap: spec.Cap, Mode: spec.Seq},
		MaxInFlight:    spec.MaxInFlight,
		ReturnHome:     spec.ReturnHome,
		Faulted:        spec.Faulted,
		ForcedRollback: spec.ForcedRollback,
	}
	if spec.Kind == "rolling-maintenance" {
		sc.Kind = fleet.RollingMaintenance
		if sc.MaxInFlight <= 0 {
			sc.MaxInFlight = 2
		}
	}
	if spec.Placement == "swap" {
		sc.Placement = fleet.PlaceSwap
	}
	switch spec.Mode {
	case "rdma":
		sc.Mode = ninja.RDMANative
	case "cold":
		sc.Mode = ninja.Cold
	}
	return cfg, sc
}

// jobResult is the deterministic result committed into the job record:
// simulated-clock quantities only, no wall-clock timestamps, so an
// interrupted-and-re-executed directive produces byte-identical bytes.
type jobResult struct {
	Scenario    string        `json:"scenario"`
	Jobs        int           `json:"jobs"`
	Batches     int           `json:"batches"`
	Score       int           `json:"score"`
	IBJobsOnIB  int           `json:"ib_jobs_on_ib"`
	IBJobs      int           `json:"ib_jobs"`
	PredictedS  float64       `json:"predicted_s"`
	MakespanS   float64       `json:"makespan_s"`
	DowntimeS   float64       `json:"downtime_s"`
	DeadlineMet bool          `json:"deadline_met"`
	Replans     int           `json:"replans"`
	Requeues    int           `json:"requeues"`
	Outcomes    string        `json:"outcomes"`
	PerJob      []jobOutcomeJ `json:"per_job"`
}

type jobOutcomeJ struct {
	Job       string   `json:"job"`
	Dsts      []string `json:"dsts"`
	Outcome   string   `json:"outcome"`
	DowntimeS float64  `json:"downtime_s"`
	Attempts  int      `json:"attempts"`
	Replanned bool     `json:"replanned,omitempty"`
	Leg       string   `json:"leg,omitempty"`
}

// runDirective is the jobs.Handler behind ninjad: it re-parses the stored
// directive (the record is the source of truth, not whatever was in
// memory before a crash), runs the fleet scenario with the executor trail
// streamed into the job's event log, and returns the deterministic
// result. The simulation itself is not interruptible mid-run; ctx is
// honored at the start boundary so a drain doesn't launch new work.
func runDirective(ctx context.Context, rec jobs.Record, emit func(jobs.Event)) (json.RawMessage, error) {
	spec, err := parseSpec(rec.Directive)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if spec.Kind == "sweep" {
		return runSweepDirective(ctx, spec, emit)
	}
	if spec.Kind == "churn" {
		return runChurnDirective(spec, emit)
	}
	cfg, sc := spec.scenario()
	res, err := experiments.RunFleetScenarioWith(cfg, sc, func(ev metrics.Event) {
		emit(jobs.Event{
			Kind:    string(ev.Kind),
			Phase:   ev.Phase,
			Subject: ev.Subject,
			Detail:  ev.Detail,
			Sim:     ev.At.Seconds(),
		})
	})
	if err != nil {
		return nil, err
	}

	out := jobResult{
		Scenario:    res.Row.Scenario,
		Jobs:        res.Row.Jobs,
		Batches:     res.Row.Batches,
		Score:       res.Row.Score,
		IBJobsOnIB:  res.Row.IBJobsOnIB,
		IBJobs:      res.Row.IBJobs,
		PredictedS:  res.Row.Predicted.Seconds(),
		MakespanS:   res.Row.Makespan.Seconds(),
		DowntimeS:   res.Row.Downtime.Seconds(),
		DeadlineMet: res.Row.Deadline,
		Replans:     res.Row.Replans,
		Requeues:    res.Row.Requeues,
		Outcomes:    res.Row.Outcomes,
	}
	for _, jo := range res.Report.Jobs {
		oj := jobOutcomeJ{
			Job:       jo.Job.Name,
			Outcome:   string(jo.Outcome),
			DowntimeS: jo.Report.Total.Seconds(),
			Attempts:  jo.Attempts,
			Replanned: jo.Replanned,
			Leg:       jo.Leg,
		}
		for _, n := range jo.Dsts {
			oj.Dsts = append(oj.Dsts, n.Name)
		}
		out.PerJob = append(out.PerJob, oj)
	}
	return json.Marshal(out)
}

// sweepMatrix builds a sweep spec's matrix: the selected base matrix
// with the fault axis restricted to any named plans. Unknown plan names
// surface as a wrapped *simfarm.OptionsError — parseSpec calls this too,
// so a typo'd plan name is refused at submit time, not at run time.
func (spec DirectiveSpec) sweepMatrix() (simfarm.Matrix, error) {
	var m simfarm.Matrix
	if spec.Matrix == "churn" {
		m = simfarm.ChurnMatrix(spec.Jobs, spec.Seeds)
	} else {
		m = simfarm.DefaultMatrix(spec.Jobs, spec.Seeds)
	}
	return m.SelectPlans(spec.FaultPlans...)
}

// runChurnDirective runs the online churn workload as a durable job:
// the seeded arrival/departure process under one placement policy,
// optionally through the default node-crash plan, with every engine
// decision streamed into the job's event log. The committed result is
// the churn Report — simulated-clock quantities only, so an interrupted
// job re-executes to byte-identical bytes.
func runChurnDirective(spec DirectiveSpec, emit func(jobs.Event)) (json.RawMessage, error) {
	cfg := experiments.ChurnConfig{}
	cfg.Workload.Jobs = spec.Jobs
	cfg.Workload.Seed = spec.Seed
	sc := experiments.ChurnScenario{}
	if spec.Placement == "swap" {
		sc.Policy = churn.PolicySwap
	}
	if spec.Seq == fleet.SeqMaxFlow {
		sc.Seq = fleet.SeqPolicy{Batched: true, Mode: fleet.SeqMaxFlow}
	}
	if spec.Faulted {
		sc.Faults = experiments.ChurnCrashPlan()
	}
	res, err := experiments.RunChurnScenarioWith(cfg, sc, func(format string, args ...any) {
		emit(jobs.Event{Kind: "churn-log", Detail: fmt.Sprintf(format, args...)})
	})
	if err != nil {
		return nil, err
	}
	return json.RawMessage(res.Report.JSON()), nil
}

// runSweepDirective runs a durable Monte Carlo sweep job: a simfarm
// matrix — the default evacuation matrix or the churn placement matrix —
// sized by the spec, optionally restricted to named fault plans, with
// per-cell progress streamed into the job's event log and only the
// deterministic Summary committed as the result (wall-clock stats stay
// out, preserving the crash-re-execution byte-identity guarantee).
func runSweepDirective(ctx context.Context, spec DirectiveSpec, emit func(jobs.Event)) (json.RawMessage, error) {
	m, err := spec.sweepMatrix()
	if err != nil {
		return nil, err
	}
	m.Seeds.Base = spec.SeedBase
	f, err := simfarm.New(m, simfarm.Options{Parallelism: spec.Parallelism})
	if err != nil {
		return nil, err
	}
	f.Events().SetNotify(func(ev metrics.Event) {
		emit(jobs.Event{
			Kind:    string(ev.Kind),
			Phase:   ev.Phase,
			Subject: ev.Subject,
			Detail:  ev.Detail,
			Sim:     ev.At.Seconds(),
		})
	})
	res, err := f.Run(ctx)
	if err != nil {
		return nil, err
	}
	return json.Marshal(res.Summary)
}
