package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/internal/jobs"
)

// daemon ties the durable job manager to its HTTP surface.
type daemon struct {
	mgr  *jobs.Manager
	srv  *http.Server
	ln   net.Listener
	logf func(string, ...any)
}

type daemonConfig struct {
	Addr        string
	StateDir    string
	Workers     int
	Lease       time.Duration
	MaxAttempts int
	Backoff     time.Duration
	Logf        func(string, ...any)
}

func newDaemon(cfg daemonConfig) (*daemon, error) {
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	mgr, err := jobs.New(jobs.Config{
		Dir:         cfg.StateDir,
		Handler:     runDirective,
		Workers:     cfg.Workers,
		Lease:       cfg.Lease,
		MaxAttempts: cfg.MaxAttempts,
		Backoff:     cfg.Backoff,
		Logf:        cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	d := &daemon{mgr: mgr, logf: cfg.Logf}
	d.srv = &http.Server{Handler: d.routes()}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	d.ln = ln
	return d, nil
}

// start recovers persisted jobs and begins serving. It returns once the
// listener is accepting; serve errors after that go to logf.
func (d *daemon) start() error {
	if err := d.mgr.Start(); err != nil {
		d.ln.Close()
		return err
	}
	go func() {
		if err := d.srv.Serve(d.ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			d.logf("ninjad: serve: %v", err)
		}
	}()
	return nil
}

// addr is the bound listen address ("127.0.0.1:41873" under -addr :0).
func (d *daemon) addr() string { return d.ln.Addr().String() }

// shutdown drains gracefully: the HTTP listener closes, then the job
// manager drains to a checkpointable boundary under ctx's deadline.
func (d *daemon) shutdown(ctx context.Context) error {
	httpCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	_ = d.srv.Shutdown(httpCtx)
	return d.mgr.Stop(ctx)
}

func (d *daemon) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", d.handleHealth)
	mux.HandleFunc("POST /jobs", d.handleSubmit)
	mux.HandleFunc("GET /jobs", d.handleList)
	mux.HandleFunc("GET /jobs/{id}", d.handleGet)
	mux.HandleFunc("POST /jobs/{id}/cancel", d.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", d.handleEvents)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (d *daemon) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":     true,
		"owner":  d.mgr.Owner(),
		"pid":    os.Getpid(),
		"counts": d.mgr.Counts(),
	})
}

// submitRequest wraps a directive with its optional client-supplied ID.
type submitRequest struct {
	// ID makes submission idempotent: re-POSTing the same ID+directive
	// after a lost response returns the existing job instead of a
	// duplicate. Empty gets a generated ID.
	ID        string          `json:"id,omitempty"`
	Directive json.RawMessage `json:"directive"`
}

func (d *daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var req submitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("request body: %w", err))
		return
	}
	if len(req.Directive) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("request body: directive is required"))
		return
	}
	// Validate before accepting: a directive that cannot parse must be
	// refused at the door, not persisted and failed asynchronously.
	if _, err := parseSpec(req.Directive); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rec, created, err := d.mgr.Submit(req.ID, req.Directive)
	var mismatch *jobs.MismatchError
	switch {
	case errors.As(err, &mismatch):
		writeErr(w, http.StatusConflict, err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, rec)
}

func (d *daemon) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs":   d.mgr.List(),
		"counts": d.mgr.Counts(),
	})
}

func (d *daemon) handleGet(w http.ResponseWriter, r *http.Request) {
	rec, err := d.mgr.Get(r.PathValue("id"))
	if errors.Is(err, jobs.ErrNotFound) {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (d *daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec, err := d.mgr.Cancel(r.PathValue("id"))
	if errors.Is(err, jobs.ErrNotFound) {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleEvents streams the job's event trail as NDJSON. ?since=N resumes
// after sequence number N; ?follow=1 keeps the stream open, tailing live
// events until the job reaches a terminal state.
func (d *daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	since := 0
	if s := r.URL.Query().Get("since"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad since=%q", s))
			return
		}
		since = n
	}
	follow := r.URL.Query().Get("follow") != ""

	replay, tail, off, err := d.mgr.Watch(id, since)
	if errors.Is(err, jobs.ErrNotFound) {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	defer off()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for _, ev := range replay {
		_ = enc.Encode(ev)
	}
	if flusher != nil {
		flusher.Flush()
	}
	if !follow || tail == nil {
		return
	}
	for {
		select {
		case ev, ok := <-tail:
			if !ok {
				return // terminal: trail complete
			}
			_ = enc.Encode(ev)
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}
