// Command ninjad is the crash-safe control-plane daemon: it accepts fleet
// directives over HTTP/JSON, persists each as a durable job record under
// -state-dir (atomically rewritten on every lifecycle transition), and
// executes them asynchronously through the fleet planner/executor on the
// simulated three-site testbed. Because a directive run is a pure
// function of its spec, a daemon killed mid-directive — kill -9 included
// — restarts, finds the interrupted job in its state directory, re-runs
// it deterministically, and commits the identical report the lost run
// would have produced. No accepted directive is ever lost.
//
//	ninjad -addr 127.0.0.1:7609 -state-dir /var/lib/ninjad
//
//	curl -d '{"id":"evac-1","directive":{"kind":"evacuate","placement":"swap","batched":true,"cap":4}}' \
//	     http://127.0.0.1:7609/jobs
//	curl http://127.0.0.1:7609/jobs/evac-1
//	curl http://127.0.0.1:7609/jobs/evac-1/events?follow=1
//
// SIGINT/SIGTERM drain gracefully: in-flight directives run to a
// checkpointable boundary (bounded by -drain), then the process exits;
// anything still running past the bound is checkpointed back to pending
// for the next incarnation.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7609", "listen address (use :0 for an ephemeral port)")
		stateDir    = flag.String("state-dir", "", "job state directory (required)")
		addrFile    = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using -addr :0)")
		workers     = flag.Int("workers", 2, "concurrent directive executors")
		lease       = flag.Duration("lease", 30*time.Second, "job claim lease; a lease that lapses without renewal marks its holder dead")
		maxAttempts = flag.Int("max-attempts", 3, "execution attempts per job before it fails")
		backoff     = flag.Duration("backoff", 500*time.Millisecond, "base retry delay, doubling per failed attempt")
		drain       = flag.Duration("drain", 10*time.Minute, "graceful-shutdown bound: how long SIGTERM waits for in-flight directives")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("ninjad ")

	if *stateDir == "" {
		fmt.Fprintln(os.Stderr, "ninjad: -state-dir is required")
		flag.Usage()
		os.Exit(2)
	}

	d, err := newDaemon(daemonConfig{
		Addr:        *addr,
		StateDir:    *stateDir,
		Workers:     *workers,
		Lease:       *lease,
		MaxAttempts: *maxAttempts,
		Backoff:     *backoff,
	})
	if err != nil {
		log.Fatalf("start: %v", err)
	}
	if err := d.start(); err != nil {
		log.Fatalf("start: %v", err)
	}
	log.Printf("listening on %s (state %s, owner %s)", d.addr(), *stateDir, d.mgr.Owner())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(d.addr()+"\n"), 0o644); err != nil {
			log.Fatalf("addr-file: %v", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // a second signal kills immediately instead of re-draining

	log.Printf("signal received; draining (bound %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := d.shutdown(drainCtx); err != nil {
		log.Printf("drain: %v", err)
		os.Exit(1)
	}
	log.Printf("drained cleanly")
}
