package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/jobs"
)

// TestRestartRecoversInterruptedDirective is the end-to-end crash proof:
// a state directory holding a job mid-run — exactly what kill -9 leaves
// behind — must come back as an interrupted job that re-executes
// deterministically, committing a result byte-identical to an
// uninterrupted run of the same directive.
func TestRestartRecoversInterruptedDirective(t *testing.T) {
	// The uninterrupted control run, on its own daemon and state dir.
	ctrl := startDaemon(t, t.TempDir())
	httpJSON(t, "POST", "http://"+ctrl.addr()+"/jobs",
		fmt.Sprintf(`{"id":"evac-1","directive":%s}`, smallSpec))
	want := waitDone(t, ctrl, "evac-1")

	// A dead daemon's state directory: the same directive, on disk in
	// state running, lease held by an incarnation that no longer exists.
	dir := t.TempDir()
	now := time.Now()
	s, err := jobs.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(&jobs.Record{
		ID: "evac-1", State: jobs.Running,
		Directive: json.RawMessage(smallSpec),
		Submitted: now.Add(-time.Minute), Updated: now.Add(-time.Second),
		Owner: "dead-incarnation-1", LeaseUntil: now.Add(time.Minute),
		Attempts: 1,
		Events: []jobs.Event{
			{Seq: 1, Wall: now.Add(-time.Minute), Kind: jobs.EventSubmitted},
			{Seq: 2, Wall: now.Add(-time.Second), Kind: jobs.EventPicked},
			{Seq: 3, Wall: now.Add(-time.Second), Kind: jobs.EventRunning},
		},
	}); err != nil {
		t.Fatal(err)
	}

	d := startDaemon(t, dir)
	got := waitDone(t, d, "evac-1")
	if got.Interrupts != 1 {
		t.Fatalf("interrupts = %d, want 1", got.Interrupts)
	}
	interrupted := false
	for _, ev := range got.Events {
		if ev.Kind == jobs.EventInterrupted {
			interrupted = true
		}
	}
	if !interrupted {
		t.Fatalf("no interrupted event on the trail: %+v", got.Events)
	}
	// The recovery guarantee: same directive, same report — byte for byte.
	if !bytes.Equal(got.Result, want.Result) {
		t.Fatalf("recovered result differs from uninterrupted run:\n got %s\nwant %s",
			got.Result, want.Result)
	}
}

// TestRestartPreservesFinishedJobs: terminal records survive a restart
// untouched and are served as-is — a restart must not re-run, reorder or
// drop anything already committed.
func TestRestartPreservesFinishedJobs(t *testing.T) {
	dir := t.TempDir()
	d1 := startDaemon(t, dir)
	base := "http://" + d1.addr()
	httpJSON(t, "POST", base+"/jobs", fmt.Sprintf(`{"id":"keep-1","directive":%s}`, smallSpec))
	first := waitDone(t, d1, "keep-1")
	d1.srv.Close()
	d1.mgr.Abandon()

	d2 := startDaemon(t, dir)
	second := waitDone(t, d2, "keep-1")
	if second.Attempts != first.Attempts || second.Interrupts != first.Interrupts {
		t.Fatalf("restart rewrote the record: %+v vs %+v", second, first)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("restart changed a committed result")
	}
	if len(second.Events) != len(first.Events) {
		t.Fatalf("restart grew the trail: %d vs %d events", len(second.Events), len(first.Events))
	}
}
