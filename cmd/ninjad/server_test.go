package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/churn"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/simfarm"
)

// smallSpec is a 2-job, 1-VM-per-job evacuation: the smallest fleet the
// testbed deploys, a few milliseconds of wall clock per run.
const smallSpec = `{"kind":"evacuate","placement":"swap","batched":true,"cap":4,"jobs":2,"vms_per_job":1}`

func startDaemon(t *testing.T, stateDir string) *daemon {
	t.Helper()
	d, err := newDaemon(daemonConfig{
		Addr:     "127.0.0.1:0",
		StateDir: stateDir,
		Workers:  2,
		Lease:    time.Second,
		Backoff:  5 * time.Millisecond,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		d.srv.Close()
		d.mgr.Abandon()
	})
	return d
}

func httpJSON(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func waitDone(t *testing.T, d *daemon, id string) jobs.Record {
	t.Helper()
	base := "http://" + d.addr()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body := httpJSON(t, "GET", base+"/jobs/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d: %s", id, code, body)
		}
		var rec jobs.Record
		if err := json.Unmarshal(body, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.State.Terminal() {
			if rec.State != jobs.Done {
				t.Fatalf("job %s ended %s: %s (events %+v)", id, rec.State, rec.Error, rec.Events)
			}
			return rec
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, rec.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitLifecycleOverHTTP(t *testing.T) {
	d := startDaemon(t, t.TempDir())
	base := "http://" + d.addr()

	code, body := httpJSON(t, "GET", base+"/healthz", "")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"ok": true`)) {
		t.Fatalf("healthz = %d: %s", code, body)
	}

	code, body = httpJSON(t, "POST", base+"/jobs",
		fmt.Sprintf(`{"id":"evac-1","directive":%s}`, smallSpec))
	if code != http.StatusCreated {
		t.Fatalf("submit = %d: %s", code, body)
	}
	rec := waitDone(t, d, "evac-1")

	var res jobResult
	if err := json.Unmarshal(rec.Result, &res); err != nil {
		t.Fatalf("result not a jobResult: %v: %s", err, rec.Result)
	}
	if res.Jobs != 2 || !res.DeadlineMet || res.Scenario != "swap/batched(cap=4)" {
		t.Fatalf("result = %+v", res)
	}
	if len(res.PerJob) != 2 || res.PerJob[0].Outcome != "clean" {
		t.Fatalf("per-job outcomes = %+v", res.PerJob)
	}
	// The fleet trail streamed into the job's events, sim-stamped.
	simEvents := 0
	for _, ev := range rec.Events {
		if ev.Sim > 0 {
			simEvents++
		}
	}
	if simEvents == 0 {
		t.Fatalf("no fleet events on the trail: %+v", rec.Events)
	}

	code, body = httpJSON(t, "GET", base+"/jobs", "")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"evac-1"`)) {
		t.Fatalf("list = %d: %s", code, body)
	}
}

func TestSubmitIdempotencyOverHTTP(t *testing.T) {
	d := startDaemon(t, t.TempDir())
	base := "http://" + d.addr()
	body := fmt.Sprintf(`{"id":"dup-1","directive":%s}`, smallSpec)

	if code, resp := httpJSON(t, "POST", base+"/jobs", body); code != http.StatusCreated {
		t.Fatalf("first submit = %d: %s", code, resp)
	}
	// A retried POST (client lost the response) is a 200, not a duplicate.
	if code, resp := httpJSON(t, "POST", base+"/jobs", body); code != http.StatusOK {
		t.Fatalf("resubmit = %d: %s", code, resp)
	}
	// Same ID, different directive: conflict.
	other := fmt.Sprintf(`{"id":"dup-1","directive":%s}`,
		`{"kind":"evacuate","jobs":2,"vms_per_job":1}`)
	if code, resp := httpJSON(t, "POST", base+"/jobs", other); code != http.StatusConflict {
		t.Fatalf("mismatched resubmit = %d: %s", code, resp)
	}
}

func TestSubmitRejectsBadDirectives(t *testing.T) {
	d := startDaemon(t, t.TempDir())
	base := "http://" + d.addr()
	for name, body := range map[string]string{
		"no directive":  `{"id":"x"}`,
		"bad json":      `{nope`,
		"unknown kind":  `{"directive":{"kind":"explode"}}`,
		"consolidate":   `{"directive":{"kind":"consolidate"}}`,
		"unknown field": `{"directive":{"placment":"swap"}}`,
		"rolling+home":  `{"directive":{"kind":"rolling-maintenance","return_home":true}}`,
		"sweep+policy":  `{"directive":{"kind":"sweep","placement":"swap"}}`,
		"sweep-seeds<0": `{"directive":{"kind":"sweep","seeds":-1}}`,
		"evac+seeds":    `{"directive":{"kind":"evacuate","seeds":4}}`,
		"evac+seed":     `{"directive":{"kind":"evacuate","seed":7}}`,
		"bad matrix":    `{"directive":{"kind":"sweep","matrix":"explode"}}`,
		"bad plan name": `{"directive":{"kind":"sweep","fault_plans":["no-such-plan"]}}`,
		"churn+seeds":   `{"directive":{"kind":"churn","seeds":4}}`,
		"churn+batched": `{"directive":{"kind":"churn","batched":true}}`,
		"churn-seed<0":  `{"directive":{"kind":"churn","seed":-1}}`,
	} {
		code, resp := httpJSON(t, "POST", base+"/jobs", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: code = %d, want 400: %s", name, code, resp)
		}
	}
	if code, _ := httpJSON(t, "GET", base+"/jobs/ghost", ""); code != http.StatusNotFound {
		t.Errorf("get missing = %d, want 404", code)
	}
	if code, _ := httpJSON(t, "POST", base+"/jobs/ghost/cancel", ""); code != http.StatusNotFound {
		t.Errorf("cancel missing = %d, want 404", code)
	}
}

func TestEventsEndpointStreamsTrail(t *testing.T) {
	d := startDaemon(t, t.TempDir())
	base := "http://" + d.addr()
	httpJSON(t, "POST", base+"/jobs", fmt.Sprintf(`{"id":"ev-1","directive":%s}`, smallSpec))
	rec := waitDone(t, d, "ev-1")

	// Full replay: NDJSON, one event per line, lifecycle marks included.
	code, body := httpJSON(t, "GET", base+"/jobs/ev-1/events", "")
	if code != http.StatusOK {
		t.Fatalf("events = %d: %s", code, body)
	}
	var kinds []string
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not an event: %v: %s", n, err, sc.Bytes())
		}
		if ev.Seq != n+1 {
			t.Fatalf("line %d has seq %d", n, ev.Seq)
		}
		kinds = append(kinds, ev.Kind)
		n++
	}
	if n != len(rec.Events) {
		t.Fatalf("streamed %d events, record has %d", n, len(rec.Events))
	}
	if kinds[0] != jobs.EventSubmitted || kinds[n-1] != jobs.EventDone {
		t.Fatalf("trail boundaries = %s .. %s", kinds[0], kinds[n-1])
	}

	// ?since resumes after a sequence number; ?follow on a terminal job
	// replays the rest and closes.
	code, body = httpJSON(t, "GET",
		fmt.Sprintf("%s/jobs/ev-1/events?since=%d&follow=1", base, n-1), "")
	if code != http.StatusOK {
		t.Fatalf("events since = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], `"done"`) {
		t.Fatalf("since=%d returned %q", n-1, lines)
	}
}

// A sweep job runs the Monte Carlo matrix end to end: the committed
// result is the deterministic simfarm Summary and the trail carries
// per-cell progress events.
func TestSweepDirectiveOverHTTP(t *testing.T) {
	d := startDaemon(t, t.TempDir())
	base := "http://" + d.addr()

	code, body := httpJSON(t, "POST", base+"/jobs",
		`{"id":"sweep-1","directive":{"kind":"sweep","jobs":2,"seeds":2,"parallelism":4}}`)
	if code != http.StatusCreated {
		t.Fatalf("submit = %d: %s", code, body)
	}
	rec := waitDone(t, d, "sweep-1")

	var sum simfarm.Summary
	if err := json.Unmarshal(rec.Result, &sum); err != nil {
		t.Fatalf("result not a simfarm.Summary: %v: %s", err, rec.Result)
	}
	if sum.Directives != 5 || sum.Plans != 3 || sum.Seeds != 2 {
		t.Fatalf("matrix shape = %d×%d×%d, want 5×3×2", sum.Directives, sum.Plans, sum.Seeds)
	}
	if sum.Runs != 30 || sum.Failures != 0 || len(sum.Rows) != 15 {
		t.Fatalf("runs/failures/rows = %d/%d/%d: %s", sum.Runs, sum.Failures, len(sum.Rows), rec.Result)
	}
	cells, rows := 0, 0
	for _, ev := range rec.Events {
		switch ev.Kind {
		case string(metrics.EventSweepCell):
			cells++
		case string(metrics.EventSweepRow):
			rows++
		}
	}
	if cells != 30 || rows != 15 {
		t.Fatalf("trail carried %d sweep-cell / %d sweep-row events, want 30/15", cells, rows)
	}
}

// A churn job runs the online placement workload end to end: the
// committed result is the deterministic churn Report, the trail carries
// the engine's decision log, and re-submitting the identical directive
// under a new ID commits byte-identical result bytes — the property the
// crash-recovery path relies on.
func TestChurnDirectiveOverHTTP(t *testing.T) {
	d := startDaemon(t, t.TempDir())
	base := "http://" + d.addr()

	directive := `{"kind":"churn","placement":"swap","jobs":16,"seed":7,"faulted":true}`
	code, body := httpJSON(t, "POST", base+"/jobs",
		fmt.Sprintf(`{"id":"churn-1","directive":%s}`, directive))
	if code != http.StatusCreated {
		t.Fatalf("submit = %d: %s", code, body)
	}
	rec := waitDone(t, d, "churn-1")

	var rep churn.Report
	if err := json.Unmarshal(rec.Result, &rep); err != nil {
		t.Fatalf("result not a churn.Report: %v: %s", err, rec.Result)
	}
	if rep.Policy != "destination-swap" || rep.Seed != 7 || rep.Arrived != 16 {
		t.Fatalf("report header = %s/seed%d/%d arrivals, want destination-swap/seed7/16: %s",
			rep.Policy, rep.Seed, rep.Arrived, rec.Result)
	}
	if rep.Departed+rep.Rejected != rep.Arrived {
		t.Fatalf("report leaked jobs: %d departed + %d rejected != %d arrived",
			rep.Departed, rep.Rejected, rep.Arrived)
	}
	logLines := 0
	for _, ev := range rec.Events {
		if ev.Kind == "churn-log" {
			logLines++
		}
	}
	if logLines == 0 {
		t.Fatalf("trail carried no churn-log events on a faulted run: %+v", rec.Events)
	}

	httpJSON(t, "POST", base+"/jobs", fmt.Sprintf(`{"id":"churn-2","directive":%s}`, directive))
	again := waitDone(t, d, "churn-2")
	if !bytes.Equal(rec.Result, again.Result) {
		t.Fatalf("identical churn directives committed different results:\n%s\nvs\n%s",
			rec.Result, again.Result)
	}
}

// The sweep wire form selects the churn matrix and restricts its fault
// axis by plan name.
func TestChurnSweepDirectiveOverHTTP(t *testing.T) {
	d := startDaemon(t, t.TempDir())
	base := "http://" + d.addr()

	code, body := httpJSON(t, "POST", base+"/jobs",
		`{"id":"csweep-1","directive":{"kind":"sweep","matrix":"churn","jobs":8,"seeds":2,"fault_plans":["node-crash"],"parallelism":4}}`)
	if code != http.StatusCreated {
		t.Fatalf("submit = %d: %s", code, body)
	}
	rec := waitDone(t, d, "csweep-1")

	var sum simfarm.Summary
	if err := json.Unmarshal(rec.Result, &sum); err != nil {
		t.Fatalf("result not a simfarm.Summary: %v: %s", err, rec.Result)
	}
	if sum.Directives != 2 || sum.Plans != 1 || sum.Seeds != 2 {
		t.Fatalf("matrix shape = %d×%d×%d, want 2×1×2: %s", sum.Directives, sum.Plans, sum.Seeds, rec.Result)
	}
	if sum.Runs != 4 || sum.Failures != 0 {
		t.Fatalf("runs/failures = %d/%d, want 4/0: %s", sum.Runs, sum.Failures, rec.Result)
	}
	for _, r := range sum.Rows {
		if r.Plan != "node-crash" {
			t.Fatalf("fault_plans filter leaked plan %q into the summary", r.Plan)
		}
	}
}

// A typo'd fault-plan name is refused at parse time with the typed
// simfarm error, naming the plans the matrix actually has.
func TestSweepFaultPlanValidation(t *testing.T) {
	_, err := parseSpec(json.RawMessage(`{"kind":"sweep","fault_plans":["dst-crash","bogus"]}`))
	var oe *simfarm.OptionsError
	if !errors.As(err, &oe) {
		t.Fatalf("parseSpec = %v, want wrapped *simfarm.OptionsError", err)
	}
	for _, want := range []string{"bogus", "dst-crash", "migrate-abort"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if _, err := parseSpec(json.RawMessage(`{"kind":"sweep","matrix":"churn","fault_plans":["node-crash"]}`)); err != nil {
		t.Fatalf("valid churn-matrix plan selection rejected: %v", err)
	}
}

func TestDirectiveSpecDefaults(t *testing.T) {
	for body, wantLabel := range map[string]string{
		`{}`: "greedy/sequential",
		`{"placement":"swap","batched":true,"cap":4}`:                         "swap/batched(cap=4)",
		`{"kind":"rolling-maintenance"}`:                                      "rolling(cap=2)/greedy",
		`{"kind":"rolling-maintenance","placement":"swap","max_in_flight":3}`: "rolling(cap=3)/swap",
	} {
		spec, err := parseSpec(json.RawMessage(body))
		if err != nil {
			t.Fatalf("%s: %v", body, err)
		}
		_, sc := spec.scenario()
		if got := sc.Label(); got != wantLabel {
			t.Errorf("%s → %q, want %q", body, got, wantLabel)
		}
	}
}
