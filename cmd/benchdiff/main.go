// Command benchdiff guards the simulated-result benchmark metrics against
// drift. It reads `go test -bench` output on stdin, extracts every custom
// metric whose unit starts with "sim-" (simulated seconds / bandwidths —
// deterministic observables, unlike wall-clock ns/op), "farm-" (Monte
// Carlo sweep aggregates — percentiles over seeded runs, equally
// deterministic), "churn-" (online-placement workload observables:
// time-weighted affinity cost and corrective-migration spend), or "seq-"
// (migration-sequencer predictions: per-policy batch counts and predicted
// makespans), or "rdma-" (RDMA-native QP-replay migration observables:
// per-rung totals and demotion counts), and compares them against a
// committed baseline.
//
// Usage:
//
//	go test -bench . -benchtime 1x | benchdiff                 # compare
//	go test -bench . -benchtime 1x | benchdiff -update         # re-baseline
//	go test -bench . -benchtime 1x | benchdiff -write BENCH_2026-08-06.json
//
// Only metrics present in the input are compared, so a smoke run over a
// benchmark subset checks just that subset. A metric in the input but not
// in the baseline is an error (run -update after intentionally adding one).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	baseline := flag.String("baseline", "scripts/bench_baseline.json", "committed baseline metrics file")
	write := flag.String("write", "", "also write the observed metrics to this file as JSON")
	update := flag.Bool("update", false, "overwrite the baseline with the observed metrics instead of comparing")
	tol := flag.Float64("tol", 1e-6, "relative tolerance for metric comparison")
	flag.Parse()

	observed, err := parseBench(os.Stdin)
	if err != nil {
		fatal("%v", err)
	}
	if len(observed) == 0 {
		fatal("no sim-*/farm-*/churn-*/seq-*/rdma-* metrics found on stdin (pipe `go test -bench` output in)")
	}

	if *write != "" {
		if err := writeJSON(*write, observed); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "benchdiff: wrote %d metric(s) to %s\n", len(observed), *write)
	}
	if *update {
		if err := writeJSON(*baseline, observed); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "benchdiff: baseline %s updated with %d metric(s)\n", *baseline, len(observed))
		return
	}

	data, err := os.ReadFile(*baseline)
	if err != nil {
		fatal("%v (run with -update to create it)", err)
	}
	want := map[string]float64{}
	if err := json.Unmarshal(data, &want); err != nil {
		fatal("%s: %v", *baseline, err)
	}

	keys := make([]string, 0, len(observed))
	for k := range observed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var drift []string
	for _, k := range keys {
		got := observed[k]
		exp, ok := want[k]
		if !ok {
			drift = append(drift, fmt.Sprintf("%s: %g not in baseline (new metric? run -update)", k, got))
			continue
		}
		if !within(got, exp, *tol) {
			drift = append(drift, fmt.Sprintf("%s: got %g, baseline %g", k, got, exp))
		}
	}
	if len(drift) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) drifted from %s:\n", len(drift), *baseline)
		for _, d := range drift {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) match %s (tol %g)\n", len(observed), *baseline, *tol)
}

// parseBench extracts "value sim-*" / "value farm-*" / "value churn-*" /
// "value seq-*"
// metric pairs from go-test benchmark output, keyed by "BenchName/unit"
// with any -GOMAXPROCS suffix stripped.
func parseBench(f *os.File) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// fields[1] is the iteration count; after that, (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			unit := fields[i+1]
			if !strings.HasPrefix(unit, "sim-") && !strings.HasPrefix(unit, "farm-") &&
				!strings.HasPrefix(unit, "churn-") && !strings.HasPrefix(unit, "seq-") &&
				!strings.HasPrefix(unit, "rdma-") {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q for %s", name, fields[i], unit)
			}
			key := name + "/" + unit
			if _, dup := out[key]; dup {
				return nil, fmt.Errorf("duplicate metric %s", key)
			}
			out[key] = v
		}
	}
	return out, sc.Err()
}

func within(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func writeJSON(path string, m map[string]float64) error {
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
