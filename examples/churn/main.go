// Online churn: jobs arrive on a seeded Poisson process, live for a
// bounded random lifetime, and depart — and the placement engine decides
// online where each gang lands. The greedy baseline burns the scarce
// InfiniBand slots on whatever arrives first; the adaptive
// destination-swap policy (after Avin et al., arXiv:1309.5826) spends
// bounded corrective migrations — priced through the fleet cost model
// and sequenced on the shared links — to keep IB-capable jobs on IB
// nodes as the mix drifts. The headline metric is the time integral of
// the fleet-wide affinity deficit: how many interconnect points the
// policy left on the table, for how long.
//
// The walkthrough runs both policies on the same seeded workload (tap on
// the engine's decision log included), then re-runs the comparison
// through a node crash, and finally shows the simfarm sweep view: the
// same matrix replicated over many seeded workloads with percentile
// aggregation.
//
// Run: go run ./examples/churn
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/churn"
	"repro/internal/experiments"
	"repro/internal/simfarm"
)

func main() {
	cfg := experiments.ChurnConfig{}
	cfg.Workload.Jobs = 32
	cfg.Workload.Seed = 7

	// Leg 1: one seeded workload, both policies, engine log tapped.
	fmt.Println("== one workload, two policies ==")
	var rows []experiments.ChurnRow
	for _, policy := range []churn.Policy{churn.PolicyGreedy, churn.PolicySwap} {
		res, err := experiments.RunChurnScenarioWith(cfg,
			experiments.ChurnScenario{Policy: policy},
			func(format string, args ...any) {
				if policy == churn.PolicySwap {
					fmt.Printf("  [engine] "+format+"\n", args...)
				}
			})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, res.Row)
		fmt.Printf("%-16s  cost %.0f pt·s  (avg %.1f)  swap-migs %d  rejected %d\n",
			policy, res.Row.CostIntegral, res.Row.AvgCost, res.Row.SwapMigs, res.Row.Rejected)
	}
	saved := 1 - rows[1].CostIntegral/rows[0].CostIntegral
	fmt.Printf("destination-swap bought down %.0f%% of greedy's affinity deficit\n\n", 100*saved)

	// Leg 2: the full policy × fault matrix — the ninjabench ext-churn view.
	fmt.Println("== policy × fault matrix ==")
	matrix, err := experiments.ExtChurnMatrix(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.ExtChurnRender(matrix))

	// Leg 3: the sweep view — each seed is a different workload, and the
	// farm aggregates makespan/downtime percentiles per policy × plan row.
	fmt.Println("== Monte Carlo sweep (8 seeded workloads per row) ==")
	f, err := simfarm.New(simfarm.ChurnMatrix(24, 8), simfarm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := f.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Summary.Render())
	fmt.Printf("%d runs, %d failures, %.0f runs/sec at parallelism %d\n",
		res.Summary.Runs, res.Summary.Failures, res.Wall.RunsPerSec, res.Wall.Parallelism)
}
