// Rolling maintenance: the fleet control plane drains an InfiniBand site
// one node at a time, capping jobs-in-flight per mini-plan, so the site
// can be patched with only one node's worth of headroom. Each drain
// re-places just the jobs touching the node under maintenance; already-
// maintained nodes return to the candidate pool, so the drain advances
// caterpillar-style across the site. A forced rollback-in-place on
// job00's first migration shows the executor re-queueing the job into a
// fresh batch until it lands, then a bidirectional evacuation rides out
// a 300 s site outage and brings every job back to its boot node.
//
// Run: go run ./examples/rolling_maintenance
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/fleet"
)

func main() {
	cfg := experiments.FleetConfig{Jobs: 4} // 8-node dc0, three-site fleet

	// Leg 1: rolling drain of dc0 with a forced rollback on job00.
	res, err := experiments.RunFleetScenario(cfg, experiments.FleetScenario{
		Kind:           fleet.RollingMaintenance,
		Placement:      fleet.PlaceSwap,
		MaxInFlight:    2,
		ForcedRollback: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("directive: %s %s, jobs-in-flight cap %d, deadline t=%.0fs\n\n",
		res.Plan.Dir.Kind, res.Plan.Dir.Source.Name,
		res.Plan.Dir.MaxInFlight, res.Plan.Dir.Deadline.Seconds())

	fmt.Println("fleet event trail:")
	fmt.Print(experiments.FleetEventsSummary(res.Report))

	fmt.Println("\ndrain records (site order):")
	for _, dr := range res.Report.Drains {
		fmt.Printf("  %s: %d job(s), %d batch(es), max in-flight %d, left %d\n",
			dr.Node, dr.Jobs, dr.Batches, dr.MaxInFlight, dr.Left)
	}

	fmt.Printf("\nreport: makespan %.1fs, aggregate downtime %.1fs, requeues %d\n",
		res.Report.Makespan.Seconds(), res.Report.Downtime.Seconds(), res.Report.Requeues)
	deadline := "hit"
	if !res.Report.DeadlineMet {
		deadline = "MISSED"
	}
	fmt.Printf("deadline %s; outcomes: %s\n", deadline, res.Report.OutcomeCounts())
	for _, jo := range res.Report.Jobs {
		fmt.Printf("  %s [%s]: attempt %d, %s, %.1fs–%.1fs\n",
			jo.Job.Name, jo.Leg, jo.Attempts, jo.Outcome,
			jo.Started.Seconds(), jo.Finished.Seconds())
	}

	// Leg 2: site outage — evacuate dc0 and migrate everyone home after
	// the restore.
	ret, err := experiments.RunFleetScenario(cfg, experiments.FleetScenario{
		Placement:  fleet.PlaceSwap,
		Seq:        fleet.SeqPolicy{Batched: true, Cap: 4},
		ReturnHome: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- bidirectional evacuation through a 300 s outage of %s ---\n\n",
		ret.Plan.Dir.Source.Name)
	fmt.Print(experiments.FleetEventsSummary(ret.Report))
	fmt.Printf("\nreport: makespan %.1fs, outcomes: %s\n",
		ret.Report.Makespan.Seconds(), ret.Report.OutcomeCounts())
	for _, j := range ret.Plan.Jobs {
		for _, vm := range j.VMs() {
			fmt.Printf("  %s back on %s\n", vm.Name(), vm.Node().Name)
		}
	}
}
