// Fleet evacuation: the datacenter-wide control plane evacuates eight
// independent MPI jobs off an InfiniBand site under a deadline. The
// placement solver keeps IB-capable jobs on the scarce IB destination
// (swap-refined, the paper's 1024-vs-100 exclusivity weights), the
// sequencer batches gang migrations under shared-WAN contention, and the
// executor runs one Ninja orchestrator per job concurrently — replanning
// on the fly when a planned destination node crashes.
//
// Run: go run ./examples/evacuation
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/fleet"
)

func main() {
	cfg := experiments.FleetConfig{} // default 8-job, three-site fleet
	sc := experiments.FleetScenario{
		Placement: fleet.PlaceSwap,
		Seq:       fleet.SeqPolicy{Batched: true, Cap: 4},
		Faulted:   true, // crash a planned destination mid-directive
	}
	res, err := experiments.RunFleetScenario(cfg, sc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("directive: %s %s, deadline t=%.0fs\n\n",
		res.Plan.Dir.Kind, res.Plan.Dir.Source.Name, res.Plan.Dir.Deadline.Seconds())

	fmt.Println("placement (swap-refined):")
	for _, a := range res.Plan.Assignments {
		kind := "tcp"
		if a.Job.IBCapable {
			kind = "ib "
		}
		dsts := ""
		for i, n := range a.Dsts {
			if i > 0 {
				dsts += ", "
			}
			dsts += n.Name
		}
		fmt.Printf("  %s [%s] → %s  (affinity %d)\n", a.Job.Name, kind, dsts, a.Score())
	}

	fmt.Printf("\nsequence (%s): %d batches, predicted makespan %.1fs\n",
		sc.Seq, len(res.Plan.Seq.Batches), res.Plan.Seq.Predicted.Seconds())
	for i, b := range res.Plan.Seq.Batches {
		fmt.Printf("  batch %d (predicted %.1fs):", i+1, res.Plan.Seq.PerBatch[i].Seconds())
		for _, m := range b {
			fmt.Printf(" %s", m.Job.Name)
		}
		fmt.Println()
	}

	fmt.Println("\nfleet event trail:")
	fmt.Print(experiments.FleetEventsSummary(res.Report))

	fmt.Printf("\nreport: makespan %.1fs, aggregate downtime %.1fs, replans %d\n",
		res.Report.Makespan.Seconds(), res.Report.Downtime.Seconds(), res.Report.Replans)
	deadline := "hit"
	if !res.Report.DeadlineMet {
		deadline = "MISSED"
	}
	fmt.Printf("deadline %s; outcomes: %s\n", deadline, res.Report.OutcomeCounts())
	for _, jo := range res.Report.Jobs {
		mark := ""
		if jo.Replanned {
			mark = "  (replanned)"
		}
		fmt.Printf("  %s: batch %d, %s, %.1fs–%.1fs%s\n",
			jo.Job.Name, jo.Batch+1, jo.Outcome,
			jo.Started.Seconds(), jo.Finished.Seconds(), mark)
	}
}
