// Server consolidation (§II-A "High resource utilization"): four VMs are
// packed onto two Ethernet hosts to free half the cluster, then spread
// back out. The example contrasts 1 and 8 MPI processes per VM — with 8,
// the consolidated phase suffers CPU over-commit (16 busy-polling vCPUs
// on 8 cores starve the virtio datapath), which is exactly the "2 hosts
// (TCP)" anomaly of the paper's Fig. 8b.
//
// Run: go run ./examples/consolidation
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/mpi"
	"repro/internal/ninja"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// phaseMeans runs the scenario for one ranks-per-VM setting and returns
// the mean step time of the spread (4-host TCP) and consolidated (2-host
// TCP) phases, excluding the steps that absorb migration overhead.
func phaseMeans(ranksPerVM int) (spread, consolidated float64) {
	d, err := experiments.Deploy(experiments.DeployConfig{
		NVMs: 4, RanksPerVM: ranksPerVM, AttachHCA: false, // TCP-only scenario
		DstHasIB: false, ContinueLikeRestart: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	type sample struct {
		end     sim.Time
		elapsed sim.Time
	}
	// Migrations are gated at exact step boundaries: every rank parks at
	// the gate, the operator requests the checkpoint, then releases them
	// into FTProbe (the same pattern the Fig. 8 harness uses).
	type gate struct {
		arrivals int
		ready    *sim.Future[struct{}]
		release  *sim.Future[struct{}]
	}
	gates := map[int]*gate{
		4:  {ready: sim.NewFuture[struct{}](d.K), release: sim.NewFuture[struct{}](d.K)},
		10: {ready: sim.NewFuture[struct{}](d.K), release: sim.NewFuture[struct{}](d.K)},
	}
	var steps []sample
	bench := &workloads.BcastReduce{
		BytesPerNode: 8e9,
		Steps:        14,
		StepDone: func(step int, e sim.Time) {
			steps = append(steps, sample{end: d.K.Now(), elapsed: e})
		},
	}
	nRanks := d.Job.Size()
	bench.BeforeStep = func(p *sim.Proc, _ *mpi.Rank, step int) {
		g, ok := gates[step]
		if !ok {
			return
		}
		g.arrivals++
		if g.arrivals == nRanks {
			g.ready.Set(struct{}{})
		}
		g.release.Wait(p)
	}
	appDone, err := workloads.Run(d.Job, bench)
	if err != nil {
		log.Fatal(err)
	}
	// Consolidate onto 2 hosts mid-run, spread back near the end.
	// AttachNever keeps the job on TCP throughout, so the comparison
	// isolates the consolidation effect.
	var mig1Start, mig1End, mig2Start sim.Time
	d.K.Go("operator", func(p *sim.Proc) {
		g := gates[4]
		g.ready.Wait(p) // four clean spread steps first
		mig1Start = p.Now()
		g.release.Set(struct{}{})
		packed := []*hw.Node{d.Dst.Nodes[0], d.Dst.Nodes[0], d.Dst.Nodes[1], d.Dst.Nodes[1]}
		if _, err := d.Orch.MigratePolicy(p, packed, ninja.AttachNever); err != nil {
			log.Fatal(err)
		}
		mig1End = p.Now()
		g = gates[10]
		g.ready.Wait(p) // a few consolidated steps
		mig2Start = p.Now()
		g.release.Set(struct{}{})
		if _, err := d.Orch.MigratePolicy(p, d.SrcNodes(4), ninja.AttachNever); err != nil {
			log.Fatal(err)
		}
	})
	d.K.Run()
	if !appDone.Done() {
		log.Fatal("application did not finish")
	}

	var sSum, cSum float64
	var sN, cN int
	for _, s := range steps {
		start := s.end - s.elapsed
		switch {
		case s.end <= mig1Start:
			sSum += s.elapsed.Seconds()
			sN++
		case start >= mig1End && s.end <= mig2Start:
			cSum += s.elapsed.Seconds()
			cN++
		}
	}
	if sN == 0 || cN == 0 {
		log.Fatalf("phase classification found %d spread / %d consolidated steps", sN, cN)
	}
	return sSum / float64(sN), cSum / float64(cN)
}

func main() {
	for _, ranks := range []int{1, 8} {
		spread, packed := phaseMeans(ranks)
		fmt.Printf("%d rank(s)/VM: 4-host step %6.1fs | 2-host (consolidated) step %6.1fs | slowdown ×%.2f\n",
			ranks, spread, packed, packed/spread)
	}
	fmt.Println("\nWith 1 rank/VM consolidation costs little; with 8 ranks/VM the")
	fmt.Println("over-committed hosts pay a super-linear virtio penalty — consolidate")
	fmt.Println("idle-ish VMs, not busy ones (cf. the Cherkasova et al. utilization data).")
}
