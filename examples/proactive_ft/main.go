// Proactive fault tolerance (§II-A): instead of live-migrating over the
// wire, the VMs are checkpointed to shared NFS as qcow2 snapshots and
// restarted on the Ethernet cluster — the path the paper proposes for
// restarting "VMs on an Ethernet cluster from checkpointed VM images on an
// Infiniband cluster". The MPI job survives the suspend/restore exactly as
// it survives live migration: the same SymVirt rendezvous and BTL
// reconstruction run around the transfer.
//
// Run: go run ./examples/proactive_ft
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/mpi"
	"repro/internal/ninja"
	"repro/internal/sim"
)

func main() {
	d, err := experiments.Deploy(experiments.DeployConfig{
		NVMs: 4, RanksPerVM: 2, AttachHCA: true,
		DstHasIB: false, ContinueLikeRestart: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The shared store gets a finite 1 GB/s server: concurrent snapshot
	// writes contend.
	d.NFS.EnableIO(d.K, 1e9, 1e9)
	for _, vm := range d.VMs {
		if _, err := vm.Memory().AddRegion("app-state", 4*hw.GB, 0.3, 1e9); err != nil {
			log.Fatal(err)
		}
	}

	iters := make([]int, d.Job.Size())
	appDone := d.Job.Launch("app", func(p *sim.Proc, r *mpi.Rank) {
		for i := 0; i < 60; i++ {
			r.FTProbe(p)
			r.Compute(p, 1.0)
			if err := r.Allreduce(p, 8e6); err != nil {
				log.Fatalf("rank %d: %v", r.RankID(), err)
			}
			iters[r.RankID()]++
		}
	})

	var rep ninja.Report
	d.K.Go("operator", func(p *sim.Proc) {
		p.Sleep(20 * sim.Second)
		fmt.Printf("[%6.1fs] pre-failure warning: checkpointing all VMs to NFS and restarting on the Ethernet cluster\n",
			p.Now().Seconds())
		var err error
		rep, err = d.Orch.ColdMigrate(p, d.DstNodes(4))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%6.1fs] all VMs restored\n", p.Now().Seconds())
	})
	d.K.Run()
	if !appDone.Done() {
		log.Fatal("application did not finish")
	}

	fmt.Printf("\ncheckpoint/restart breakdown: coordination %.2fs, detach %.2fs, save+restore %.2fs (total %.2fs)\n",
		rep.Coordination.Seconds(), rep.Detach.Seconds(), rep.Migration.Seconds(), rep.Total.Seconds())
	for _, cs := range rep.ColdStats {
		fmt.Printf("  %s → %s: image %.1f GB, save %.1fs, restore %.1fs\n",
			cs.From, cs.To, cs.ImageBytes/1e9, cs.SaveTime.Seconds(), cs.RestoreTime.Seconds())
	}
	name, _ := d.Job.Rank(0).TransportTo(d.Job.Size() - 1)
	fmt.Printf("transport after restart: %s; every rank completed %d iterations — no process restart\n",
		name, iters[0])
}
