// Fallback and recovery: the paper's Fig. 1 scenario end-to-end.
//
// Four VMs run a broadcast+reduce workload on the InfiniBand cluster.
// A fault forces a fallback migration to the Ethernet cluster (transport
// drops to TCP); once the InfiniBand cluster is healthy again, a recovery
// migration brings the VMs home and the transport returns to openib —
// all without restarting the MPI processes.
//
// Run: go run ./examples/fallback_recovery
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/ninja"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	d, err := experiments.Deploy(experiments.DeployConfig{
		NVMs: 4, RanksPerVM: 1, AttachHCA: true,
		DstHasIB: false, ContinueLikeRestart: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	series := metrics.Series{Label: "bcast+reduce, 8 GB per node"}
	transport := func() string {
		name, err := d.Job.Rank(0).TransportTo(1)
		if err != nil {
			return "?"
		}
		return name
	}
	bench := &workloads.BcastReduce{
		BytesPerNode: 8e9,
		Steps:        24,
		StepDone: func(step int, e sim.Time) {
			series.Add(step+1, e)
		},
	}
	appDone, err := workloads.Run(d.Job, bench)
	if err != nil {
		log.Fatal(err)
	}

	k := d.K
	var fallRep, recRep ninja.Report
	k.Go("operator", func(p *sim.Proc) {
		p.Sleep(100 * sim.Second)
		fmt.Printf("[%7.1fs] FAULT on the InfiniBand cluster — fallback migration (transport: %s)\n",
			p.Now().Seconds(), transport())
		var err error
		fallRep, err = d.Orch.Migrate(p, d.DstNodes(4))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%7.1fs] fallback complete → Ethernet cluster (transport: %s)\n",
			p.Now().Seconds(), transport())

		p.Sleep(200 * sim.Second)
		fmt.Printf("[%7.1fs] InfiniBand cluster healthy — recovery migration\n", p.Now().Seconds())
		recRep, err = d.Orch.Migrate(p, d.SrcNodes(4))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%7.1fs] recovery complete → InfiniBand cluster (transport: %s)\n",
			p.Now().Seconds(), transport())
	})
	k.Run()
	if !appDone.Done() {
		log.Fatal("application did not finish")
	}

	fmt.Println()
	fmt.Println(series.Bars(50))
	breakdown := metrics.NewTable("Overhead breakdown [s]",
		"phase", "coordination", "detach", "migration", "attach", "link-up", "total")
	breakdown.AddRow("fallback", fallRep.Coordination, fallRep.Detach, fallRep.Migration,
		fallRep.Attach, fallRep.Linkup, fallRep.Total)
	breakdown.AddRow("recovery", recRep.Coordination, recRep.Detach, recRep.Migration,
		recRep.Attach, recRep.Linkup, recRep.Total)
	fmt.Println(breakdown)
}
