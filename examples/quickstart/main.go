// Quickstart: the smallest end-to-end Ninja migration.
//
// Two VMs on an InfiniBand cluster run a 2-rank MPI job. We live-migrate
// both VMs to an Ethernet cluster while the job keeps iterating — no
// process restart, the transport switches from openib to tcp underneath.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/mpi"
	"repro/internal/ninja"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/vmm"
)

func main() {
	// 1. A simulated data center: 8 InfiniBand nodes + 8 Ethernet nodes
	//    (the paper's AGC cluster), shared NFS for the VM images.
	k := sim.NewKernel()
	testbed, ibCluster, ethCluster := hw.NewAGC(k)
	nfs := storage.NewNFS("nfs0")
	nfs.MountAll(ibCluster, ethCluster)

	// 2. Two VMs on InfiniBand nodes, HCAs passed through (VMM-bypass).
	var vms []*vmm.VM
	for i := 0; i < 2; i++ {
		vm, err := vmm.New(k, ibCluster.Nodes[i], testbed.Segment, vmm.Config{
			Name: fmt.Sprintf("vm%d", i), VCPUs: 8, MemoryBytes: 20 * hw.GB,
		}, vmm.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		vm.SetStorage(nfs)
		if err := vm.AttachBootHCA(); err != nil {
			log.Fatal(err)
		}
		vms = append(vms, vm)
	}
	k.RunUntil(fabric.DefaultIBTrainingTime + sim.Second) // links train

	// 3. An MPI job, one rank per VM, with the recovery knob set.
	job, err := mpi.NewJob(k, mpi.Config{VMs: vms, RanksPerVM: 1, ContinueLikeRestart: true})
	if err != nil {
		log.Fatal(err)
	}
	orch := ninja.New(job, ninja.Options{})

	// 4. The application: iterate compute + broadcast, probing for
	//    pending checkpoints at each boundary.
	iterations := make([]int, job.Size())
	appDone := job.Launch("app", func(p *sim.Proc, r *mpi.Rank) {
		for i := 0; i < 30; i++ {
			r.FTProbe(p)
			r.Compute(p, 1.0)
			if err := r.Bcast(p, 0, 64e6); err != nil {
				log.Fatalf("rank %d: %v", r.RankID(), err)
			}
			iterations[r.RankID()]++
		}
	})

	before, _ := job.Rank(0).TransportTo(1)

	// 5. Ninja migration to the Ethernet cluster, 10 s into the run.
	var rep ninja.Report
	k.Go("driver", func(p *sim.Proc) {
		p.Sleep(10 * sim.Second)
		var err error
		rep, err = orch.Migrate(p, []*hw.Node{ethCluster.Nodes[0], ethCluster.Nodes[1]})
		if err != nil {
			log.Fatal(err)
		}
	})
	k.Run()

	after, _ := job.Rank(0).TransportTo(1)
	fmt.Printf("transport before: %-7s after: %s\n", before, after)
	fmt.Printf("migration: coordination %.2fs, hotplug %.2fs, migration %.2fs, link-up %.2fs (total %.2fs)\n",
		rep.Coordination.Seconds(), rep.Hotplug().Seconds(),
		rep.Migration.Seconds(), rep.Linkup.Seconds(), rep.Total.Seconds())
	fmt.Printf("iterations completed: rank0=%d rank1=%d (no restart)\n", iterations[0], iterations[1])
	fmt.Printf("VMs now on: %s, %s\n", vms[0].Node().Name, vms[1].Node().Name)
	if !appDone.Done() {
		log.Fatal("application did not finish")
	}
}
