// Disaster recovery (§II-A): the cloud scheduler evacuates VMs from a
// data center before it fails and brings them home later, driven through
// the scheduler package's planned-event API (the GridARS role).
//
// Run: go run ./examples/disaster_recovery
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	d, err := experiments.Deploy(experiments.DeployConfig{
		NVMs: 4, RanksPerVM: 4, AttachHCA: true,
		DstHasIB: false, ContinueLikeRestart: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	bench, err := workloads.NPBClassD("CG")
	if err != nil {
		log.Fatal(err)
	}
	bench.Iterations = 60
	appDone, err := workloads.Run(d.Job, bench)
	if err != nil {
		log.Fatal(err)
	}

	sched := scheduler.New(d.Orch)
	epoch := d.K.Now()
	// Tsunami warning at t+60 s: evacuate to the remote Ethernet site.
	if err := sched.Plan(scheduler.Event{
		At: epoch + 60*sim.Second, Reason: scheduler.DisasterRecovery,
		Dsts: d.DstNodes(4), HostPCIID: "04:00.0",
	}); err != nil {
		log.Fatal(err)
	}
	// All-clear at t+400 s: recover to the InfiniBand site.
	if err := sched.Plan(scheduler.Event{
		At: epoch + 400*sim.Second, Reason: scheduler.Recovery,
		Dsts: d.SrcNodes(4), HostPCIID: "04:00.0",
	}); err != nil {
		log.Fatal(err)
	}
	fin, err := sched.Start()
	if err != nil {
		log.Fatal(err)
	}
	d.K.Run()
	if !fin.Done() || !appDone.Done() {
		log.Fatal("scheduler plan or application incomplete")
	}

	for _, out := range sched.Outcomes() {
		status := "ok"
		if out.Err != nil {
			status = out.Err.Error()
		}
		fmt.Printf("%-17s planned t=%7.1fs  ran %7.1fs–%7.1fs  overhead %6.1fs  [%s]\n",
			out.Event.Reason, out.Event.At.Seconds(),
			out.Started.Seconds(), out.Finished.Seconds(),
			out.Report.Total.Seconds(), status)
	}
	where := map[string]int{}
	for _, vm := range d.VMs {
		where[vm.Node().Name]++
	}
	fmt.Printf("VM placement after recovery: %v\n", where)
	name, _ := d.Job.Rank(0).TransportTo(d.Job.Size() - 1)
	fmt.Printf("inter-VM transport: %s — the job never restarted\n", name)
}
