// Package repro's benchmark harness: one testing.B benchmark per table and
// figure of the paper's evaluation, plus ablation benches for the design
// choices called out in DESIGN.md §5/§6. The simulations are deterministic;
// the reported custom metrics are *simulated* seconds (the reproduction
// targets), while ns/op measures harness cost only.
//
// Run: go test -bench=. -benchmem
package repro

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/hw"
	"repro/internal/mpi"
	"repro/internal/ninja"
	"repro/internal/sim"
	"repro/internal/simfarm"
	"repro/internal/vmm"
	"repro/internal/workloads"
)

// BenchmarkTable1ClusterSpec regenerates Table I (configuration render).
func BenchmarkTable1ClusterSpec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Table1(); len(tab.Rows) != 9 {
			b.Fatal("Table I shape")
		}
	}
}

// BenchmarkTable2HotplugLinkup regenerates Table II and reports the
// IB→IB hotplug and link-up simulated seconds.
func BenchmarkTable2HotplugLinkup(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Hotplug.Seconds(), "sim-hotplug-s")
	b.ReportMetric(rows[0].Linkup.Seconds(), "sim-linkup-s")
}

// BenchmarkFig6MemtestOverhead regenerates Fig. 6 (all four footprints)
// and reports the 2 GB and 16 GB migration times.
func BenchmarkFig6MemtestOverhead(b *testing.B) {
	var rows []experiments.Fig6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig6(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Migration.Seconds(), "sim-mig2GB-s")
	b.ReportMetric(rows[len(rows)-1].Migration.Seconds(), "sim-mig16GB-s")
	b.ReportMetric(rows[0].Linkup.Seconds(), "sim-linkup-s")
}

// BenchmarkFig7NPB regenerates Fig. 7 at 20% iteration scale (the shape —
// baseline vs proposed with a footprint-proportional migration component —
// is scale-invariant; run `ninjabench -run=fig7` for the full class D).
func BenchmarkFig7NPB(b *testing.B) {
	var rows []experiments.Fig7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig7(nil, 0.2)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Proposed.Seconds()-r.Baseline.Seconds(), "sim-ovh-"+r.Kernel+"-s")
	}
}

// BenchmarkFig8Fallback1Proc regenerates Fig. 8a (1 process/VM).
func BenchmarkFig8Fallback1Proc(b *testing.B) {
	benchmarkFig8(b, 1)
}

// BenchmarkFig8Fallback8Procs regenerates Fig. 8b (8 processes/VM).
func BenchmarkFig8Fallback8Procs(b *testing.B) {
	benchmarkFig8(b, 8)
}

func benchmarkFig8(b *testing.B, ranks int) {
	var res *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig8(ranks, 40)
		if err != nil {
			b.Fatal(err)
		}
	}
	mean := func(lo, hi int) float64 {
		var s float64
		var n int
		for i := lo; i < hi; i++ {
			if i == 10 || i == 20 || i == 30 {
				continue
			}
			s += res.Series.Points[i].Y.Seconds()
			n++
		}
		return s / float64(n)
	}
	b.ReportMetric(mean(0, 10), "sim-IB-step-s")
	b.ReportMetric(mean(10, 20), "sim-2hostTCP-step-s")
	b.ReportMetric(mean(30, 40), "sim-4hostTCP-step-s")
	b.ReportMetric(res.Series.Points[10].Y.Seconds(), "sim-migstep-s")
}

// --- Ablations -----------------------------------------------------------

// ablationDeploy builds a 2-VM IB deployment with custom params.
func ablationDeploy(b *testing.B, params *vmm.Params, clr bool) *experiments.Deployment {
	b.Helper()
	d, err := experiments.Deploy(experiments.DeployConfig{
		NVMs: 2, RanksPerVM: 1, AttachHCA: true, DstHasIB: true,
		ContinueLikeRestart: clr, Params: params,
	})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// runWithOneMigration runs a light iteration workload with one cross-node
// migration and returns the Ninja report plus the post-migration transport.
func runWithOneMigration(b *testing.B, d *experiments.Deployment) (ninja.Report, string) {
	b.Helper()
	app := d.Job.Launch("app", func(p *sim.Proc, rk *mpi.Rank) {
		for i := 0; i < 200; i++ {
			rk.FTProbe(p)
			rk.Compute(p, 1)
			if err := rk.Bcast(p, 0, 1e6); err != nil {
				b.Errorf("bcast: %v", err)
				return
			}
		}
	})
	var rep ninja.Report
	d.K.Go("driver", func(p *sim.Proc) {
		p.Sleep(2 * sim.Second)
		var err error
		rep, err = d.Orch.Migrate(p, d.DstNodes(2))
		if err != nil {
			b.Errorf("migrate: %v", err)
		}
	})
	d.K.Run()
	if !app.Done() {
		b.Fatal("app incomplete")
	}
	name, _ := d.Job.Rank(0).TransportTo(1)
	return rep, name
}

// BenchmarkAblationContinueLikeRestart contrasts recovery migration with
// and without ompi_cr_continue_like_restart: without it the job stays on
// tcp after returning to InfiniBand (DESIGN.md §5).
func BenchmarkAblationContinueLikeRestart(b *testing.B) {
	run := func(clr bool) string {
		d, err := experiments.Deploy(experiments.DeployConfig{
			NVMs: 2, RanksPerVM: 1, AttachHCA: true, DstHasIB: false,
			ContinueLikeRestart: clr,
		})
		if err != nil {
			b.Fatal(err)
		}
		app := d.Job.Launch("app", func(p *sim.Proc, rk *mpi.Rank) {
			for i := 0; i < 300; i++ {
				rk.FTProbe(p)
				rk.Compute(p, 1)
				if err := rk.Bcast(p, 0, 1e6); err != nil {
					b.Errorf("bcast: %v", err)
					return
				}
			}
		})
		d.K.Go("driver", func(p *sim.Proc) {
			p.Sleep(2 * sim.Second)
			if _, err := d.Orch.Migrate(p, d.DstNodes(2)); err != nil { // fallback
				b.Errorf("fallback: %v", err)
				return
			}
			p.Sleep(2 * sim.Second)
			if _, err := d.Orch.Migrate(p, d.SrcNodes(2)); err != nil { // recovery
				b.Errorf("recovery: %v", err)
			}
		})
		d.K.Run()
		if !app.Done() {
			b.Fatal("app incomplete")
		}
		name, _ := d.Job.Rank(0).TransportTo(1)
		return name
	}
	for i := 0; i < b.N; i++ {
		if got := run(false); got != "tcp" {
			b.Fatalf("without knob: %s", got)
		}
		if got := run(true); got != "openib" {
			b.Fatalf("with knob: %s", got)
		}
	}
}

// BenchmarkAblationZeroPages contrasts migration time with memtest's
// mostly-uniform pages against fully incompressible data of the same size:
// without compression, migration becomes wire-bound and ∝ footprint.
func BenchmarkAblationZeroPages(b *testing.B) {
	run := func(uniformity float64) float64 {
		// No passthrough devices: this ablation exercises the raw VMM
		// migration engine directly.
		d, err := experiments.Deploy(experiments.DeployConfig{
			NVMs: 2, RanksPerVM: 1, AttachHCA: false, DstHasIB: true,
			ContinueLikeRestart: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, vm := range d.VMs {
			if _, err := vm.Memory().AddRegion("data", 16*hw.GB, uniformity, 0); err != nil {
				b.Fatal(err)
			}
			vm.Guest().SetAppFrozen(true)
		}
		var dur sim.Time
		d.K.Go("driver", func(p *sim.Proc) {
			fut, err := d.VMs[0].Migrate(d.Dst.Nodes[0])
			if err != nil {
				b.Errorf("migrate: %v", err)
				return
			}
			dur = fut.Wait(p).Duration
		})
		d.K.Run()
		return dur.Seconds()
	}
	var compressed, raw float64
	for i := 0; i < b.N; i++ {
		compressed = run(workloads.MemtestUniformity)
		raw = run(0)
	}
	b.ReportMetric(compressed, "sim-compressed-s")
	b.ReportMetric(raw, "sim-raw-s")
	if raw <= compressed {
		b.Fatal("zero-page compression had no effect")
	}
}

// BenchmarkAblationRDMAMigration contrasts the §V RDMA migration transport
// with the default CPU-bound TCP transport.
func BenchmarkAblationRDMAMigration(b *testing.B) {
	run := func(rdma bool) float64 {
		params := vmm.DefaultParams()
		params.RDMAMigration = rdma
		d, err := experiments.Deploy(experiments.DeployConfig{
			NVMs: 2, RanksPerVM: 1, AttachHCA: false, DstHasIB: true,
			ContinueLikeRestart: true, Params: &params,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, vm := range d.VMs {
			vm.Memory().AddRegion("data", 8*hw.GB, 0, 0)
			vm.Guest().SetAppFrozen(true)
		}
		var dur sim.Time
		d.K.Go("driver", func(p *sim.Proc) {
			fut, err := d.VMs[0].Migrate(d.Dst.Nodes[0])
			if err != nil {
				b.Errorf("migrate: %v", err)
				return
			}
			dur = fut.Wait(p).Duration
		})
		d.K.Run()
		return dur.Seconds()
	}
	var tcp, rdma float64
	for i := 0; i < b.N; i++ {
		tcp = run(false)
		rdma = run(true)
	}
	b.ReportMetric(tcp, "sim-tcp-s")
	b.ReportMetric(rdma, "sim-rdma-s")
}

// BenchmarkAblationLinkPrewarm contrasts the ≈30 s link-up cost against
// the prewarmed-attach optimization (§V's main open issue).
func BenchmarkAblationLinkPrewarm(b *testing.B) {
	run := func(prewarm bool) float64 {
		params := vmm.DefaultParams()
		params.IBPrewarmedAttach = prewarm
		d := ablationDeploy(b, &params, true)
		rep, name := runWithOneMigration(b, d)
		if name != "openib" {
			b.Fatalf("transport = %s", name)
		}
		return rep.Linkup.Seconds()
	}
	var normal, prewarmed float64
	for i := 0; i < b.N; i++ {
		normal = run(false)
		prewarmed = run(true)
	}
	b.ReportMetric(normal, "sim-linkup-s")
	b.ReportMetric(prewarmed, "sim-prewarmed-s")
	if prewarmed >= normal {
		b.Fatal("prewarm had no effect")
	}
}

// BenchmarkAblationHotplugNoise quantifies the migration-noise factor on
// hotplug (Table II vs Fig. 6).
func BenchmarkAblationHotplugNoise(b *testing.B) {
	var self, cross float64
	for i := 0; i < b.N; i++ {
		d := ablationDeploy(b, nil, true)
		app := d.Job.Launch("app", func(p *sim.Proc, rk *mpi.Rank) {
			for j := 0; j < 150; j++ {
				rk.FTProbe(p)
				rk.Compute(p, 1)
			}
		})
		var selfRep, crossRep ninja.Report
		d.K.Go("driver", func(p *sim.Proc) {
			p.Sleep(2 * sim.Second)
			var err error
			selfRep, err = d.Orch.SelfMigrate(p)
			if err != nil {
				b.Errorf("self: %v", err)
				return
			}
			p.Sleep(2 * sim.Second)
			crossRep, err = d.Orch.Migrate(p, d.DstNodes(2))
			if err != nil {
				b.Errorf("cross: %v", err)
			}
		})
		d.K.Run()
		if !app.Done() {
			b.Fatal("app incomplete")
		}
		self = selfRep.Hotplug().Seconds()
		cross = crossRep.Hotplug().Seconds()
	}
	b.ReportMetric(self, "sim-self-hotplug-s")
	b.ReportMetric(cross, "sim-cross-hotplug-s")
}

// BenchmarkAblationQPReplay runs the RDMA-native ladder matrix: the
// hotplug baseline pays detach/attach plus ≈30 s of link training, QP
// checkpoint/replay pays neither, and every injected replay fault
// (resync stall, stale snapshot, HCA mismatch) demotes to the hotplug
// rung instead of failing. The rdma-* metrics are guarded by benchdiff
// alongside the sim-* family.
func BenchmarkAblationQPReplay(b *testing.B) {
	var rows []experiments.RDMARow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtRDMA()
		if err != nil {
			b.Fatal(err)
		}
	}
	byName := map[string]experiments.RDMARow{}
	demotions := 0
	for _, r := range rows {
		byName[r.Scenario] = r
		demotions += r.Demoted
	}
	hotplug, native := byName["hotplug-baseline"], byName["rdma-native"]
	if native.Total >= hotplug.Total {
		b.Fatalf("QP replay saved nothing: native %v vs hotplug %v", native.Total, hotplug.Total)
	}
	if native.Mode != ninja.ModeRDMANative || hotplug.Mode != ninja.ModeHotplug {
		b.Fatalf("unexpected rungs: native=%s hotplug=%s", native.Mode, hotplug.Mode)
	}
	b.ReportMetric(hotplug.Total.Seconds(), "rdma-hotplug-total-s")
	b.ReportMetric(native.Total.Seconds(), "rdma-native-total-s")
	b.ReportMetric((hotplug.Total - native.Total).Seconds(), "rdma-saved-s")
	b.ReportMetric(byName["rdma-resync-timeout"].Total.Seconds(), "rdma-demote-resync-total-s")
	b.ReportMetric(float64(demotions), "rdma-demotions")
}

// BenchmarkExtScalabilityWAN runs the §V scalability projection: N
// simultaneous migrations intra-enclosure vs across a shared WAN circuit.
func BenchmarkExtScalabilityWAN(b *testing.B) {
	var rows []experiments.ScalabilityRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtScalability([]int{1, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].CrossWAN.Seconds(), "sim-wan-1vm-s")
	b.ReportMetric(rows[1].CrossWAN.Seconds(), "sim-wan-8vm-s")
	b.ReportMetric(rows[1].IntraDC.Seconds(), "sim-intra-8vm-s")
}

// BenchmarkExtColdVsLive contrasts live migration with the proactive-FT
// checkpoint/restart path for 4 VMs crossing the WAN.
func BenchmarkExtColdVsLive(b *testing.B) {
	var rows []experiments.ColdVsLiveRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtColdVsLive([]int{4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Live.Seconds(), "sim-live-s")
	b.ReportMetric(rows[0].Cold.Seconds(), "sim-cold-s")
}

// BenchmarkExtBypassOverhead contrasts VMM-bypass with a para-virtualized
// IB driver — the design motivation quantified.
func BenchmarkExtBypassOverhead(b *testing.B) {
	var rows []experiments.BypassRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtBypassOverhead()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Bandwidth1GB/1e9, "sim-"+r.Mode+"-GBps")
	}
}

// fleetScaleBench runs the synthetic fleet-scale kernel workload (see
// internal/experiments/scale.go) on both backends, reporting events/sec
// and allocs/op. This is the tentpole comparison: the timer wheel must
// beat the heap on both metrics at 128 jobs (see TestFleetScalePerfGuard).
func fleetScaleBench(b *testing.B, jobs int) {
	const iters = 200
	for _, backend := range []sim.Backend{sim.BackendHeap, sim.BackendWheel} {
		b.Run(string(backend), func(b *testing.B) {
			b.ReportAllocs()
			var res experiments.FleetScaleResult
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res = experiments.FleetScaleSim(jobs, iters, backend)
			}
			wall := time.Since(start).Seconds()
			events := float64(res.Stats.Executed) * float64(b.N)
			if wall > 0 {
				b.ReportMetric(events/wall, "events/sec")
			}
			b.ReportMetric(float64(res.Stats.Executed), "events/op")
		})
	}
}

func BenchmarkFleetScale8(b *testing.B)   { fleetScaleBench(b, 8) }
func BenchmarkFleetScale32(b *testing.B)  { fleetScaleBench(b, 32) }
func BenchmarkFleetScale128(b *testing.B) { fleetScaleBench(b, 128) }

// BenchmarkFarmSweep runs a small Monte Carlo sweep (3 directives × 3
// fault plans × 2 seeds, 2-job fleets) through the simfarm worker pool and
// reports the per-row p50 makespans plus the failure count as farm-*
// metrics. These are percentiles of seeded simulations — deterministic at
// any worker count — so benchdiff gates them at the same 1e-6 tolerance as
// the sim-* family. Wall-clock throughput is reported ungated (runs/sec).
func BenchmarkFarmSweep(b *testing.B) {
	m := simfarm.DefaultMatrix(2, 2)
	var res *simfarm.Result
	for i := 0; i < b.N; i++ {
		f, err := simfarm.New(m, simfarm.Options{Parallelism: 4})
		if err != nil {
			b.Fatal(err)
		}
		res, err = f.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Summary.Rows {
		b.ReportMetric(r.Makespan.P50, "farm-p50-"+r.Directive+"-"+r.Plan+"-s")
	}
	b.ReportMetric(float64(res.Summary.Failures), "farm-failures")
	b.ReportMetric(res.Wall.RunsPerSec, "runs/sec")
}

// BenchmarkChurnPolicies runs the online churn matrix (greedy vs
// adaptive destination-swap, fault free and through a node crash) and
// reports the time-weighted affinity cost and corrective-migration spend
// of each row as churn-* metrics. Like sim-* and farm-*, these are
// deterministic simulated observables — benchdiff gates them at 1e-6 —
// and the cost ordering (swap strictly below greedy) is the subsystem's
// headline result.
func BenchmarkChurnPolicies(b *testing.B) {
	var rows []experiments.ChurnRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtChurnMatrix(experiments.ChurnConfig{})
		if err != nil {
			b.Fatal(err)
		}
	}
	slugs := []string{"greedy", "swap", "greedy-crash", "swap-crash", "swap-maxflow", "swap-maxflow-crash"}
	for i, r := range rows {
		b.ReportMetric(r.CostIntegral, "churn-cost-"+slugs[i]+"-pts")
		b.ReportMetric(float64(r.SwapMigs+r.FaultMigs), "churn-migs-"+slugs[i])
		b.ReportMetric(float64(r.Rejected), "churn-rejected-"+slugs[i])
	}
	if rows[1].CostIntegral >= rows[0].CostIntegral {
		b.Fatalf("destination-swap cost %.0f not below greedy %.0f",
			rows[1].CostIntegral, rows[0].CostIntegral)
	}
}

// BenchmarkSequencerPlan prices both sequencing policies on a
// deterministic 128-gang evacuation (one saturated source uplink, seven
// destination uplinks, staggered payloads and fixed overheads) and
// reports the predicted makespans and round counts as seq-* metrics.
// The policies mirror the ext-fleet matrix: LPT under the default drain
// cap of 4, max-flow uncapped (its rounds are sized by link admission).
// The plans are pure functions of the input, so benchdiff gates the
// seq-* family at the same 1e-6 tolerance as sim-*; ns/op measures
// planning cost only (the LPT insert is memoized — see
// fleet.TestPlanSequenceMemoizedCost for the wall-clock guard).
func BenchmarkSequencerPlan(b *testing.B) {
	caps := map[string]float64{"wan:src": 1.25e9}
	for i := 0; i < 7; i++ {
		caps[fmt.Sprintf("wan:dst%d", i)] = 1.25e9
	}
	var migs []*fleet.Migration
	for i := 0; i < 128; i++ {
		fixed := 13 * sim.Second
		if i%2 == 0 {
			fixed = 43 * sim.Second
		}
		migs = append(migs, &fleet.Migration{
			Job:     &fleet.Job{Name: fmt.Sprintf("j%03d", i)},
			Bytes:   (1 + float64(i%16)/4) * 1e9,
			Fixed:   fixed,
			MaxRate: 0.325e9,
			Links:   []string{"wan:src", fmt.Sprintf("wan:dst%d", i%7)},
		})
	}
	var lpt, mf fleet.Sequence
	for i := 0; i < b.N; i++ {
		lpt = fleet.PlanSequence(migs, caps, fleet.SeqPolicy{Batched: true, Cap: 4})
		mf = fleet.PlanSequence(migs, caps, fleet.SeqPolicy{Batched: true, Mode: fleet.SeqMaxFlow})
	}
	b.ReportMetric(lpt.Predicted.Seconds(), "seq-lpt-pred-s")
	b.ReportMetric(mf.Predicted.Seconds(), "seq-maxflow-pred-s")
	b.ReportMetric(float64(len(lpt.Batches)), "seq-lpt-batches")
	b.ReportMetric(float64(len(mf.Batches)), "seq-maxflow-batches")
	if mf.Predicted > lpt.Predicted {
		b.Fatalf("maxflow predicted %v exceeds LPT %v", mf.Predicted, lpt.Predicted)
	}
}

// TestFleetScalePerfGuard asserts the tentpole acceptance criterion —
// the wheel backend executes >=2x the events/sec of the heap backend with
// >=50% fewer allocations at 128 jobs. Wall-clock assertions are machine-
// sensitive, so the guard runs only when NINJA_PERF=1 (scripts/bench.sh
// sets it); the functional equivalence of the backends is covered
// unconditionally by the kernel oracle and ext-fleet determinism tests.
func TestFleetScalePerfGuard(t *testing.T) {
	if os.Getenv("NINJA_PERF") != "1" {
		t.Skip("set NINJA_PERF=1 to run the wall-clock perf guard")
	}
	const jobs, iters, rounds = 128, 200, 3
	measure := func(backend sim.Backend) (secs float64, allocs uint64, events uint64) {
		best := -1.0
		for r := 0; r < rounds; r++ {
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			res := experiments.FleetScaleSim(jobs, iters, backend)
			wall := time.Since(start).Seconds()
			runtime.ReadMemStats(&ms1)
			if best < 0 || wall < best {
				best = wall
				allocs = ms1.Mallocs - ms0.Mallocs
				events = res.Stats.Executed
			}
		}
		return best, allocs, events
	}
	heapSecs, heapAllocs, events := measure(sim.BackendHeap)
	wheelSecs, wheelAllocs, wheelEvents := measure(sim.BackendWheel)
	if events != wheelEvents {
		t.Fatalf("backends executed different event counts: heap %d, wheel %d", events, wheelEvents)
	}
	speedup := heapSecs / wheelSecs
	allocRatio := float64(wheelAllocs) / float64(heapAllocs)
	t.Logf("128 jobs: heap %.1fms (%d allocs), wheel %.1fms (%d allocs): %.2fx events/sec, %.0f%% fewer allocs",
		heapSecs*1e3, heapAllocs, wheelSecs*1e3, wheelAllocs, speedup, 100*(1-allocRatio))
	if speedup < 2 {
		t.Errorf("wheel speedup %.2fx, want >= 2x", speedup)
	}
	if allocRatio > 0.5 {
		t.Errorf("wheel allocs are %.0f%% of heap's, want <= 50%%", 100*allocRatio)
	}
}
