package hw

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// DataCenter is one site of a wide-area deployment: its own InfiniBand
// fabric (subnets do not span the WAN) and an Ethernet switch trunked to
// the WAN core.
type DataCenter struct {
	Name      string
	IBSwitch  *fabric.Switch
	EthSwitch *fabric.Switch
	Subnet    *fabric.IBSubnet
	Cluster   *Cluster
}

// WideArea is a multi-data-center deployment joined by WAN circuits — the
// substrate for the paper's §II-A disaster-recovery use case and the §V
// wide-area migration discussion. The Ethernet address space spans all
// sites (an L2-over-WAN overlay, as deployed after the 2011 Tōhoku
// earthquake evacuation study the paper cites).
type WideArea struct {
	K       *sim.Kernel
	Network *fabric.Network
	// Core is the WAN hub switch every site trunks into.
	Core *fabric.Switch
	// Segment is the shared Ethernet address space.
	Segment *fabric.EthSegment
	DCs     []*DataCenter
	// Trunks are the per-site WAN circuits, in DC order.
	Trunks []*fabric.Trunk
}

// SiteConfig shapes one data center of a heterogeneous wide-area
// deployment: its node count and hardware spec (IB only when the spec's
// IBBandwidth > 0), and optionally its own WAN circuit capacity.
type SiteConfig struct {
	Nodes int
	Spec  NodeSpec
	// WANBandwidth overrides the deployment-wide circuit capacity for
	// this site when > 0.
	WANBandwidth float64
}

// WideAreaConfig shapes a wide-area deployment.
type WideAreaConfig struct {
	DataCenters int
	NodesPerDC  int
	Spec        NodeSpec
	// Sites, when non-empty, gives each data center its own shape —
	// heterogeneous fleets mix IB-equipped and Ethernet-only sites. It
	// overrides DataCenters/NodesPerDC/Spec.
	Sites []SiteConfig
	// WANBandwidth is each site's circuit capacity (bytes/sec, per
	// direction) and WANLatency its one-way latency.
	WANBandwidth float64
	WANLatency   sim.Time
}

// sites normalizes the homogeneous and per-site forms of the config.
func (cfg WideAreaConfig) sites() []SiteConfig {
	if len(cfg.Sites) > 0 {
		return cfg.Sites
	}
	out := make([]SiteConfig, cfg.DataCenters)
	for i := range out {
		out[i] = SiteConfig{Nodes: cfg.NodesPerDC, Spec: cfg.Spec}
	}
	return out
}

// NewWideArea builds the multi-site testbed. Nodes follow each site's
// spec; sites get InfiniBand only when their spec's IBBandwidth > 0.
func NewWideArea(k *sim.Kernel, cfg WideAreaConfig) *WideArea {
	sites := cfg.sites()
	if len(sites) < 1 {
		panic("hw: wide-area deployment with no sites")
	}
	for i, s := range sites {
		if s.Nodes < 1 {
			panic(fmt.Sprintf("hw: wide-area site %d with %d nodes", i, s.Nodes))
		}
	}
	n := fabric.NewNetwork(k)
	core := n.NewSwitch("wan-core", fabric.Ethernet)
	w := &WideArea{K: k, Network: n, Core: core}
	w.Segment = fabric.NewEthSegment(core)
	for d, site := range sites {
		name := fmt.Sprintf("dc%d", d)
		dc := &DataCenter{
			Name:      name,
			EthSwitch: n.NewSwitch(name+"/eth", fabric.Ethernet),
		}
		wanBW := cfg.WANBandwidth
		if site.WANBandwidth > 0 {
			wanBW = site.WANBandwidth
		}
		w.Trunks = append(w.Trunks, n.Connect(dc.EthSwitch, core, wanBW, cfg.WANLatency))
		if site.Spec.IBBandwidth > 0 {
			dc.IBSwitch = n.NewSwitch(name+"/ib", fabric.InfiniBand)
			dc.Subnet = fabric.NewIBSubnet(dc.IBSwitch)
		}
		dc.Cluster = &Cluster{Name: name}
		for i := 0; i < site.Nodes; i++ {
			nodeName := fmt.Sprintf("%s-n%02d", name, i)
			node := &Node{
				Name:        nodeName,
				Cores:       site.Spec.Cores,
				MemoryBytes: site.Spec.MemoryBytes,
				CPU:         sim.NewPS(k, float64(site.Spec.Cores), 1),
				NIC:         w.Segment.NewNICOn(dc.EthSwitch, nodeName+"/eth0", site.Spec.EthBandwidth),
			}
			if dc.Subnet != nil {
				node.HCA = dc.Subnet.NewHCA(nodeName+"/ib0", site.Spec.IBBandwidth)
				node.HCA.PowerOn()
			}
			dc.Cluster.Nodes = append(dc.Cluster.Nodes, node)
		}
		w.DCs = append(w.DCs, dc)
	}
	return w
}
