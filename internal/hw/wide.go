package hw

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// DataCenter is one site of a wide-area deployment: its own InfiniBand
// fabric (subnets do not span the WAN) and an Ethernet switch trunked to
// the WAN core.
type DataCenter struct {
	Name      string
	IBSwitch  *fabric.Switch
	EthSwitch *fabric.Switch
	Subnet    *fabric.IBSubnet
	Cluster   *Cluster
}

// WideArea is a multi-data-center deployment joined by WAN circuits — the
// substrate for the paper's §II-A disaster-recovery use case and the §V
// wide-area migration discussion. The Ethernet address space spans all
// sites (an L2-over-WAN overlay, as deployed after the 2011 Tōhoku
// earthquake evacuation study the paper cites).
type WideArea struct {
	K       *sim.Kernel
	Network *fabric.Network
	// Core is the WAN hub switch every site trunks into.
	Core *fabric.Switch
	// Segment is the shared Ethernet address space.
	Segment *fabric.EthSegment
	DCs     []*DataCenter
	// Trunks are the per-site WAN circuits, in DC order.
	Trunks []*fabric.Trunk
}

// WideAreaConfig shapes a wide-area deployment.
type WideAreaConfig struct {
	DataCenters int
	NodesPerDC  int
	Spec        NodeSpec
	// WANBandwidth is each site's circuit capacity (bytes/sec, per
	// direction) and WANLatency its one-way latency.
	WANBandwidth float64
	WANLatency   sim.Time
}

// NewWideArea builds the multi-site testbed. Nodes follow Spec; sites get
// InfiniBand only when Spec.IBBandwidth > 0.
func NewWideArea(k *sim.Kernel, cfg WideAreaConfig) *WideArea {
	if cfg.DataCenters < 1 || cfg.NodesPerDC < 1 {
		panic(fmt.Sprintf("hw: bad wide-area shape %d×%d", cfg.DataCenters, cfg.NodesPerDC))
	}
	n := fabric.NewNetwork(k)
	core := n.NewSwitch("wan-core", fabric.Ethernet)
	w := &WideArea{K: k, Network: n, Core: core}
	w.Segment = fabric.NewEthSegment(core)
	for d := 0; d < cfg.DataCenters; d++ {
		name := fmt.Sprintf("dc%d", d)
		dc := &DataCenter{
			Name:      name,
			EthSwitch: n.NewSwitch(name+"/eth", fabric.Ethernet),
		}
		w.Trunks = append(w.Trunks, n.Connect(dc.EthSwitch, core, cfg.WANBandwidth, cfg.WANLatency))
		if cfg.Spec.IBBandwidth > 0 {
			dc.IBSwitch = n.NewSwitch(name+"/ib", fabric.InfiniBand)
			dc.Subnet = fabric.NewIBSubnet(dc.IBSwitch)
		}
		dc.Cluster = &Cluster{Name: name}
		for i := 0; i < cfg.NodesPerDC; i++ {
			nodeName := fmt.Sprintf("%s-n%02d", name, i)
			node := &Node{
				Name:        nodeName,
				Cores:       cfg.Spec.Cores,
				MemoryBytes: cfg.Spec.MemoryBytes,
				CPU:         sim.NewPS(k, float64(cfg.Spec.Cores), 1),
				NIC:         w.Segment.NewNICOn(dc.EthSwitch, nodeName+"/eth0", cfg.Spec.EthBandwidth),
			}
			if dc.Subnet != nil {
				node.HCA = dc.Subnet.NewHCA(nodeName+"/ib0", cfg.Spec.IBBandwidth)
				node.HCA.PowerOn()
			}
			dc.Cluster.Nodes = append(dc.Cluster.Nodes, node)
		}
		w.DCs = append(w.DCs, dc)
	}
	return w
}
