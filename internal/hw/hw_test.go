package hw

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

func TestMemoryAccounting(t *testing.T) {
	n := &Node{Name: "n", MemoryBytes: 48 * GB}
	if err := n.AllocMemory(20 * GB); err != nil {
		t.Fatalf("first alloc: %v", err)
	}
	if err := n.AllocMemory(20 * GB); err != nil {
		t.Fatalf("second alloc: %v", err)
	}
	if err := n.AllocMemory(20 * GB); err == nil {
		t.Fatal("third alloc should overflow 48 GB")
	}
	n.FreeMemory(20 * GB)
	if err := n.AllocMemory(20 * GB); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
	if n.MemoryUsed() != 40*GB {
		t.Fatalf("MemoryUsed = %v", n.MemoryUsed())
	}
}

func TestFreeBelowZeroPanics(t *testing.T) {
	n := &Node{Name: "n", MemoryBytes: GB}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.FreeMemory(1)
}

func TestNewAGCShape(t *testing.T) {
	k := sim.NewKernel()
	tb, ib, eth := NewAGC(k)
	if len(ib.Nodes) != 8 || len(eth.Nodes) != 8 {
		t.Fatalf("cluster sizes = %d/%d, want 8/8", len(ib.Nodes), len(eth.Nodes))
	}
	for _, n := range ib.Nodes {
		if !n.HasInfiniBand() {
			t.Fatalf("IB node %s lacks an HCA", n.Name)
		}
		if n.NIC == nil {
			t.Fatalf("node %s lacks a 10GbE NIC", n.Name)
		}
		if n.Cores != 8 || n.MemoryBytes != 48*GB {
			t.Fatalf("node %s spec wrong: %d cores %v mem", n.Name, n.Cores, n.MemoryBytes)
		}
	}
	for _, n := range eth.Nodes {
		if n.HasInfiniBand() {
			t.Fatalf("Ethernet node %s has an HCA", n.Name)
		}
	}
	if tb.IBSwitch.Tech != fabric.InfiniBand || tb.EthSwitch.Tech != fabric.Ethernet {
		t.Fatal("switch technologies wrong")
	}
}

func TestHostHCAsTrainAtBoot(t *testing.T) {
	k := sim.NewKernel()
	_, ib, _ := NewAGC(k)
	k.Run() // let training complete
	for _, n := range ib.Nodes {
		if n.HCA.State() != fabric.PortActive {
			t.Fatalf("node %s HCA state = %v after boot", n.Name, n.HCA.State())
		}
	}
}

func TestAllNodesOnSharedSegments(t *testing.T) {
	k := sim.NewKernel()
	_, ib, eth := NewAGC(k)
	// Any two nodes' NICs must be mutually reachable (one enclosure).
	a := ib.Nodes[0].NIC.Adapter()
	b := eth.Nodes[7].NIC.Adapter()
	if !fabric.Reachable(a, b) {
		t.Fatal("Ethernet NICs not on one segment")
	}
	// IB HCAs share the IB switch.
	if !fabric.Reachable(ib.Nodes[0].HCA.Adapter(), ib.Nodes[7].HCA.Adapter()) {
		t.Fatal("IB HCAs not on one switch")
	}
}

func TestAGCSpecTable(t *testing.T) {
	rows := AGCSpecTable()
	if len(rows) != 9 {
		t.Fatalf("Table I rows = %d, want 9", len(rows))
	}
	if rows[0].Item != "Node PC" || rows[0].Value != "Dell PowerEdge M610" {
		t.Fatalf("unexpected first row %+v", rows[0])
	}
}

func TestNodeCPUContention(t *testing.T) {
	// 16 one-core jobs on an 8-core node take twice as long as 8 jobs.
	k := sim.NewKernel()
	tb := NewTestbed(k)
	c := tb.AddCluster("c", 1, AGCNodeSpec)
	node := c.Nodes[0]
	var last sim.Time
	for i := 0; i < 16; i++ {
		k.Go("j", func(p *sim.Proc) {
			node.CPU.Serve(p, 10)
			last = p.Now()
		})
	}
	k.Run()
	if last < 19*sim.Second || last > 21*sim.Second {
		t.Fatalf("16 jobs on 8 cores finished at %v, want ~20s", last)
	}
}
