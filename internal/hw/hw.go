// Package hw models the physical substrate: compute nodes with cores and
// memory, clusters wired to interconnect switches, and the AIST Green
// Cloud (AGC) testbed configuration from Table I of the paper.
package hw

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// GB is one gibibyte in bytes, the unit the paper reports memory in.
const GB = float64(1 << 30)

// Node is one physical compute node.
type Node struct {
	Name  string
	Cores int
	// MemoryBytes is installed RAM.
	MemoryBytes float64
	// CPU is the node's processor-sharing compute resource: capacity =
	// Cores, per-job cap = 1 core. vCPUs, vhost threads and the QEMU
	// migration thread all contend here.
	CPU *sim.PS
	// HCA is the node's InfiniBand adapter (nil on Ethernet-only nodes).
	HCA *fabric.HCA
	// NIC is the node's physical 10 GbE adapter, used for TCP traffic and
	// as the live-migration transport.
	NIC *fabric.NIC

	memUsed float64
	failed  bool
}

// Fail marks the node crashed (fault injection): memory reservations and
// migrations toward it are refused until Restore. VMs already resident are
// not modelled as lost — the faults the paper worries about strike the
// *destination* before or during a move.
func (n *Node) Fail() { n.failed = true }

// Restore clears a crash mark.
func (n *Node) Restore() { n.failed = false }

// Failed reports whether the node is marked crashed.
func (n *Node) Failed() bool { return n.failed }

// AllocMemory reserves bytes of host RAM for a VM; it returns an error if
// the node would be oversubscribed or has crashed.
func (n *Node) AllocMemory(bytes float64) error {
	if n.failed {
		return fmt.Errorf("hw: node %s is down", n.Name)
	}
	if n.memUsed+bytes > n.MemoryBytes {
		return fmt.Errorf("hw: node %s out of memory (%0.f used + %0.f requested > %0.f)",
			n.Name, n.memUsed, bytes, n.MemoryBytes)
	}
	n.memUsed += bytes
	return nil
}

// FreeMemory releases a VM's reservation.
func (n *Node) FreeMemory(bytes float64) {
	n.memUsed -= bytes
	if n.memUsed < 0 {
		panic("hw: FreeMemory below zero")
	}
}

// MemoryUsed returns the currently reserved host RAM.
func (n *Node) MemoryUsed() float64 { return n.memUsed }

// HasInfiniBand reports whether the node has an IB HCA installed.
func (n *Node) HasInfiniBand() bool { return n.HCA != nil }

// Cluster is a set of nodes that share switches.
type Cluster struct {
	Name  string
	Nodes []*Node
}

// NodeSpec describes the per-node hardware of a cluster.
type NodeSpec struct {
	Cores       int
	MemoryBytes float64
	// IBBandwidth, if > 0, installs an IB HCA with this bandwidth (B/s).
	IBBandwidth float64
	// EthBandwidth is the physical NIC bandwidth (B/s); required.
	EthBandwidth float64
}

// AGCNodeSpec is the paper's Table I node: Dell PowerEdge M610, 2× quad-core
// Xeon E5540 (8 cores, HT off), 48 GB DDR3, Mellanox ConnectX QDR IB
// (≈3.2 GB/s effective), Broadcom NetXtreme II 10 GbE (1.25 GB/s).
var AGCNodeSpec = NodeSpec{
	Cores:        8,
	MemoryBytes:  48 * GB,
	IBBandwidth:  3.2e9,
	EthBandwidth: 1.25e9,
}

// Testbed is a full deployment: one network, the switches and the clusters.
// The paper's experiment splits a 16-node enclosure into an 8-node
// "InfiniBand cluster" and an 8-node "Ethernet cluster" (§IV-A).
type Testbed struct {
	K       *sim.Kernel
	Network *fabric.Network
	// IBSwitch/EthSwitch mirror Table I's Mellanox M3601Q and Dell M8024.
	IBSwitch  *fabric.Switch
	EthSwitch *fabric.Switch
	Subnet    *fabric.IBSubnet
	Segment   *fabric.EthSegment
	Clusters  []*Cluster
	nodeSeq   int
}

// NewTestbed creates an empty testbed with one IB switch and one Ethernet
// switch on a shared network.
func NewTestbed(k *sim.Kernel) *Testbed {
	n := fabric.NewNetwork(k)
	ibsw := n.NewSwitch("Mellanox-M3601Q", fabric.InfiniBand)
	ethsw := n.NewSwitch("Dell-M8024", fabric.Ethernet)
	return &Testbed{
		K:         k,
		Network:   n,
		IBSwitch:  ibsw,
		EthSwitch: ethsw,
		Subnet:    fabric.NewIBSubnet(ibsw),
		Segment:   fabric.NewEthSegment(ethsw),
	}
}

// AddCluster creates a cluster of n nodes built to spec. Every node gets a
// physical 10 GbE NIC; nodes get an IB HCA only if spec.IBBandwidth > 0.
// Installed HCAs are powered on (the host keeps links trained; the 30 s
// training cost is paid when a port is re-attached to a *guest*).
func (t *Testbed) AddCluster(name string, n int, spec NodeSpec) *Cluster {
	c := &Cluster{Name: name}
	for i := 0; i < n; i++ {
		nodeName := fmt.Sprintf("%s-n%02d", name, i)
		node := &Node{
			Name:        nodeName,
			Cores:       spec.Cores,
			MemoryBytes: spec.MemoryBytes,
			CPU:         sim.NewPS(t.K, float64(spec.Cores), 1),
			NIC:         t.Segment.NewNIC(nodeName+"/eth0", spec.EthBandwidth),
		}
		if spec.IBBandwidth > 0 {
			node.HCA = t.Subnet.NewHCA(nodeName+"/ib0", spec.IBBandwidth)
			node.HCA.PowerOn()
		}
		c.Nodes = append(c.Nodes, node)
		t.nodeSeq++
	}
	t.Clusters = append(t.Clusters, c)
	return c
}

// NewAGC builds the paper's evaluation testbed: an 8-node InfiniBand
// cluster and an 8-node Ethernet cluster (Table I hardware). Run the
// kernel briefly (or start work after t=0) to let host HCA links train.
func NewAGC(k *sim.Kernel) (*Testbed, *Cluster, *Cluster) {
	t := NewTestbed(k)
	ib := t.AddCluster("agc-ib", 8, AGCNodeSpec)
	ethSpec := AGCNodeSpec
	ethSpec.IBBandwidth = 0
	eth := t.AddCluster("agc-eth", 8, ethSpec)
	return t, ib, eth
}

// SpecRow is one row of the Table I hardware inventory.
type SpecRow struct{ Item, Value string }

// AGCSpecTable returns Table I of the paper as structured rows.
func AGCSpecTable() []SpecRow {
	return []SpecRow{
		{"Node PC", "Dell PowerEdge M610"},
		{"CPU", "Quad-core Intel Xeon E5540/2.53GHz x2"},
		{"Chipset", "Intel 5520"},
		{"Memory", "48 GB DDR3-1066"},
		{"Infiniband", "Mellanox ConnectX (MT26428)"},
		{"10 GbE", "Broadcom NetXtreme II (BMC57711)"},
		{"Disk", "SAS 300 GB hardware RAID-1 array"},
		{"Switch Infiniband", "Mellanox M3601Q"},
		{"Switch 10 GbE", "Dell M8024"},
	}
}
