package hw

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

func newWide(t *testing.T, dcs int) *WideArea {
	t.Helper()
	k := sim.NewKernel()
	return NewWideArea(k, WideAreaConfig{
		DataCenters:  dcs,
		NodesPerDC:   4,
		Spec:         AGCNodeSpec,
		WANBandwidth: 1.25e9, // a 10 Gbit/s circuit
		WANLatency:   10 * sim.Millisecond,
	})
}

func TestWideAreaShape(t *testing.T) {
	w := newWide(t, 3)
	if len(w.DCs) != 3 || len(w.Trunks) != 3 {
		t.Fatalf("%d DCs, %d trunks", len(w.DCs), len(w.Trunks))
	}
	for _, dc := range w.DCs {
		if len(dc.Cluster.Nodes) != 4 {
			t.Fatalf("%s has %d nodes", dc.Name, len(dc.Cluster.Nodes))
		}
		if dc.Subnet == nil || dc.IBSwitch == nil {
			t.Fatalf("%s missing InfiniBand", dc.Name)
		}
		for _, n := range dc.Cluster.Nodes {
			if n.HCA == nil || n.NIC == nil {
				t.Fatalf("node %s missing adapters", n.Name)
			}
		}
	}
}

func TestWideAreaEthernetRoutesAcrossWAN(t *testing.T) {
	w := newWide(t, 2)
	a := w.DCs[0].Cluster.Nodes[0].NIC.Adapter()
	b := w.DCs[1].Cluster.Nodes[0].NIC.Adapter()
	if !fabric.Reachable(a, b) {
		t.Fatal("cross-DC Ethernet unreachable")
	}
	path := fabric.Path(a, b)
	// up + trunk(dc0→core) + trunk(core→dc1) + down
	if len(path) != 4 {
		t.Fatalf("cross-DC path length = %d", len(path))
	}
	if fabric.PathLatency(path) != 20*sim.Millisecond {
		t.Fatalf("cross-DC latency = %v", fabric.PathLatency(path))
	}
}

func TestWideAreaInfiniBandIsSiteLocal(t *testing.T) {
	// IB subnets do not span the WAN: HCAs in different DCs are
	// unreachable (separate switches, no IB trunk).
	w := newWide(t, 2)
	a := w.DCs[0].Cluster.Nodes[0].HCA.Adapter()
	b := w.DCs[1].Cluster.Nodes[0].HCA.Adapter()
	if fabric.Reachable(a, b) {
		t.Fatal("IB should not span data centers")
	}
	// But it works within a site.
	c := w.DCs[0].Cluster.Nodes[1].HCA.Adapter()
	if !fabric.Reachable(a, c) {
		t.Fatal("intra-DC IB unreachable")
	}
}

func TestWideAreaWANContention(t *testing.T) {
	// Two cross-DC transfers from dc0 to dc1 share dc0's WAN circuit.
	w := newWide(t, 2)
	k := w.K
	src1 := w.DCs[0].Cluster.Nodes[0].NIC
	src2 := w.DCs[0].Cluster.Nodes[1].NIC
	dst1 := w.DCs[1].Cluster.Nodes[0].NIC
	dst2 := w.DCs[1].Cluster.Nodes[1].NIC
	epoch := k.Now()
	var d1, d2 sim.Time
	k.Go("t1", func(p *sim.Proc) {
		src1.Send(p, dst1.IP(), 1.25e9, 0, nil)
		d1 = p.Now() - epoch
	})
	k.Go("t2", func(p *sim.Proc) {
		src2.Send(p, dst2.IP(), 1.25e9, 0, nil)
		d2 = p.Now() - epoch
	})
	k.Run()
	// Each 1.25 GB at a fair half of the 1.25 GB/s circuit → ≈2 s.
	want := 2 * sim.Second
	tol := 100 * sim.Millisecond
	if d1 < want-tol || d1 > want+tol || d2 < want-tol || d2 > want+tol {
		t.Fatalf("d1=%v d2=%v, want ≈2s (shared WAN)", d1, d2)
	}
}
