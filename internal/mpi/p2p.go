package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// rendezvousHeaderBytes is the RTS control message size.
const rendezvousHeaderBytes = 64

// message is a delivered (or announced, for rendezvous) point-to-point
// message sitting in a rank's matching engine.
type message struct {
	src    int
	sender *Rank
	tag    int
	bytes  float64
	// rndv is non-nil for a rendezvous announcement: the receiver resolves
	// it with its clear-to-send, and the sender resolves done when the
	// payload lands.
	rndv *sim.Future[*rendezvous]
}

// rendezvous is the receiver's clear-to-send handshake state.
type rendezvous struct {
	receiver *Rank
	done     *sim.Future[struct{}]
}

// recvReq is a posted receive awaiting a match.
type recvReq struct {
	src, tag int
	got      *sim.Future[*message]
}

func (q *recvReq) matches(m *message) bool {
	return (q.src == AnySource || q.src == m.src) && (q.tag == AnyTag || q.tag == m.tag)
}

// Send delivers bytes to rank dst with the given tag. Small messages use
// the eager protocol (sender returns once the payload is buffered at the
// receiver); large messages rendezvous (sender blocks until the receiver
// posts a matching Recv and the payload transfer completes).
func (r *Rank) Send(p *sim.Proc, dst, tag int, bytes float64) error {
	if dst < 0 || dst >= len(r.job.ranks) {
		return fmt.Errorf("%w: send to %d", ErrRankRange, dst)
	}
	r.spinBegin()
	defer r.spinEnd()
	peer := r.job.ranks[dst]
	mod, err := r.btls.Select(peer)
	if err != nil {
		return err
	}
	if bytes <= r.job.cfg.EagerLimit {
		if err := mod.Transfer(p, peer, bytes); err != nil {
			return err
		}
		peer.deliver(&message{src: r.id, sender: r, tag: tag, bytes: bytes})
		return nil
	}
	// Rendezvous: RTS header, wait for CTS, then the payload.
	msg := &message{src: r.id, sender: r, tag: tag, bytes: bytes,
		rndv: sim.NewFuture[*rendezvous](r.job.k)}
	if err := mod.Transfer(p, peer, rendezvousHeaderBytes); err != nil {
		return err
	}
	peer.deliver(msg)
	// The CTS wait is checkpoint-interruptible: a pending coordination may
	// run while we are parked here, tearing down and rebuilding the BTLs.
	r.waitInterruptible(p, msg.rndv.Done)
	rv := msg.rndv.Value()
	// Re-select: the transport may have changed across a checkpoint
	// (fallback migration switches openib → tcp mid-rendezvous).
	mod, err = r.btls.Select(peer)
	if err != nil {
		return err
	}
	if err := mod.Transfer(p, peer, bytes); err != nil {
		return err
	}
	rv.done.Set(struct{}{})
	rv.receiver.wake.Broadcast()
	return nil
}

// Recv blocks until a message matching (src, tag) arrives and returns its
// size. Use AnySource/AnyTag as wildcards.
func (r *Rank) Recv(p *sim.Proc, src, tag int) (float64, error) {
	r.spinBegin()
	defer r.spinEnd()
	req := &recvReq{src: src, tag: tag, got: sim.NewFuture[*message](r.job.k)}
	if msg := r.takeUnexpected(req); msg != nil {
		return r.completeRecv(p, msg)
	}
	r.recvQ = append(r.recvQ, req)
	// Checkpoint-interruptible: the posted receive survives a full
	// coordination cycle (it is runtime state in guest memory).
	r.waitInterruptible(p, req.got.Done)
	return r.completeRecv(p, req.got.Value())
}

// completeRecv finishes the protocol for a matched message.
func (r *Rank) completeRecv(p *sim.Proc, msg *message) (float64, error) {
	if msg.rndv != nil {
		rv := &rendezvous{receiver: r, done: sim.NewFuture[struct{}](r.job.k)}
		msg.rndv.Set(rv) // clear-to-send
		msg.sender.wake.Broadcast()
		// Payload landing; interruptible for the same reason as the CTS
		// wait on the send side.
		r.waitInterruptible(p, rv.done.Done)
	}
	return msg.bytes, nil
}

// deliver runs the receiver-side matching engine.
func (r *Rank) deliver(msg *message) {
	for i, req := range r.recvQ {
		if req.matches(msg) {
			r.recvQ = append(r.recvQ[:i], r.recvQ[i+1:]...)
			req.got.Set(msg)
			r.wake.Broadcast()
			return
		}
	}
	r.unexpQ = append(r.unexpQ, msg)
}

// takeUnexpected pops the first queued message matching req, if any.
func (r *Rank) takeUnexpected(req *recvReq) *message {
	for i, msg := range r.unexpQ {
		if req.matches(msg) {
			r.unexpQ = append(r.unexpQ[:i], r.unexpQ[i+1:]...)
			return msg
		}
	}
	return nil
}

// Sendrecv performs a simultaneous send and receive (MPI_Sendrecv): the
// send runs in a helper process so large-message exchanges between peers
// cannot deadlock.
func (r *Rank) Sendrecv(p *sim.Proc, dst, sendTag int, bytes float64, src, recvTag int) (float64, error) {
	sendErr := sim.NewFuture[error](r.job.k)
	r.job.k.Go(fmt.Sprintf("rank%d/sendrecv", r.id), func(sp *sim.Proc) {
		sendErr.Set(r.Send(sp, dst, sendTag, bytes))
	})
	got, err := r.Recv(p, src, recvTag)
	if err != nil {
		return 0, err
	}
	if err := sendErr.Wait(p); err != nil {
		return 0, err
	}
	return got, nil
}

// PendingUnexpected returns the number of buffered unmatched messages
// (used by tests and the CRCP drain assertions).
func (r *Rank) PendingUnexpected() int { return len(r.unexpQ) }

// PendingReceives returns the number of posted unmatched receives.
func (r *Rank) PendingReceives() int { return len(r.recvQ) }
