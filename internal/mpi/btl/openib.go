package btl

import (
	"errors"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// OpenIB is the InfiniBand BTL: reliable-connected queue pairs over the
// guest's VMM-bypass HCA. Connections are established lazily per peer
// (address exchange over the out-of-band channel) and are invalidated
// whenever either side's HCA is reset — LIDs and QPNs change, which is
// fine because reconstruction re-exchanges them (§III-C, contrast with
// Nomad's location-dependent-resource virtualization).
type OpenIB struct {
	local    Endpoint
	released bool
	qps      map[int]*fabric.QueuePair // peer rank → connected QP
	// ConnectLatency models the OOB address exchange + QP state ramp.
	ConnectLatency sim.Time
	// paravirt, when set, models a para-virtualized IB driver instead of
	// VMM-bypass (the related-work alternative: Xen/VMware pv drivers,
	// §VI): every byte costs host CPU and every message pays extra
	// latency for the VMM crossing. The paper's design exists to avoid
	// exactly these costs during normal operation.
	paravirt *ParavirtCosts
}

// ParavirtCosts parameterizes a para-virtualized IB datapath.
type ParavirtCosts struct {
	// CPUCostPerByte is host CPU work per transferred byte (the copy
	// through the VMM; ≈1 core per 1.5 GB/s on the paper's hardware).
	CPUCostPerByte float64
	// ExtraLatency is the added per-message cost (VM exits, upcalls).
	ExtraLatency sim.Time
}

// DefaultParavirtCosts are calibrated to the ≈30–50% throughput loss
// reported for para-virtualized IB drivers of the period.
var DefaultParavirtCosts = ParavirtCosts{
	CPUCostPerByte: 1.0 / 1.5e9,
	ExtraLatency:   20 * sim.Microsecond,
}

// SetParavirt switches the module to the para-virtualized cost model
// (nil restores VMM-bypass).
func (m *OpenIB) SetParavirt(c *ParavirtCosts) { m.paravirt = c }

// NewOpenIB builds the openib BTL for an endpoint.
func NewOpenIB(local Endpoint) *OpenIB {
	return &OpenIB{
		local:          local,
		qps:            make(map[int]*fabric.QueuePair),
		ConnectLatency: 1 * sim.Millisecond,
	}
}

// Name implements Module.
func (m *OpenIB) Name() string { return "openib" }

// Exclusivity implements Module.
func (m *OpenIB) Exclusivity() int { return ExclusivityOpenIB }

// Usable implements Module: the guest must hold an HCA with an Active port.
func (m *OpenIB) Usable() bool {
	return !m.released && m.local.VM().Guest().IBUsable()
}

// Reachable implements Module: the peer needs an Active HCA on the same
// subnet.
func (m *OpenIB) Reachable(peer Endpoint) bool {
	lh, ok := m.local.VM().Guest().IBDevice()
	if !ok {
		return false
	}
	ph, ok := peer.VM().Guest().IBDevice()
	if !ok || ph.State() != fabric.PortActive {
		return false
	}
	return fabric.Reachable(lh.Adapter(), ph.Adapter())
}

// Transfer implements Module.
func (m *OpenIB) Transfer(p *sim.Proc, peer Endpoint, bytes float64) error {
	if m.released {
		return ErrReleased
	}
	qp, err := m.connection(p, peer)
	if err != nil {
		return err
	}
	if pv := m.paravirt; pv != nil {
		p.Sleep(pv.ExtraLatency)
		fut, err := qp.PostSend(bytes)
		if err != nil {
			delete(m.qps, peer.RankID())
			return fmt.Errorf("btl/openib: rank %d → %d: %w", m.local.RankID(), peer.RankID(), err)
		}
		// The VMM copies every byte on both ends, concurrent with the wire.
		parts := []*sim.Future[struct{}]{fut}
		if w := pv.CPUCostPerByte * bytes; w > 0 {
			parts = append(parts,
				m.local.VM().HostCPU().ServeAsync(w),
				peer.VM().HostCPU().ServeAsync(w))
		}
		sim.WaitAll(p, parts...)
		return nil
	}
	if err := qp.Send(p, bytes); err != nil {
		// A destroyed or stale QP means the device changed under us —
		// drop the cached connection so a future retry reconnects.
		delete(m.qps, peer.RankID())
		return fmt.Errorf("btl/openib: rank %d → %d: %w", m.local.RankID(), peer.RankID(), err)
	}
	return nil
}

// connection returns the QP for the peer, dialing it on first use.
func (m *OpenIB) connection(p *sim.Proc, peer Endpoint) (*fabric.QueuePair, error) {
	if qp, ok := m.qps[peer.RankID()]; ok && qp.Connected() {
		return qp, nil
	}
	localHCA, ok := m.local.VM().Guest().IBDevice()
	if !ok {
		return nil, ErrUnreachable
	}
	peerHCA, ok := peer.VM().Guest().IBDevice()
	if !ok {
		return nil, ErrUnreachable
	}
	p.Sleep(m.ConnectLatency) // OOB LID/QPN exchange
	qp, err := localHCA.CreateQP()
	if err != nil {
		return nil, err
	}
	peerQP, err := peerHCA.CreateQP()
	if err != nil {
		return nil, err
	}
	if err := qp.Connect(peerHCA.LID(), peerQP.QPN()); err != nil {
		return nil, err
	}
	m.qps[peer.RankID()] = qp
	return qp, nil
}

// Release implements Module: destroy every connection (ibv_destroy_qp on
// all QPs) so the HCA is quiescent and can be hot-detached.
func (m *OpenIB) Release() {
	m.qps = make(map[int]*fabric.QueuePair)
	m.released = true
}

// Reinit implements Module.
func (m *OpenIB) Reinit() {
	m.qps = make(map[int]*fabric.QueuePair)
	m.released = false
}

// ErrNoHCA is returned when the guest has no IB device at all.
var ErrNoHCA = errors.New("btl/openib: no HCA in guest")

// ConnectionCount returns the number of live cached connections (tests).
func (m *OpenIB) ConnectionCount() int { return len(m.qps) }
