package btl

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/vmm"
)

// ep is a minimal Endpoint for unit-testing modules.
type ep struct {
	id int
	vm *vmm.VM
}

func (e *ep) RankID() int { return e.id }
func (e *ep) VM() *vmm.VM { return e.vm }

func newPair(t *testing.T, withIB bool) (*sim.Kernel, *ep, *ep) {
	t.Helper()
	k := sim.NewKernel()
	tb := hw.NewTestbed(k)
	ib := tb.AddCluster("ib", 2, hw.AGCNodeSpec)
	var eps []*ep
	for i := 0; i < 2; i++ {
		vm, err := vmm.New(k, ib.Nodes[i], tb.Segment, vmm.Config{
			Name: ib.Nodes[i].Name + "/vm", VCPUs: 8, MemoryBytes: 20 * hw.GB,
		}, vmm.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if withIB {
			if err := vm.AttachBootHCA(); err != nil {
				t.Fatal(err)
			}
		}
		eps = append(eps, &ep{id: i, vm: vm})
	}
	k.RunUntil(fabric.DefaultIBTrainingTime + sim.Second)
	return k, eps[0], eps[1]
}

func TestSelectionOrder(t *testing.T) {
	_, a, b := newPair(t, true)
	set := NewSet(a, NewTCP(a), NewSM(a), NewOpenIB(a))
	mods := set.Modules()
	if mods[0].Name() != "sm" || mods[1].Name() != "openib" || mods[2].Name() != "tcp" {
		t.Fatalf("module order: %s %s %s", mods[0].Name(), mods[1].Name(), mods[2].Name())
	}
	m, err := set.Select(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "openib" {
		t.Fatalf("selected %s, want openib (sm unreachable across VMs)", m.Name())
	}
	if cached, ok := set.Selected(b.RankID()); !ok || cached != m {
		t.Fatal("selection not cached")
	}
}

func TestSelectionFallsBackToTCP(t *testing.T) {
	_, a, b := newPair(t, false)
	set := NewSet(a, NewSM(a), NewOpenIB(a), NewTCP(a))
	m, err := set.Select(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "tcp" {
		t.Fatalf("selected %s, want tcp", m.Name())
	}
}

func TestNoModuleError(t *testing.T) {
	k, a, b := newPair(t, false)
	// Take the Ethernet device down too: nothing reaches the peer.
	nic, _ := b.VM().Guest().EthDevice()
	nic.SetUp(false)
	_ = k
	set := NewSet(a, NewOpenIB(a), NewTCP(a))
	if _, err := set.Select(b); err == nil {
		t.Fatal("expected ErrNoModule")
	}
}

func TestOpenIBTransferAndReconnectAfterReset(t *testing.T) {
	k, a, b := newPair(t, true)
	mod := NewOpenIB(a)
	var firstErr, secondErr, thirdErr error
	k.Go("x", func(p *sim.Proc) {
		firstErr = mod.Transfer(p, b, 1e6)
		// Peer HCA resets (what a detach/attach cycle does).
		hca, _ := b.VM().Guest().IBDevice()
		hca.PowerOff()
		hca.PowerOn()
		hca.WaitActive(p)
		secondErr = mod.Transfer(p, b, 1e6) // stale QP → error, cache dropped
		thirdErr = mod.Transfer(p, b, 1e6)  // reconnects with fresh LID/QPN
	})
	k.Run()
	if firstErr != nil {
		t.Fatalf("first transfer: %v", firstErr)
	}
	if secondErr == nil {
		t.Fatal("transfer over stale QP should fail")
	}
	if thirdErr != nil {
		t.Fatalf("reconnect transfer: %v", thirdErr)
	}
}

func TestReleasedModuleUnusable(t *testing.T) {
	k, a, b := newPair(t, true)
	mod := NewOpenIB(a)
	mod.Release()
	if mod.Usable() {
		t.Fatal("released module still usable")
	}
	var err error
	k.Go("x", func(p *sim.Proc) { err = mod.Transfer(p, b, 10) })
	k.Run()
	if err != ErrReleased {
		t.Fatalf("err = %v, want ErrReleased", err)
	}
	mod.Reinit()
	if !mod.Usable() {
		t.Fatal("reinit did not restore usability")
	}
	if mod.ConnectionCount() != 0 {
		t.Fatal("reinit kept stale connections")
	}
}

func TestReconstructClearsSelection(t *testing.T) {
	_, a, b := newPair(t, true)
	set := NewSet(a, NewOpenIB(a), NewTCP(a))
	set.Select(b)
	set.ReleaseAll()
	if _, ok := set.Selected(b.RankID()); !ok {
		t.Fatal("ReleaseAll must keep the selection cache")
	}
	set.Reconstruct()
	if _, ok := set.Selected(b.RankID()); ok {
		t.Fatal("Reconstruct must clear the selection cache")
	}
}

func TestSMOnlyWithinVM(t *testing.T) {
	_, a, b := newPair(t, true)
	sm := NewSM(a)
	if sm.Reachable(b) {
		t.Fatal("sm reachable across VMs")
	}
	self := &ep{id: 5, vm: a.VM()}
	if !sm.Reachable(self) {
		t.Fatal("sm unreachable within VM")
	}
}

func TestSMTransferChargesCPU(t *testing.T) {
	k, a, _ := newPair(t, true)
	peer := &ep{id: 9, vm: a.VM()}
	sm := NewSM(a)
	var dur sim.Time
	k.Go("x", func(p *sim.Proc) {
		start := p.Now()
		if err := sm.Transfer(p, peer, 3e9); err != nil { // 3 GB at 3 GB/s
			t.Errorf("Transfer: %v", err)
		}
		dur = p.Now() - start
	})
	k.Run()
	if dur < 900*sim.Millisecond || dur > 1100*sim.Millisecond {
		t.Fatalf("sm copy of 3GB took %v, want ≈1s", dur)
	}
}

func TestUsableNames(t *testing.T) {
	_, a, _ := newPair(t, true)
	set := NewSet(a, NewSM(a), NewOpenIB(a), NewTCP(a))
	names := set.UsableNames()
	if len(names) != 3 || names[0] != "sm" || names[1] != "openib" || names[2] != "tcp" {
		t.Fatalf("UsableNames = %v", names)
	}
}

func TestTCPTransferChargesVhost(t *testing.T) {
	k, a, b := newPair(t, false)
	mod := NewTCP(a)
	if !mod.Usable() || !mod.Reachable(b) {
		t.Fatal("tcp should be usable between VMs")
	}
	var dur sim.Time
	k.Go("x", func(p *sim.Proc) {
		start := p.Now()
		if err := mod.Transfer(p, b, 1e9); err != nil {
			t.Errorf("Transfer: %v", err)
		}
		dur = p.Now() - start
	})
	k.Run()
	// 1 GB through the 0.5 GB/s-per-core vhost datapath: ≈2 s (CPU-bound,
	// wire would take 0.8 s).
	if dur < 1800*sim.Millisecond || dur > 2400*sim.Millisecond {
		t.Fatalf("tcp transfer took %v, want ≈2s (vhost-bound)", dur)
	}
}

func TestTCPOvercommitPenalty(t *testing.T) {
	_, a, _ := newPair(t, false)
	if p := overcommitPenalty(a); p != 1 {
		t.Fatalf("idle host penalty = %v, want 1", p)
	}
	a.VM().HostCPU().AddBackground(16) // 2× over-commit on 8 cores
	p := overcommitPenalty(a)
	if p < 4 || p > 5 {
		t.Fatalf("2× over-commit penalty = %v, want ≈(17/8)²", p)
	}
	a.VM().HostCPU().AddBackground(-16)
}

func TestOpenIBParavirtSlower(t *testing.T) {
	timeIt := func(paravirt bool) sim.Time {
		k, a, b := newPair(t, true)
		mod := NewOpenIB(a)
		if paravirt {
			pv := DefaultParavirtCosts
			mod.SetParavirt(&pv)
		}
		var dur sim.Time
		k.Go("x", func(p *sim.Proc) {
			start := p.Now()
			if err := mod.Transfer(p, b, 1e9); err != nil {
				t.Errorf("Transfer: %v", err)
			}
			dur = p.Now() - start
		})
		k.Run()
		return dur
	}
	bypass, pv := timeIt(false), timeIt(true)
	if pv <= bypass {
		t.Fatalf("paravirt (%v) should be slower than bypass (%v)", pv, bypass)
	}
}

func TestSMReleaseReinit(t *testing.T) {
	k, a, _ := newPair(t, true)
	peer := &ep{id: 3, vm: a.VM()}
	sm := NewSM(a)
	sm.Release()
	if sm.Usable() {
		t.Fatal("released sm usable")
	}
	var err error
	k.Go("x", func(p *sim.Proc) { err = sm.Transfer(p, peer, 10) })
	k.Run()
	if err != ErrReleased {
		t.Fatalf("err = %v", err)
	}
	sm.Reinit()
	if !sm.Usable() {
		t.Fatal("reinit failed")
	}
}

func TestSMUnreachablePeerError(t *testing.T) {
	k, a, b := newPair(t, true)
	sm := NewSM(a)
	var err error
	k.Go("x", func(p *sim.Proc) { err = sm.Transfer(p, b, 10) })
	k.Run()
	if err != ErrUnreachable {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}
