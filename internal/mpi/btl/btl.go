// Package btl models Open MPI's Byte Transfer Layer: per-interconnect
// point-to-point transport modules with exclusivity-based selection.
// This layer is where the paper's transport transparency lives — after a
// migration the modules are torn down and reconstructed, and whichever
// usable module has the highest exclusivity wins (openib 1024 beats tcp
// 100, so InfiniBand is preferred whenever a trained HCA exists; §III-C).
package btl

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/vmm"
)

// Open MPI's default exclusivity values: the higher, the more preferred.
const (
	ExclusivitySM     = 65536 // shared memory within one guest
	ExclusivityOpenIB = 1024
	ExclusivityTCP    = 100
)

// Endpoint identifies a communication peer: an MPI process and the VM it
// runs in. The mpi package's Rank implements it.
type Endpoint interface {
	RankID() int
	VM() *vmm.VM
}

// Errors returned by transfers.
var (
	ErrUnreachable = errors.New("btl: peer unreachable via this module")
	ErrNoModule    = errors.New("btl: no usable module for peer")
	ErrReleased    = errors.New("btl: module released")
)

// Module is one transport instance owned by one endpoint.
type Module interface {
	// Name is the component name ("self", "sm", "openib", "tcp").
	Name() string
	// Exclusivity is the selection priority.
	Exclusivity() int
	// Usable reports whether the local device exists and is up right now.
	Usable() bool
	// Reachable reports whether the module can reach the peer (device
	// technology and topology permitting).
	Reachable(peer Endpoint) bool
	// Transfer delivers bytes to the peer, blocking until the payload is
	// on the far side.
	Transfer(p *sim.Proc, peer Endpoint, bytes float64) error
	// Release frees all interconnect resources (queue pairs, sockets).
	// The paper's pre-checkpoint phase calls this so the HCA can be
	// detached safely. A released module is unusable until Reinit.
	Release()
	// Reinit makes a released module usable again (BTL reconstruction in
	// the continue/restart phase).
	Reinit()
}

// Set is one endpoint's collection of BTL modules plus the per-peer
// selection cache.
type Set struct {
	local    Endpoint
	modules  []Module
	selected map[int]Module // peer rank → chosen module
}

// NewSet builds a module set for the endpoint.
func NewSet(local Endpoint, modules ...Module) *Set {
	s := &Set{local: local, modules: modules, selected: make(map[int]Module)}
	sort.SliceStable(s.modules, func(i, j int) bool {
		return s.modules[i].Exclusivity() > s.modules[j].Exclusivity()
	})
	return s
}

// Modules returns the modules in descending exclusivity order.
func (s *Set) Modules() []Module { return s.modules }

// Select returns the module used to reach peer, choosing the usable,
// reachable module with the highest exclusivity on first use and caching
// the decision (Open MPI fixes the BML routing at add_procs time).
func (s *Set) Select(peer Endpoint) (Module, error) {
	if m, ok := s.selected[peer.RankID()]; ok {
		return m, nil
	}
	for _, m := range s.modules {
		if m.Usable() && m.Reachable(peer) {
			s.selected[peer.RankID()] = m
			return m, nil
		}
	}
	return nil, fmt.Errorf("%w: rank %d", ErrNoModule, peer.RankID())
}

// Selected returns the cached choice for a peer, if any.
func (s *Set) Selected(peer int) (Module, bool) {
	m, ok := s.selected[peer]
	return m, ok
}

// ReleaseAll releases every module (pre-checkpoint: all interconnect
// resources freed). The per-peer selection cache is retained — Open MPI
// keeps its BML endpoints across a checkpoint; only Reconstruct re-runs
// selection. This is precisely why recovery migration needs
// continue_like_restart: without reconstruction the stale (tcp) routing
// survives even though a faster device has appeared.
func (s *Set) ReleaseAll() {
	for _, m := range s.modules {
		m.Release()
	}
}

// Reconstruct re-initializes every module and clears the selection cache,
// so the next Transfer re-runs selection against the *current* device set
// — the step that switches transports after an interconnect-transparent
// migration.
func (s *Set) Reconstruct() {
	for _, m := range s.modules {
		m.Reinit()
	}
	s.selected = make(map[int]Module)
}

// UsableNames returns the names of currently usable modules, in
// exclusivity order — handy for logs and assertions in tests.
func (s *Set) UsableNames() []string {
	var out []string
	for _, m := range s.modules {
		if m.Usable() {
			out = append(out, m.Name())
		}
	}
	return out
}
