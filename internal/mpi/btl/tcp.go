package btl

import (
	"fmt"

	"repro/internal/sim"
)

// TCP is the tcp BTL: kernel TCP/IP over the guest's virtio-net device.
// It works on any Ethernet segment, costs host CPU (vhost datapath) and
// has higher per-message latency than the VMM-bypass path — the fallback
// transport of the paper's fallback operation.
//
// The vhost datapath cost is scaled by an over-commit penalty: when a
// host runs more busy vCPUs than cores (Fig. 8's "2 hosts (TCP)" server
// consolidation), the single-queue virtio-net datapath degrades
// super-linearly — scheduling latency between spinning vCPUs and the
// vhost thread, cache pollution, and exit storms. We model the per-byte
// cost as multiplied by the square of the busy-load/cores ratio (≥1),
// which reproduces the paper's observation that 8 processes/VM on
// consolidated hosts is far slower than 1 process/VM while every other
// configuration speeds up.
type TCP struct {
	local    Endpoint
	released bool
}

// overcommitPenalty returns the vhost efficiency penalty for an endpoint's
// current host.
func overcommitPenalty(e Endpoint) float64 {
	cpu := e.VM().HostCPU()
	ratio := (float64(cpu.Load()) + cpu.Background()) / cpu.Capacity()
	if ratio <= 1 {
		return 1
	}
	return ratio * ratio
}

// NewTCP builds the tcp BTL for an endpoint.
func NewTCP(local Endpoint) *TCP { return &TCP{local: local} }

// Name implements Module.
func (m *TCP) Name() string { return "tcp" }

// Exclusivity implements Module.
func (m *TCP) Exclusivity() int { return ExclusivityTCP }

// Usable implements Module: the guest needs an up Ethernet device.
func (m *TCP) Usable() bool {
	if m.released {
		return false
	}
	nic, ok := m.local.VM().Guest().EthDevice()
	return ok && nic.Up()
}

// Reachable implements Module: the peer's NIC must be on the same segment
// and up.
func (m *TCP) Reachable(peer Endpoint) bool {
	ln, ok := m.local.VM().Guest().EthDevice()
	if !ok {
		return false
	}
	pn, ok := peer.VM().Guest().EthDevice()
	if !ok || !pn.Up() {
		return false
	}
	return ln.Segment() == pn.Segment()
}

// Transfer implements Module: a virtio/TCP transfer charging vhost CPU on
// both hosts.
func (m *TCP) Transfer(p *sim.Proc, peer Endpoint, bytes float64) error {
	if m.released {
		return ErrReleased
	}
	ln, ok := m.local.VM().Guest().EthDevice()
	if !ok {
		return ErrUnreachable
	}
	pn, ok := peer.VM().Guest().EthDevice()
	if !ok {
		return ErrUnreachable
	}
	// Wire flow (no NIC-level CPU charging: the BTL owns the vhost cost
	// model so it can apply the over-commit penalty).
	fut, err := ln.SendTo(pn.IP(), bytes, 0, nil, nil)
	if err != nil {
		return fmt.Errorf("btl/tcp: rank %d → %d: %w", m.local.RankID(), peer.RankID(), err)
	}
	// vhost datapath work on both hosts, concurrent with the flow.
	parts := []*sim.Future[struct{}]{fut}
	if w := ln.CPUCostPerByte * bytes * overcommitPenalty(m.local); w > 0 {
		parts = append(parts, m.local.VM().HostCPU().ServeAsync(w))
	}
	if w := pn.CPUCostPerByte * bytes * overcommitPenalty(peer); w > 0 {
		parts = append(parts, peer.VM().HostCPU().ServeAsync(w))
	}
	sim.WaitAll(p, parts...)
	return nil
}

// Release implements Module (sockets closed; nothing device-fatal here —
// TCP connections are re-dialed transparently on Reinit).
func (m *TCP) Release() { m.released = true }

// Reinit implements Module.
func (m *TCP) Reinit() { m.released = false }
