package btl

import (
	"repro/internal/sim"
)

// SM is the shared-memory BTL for ranks inside the same guest: a memcpy
// through a shared segment, charged as CPU work on the host (both ranks'
// vCPUs live there). Highest exclusivity — co-located ranks never touch
// the wire, before or after a migration.
type SM struct {
	local    Endpoint
	released bool
	// CopyBandwidth is the per-pair memcpy throughput (bytes per
	// core-second); one core of the paper's Nehalem streams ≈3 GB/s.
	CopyBandwidth float64
	// Latency is the per-message queue-pair-in-shm handoff cost.
	Latency sim.Time
}

// NewSM builds the sm BTL for an endpoint.
func NewSM(local Endpoint) *SM {
	return &SM{local: local, CopyBandwidth: 3e9, Latency: 1 * sim.Microsecond}
}

// Name implements Module.
func (m *SM) Name() string { return "sm" }

// Exclusivity implements Module.
func (m *SM) Exclusivity() int { return ExclusivitySM }

// Usable implements Module (shared memory always exists).
func (m *SM) Usable() bool { return !m.released }

// Reachable implements Module: both ranks must live in the same guest.
func (m *SM) Reachable(peer Endpoint) bool {
	return m.local.VM() == peer.VM()
}

// Transfer implements Module: a memcpy on the host CPU.
func (m *SM) Transfer(p *sim.Proc, peer Endpoint, bytes float64) error {
	if m.released {
		return ErrReleased
	}
	if !m.Reachable(peer) {
		return ErrUnreachable
	}
	p.Sleep(m.Latency)
	if bytes > 0 {
		m.local.VM().HostCPU().Serve(p, bytes/m.CopyBandwidth)
	}
	return nil
}

// Release implements Module.
func (m *SM) Release() { m.released = true }

// Reinit implements Module.
func (m *SM) Reinit() { m.released = false }
