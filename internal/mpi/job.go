// Package mpi models an Open MPI-like runtime: ranks hosted in VMs,
// point-to-point messaging over BTL transport modules, collectives, an
// out-of-band (OOB) control channel, and the checkpoint/restart
// coordination (CRCP) that Ninja migration reuses to switch transports
// across a migration without restarting processes.
package mpi

import (
	"errors"
	"fmt"

	"repro/internal/crs"
	"repro/internal/mpi/btl"
	"repro/internal/sim"
	"repro/internal/vmm"
)

// Config describes an MPI job launch.
type Config struct {
	// VMs are the guest machines; rank i runs on VMs[i/RanksPerVM].
	VMs []*vmm.VM
	// RanksPerVM is the number of MPI processes per VM (≥1).
	RanksPerVM int
	// EagerLimit is the eager/rendezvous protocol switchover in bytes
	// (Open MPI openib default ≈12 KB; we use one limit for all BTLs).
	EagerLimit float64
	// OOBLatency is the out-of-band (TCP management channel) latency.
	OOBLatency sim.Time
	// ReduceBandwidth is reduction-operator compute throughput
	// (bytes per core-second).
	ReduceBandwidth float64
	// ContinueLikeRestart mirrors ompi_cr_continue_like_restart: forcibly
	// reconstruct BTL modules on the continue path even when only TCP was
	// in use before the checkpoint — required for recovery migration to
	// re-discover InfiniBand (§III-C).
	ContinueLikeRestart bool
}

// Errors returned by the runtime.
var (
	ErrRankRange      = errors.New("mpi: rank out of range")
	ErrCkptInProgress = errors.New("mpi: checkpoint already in progress")
)

// Job is a running MPI application: a set of ranks with their transports.
type Job struct {
	k     *sim.Kernel
	cfg   Config
	ranks []*Rank

	bar barrierState

	ckptPending bool
	ckptGen     int
	ckptDone    *sim.Future[struct{}]
	ckptJoined  int
	ckptStats   []CkptPhaseTimes
	// transparentCkpt marks the in-flight checkpoint as
	// interconnect-transparent (RDMA-native migration): the BTLs keep
	// their queue pairs — the transport migrates them underneath the
	// runtime — so the pre-checkpoint release and post-continue
	// reconstruction are skipped. The orchestrator clears the flag
	// mid-checkpoint when the QP replay demotes to the hotplug rung, in
	// which case the continue path reconstructs as usual.
	transparentCkpt bool

	nextCommID int
}

// NewJob launches an MPI job across the given VMs. Each rank gets its own
// BTL module set (sm, openib, tcp) and a no-op CRS until one is installed.
func NewJob(k *sim.Kernel, cfg Config) (*Job, error) {
	if len(cfg.VMs) == 0 || cfg.RanksPerVM < 1 {
		return nil, fmt.Errorf("mpi: bad job shape: %d VMs × %d ranks", len(cfg.VMs), cfg.RanksPerVM)
	}
	if cfg.EagerLimit <= 0 {
		cfg.EagerLimit = 64 << 10
	}
	if cfg.OOBLatency <= 0 {
		cfg.OOBLatency = 100 * sim.Microsecond
	}
	if cfg.ReduceBandwidth <= 0 {
		cfg.ReduceBandwidth = 2e9
	}
	j := &Job{k: k, cfg: cfg}
	j.bar.cond = sim.NewCond(k)
	n := len(cfg.VMs) * cfg.RanksPerVM
	for i := 0; i < n; i++ {
		r := &Rank{
			job:  j,
			id:   i,
			vm:   cfg.VMs[i/cfg.RanksPerVM],
			crs:  crs.Noop{},
			wake: sim.NewCond(k),
		}
		r.btls = btl.NewSet(r, btl.NewSM(r), btl.NewOpenIB(r), btl.NewTCP(r))
		j.ranks = append(j.ranks, r)
	}
	return j, nil
}

// Kernel returns the simulation kernel.
func (j *Job) Kernel() *sim.Kernel { return j.k }

// Size returns the number of ranks.
func (j *Job) Size() int { return len(j.ranks) }

// Rank returns rank i.
func (j *Job) Rank(i int) *Rank { return j.ranks[i] }

// Ranks returns all ranks in order.
func (j *Job) Ranks() []*Rank { return j.ranks }

// VMs returns the job's virtual machines in launch order.
func (j *Job) VMs() []*vmm.VM { return j.cfg.VMs }

// RanksPerVM returns the number of ranks per VM.
func (j *Job) RanksPerVM() int { return j.cfg.RanksPerVM }

// SetContinueLikeRestart toggles the ompi_cr_continue_like_restart knob at
// runtime (the paper sets it before a recovery migration).
func (j *Job) SetContinueLikeRestart(v bool) { j.cfg.ContinueLikeRestart = v }

// SetTransparentCkpt marks the next (or in-flight) checkpoint as
// interconnect-transparent: BTL modules are neither released nor
// reconstructed because the queue pairs themselves migrate with the VM
// (the RDMA-native mode). Clearing it mid-checkpoint demotes the continue
// path back to a full BTL reconstruction.
func (j *Job) SetTransparentCkpt(v bool) { j.transparentCkpt = v }

// TransparentCkpt reports whether the transparent-checkpoint flag is set.
func (j *Job) TransparentCkpt() bool { return j.transparentCkpt }

// Launch starts fn as one simulated process per rank and returns a future
// resolving when every rank's function has returned.
func (j *Job) Launch(name string, fn func(p *sim.Proc, r *Rank)) *sim.Future[struct{}] {
	wg := sim.NewWaitGroup(j.k)
	wg.Add(len(j.ranks))
	done := sim.NewFuture[struct{}](j.k)
	for _, r := range j.ranks {
		r := r
		j.k.Go(fmt.Sprintf("%s/rank%d", name, r.id), func(p *sim.Proc) {
			fn(p, r)
			wg.Done()
		})
	}
	j.k.Go(name+"/join", func(p *sim.Proc) {
		wg.Wait(p)
		done.Set(struct{}{})
	})
	return done
}

// barrierState is a reusable generation-counting barrier over the OOB
// channel.
type barrierState struct {
	count int
	gen   int
	cond  *sim.Cond
}

// Barrier blocks until every rank has entered it (OOB dissemination; cost
// is one OOB latency per participant — the coordination overhead the
// paper measures as negligible).
func (j *Job) Barrier(p *sim.Proc) {
	p.Sleep(j.cfg.OOBLatency)
	gen := j.bar.gen
	j.bar.count++
	if j.bar.count == len(j.ranks) {
		j.bar.count = 0
		j.bar.gen++
		j.bar.cond.Broadcast()
		return
	}
	for j.bar.gen == gen {
		j.bar.cond.Wait(p)
	}
}
