package mpi

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Comm is a communicator: an ordered subset of the job's ranks with its
// own collective context (tag space and sequence counters), like an
// MPI_Comm derived from MPI_COMM_WORLD. Real NPB kernels run their
// transposes and reductions over row/column communicators of a process
// grid; Comm makes those patterns expressible.
type Comm struct {
	job   *Job
	id    int
	ranks []*Rank     // members, in communicator rank order
	index map[int]int // world rank → comm rank
	seq   map[int]int // per-member collective sequence counter
}

// World returns the communicator containing every rank, in world order.
func (j *Job) World() *Comm { return j.NewComm(nil) }

// NewComm builds a communicator from world rank IDs (deduplicated,
// order-preserving). nil or empty means all ranks. Every participant must
// use the same member list — as with MPI groups, communicator creation is
// logically collective.
func (j *Job) NewComm(worldRanks []int) *Comm {
	if len(worldRanks) == 0 {
		worldRanks = make([]int, len(j.ranks))
		for i := range j.ranks {
			worldRanks[i] = i
		}
	}
	c := &Comm{
		job:   j,
		id:    j.nextCommID,
		index: make(map[int]int),
		seq:   make(map[int]int),
	}
	j.nextCommID++
	for _, wr := range worldRanks {
		if wr < 0 || wr >= len(j.ranks) {
			panic(fmt.Sprintf("mpi: NewComm with world rank %d out of range", wr))
		}
		if _, dup := c.index[wr]; dup {
			continue
		}
		c.index[wr] = len(c.ranks)
		c.ranks = append(c.ranks, j.ranks[wr])
	}
	return c
}

// Split partitions the world by color (like MPI_Comm_split with key =
// world rank): ranks with equal color land in one communicator, ordered
// by world rank. Returns the communicators keyed by color.
func (j *Job) Split(color func(worldRank int) int) map[int]*Comm {
	byColor := map[int][]int{}
	for i := range j.ranks {
		c := color(i)
		byColor[c] = append(byColor[c], i)
	}
	colors := make([]int, 0, len(byColor))
	for c := range byColor {
		colors = append(colors, c)
	}
	sort.Ints(colors) // deterministic comm-id assignment
	out := make(map[int]*Comm, len(byColor))
	for _, c := range colors {
		out[c] = j.NewComm(byColor[c])
	}
	return out
}

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.ranks) }

// RankOf returns r's rank within the communicator.
func (c *Comm) RankOf(r *Rank) (int, bool) {
	i, ok := c.index[r.id]
	return i, ok
}

// WorldRank returns the world rank of communicator rank i.
func (c *Comm) WorldRank(i int) int { return c.ranks[i].id }

// tag allocates the next collective tag for member r. Because collectives
// are bulk-synchronous within a communicator, per-member counters stay
// aligned; communicator IDs keep concurrent communicators' traffic apart.
func (c *Comm) tag(r *Rank) int {
	t := collTagBase + (c.id<<14|c.seq[r.id]%4096)<<1 + 1
	c.seq[r.id]++
	return t
}

func (c *Comm) me(r *Rank) int {
	i, ok := c.index[r.id]
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d is not a member of this communicator", r.id))
	}
	return i
}

// Send sends bytes to communicator rank dst.
func (c *Comm) Send(p *sim.Proc, r *Rank, dst, tag int, bytes float64) error {
	if dst < 0 || dst >= len(c.ranks) {
		return fmt.Errorf("%w: comm send to %d", ErrRankRange, dst)
	}
	return r.Send(p, c.ranks[dst].id, tag, bytes)
}

// Recv receives from communicator rank src (AnySource allowed).
func (c *Comm) Recv(p *sim.Proc, r *Rank, src, tag int) (float64, error) {
	if src == AnySource {
		return r.Recv(p, AnySource, tag)
	}
	if src < 0 || src >= len(c.ranks) {
		return 0, fmt.Errorf("%w: comm recv from %d", ErrRankRange, src)
	}
	return r.Recv(p, c.ranks[src].id, tag)
}

// Bcast broadcasts bytes from communicator rank root via a binomial tree.
func (c *Comm) Bcast(p *sim.Proc, r *Rank, root int, bytes float64) error {
	n := len(c.ranks)
	if root < 0 || root >= n {
		return fmt.Errorf("%w: comm bcast root %d", ErrRankRange, root)
	}
	tag := c.tag(r)
	me := c.me(r)
	vr := (me - root + n) % n
	mask := 1
	for mask < n {
		if vr&mask != 0 {
			parent := c.ranks[(vr-mask+root)%n].id
			if _, err := r.Recv(p, parent, tag); err != nil {
				return fmt.Errorf("mpi: comm bcast recv: %w", err)
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < n {
			child := c.ranks[(vr+mask+root)%n].id
			if err := r.Send(p, child, tag, bytes); err != nil {
				return fmt.Errorf("mpi: comm bcast send: %w", err)
			}
		}
		mask >>= 1
	}
	return nil
}

// Reduce combines bytes at communicator rank root via a binomial tree.
func (c *Comm) Reduce(p *sim.Proc, r *Rank, root int, bytes float64) error {
	n := len(c.ranks)
	if root < 0 || root >= n {
		return fmt.Errorf("%w: comm reduce root %d", ErrRankRange, root)
	}
	tag := c.tag(r)
	me := c.me(r)
	vr := (me - root + n) % n
	mask := 1
	for mask < n {
		if vr&mask == 0 {
			if vr+mask < n {
				child := c.ranks[(vr+mask+root)%n].id
				if _, err := r.Recv(p, child, tag); err != nil {
					return fmt.Errorf("mpi: comm reduce recv: %w", err)
				}
				r.Compute(p, bytes/c.job.cfg.ReduceBandwidth)
			}
		} else {
			parent := c.ranks[(vr-mask+root)%n].id
			if err := r.Send(p, parent, tag, bytes); err != nil {
				return fmt.Errorf("mpi: comm reduce send: %w", err)
			}
			break
		}
		mask <<= 1
	}
	return nil
}

// Allreduce is Reduce to comm rank 0 followed by Bcast.
func (c *Comm) Allreduce(p *sim.Proc, r *Rank, bytes float64) error {
	if err := c.Reduce(p, r, 0, bytes); err != nil {
		return err
	}
	return c.Bcast(p, r, 0, bytes)
}

// Alltoall exchanges blockBytes pairwise among the communicator's members.
func (c *Comm) Alltoall(p *sim.Proc, r *Rank, blockBytes float64) error {
	n := len(c.ranks)
	tag := c.tag(r)
	me := c.me(r)
	for round := 1; round < nextPow2(n); round++ {
		partner := me ^ round
		if partner >= n {
			continue
		}
		pw := c.ranks[partner].id
		if _, err := r.Sendrecv(p, pw, tag, blockBytes, pw, tag); err != nil {
			return fmt.Errorf("mpi: comm alltoall round %d: %w", round, err)
		}
	}
	return nil
}

// Barrier is a zero-byte dissemination barrier over the communicator.
func (c *Comm) Barrier(p *sim.Proc, r *Rank) error {
	n := len(c.ranks)
	tag := c.tag(r)
	me := c.me(r)
	for dist := 1; dist < n; dist <<= 1 {
		dst := c.ranks[(me+dist)%n].id
		src := c.ranks[(me-dist+n)%n].id
		if err := r.Send(p, dst, tag, 1); err != nil {
			return fmt.Errorf("mpi: comm barrier send: %w", err)
		}
		if _, err := r.Recv(p, src, tag); err != nil {
			return fmt.Errorf("mpi: comm barrier recv: %w", err)
		}
	}
	return nil
}
