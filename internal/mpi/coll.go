package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// collTagBase keeps collective traffic out of the application tag space.
const collTagBase = 1 << 20

// nextCollTag returns the tag for the rank's next world collective.
// Collectives are bulk-synchronous, so per-rank sequence counters stay
// aligned. World tags are even; communicator tags (Comm.tag) are odd, so
// the two spaces never collide.
func (r *Rank) nextCollTag() int {
	t := collTagBase + (r.collSeq%4096)<<1
	r.collSeq++
	return t
}

// Bcast broadcasts bytes from root using a binomial tree.
func (r *Rank) Bcast(p *sim.Proc, root int, bytes float64) error {
	n := len(r.job.ranks)
	if root < 0 || root >= n {
		return fmt.Errorf("%w: bcast root %d", ErrRankRange, root)
	}
	tag := r.nextCollTag()
	vr := (r.id - root + n) % n
	mask := 1
	for mask < n {
		if vr&mask != 0 {
			parent := (vr - mask + root) % n
			if _, err := r.Recv(p, parent, tag); err != nil {
				return fmt.Errorf("mpi: bcast recv: %w", err)
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < n {
			child := (vr + mask + root) % n
			if err := r.Send(p, child, tag, bytes); err != nil {
				return fmt.Errorf("mpi: bcast send: %w", err)
			}
		}
		mask >>= 1
	}
	return nil
}

// Reduce combines bytes from all ranks at root using a binomial tree,
// charging reduction-operator compute at each combining step.
func (r *Rank) Reduce(p *sim.Proc, root int, bytes float64) error {
	n := len(r.job.ranks)
	if root < 0 || root >= n {
		return fmt.Errorf("%w: reduce root %d", ErrRankRange, root)
	}
	tag := r.nextCollTag()
	vr := (r.id - root + n) % n
	mask := 1
	for mask < n {
		if vr&mask == 0 {
			if vr+mask < n {
				child := (vr + mask + root) % n
				if _, err := r.Recv(p, child, tag); err != nil {
					return fmt.Errorf("mpi: reduce recv: %w", err)
				}
				// Combine the incoming buffer with the local one.
				r.Compute(p, bytes/r.job.cfg.ReduceBandwidth)
			}
		} else {
			parent := (vr - mask + root) % n
			if err := r.Send(p, parent, tag, bytes); err != nil {
				return fmt.Errorf("mpi: reduce send: %w", err)
			}
			break
		}
		mask <<= 1
	}
	return nil
}

// Allreduce is Reduce to rank 0 followed by Bcast.
func (r *Rank) Allreduce(p *sim.Proc, bytes float64) error {
	if err := r.Reduce(p, 0, bytes); err != nil {
		return err
	}
	return r.Bcast(p, 0, bytes)
}

// BarrierColl is a zero-byte dissemination barrier over the BTLs (unlike
// Job.Barrier, which uses the OOB channel).
func (r *Rank) BarrierColl(p *sim.Proc) error {
	n := len(r.job.ranks)
	tag := r.nextCollTag()
	for dist := 1; dist < n; dist <<= 1 {
		dst := (r.id + dist) % n
		src := (r.id - dist + n) % n
		if err := r.Send(p, dst, tag, 1); err != nil {
			return fmt.Errorf("mpi: barrier send: %w", err)
		}
		if _, err := r.Recv(p, src, tag); err != nil {
			return fmt.Errorf("mpi: barrier recv: %w", err)
		}
	}
	return nil
}

// Allgather gathers bytes-per-rank blocks on every rank via the ring
// algorithm: n-1 steps of simultaneous send-right/receive-left.
func (r *Rank) Allgather(p *sim.Proc, blockBytes float64) error {
	n := len(r.job.ranks)
	tag := r.nextCollTag()
	right := (r.id + 1) % n
	left := (r.id - 1 + n) % n
	for step := 0; step < n-1; step++ {
		if _, err := r.Sendrecv(p, right, tag, blockBytes, left, tag); err != nil {
			return fmt.Errorf("mpi: allgather step %d: %w", step, err)
		}
	}
	return nil
}

// Alltoall exchanges blockBytes with every other rank via pairwise
// exchange (XOR schedule; requires power-of-two rank counts for perfect
// pairing, which all paper configurations satisfy, but degrades gracefully
// by skipping out-of-range partners otherwise).
func (r *Rank) Alltoall(p *sim.Proc, blockBytes float64) error {
	n := len(r.job.ranks)
	tag := r.nextCollTag()
	for round := 1; round < nextPow2(n); round++ {
		partner := r.id ^ round
		if partner >= n {
			continue
		}
		if _, err := r.Sendrecv(p, partner, tag, blockBytes, partner, tag); err != nil {
			return fmt.Errorf("mpi: alltoall round %d: %w", round, err)
		}
	}
	return nil
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Gather collects blockBytes from every rank at root (linear algorithm,
// as Open MPI's basic component uses for small communicators).
func (r *Rank) Gather(p *sim.Proc, root int, blockBytes float64) error {
	n := len(r.job.ranks)
	if root < 0 || root >= n {
		return fmt.Errorf("%w: gather root %d", ErrRankRange, root)
	}
	tag := r.nextCollTag()
	if r.id != root {
		return r.Send(p, root, tag, blockBytes)
	}
	// Root receives from everyone else; any order (AnySource) so early
	// senders don't serialize behind slow ones.
	for i := 0; i < n-1; i++ {
		if _, err := r.Recv(p, AnySource, tag); err != nil {
			return fmt.Errorf("mpi: gather recv: %w", err)
		}
	}
	return nil
}

// Scatter distributes blockBytes from root to every rank (linear).
func (r *Rank) Scatter(p *sim.Proc, root int, blockBytes float64) error {
	n := len(r.job.ranks)
	if root < 0 || root >= n {
		return fmt.Errorf("%w: scatter root %d", ErrRankRange, root)
	}
	tag := r.nextCollTag()
	if r.id != root {
		if _, err := r.Recv(p, root, tag); err != nil {
			return fmt.Errorf("mpi: scatter recv: %w", err)
		}
		return nil
	}
	// Non-blocking fan-out: all blocks in flight concurrently.
	var reqs []*Request
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		reqs = append(reqs, r.Isend(i, tag, blockBytes))
	}
	return r.Waitall(p, reqs...)
}

// ReduceScatter reduces blockBytes-per-rank contributions and scatters one
// block to each rank (implemented as Reduce at rank 0 plus Scatter, the
// basic-component strategy).
func (r *Rank) ReduceScatter(p *sim.Proc, blockBytes float64) error {
	n := float64(len(r.job.ranks))
	if err := r.Reduce(p, 0, blockBytes*n); err != nil {
		return err
	}
	return r.Scatter(p, 0, blockBytes)
}
