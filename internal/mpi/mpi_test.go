package mpi

import (
	"math"
	"testing"

	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/vmm"
)

// rig is a ready-to-use MPI testbed: nVMs VMs, one per IB node, each with
// a boot-attached HCA when withIB is true.
type rig struct {
	k   *sim.Kernel
	tb  *hw.Testbed
	ib  *hw.Cluster
	eth *hw.Cluster
	vms []*vmm.VM
	job *Job
}

func newRig(t *testing.T, nVMs, ranksPerVM int, withIB bool) *rig {
	t.Helper()
	k := sim.NewKernel()
	tb := hw.NewTestbed(k)
	ib := tb.AddCluster("ib", nVMs, hw.AGCNodeSpec)
	ethSpec := hw.AGCNodeSpec
	ethSpec.IBBandwidth = 0
	eth := tb.AddCluster("eth", nVMs, ethSpec)
	var vms []*vmm.VM
	for i := 0; i < nVMs; i++ {
		vm, err := vmm.New(k, ib.Nodes[i], tb.Segment, vmm.Config{
			Name: ib.Nodes[i].Name + "/vm", VCPUs: 8, MemoryBytes: 20 * hw.GB,
		}, vmm.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if withIB {
			if err := vm.AttachBootHCA(); err != nil {
				t.Fatal(err)
			}
		}
		vms = append(vms, vm)
	}
	k.RunUntil(fabric.DefaultIBTrainingTime + sim.Second)
	job, err := NewJob(k, Config{VMs: vms, RanksPerVM: ranksPerVM})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, tb: tb, ib: ib, eth: eth, vms: vms, job: job}
}

func approxT(a, b sim.Time, tolFrac float64) bool {
	if b == 0 {
		return a < 10*sim.Millisecond
	}
	diff := math.Abs(float64(a - b))
	return diff <= tolFrac*math.Abs(float64(b))+float64(10*sim.Millisecond)
}

func TestEagerSendRecv(t *testing.T) {
	r := newRig(t, 2, 1, true)
	var got float64
	r.job.Launch("eager", func(p *sim.Proc, rk *Rank) {
		switch rk.RankID() {
		case 0:
			if err := rk.Send(p, 1, 7, 1024); err != nil {
				t.Errorf("Send: %v", err)
			}
		case 1:
			b, err := rk.Recv(p, 0, 7)
			if err != nil {
				t.Errorf("Recv: %v", err)
			}
			got = b
		}
	})
	r.k.Run()
	if got != 1024 {
		t.Fatalf("received %v bytes, want 1024", got)
	}
}

func TestEagerBuffersWithoutReceiver(t *testing.T) {
	// Eager send completes even though the receiver posts much later.
	r := newRig(t, 2, 1, true)
	epoch := r.k.Now()
	var sendDone, recvDone sim.Time
	r.job.Launch("buffer", func(p *sim.Proc, rk *Rank) {
		switch rk.RankID() {
		case 0:
			rk.Send(p, 1, 1, 100)
			sendDone = p.Now() - epoch
		case 1:
			p.Sleep(10 * sim.Second)
			rk.Recv(p, 0, 1)
			recvDone = p.Now() - epoch
		}
	})
	r.k.Run()
	if sendDone >= sim.Second {
		t.Fatalf("eager send blocked until %v", sendDone)
	}
	if recvDone < 10*sim.Second {
		t.Fatalf("recv at %v", recvDone)
	}
}

func TestRendezvousBlocksUntilRecv(t *testing.T) {
	r := newRig(t, 2, 1, true)
	epoch := r.k.Now()
	var sendDone sim.Time
	r.job.Launch("rndv", func(p *sim.Proc, rk *Rank) {
		switch rk.RankID() {
		case 0:
			rk.Send(p, 1, 1, 1e9) // 1 GB: rendezvous
			sendDone = p.Now() - epoch
		case 1:
			p.Sleep(5 * sim.Second)
			rk.Recv(p, 0, 1)
		}
	})
	r.k.Run()
	// Sender cannot finish before the receiver posts at t=5s, plus the
	// ~0.31s wire time of 1 GB over 3.2 GB/s IB.
	if sendDone < 5*sim.Second {
		t.Fatalf("rendezvous send finished at %v, before receiver posted", sendDone)
	}
	want := 5*sim.Second + sim.FromSeconds(1e9/3.2e9)
	if !approxT(sendDone, want, 0.05) {
		t.Fatalf("send done at %v, want ≈%v", sendDone, want)
	}
}

func TestRecvWildcards(t *testing.T) {
	r := newRig(t, 2, 1, true)
	var tags []float64
	r.job.Launch("wild", func(p *sim.Proc, rk *Rank) {
		switch rk.RankID() {
		case 0:
			rk.Send(p, 1, 42, 111)
			rk.Send(p, 1, 43, 222)
		case 1:
			b1, _ := rk.Recv(p, AnySource, AnyTag)
			b2, _ := rk.Recv(p, 0, AnyTag)
			tags = append(tags, b1, b2)
		}
	})
	r.k.Run()
	if len(tags) != 2 || tags[0] != 111 || tags[1] != 222 {
		t.Fatalf("got %v (FIFO matching broken)", tags)
	}
}

func TestIBTransportPreferred(t *testing.T) {
	r := newRig(t, 2, 1, true)
	name, err := r.job.Rank(0).TransportTo(1)
	if err != nil {
		t.Fatal(err)
	}
	if name != "openib" {
		t.Fatalf("transport = %s, want openib (exclusivity 1024 > 100)", name)
	}
}

func TestTCPFallbackWithoutIB(t *testing.T) {
	r := newRig(t, 2, 1, false)
	name, err := r.job.Rank(0).TransportTo(1)
	if err != nil {
		t.Fatal(err)
	}
	if name != "tcp" {
		t.Fatalf("transport = %s, want tcp", name)
	}
}

func TestSMWithinVM(t *testing.T) {
	r := newRig(t, 1, 2, true)
	name, err := r.job.Rank(0).TransportTo(1)
	if err != nil {
		t.Fatal(err)
	}
	if name != "sm" {
		t.Fatalf("transport = %s, want sm for co-located ranks", name)
	}
}

func TestIBvsTCPBandwidthShape(t *testing.T) {
	// The same 1 GB transfer must be ≈2.5× faster on IB than on virtio/TCP
	// (3.2 GB/s vs ≈1.25 GB/s wire, plus vhost CPU cost).
	timeIt := func(withIB bool) sim.Time {
		r := newRig(t, 2, 1, withIB)
		var dur sim.Time
		r.job.Launch("bw", func(p *sim.Proc, rk *Rank) {
			start := p.Now()
			switch rk.RankID() {
			case 0:
				rk.Send(p, 1, 1, 1e9)
			case 1:
				rk.Recv(p, 0, 1)
				dur = p.Now() - start
			}
		})
		r.k.Run()
		return dur
	}
	ib, tcp := timeIt(true), timeIt(false)
	ratio := float64(tcp) / float64(ib)
	if ratio < 1.5 {
		t.Fatalf("TCP (%v) should be clearly slower than IB (%v); ratio=%.2f", tcp, ib, ratio)
	}
}

func TestBcastDelivers(t *testing.T) {
	r := newRig(t, 4, 2, true) // 8 ranks
	counts := 0
	r.job.Launch("bcast", func(p *sim.Proc, rk *Rank) {
		if err := rk.Bcast(p, 0, 1e6); err != nil {
			t.Errorf("rank %d bcast: %v", rk.RankID(), err)
			return
		}
		counts++
	})
	r.k.Run()
	if counts != 8 {
		t.Fatalf("bcast completed on %d/8 ranks", counts)
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	r := newRig(t, 4, 1, true)
	done := 0
	r.job.Launch("bcast", func(p *sim.Proc, rk *Rank) {
		if err := rk.Bcast(p, 2, 4096); err != nil {
			t.Errorf("rank %d: %v", rk.RankID(), err)
			return
		}
		done++
	})
	r.k.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	r := newRig(t, 4, 2, true)
	done := 0
	r.job.Launch("allreduce", func(p *sim.Proc, rk *Rank) {
		if err := rk.Reduce(p, 0, 1e6); err != nil {
			t.Errorf("reduce: %v", err)
			return
		}
		if err := rk.Allreduce(p, 1e6); err != nil {
			t.Errorf("allreduce: %v", err)
			return
		}
		done++
	})
	r.k.Run()
	if done != 8 {
		t.Fatalf("done = %d/8", done)
	}
}

func TestBarrierCollSynchronizes(t *testing.T) {
	r := newRig(t, 4, 1, true)
	epoch := r.k.Now()
	var exits []sim.Time
	r.job.Launch("bar", func(p *sim.Proc, rk *Rank) {
		p.Sleep(sim.Time(rk.RankID()) * sim.Second) // staggered arrival
		if err := rk.BarrierColl(p); err != nil {
			t.Errorf("barrier: %v", err)
			return
		}
		exits = append(exits, p.Now()-epoch)
	})
	r.k.Run()
	if len(exits) != 4 {
		t.Fatalf("exits = %v", exits)
	}
	for _, e := range exits {
		if e < 3*sim.Second {
			t.Fatalf("rank exited barrier at %v, before last arrival at 3s", e)
		}
	}
}

func TestAllgatherRing(t *testing.T) {
	r := newRig(t, 4, 1, true)
	done := 0
	r.job.Launch("ag", func(p *sim.Proc, rk *Rank) {
		if err := rk.Allgather(p, 1e6); err != nil {
			t.Errorf("allgather: %v", err)
			return
		}
		done++
	})
	r.k.Run()
	if done != 4 {
		t.Fatalf("done = %d/4", done)
	}
}

func TestAlltoallPairwise(t *testing.T) {
	r := newRig(t, 4, 2, true)
	done := 0
	r.job.Launch("a2a", func(p *sim.Proc, rk *Rank) {
		if err := rk.Alltoall(p, 1e5); err != nil {
			t.Errorf("alltoall: %v", err)
			return
		}
		done++
	})
	r.k.Run()
	if done != 8 {
		t.Fatalf("done = %d/8", done)
	}
}

func TestJobBarrierOOB(t *testing.T) {
	r := newRig(t, 4, 2, true)
	epoch := r.k.Now()
	var exits []sim.Time
	r.job.Launch("oob", func(p *sim.Proc, rk *Rank) {
		p.Sleep(sim.Time(rk.RankID()) * sim.Second)
		r.job.Barrier(p)
		exits = append(exits, p.Now()-epoch)
	})
	r.k.Run()
	for _, e := range exits {
		if e < 7*sim.Second {
			t.Fatalf("exit at %v before last arrival", e)
		}
	}
}

func TestSendRankRange(t *testing.T) {
	r := newRig(t, 2, 1, true)
	r.job.Launch("range", func(p *sim.Proc, rk *Rank) {
		if rk.RankID() != 0 {
			return
		}
		if err := rk.Send(p, 99, 0, 10); err == nil {
			t.Error("expected range error")
		}
	})
	r.k.Run()
}

func TestSendrecvNoDeadlock(t *testing.T) {
	// Both ranks exchange 1 GB simultaneously: must complete.
	r := newRig(t, 2, 1, true)
	done := 0
	r.job.Launch("xchg", func(p *sim.Proc, rk *Rank) {
		peer := 1 - rk.RankID()
		if _, err := rk.Sendrecv(p, peer, 5, 1e9, peer, 5); err != nil {
			t.Errorf("sendrecv: %v", err)
			return
		}
		done++
	})
	r.k.Run()
	if done != 2 {
		t.Fatalf("done = %d/2", done)
	}
}
