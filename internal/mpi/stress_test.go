package mpi

import (
	"testing"
	"testing/quick"

	"repro/internal/crs"
	"repro/internal/sim"
)

// TestRandomCollectiveSequencesWithCheckpoint is an integration property
// test: for random job shapes and random collective sequences, a
// checkpoint injected mid-run must not lose messages, deadlock, or change
// the number of operations each rank completes.
func TestRandomCollectiveSequencesWithCheckpoint(t *testing.T) {
	f := func(shapeRaw, opsRaw uint8, opskind []uint8) bool {
		nVMs := int(shapeRaw%3)*2 + 2     // 2, 4 or 6 VMs
		ranksPerVM := int(shapeRaw%2) + 1 // 1 or 2
		nOps := int(opsRaw%6) + 4
		r := newRig(t, nVMs, ranksPerVM, true)
		installCRS(r.job, nil, nil)

		completed := make([]int, r.job.Size())
		app := r.job.Launch("stress", func(p *sim.Proc, rk *Rank) {
			for op := 0; op < nOps; op++ {
				rk.FTProbe(p)
				kind := 0
				if op < len(opskind) {
					kind = int(opskind[op] % 6)
				}
				var err error
				switch kind {
				case 0:
					err = rk.Bcast(p, op%r.job.Size(), 1e5)
				case 1:
					err = rk.Reduce(p, 0, 1e5)
				case 2:
					err = rk.Allreduce(p, 1e4)
				case 3:
					err = rk.BarrierColl(p)
				case 4:
					err = rk.Allgather(p, 1e4)
				case 5:
					err = rk.Gather(p, 0, 1e4)
				}
				if err != nil {
					t.Logf("op %d kind %d: %v", op, kind, err)
					return
				}
				completed[rk.RankID()]++
			}
		})
		// Checkpoint request lands mid-run.
		r.k.Go("trigger", func(p *sim.Proc) {
			p.Sleep(sim.Millisecond)
			r.job.RequestCheckpoint()
		})
		r.k.Run()
		if !app.Done() {
			return false
		}
		for _, c := range completed {
			if c != nOps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestBackToBackCheckpoints runs several checkpoint cycles in sequence —
// the fallback/recovery pattern of Fig. 8 (three migrations in one run).
func TestBackToBackCheckpoints(t *testing.T) {
	r := newRig(t, 2, 2, true)
	installCRS(r.job, nil, nil)
	app := r.job.Launch("app", func(p *sim.Proc, rk *Rank) {
		for i := 0; i < 60; i++ {
			rk.FTProbe(p)
			rk.Compute(p, 0.2)
			if err := rk.Allreduce(p, 1e4); err != nil {
				t.Errorf("allreduce: %v", err)
				return
			}
		}
	})
	cycles := 0
	r.k.Go("trigger", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(2 * sim.Second)
			fut, err := r.job.RequestCheckpoint()
			if err != nil {
				t.Errorf("cycle %d: %v", i, err)
				return
			}
			fut.Wait(p)
			cycles++
		}
	})
	r.k.Run()
	if !app.Done() || cycles != 3 {
		t.Fatalf("app done=%v cycles=%d", app.Done(), cycles)
	}
}

// TestCheckpointWithBLCR exercises the BLCR CRS component end to end: the
// checkpoint phase pays the disk dump cost that SymVirt's SELF avoids.
func TestCheckpointWithBLCR(t *testing.T) {
	r := newRig(t, 2, 1, true)
	blcrs := make([]*crs.BLCR, r.job.Size())
	for i, rk := range r.job.Ranks() {
		blcrs[i] = crs.NewBLCR(2e9, 1e9) // 2 GB image at 1 GB/s
		rk.SetCRS(blcrs[i])
	}
	fut, _ := r.job.RequestCheckpoint()
	runIterations(t, r, 3)
	r.k.Run()
	if !fut.Done() {
		t.Fatal("checkpoint incomplete")
	}
	for i, b := range blcrs {
		if b.Checkpoints != 1 {
			t.Fatalf("rank %d BLCR checkpoints = %d", i, b.Checkpoints)
		}
	}
	// The checkpoint phase must reflect the 2 s dump.
	for _, s := range r.job.CheckpointPhaseTimes() {
		if s.Checkpoint < 1900*sim.Millisecond {
			t.Fatalf("rank %d checkpoint phase %v, want ≈2s (BLCR dump)", s.Rank, s.Checkpoint)
		}
	}
}
