package mpi

import (
	"repro/internal/crs"
	"repro/internal/mpi/btl"
	"repro/internal/sim"
	"repro/internal/vmm"
)

// Rank is one MPI process: a guest process inside a VM with its own BTL
// module set and CRS hooks. Rank implements btl.Endpoint.
type Rank struct {
	job *Job
	id  int
	vm  *vmm.VM

	btls *btl.Set
	crs  crs.Service

	recvQ  []*recvReq
	unexpQ []*message

	collSeq int
	// hadOpenIB records whether the openib BTL was usable when the last
	// pre-checkpoint release ran; the continue path reconstructs BTLs
	// only in that case unless ContinueLikeRestart forces it.
	hadOpenIB bool

	// wake is broadcast whenever something a blocked call might be
	// waiting for changes: a message delivery, a rendezvous handshake, or
	// a checkpoint request. Blocking calls loop on it so the CRCP
	// coordination can interrupt them (Open MPI quiesces from inside the
	// progress engine, not only at application probe points).
	wake *sim.Cond
	// ftGen is the checkpoint generation this rank last participated in.
	ftGen int

	// spinDepth/spinPS model Open MPI's busy-polling progress engine:
	// while a rank is inside a blocking communication call its vCPU spins
	// at full speed, consuming a processor share without doing work. This
	// is what makes the CPU-over-committed "2 hosts (TCP)" configuration
	// of Fig. 8b so slow.
	spinDepth int
	spinPS    *sim.PS
}

// spinBegin marks the rank as busy-polling inside a blocking MPI call.
func (r *Rank) spinBegin() {
	r.spinDepth++
	if r.spinDepth == 1 {
		r.spinPS = r.vm.HostCPU()
		r.spinPS.AddBackground(1)
	}
}

// spinEnd clears the busy-poll load registered by spinBegin.
func (r *Rank) spinEnd() {
	r.spinDepth--
	if r.spinDepth == 0 {
		r.spinPS.AddBackground(-1)
		r.spinPS = nil
	}
}

// spinPause temporarily releases the busy-poll load (the vCPU halts in
// SymVirt wait during a checkpoint) and reports whether it was held.
func (r *Rank) spinPause() bool {
	if r.spinDepth > 0 && r.spinPS != nil {
		r.spinPS.AddBackground(-1)
		r.spinPS = nil
		return true
	}
	return false
}

// spinResume re-acquires the busy-poll load on the (possibly new) host.
func (r *Rank) spinResume() {
	if r.spinDepth > 0 && r.spinPS == nil {
		r.spinPS = r.vm.HostCPU()
		r.spinPS.AddBackground(1)
	}
}

// waitInterruptible blocks until ready() holds, participating in a pending
// checkpoint if one arrives meanwhile — the CRCP interruption that keeps a
// rank blocked in Recv (waiting for a peer that has already quiesced) from
// deadlocking the coordination.
func (r *Rank) waitInterruptible(p *sim.Proc, ready func() bool) {
	for !ready() {
		j := r.job
		if j.ckptPending && r.ftGen != j.ckptGen {
			r.ftGen = j.ckptGen
			held := r.spinPause()
			r.ftHandler(p)
			if held {
				r.spinResume()
			}
			continue
		}
		r.wake.Wait(p)
	}
}

// RankID implements btl.Endpoint.
func (r *Rank) RankID() int { return r.id }

// VM implements btl.Endpoint.
func (r *Rank) VM() *vmm.VM { return r.vm }

// Job returns the owning job.
func (r *Rank) Job() *Job { return r.job }

// BTLs returns the rank's transport module set.
func (r *Rank) BTLs() *btl.Set { return r.btls }

// SetCRS installs the rank's checkpoint/restart service (the SymVirt
// coordinator installs SELF callbacks here — the LD_PRELOAD of the paper).
func (r *Rank) SetCRS(s crs.Service) { r.crs = s }

// Compute burns coreSeconds of application CPU on the rank's current host,
// under contention and the VM run gate.
func (r *Rank) Compute(p *sim.Proc, coreSeconds float64) {
	r.vm.Compute(p, coreSeconds)
}

// TransportTo reports the module name the rank would use to reach peer —
// the observable the paper's experiments care about ("openib" during
// normal operation, "tcp" during fallback operation).
func (r *Rank) TransportTo(peer int) (string, error) {
	m, err := r.btls.Select(r.job.ranks[peer])
	if err != nil {
		return "", err
	}
	return m.Name(), nil
}
