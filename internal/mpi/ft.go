package mpi

import (
	"repro/internal/sim"
)

// CkptPhaseTimes records one rank's ft_event phase durations, feeding the
// paper's overhead breakdowns (coordination is measured as negligible).
type CkptPhaseTimes struct {
	Rank          int
	Coordination  sim.Time // CRCP quiesce (bookmark exchange + drain)
	Checkpoint    sim.Time // CRS checkpoint hook (SymVirt wait #1 span)
	Continue      sim.Time // CRS continue hook (SymVirt wait #2 span)
	Reconstruct   sim.Time // BTL reconstruction + reconnect
	Reconstructed bool
}

// RequestCheckpoint asks every rank to run the checkpoint/restart protocol
// at its next FTProbe (the paper's ompi-checkpoint, triggered by the cloud
// scheduler). The returned future resolves when all ranks have completed
// the full ft_event sequence, including BTL reconstruction.
func (j *Job) RequestCheckpoint() (*sim.Future[struct{}], error) {
	if j.ckptPending {
		return nil, ErrCkptInProgress
	}
	j.ckptPending = true
	j.ckptGen++
	j.ckptJoined = 0
	j.ckptStats = nil
	j.ckptDone = sim.NewFuture[struct{}](j.k)
	// Interrupt blocked communication calls so every rank can join the
	// coordination even mid-collective.
	for _, r := range j.ranks {
		r.wake.Broadcast()
	}
	return j.ckptDone, nil
}

// CheckpointPending reports whether a checkpoint request is outstanding.
func (j *Job) CheckpointPending() bool { return j.ckptPending }

// CheckpointPhaseTimes returns the per-rank phase breakdown of the last
// completed checkpoint.
func (j *Job) CheckpointPhaseTimes() []CkptPhaseTimes { return j.ckptStats }

// FTProbe participates in a pending checkpoint, if any. Applications call
// it at iteration boundaries (the runtime's progress engine would
// interject the same sequence); it returns immediately when nothing is
// pending. The sequence mirrors Open MPI's ft_event (§III-C):
//
//  1. CRCP coordination: bookmark exchange and channel drain, leaving a
//     globally consistent communication state;
//  2. pre-checkpoint: every BTL releases its interconnect resources, so
//     the IB HCA has no live QPs and can be hot-detached;
//  3. CRS checkpoint hook — SymVirt wait: the VMM detaches devices;
//  4. CRS continue hook — SymVirt wait again: migration and re-attach
//     happen here; the hook returns after link-up confirmation;
//  5. BTL reconstruction — re-run module selection against the *current*
//     device set and re-establish connections. Skipped when only TCP was
//     in use before the checkpoint, unless ContinueLikeRestart is set
//     (the recovery-migration knob).
func (r *Rank) FTProbe(p *sim.Proc) {
	j := r.job
	if !j.ckptPending {
		return
	}
	if r.ftGen == j.ckptGen {
		// Already participated in this checkpoint (possibly from within a
		// blocked call); hold the application thread until the
		// coordination completes everywhere.
		if !j.ckptDone.Done() {
			j.ckptDone.Wait(p)
		}
		return
	}
	r.ftGen = j.ckptGen
	r.ftHandler(p)
}

// ftHandler runs the full ft_event sequence for this rank.
func (r *Rank) ftHandler(p *sim.Proc) {
	j := r.job
	stats := CkptPhaseTimes{Rank: r.id}
	mark := p.Now()
	lap := func(dst *sim.Time) {
		*dst = p.Now() - mark
		mark = p.Now()
	}

	// 1. CRCP quiesce. Blocking p2p semantics guarantee no payload is in
	// flight once every rank reaches the barrier; buffered unexpected
	// messages live in guest memory and survive the migration.
	j.Barrier(p)
	lap(&stats.Coordination)

	// 2. Pre-checkpoint: release interconnect resources. A transparent
	// (RDMA-native) checkpoint skips the release — the queue pairs migrate
	// with the VM inside the transport, so tearing them down here would
	// defeat the whole mode.
	transparent := j.transparentCkpt
	r.hadOpenIB = false
	for _, m := range r.btls.Modules() {
		if m.Name() == "openib" && m.Usable() {
			r.hadOpenIB = true
		}
	}
	if !transparent {
		r.btls.ReleaseAll()
	}

	// 3. Checkpoint hook (SymVirt wait: detach phase).
	r.vm.Guest().SetAppFrozen(true)
	r.crs.Checkpoint(p)
	lap(&stats.Checkpoint)

	// 4. Continue hook (SymVirt wait: migrate + re-attach + link-up).
	r.crs.Continue(p)
	r.vm.Guest().SetAppFrozen(false)
	lap(&stats.Continue)

	// 5. BTL reconstruction. Re-read the transparent flag: the
	// orchestrator clears it mid-checkpoint when the QP replay failed and
	// the run demoted to the hotplug rung — then the cached queue pairs
	// are stale and a full reconstruction is mandatory.
	switch {
	case transparent && j.transparentCkpt:
		// RDMA-native: the queue pairs moved with the VM; nothing was
		// released and nothing needs rebuilding.
	case transparent || r.hadOpenIB || j.cfg.ContinueLikeRestart:
		r.btls.Reconstruct()
		stats.Reconstructed = true
	default:
		// Continue-without-restart: sockets survived; just resume the
		// released modules with their previous selection intact.
		for _, m := range r.btls.Modules() {
			m.Reinit()
		}
	}
	// Everyone finishes reconstruction before traffic resumes.
	j.Barrier(p)
	lap(&stats.Reconstruct)

	j.ckptStats = append(j.ckptStats, stats)
	j.ckptJoined++
	if j.ckptJoined == len(j.ranks) {
		j.ckptPending = false
		j.ckptDone.Set(struct{}{})
	}
}
