package mpi

import (
	"testing"

	"repro/internal/crs"
	"repro/internal/sim"
)

// installCRS installs SELF callbacks on every rank. checkpointFn/continueFn
// may be nil.
func installCRS(j *Job, checkpointFn, continueFn func(p *sim.Proc, r *Rank)) {
	for _, r := range j.Ranks() {
		r := r
		cb := crs.Callbacks{}
		if checkpointFn != nil {
			cb.Checkpoint = func(p *sim.Proc) { checkpointFn(p, r) }
		}
		if continueFn != nil {
			cb.Continue = func(p *sim.Proc) { continueFn(p, r) }
		}
		r.SetCRS(crs.NewSELF(cb))
	}
}

// runIterations drives ranks through n iterations of a probe+exchange loop.
func runIterations(t *testing.T, r *rig, n int) *sim.Future[struct{}] {
	t.Helper()
	return r.job.Launch("app", func(p *sim.Proc, rk *Rank) {
		for i := 0; i < n; i++ {
			rk.FTProbe(p)
			if err := rk.Bcast(p, 0, 1e6); err != nil {
				t.Errorf("rank %d iter %d: %v", rk.RankID(), i, err)
				return
			}
		}
	})
}

func TestCheckpointCompletesAndResumesTraffic(t *testing.T) {
	r := newRig(t, 4, 1, true)
	installCRS(r.job, nil, nil)
	fut, err := r.job.RequestCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	runIterations(t, r, 5)
	r.k.Run()
	if !fut.Done() {
		t.Fatal("checkpoint never completed")
	}
	if r.job.CheckpointPending() {
		t.Fatal("checkpoint still pending")
	}
	stats := r.job.CheckpointPhaseTimes()
	if len(stats) != 4 {
		t.Fatalf("phase stats for %d ranks, want 4", len(stats))
	}
	for _, s := range stats {
		if !s.Reconstructed {
			t.Fatalf("rank %d did not reconstruct BTLs (openib was active)", s.Rank)
		}
	}
}

func TestDoubleCheckpointRequestRefused(t *testing.T) {
	r := newRig(t, 2, 1, true)
	if _, err := r.job.RequestCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.job.RequestCheckpoint(); err != ErrCkptInProgress {
		t.Fatalf("err = %v, want ErrCkptInProgress", err)
	}
}

func TestFallbackSwitchesToTCP(t *testing.T) {
	// During the checkpoint window, detach every VM's HCA. After the
	// continue, traffic must flow over tcp — no process restart.
	r := newRig(t, 4, 1, true)
	installCRS(r.job, func(p *sim.Proc, rk *Rank) {
		// "SymVirt wait #1": the agent detaches the HCA while the app is
		// frozen. Rank-triggered here for the unit test; the symvirt
		// package does this for real.
		fut, err := rk.VM().Monitor().DeviceDel("vf0")
		if err != nil {
			t.Errorf("DeviceDel: %v", err)
			return
		}
		fut.Wait(p)
	}, nil)
	fut, _ := r.job.RequestCheckpoint()
	app := runIterations(t, r, 5)
	r.k.Run()
	if !fut.Done() || !app.Done() {
		t.Fatal("checkpoint or app incomplete")
	}
	name, err := r.job.Rank(0).TransportTo(1)
	if err != nil {
		t.Fatal(err)
	}
	if name != "tcp" {
		t.Fatalf("transport after fallback = %s, want tcp", name)
	}
}

func TestRecoveryNeedsContinueLikeRestart(t *testing.T) {
	// Start WITHOUT InfiniBand (fallback operation), re-attach the HCA in
	// the checkpoint window. Without ContinueLikeRestart the job must
	// stay on tcp; with it, it must rediscover openib. This is the
	// paper's ompi_cr_continue_like_restart ablation.
	run := func(clr bool) string {
		r := newRig(t, 2, 1, true)
		// Simulate fallback state: detach HCAs before the job starts
		// using them.
		pre := sim.NewWaitGroup(r.k)
		pre.Add(len(r.vms))
		for _, vm := range r.vms {
			vm := vm
			r.k.Go("pre-detach", func(p *sim.Proc) {
				fut, err := vm.Monitor().DeviceDel("vf0")
				if err != nil {
					t.Errorf("DeviceDel: %v", err)
				} else {
					fut.Wait(p)
				}
				pre.Done()
			})
		}
		r.k.Run()
		r.job.cfg.ContinueLikeRestart = clr
		// Sanity: tcp in use now.
		if name, _ := r.job.Rank(0).TransportTo(1); name != "tcp" {
			t.Fatalf("pre-recovery transport = %s, want tcp", name)
		}
		// Recovery: re-attach HCA during the continue hook, wait linkup.
		installCRS(r.job, nil, func(p *sim.Proc, rk *Rank) {
			fut, err := rk.VM().Monitor().DeviceAdd("vf0", "04:00.0")
			if err != nil {
				t.Errorf("DeviceAdd: %v", err)
				return
			}
			fut.Wait(p)
			if err := rk.VM().Guest().WaitIBLinkup(p); err != nil {
				t.Errorf("linkup: %v", err)
			}
		})
		fut, _ := r.job.RequestCheckpoint()
		runIterations(t, r, 3)
		r.k.Run()
		if !fut.Done() {
			t.Fatal("checkpoint incomplete")
		}
		name, err := r.job.Rank(0).TransportTo(1)
		if err != nil {
			t.Fatal(err)
		}
		return name
	}
	if got := run(false); got != "tcp" {
		t.Fatalf("without continue_like_restart: transport = %s, want tcp (stale selection)", got)
	}
	if got := run(true); got != "openib" {
		t.Fatalf("with continue_like_restart: transport = %s, want openib", got)
	}
}

func TestCoordinationOverheadNegligible(t *testing.T) {
	// Paper §V: "The coordination has a negligible impact to the total
	// overhead." The CRCP quiesce must cost ≪ 1 s.
	r := newRig(t, 8, 1, true)
	installCRS(r.job, nil, nil)
	r.job.RequestCheckpoint()
	runIterations(t, r, 2)
	r.k.Run()
	for _, s := range r.job.CheckpointPhaseTimes() {
		if s.Coordination > 100*sim.Millisecond {
			t.Fatalf("rank %d coordination = %v, want ≪ 1s", s.Rank, s.Coordination)
		}
	}
}

func TestNoMessageLossAcrossCheckpoint(t *testing.T) {
	// Messages buffered (eager, unexpected) before the checkpoint must
	// still be deliverable after it: guest memory survives migration.
	r := newRig(t, 2, 1, true)
	installCRS(r.job, nil, nil)
	var got float64
	r.job.Launch("app", func(p *sim.Proc, rk *Rank) {
		switch rk.RankID() {
		case 0:
			rk.Send(p, 1, 9, 512) // eager: buffered at rank 1
			rk.FTProbe(p)
		case 1:
			rk.FTProbe(p)
			got, _ = rk.Recv(p, 0, 9) // matched from the unexpected queue
		}
	})
	// Request the checkpoint only after the send is in flight.
	r.k.Go("trigger", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		if _, err := r.job.RequestCheckpoint(); err != nil {
			t.Errorf("RequestCheckpoint: %v", err)
		}
	})
	r.k.Run()
	if got != 512 {
		t.Fatalf("message lost across checkpoint: got %v", got)
	}
}

func TestUncoordinatedDetachBreaksTraffic(t *testing.T) {
	// Fault injection: detaching the HCA WITHOUT the CRCP/SymVirt
	// coordination leaves the openib BTL with destroyed QPs — the very
	// failure the paper's design prevents.
	r := newRig(t, 2, 1, true)
	var sendErr error
	r.job.Launch("app", func(p *sim.Proc, rk *Rank) {
		if rk.RankID() != 0 {
			return
		}
		if err := rk.Send(p, 1, 1, 1024); err != nil { // warm the QP cache
			t.Errorf("warm send: %v", err)
			return
		}
		// HCA yanked with no coordination:
		fut, err := rk.VM().Monitor().DeviceDel("vf0")
		if err != nil {
			t.Errorf("DeviceDel: %v", err)
			return
		}
		fut.Wait(p)
		sendErr = rk.Send(p, 1, 1, 1024)
	})
	r.k.Run()
	if sendErr == nil {
		t.Fatal("send over a detached HCA should fail")
	}
}
