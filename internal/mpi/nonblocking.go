package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// Request is a handle to a non-blocking operation, completed by Wait.
type Request struct {
	rank  *Rank
	isend bool
	// send side
	sendDone *sim.Future[error]
	// recv side
	req       *recvReq
	completed bool
	bytes     float64
	err       error
}

// Isend starts a non-blocking send. The transfer progresses independently
// (Open MPI's progress engine, modelled as a helper process); Wait blocks
// until the payload is delivered (or buffered, for eager messages).
func (r *Rank) Isend(dst, tag int, bytes float64) *Request {
	req := &Request{rank: r, isend: true, bytes: bytes,
		sendDone: sim.NewFuture[error](r.job.k)}
	r.job.k.Go(fmt.Sprintf("rank%d/isend", r.id), func(sp *sim.Proc) {
		req.sendDone.Set(r.Send(sp, dst, tag, bytes))
	})
	return req
}

// Irecv posts a non-blocking receive. Matching happens immediately (an
// already-buffered unexpected message is claimed now); the payload
// completes in Wait.
func (r *Rank) Irecv(src, tag int) *Request {
	req := &Request{rank: r,
		req: &recvReq{src: src, tag: tag, got: sim.NewFuture[*message](r.job.k)}}
	if msg := r.takeUnexpected(req.req); msg != nil {
		req.req.got.Set(msg)
	} else {
		r.recvQ = append(r.recvQ, req.req)
	}
	return req
}

// Wait blocks until the request completes. For receives it returns the
// message size. Waiting twice on the same request is an error in MPI; here
// it returns the cached result.
func (r *Rank) Wait(p *sim.Proc, req *Request) (float64, error) {
	if req.rank != r {
		return 0, fmt.Errorf("mpi: Wait on another rank's request")
	}
	if req.completed {
		return req.bytes, req.err
	}
	r.spinBegin()
	defer r.spinEnd()
	if req.isend {
		// The helper process running the send participates in any pending
		// checkpoint from its own interruptible waits.
		req.err = req.sendDone.Wait(p)
	} else {
		r.waitInterruptible(p, req.req.got.Done)
		req.bytes, req.err = r.completeRecv(p, req.req.got.Value())
	}
	req.completed = true
	return req.bytes, req.err
}

// Waitall completes every request, returning the first error.
func (r *Rank) Waitall(p *sim.Proc, reqs ...*Request) error {
	var firstErr error
	for _, req := range reqs {
		if _, err := r.Wait(p, req); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Test reports whether the request has completed without blocking (it does
// not run the completion protocol; rendezvous receives still need Wait).
func (req *Request) Test() bool {
	if req.completed {
		return true
	}
	if req.isend {
		return req.sendDone.Done()
	}
	return req.req.got.Done()
}
