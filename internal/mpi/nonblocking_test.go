package mpi

import (
	"testing"

	"repro/internal/sim"
)

func TestIsendIrecvBasic(t *testing.T) {
	r := newRig(t, 2, 1, true)
	var got float64
	r.job.Launch("nb", func(p *sim.Proc, rk *Rank) {
		switch rk.RankID() {
		case 0:
			req := rk.Isend(1, 5, 4096)
			if _, err := rk.Wait(p, req); err != nil {
				t.Errorf("Wait(send): %v", err)
			}
		case 1:
			req := rk.Irecv(0, 5)
			b, err := rk.Wait(p, req)
			if err != nil {
				t.Errorf("Wait(recv): %v", err)
			}
			got = b
		}
	})
	r.k.Run()
	if got != 4096 {
		t.Fatalf("got %v", got)
	}
}

func TestIsendOverlapsCompute(t *testing.T) {
	// A 1 GB rendezvous Isend progresses while the sender computes:
	// total time ≈ max(compute, transfer), not the sum.
	r := newRig(t, 2, 1, true)
	epoch := r.k.Now()
	var senderDone sim.Time
	r.job.Launch("overlap", func(p *sim.Proc, rk *Rank) {
		switch rk.RankID() {
		case 0:
			req := rk.Isend(1, 1, 1e9) // ≈0.31 s on the wire
			rk.Compute(p, 2)           // 2 s of useful work meanwhile
			rk.Wait(p, req)
			senderDone = p.Now() - epoch
		case 1:
			rk.Recv(p, 0, 1)
		}
	})
	r.k.Run()
	if senderDone > 2200*sim.Millisecond {
		t.Fatalf("sender took %v: transfer did not overlap compute", senderDone)
	}
}

func TestIrecvMatchesBufferedMessage(t *testing.T) {
	r := newRig(t, 2, 1, true)
	var got float64
	r.job.Launch("buffered", func(p *sim.Proc, rk *Rank) {
		switch rk.RankID() {
		case 0:
			rk.Send(p, 1, 9, 128) // eager, buffered at rank 1
		case 1:
			p.Sleep(sim.Second) // message arrives first
			req := rk.Irecv(0, 9)
			if !req.Test() {
				t.Error("Irecv did not claim the buffered message")
			}
			got, _ = rk.Wait(p, req)
		}
	})
	r.k.Run()
	if got != 128 {
		t.Fatalf("got %v", got)
	}
}

func TestWaitTwiceReturnsCached(t *testing.T) {
	r := newRig(t, 2, 1, true)
	r.job.Launch("twice", func(p *sim.Proc, rk *Rank) {
		switch rk.RankID() {
		case 0:
			rk.Send(p, 1, 1, 64)
		case 1:
			req := rk.Irecv(0, 1)
			b1, _ := rk.Wait(p, req)
			b2, _ := rk.Wait(p, req)
			if b1 != 64 || b2 != 64 {
				t.Errorf("b1=%v b2=%v", b1, b2)
			}
		}
	})
	r.k.Run()
}

func TestWaitallCollectsError(t *testing.T) {
	r := newRig(t, 2, 1, true)
	r.job.Launch("err", func(p *sim.Proc, rk *Rank) {
		if rk.RankID() != 0 {
			return
		}
		good := rk.Isend(1, 1, 32)
		bad := rk.Isend(99, 1, 32) // out of range
		if err := rk.Waitall(p, good, bad); err == nil {
			t.Error("Waitall should surface the range error")
		}
	})
	r.k.Run()
	// Drain rank 1's buffered message.
}

func TestWaitOnForeignRequest(t *testing.T) {
	r := newRig(t, 2, 1, true)
	r.job.Launch("foreign", func(p *sim.Proc, rk *Rank) {
		if rk.RankID() != 0 {
			return
		}
		other := r.job.Rank(1)
		req := other.Irecv(0, 1)
		if _, err := rk.Wait(p, req); err == nil {
			t.Error("Wait on another rank's request should fail")
		}
	})
	r.k.Run()
}

func TestGatherScatter(t *testing.T) {
	r := newRig(t, 4, 2, true) // 8 ranks
	done := 0
	r.job.Launch("gs", func(p *sim.Proc, rk *Rank) {
		if err := rk.Gather(p, 2, 1e6); err != nil {
			t.Errorf("gather: %v", err)
			return
		}
		if err := rk.Scatter(p, 2, 1e6); err != nil {
			t.Errorf("scatter: %v", err)
			return
		}
		if err := rk.ReduceScatter(p, 1e5); err != nil {
			t.Errorf("reduce-scatter: %v", err)
			return
		}
		done++
	})
	r.k.Run()
	if done != 8 {
		t.Fatalf("done = %d/8", done)
	}
}

func TestScatterFanOutParallel(t *testing.T) {
	// Root's non-blocking fan-out: 3 blocks of 1 GB to 3 peers over
	// 3.2 GB/s IB should take ≈3×0.31 s at the root's up-link (shared),
	// NOT 3 sequential rendezvous round trips. Mostly a sanity check
	// that Isend-based scatter completes quickly.
	r := newRig(t, 4, 1, true)
	epoch := r.k.Now()
	var rootDone sim.Time
	r.job.Launch("fan", func(p *sim.Proc, rk *Rank) {
		if err := rk.Scatter(p, 0, 1e9); err != nil {
			t.Errorf("scatter: %v", err)
			return
		}
		if rk.RankID() == 0 {
			rootDone = p.Now() - epoch
		}
	})
	r.k.Run()
	// 3 GB through the root's 3.2 GB/s up-link ≈ 0.94 s.
	if rootDone > 1500*sim.Millisecond {
		t.Fatalf("scatter took %v, expected ≈1s (parallel fan-out)", rootDone)
	}
}
