package mpi

import (
	"testing"

	"repro/internal/sim"
)

func TestWorldCommShape(t *testing.T) {
	r := newRig(t, 2, 2, true)
	w := r.job.World()
	if w.Size() != 4 {
		t.Fatalf("world size = %d", w.Size())
	}
	for i := 0; i < 4; i++ {
		if w.WorldRank(i) != i {
			t.Fatalf("world order broken at %d", i)
		}
	}
	if cr, ok := w.RankOf(r.job.Rank(3)); !ok || cr != 3 {
		t.Fatalf("RankOf = %d,%v", cr, ok)
	}
}

func TestNewCommSubsetAndDedup(t *testing.T) {
	r := newRig(t, 4, 1, true)
	c := r.job.NewComm([]int{3, 1, 3})
	if c.Size() != 2 || c.WorldRank(0) != 3 || c.WorldRank(1) != 1 {
		t.Fatalf("comm = size %d, members %d %d", c.Size(), c.WorldRank(0), c.WorldRank(1))
	}
	if _, ok := c.RankOf(r.job.Rank(0)); ok {
		t.Fatal("rank 0 should not be a member")
	}
}

func TestSplitRowsAndColumns(t *testing.T) {
	// 4 VMs × 2 ranks = 8 ranks in a 2×4 grid: split by row and column.
	r := newRig(t, 4, 2, true)
	rows := r.job.Split(func(wr int) int { return wr / 4 })
	cols := r.job.Split(func(wr int) int { return wr % 4 })
	if len(rows) != 2 || len(cols) != 4 {
		t.Fatalf("rows=%d cols=%d", len(rows), len(cols))
	}
	if rows[0].Size() != 4 || cols[0].Size() != 2 {
		t.Fatalf("row size %d, col size %d", rows[0].Size(), cols[0].Size())
	}
	if rows[1].WorldRank(0) != 4 {
		t.Fatalf("row 1 starts at %d", rows[1].WorldRank(0))
	}
}

func TestCommCollectivesComplete(t *testing.T) {
	// Row/column collectives run concurrently on disjoint communicators —
	// the FT-transpose pattern — without tag interference.
	r := newRig(t, 4, 2, true)
	rows := r.job.Split(func(wr int) int { return wr / 4 })
	cols := r.job.Split(func(wr int) int { return wr % 4 })
	done := 0
	r.job.Launch("grid", func(p *sim.Proc, rk *Rank) {
		row := rows[rk.RankID()/4]
		col := cols[rk.RankID()%4]
		for i := 0; i < 3; i++ {
			if err := row.Alltoall(p, rk, 1e5); err != nil {
				t.Errorf("row alltoall: %v", err)
				return
			}
			if err := col.Allreduce(p, rk, 1e4); err != nil {
				t.Errorf("col allreduce: %v", err)
				return
			}
			if err := row.Barrier(p, rk); err != nil {
				t.Errorf("row barrier: %v", err)
				return
			}
		}
		done++
	})
	r.k.Run()
	if done != 8 {
		t.Fatalf("done = %d/8", done)
	}
}

func TestCommBcastReduceRoots(t *testing.T) {
	r := newRig(t, 4, 1, true)
	c := r.job.NewComm([]int{2, 0, 3}) // comm ranks: 0→w2, 1→w0, 2→w3
	done := 0
	r.job.Launch("sub", func(p *sim.Proc, rk *Rank) {
		if _, member := c.RankOf(rk); !member {
			return // world rank 1 sits out
		}
		if err := c.Bcast(p, rk, 1, 1e5); err != nil { // root = world rank 0
			t.Errorf("bcast: %v", err)
			return
		}
		if err := c.Reduce(p, rk, 0, 1e5); err != nil { // root = world rank 2
			t.Errorf("reduce: %v", err)
			return
		}
		done++
	})
	r.k.Run()
	if done != 3 {
		t.Fatalf("done = %d/3", done)
	}
}

func TestCommSendRecv(t *testing.T) {
	r := newRig(t, 2, 1, true)
	c := r.job.NewComm([]int{1, 0}) // reversed order
	var got float64
	r.job.Launch("sr", func(p *sim.Proc, rk *Rank) {
		me, _ := c.RankOf(rk)
		switch me {
		case 0: // world rank 1
			if err := c.Send(p, rk, 1, 5, 777); err != nil {
				t.Errorf("send: %v", err)
			}
		case 1: // world rank 0
			b, err := c.Recv(p, rk, 0, 5)
			if err != nil {
				t.Errorf("recv: %v", err)
			}
			got = b
		}
	})
	r.k.Run()
	if got != 777 {
		t.Fatalf("got %v", got)
	}
}

func TestCommNonMemberPanics(t *testing.T) {
	r := newRig(t, 2, 1, true)
	c := r.job.NewComm([]int{0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.me(r.job.Rank(1))
}

func TestCommCheckpointDuringGridWork(t *testing.T) {
	// A Ninja-style checkpoint in the middle of communicator traffic:
	// CRCP interruption must handle sub-communicator collectives too.
	r := newRig(t, 4, 1, true)
	installCRS(r.job, nil, nil)
	rows := r.job.Split(func(wr int) int { return wr / 2 })
	done := 0
	app := r.job.Launch("grid", func(p *sim.Proc, rk *Rank) {
		row := rows[rk.RankID()/2]
		for i := 0; i < 8; i++ {
			rk.FTProbe(p)
			rk.Compute(p, 0.3)
			if err := row.Allreduce(p, rk, 1e6); err != nil {
				t.Errorf("allreduce: %v", err)
				return
			}
		}
		done++
	})
	r.k.Go("trigger", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		if _, err := r.job.RequestCheckpoint(); err != nil {
			t.Errorf("ckpt: %v", err)
		}
	})
	r.k.Run()
	if !app.Done() || done != 4 {
		t.Fatalf("done=%d app=%v", done, app.Done())
	}
}
