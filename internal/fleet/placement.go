package fleet

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/hw"
)

// PlacementPolicy selects the destination-assignment algorithm.
type PlacementPolicy int

const (
	// PlaceGreedy is capacity-driven first-fit in site order — fast,
	// affinity-blind, the baseline a naive scheduler would produce.
	PlaceGreedy PlacementPolicy = iota
	// PlaceSwap refines the greedy assignment with swap-based local
	// search until no relocation or pairwise destination swap improves
	// the fleet's interconnect-affinity score.
	PlaceSwap
)

// String returns the policy label.
func (p PlacementPolicy) String() string {
	switch p {
	case PlaceGreedy:
		return "greedy"
	case PlaceSwap:
		return "swap"
	default:
		return fmt.Sprintf("PlacementPolicy(%d)", int(p))
	}
}

// Affinity weights, from the paper's node-exclusivity discussion: an
// IB-capable job is worth 1024 on an IB node but only 100 degraded to the
// tcp BTL on an Ethernet node; a TCP-only job scores 100 anywhere but
// pays a small penalty for squatting on an IB slot another job may want.
const (
	AffinityIB       = 1024
	AffinityEth      = 100
	AffinityWastedIB = 80
)

// Affinity scores placing one VM of a job with the given interconnect
// capability on node n. It is the single affinity ground truth shared by
// the batch placement solver and the online churn engine
// (internal/churn), which scores continuous-arrival placements with the
// same weights.
func Affinity(ibCapable bool, n *hw.Node) int {
	switch {
	case ibCapable && n.HasInfiniBand():
		return AffinityIB
	case !ibCapable && n.HasInfiniBand():
		return AffinityWastedIB
	default:
		return AffinityEth
	}
}

// affinity scores placing one of job j's VMs on node n.
func affinity(j *Job, n *hw.Node) int { return Affinity(j.IBCapable, n) }

// Assignment is one job's planned destination list (one node per VM, in
// job VM order).
type Assignment struct {
	Job  *Job
	Dsts []*hw.Node
}

// Score sums per-VM interconnect affinity over the assignment.
func (a Assignment) Score() int {
	s := 0
	for _, n := range a.Dsts {
		s += affinity(a.Job, n)
	}
	return s
}

// ScoreAll sums affinity over a whole fleet plan.
func ScoreAll(asgs []Assignment) int {
	s := 0
	for _, a := range asgs {
		s += a.Score()
	}
	return s
}

// ErrNoCapacity reports that the directive's candidate nodes cannot hold
// the fleet.
var ErrNoCapacity = errors.New("fleet: not enough destination capacity")

// tracker accounts slot and memory headroom over the candidate nodes.
type tracker struct {
	order   []*hw.Node // candidate nodes, placement preference order
	free    map[*hw.Node]int
	planned map[*hw.Node]float64 // bytes newly planned onto the node
}

// candidates returns the directive's destination nodes in deterministic
// preference order (site order, then node order), skipping crashed nodes.
func candidates(topo *Topology, dir Directive) ([]*hw.Node, error) {
	var out []*hw.Node
	switch dir.Kind {
	case Evacuate:
		if dir.Source == nil {
			return nil, errors.New("fleet: evacuate directive without a source site")
		}
		for _, s := range topo.Sites {
			if s == dir.Source {
				continue
			}
			for _, n := range s.Nodes {
				if !n.Failed() {
					out = append(out, n)
				}
			}
		}
	case Consolidate:
		if dir.Source == nil {
			return nil, errors.New("fleet: consolidate directive without a site")
		}
		max := dir.MaxNodes
		if max < 1 {
			max = len(dir.Source.Nodes)
		}
		for _, n := range dir.Source.Nodes {
			if len(out) == max {
				break
			}
			if !n.Failed() {
				out = append(out, n)
			}
		}
	case RollingMaintenance:
		if dir.Source == nil {
			return nil, errors.New("fleet: rolling-maintenance directive without a source site")
		}
		if dir.Drain == nil {
			return nil, errors.New("fleet: rolling-maintenance placement without a node under drain")
		}
		// Every healthy node except the one under maintenance: drained
		// jobs shuffle within the site while it has room (site order puts
		// the source first) and spill to other sites when it does not.
		for _, s := range topo.Sites {
			for _, n := range s.Nodes {
				if n != dir.Drain && !n.Failed() {
					out = append(out, n)
				}
			}
		}
	default:
		return nil, fmt.Errorf("fleet: unknown directive kind %v", dir.Kind)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no healthy candidates for %v", ErrNoCapacity, dir.Kind)
	}
	return out, nil
}

func newTracker(topo *Topology, dir Directive, taken map[*hw.Node]int) (*tracker, error) {
	nodes, err := candidates(topo, dir)
	if err != nil {
		return nil, err
	}
	t := &tracker{free: make(map[*hw.Node]int), planned: make(map[*hw.Node]float64)}
	for _, n := range nodes {
		slots := topo.SiteOf(n).slotsPerNode() - taken[n]
		if slots <= 0 {
			continue
		}
		t.order = append(t.order, n)
		t.free[n] = slots
	}
	if len(t.order) == 0 {
		return nil, fmt.Errorf("%w: every candidate slot already taken", ErrNoCapacity)
	}
	return t, nil
}

// fits reports whether one more VM of vmBytes can land on n. Memory
// already resident on the node (including the VM itself, for a
// self-migration) is accounted by hw; we only guard the newly planned
// load so a consolidation cannot oversubscribe a node at plan time.
func (t *tracker) fits(n *hw.Node, vmBytes float64, self bool) bool {
	if t.free[n] <= 0 {
		return false
	}
	if self {
		return true
	}
	return n.MemoryUsed()+t.planned[n]+vmBytes <= n.MemoryBytes
}

func (t *tracker) take(n *hw.Node, vmBytes float64, self bool) {
	t.free[n]--
	if !self {
		t.planned[n] += vmBytes
	}
}

func (t *tracker) release(n *hw.Node, vmBytes float64, self bool) {
	t.free[n]++
	if !self {
		t.planned[n] -= vmBytes
	}
}

// Place assigns every job destination nodes under the directive. Jobs are
// processed in the given order; ties break on candidate order, so the
// result is deterministic for a fixed input.
func Place(jobs []*Job, topo *Topology, dir Directive, pol PlacementPolicy) ([]Assignment, error) {
	return PlaceWith(jobs, topo, dir, pol, nil)
}

// PlaceWith is Place with `taken` destination slots already consumed —
// the executor's incremental path: a rolling-maintenance mini-plan places
// only the jobs touching the drained node, while every other fleet VM
// keeps occupying its current slot.
func PlaceWith(jobs []*Job, topo *Topology, dir Directive, pol PlacementPolicy, taken map[*hw.Node]int) ([]Assignment, error) {
	tr, err := newTracker(topo, dir, taken)
	if err != nil {
		return nil, err
	}
	asgs := make([]Assignment, 0, len(jobs))
	for _, j := range jobs {
		a, err := placeFirstFit(j, tr)
		if err != nil {
			return nil, err
		}
		asgs = append(asgs, a)
	}
	if pol == PlaceSwap {
		refine(asgs, tr)
	}
	return asgs, nil
}

// PlaceOne re-places a single job against the directive's candidates with
// `taken` slots already consumed (the executor's replanning path: other
// jobs' destinations and already-landed VMs occupy slots). The swap
// policy degenerates to best-fit by affinity — there is no peer to swap
// with.
func PlaceOne(job *Job, topo *Topology, dir Directive, pol PlacementPolicy, taken map[*hw.Node]int) (Assignment, error) {
	tr, err := newTracker(topo, dir, taken)
	if err != nil {
		return Assignment{}, err
	}
	if pol == PlaceSwap {
		return placeBestFit(job, tr)
	}
	return placeFirstFit(job, tr)
}

// placeFirstFit gives the job the first candidate nodes with free
// capacity, in preference order — the greedy baseline.
func placeFirstFit(j *Job, tr *tracker) (Assignment, error) {
	return placeOrdered(j, tr, tr.order)
}

// placeBestFit gives the job the highest-affinity free nodes.
func placeBestFit(j *Job, tr *tracker) (Assignment, error) {
	order := append([]*hw.Node(nil), tr.order...)
	sort.SliceStable(order, func(a, b int) bool {
		return affinity(j, order[a]) > affinity(j, order[b])
	})
	return placeOrdered(j, tr, order)
}

func placeOrdered(j *Job, tr *tracker, order []*hw.Node) (Assignment, error) {
	a := Assignment{Job: j}
	for _, vm := range j.VMs() {
		bytes := vm.Memory().TotalBytes()
		placed := false
		for _, n := range order {
			self := vm.Node() == n
			if !tr.fits(n, bytes, self) {
				continue
			}
			tr.take(n, bytes, self)
			a.Dsts = append(a.Dsts, n)
			placed = true
			break
		}
		if !placed {
			// Roll back this job's partial claim before failing.
			for i, n := range a.Dsts {
				tr.release(n, j.VMs()[i].Memory().TotalBytes(), j.VMs()[i].Node() == n)
			}
			return a, fmt.Errorf("%w: job %s VM %s", ErrNoCapacity, j.Name, vm.Name())
		}
	}
	return a, nil
}

// refine is the swap-based local search: alternate single-job relocation
// into free capacity with pairwise destination swaps until a full pass
// finds no strictly improving move (bounded passes keep it O(jobs²) per
// pass and guarantee termination — the score is integral and strictly
// increases).
func refine(asgs []Assignment, tr *tracker) {
	const maxPasses = 16
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		// Relocation: re-place each job on the best free nodes if that
		// strictly beats its current score.
		for i := range asgs {
			if relocate(&asgs[i], tr) {
				improved = true
			}
		}
		// Pairwise swap: exchange two jobs' destination sets when the
		// sum of affinities goes up AND the swapped claims still fit in
		// memory. Shapes must match, so the per-node slot counts are
		// identical either way, but different-sized jobs shift planned
		// bytes between nodes and must re-pass the feasibility check.
		for i := 0; i < len(asgs); i++ {
			for j := i + 1; j < len(asgs); j++ {
				if trySwap(&asgs[i], &asgs[j], tr) {
					improved = true
				}
			}
		}
		if !improved {
			return
		}
	}
}

func relocate(a *Assignment, tr *tracker) bool {
	vms := a.Job.VMs()
	// Free the job's current claim, best-fit from scratch, keep the
	// better of the two.
	for i, n := range a.Dsts {
		tr.release(n, vms[i].Memory().TotalBytes(), vms[i].Node() == n)
	}
	old := *a
	oldScore := old.Score()
	cand, err := placeBestFit(a.Job, tr)
	if err == nil && cand.Score() > oldScore {
		*a = cand
		return true
	}
	if err == nil {
		// Not better: release the candidate claim and restore the old one.
		for i, n := range cand.Dsts {
			tr.release(n, vms[i].Memory().TotalBytes(), vms[i].Node() == n)
		}
	}
	for i, n := range old.Dsts {
		tr.take(n, vms[i].Memory().TotalBytes(), vms[i].Node() == n)
	}
	*a = old
	return false
}

// trySwap exchanges two jobs' destination sets when that strictly raises
// the summed affinity and the swapped memory claims remain feasible on
// the tracker. Without the feasibility re-check, swapping a small job
// with a large one could plan a node past MemoryBytes — the affinity
// delta is size-blind.
func trySwap(a, b *Assignment, tr *tracker) bool {
	if len(a.Dsts) != len(b.Dsts) {
		return false
	}
	before := a.Score() + b.Score()
	a.Dsts, b.Dsts = b.Dsts, a.Dsts
	if a.Score()+b.Score() > before && swapFits(a, b, tr) {
		return true
	}
	a.Dsts, b.Dsts = b.Dsts, a.Dsts
	return false
}

// swapFits re-validates both (already swapped) assignments' memory claims
// against the tracker: release both jobs' current claims, then re-take
// them one VM at a time under the fits() guard. Slot counts are untouched
// by a swap (the combined node multiset is identical), so only memory can
// refuse. On failure every partial take is rolled back and the original
// claims are restored, leaving the tracker exactly as found.
func swapFits(a, b *Assignment, tr *tracker) bool {
	type claim struct {
		n     *hw.Node
		bytes float64
		self  bool
	}
	release := func(asg *Assignment, dsts []*hw.Node) {
		vms := asg.Job.VMs()
		for i, n := range dsts {
			tr.release(n, vms[i].Memory().TotalBytes(), vms[i].Node() == n)
		}
	}
	// Both assignments are already swapped; their pre-swap claims are each
	// other's destination lists.
	release(a, b.Dsts)
	release(b, a.Dsts)
	var taken []claim
	ok := true
	for _, asg := range []*Assignment{a, b} {
		vms := asg.Job.VMs()
		for i, n := range asg.Dsts {
			c := claim{n: n, bytes: vms[i].Memory().TotalBytes(), self: vms[i].Node() == n}
			if !tr.fits(n, c.bytes, c.self) {
				ok = false
				break
			}
			tr.take(n, c.bytes, c.self)
			taken = append(taken, c)
		}
		if !ok {
			break
		}
	}
	if ok {
		return true
	}
	for _, c := range taken {
		tr.release(c.n, c.bytes, c.self)
	}
	// Restore the pre-swap claims (the caller will swap Dsts back).
	takeBack := func(asg *Assignment, dsts []*hw.Node) {
		vms := asg.Job.VMs()
		for i, n := range dsts {
			tr.take(n, vms[i].Memory().TotalBytes(), vms[i].Node() == n)
		}
	}
	takeBack(a, b.Dsts)
	takeBack(b, a.Dsts)
	return false
}
