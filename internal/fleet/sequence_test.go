package fleet

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// mig builds a priced migration without hardware: the sequencer only
// reads Job.Name, Bytes, Fixed, MaxRate and Links.
func mig(name string, gb float64, fixed sim.Time, rate float64, links ...string) *Migration {
	return &Migration{
		Job:     &Job{Name: name},
		Bytes:   gb * 1e9,
		Fixed:   fixed,
		MaxRate: rate,
		Links:   links,
	}
}

func TestSoloTimeBindsOnLinkOrSender(t *testing.T) {
	caps := map[string]float64{"wan:a": 1e9}
	// Sender-bound: 2 GB at 0.5 GB/s = 4 s + 3 s fixed.
	m := mig("j0", 2, 3*sim.Second, 0.5e9, "wan:a")
	if got := m.soloTime(caps); got != 7*sim.Second {
		t.Fatalf("sender-bound solo = %v, want 7s", got)
	}
	// Link-bound: raise the sender past the 1 GB/s circuit.
	m.MaxRate = 4e9
	if got := m.soloTime(caps); got != 5*sim.Second {
		t.Fatalf("link-bound solo = %v, want 5s", got)
	}
	// No payload: fixed cost only.
	m.Bytes = 0
	if got := m.soloTime(caps); got != 3*sim.Second {
		t.Fatalf("zero-payload solo = %v, want 3s", got)
	}
}

func TestBatchTimeSplitsSharedLinks(t *testing.T) {
	caps := map[string]float64{"wan:a": 1e9}
	a := mig("a", 2, 0, 1e9, "wan:a")
	b := mig("b", 2, 0, 1e9, "wan:a")
	// Alone: 2 s each. Together on one 1 GB/s circuit: each gets 0.5 GB/s
	// → 4 s.
	if got := batchTime([]*Migration{a}, caps); got != 2*sim.Second {
		t.Fatalf("solo batch = %v, want 2s", got)
	}
	if got := batchTime([]*Migration{a, b}, caps); got != 4*sim.Second {
		t.Fatalf("shared batch = %v, want 4s", got)
	}
	// A member on a different circuit is unaffected by the split.
	c := mig("c", 2, 0, 1e9, "wan:b")
	caps["wan:b"] = 1e9
	if got := batchTime([]*Migration{a, b, c}, caps); got != 4*sim.Second {
		t.Fatalf("disjoint-link batch = %v, want 4s", got)
	}
}

func TestPlanSequenceSequentialKeepsOrder(t *testing.T) {
	caps := map[string]float64{}
	migs := []*Migration{mig("b", 1, 0, 1e9), mig("a", 2, 0, 1e9)}
	seq := PlanSequence(migs, caps, SeqPolicy{})
	if len(seq.Batches) != 2 {
		t.Fatalf("%d batches, want one per migration", len(seq.Batches))
	}
	if seq.Batches[0][0] != migs[0] || seq.Batches[1][0] != migs[1] {
		t.Fatal("sequential plan reordered the input")
	}
	if seq.Predicted != 3*sim.Second {
		t.Fatalf("predicted = %v, want 3s", seq.Predicted)
	}
}

func TestPlanSequenceBatchesNonConflicting(t *testing.T) {
	// Two disjoint circuits: all four migrations can overlap freely, so
	// batching collapses them into one batch whose span is the slowest
	// member — strictly better than the sequential sum.
	caps := map[string]float64{"wan:a": 1e9, "wan:b": 1e9}
	migs := []*Migration{
		mig("a1", 2, sim.Second, 2e9, "wan:a"),
		mig("b1", 2, sim.Second, 2e9, "wan:b"),
		mig("a2", 1, sim.Second, 2e9, "wan:a"),
		mig("b2", 1, sim.Second, 2e9, "wan:b"),
	}
	seqSeq := PlanSequence(migs, caps, SeqPolicy{})
	bat := PlanSequence(migs, caps, SeqPolicy{Batched: true})
	if bat.Predicted >= seqSeq.Predicted {
		t.Fatalf("batched %v not below sequential %v", bat.Predicted, seqSeq.Predicted)
	}
	if len(bat.Migrations()) != len(migs) {
		t.Fatalf("batched plan lost migrations: %d/%d", len(bat.Migrations()), len(migs))
	}
}

func TestPlanSequenceRespectsCap(t *testing.T) {
	caps := map[string]float64{}
	var migs []*Migration
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		migs = append(migs, mig(n, 1, sim.Second, 1e9))
	}
	seq := PlanSequence(migs, caps, SeqPolicy{Batched: true, Cap: 2})
	if len(seq.Batches) < 3 {
		t.Fatalf("%d batches for 5 migrations at cap 2, want ≥3", len(seq.Batches))
	}
	for i, b := range seq.Batches {
		if len(b) > 2 {
			t.Fatalf("batch %d has %d members, cap is 2", i, len(b))
		}
	}
}

func TestPlanSequenceSpreadsConflicts(t *testing.T) {
	// One shared 1 GB/s circuit, migrations that saturate it alone:
	// batching them would double every member's wire time without saving
	// fixed cost, so the planner keeps heavy conflicting transfers apart.
	caps := map[string]float64{"wan:a": 1e9}
	heavy := []*Migration{
		mig("h1", 10, 0, 1e9, "wan:a"),
		mig("h2", 10, 0, 1e9, "wan:a"),
	}
	seq := PlanSequence(heavy, caps, SeqPolicy{Batched: true})
	if seq.Predicted > 20*sim.Second {
		t.Fatalf("predicted = %v, want ≤ 20s (no worse than serializing)", seq.Predicted)
	}
}

func TestPlanSequenceDeterministic(t *testing.T) {
	caps := map[string]float64{"wan:a": 1e9, "wan:b": 2e9}
	build := func() []*Migration {
		return []*Migration{
			mig("a", 3, sim.Second, 1e9, "wan:a"),
			mig("b", 3, sim.Second, 1e9, "wan:a"), // tie with a → name order
			mig("c", 1, 2*sim.Second, 1e9, "wan:b"),
			mig("d", 5, 0, 1e9, "wan:a", "wan:b"),
		}
	}
	shape := func(s Sequence) [][]string {
		var out [][]string
		for _, b := range s.Batches {
			var names []string
			for _, m := range b {
				names = append(names, m.Job.Name)
			}
			out = append(out, names)
		}
		return out
	}
	first := PlanSequence(build(), caps, SeqPolicy{Batched: true, Cap: 3})
	for i := 0; i < 5; i++ {
		again := PlanSequence(build(), caps, SeqPolicy{Batched: true, Cap: 3})
		if !reflect.DeepEqual(shape(first), shape(again)) ||
			first.Predicted != again.Predicted {
			t.Fatalf("run %d differs: %v (%v) vs %v (%v)",
				i, shape(first), first.Predicted, shape(again), again.Predicted)
		}
	}
}

func TestCostModelDefaults(t *testing.T) {
	// The zero value must resolve to the calibrated defaults, and partial
	// overrides must survive.
	m := CostModel{Hotplug: 5 * sim.Second}.withDefaults()
	d := DefaultCostModel()
	if m.Hotplug != 5*sim.Second {
		t.Fatalf("override lost: hotplug = %v", m.Hotplug)
	}
	if m.Coordination != d.Coordination || m.IBLinkup != d.IBLinkup || m.PerVMWireRate != d.PerVMWireRate {
		t.Fatalf("defaults not applied: %+v", m)
	}
}
