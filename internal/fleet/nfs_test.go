package fleet

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

// The shared storage server must appear in LinkCaps when priced, under a
// stable name, and stay absent otherwise — pre-NFS plans are unchanged.
func TestLinkCapsPricesNFS(t *testing.T) {
	topo := NewTopology(&Site{Name: "a", WANBandwidth: 1e9})
	if caps := topo.LinkCaps(); len(caps) != 1 || caps["wan:a"] != 1e9 {
		t.Fatalf("caps without NFS = %v, want only wan:a", caps)
	}
	topo.NFSBandwidth = 0.5e9
	caps := topo.LinkCaps()
	if caps["nfs:shared"] != 0.5e9 {
		t.Fatalf("caps = %v, want nfs:shared at 0.5e9", caps)
	}
	topo.NFSName = "wan-nfs"
	if caps := topo.LinkCaps(); caps["nfs:wan-nfs"] != 0.5e9 {
		t.Fatalf("caps = %v, want nfs:wan-nfs", caps)
	}
}

// Cold migrations must carry the NFS link even when they cross no WAN
// circuit; live migrations on the same topology must not.
func TestMigrationOfColdCrossesNFS(t *testing.T) {
	k := sim.NewKernel()
	tb := hw.NewTestbed(k)
	src := tb.AddCluster("src", 2, ethSpec())
	jobs := newTestJobs(t, k, tb, src.Nodes, []float64{4}, 2)
	// One site, no WAN constraint: an intra-site move crosses nothing.
	topo := NewTopology(&Site{Name: "src", Nodes: src.Nodes, SlotsPerNode: 2})
	topo.NFSBandwidth = 1e9
	dsts := []*hw.Node{src.Nodes[1], src.Nodes[1]}

	live := topo.MigrationOf(jobs[0], dsts, CostModel{})
	if len(live.Links) != 0 {
		t.Fatalf("live intra-site migration crosses %v, want no links", live.Links)
	}
	cold := topo.MigrationOf(jobs[0], dsts, CostModel{Cold: true})
	if len(cold.Links) != 1 || cold.Links[0] != "nfs:shared" {
		t.Fatalf("cold migration crosses %v, want [nfs:shared]", cold.Links)
	}
}

// Regression for the ROADMAP-flagged gap: cold migrations used to
// sequence as if storage bandwidth were free. With the NFS server priced,
// the LPT batcher serializes a checkpoint burst — putting the small
// migrations in the big one's batch would stretch them behind the shared
// store, so they land in a second batch — and the predicted makespan
// reflects the storage bottleneck instead of full overlap.
func TestColdBatchesSerializeOnNFSLink(t *testing.T) {
	nfs := "nfs:shared"
	// One 64 GB checkpoint plus two 2 GB ones, all through a 1 GB/s
	// store. Free storage: disjoint links, one batch, makespan = slowest
	// member solo (64 s + fixed).
	big := mig("big", 64, sim.Second, 1e9, nfs)
	s1 := mig("s1", 2, sim.Second, 1e9, nfs)
	s2 := mig("s2", 2, sim.Second, 1e9, nfs)
	free := PlanSequence([]*Migration{big, s1, s2}, map[string]float64{}, SeqPolicy{Batched: true})
	if len(free.Batches) != 1 {
		t.Fatalf("unpriced storage: %d batches, want 1 (storage looked free)", len(free.Batches))
	}

	priced := PlanSequence([]*Migration{big, s1, s2}, map[string]float64{nfs: 1e9}, SeqPolicy{Batched: true})
	if len(priced.Batches) < 2 {
		t.Fatalf("priced storage: %d batches, want the burst serialized", len(priced.Batches))
	}
	if priced.Predicted <= free.Predicted {
		t.Fatalf("priced makespan %v not above the storage-free estimate %v",
			priced.Predicted, free.Predicted)
	}
	// The batcher still overlaps what the store can carry: the two small
	// checkpoints share a batch instead of running one per batch.
	if len(priced.Batches) != 2 {
		t.Fatalf("priced storage: %d batches, want 2 (big alone, smalls overlapped)", len(priced.Batches))
	}
}
