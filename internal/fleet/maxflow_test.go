package fleet

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

// Water-filling regression, hand-computed on two links: A crosses both
// L1 (10 GB/s, shared with B) and L2 (2 GB/s, alone); B crosses only L1.
// Equal-split pins B at half of L1 (5 GB/s) even though A — bottlenecked
// at 2 GB/s by L2 — can never use its L1 half: 60 GB / 5 GB/s = 12 s for
// B, so the old estimator called the batch 12 s. Max-min redistributes
// A's unused 3 GB/s to B (8 GB/s → 7.5 s), leaving A the slowest member:
// 20 GB / 2 GB/s = 10 s.
func TestBatchTimeWaterFills(t *testing.T) {
	caps := map[string]float64{"wan:l1": 10e9, "wan:l2": 2e9}
	a := mig("a", 20, 0, 1e12, "wan:l1", "wan:l2")
	b := mig("b", 60, 0, 1e12, "wan:l1")
	batch := []*Migration{a, b}
	rates := batchRates(batch, caps)
	if rates[0] != 2e9 || rates[1] != 8e9 {
		t.Fatalf("rates = %v, want [2e9 8e9]", rates)
	}
	if got, want := batchTime(batch, caps), sim.FromSeconds(10); got != want {
		t.Fatalf("batchTime = %v, want %v (equal-split would say 12 s)", got, want)
	}
}

// Progressive filling reduces to equal split when members are
// symmetric — the invariant that keeps the ext-fleet LPT rows
// byte-identical across the estimator fix.
func TestBatchRatesSymmetricEqualSplit(t *testing.T) {
	caps := map[string]float64{"wan:a": 1e9}
	batch := []*Migration{
		mig("x", 2, 0, 1e10, "wan:a"),
		mig("y", 2, 0, 1e10, "wan:a"),
	}
	rates := batchRates(batch, caps)
	if rates[0] != 0.5e9 || rates[1] != 0.5e9 {
		t.Fatalf("rates = %v, want equal halves", rates)
	}
}

// Eight identical gangs over one saturated uplink: LPT under cap 4 pays
// the fixed overheads twice (two batches); the max-flow planner rides
// the bottleneck into a single round and pays them once. This is the
// unit-scale version of the ext-fleet acceptance row.
func TestPlanMaxFlowMergesBottleneckRounds(t *testing.T) {
	caps := map[string]float64{"wan:dc0": 1.25e9, "wan:dc1": 1.25e9}
	var migs []*Migration
	for i := 0; i < 8; i++ {
		m := mig(fmt.Sprintf("j%02d", i), 2.0, 13*sim.Second, 0.325e9, "wan:dc0", "wan:dc1")
		migs = append(migs, m)
	}
	lpt := PlanSequence(migs, caps, SeqPolicy{Batched: true, Cap: 4})
	mf := PlanSequence(migs, caps, SeqPolicy{Batched: true, Mode: SeqMaxFlow})
	if len(mf.Batches) != 1 {
		t.Fatalf("maxflow used %d rounds, want 1", len(mf.Batches))
	}
	if len(lpt.Batches) != 2 {
		t.Fatalf("LPT used %d batches, want 2", len(lpt.Batches))
	}
	if mf.Predicted >= lpt.Predicted {
		t.Fatalf("maxflow predicted %v not below LPT %v", mf.Predicted, lpt.Predicted)
	}
}

// A migration that adds real capacity (its own uncontended link) is
// admitted for flow gain, not bottleneck riding — the round grows while
// aggregate transferable bytes grow.
func TestPlanMaxFlowAdmitsDisjointLinks(t *testing.T) {
	caps := map[string]float64{"wan:a": 1e9, "wan:b": 1e9}
	migs := []*Migration{
		mig("a", 4, sim.Second, 1e9, "wan:a"),
		mig("b", 4, sim.Second, 1e9, "wan:b"),
	}
	seq := PlanSequence(migs, caps, SeqPolicy{Mode: SeqMaxFlow})
	if len(seq.Batches) != 1 || len(seq.Batches[0]) != 2 {
		t.Fatalf("disjoint migrations should share one round, got %v batches", len(seq.Batches))
	}
}

// layout flattens a sequence to job names per batch, for equality
// checks.
func layout(seq Sequence) [][]string {
	var out [][]string
	for _, b := range seq.Batches {
		var names []string
		for _, m := range b {
			names = append(names, m.Job.Name)
		}
		out = append(out, names)
	}
	return out
}

// Property test over seeded random WAN-bottleneck topologies: the
// max-flow plan's predicted makespan never exceeds the LPT plan's under
// the same cap (the planner's portfolio guard makes this structural —
// this asserts the guard and the shared pricing stay wired), and both
// planners are deterministic functions of their input.
func TestPlanMaxFlowNeverWorseThanLPT(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		nLinks := 1 + rng.Intn(4)
		caps := map[string]float64{}
		var links []string
		for i := 0; i < nLinks; i++ {
			l := fmt.Sprintf("wan:l%d", i)
			links = append(links, l)
			caps[l] = (0.5 + 1.5*rng.Float64()) * 1e9
		}
		nMigs := 2 + rng.Intn(11)
		var migs []*Migration
		for i := 0; i < nMigs; i++ {
			var ls []string
			for _, l := range links {
				if rng.Intn(2) == 0 {
					ls = append(ls, l)
				}
			}
			m := mig(fmt.Sprintf("j%02d", i),
				1+9*rng.Float64(),
				sim.Time(1+rng.Intn(43))*sim.Second,
				float64(1+rng.Intn(4))*0.1625e9,
				ls...)
			migs = append(migs, m)
		}
		cap := 0
		if rng.Intn(2) == 0 {
			cap = 2 + rng.Intn(4)
		}
		lpt := PlanSequence(migs, caps, SeqPolicy{Batched: true, Cap: cap})
		mf := PlanSequence(migs, caps, SeqPolicy{Batched: true, Cap: cap, Mode: SeqMaxFlow})
		if mf.Predicted > lpt.Predicted {
			t.Fatalf("trial %d: maxflow predicted %v exceeds LPT %v (links %v, %d migs, cap %d)",
				trial, mf.Predicted, lpt.Predicted, caps, nMigs, cap)
		}
		for _, b := range mf.Batches {
			if cap > 0 && len(b) > cap {
				t.Fatalf("trial %d: maxflow round of %d exceeds cap %d", trial, len(b), cap)
			}
		}
		if n := len(mf.Migrations()); n != nMigs {
			t.Fatalf("trial %d: maxflow plan carries %d migrations, want %d", trial, n, nMigs)
		}
		mf2 := PlanSequence(migs, caps, SeqPolicy{Batched: true, Cap: cap, Mode: SeqMaxFlow})
		if !reflect.DeepEqual(layout(mf), layout(mf2)) || mf.Predicted != mf2.Predicted {
			t.Fatalf("trial %d: maxflow plan not deterministic", trial)
		}
		lpt2 := PlanSequence(migs, caps, SeqPolicy{Batched: true, Cap: cap})
		if !reflect.DeepEqual(layout(lpt), layout(lpt2)) || lpt.Predicted != lpt2.Predicted {
			t.Fatalf("trial %d: LPT plan not deterministic", trial)
		}
	}
}

// The Dinic solver on a hand-checkable network: two migrations capped at
// 3 each, sharing a 4-capacity link — max flow 4; adding a third on a
// disjoint 2-capacity link raises it to 6.
func TestRoundFlowHandComputed(t *testing.T) {
	caps := map[string]float64{"wan:x": 4, "wan:y": 2}
	a := mig("a", 1, 0, 3, "wan:x")
	b := mig("b", 1, 0, 3, "wan:x")
	c := mig("c", 1, 0, 3, "wan:y")
	if f := roundFlow([]*Migration{a, b}, caps); f != 4 {
		t.Fatalf("flow(a,b) = %v, want 4", f)
	}
	if f := roundFlow([]*Migration{a, b, c}, caps); f != 6 {
		t.Fatalf("flow(a,b,c) = %v, want 6", f)
	}
}

// Unknown modes are refused before they can silently plan as LPT.
func TestSeqPolicyValidate(t *testing.T) {
	for _, mode := range []string{"", SeqLPT, SeqMaxFlow} {
		if err := (SeqPolicy{Mode: mode}).Validate(); err != nil {
			t.Fatalf("mode %q: %v", mode, err)
		}
	}
	if err := (SeqPolicy{Mode: "dinic"}).Validate(); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestPlanSequenceMemoizedCost is the satellite perf guard: the memoized
// LPT insert must price a 128-migration plan materially faster than the
// old O(B²) re-pricer, which recomputed batchTime for every untouched
// batch on every candidate. naive replicates that re-pricer against the
// same batchTime, so the comparison isolates the memoization.
// Wall-clock assertions are machine-sensitive, so the guard runs only
// when NINJA_PERF=1 (scripts/bench.sh sets it).
func TestPlanSequenceMemoizedCost(t *testing.T) {
	if os.Getenv("NINJA_PERF") != "1" {
		t.Skip("set NINJA_PERF=1 to run the wall-clock perf guard")
	}
	caps, migs := seqBenchFleet(128)
	pol := SeqPolicy{Batched: true, Cap: 4}

	naive := func() Sequence {
		order := append([]*Migration(nil), migs...)
		// Same seed order as planLPT.
		for i := 1; i < len(order); i++ {
			for j := i; j > 0; j-- {
				di, dj := order[j].soloTime(caps), order[j-1].soloTime(caps)
				if di > dj || (di == dj && order[j].Job.Name < order[j-1].Job.Name) {
					order[j], order[j-1] = order[j-1], order[j]
				} else {
					break
				}
			}
		}
		var seq Sequence
		price := func(batches [][]*Migration, into int, m *Migration) sim.Time {
			var total sim.Time
			for bi, b := range batches {
				if bi == into {
					b = append(append([]*Migration(nil), b...), m)
				}
				total += batchTime(b, caps)
			}
			if into == -1 {
				total += batchTime([]*Migration{m}, caps)
			}
			return total
		}
		for _, m := range order {
			best, bestTotal := -1, sim.Time(0)
			for bi, b := range seq.Batches {
				if pol.Cap > 0 && len(b) >= pol.Cap {
					continue
				}
				if total := price(seq.Batches, bi, m); best == -1 || total < bestTotal {
					best, bestTotal = bi, total
				}
			}
			if newTotal := price(seq.Batches, -1, m); best == -1 || newTotal < bestTotal {
				seq.Batches = append(seq.Batches, []*Migration{m})
			} else {
				seq.Batches[best] = append(seq.Batches[best], m)
			}
		}
		for _, b := range seq.Batches {
			d := batchTime(b, caps)
			seq.PerBatch = append(seq.PerBatch, d)
			seq.Predicted += d
		}
		return seq
	}

	const rounds = 5
	best := func(f func()) float64 {
		b := -1.0
		for r := 0; r < rounds; r++ {
			start := time.Now()
			f()
			if w := time.Since(start).Seconds(); b < 0 || w < b {
				b = w
			}
		}
		return b
	}
	var memo, ref Sequence
	memoSecs := best(func() { memo = PlanSequence(migs, caps, pol) })
	naiveSecs := best(func() { ref = naive() })
	if !reflect.DeepEqual(layout(memo), layout(ref)) || memo.Predicted != ref.Predicted {
		t.Fatalf("memoized plan diverges from the reference re-pricer:\n%v\nvs\n%v", layout(memo), layout(ref))
	}
	if memoSecs >= naiveSecs/2 {
		t.Fatalf("memoized planning %.4fs, naive %.4fs — want at least 2x", memoSecs, naiveSecs)
	}
	t.Logf("memoized %.4fs vs naive %.4fs (%.1fx)", memoSecs, naiveSecs, naiveSecs/memoSecs)
}

// seqBenchFleet builds the deterministic 128-migration WAN-bottlenecked
// planning workload shared by the perf guard and BenchmarkSequencerPlan:
// every gang crosses the evacuating site's uplink plus one of seven
// destination uplinks, with staggered payloads and the calibrated fixed
// overheads.
func seqBenchFleet(n int) (map[string]float64, []*Migration) {
	caps := map[string]float64{"wan:src": 1.25e9}
	for i := 0; i < 7; i++ {
		caps[fmt.Sprintf("wan:dst%d", i)] = 1.25e9
	}
	var migs []*Migration
	for i := 0; i < n; i++ {
		fixed := 13 * sim.Second
		if i%2 == 0 {
			fixed = 43 * sim.Second
		}
		migs = append(migs, mig(
			fmt.Sprintf("j%03d", i),
			1+float64(i%16)/4,
			fixed,
			0.325e9,
			"wan:src", fmt.Sprintf("wan:dst%d", i%7),
		))
	}
	return caps, migs
}
