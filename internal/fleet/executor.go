package fleet

import (
	"fmt"
	"sort"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/ninja"
	"repro/internal/sim"
)

// Options tune an Executor.
type Options struct {
	// Topo and Placement drive replanning, rollback re-queueing and
	// rolling drains; Replan enables pre-batch replanning. A pending
	// migration whose destination node crashed before its batch started
	// is re-placed against the remaining capacity (crashes that strike
	// mid-flight are the orchestrator's business: ninja.RetryPolicy plus
	// the shared spare pool).
	Topo      *Topology
	Placement PlacementPolicy
	Replan    bool
	// Mode selects live or cold (checkpoint/restart) transfer.
	Mode ninja.Mode
	// Model re-prices replanned migrations (zero value → defaults).
	Model CostModel
	// AttemptBudget bounds how many times one job may run within a leg,
	// counting the first try. 0 selects the default of 3; 1 restores the
	// old end-the-attempt-on-rollback behavior. Negative values are
	// rejected by Executor.Start with an *OptionsError — they are always a
	// caller bug, and silently mapping them to the default used to mask
	// it. A job whose attempt rolled back in place is re-queued into a
	// fresh batch until the budget is spent.
	AttemptBudget int
}

// OptionsError reports a rejected fleet option or directive field. It is
// returned (wrapped in nothing — errors.As-able directly) by
// Options.Validate, Directive.Validate, Planner.Plan and Executor.Start.
type OptionsError struct {
	Field  string // e.g. "Options.AttemptBudget"
	Value  int
	Reason string
}

func (e *OptionsError) Error() string {
	return fmt.Sprintf("fleet: invalid %s %d: %s", e.Field, e.Value, e.Reason)
}

// Validate rejects option values that are always caller bugs. The zero
// value of every field is valid and selects the documented default.
func (o Options) Validate() error {
	if o.AttemptBudget < 0 {
		return &OptionsError{
			Field: "Options.AttemptBudget", Value: o.AttemptBudget,
			Reason: "attempt budget must not be negative (0 selects the default of 3)",
		}
	}
	return nil
}

func (o Options) attemptBudget() int {
	if o.AttemptBudget > 0 {
		return o.AttemptBudget
	}
	return 3
}

// JobOutcome is one job's result within a fleet directive.
type JobOutcome struct {
	Job  *Job
	Dsts []*hw.Node
	// Batch is the index of the batch the job ran in (within its leg).
	Batch             int
	Report            ninja.Report
	Err               error
	Started, Finished sim.Time
	// Replanned marks a job whose destinations were reassigned by the
	// fleet before its migration started.
	Replanned bool
	// Attempts counts executor-level attempts within the leg (1 = first
	// try; >1 means rollback-in-place re-queues happened). The outcome
	// recorded is the final attempt's.
	Attempts int
	// Leg labels the directive leg the outcome belongs to: "" for the
	// primary leg, "return" for the evacuate-and-return-home leg,
	// "drain:<node>" for a rolling-maintenance mini-plan.
	Leg string
	// Outcome is the fleet-level classification: the orchestrator's
	// outcome, upgraded to retried-ok when the only recovery was a
	// fleet-level replan of a clean run.
	Outcome ninja.Outcome
}

// DrainRecord summarizes one rolling-maintenance mini-plan.
type DrainRecord struct {
	// Node is the drained node's name.
	Node string
	// Jobs is how many jobs had to leave the node; Batches how many
	// batches the mini-plan used; MaxInFlight the largest batch — the
	// observed jobs-in-flight concurrency.
	Jobs, Batches, MaxInFlight int
	// Left counts VMs still on the node after the drain (0 on success).
	Left int
}

// Report summarizes a completed directive.
type Report struct {
	Dir Directive
	// Started/Finished bound the whole directive; Makespan is their
	// difference.
	Started, Finished sim.Time
	Makespan          sim.Time
	// Downtime aggregates trigger-to-resume (ninja Report.Total) over
	// every job attempt — the fleet's total service interruption.
	Downtime sim.Time
	// DeadlineMet is true when the directive had no deadline or finished
	// in time.
	DeadlineMet bool
	// Replans counts fleet-level destination reassignments.
	Replans int
	// Requeues counts rolled-back-in-place jobs put into fresh batches
	// for another attempt.
	Requeues int
	Jobs     []JobOutcome
	// Drains records each rolling-maintenance mini-plan, in drain order.
	Drains []DrainRecord
	// Events is the fleet-level trail (batch launches, replans, requeues,
	// drains, deadline verdict); per-job trails ride in each
	// JobOutcome.Report.
	Events []metrics.Event
}

// Failed returns the outcomes that ended in an error other than a clean
// rollback-in-place (a rolled-back job is still healthy and running).
func (r Report) Failed() []JobOutcome {
	var out []JobOutcome
	for _, jo := range r.Jobs {
		if jo.Err != nil && jo.Report.Outcome != ninja.OutcomeRolledBack {
			out = append(out, jo)
		}
	}
	return out
}

// OutcomeCounts renders "6 clean, 2 retried-ok"-style tallies: the known
// outcomes in a fixed order first, then any outcome outside that list
// (a hard-failed job may carry an unset or unrecognized Outcome),
// name-sorted — so the tallies always sum to len(Jobs).
func (r Report) OutcomeCounts() string {
	counts := map[ninja.Outcome]int{}
	for _, jo := range r.Jobs {
		counts[jo.Outcome]++
	}
	out := ""
	add := func(o ninja.Outcome) {
		if out != "" {
			out += ", "
		}
		label := string(o)
		if label == "" {
			label = "unknown"
		}
		out += fmt.Sprintf("%d %s", counts[o], label)
	}
	for _, o := range []ninja.Outcome{ninja.OutcomeClean, ninja.OutcomeRetriedOK,
		ninja.OutcomeDegradedTCP, ninja.OutcomeRolledBack} {
		if counts[o] == 0 {
			continue
		}
		add(o)
		delete(counts, o)
	}
	rest := make([]string, 0, len(counts))
	for o := range counts {
		rest = append(rest, string(o))
	}
	sort.Strings(rest)
	for _, o := range rest {
		add(ninja.Outcome(o))
	}
	if out == "" {
		out = "none"
	}
	return out
}

// Executor runs a fleet plan: batches execute in order, the gang
// migrations inside a batch run concurrently, each under its own
// ninja.Orchestrator on the shared DES kernel. RollingMaintenance
// directives are executed incrementally — one placed-and-sequenced
// mini-plan per drained node.
type Executor struct {
	k      *sim.Kernel
	plan   *Plan
	opts   Options
	events *metrics.EventLog
	begun  bool
}

// NewExecutor builds an executor for the plan.
func NewExecutor(k *sim.Kernel, plan *Plan, opts Options) *Executor {
	return &Executor{k: k, plan: plan, opts: opts, events: metrics.NewEventLog(k.Now)}
}

// Events returns the executor's fleet-level event log.
func (e *Executor) Events() *metrics.EventLog { return e.events }

// Start launches the directive and returns a future resolving to the
// fleet report once every batch has finished.
func (e *Executor) Start() (*sim.Future[Report], error) {
	if e.begun {
		return nil, fmt.Errorf("fleet: executor already started")
	}
	if err := e.opts.Validate(); err != nil {
		return nil, err
	}
	if err := e.plan.Dir.Validate(); err != nil {
		return nil, err
	}
	if e.plan.Dir.Kind == RollingMaintenance && e.opts.Topo == nil {
		return nil, fmt.Errorf("fleet: rolling maintenance requires Options.Topo")
	}
	if e.plan.Dir.ReturnHome && e.opts.Topo == nil {
		return nil, fmt.Errorf("fleet: ReturnHome requires Options.Topo")
	}
	if e.opts.Mode == ninja.Cold {
		// Replanned and re-queued mini-plans must price the shared
		// storage link the checkpoints stream through.
		e.opts.Model.Cold = true
	}
	if e.opts.Mode == ninja.RDMANative {
		// QP replay keeps devices attached: replanned and re-queued
		// mini-plans must not price the hotplug/link-up fixed terms.
		e.opts.Model.RDMANative = true
	}
	e.begun = true
	fut := sim.NewFuture[Report](e.k)
	e.k.Go("fleet-executor", func(p *sim.Proc) {
		fut.Set(e.run(p))
	})
	return fut, nil
}

// fleetJobs returns every job under the directive: the planner records
// them on the plan; hand-built plans fall back to the sequenced jobs.
func (e *Executor) fleetJobs() []*Job {
	if len(e.plan.Jobs) > 0 {
		return e.plan.Jobs
	}
	seen := map[*Job]bool{}
	var out []*Job
	for _, b := range e.plan.Seq.Batches {
		for _, m := range b {
			if !seen[m.Job] {
				seen[m.Job] = true
				out = append(out, m.Job)
			}
		}
	}
	return out
}

func (e *Executor) run(p *sim.Proc) Report {
	rep := Report{Dir: e.plan.Dir, Started: p.Now()}
	if e.plan.Dir.Kind == RollingMaintenance {
		e.runRolling(p, &rep)
	} else {
		// ReturnHome needs the pre-evacuation placement — record it
		// before the first batch moves anything.
		var homes map[*Job][]*hw.Node
		if e.plan.Dir.Kind == Evacuate && e.plan.Dir.ReturnHome {
			homes = make(map[*Job][]*hw.Node)
			for _, j := range e.fleetJobs() {
				var ns []*hw.Node
				for _, vm := range j.VMs() {
					ns = append(ns, vm.Node())
				}
				homes[j] = ns
			}
		}
		e.runBatches(p, &rep, e.plan.Seq.Batches, e.plan.Dir, "", true, e.plan.SeqPol)
		if homes != nil {
			e.runReturnHome(p, &rep, homes)
		}
	}
	rep.Finished = p.Now()
	rep.Makespan = rep.Finished - rep.Started
	rep.DeadlineMet = e.plan.Dir.Deadline == 0 || rep.Finished <= e.plan.Dir.Deadline
	if !rep.DeadlineMet {
		e.events.Record(metrics.EventDeadlineMiss, "fleet", "",
			fmt.Sprintf("finished %.1fs after the deadline", (rep.Finished-e.plan.Dir.Deadline).Seconds()))
	}
	rep.Events = append([]metrics.Event(nil), e.events.Events()...)
	return rep
}

// runBatches executes one leg's batches in order. A job whose attempt
// ended in a rollback-in-place is re-queued into a fresh batch (re-placed
// against current occupancy when replace is true; retrying its original
// destinations when false, as on the return-home leg where home is home)
// until the per-job attempt budget is spent — a drain or evacuation is
// only correct when every job eventually leaves. dir is the directive the
// leg operates under (rolling drains pass per-node sub-directives); pol
// sequences re-queued batches.
func (e *Executor) runBatches(p *sim.Proc, rep *Report, batches [][]*Migration, dir Directive, leg string, replace bool, pol SeqPolicy) {
	slot := map[*Job]int{} // job → index into rep.Jobs, within this leg
	attempts := map[*Job]int{}
	for bi := 0; bi < len(batches); bi++ {
		batch := batches[bi]
		if e.opts.Replan && replace {
			rep.Replans += e.replanBatch(batches, bi, dir)
		}
		e.events.Record(metrics.EventBatch, "fleet", fmt.Sprintf("batch %d/%d", bi+1, len(batches)),
			fmt.Sprintf("%d concurrent gang migrations", len(batch)))
		wg := sim.NewWaitGroup(e.k)
		outs := make([]JobOutcome, len(batch))
		for mi, mig := range batch {
			mi, mig := mi, mig
			wg.Add(1)
			e.k.Go("fleet/"+mig.Job.Name, func(jp *sim.Proc) {
				defer wg.Done()
				outs[mi] = e.runJob(jp, mig, bi)
			})
		}
		wg.Wait(p)
		var requeue []Assignment
		for _, out := range outs {
			attempts[out.Job]++
			out.Attempts = attempts[out.Job]
			out.Leg = leg
			rep.Downtime += out.Report.Total
			if idx, ok := slot[out.Job]; ok {
				rep.Jobs[idx] = out
			} else {
				slot[out.Job] = len(rep.Jobs)
				rep.Jobs = append(rep.Jobs, out)
			}
			if out.Outcome != ninja.OutcomeRolledBack {
				continue
			}
			if attempts[out.Job] >= e.opts.attemptBudget() {
				e.events.Record(metrics.EventRequeue, "fleet", out.Job.Name,
					fmt.Sprintf("rolled back in place; attempt budget (%d) spent, job stays at the source",
						e.opts.attemptBudget()))
				continue
			}
			if e.opts.Topo == nil {
				continue // nothing to re-price against: keep the old end-the-attempt behavior
			}
			dsts := out.Dsts
			if replace {
				if a, err := PlaceOne(out.Job, e.opts.Topo, dir, e.opts.Placement,
					e.takenSlots(batches, bi+1, nil)); err == nil {
					dsts = a.Dsts
				}
			}
			rep.Requeues++
			e.events.Record(metrics.EventRequeue, "fleet", out.Job.Name,
				fmt.Sprintf("rolled back in place; re-queued (attempt %d/%d) -> %s",
					attempts[out.Job]+1, e.opts.attemptBudget(), nodeNames(dsts)))
			requeue = append(requeue, Assignment{Job: out.Job, Dsts: dsts})
		}
		if len(requeue) > 0 {
			seq := e.opts.Topo.PlanMini(requeue, e.opts.Model, pol)
			for _, b := range seq.Batches {
				// A re-queued success is a fleet-level recovery, not a
				// clean run.
				for _, m := range b {
					m.replanned = true
				}
				batches = append(batches, b)
			}
		}
	}
}

// runRolling drains the source site one node at a time: re-place only the
// jobs touching the drained node against the fleet's current occupancy
// (candidates exclude the node under maintenance), run that mini-plan
// with at most MaxInFlight jobs migrating concurrently, record the drain,
// and proceed to the next node. Rolled-back jobs are re-queued by
// runBatches — a drain only counts as complete when the node is empty.
func (e *Executor) runRolling(p *sim.Proc, rep *Report) {
	dir := e.plan.Dir
	pol := e.plan.SeqPol
	if dir.MaxInFlight > 0 {
		pol.Batched, pol.Cap = true, dir.MaxInFlight
	}
	for _, nd := range dir.Source.Nodes {
		var affected []*Job
		for _, j := range e.fleetJobs() {
			for _, vm := range j.VMs() {
				if vm.Node() == nd {
					affected = append(affected, j)
					break
				}
			}
		}
		if len(affected) == 0 {
			e.events.Record(metrics.EventDrain, "fleet", nd.Name, "already empty; maintained")
			rep.Drains = append(rep.Drains, DrainRecord{Node: nd.Name})
			continue
		}
		sub := dir
		sub.Drain = nd
		asgs, err := PlaceWith(affected, e.opts.Topo, sub, e.opts.Placement, e.takenSlots(nil, 0, nil))
		if err != nil {
			e.events.Record(metrics.EventDrain, "fleet", nd.Name,
				fmt.Sprintf("cannot drain %d job(s): %v", len(affected), err))
			rep.Drains = append(rep.Drains, DrainRecord{
				Node: nd.Name, Jobs: len(affected), Left: vmsOn(affected, nd),
			})
			continue
		}
		seq := e.opts.Topo.PlanMini(asgs, e.opts.Model, pol)
		dr := DrainRecord{Node: nd.Name, Jobs: len(affected), Batches: len(seq.Batches)}
		for _, b := range seq.Batches {
			if len(b) > dr.MaxInFlight {
				dr.MaxInFlight = len(b)
			}
		}
		e.events.Record(metrics.EventDrain, "fleet", nd.Name,
			fmt.Sprintf("draining %d job(s) in %d batch(es)", len(affected), len(seq.Batches)))
		e.runBatches(p, rep, seq.Batches, sub, "drain:"+nd.Name, true, pol)
		dr.Left = vmsOn(affected, nd)
		if dr.Left == 0 {
			e.events.Record(metrics.EventDrain, "fleet", nd.Name, "drained; maintained")
		} else {
			e.events.Record(metrics.EventDrain, "fleet", nd.Name,
				fmt.Sprintf("still hosts %d VM(s) after the drain", dr.Left))
		}
		rep.Drains = append(rep.Drains, dr)
	}
}

// runReturnHome is the second leg of a bidirectional Evacuate: poll the
// faults clock until every source-site node is restored (bounded by
// RestoreTimeout, if set), then migrate every job back to the exact nodes
// it occupied when the directive started.
func (e *Executor) runReturnHome(p *sim.Proc, rep *Report, homes map[*Job][]*hw.Node) {
	dir := e.plan.Dir
	poll := dir.RestorePoll
	if poll <= 0 {
		poll = 5 * sim.Second
	}
	waitStart := p.Now()
	for {
		healthy := true
		for _, n := range dir.Source.Nodes {
			if n.Failed() {
				healthy = false
				break
			}
		}
		if healthy {
			break
		}
		if dir.RestoreTimeout > 0 && p.Now()-waitStart >= dir.RestoreTimeout {
			e.events.Record(metrics.EventReturnHome, "fleet", dir.Source.Name,
				fmt.Sprintf("site not restored within %v; jobs stay evacuated", dir.RestoreTimeout))
			return
		}
		p.Sleep(poll)
	}
	var asgs []Assignment
	for _, j := range e.fleetJobs() {
		home := homes[j]
		if home == nil {
			continue
		}
		away := false
		for i, vm := range j.VMs() {
			if vm.Node() != home[i] {
				away = true
			}
		}
		if away {
			asgs = append(asgs, Assignment{Job: j, Dsts: home})
		}
	}
	e.events.Record(metrics.EventReturnHome, "fleet", dir.Source.Name,
		fmt.Sprintf("site restored after %.1fs; migrating %d job(s) home",
			(p.Now()-waitStart).Seconds(), len(asgs)))
	if len(asgs) == 0 {
		return
	}
	seq := e.opts.Topo.PlanMini(asgs, e.opts.Model, e.plan.SeqPol)
	e.runBatches(p, rep, seq.Batches, dir, "return", false, e.plan.SeqPol)
}

// runJob executes one gang migration. IB-capable jobs re-attach their
// devices wherever the destination has an HCA (AttachAuto); TCP-only jobs
// skip the attach phase outright (AttachNever), so a TCP job landing on
// an IB node does not steal the node's HCA.
func (e *Executor) runJob(p *sim.Proc, mig *Migration, batch int) JobOutcome {
	out := JobOutcome{Job: mig.Job, Dsts: mig.Dsts, Batch: batch, Started: p.Now(), Replanned: mig.replanned}
	switch {
	case e.opts.Mode == ninja.Cold:
		out.Report, out.Err = mig.Job.Orch.ColdMigrate(p, mig.Dsts)
	case e.opts.Mode == ninja.RDMANative && mig.Job.IBCapable:
		// The orchestrator demotes to the hotplug rung per VM (or in
		// preflight) when QP replay cannot proceed.
		out.Report, out.Err = mig.Job.Orch.RDMAMigrate(p, mig.Dsts)
	case mig.Job.IBCapable:
		out.Report, out.Err = mig.Job.Orch.MigratePolicy(p, mig.Dsts, ninja.AttachAuto)
	default:
		out.Report, out.Err = mig.Job.Orch.MigratePolicy(p, mig.Dsts, ninja.AttachNever)
	}
	out.Finished = p.Now()
	out.Outcome = out.Report.Outcome
	if out.Replanned && out.Outcome == ninja.OutcomeClean {
		out.Outcome = ninja.OutcomeRetriedOK
	}
	return out
}

// replanBatch re-places the pending migrations of batches[from] whose
// destinations include a crashed node. The contract is per-batch at
// launch: only the batch about to start is scanned, so a crash striking a
// batch further ahead is not acted on now — it is caught by this same
// check the moment that batch launches, since no batch starts without a
// final look at its destinations. Slots already consumed are excluded
// (see takenSlots), so a replan cannot overload a survivor.
func (e *Executor) replanBatch(batches [][]*Migration, from int, dir Directive) int {
	replans := 0
	for _, mig := range batches[from] {
		broken := false
		for _, n := range mig.Dsts {
			if n.Failed() {
				broken = true
			}
		}
		if !broken {
			continue
		}
		taken := e.takenSlots(batches, from, mig)
		a, err := PlaceOne(mig.Job, e.opts.Topo, dir, e.opts.Placement, taken)
		if err != nil {
			// No capacity left: keep the plan and let the orchestrator's
			// retry/spare machinery fight it out (or roll back in place).
			e.events.Record(metrics.EventReplan, "fleet", mig.Job.Name,
				fmt.Sprintf("destination down but no capacity to replan: %v", err))
			continue
		}
		e.events.Record(metrics.EventReplan, "fleet", mig.Job.Name,
			fmt.Sprintf("destination node down; reassigned %s", nodeNames(a.Dsts)))
		*mig = *e.opts.Topo.MigrationOf(mig.Job, a.Dsts, e.opts.Model)
		mig.replanned = true
		replans++
	}
	return replans
}

// takenSlots counts destination slots unavailable to a replanned or
// re-queued job: every fleet VM's *current* node — a job whose batch
// already ran sits at its destinations (or back at the source after a
// rollback) and is counted exactly once, through the VM — plus the
// planned destinations of still-pending migrations (batches[from:]),
// minus skip's own. Counting planned destinations of already-run batches
// would double-bill landed jobs' nodes and permanently bill rolled-back
// jobs' never-occupied destinations; both overstate occupancy and caused
// spurious ErrNoCapacity replans on multi-slot sites.
func (e *Executor) takenSlots(batches [][]*Migration, from int, skip *Migration) map[*hw.Node]int {
	taken := make(map[*hw.Node]int)
	for _, j := range e.fleetJobs() {
		for _, vm := range j.VMs() {
			taken[vm.Node()]++
		}
	}
	if from < 0 {
		from = 0
	}
	for bi := from; bi < len(batches); bi++ {
		for _, m := range batches[bi] {
			if m == skip {
				continue
			}
			for _, n := range m.Dsts {
				taken[n]++
			}
		}
	}
	return taken
}

// vmsOn counts the jobs' VMs currently hosted on the node.
func vmsOn(jobs []*Job, nd *hw.Node) int {
	n := 0
	for _, j := range jobs {
		for _, vm := range j.VMs() {
			if vm.Node() == nd {
				n++
			}
		}
	}
	return n
}

func nodeNames(ns []*hw.Node) string {
	out := ""
	for i, n := range ns {
		if i > 0 {
			out += ","
		}
		out += n.Name
	}
	return out
}
