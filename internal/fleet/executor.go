package fleet

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/ninja"
	"repro/internal/sim"
)

// Options tune an Executor.
type Options struct {
	// Topo and Placement drive replanning; Replan enables it. A pending
	// migration whose destination node crashed before its batch started
	// is re-placed against the remaining capacity (crashes that strike
	// mid-flight are the orchestrator's business: ninja.RetryPolicy plus
	// the shared spare pool).
	Topo      *Topology
	Placement PlacementPolicy
	Replan    bool
	// Mode selects live or cold (checkpoint/restart) transfer.
	Mode ninja.Mode
	// Model re-prices replanned migrations (zero value → defaults).
	Model CostModel
}

// JobOutcome is one job's result within a fleet directive.
type JobOutcome struct {
	Job  *Job
	Dsts []*hw.Node
	// Batch is the index of the batch the job ran in.
	Batch             int
	Report            ninja.Report
	Err               error
	Started, Finished sim.Time
	// Replanned marks a job whose destinations were reassigned by the
	// fleet before its migration started.
	Replanned bool
	// Outcome is the fleet-level classification: the orchestrator's
	// outcome, upgraded to retried-ok when the only recovery was a
	// fleet-level replan of a clean run.
	Outcome ninja.Outcome
}

// Report summarizes a completed directive.
type Report struct {
	Dir Directive
	// Started/Finished bound the whole directive; Makespan is their
	// difference.
	Started, Finished sim.Time
	Makespan          sim.Time
	// Downtime aggregates trigger-to-resume (ninja Report.Total) over
	// every job — the fleet's total service interruption.
	Downtime sim.Time
	// DeadlineMet is true when the directive had no deadline or finished
	// in time.
	DeadlineMet bool
	// Replans counts fleet-level destination reassignments.
	Replans int
	Jobs    []JobOutcome
	// Events is the fleet-level trail (batch launches, replans, deadline
	// verdict); per-job trails ride in each JobOutcome.Report.
	Events []metrics.Event
}

// Failed returns the outcomes that ended in an error other than a clean
// rollback-in-place (a rolled-back job is still healthy and running).
func (r Report) Failed() []JobOutcome {
	var out []JobOutcome
	for _, jo := range r.Jobs {
		if jo.Err != nil && jo.Report.Outcome != ninja.OutcomeRolledBack {
			out = append(out, jo)
		}
	}
	return out
}

// OutcomeCounts renders "6 clean, 2 retried-ok"-style tallies in a fixed
// outcome order.
func (r Report) OutcomeCounts() string {
	counts := map[ninja.Outcome]int{}
	for _, jo := range r.Jobs {
		counts[jo.Outcome]++
	}
	out := ""
	for _, o := range []ninja.Outcome{ninja.OutcomeClean, ninja.OutcomeRetriedOK,
		ninja.OutcomeDegradedTCP, ninja.OutcomeRolledBack} {
		if counts[o] == 0 {
			continue
		}
		if out != "" {
			out += ", "
		}
		out += fmt.Sprintf("%d %s", counts[o], o)
	}
	if out == "" {
		out = "none"
	}
	return out
}

// Executor runs a fleet plan: batches execute in order, the gang
// migrations inside a batch run concurrently, each under its own
// ninja.Orchestrator on the shared DES kernel.
type Executor struct {
	k      *sim.Kernel
	plan   *Plan
	opts   Options
	events *metrics.EventLog
	begun  bool
}

// NewExecutor builds an executor for the plan.
func NewExecutor(k *sim.Kernel, plan *Plan, opts Options) *Executor {
	return &Executor{k: k, plan: plan, opts: opts, events: metrics.NewEventLog(k.Now)}
}

// Events returns the executor's fleet-level event log.
func (e *Executor) Events() *metrics.EventLog { return e.events }

// Start launches the directive and returns a future resolving to the
// fleet report once every batch has finished.
func (e *Executor) Start() (*sim.Future[Report], error) {
	if e.begun {
		return nil, fmt.Errorf("fleet: executor already started")
	}
	e.begun = true
	fut := sim.NewFuture[Report](e.k)
	e.k.Go("fleet-executor", func(p *sim.Proc) {
		fut.Set(e.run(p))
	})
	return fut, nil
}

func (e *Executor) run(p *sim.Proc) Report {
	rep := Report{Dir: e.plan.Dir, Started: p.Now()}
	batches := e.plan.Seq.Batches
	for bi, batch := range batches {
		if e.opts.Replan {
			rep.Replans += e.replanBatch(batches, bi)
		}
		e.events.Record(metrics.EventBatch, "fleet", fmt.Sprintf("batch %d/%d", bi+1, len(batches)),
			fmt.Sprintf("%d concurrent gang migrations", len(batch)))
		wg := sim.NewWaitGroup(e.k)
		outs := make([]JobOutcome, len(batch))
		for mi, mig := range batch {
			mi, mig := mi, mig
			wg.Add(1)
			e.k.Go("fleet/"+mig.Job.Name, func(jp *sim.Proc) {
				defer wg.Done()
				outs[mi] = e.runJob(jp, mig, bi)
			})
		}
		wg.Wait(p)
		rep.Jobs = append(rep.Jobs, outs...)
	}
	rep.Finished = p.Now()
	rep.Makespan = rep.Finished - rep.Started
	for _, jo := range rep.Jobs {
		rep.Downtime += jo.Report.Total
	}
	rep.DeadlineMet = e.plan.Dir.Deadline == 0 || rep.Finished <= e.plan.Dir.Deadline
	if !rep.DeadlineMet {
		e.events.Record(metrics.EventDeadlineMiss, "fleet", "",
			fmt.Sprintf("finished %.1fs after the deadline", (rep.Finished-e.plan.Dir.Deadline).Seconds()))
	}
	rep.Events = append([]metrics.Event(nil), e.events.Events()...)
	return rep
}

// runJob executes one gang migration. IB-capable jobs re-attach their
// devices wherever the destination has an HCA (AttachAuto); TCP-only jobs
// skip the attach phase outright (AttachNever), so a TCP job landing on
// an IB node does not steal the node's HCA.
func (e *Executor) runJob(p *sim.Proc, mig *Migration, batch int) JobOutcome {
	out := JobOutcome{Job: mig.Job, Dsts: mig.Dsts, Batch: batch, Started: p.Now(), Replanned: mig.replanned}
	switch {
	case e.opts.Mode == ninja.Cold:
		out.Report, out.Err = mig.Job.Orch.ColdMigrate(p, mig.Dsts)
	case mig.Job.IBCapable:
		out.Report, out.Err = mig.Job.Orch.MigratePolicy(p, mig.Dsts, ninja.AttachAuto)
	default:
		out.Report, out.Err = mig.Job.Orch.MigratePolicy(p, mig.Dsts, ninja.AttachNever)
	}
	out.Finished = p.Now()
	out.Outcome = out.Report.Outcome
	if out.Replanned && out.Outcome == ninja.OutcomeClean {
		out.Outcome = ninja.OutcomeRetriedOK
	}
	return out
}

// replanBatch re-places the pending migrations of batches[from:] whose
// destinations include a crashed node. Slots already consumed — every
// fleet VM's current node and every other pending destination — are
// excluded, so a replan cannot overload a survivor.
func (e *Executor) replanBatch(batches [][]*Migration, from int) int {
	replans := 0
	for _, mig := range batches[from] {
		broken := false
		for _, n := range mig.Dsts {
			if n.Failed() {
				broken = true
			}
		}
		if !broken {
			continue
		}
		taken := e.takenSlots(batches, mig)
		a, err := PlaceOne(mig.Job, e.opts.Topo, e.plan.Dir, e.opts.Placement, taken)
		if err != nil {
			// No capacity left: keep the plan and let the orchestrator's
			// retry/spare machinery fight it out (or roll back in place).
			e.events.Record(metrics.EventReplan, "fleet", mig.Job.Name,
				fmt.Sprintf("destination down but no capacity to replan: %v", err))
			continue
		}
		e.events.Record(metrics.EventReplan, "fleet", mig.Job.Name,
			fmt.Sprintf("destination node down; reassigned %s", nodeNames(a.Dsts)))
		*mig = *e.opts.Topo.MigrationOf(mig.Job, a.Dsts, e.opts.Model)
		mig.replanned = true
		replans++
	}
	return replans
}

// takenSlots counts destination slots unavailable to a replanned job:
// nodes currently hosting any fleet VM and every other migration's
// planned destinations.
func (e *Executor) takenSlots(batches [][]*Migration, skip *Migration) map[*hw.Node]int {
	taken := make(map[*hw.Node]int)
	for _, b := range batches {
		for _, m := range b {
			for _, vm := range m.Job.VMs() {
				taken[vm.Node()]++
			}
			if m == skip {
				continue
			}
			for _, n := range m.Dsts {
				taken[n]++
			}
		}
	}
	return taken
}

func nodeNames(ns []*hw.Node) string {
	out := ""
	for i, n := range ns {
		if i > 0 {
			out += ","
		}
		out += n.Name
	}
	return out
}
