// Package fleet is a datacenter-wide migration control plane layered
// above the per-job Ninja orchestrator. Where the paper's cloud scheduler
// (§III-C) hands the orchestrator a single source/destination pair, the
// fleet planner turns a high-level directive — "evacuate site A by
// deadline D", "consolidate onto K nodes" — into per-job gang-migration
// plans for N independent MPI jobs that share finite WAN circuits and NFS
// bandwidth:
//
//  1. a placement solver assigns every job destination nodes, greedy
//     first-fit refined by swap-based local search that scores
//     interconnect affinity (IB-capable jobs prefer IB sites, per the
//     paper's 1024-vs-100 node exclusivity) and node capacity;
//  2. a sequencer batches non-conflicting migrations and orders
//     conflicting ones to minimize the simulated makespan under
//     shared-link contention, with a configurable concurrency cap;
//  3. an executor runs one ninja.Orchestrator per job concurrently on
//     the shared DES kernel, replanning not-yet-started migrations when
//     a destination node crashes mid-directive.
//
// The swap-based destination selection follows Avin et al. ("Simple
// Destination-Swap Strategies for Adaptive Intra- and Inter-Tenant VM
// Migration"); the bandwidth-aware sequencing follows Wang et al.
// ("Virtual Machine Migration Planning in Software-Defined Networks").
package fleet

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/ninja"
	"repro/internal/sim"
	"repro/internal/vmm"
)

// Job is one independently migratable MPI job under fleet control.
type Job struct {
	// Name identifies the job in plans, event trails and reports.
	Name string
	// Orch is the job's Ninja orchestrator (one per job; they share the
	// DES kernel and, via ninja.Options, the spare-node pool).
	Orch *ninja.Orchestrator
	// IBCapable marks a job whose VMs carry VMM-bypass HCAs: it runs at
	// full interconnect speed only on an IB-equipped destination, and the
	// executor re-attaches its devices there (ninja.AttachAuto). Jobs
	// without the flag stay on the tcp BTL (ninja.AttachNever).
	IBCapable bool
}

// VMs returns the job's guest machines, in job VM order.
func (j *Job) VMs() []*vmm.VM { return j.Orch.Job().VMs() }

// DirectiveKind classifies a fleet-wide migration directive.
type DirectiveKind int

const (
	// Evacuate moves every job off the source site (disaster recovery,
	// whole-site maintenance). Candidates are all other sites.
	Evacuate DirectiveKind = iota
	// Consolidate packs every job onto the first MaxNodes healthy nodes
	// of the source site (server consolidation, §II-A).
	Consolidate
	// RollingMaintenance drains the source site one node at a time
	// (hardware maintenance, §II-A): the executor re-places only the jobs
	// touching the node under maintenance, runs that mini-plan under the
	// MaxInFlight cap, marks the node maintained, and proceeds to the
	// next. Candidates are every healthy node except the drained one, so
	// jobs shuffle within the site when it has room and spill to other
	// sites when it does not.
	RollingMaintenance
	// Churn is a continuous-workload directive: jobs arrive and depart on
	// a seeded online schedule instead of being known up front, so there
	// is no batch plan to compute. The churn engine (internal/churn)
	// drives placement and incremental swap migrations itself; the fleet
	// Planner rejects Churn directives — they never reach Place.
	Churn
)

// String returns the directive label.
func (d DirectiveKind) String() string {
	switch d {
	case Evacuate:
		return "evacuate"
	case Consolidate:
		return "consolidate"
	case RollingMaintenance:
		return "rolling-maintenance"
	case Churn:
		return "churn"
	default:
		return fmt.Sprintf("DirectiveKind(%d)", int(d))
	}
}

// Directive is one high-level order to the fleet control plane.
type Directive struct {
	Kind DirectiveKind
	// Source is the site the directive operates on: the site to vacate
	// (Evacuate) or the site to pack within (Consolidate).
	Source *Site
	// Deadline is the absolute simulated time the directive should finish
	// by (0 = none). The report records hit/miss; the planner does not
	// abort late directives.
	Deadline sim.Time
	// MaxNodes bounds the consolidation target ("consolidate to K
	// nodes"); ignored for Evacuate.
	MaxNodes int
	// MaxInFlight bounds the jobs migrating concurrently within one
	// rolling-maintenance mini-plan. 0 is the default: the planner's
	// sequencing policy applies unchanged. Negative values are rejected by
	// Planner.Plan and Executor.Start with an *OptionsError. Ignored for
	// other kinds.
	MaxInFlight int
	// Drain is the node currently under maintenance. The executor sets it
	// per mini-plan while running a RollingMaintenance directive; callers
	// leave it nil.
	Drain *hw.Node
	// ReturnHome (Evacuate only) makes the directive bidirectional: once
	// the site is vacated, the executor waits for every source node to be
	// restored on the faults clock and migrates every job back to the
	// nodes it originally occupied.
	ReturnHome bool
	// RestorePoll is the interval at which the executor re-checks the
	// source site while waiting for restore (default 5 s).
	RestorePoll sim.Time
	// RestoreTimeout bounds the restore wait (0 = wait indefinitely). On
	// expiry the return leg is skipped and the jobs stay evacuated.
	RestoreTimeout sim.Time
}

// Validate rejects directive field values that are always caller bugs.
// The zero value of every tunable selects the documented default.
func (d Directive) Validate() error {
	if d.MaxInFlight < 0 {
		return &OptionsError{
			Field: "Directive.MaxInFlight", Value: d.MaxInFlight,
			Reason: "jobs-in-flight cap must not be negative (0 leaves the sequencing policy unchanged)",
		}
	}
	return nil
}

// Site is one data center (or cluster) the fleet spans.
type Site struct {
	Name  string
	Nodes []*hw.Node
	// WANBandwidth is the site's shared uplink circuit capacity
	// (bytes/sec); every migration entering or leaving the site crosses
	// it. 0 means the site has no modelled WAN constraint.
	WANBandwidth float64
	// SlotsPerNode caps VMs placed per node (default 1, the paper's
	// density — a passthrough HCA cannot be shared between guests).
	SlotsPerNode int
}

func (s *Site) slotsPerNode() int {
	if s.SlotsPerNode < 1 {
		return 1
	}
	return s.SlotsPerNode
}

// uplink is the shared-link identifier of the site's WAN circuit.
func (s *Site) uplink() string { return "wan:" + s.Name }

// Topology is the fleet's placement and bandwidth substrate.
type Topology struct {
	Sites  []*Site
	siteOf map[*hw.Node]*Site
	// NFSBandwidth is the shared storage server's service bandwidth
	// (bytes/sec). When set, cold/checkpoint migrations (CostModel.Cold)
	// are priced as crossing the "nfs:<NFSName>" shared link: every
	// checkpoint is written to and restored from the same server, so
	// concurrent cold migrations contend there even when their sites'
	// WAN circuits are disjoint. 0 keeps the pre-existing behavior —
	// storage sequenced as if it were free.
	NFSBandwidth float64
	// NFSName labels the storage link ("shared" when empty).
	NFSName string
}

// NewTopology builds a topology over the sites (site order is the
// placement preference order for ties).
func NewTopology(sites ...*Site) *Topology {
	t := &Topology{Sites: sites, siteOf: make(map[*hw.Node]*Site)}
	for _, s := range sites {
		for _, n := range s.Nodes {
			t.siteOf[n] = s
		}
	}
	return t
}

// SiteOf returns the site owning the node (nil for foreign nodes).
func (t *Topology) SiteOf(n *hw.Node) *Site { return t.siteOf[n] }

// NFSLink is the shared-link identifier of the storage server — the key
// under which LinkCaps prices it. Exposed for layers (the churn engine)
// that build Migrations by hand instead of through MigrationOf.
func (t *Topology) NFSLink() string { return t.nfsLink() }

// nfsLink is the shared-link identifier of the storage server.
func (t *Topology) nfsLink() string {
	name := t.NFSName
	if name == "" {
		name = "shared"
	}
	return "nfs:" + name
}

// LinkCaps returns the shared-link capacity map the sequencer prices
// contention against: one entry per WAN-constrained site uplink, plus
// the shared NFS server when the topology prices it.
func (t *Topology) LinkCaps() map[string]float64 {
	caps := make(map[string]float64)
	for _, s := range t.Sites {
		if s.WANBandwidth > 0 {
			caps[s.uplink()] = s.WANBandwidth
		}
	}
	if t.NFSBandwidth > 0 {
		caps[t.nfsLink()] = t.NFSBandwidth
	}
	return caps
}

// Plan is a fully sequenced fleet directive, ready for the executor.
// RollingMaintenance plans carry no up-front assignments or sequence:
// each node's mini-plan is placed and sequenced incrementally at drain
// time, against wherever the previous drains left the fleet.
type Plan struct {
	Dir         Directive
	Assignments []Assignment
	Seq         Sequence
	// Jobs is the full job list under the directive — the executor's
	// occupancy ground truth for replanning, re-queueing and rolling
	// drains.
	Jobs []*Job
	// SeqPol is the sequencing policy the plan was built with; the
	// executor reuses it for re-queued batches, drain mini-plans and the
	// return-home leg.
	SeqPol SeqPolicy
}

// Planner turns directives into plans.
type Planner struct {
	Topo *Topology
	// Placement selects greedy first-fit or swap-refined placement.
	Placement PlacementPolicy
	// Seq selects sequential or batched execution.
	Seq SeqPolicy
	// Model prices migrations for the sequencer (zero value → defaults).
	Model CostModel
}

// Plan places every job and sequences the resulting migrations. A
// RollingMaintenance directive returns a shell plan — placement and
// sequencing happen per drained node at execution time, since each
// mini-plan depends on where the previous drains moved the fleet.
func (pl *Planner) Plan(dir Directive, jobs []*Job) (*Plan, error) {
	if err := dir.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Seq.Validate(); err != nil {
		return nil, err
	}
	if dir.Kind == Churn {
		return nil, fmt.Errorf("fleet: churn directives are online — drive them with the churn engine (internal/churn), not the batch planner")
	}
	if dir.Kind == RollingMaintenance {
		if dir.Source == nil {
			return nil, fmt.Errorf("fleet: rolling-maintenance directive without a source site")
		}
		return &Plan{Dir: dir, Jobs: jobs, SeqPol: pl.Seq}, nil
	}
	model := pl.Model.withDefaults()
	asgs, err := Place(jobs, pl.Topo, dir, pl.Placement)
	if err != nil {
		return nil, err
	}
	migs := make([]*Migration, len(asgs))
	for i, a := range asgs {
		migs[i] = pl.Topo.MigrationOf(a.Job, a.Dsts, model)
	}
	return &Plan{
		Dir:         dir,
		Assignments: asgs,
		Seq:         PlanSequence(migs, pl.Topo.LinkCaps(), pl.Seq),
		Jobs:        jobs,
		SeqPol:      pl.Seq,
	}, nil
}
