package fleet

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

// swapRig builds a two-job placement scenario where a destination swap
// strictly improves affinity: jobA (IB-capable, bigGB guest) lands on the
// big Ethernet node first-fit, jobB (TCP-only, 1 GB guest) on the small
// IB node. Swapping raises the score 180 → 1124, but fits in the IB
// node's 6 GB only when bigGB does.
func swapRig(t *testing.T, bigGB float64) (a, b Assignment, tr *tracker, ethNode, ibNode *hw.Node) {
	t.Helper()
	k := sim.NewKernel()
	tb := hw.NewTestbed(k)
	smallIB := hw.AGCNodeSpec
	smallIB.MemoryBytes = 6 * hw.GB
	src := tb.AddCluster("src", 2, ethSpec())
	big := tb.AddCluster("big", 1, ethSpec())
	ib := tb.AddCluster("ib", 1, smallIB)
	jobs := newTestJobs(t, k, tb, src.Nodes, []float64{bigGB, 1}, 1)
	jobs[0].IBCapable = true
	topo := NewTopology(
		&Site{Name: "src", Nodes: src.Nodes},
		&Site{Name: "big", Nodes: big.Nodes},
		&Site{Name: "ib", Nodes: ib.Nodes},
	)
	tr, err := newTracker(topo, Directive{Kind: Evacuate, Source: topo.Sites[0]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a, err = placeFirstFit(jobs[0], tr); err != nil {
		t.Fatal(err)
	}
	if b, err = placeFirstFit(jobs[1], tr); err != nil {
		t.Fatal(err)
	}
	ethNode, ibNode = big.Nodes[0], ib.Nodes[0]
	if a.Dsts[0] != ethNode || b.Dsts[0] != ibNode {
		t.Fatalf("first-fit placed a=%s b=%s, want %s/%s",
			a.Dsts[0].Name, b.Dsts[0].Name, ethNode.Name, ibNode.Name)
	}
	return a, b, tr, ethNode, ibNode
}

// The affinity delta is size-blind; the feasibility re-check is not: a
// swap that would plan a 7 GB guest onto a 6 GB node must be refused with
// the tracker left exactly as found, while the same swap with a fitting
// guest must go through.
func TestTrySwapRespectsMemory(t *testing.T) {
	a, b, tr, ethNode, ibNode := swapRig(t, 7)
	if trySwap(&a, &b, tr) {
		t.Fatal("swap planned a 7 GB guest onto a 6 GB node")
	}
	if a.Dsts[0] != ethNode || b.Dsts[0] != ibNode {
		t.Fatal("refused swap still exchanged the destination lists")
	}
	if tr.planned[ethNode] != 7*hw.GB || tr.planned[ibNode] != 1*hw.GB {
		t.Fatalf("tracker disturbed by refused swap: planned big=%g ib=%g",
			tr.planned[ethNode]/hw.GB, tr.planned[ibNode]/hw.GB)
	}
	if tr.free[ethNode] != 0 || tr.free[ibNode] != 0 {
		t.Fatalf("tracker slots disturbed by refused swap: free big=%d ib=%d",
			tr.free[ethNode], tr.free[ibNode])
	}

	a, b, tr, ethNode, ibNode = swapRig(t, 4)
	if !trySwap(&a, &b, tr) {
		t.Fatal("feasible affinity-improving swap refused")
	}
	if a.Dsts[0] != ibNode || b.Dsts[0] != ethNode {
		t.Fatal("accepted swap did not exchange the destination lists")
	}
	if tr.planned[ibNode] != 4*hw.GB || tr.planned[ethNode] != 1*hw.GB {
		t.Fatalf("tracker claims not moved by accepted swap: planned ib=%g big=%g",
			tr.planned[ibNode]/hw.GB, tr.planned[ethNode]/hw.GB)
	}
}

// PlaceSwap over the same rig must honour the guard end to end: the
// refined plan never oversubscribes a node's memory.
func TestPlaceSwapNeverOversubscribes(t *testing.T) {
	k := sim.NewKernel()
	tb := hw.NewTestbed(k)
	smallIB := hw.AGCNodeSpec
	smallIB.MemoryBytes = 6 * hw.GB
	src := tb.AddCluster("src", 2, ethSpec())
	big := tb.AddCluster("big", 1, ethSpec())
	ib := tb.AddCluster("ib", 1, smallIB)
	jobs := newTestJobs(t, k, tb, src.Nodes, []float64{7, 1}, 1)
	jobs[0].IBCapable = true
	topo := NewTopology(
		&Site{Name: "src", Nodes: src.Nodes},
		&Site{Name: "big", Nodes: big.Nodes},
		&Site{Name: "ib", Nodes: ib.Nodes},
	)
	asgs, err := Place(jobs, topo, Directive{Kind: Evacuate, Source: topo.Sites[0]}, PlaceSwap)
	if err != nil {
		t.Fatal(err)
	}
	planned := map[*hw.Node]float64{}
	for _, a := range asgs {
		vms := a.Job.VMs()
		for i, n := range a.Dsts {
			planned[n] += vms[i].Memory().TotalBytes()
		}
	}
	for n, bytes := range planned {
		if n.MemoryUsed()+bytes > n.MemoryBytes {
			t.Fatalf("node %s oversubscribed: %g GB planned onto %g GB",
				n.Name, bytes/hw.GB, n.MemoryBytes/hw.GB)
		}
	}
}
