package fleet

import "sort"

// Time-expanded max-flow sequencing (Wang et al., arXiv:1412.4980 §III).
//
// Each planning round builds a flow network over the shared links: a
// super-source fans out to one node per candidate migration (capped at
// the gang's aggregate sender rate), each migration chains through the
// split in/out nodes of every capped link it crosses (the in→out edge
// carries the link's true capacity, shared by all crossers), and the last
// link drains into a super-sink. The max flow of that network is the
// aggregate transfer rate the fabric can sustain for the candidate set,
// so a round admits migrations — in the deterministic LPT seed order —
// while each one still raises the max flow, i.e. while the set's
// aggregate transferable bytes per unit time keeps growing.
//
// Two deliberate deviations from a literal reading of the formulation:
//
//   - Bottleneck riding: once a link is saturated by the round's max-min
//     allocation, a further migration crossing it adds zero max-flow gain
//     — but on a work-conserving fabric it also adds zero aggregate
//     transfer time (the link moves the same total bytes either way),
//     while joining the round amortizes the migration's fixed overheads
//     (coordination, hotplug, link-up) into the round it would otherwise
//     pay again later. Such migrations are admitted.
//   - The single-commodity network can overestimate the multi-commodity
//     optimum when migrations traverse different link subsets (flow may
//     "shortcut" between chains sharing a link). The network therefore
//     decides admission only; rates and durations always come from the
//     progressive-filling allocator (batchRates), which matches the
//     fabric.
//
// Portfolio guard: the planner prices the LPT plan for the same
// cap/policy and returns it when it predicts a strictly smaller makespan,
// so SeqMaxFlow is never worse than SeqLPT under the planner's own cost
// model.

// planMaxFlow orders migrations into max-flow-admitted rounds.
func planMaxFlow(migs []*Migration, caps map[string]float64, pol SeqPolicy) Sequence {
	order := append([]*Migration(nil), migs...)
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := order[i].soloTime(caps), order[j].soloTime(caps)
		if di != dj {
			return di > dj
		}
		return order[i].Job.Name < order[j].Job.Name
	})
	var batches [][]*Migration
	remaining := order
	for len(remaining) > 0 {
		var round []*Migration
		var skipped []*Migration
		base := 0.0
		for _, m := range remaining {
			if pol.Cap > 0 && len(round) >= pol.Cap {
				skipped = append(skipped, m)
				continue
			}
			cand := append(append([]*Migration(nil), round...), m)
			f := roundFlow(cand, caps)
			switch {
			case f > base+gainEps(base):
				round, base = cand, f
			case len(round) > 0 && ridesBottleneck(m, round, caps):
				round, base = cand, f
			default:
				skipped = append(skipped, m)
			}
		}
		if len(round) == 0 {
			// Nothing gained flow (e.g. zero-rate migrations): make
			// progress by taking the seed-order head alone.
			round, skipped = skipped[:1], skipped[1:]
		}
		batches = append(batches, round)
		remaining = skipped
	}
	seq := priceSequence(batches, caps)
	alt := priceSequence(planLPT(migs, caps, SeqPolicy{Batched: true, Cap: pol.Cap}), caps)
	if alt.Predicted < seq.Predicted {
		return alt
	}
	return seq
}

// priceSequence fills PerBatch/Predicted for a fixed batch layout.
func priceSequence(batches [][]*Migration, caps map[string]float64) Sequence {
	seq := Sequence{Batches: batches}
	for _, b := range batches {
		d := batchTime(b, caps)
		seq.PerBatch = append(seq.PerBatch, d)
		seq.Predicted += d
	}
	return seq
}

// gainEps is the admission threshold: a candidate must raise the round's
// max flow by more than float noise to count as new capacity.
func gainEps(base float64) float64 { return 1e-6 * (base + 1) }

// ridesBottleneck reports whether m crosses a capped link the round's
// max-min allocation already saturates — the condition under which
// joining the round costs no aggregate link time but amortizes m's fixed
// overheads.
func ridesBottleneck(m *Migration, round []*Migration, caps map[string]float64) bool {
	rates := batchRates(round, caps)
	used := map[string]float64{}
	for i, r := range round {
		for _, l := range r.Links {
			if _, ok := caps[l]; ok {
				used[l] += rates[i]
			}
		}
	}
	for _, l := range m.Links {
		if c, ok := caps[l]; ok && used[l] >= c*(1-1e-9) {
			return true
		}
	}
	return false
}

// roundFlow returns the max flow (aggregate sustainable transfer rate,
// bytes/sec) of the time-expanded network for one candidate round.
func roundFlow(batch []*Migration, caps map[string]float64) float64 {
	// Collect the capped links the batch crosses, in sorted order so node
	// and edge construction is deterministic.
	seen := map[string]bool{}
	var links []string
	for _, m := range batch {
		for _, l := range m.Links {
			if _, ok := caps[l]; ok && !seen[l] {
				seen[l] = true
				links = append(links, l)
			}
		}
	}
	sort.Strings(links)
	// Node ids: 0 = source, 1 = sink, then per-link in/out pairs, then
	// one node per migration.
	n := 2 + 2*len(links) + len(batch)
	net := newFlowNet(n)
	lin := map[string]int{}
	lout := map[string]int{}
	for i, l := range links {
		lin[l], lout[l] = 2+2*i, 2+2*i+1
		net.addEdge(lin[l], lout[l], caps[l])
	}
	for i, m := range batch {
		mid := 2 + 2*len(links) + i
		net.addEdge(0, mid, m.MaxRate)
		prev := mid
		for _, l := range m.Links {
			if _, ok := caps[l]; !ok {
				continue
			}
			net.addEdge(prev, lin[l], m.MaxRate)
			prev = lout[l]
		}
		net.addEdge(prev, 1, m.MaxRate)
	}
	return net.maxFlow(0, 1)
}

// flowNet is a Dinic max-flow solver over float64 capacities. Edge and
// node ordering is fully determined by construction order, so identical
// inputs yield identical flows bit-for-bit.
type flowNet struct {
	adj   [][]flowEdge
	level []int
	iter  []int
	eps   float64
}

type flowEdge struct {
	to, rev int
	cap     float64
}

func newFlowNet(n int) *flowNet {
	return &flowNet{adj: make([][]flowEdge, n), level: make([]int, n), iter: make([]int, n)}
}

func (g *flowNet) addEdge(u, v int, c float64) {
	if c > g.eps {
		// Residual slack below ~1e-9 of the largest capacity is float
		// noise, not real headroom.
		g.eps = c
	}
	g.adj[u] = append(g.adj[u], flowEdge{to: v, rev: len(g.adj[v]), cap: c})
	g.adj[v] = append(g.adj[v], flowEdge{to: u, rev: len(g.adj[u]) - 1, cap: 0})
}

func (g *flowNet) maxFlow(s, t int) float64 {
	eps := g.eps * 1e-9
	if eps == 0 {
		return 0
	}
	var total float64
	for g.bfs(s, t, eps) {
		for i := range g.iter {
			g.iter[i] = 0
		}
		for {
			f := g.dfs(s, t, g.eps*float64(len(g.adj)), eps)
			if f <= eps {
				break
			}
			total += f
		}
	}
	return total
}

func (g *flowNet) bfs(s, t int, eps float64) bool {
	for i := range g.level {
		g.level[i] = -1
	}
	g.level[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[u] {
			if e.cap > eps && g.level[e.to] < 0 {
				g.level[e.to] = g.level[u] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return g.level[t] >= 0
}

func (g *flowNet) dfs(u, t int, f, eps float64) float64 {
	if u == t {
		return f
	}
	for ; g.iter[u] < len(g.adj[u]); g.iter[u]++ {
		e := &g.adj[u][g.iter[u]]
		if e.cap <= eps || g.level[e.to] != g.level[u]+1 {
			continue
		}
		d := f
		if e.cap < d {
			d = e.cap
		}
		if d = g.dfs(e.to, t, d, eps); d > eps {
			e.cap -= d
			g.adj[e.to][e.rev].cap += d
			return d
		}
	}
	return 0
}
