package fleet

import (
	"fmt"
	"sort"

	"repro/internal/hw"
	"repro/internal/sim"
)

// CostModel prices one gang migration for the sequencer. These are
// planning estimates — the executor measures reality; the estimates only
// have to rank schedules correctly. Defaults follow the calibrated VMM
// model (EXPERIMENTS.md): cross-node hotplug ≈12 s under migration noise,
// IB link-up ≈30 s, the single-core QEMU sender ≈0.1625 GB/s per VM.
type CostModel struct {
	// Coordination is the quiesce estimate per migration.
	Coordination sim.Time
	// Hotplug is the detach+attach fan-out estimate (IB-capable jobs).
	Hotplug sim.Time
	// IBLinkup is the port-training estimate when the destination
	// re-attaches an HCA.
	IBLinkup sim.Time
	// PerVMWireRate caps a single VM's migration stream (bytes/sec).
	PerVMWireRate float64
	// Cold marks checkpoint/restart pricing: the payload streams through
	// the shared storage server (checkpoint written at the source,
	// restored at the destination), so the topology's NFS link — when
	// Topology.NFSBandwidth prices one — joins every migration's
	// shared-link set. Live migrations stream VM-to-VM and never touch
	// it. Executor.Start sets this automatically when Options.Mode is
	// ninja.Cold.
	Cold bool
}

// DefaultCostModel returns the calibrated planning estimates.
func DefaultCostModel() CostModel {
	return CostModel{
		Coordination:  1 * sim.Second,
		Hotplug:       12 * sim.Second,
		IBLinkup:      30 * sim.Second,
		PerVMWireRate: 0.1625e9,
	}
}

// WithDefaults fills zero fields with the calibrated defaults — for
// layers (the churn engine) that price abstract migrations themselves.
func (m CostModel) WithDefaults() CostModel { return m.withDefaults() }

func (m CostModel) withDefaults() CostModel {
	d := DefaultCostModel()
	if m.Coordination <= 0 {
		m.Coordination = d.Coordination
	}
	if m.Hotplug <= 0 {
		m.Hotplug = d.Hotplug
	}
	if m.IBLinkup <= 0 {
		m.IBLinkup = d.IBLinkup
	}
	if m.PerVMWireRate <= 0 {
		m.PerVMWireRate = d.PerVMWireRate
	}
	return m
}

// Migration is one job's priced move: payload, fixed overheads, and the
// shared links it crosses.
type Migration struct {
	Job  *Job
	Dsts []*hw.Node
	// Bytes is the estimated wire payload across all VMs (touched guest
	// memory; compression makes the real transfer smaller, uniformly).
	Bytes float64
	// Fixed is the bandwidth-independent overhead estimate: coordination
	// plus, for IB-capable jobs, hotplug and (on IB destinations)
	// link-up.
	Fixed sim.Time
	// MaxRate caps the gang's aggregate wire rate (one single-core
	// sender per VM).
	MaxRate float64
	// Links names the shared WAN circuits the gang crosses (source and
	// destination site uplinks, deduplicated).
	Links []string
	// replanned marks a migration whose destinations the executor
	// reassigned after the original plan was laid down.
	replanned bool
}

// MigrationOf prices moving the job to dsts under the cost model.
func (t *Topology) MigrationOf(j *Job, dsts []*hw.Node, m CostModel) *Migration {
	m = m.withDefaults()
	mig := &Migration{Job: j, Dsts: dsts, Fixed: m.Coordination}
	links := map[string]bool{}
	vms := j.VMs()
	dstIB := false
	for i, vm := range vms {
		mig.Bytes += vm.Memory().TouchedBytes()
		mig.MaxRate += m.PerVMWireRate
		src, dst := t.SiteOf(vm.Node()), t.SiteOf(dsts[i])
		if src != dst {
			for _, s := range []*Site{src, dst} {
				if s != nil && s.WANBandwidth > 0 {
					links[s.uplink()] = true
				}
			}
		}
		if dsts[i].HasInfiniBand() {
			dstIB = true
		}
	}
	if j.IBCapable {
		mig.Fixed += m.Hotplug
		if dstIB {
			mig.Fixed += m.IBLinkup
		}
	}
	if m.Cold && t.NFSBandwidth > 0 {
		// Checkpoint/restart rides the shared store regardless of which
		// sites the gang crosses — even an intra-site cold migration
		// contends on the NFS server.
		links[t.nfsLink()] = true
	}
	for l := range links {
		mig.Links = append(mig.Links, l)
	}
	sort.Strings(mig.Links)
	return mig
}

// soloTime is the migration's duration with no contention.
func (mig *Migration) soloTime(caps map[string]float64) sim.Time {
	rate := mig.MaxRate
	for _, l := range mig.Links {
		if c, ok := caps[l]; ok && c < rate {
			rate = c
		}
	}
	if rate <= 0 || mig.Bytes <= 0 {
		return mig.Fixed
	}
	return mig.Fixed + sim.FromSeconds(mig.Bytes/rate)
}

// SeqPolicy selects how migrations are ordered and overlapped.
type SeqPolicy struct {
	// Batched enables concurrent gang execution; false runs migrations
	// strictly one at a time, in plan order.
	Batched bool
	// Cap bounds concurrent migrations per batch (0 = unlimited). The
	// paper's runtime refuses concurrent checkpoints per job, so the cap
	// is across jobs, not within one.
	Cap int
}

// String returns the policy label.
func (p SeqPolicy) String() string {
	if !p.Batched {
		return "sequential"
	}
	if p.Cap > 0 {
		return fmt.Sprintf("batched(cap=%d)", p.Cap)
	}
	return "batched"
}

// Sequence is an ordered set of migration batches: batches execute one
// after another, members of a batch execute concurrently.
type Sequence struct {
	Batches [][]*Migration
	// PerBatch is each batch's predicted duration under shared-link
	// contention; Predicted is their sum (the predicted makespan).
	PerBatch  []sim.Time
	Predicted sim.Time
}

// batchTime predicts one batch's duration: each shared link's capacity
// splits equally among the batch members crossing it, each migration runs
// at the minimum of its own aggregate sender rate and its worst link
// share, and the batch lasts as long as its slowest member. (A static
// fair-share estimate — the fabric's max-min allocator is the ground
// truth; this only has to rank schedules.)
func batchTime(batch []*Migration, caps map[string]float64) sim.Time {
	crossing := map[string]int{}
	for _, m := range batch {
		for _, l := range m.Links {
			crossing[l]++
		}
	}
	var worst sim.Time
	for _, m := range batch {
		rate := m.MaxRate
		for _, l := range m.Links {
			if c, ok := caps[l]; ok {
				if share := c / float64(crossing[l]); share < rate {
					rate = share
				}
			}
		}
		d := m.Fixed
		if rate > 0 && m.Bytes > 0 {
			d += sim.FromSeconds(m.Bytes / rate)
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// PlanSequence orders the migrations under the policy.
//
// Sequential: one migration per batch, in input order.
//
// Batched: longest-processing-time-first list scheduling — migrations are
// sorted by contention-free duration (descending, ties by job name so the
// plan is deterministic), then each is appended to whichever existing
// batch yields the smallest predicted makespan, or to a new batch when
// that is cheaper or every batch is at the concurrency cap. Migrations
// that share no links land in the same batch (they do not stretch it);
// conflicting migrations spread across batches once splitting a circuit
// costs more than waiting.
func PlanSequence(migs []*Migration, caps map[string]float64, pol SeqPolicy) Sequence {
	var seq Sequence
	if len(migs) == 0 {
		return seq
	}
	if !pol.Batched {
		for _, m := range migs {
			seq.Batches = append(seq.Batches, []*Migration{m})
		}
	} else {
		order := append([]*Migration(nil), migs...)
		sort.SliceStable(order, func(i, j int) bool {
			di, dj := order[i].soloTime(caps), order[j].soloTime(caps)
			if di != dj {
				return di > dj
			}
			return order[i].Job.Name < order[j].Job.Name
		})
		for _, m := range order {
			best, bestTotal := -1, sim.Time(0)
			for bi, b := range seq.Batches {
				if pol.Cap > 0 && len(b) >= pol.Cap {
					continue
				}
				total := predict(seq.Batches, caps, bi, m)
				if best == -1 || total < bestTotal {
					best, bestTotal = bi, total
				}
			}
			newTotal := predict(seq.Batches, caps, -1, m)
			if best == -1 || newTotal < bestTotal {
				seq.Batches = append(seq.Batches, []*Migration{m})
			} else {
				seq.Batches[best] = append(seq.Batches[best], m)
			}
		}
	}
	for _, b := range seq.Batches {
		d := batchTime(b, caps)
		seq.PerBatch = append(seq.PerBatch, d)
		seq.Predicted += d
	}
	return seq
}

// predict returns the makespan with m added to batch into (-1 = a new
// batch).
func predict(batches [][]*Migration, caps map[string]float64, into int, m *Migration) sim.Time {
	var total sim.Time
	for bi, b := range batches {
		if bi == into {
			b = append(append([]*Migration(nil), b...), m)
		}
		total += batchTime(b, caps)
	}
	if into == -1 {
		total += batchTime([]*Migration{m}, caps)
	}
	return total
}

// PlanMini prices and sequences an incremental mini-plan over
// already-placed assignments — the executor's building block for rolling
// drains, re-queued batches and the return-home leg, where placement
// happens against the fleet's *current* occupancy rather than up front.
func (t *Topology) PlanMini(asgs []Assignment, m CostModel, pol SeqPolicy) Sequence {
	migs := make([]*Migration, len(asgs))
	for i, a := range asgs {
		migs[i] = t.MigrationOf(a.Job, a.Dsts, m)
	}
	return PlanSequence(migs, t.LinkCaps(), pol)
}

// Migrations returns the sequence's migrations in execution order.
func (s Sequence) Migrations() []*Migration {
	var out []*Migration
	for _, b := range s.Batches {
		out = append(out, b...)
	}
	return out
}
