package fleet

import (
	"fmt"
	"sort"

	"repro/internal/hw"
	"repro/internal/sim"
)

// CostModel prices one gang migration for the sequencer. These are
// planning estimates — the executor measures reality; the estimates only
// have to rank schedules correctly. Defaults follow the calibrated VMM
// model (EXPERIMENTS.md): cross-node hotplug ≈12 s under migration noise,
// IB link-up ≈30 s, the single-core QEMU sender ≈0.1625 GB/s per VM.
type CostModel struct {
	// Coordination is the quiesce estimate per migration.
	Coordination sim.Time
	// Hotplug is the detach+attach fan-out estimate (IB-capable jobs).
	Hotplug sim.Time
	// IBLinkup is the port-training estimate when the destination
	// re-attaches an HCA.
	IBLinkup sim.Time
	// PerVMWireRate caps a single VM's migration stream (bytes/sec).
	PerVMWireRate float64
	// Cold marks checkpoint/restart pricing: the payload streams through
	// the shared storage server (checkpoint written at the source,
	// restored at the destination), so the topology's NFS link — when
	// Topology.NFSBandwidth prices one — joins every migration's
	// shared-link set. Live migrations stream VM-to-VM and never touch
	// it. Executor.Start sets this automatically when Options.Mode is
	// ninja.Cold.
	Cold bool
	// RDMANative marks QP checkpoint/replay pricing: passthrough devices
	// stay attached across the move, so IB-capable jobs pay neither the
	// hotplug fan-out nor the ≈30 s link-training term — the bounded QP
	// resync is sub-second and disappears into the coordination estimate.
	// Executor.Start sets this automatically when Options.Mode is
	// ninja.RDMANative.
	RDMANative bool
}

// DefaultCostModel returns the calibrated planning estimates.
func DefaultCostModel() CostModel {
	return CostModel{
		Coordination:  1 * sim.Second,
		Hotplug:       12 * sim.Second,
		IBLinkup:      30 * sim.Second,
		PerVMWireRate: 0.1625e9,
	}
}

// WithDefaults fills zero fields with the calibrated defaults — for
// layers (the churn engine) that price abstract migrations themselves.
func (m CostModel) WithDefaults() CostModel { return m.withDefaults() }

func (m CostModel) withDefaults() CostModel {
	d := DefaultCostModel()
	if m.Coordination <= 0 {
		m.Coordination = d.Coordination
	}
	if m.Hotplug <= 0 {
		m.Hotplug = d.Hotplug
	}
	if m.IBLinkup <= 0 {
		m.IBLinkup = d.IBLinkup
	}
	if m.PerVMWireRate <= 0 {
		m.PerVMWireRate = d.PerVMWireRate
	}
	return m
}

// Migration is one job's priced move: payload, fixed overheads, and the
// shared links it crosses.
type Migration struct {
	Job  *Job
	Dsts []*hw.Node
	// Bytes is the estimated wire payload across all VMs (touched guest
	// memory; compression makes the real transfer smaller, uniformly).
	Bytes float64
	// Fixed is the bandwidth-independent overhead estimate: coordination
	// plus, for IB-capable jobs, hotplug and (on IB destinations)
	// link-up.
	Fixed sim.Time
	// MaxRate caps the gang's aggregate wire rate (one single-core
	// sender per VM).
	MaxRate float64
	// Links names the shared WAN circuits the gang crosses (source and
	// destination site uplinks, deduplicated).
	Links []string
	// replanned marks a migration whose destinations the executor
	// reassigned after the original plan was laid down.
	replanned bool
}

// MigrationOf prices moving the job to dsts under the cost model.
func (t *Topology) MigrationOf(j *Job, dsts []*hw.Node, m CostModel) *Migration {
	m = m.withDefaults()
	mig := &Migration{Job: j, Dsts: dsts, Fixed: m.Coordination}
	links := map[string]bool{}
	vms := j.VMs()
	dstIB := false
	for i, vm := range vms {
		mig.Bytes += vm.Memory().TouchedBytes()
		mig.MaxRate += m.PerVMWireRate
		src, dst := t.SiteOf(vm.Node()), t.SiteOf(dsts[i])
		if src != dst {
			for _, s := range []*Site{src, dst} {
				if s != nil && s.WANBandwidth > 0 {
					links[s.uplink()] = true
				}
			}
		}
		if dsts[i].HasInfiniBand() {
			dstIB = true
		}
	}
	if j.IBCapable && !m.RDMANative {
		mig.Fixed += m.Hotplug
		if dstIB {
			mig.Fixed += m.IBLinkup
		}
	}
	if m.Cold && t.NFSBandwidth > 0 {
		// Checkpoint/restart rides the shared store regardless of which
		// sites the gang crosses — even an intra-site cold migration
		// contends on the NFS server.
		links[t.nfsLink()] = true
	}
	for l := range links {
		mig.Links = append(mig.Links, l)
	}
	sort.Strings(mig.Links)
	return mig
}

// soloTime is the migration's duration with no contention.
func (mig *Migration) soloTime(caps map[string]float64) sim.Time {
	rate := mig.MaxRate
	for _, l := range mig.Links {
		if c, ok := caps[l]; ok && c < rate {
			rate = c
		}
	}
	if rate <= 0 || mig.Bytes <= 0 {
		return mig.Fixed
	}
	return mig.Fixed + sim.FromSeconds(mig.Bytes/rate)
}

// Sequencing modes for SeqPolicy.Mode.
const (
	// SeqLPT is longest-processing-time-first list scheduling (the
	// default; the zero value selects it).
	SeqLPT = "lpt"
	// SeqMaxFlow is the time-expanded-network / max-flow-per-round
	// ordering (Wang et al., arXiv:1412.4980 §III): each round admits the
	// migration subset maximizing aggregate transferable bytes under the
	// true link capacities. Implies batched execution.
	SeqMaxFlow = "maxflow"
)

// SeqPolicy selects how migrations are ordered and overlapped.
type SeqPolicy struct {
	// Batched enables concurrent gang execution; false runs migrations
	// strictly one at a time, in plan order.
	Batched bool
	// Cap bounds concurrent migrations per batch (0 = unlimited). The
	// paper's runtime refuses concurrent checkpoints per job, so the cap
	// is across jobs, not within one.
	Cap int
	// Mode selects the batching algorithm: "" or SeqLPT for LPT list
	// scheduling, SeqMaxFlow for max-flow-per-round admission over the
	// time-expanded link network. SeqMaxFlow implies Batched.
	Mode string
}

// Validate rejects unknown sequencing modes.
func (p SeqPolicy) Validate() error {
	switch p.Mode {
	case "", SeqLPT, SeqMaxFlow:
		return nil
	default:
		return fmt.Errorf("fleet: unknown SeqPolicy.Mode %q (want %q or %q)", p.Mode, SeqLPT, SeqMaxFlow)
	}
}

// String returns the policy label.
func (p SeqPolicy) String() string {
	if p.Mode == SeqMaxFlow {
		if p.Cap > 0 {
			return fmt.Sprintf("maxflow(cap=%d)", p.Cap)
		}
		return "maxflow"
	}
	if !p.Batched {
		return "sequential"
	}
	if p.Cap > 0 {
		return fmt.Sprintf("batched(cap=%d)", p.Cap)
	}
	return "batched"
}

// Sequence is an ordered set of migration batches: batches execute one
// after another, members of a batch execute concurrently.
type Sequence struct {
	Batches [][]*Migration
	// PerBatch is each batch's predicted duration under shared-link
	// contention; Predicted is their sum (the predicted makespan).
	PerBatch  []sim.Time
	Predicted sim.Time
}

// batchRates computes the max-min fair rate allocation for one batch by
// progressive filling ("water-filling"), mirroring the fabric's PS
// allocator: each pass gives every unfrozen migration its candidate rate
// — the minimum of its own aggregate sender rate and its worst remaining
// link share — then freezes everyone at the global minimum candidate,
// returns their bandwidth claims to the links, and repeats. Capacity left
// behind by migrations bottlenecked elsewhere (a tighter link, or their
// own sender cap) is redistributed to the survivors instead of stranded.
// Deterministic: at least one migration freezes per pass, and ties freeze
// together.
func batchRates(batch []*Migration, caps map[string]float64) []float64 {
	rates := make([]float64, len(batch))
	remaining := map[string]float64{}
	crossing := map[string]int{}
	for _, m := range batch {
		for _, l := range m.Links {
			if c, ok := caps[l]; ok {
				remaining[l] = c
				crossing[l]++
			}
		}
	}
	frozen := make([]bool, len(batch))
	for active := len(batch); active > 0; {
		minRate := -1.0
		for i, m := range batch {
			if frozen[i] {
				continue
			}
			r := m.MaxRate
			for _, l := range m.Links {
				if _, ok := remaining[l]; !ok {
					continue
				}
				if share := remaining[l] / float64(crossing[l]); share < r {
					r = share
				}
			}
			rates[i] = r
			if minRate < 0 || r < minRate {
				minRate = r
			}
		}
		for i, m := range batch {
			if frozen[i] || rates[i] > minRate {
				continue
			}
			frozen[i] = true
			active--
			for _, l := range m.Links {
				if _, ok := remaining[l]; !ok {
					continue
				}
				remaining[l] -= rates[i]
				if remaining[l] < 0 {
					remaining[l] = 0
				}
				crossing[l]--
			}
		}
	}
	return rates
}

// batchTime predicts one batch's duration: shared-link capacity is
// divided max-min fairly among the crossers (batchRates), and the batch
// lasts as long as its slowest member. (A static estimate — the fabric's
// max-min allocator is the ground truth; this only has to rank
// schedules.)
func batchTime(batch []*Migration, caps map[string]float64) sim.Time {
	rates := batchRates(batch, caps)
	var worst sim.Time
	for i, m := range batch {
		d := m.Fixed
		if rates[i] > 0 && m.Bytes > 0 {
			d += sim.FromSeconds(m.Bytes / rates[i])
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// PlanSequence orders the migrations under the policy.
//
// Sequential: one migration per batch, in input order.
//
// Batched (Mode "" / SeqLPT): longest-processing-time-first list
// scheduling — migrations are sorted by contention-free duration
// (descending, ties by job name so the plan is deterministic), then each
// is appended to whichever existing batch yields the smallest predicted
// makespan, or to a new batch when that is cheaper or every batch is at
// the concurrency cap. Migrations that share no links land in the same
// batch (they do not stretch it); conflicting migrations spread across
// batches once splitting a circuit costs more than waiting. Per-batch
// durations are memoized across inserts: pricing a candidate placement
// re-prices only the touched batch, not every batch in the plan.
//
// Mode SeqMaxFlow dispatches to the time-expanded max-flow-per-round
// planner (maxflow.go); it implies batched execution regardless of
// Batched.
func PlanSequence(migs []*Migration, caps map[string]float64, pol SeqPolicy) Sequence {
	if len(migs) == 0 {
		return Sequence{}
	}
	if pol.Mode == SeqMaxFlow {
		return planMaxFlow(migs, caps, pol)
	}
	var seq Sequence
	if !pol.Batched {
		for _, m := range migs {
			seq.Batches = append(seq.Batches, []*Migration{m})
		}
	} else {
		seq.Batches = planLPT(migs, caps, pol)
	}
	for _, b := range seq.Batches {
		d := batchTime(b, caps)
		seq.PerBatch = append(seq.PerBatch, d)
		seq.Predicted += d
	}
	return seq
}

// planLPT is the batched LPT insertion loop. durs memoizes each batch's
// current duration and total their sum, so pricing "insert m into batch
// bi" costs one batchTime call (total - durs[bi] + new duration) instead
// of re-pricing every untouched batch.
func planLPT(migs []*Migration, caps map[string]float64, pol SeqPolicy) [][]*Migration {
	order := append([]*Migration(nil), migs...)
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := order[i].soloTime(caps), order[j].soloTime(caps)
		if di != dj {
			return di > dj
		}
		return order[i].Job.Name < order[j].Job.Name
	})
	var batches [][]*Migration
	var durs []sim.Time
	var total sim.Time
	scratch := make([]*Migration, 0, len(order))
	for _, m := range order {
		best, bestTotal, bestDur := -1, sim.Time(0), sim.Time(0)
		for bi, b := range batches {
			if pol.Cap > 0 && len(b) >= pol.Cap {
				continue
			}
			d := batchTime(append(append(scratch[:0], b...), m), caps)
			if t := total - durs[bi] + d; best == -1 || t < bestTotal {
				best, bestTotal, bestDur = bi, t, d
			}
		}
		newDur := batchTime([]*Migration{m}, caps)
		if best == -1 || total+newDur < bestTotal {
			batches = append(batches, []*Migration{m})
			durs = append(durs, newDur)
			total += newDur
		} else {
			batches[best] = append(batches[best], m)
			durs[best] = bestDur
			total = bestTotal
		}
	}
	return batches
}

// PlanMini prices and sequences an incremental mini-plan over
// already-placed assignments — the executor's building block for rolling
// drains, re-queued batches and the return-home leg, where placement
// happens against the fleet's *current* occupancy rather than up front.
func (t *Topology) PlanMini(asgs []Assignment, m CostModel, pol SeqPolicy) Sequence {
	migs := make([]*Migration, len(asgs))
	for i, a := range asgs {
		migs[i] = t.MigrationOf(a.Job, a.Dsts, m)
	}
	return PlanSequence(migs, t.LinkCaps(), pol)
}

// Migrations returns the sequence's migrations in execution order.
func (s Sequence) Migrations() []*Migration {
	var out []*Migration
	for _, b := range s.Batches {
		out = append(out, b...)
	}
	return out
}
