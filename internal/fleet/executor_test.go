package fleet

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/ninja"
	"repro/internal/sim"
	"repro/internal/vmm"
)

// newTestJobs boots one TCP-only fleet job per guests[] entry (that many
// GB of guest RAM each), vmsPerJob VMs per job laid out one per srcNodes
// slot in job-major order, and launches a long-running iterating app per
// job so late migrations still find ranks to quiesce. TCP-only jobs on an
// Ethernet pool need neither HCAs nor shared storage to live-migrate.
func newTestJobs(t *testing.T, k *sim.Kernel, tb *hw.Testbed, srcNodes []*hw.Node,
	guests []float64, vmsPerJob int) []*Job {
	t.Helper()
	var gangs [][]*vmm.VM
	for j, gb := range guests {
		var gang []*vmm.VM
		for v := 0; v < vmsPerJob; v++ {
			vm, err := vmm.New(k, srcNodes[j*vmsPerJob+v], tb.Segment, vmm.Config{
				Name: fmt.Sprintf("j%02dv%02d", j, v), VCPUs: 2, MemoryBytes: gb * hw.GB,
			}, vmm.DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			gang = append(gang, vm)
		}
		gangs = append(gangs, gang)
	}
	k.RunUntil(sim.Second)
	pol := ninja.DefaultRetryPolicy()
	var jobs []*Job
	for j := range guests {
		job, err := mpi.NewJob(k, mpi.Config{VMs: gangs[j], RanksPerVM: 1, ContinueLikeRestart: true})
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("job%02d", j)
		jobs = append(jobs, &Job{Name: name, Orch: ninja.New(job, ninja.Options{Retry: &pol})})
		job.Launch(name, func(p *sim.Proc, rk *mpi.Rank) {
			for i := 0; i < 3000; i++ {
				rk.FTProbe(p)
				rk.Compute(p, 0.2)
			}
		})
	}
	return jobs
}

// startAt triggers the executor at the absolute simulated time and runs
// the kernel to completion.
func startAt(t *testing.T, k *sim.Kernel, ex *Executor, at sim.Time) Report {
	t.Helper()
	var fut *sim.Future[Report]
	k.Go("driver", func(p *sim.Proc) {
		if at > p.Now() {
			p.Sleep(at - p.Now())
		}
		f, err := ex.Start()
		if err != nil {
			t.Error(err)
			return
		}
		fut = f
	})
	k.Run()
	if fut == nil || !fut.Done() {
		t.Fatal("directive did not complete")
	}
	return fut.Value()
}

// ethSpec is AGCNodeSpec without the IB HCA.
func ethSpec() hw.NodeSpec {
	s := hw.AGCNodeSpec
	s.IBBandwidth = 0
	return s
}

// A destination crash between two batches must not strand the later batch:
// slots freed by the completed batch's *landed* jobs are counted through
// the VMs' current nodes, not double-billed via their stale planned
// destinations. Regression test for the takenSlots double-count that made
// multi-slot replans fail with ErrNoCapacity.
func TestReplanAfterCompletedBatchMultiSlot(t *testing.T) {
	k := sim.NewKernel()
	tb := hw.NewTestbed(k)
	src := tb.AddCluster("src", 4, ethSpec())
	dstA := tb.AddCluster("dsta", 1, ethSpec())
	dstB := tb.AddCluster("dstb", 1, ethSpec())
	jobs := newTestJobs(t, k, tb, src.Nodes, []float64{4, 4}, 2)
	n0, n1 := dstA.Nodes[0], dstB.Nodes[0]
	topo := NewTopology(
		&Site{Name: "src", Nodes: src.Nodes},
		&Site{Name: "a", Nodes: dstA.Nodes, SlotsPerNode: 4},
		&Site{Name: "b", Nodes: dstB.Nodes, SlotsPerNode: 2},
	)
	plan := &Plan{
		Dir: Directive{Kind: Evacuate, Source: topo.Sites[0]},
		Seq: Sequence{Batches: [][]*Migration{
			{{Job: jobs[0], Dsts: []*hw.Node{n0, n0}}},
			{{Job: jobs[1], Dsts: []*hw.Node{n1, n1}}},
		}},
		Jobs: jobs,
	}
	ex := NewExecutor(k, plan, Options{Topo: topo, Placement: PlaceGreedy, Replan: true})
	// n1 dies before the directive even starts: batch 1 (job0 → n0×2) runs
	// untouched, then batch 2's launch check must re-place job1. n0 has 4
	// slots of which job0 holds exactly 2 — the replan must see 2 free.
	k.Schedule(2*sim.Second, func() { n1.Fail() })
	rep := startAt(t, k, ex, 5*sim.Second)

	if rep.Replans != 1 {
		t.Fatalf("replans = %d, want 1", rep.Replans)
	}
	for _, e := range rep.Events {
		if e.Kind == metrics.EventReplan && strings.Contains(e.Detail, "no capacity") {
			t.Fatalf("replan hit spurious capacity exhaustion: %s", e)
		}
	}
	for _, vm := range jobs[1].VMs() {
		if vm.Node() != n0 {
			t.Fatalf("job01 VM %s on %s, want %s", vm.Name(), vm.Node().Name, n0.Name)
		}
	}
	if failed := rep.Failed(); len(failed) > 0 {
		t.Fatalf("job %s failed: %v", failed[0].Job.Name, failed[0].Err)
	}
}

// The replanning contract is per-batch at launch: a node that crashes
// while batch 0 is in flight — two batches before its victim — is still
// caught, because no batch starts without a final look at its
// destinations.
func TestReplanCatchesCrashTwoBatchesAhead(t *testing.T) {
	k := sim.NewKernel()
	tb := hw.NewTestbed(k)
	src := tb.AddCluster("src", 3, ethSpec())
	dst := tb.AddCluster("dst", 4, ethSpec())
	jobs := newTestJobs(t, k, tb, src.Nodes, []float64{4, 4, 4}, 1)
	nA, nB, nC, nD := dst.Nodes[0], dst.Nodes[1], dst.Nodes[2], dst.Nodes[3]
	topo := NewTopology(
		&Site{Name: "src", Nodes: src.Nodes},
		&Site{Name: "dst", Nodes: dst.Nodes},
	)
	plan := &Plan{
		Dir: Directive{Kind: Evacuate, Source: topo.Sites[0]},
		Seq: Sequence{Batches: [][]*Migration{
			{{Job: jobs[0], Dsts: []*hw.Node{nA}}},
			{{Job: jobs[1], Dsts: []*hw.Node{nB}}},
			{{Job: jobs[2], Dsts: []*hw.Node{nC}}},
		}},
		Jobs: jobs,
	}
	ex := NewExecutor(k, plan, Options{Topo: topo, Placement: PlaceGreedy, Replan: true})
	// Crash batch 3's destination one second after batch 1 launches.
	k.Schedule(5*sim.Second, func() { nC.Fail() })
	rep := startAt(t, k, ex, 5*sim.Second)

	if rep.Replans != 1 {
		t.Fatalf("replans = %d, want 1", rep.Replans)
	}
	if got := jobs[2].VMs()[0].Node(); got != nD {
		t.Fatalf("job02 on %s, want the spare %s", got.Name, nD.Name)
	}
	if failed := rep.Failed(); len(failed) > 0 {
		t.Fatalf("job %s failed: %v", failed[0].Job.Name, failed[0].Err)
	}
}

// A job whose migration rolls back in place is re-queued into a fresh
// batch instead of ending the directive attempt; once the injected fault
// budget is spent, the re-queued attempt lands and the outcome upgrades
// to retried-ok.
func TestRollbackRequeueConverges(t *testing.T) {
	k := sim.NewKernel()
	tb := hw.NewTestbed(k)
	src := tb.AddCluster("src", 2, ethSpec())
	dst := tb.AddCluster("dst", 2, ethSpec())
	jobs := newTestJobs(t, k, tb, src.Nodes, []float64{4}, 2)
	nA, nB := dst.Nodes[0], dst.Nodes[1]
	topo := NewTopology(
		&Site{Name: "src", Nodes: src.Nodes},
		&Site{Name: "dst", Nodes: dst.Nodes},
	)
	plan := &Plan{
		Dir: Directive{Kind: Evacuate, Source: topo.Sites[0]},
		Seq: Sequence{Batches: [][]*Migration{
			{{Job: jobs[0], Dsts: []*hw.Node{nA, nB}}},
		}},
		Jobs: jobs,
	}
	ex := NewExecutor(k, plan, Options{Topo: topo, Placement: PlaceGreedy, Replan: true})
	// Kill j00v00's migration at precopy pass 1 on every ninja attempt of
	// the first executor try (Count = the retry budget): attempt 1 rolls
	// back in place, the re-queued attempt migrates clean.
	pol := ninja.DefaultRetryPolicy()
	inj := faults.NewInjector(k, faults.Plan{
		Name: "forced-rollback", Seed: 1,
		Specs: []faults.Spec{{
			Kind: faults.KindMigrateAbort, Target: "j00v00", Pass: 1, Count: pol.MaxAttempts,
		}},
	}, faults.Env{VMs: jobs[0].VMs()})
	if err := inj.Arm(); err != nil {
		t.Fatal(err)
	}
	rep := startAt(t, k, ex, 5*sim.Second)

	if rep.Requeues != 1 {
		t.Fatalf("requeues = %d, want 1", rep.Requeues)
	}
	if len(rep.Jobs) != 1 {
		t.Fatalf("%d job outcomes, want 1 (re-queued attempts overwrite)", len(rep.Jobs))
	}
	jo := rep.Jobs[0]
	if jo.Outcome != ninja.OutcomeRetriedOK || jo.Attempts != 2 {
		t.Fatalf("job00 ended %s after %d attempt(s), want retried-ok after 2", jo.Outcome, jo.Attempts)
	}
	requeued := 0
	for _, e := range rep.Events {
		if e.Kind == metrics.EventRequeue {
			requeued++
		}
	}
	if requeued != 1 {
		t.Fatalf("%d requeue events, want 1", requeued)
	}
	for _, vm := range jobs[0].VMs() {
		if vm.Node() != nA && vm.Node() != nB {
			t.Fatalf("VM %s still on %s after the re-queued attempt", vm.Name(), vm.Node().Name)
		}
	}
	if failed := rep.Failed(); len(failed) > 0 {
		t.Fatalf("job %s failed: %v", failed[0].Job.Name, failed[0].Err)
	}
}

// Re-queueing is bounded: when every attempt rolls back, the executor
// stops at the attempt budget and leaves the job healthy at the source.
func TestRequeueRespectsAttemptBudget(t *testing.T) {
	k := sim.NewKernel()
	tb := hw.NewTestbed(k)
	src := tb.AddCluster("src", 2, ethSpec())
	dst := tb.AddCluster("dst", 2, ethSpec())
	jobs := newTestJobs(t, k, tb, src.Nodes, []float64{4}, 2)
	topo := NewTopology(
		&Site{Name: "src", Nodes: src.Nodes},
		&Site{Name: "dst", Nodes: dst.Nodes},
	)
	plan := &Plan{
		Dir: Directive{Kind: Evacuate, Source: topo.Sites[0]},
		Seq: Sequence{Batches: [][]*Migration{
			{{Job: jobs[0], Dsts: []*hw.Node{dst.Nodes[0], dst.Nodes[1]}}},
		}},
		Jobs: jobs,
	}
	const budget = 3
	ex := NewExecutor(k, plan, Options{
		Topo: topo, Placement: PlaceGreedy, Replan: true, AttemptBudget: budget,
	})
	// Enough fault budget to kill every ninja attempt of every executor
	// attempt: the job can never leave.
	pol := ninja.DefaultRetryPolicy()
	inj := faults.NewInjector(k, faults.Plan{
		Name: "hopeless-rollback", Seed: 1,
		Specs: []faults.Spec{{
			Kind: faults.KindMigrateAbort, Target: "j00v00", Pass: 1, Count: budget * pol.MaxAttempts,
		}},
	}, faults.Env{VMs: jobs[0].VMs()})
	if err := inj.Arm(); err != nil {
		t.Fatal(err)
	}
	rep := startAt(t, k, ex, 5*sim.Second)

	if rep.Requeues != budget-1 {
		t.Fatalf("requeues = %d, want %d", rep.Requeues, budget-1)
	}
	jo := rep.Jobs[0]
	if jo.Outcome != ninja.OutcomeRolledBack || jo.Attempts != budget {
		t.Fatalf("job00 ended %s after %d attempt(s), want rolled-back after %d",
			jo.Outcome, jo.Attempts, budget)
	}
	// Rollback-in-place resumes the job wherever each VM currently sits:
	// the aborted VM never leaves its source (its gang peer may have
	// landed before the abort — that is the orchestrator's documented
	// split-placement rollback, not the executor's business).
	if got := jobs[0].VMs()[0].Node(); got != src.Nodes[0] {
		t.Fatalf("aborted VM j00v00 on %s, want its source %s", got.Name, src.Nodes[0].Name)
	}
	// A rollback-in-place leaves the job healthy: not a failure.
	if failed := rep.Failed(); len(failed) > 0 {
		t.Fatalf("rolled-back job reported as failed: %v", failed[0].Err)
	}
}

// OutcomeCounts must account for every job, including outcomes outside
// its fixed list — unknown outcomes are appended name-sorted, the empty
// outcome renders as "unknown".
func TestOutcomeCountsKeepsUnknownOutcomes(t *testing.T) {
	rep := Report{Jobs: []JobOutcome{
		{Outcome: ninja.OutcomeClean},
		{Outcome: ninja.OutcomeClean},
		{Outcome: ninja.Outcome("exploded")},
		{Outcome: ninja.Outcome("")},
	}}
	got := rep.OutcomeCounts()
	want := "2 clean, 1 unknown, 1 exploded"
	if got != want {
		t.Fatalf("OutcomeCounts() = %q, want %q", got, want)
	}
	if empty := (Report{}).OutcomeCounts(); empty != "none" {
		t.Fatalf("empty report renders %q", empty)
	}
}

// Negative knob values are always caller bugs: they must come back as a
// typed *OptionsError from every entry point, while zero keeps selecting
// the documented default.
func TestOptionValidationRejectsNegatives(t *testing.T) {
	var oe *OptionsError
	if err := (Options{AttemptBudget: -1}).Validate(); !errors.As(err, &oe) {
		t.Fatalf("Options.Validate(-1) = %v, want *OptionsError", err)
	} else if oe.Field != "Options.AttemptBudget" || oe.Value != -1 {
		t.Fatalf("OptionsError = %+v", oe)
	}
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero Options rejected: %v", err)
	}
	if err := (Options{AttemptBudget: 1}).Validate(); err != nil {
		t.Fatalf("positive budget rejected: %v", err)
	}

	if err := (Directive{MaxInFlight: -2}).Validate(); !errors.As(err, &oe) {
		t.Fatalf("Directive.Validate(-2) = %v, want *OptionsError", err)
	} else if oe.Field != "Directive.MaxInFlight" || oe.Value != -2 {
		t.Fatalf("OptionsError = %+v", oe)
	}
	if err := (Directive{}).Validate(); err != nil {
		t.Fatalf("zero Directive rejected: %v", err)
	}
}

func TestPlannerAndExecutorRejectInvalidKnobs(t *testing.T) {
	k := sim.NewKernel()
	tb := hw.NewTestbed(k)
	src := tb.AddCluster("src", 2, ethSpec())
	dst := tb.AddCluster("dst", 2, ethSpec())
	jobs := newTestJobs(t, k, tb, src.Nodes, []float64{4, 4}, 1)
	topo := NewTopology(
		&Site{Name: "src", Nodes: src.Nodes},
		&Site{Name: "dst", Nodes: dst.Nodes},
	)
	p := &Planner{Topo: topo}

	var oe *OptionsError
	if _, err := p.Plan(Directive{Source: topo.Sites[0], MaxInFlight: -1}, jobs); !errors.As(err, &oe) {
		t.Fatalf("Plan with negative MaxInFlight = %v, want *OptionsError", err)
	}

	plan, err := p.Plan(Directive{Kind: Evacuate, Source: topo.Sites[0]}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(k, plan, Options{Topo: topo, AttemptBudget: -3})
	if _, err := ex.Start(); !errors.As(err, &oe) {
		t.Fatalf("Start with negative AttemptBudget = %v, want *OptionsError", err)
	}
	// The typed error must carry the offending field for the caller's
	// message.
	if oe.Field != "Options.AttemptBudget" || oe.Value != -3 {
		t.Fatalf("OptionsError = %+v", oe)
	}
	// With the bad knob fixed the same plan starts fine.
	ex2 := NewExecutor(k, plan, Options{Topo: topo})
	if _, err := ex2.Start(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	k.Run()
}
