package crs

import (
	"testing"

	"repro/internal/sim"
)

func TestSELFCallbacks(t *testing.T) {
	k := sim.NewKernel()
	var order []string
	s := NewSELF(Callbacks{
		Checkpoint: func(p *sim.Proc) { order = append(order, "ckpt") },
		Continue:   func(p *sim.Proc) { order = append(order, "cont") },
		Restart:    func(p *sim.Proc) { order = append(order, "rst") },
	})
	k.Go("x", func(p *sim.Proc) {
		s.Checkpoint(p)
		s.Continue(p)
		s.Restart(p)
	})
	k.Run()
	if len(order) != 3 || order[0] != "ckpt" || order[1] != "cont" || order[2] != "rst" {
		t.Fatalf("order = %v", order)
	}
}

func TestSELFNilCallbacksSafe(t *testing.T) {
	k := sim.NewKernel()
	s := NewSELF(Callbacks{})
	k.Go("x", func(p *sim.Proc) {
		s.Checkpoint(p)
		s.Continue(p)
		s.Restart(p)
	})
	k.Run()
}

func TestNoop(t *testing.T) {
	k := sim.NewKernel()
	var n Noop
	k.Go("x", func(p *sim.Proc) {
		n.Checkpoint(p)
		n.Continue(p)
		n.Restart(p)
		if p.Now() != 0 {
			t.Error("Noop consumed time")
		}
	})
	k.Run()
}

func TestBLCRTiming(t *testing.T) {
	// 10 GB image at 1 GB/s: checkpoint and restart each cost 10 s — the
	// disk-bound cost SymVirt's SELF-based approach avoids.
	k := sim.NewKernel()
	b := NewBLCR(10e9, 1e9)
	var ckptAt, rstAt sim.Time
	k.Go("x", func(p *sim.Proc) {
		b.Checkpoint(p)
		ckptAt = p.Now()
		b.Continue(p)
		b.Restart(p)
		rstAt = p.Now()
	})
	k.Run()
	if ckptAt != 10*sim.Second {
		t.Fatalf("checkpoint at %v, want 10s", ckptAt)
	}
	if rstAt != 20*sim.Second {
		t.Fatalf("restart at %v, want 20s", rstAt)
	}
	if b.Checkpoints != 1 || b.Restarts != 1 {
		t.Fatalf("counters: %d/%d", b.Checkpoints, b.Restarts)
	}
}

func TestServiceInterfaceSatisfied(t *testing.T) {
	var _ Service = &SELF{}
	var _ Service = Noop{}
	var _ Service = &BLCR{}
}
