// Package crs models Open MPI's modular checkpoint/restart stack: the
// OPAL CRS (single-process checkpoint/restart service) with its SELF and
// BLCR components. The paper builds Ninja migration on the SELF component:
// instead of writing a process image, the application-supplied callbacks
// hand control to the SymVirt coordinator, which pauses the whole VM
// (§III-C: "Instead of implementing a new OPAL CRS component for SymVirt,
// we used a SELF component").
package crs

import (
	"repro/internal/sim"
)

// Service is the OPAL CRS interface: per-process checkpoint hooks invoked
// by the MPI runtime's ft_event machinery.
type Service interface {
	// Checkpoint runs when the process state is quiesced (pre-checkpoint
	// complete, interconnect resources released).
	Checkpoint(p *sim.Proc)
	// Continue runs when the same process instance resumes execution.
	Continue(p *sim.Proc)
	// Restart runs when the process is re-instantiated from an image
	// (not used by SymVirt, which is VM-level).
	Restart(p *sim.Proc)
}

// Callbacks are application-level handlers for the SELF component
// (registered via LD_PRELOAD in the paper: libsymvirt.so).
type Callbacks struct {
	Checkpoint func(p *sim.Proc)
	Continue   func(p *sim.Proc)
	Restart    func(p *sim.Proc)
}

// SELF is the user-level checkpoint component: it only invokes the
// registered application callbacks.
type SELF struct{ CB Callbacks }

// NewSELF returns a SELF service with the given callbacks.
func NewSELF(cb Callbacks) *SELF { return &SELF{CB: cb} }

// Checkpoint implements Service.
func (s *SELF) Checkpoint(p *sim.Proc) {
	if s.CB.Checkpoint != nil {
		s.CB.Checkpoint(p)
	}
}

// Continue implements Service.
func (s *SELF) Continue(p *sim.Proc) {
	if s.CB.Continue != nil {
		s.CB.Continue(p)
	}
}

// Restart implements Service.
func (s *SELF) Restart(p *sim.Proc) {
	if s.CB.Restart != nil {
		s.CB.Restart(p)
	}
}

// Noop is a CRS that does nothing (checkpointing disabled).
type Noop struct{}

// Checkpoint implements Service.
func (Noop) Checkpoint(*sim.Proc) {}

// Continue implements Service.
func (Noop) Continue(*sim.Proc) {}

// Restart implements Service.
func (Noop) Restart(*sim.Proc) {}

// BLCR models the Berkeley Lab Checkpoint/Restart component: it dumps the
// process image to storage at checkpoint time. The paper contrasts it with
// SELF: BLCR cannot save network state, which is exactly why Open MPI
// tears down and rebuilds BTLs around a checkpoint — the behaviour Ninja
// migration reuses.
type BLCR struct {
	// ImageBytes is the process image size.
	ImageBytes float64
	// DiskBandwidth is the checkpoint-store write throughput (bytes/sec).
	DiskBandwidth float64
	// Checkpoints counts completed image dumps.
	Checkpoints int
	// Restarts counts image restores.
	Restarts int
}

// NewBLCR returns a BLCR service writing images of the given size at the
// given bandwidth.
func NewBLCR(imageBytes, diskBandwidth float64) *BLCR {
	return &BLCR{ImageBytes: imageBytes, DiskBandwidth: diskBandwidth}
}

// Checkpoint implements Service: write the process image.
func (b *BLCR) Checkpoint(p *sim.Proc) {
	if b.DiskBandwidth > 0 {
		p.Sleep(sim.FromSeconds(b.ImageBytes / b.DiskBandwidth))
	}
	b.Checkpoints++
}

// Continue implements Service.
func (b *BLCR) Continue(*sim.Proc) {}

// Restart implements Service: read the image back.
func (b *BLCR) Restart(p *sim.Proc) {
	if b.DiskBandwidth > 0 {
		p.Sleep(sim.FromSeconds(b.ImageBytes / b.DiskBandwidth))
	}
	b.Restarts++
}
