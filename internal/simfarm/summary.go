package simfarm

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/metrics"
)

// RunResult is one cell's committed outcome. Every field is a
// simulated-clock or counting quantity — no wall-clock values — so the
// per-cell record, like the Summary, is identical at any parallelism.
type RunResult struct {
	Cell      string `json:"cell"`
	Directive string `json:"directive"`
	Plan      string `json:"plan"`
	Seed      int64  `json:"seed"`
	// MakespanS/DowntimeS are the directive wall time and summed service
	// interruption on the cell's simulated clock, in seconds.
	MakespanS   float64 `json:"makespan_s"`
	DowntimeS   float64 `json:"downtime_s"`
	DeadlineMet bool    `json:"deadline_met"`
	Replans     int     `json:"replans"`
	Requeues    int     `json:"requeues"`
	// Outcomes tallies per-job fleet outcomes ("clean", "retried-ok", ...).
	Outcomes map[string]int `json:"outcomes,omitempty"`
	// FinishedSimS is the cell's simulated end time, driving the farm
	// event log's clock.
	FinishedSimS float64 `json:"finished_sim_s"`
	// Err marks a failed cell: the run returned an error or panicked (the
	// per-run guard records the panic here instead of killing the sweep).
	// Failed cells are excluded from distributions but counted.
	Err string `json:"err,omitempty"`
	// Skipped marks a cell that never ran because the sweep's context was
	// cancelled first. Skipped cells appear in Result.Cells but not in the
	// Summary.
	Skipped bool `json:"skipped,omitempty"`
}

// Dist is a nearest-rank percentile summary of one metric, in seconds.
// With N sorted samples, pXX is the sample at index ceil(XX/100·N)-1 — a
// pure function of the sample multiset, so it needs no interpolation
// policy and stays byte-stable in JSON.
type Dist struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// distOf computes the nearest-rank distribution (zero Dist for no samples).
func distOf(vals []float64) Dist {
	if len(vals) == 0 {
		return Dist{}
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	rank := func(q float64) float64 {
		i := int(float64(len(s))*q+0.999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return Dist{P50: rank(0.50), P90: rank(0.90), P99: rank(0.99), Max: s[len(s)-1]}
}

// RowSummary aggregates one matrix row (directive × fault-plan) over its
// seed range.
type RowSummary struct {
	Directive string `json:"directive"`
	Plan      string `json:"plan"`
	// Runs counts committed cells; Failures the subset that errored or
	// panicked (excluded from the distributions below).
	Runs     int `json:"runs"`
	Failures int `json:"failures"`
	// Makespan/Downtime are distributions over the successful runs.
	Makespan Dist `json:"makespan_s"`
	Downtime Dist `json:"downtime_s"`
	// MissRate is deadline misses over successful runs (0 when none ran).
	MissRate float64 `json:"miss_rate"`
	// Replans/Requeues are totals over successful runs; Outcomes the
	// merged per-job tally.
	Replans  int            `json:"replans"`
	Requeues int            `json:"requeues"`
	Outcomes map[string]int `json:"outcomes,omitempty"`
}

// Summary is the deterministic aggregate of a sweep: byte-identical (via
// JSON) for the same matrix regardless of worker count. Wall-clock
// quantities (throughput) deliberately live outside it, on Result.Wall.
type Summary struct {
	// Directives×Plans×Seeds describe the matrix shape; Runs counts
	// committed cells (== the product unless the sweep was cancelled).
	Directives int          `json:"directives"`
	Plans      int          `json:"plans"`
	Seeds      int          `json:"seeds"`
	Runs       int          `json:"runs"`
	Failures   int          `json:"failures"`
	Rows       []RowSummary `json:"rows"`
}

// JSON renders the summary in a stable form (maps marshal key-sorted, so
// two summaries are equal iff their bytes are).
func (s Summary) JSON() []byte {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Summary contains only marshalable fields; this is unreachable.
		panic(fmt.Sprintf("simfarm: summary marshal: %v", err))
	}
	return append(out, '\n')
}

// WallStats is the sweep's wall-clock cost — informational, parallelism-
// dependent, and therefore kept out of the Summary.
type WallStats struct {
	Parallelism int
	Elapsed     time.Duration
	RunsPerSec  float64
}

// Result pairs the deterministic Summary (and per-cell records, in
// enumeration order) with the run's wall-clock stats.
type Result struct {
	Summary Summary
	Cells   []RunResult
	Wall    WallStats
}

// summarize folds committed cells into the Summary, walking rows in
// enumeration order. cells must be in enumeration order (Run guarantees
// it); skipped cells are left out entirely.
func summarize(m Matrix, cells []RunResult) Summary {
	plans := m.plans()
	s := Summary{
		Directives: len(m.Directives),
		Plans:      len(plans),
		Seeds:      m.Seeds.count(),
	}
	perRow := m.Seeds.count()
	for row := 0; row < m.Rows(); row++ {
		rs := RowSummary{
			Directive: m.Directives[row/len(plans)].Name,
			Plan:      plans[row%len(plans)].Name,
		}
		var mk, dt []float64
		misses := 0
		for i := row * perRow; i < (row+1)*perRow && i < len(cells); i++ {
			c := cells[i]
			if c.Skipped {
				continue
			}
			rs.Runs++
			s.Runs++
			if c.Err != "" {
				rs.Failures++
				s.Failures++
				continue
			}
			mk = append(mk, c.MakespanS)
			dt = append(dt, c.DowntimeS)
			if !c.DeadlineMet {
				misses++
			}
			rs.Replans += c.Replans
			rs.Requeues += c.Requeues
			for k, v := range c.Outcomes {
				if rs.Outcomes == nil {
					rs.Outcomes = map[string]int{}
				}
				rs.Outcomes[k] += v
			}
		}
		rs.Makespan = distOf(mk)
		rs.Downtime = distOf(dt)
		if n := len(mk); n > 0 {
			rs.MissRate = float64(misses) / float64(n)
		}
		s.Rows = append(s.Rows, rs)
	}
	return s
}

// outcomeString renders an outcome tally name-sorted ("12 clean, 3
// retried-ok"; "none" when empty).
func outcomeString(m map[string]int) string {
	if len(m) == 0 {
		return "none"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		if out != "" {
			out += ", "
		}
		out += fmt.Sprintf("%d %s", m[k], k)
	}
	return out
}

// Render formats the per-row percentile table in the ninjabench style.
func (s Summary) Render() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Ext. — Monte Carlo sweep: %d directive(s) × %d plan(s) × %d seed(s), %d run(s), %d failure(s)",
			s.Directives, s.Plans, s.Seeds, s.Runs, s.Failures),
		"directive", "plan", "runs", "fail",
		"p50-mk [s]", "p99-mk [s]", "max-mk [s]",
		"p50-dt [s]", "p90-dt [s]",
		"miss-rate", "replans", "requeues", "outcomes")
	for _, r := range s.Rows {
		t.AddRow(r.Directive, r.Plan, r.Runs, r.Failures,
			r.Makespan.P50, r.Makespan.P99, r.Makespan.Max,
			r.Downtime.P50, r.Downtime.P90,
			fmt.Sprintf("%.3f", r.MissRate), r.Replans, r.Requeues,
			outcomeString(r.Outcomes))
	}
	return t
}
