// Package simfarm is the sharded Monte Carlo sweep farm: it fans a
// directive × fault-plan × seed matrix out over a bounded pool of worker
// goroutines — each cell running an independent sim kernel + fleet
// executor — and aggregates the per-run fleet.Reports into percentile
// distributions (p50/p90/p99/max makespan and downtime, deadline-miss
// rate, outcome tallies) per matrix row.
//
// The farm turns the one-at-a-time spot checks of `ninjabench
// -run=ext-fleet` into statistical acceptance surfaces: thousands of
// seeded scenarios per second across all cores instead of a single
// trajectory, which is what honestly comparing sequencing or placement
// policies under churn requires.
//
// Determinism contract: a Summary is byte-identical regardless of worker
// count. Cells are enumerated in a fixed order (directive-major, then
// fault plan, then seed), every cell derives all of its randomness from
// its own seeded *rand.Rand, workers never share mutable state, and the
// aggregator commits results in enumeration order — never completion
// order. A cell that panics or fails is recorded as a failed cell (also
// deterministically) instead of killing the sweep.
package simfarm

import (
	"fmt"
	"math/rand"

	"repro/internal/churn"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/ninja"
	"repro/internal/sim"
)

// OptionsError reports a rejected sweep knob, following the typed
// validation pattern of fleet.OptionsError: the zero value of every
// tunable selects a documented default, and values that are always caller
// bugs (negative counts) are refused loudly instead of silently clamped.
// It is returned, errors.As-able directly, by Matrix.Validate,
// Options.Validate and New.
type OptionsError struct {
	Field  string // e.g. "Options.Parallelism"
	Value  int64
	Reason string
}

func (e *OptionsError) Error() string {
	return fmt.Sprintf("simfarm: invalid %s %d: %s", e.Field, e.Value, e.Reason)
}

// Directive is one entry of the matrix's policy axis: a named fleet
// scenario plus the config it deploys under.
type Directive struct {
	// Name labels the directive in summaries and progress events.
	Name string
	// Cfg shapes the per-cell fleet deployment (zero fields default as in
	// experiments.FleetConfig).
	Cfg experiments.FleetConfig
	// Sc is the directive/policy cell template. Its ExtraFaults field is
	// owned by the farm — the materialized per-cell fault plan is injected
	// there — and must be left nil.
	Sc experiments.FleetScenario
	// Churn, when non-nil, switches this directive from a one-shot fleet
	// evacuation to a continuous churn run; Cfg and Sc above are ignored.
	Churn *ChurnDirective
}

// ChurnDirective is the churn variant of a directive: instead of
// evacuating a fixed batch of jobs, each cell runs the online arrival/
// departure workload of internal/churn under one placement policy. The
// cell seed replaces Cfg.Workload.Seed (the farm's replication axis IS
// the workload seed), and the farm's fault axis materializes into
// Sc.Faults — which must therefore be left nil. Unlike fleet cells,
// whose fault times are relative to the directive trigger, churn fault
// times are absolute simulation times: a churn run has no trigger
// instant, its clock starts at the first arrival's epoch.
type ChurnDirective struct {
	// Cfg shapes the two-site churn deployment (zero fields default as in
	// experiments.ChurnConfig).
	Cfg experiments.ChurnConfig
	// Sc selects the placement policy and pricing switches. Faults must
	// be nil; use the matrix's fault axis.
	Sc experiments.ChurnScenario
}

// VictimKind selects how a FaultSpec resolves its target per cell.
type VictimKind int

const (
	// VictimFixed keeps Spec.Target exactly as written (empty selects the
	// faults package's own deterministic default).
	VictimFixed VictimKind = iota
	// VictimVM draws the target from the deployment's fleet VM names with
	// the cell's seeded PRNG.
	VictimVM
	// VictimDstNode draws the target from the deployment's destination
	// node names (dc1 IB nodes, then dc2 Ethernet nodes) with the cell's
	// seeded PRNG.
	VictimDstNode
)

// FaultSpec is one scripted fault template of a FaultPlan. Spec.At is
// relative to the directive trigger; the materialized cell adds a uniform
// jitter drawn from [0, AtJitter] on top.
type FaultSpec struct {
	Spec faults.Spec
	// AtJitter widens the firing instant: each cell draws an extra offset
	// uniformly from [0, AtJitter] with its seeded PRNG (0 = fire exactly
	// at Spec.At).
	AtJitter sim.Time
	// Victim selects per-cell target resolution.
	Victim VictimKind
}

// FaultPlan is one entry of the matrix's fault axis: a named template
// materialized into a concrete faults.Plan per cell.
type FaultPlan struct {
	Name  string
	Specs []FaultSpec
}

// materialize resolves the template against one cell: seeded victims,
// jittered firing times, and the cell seed threaded through as the
// faults.Plan seed (driving any empty-target selection inside the faults
// package). Draws happen in spec order — victim first, then jitter — so
// the PRNG stream consumption is fixed.
func (fp FaultPlan) materialize(seed int64, rng *rand.Rand, vms, dstNodes []string) (faults.Plan, error) {
	plan := faults.Plan{Name: fp.Name, Seed: seed}
	for i, fs := range fp.Specs {
		s := fs.Spec
		switch fs.Victim {
		case VictimFixed:
		case VictimVM:
			if len(vms) == 0 {
				return plan, fmt.Errorf("simfarm: plan %s spec %d: no VMs to pick a victim from", fp.Name, i)
			}
			s.Target = vms[rng.Intn(len(vms))]
		case VictimDstNode:
			if len(dstNodes) == 0 {
				return plan, fmt.Errorf("simfarm: plan %s spec %d: no destination nodes to pick a victim from", fp.Name, i)
			}
			s.Target = dstNodes[rng.Intn(len(dstNodes))]
		default:
			return plan, fmt.Errorf("simfarm: plan %s spec %d: unknown victim kind %d", fp.Name, i, fs.Victim)
		}
		if fs.AtJitter < 0 {
			return plan, fmt.Errorf("simfarm: plan %s spec %d: negative AtJitter", fp.Name, i)
		}
		if fs.AtJitter > 0 {
			s.At += sim.Time(rng.Int63n(int64(fs.AtJitter) + 1))
		}
		plan.Specs = append(plan.Specs, s)
	}
	return plan, nil
}

// SeedRange is the matrix's replication axis: Count consecutive seeds
// starting at Base.
type SeedRange struct {
	// Base is the first seed (0 selects the default of 1; negative values
	// are rejected — seeds name cells in labels and logs, and negative
	// ones are invariably a sign-extension bug upstream).
	Base int64
	// Count is the number of seeds per (directive, plan) row (0 selects
	// the default of 16; negative values are rejected).
	Count int
}

func (sr SeedRange) base() int64 {
	if sr.Base == 0 {
		return 1
	}
	return sr.Base
}

func (sr SeedRange) count() int {
	if sr.Count == 0 {
		return 16
	}
	return sr.Count
}

// Matrix is a full sweep specification. Enumeration order is fixed and
// documented: directives are the major axis, fault plans the middle, and
// seeds the minor — cell index ((d·|Plans|)+p)·|Seeds|+s. Aggregation,
// progress events, and summaries all follow this order, which is what
// makes a Summary independent of worker count.
type Matrix struct {
	Directives []Directive
	// Plans is the fault axis. An empty slice means a single empty plan
	// named "none" (a pure policy sweep).
	Plans []FaultPlan
	Seeds SeedRange
}

// Validate rejects matrix values that are always caller bugs. The zero
// value of every tunable selects the documented default.
func (m Matrix) Validate() error {
	if len(m.Directives) == 0 {
		return &OptionsError{
			Field: "Matrix.Directives", Value: 0,
			Reason: "a sweep needs at least one directive",
		}
	}
	if m.Seeds.Count < 0 {
		return &OptionsError{
			Field: "Matrix.Seeds.Count", Value: int64(m.Seeds.Count),
			Reason: "seed count must not be negative (0 selects the default of 16)",
		}
	}
	if m.Seeds.Base < 0 {
		return &OptionsError{
			Field: "Matrix.Seeds.Base", Value: m.Seeds.Base,
			Reason: "seed base must not be negative (0 selects the default of 1)",
		}
	}
	for _, d := range m.Directives {
		if d.Sc.ExtraFaults != nil {
			return &OptionsError{
				Field: "Matrix.Directives", Value: 0,
				Reason: fmt.Sprintf("directive %q sets Sc.ExtraFaults, which is owned by the farm's fault axis", d.Name),
			}
		}
		if d.Churn != nil && d.Churn.Sc.Faults != nil {
			return &OptionsError{
				Field: "Matrix.Directives", Value: 0,
				Reason: fmt.Sprintf("directive %q sets Churn.Sc.Faults, which is owned by the farm's fault axis", d.Name),
			}
		}
	}
	return nil
}

// SelectPlans restricts the matrix's fault axis to the named plans.
// Plans keep their matrix order regardless of the order names arrive in
// — cell enumeration stays canonical, so two callers selecting the same
// subset get byte-identical summaries. Unknown names are rejected with
// an *OptionsError naming the plans the matrix actually has; an empty
// selection keeps the full axis.
func (m Matrix) SelectPlans(names ...string) (Matrix, error) {
	if len(names) == 0 {
		return m, nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var kept []FaultPlan
	var have []string
	for _, p := range m.plans() {
		have = append(have, p.Name)
		if want[p.Name] {
			kept = append(kept, p)
			delete(want, p.Name)
		}
	}
	if len(want) > 0 {
		var unknown []string
		for _, n := range names {
			if want[n] {
				unknown = append(unknown, n)
				delete(want, n)
			}
		}
		return m, &OptionsError{
			Field: "Matrix.Plans", Value: int64(len(unknown)),
			Reason: fmt.Sprintf("unknown fault plan(s) %v (matrix has %v)", unknown, have),
		}
	}
	m.Plans = kept
	return m, nil
}

// plans returns the fault axis with the empty-axis default applied.
func (m Matrix) plans() []FaultPlan {
	if len(m.Plans) == 0 {
		return []FaultPlan{{Name: "none"}}
	}
	return m.Plans
}

// Rows returns the number of matrix rows (directive × fault-plan pairs).
func (m Matrix) Rows() int { return len(m.Directives) * len(m.plans()) }

// Runs returns the total cell count.
func (m Matrix) Runs() int { return m.Rows() * m.Seeds.count() }

// Cell is one enumerated run of the sweep.
type Cell struct {
	// Index is the cell's position in enumeration order; Row the matrix
	// row (directive × plan pair) it belongs to.
	Index, Row int
	Directive  Directive
	Plan       FaultPlan
	Seed       int64
}

// Label renders "evac-swap/dst-crash/seed03"-style cell identifiers.
func (c Cell) Label() string {
	return fmt.Sprintf("%s/%s/seed%02d", c.Directive.Name, c.Plan.Name, c.Seed)
}

// Cells enumerates the matrix in the documented deterministic order.
func (m Matrix) Cells() []Cell {
	plans := m.plans()
	base, count := m.Seeds.base(), m.Seeds.count()
	out := make([]Cell, 0, m.Runs())
	for _, d := range m.Directives {
		for _, p := range plans {
			row := len(out) / count
			for s := 0; s < count; s++ {
				out = append(out, Cell{
					Index:     len(out),
					Row:       row,
					Directive: d,
					Plan:      p,
					Seed:      base + int64(s),
				})
			}
		}
	}
	return out
}

// DefaultMatrix is the ext-sweep matrix: five directive/policy shapes
// (sequential greedy evacuation, batched swap-refined evacuation, a
// capped rolling-maintenance drain, a swap-refined evacuation sequenced
// by the time-expanded max-flow planner, and a batched swap-refined
// evacuation in RDMA-native mode — QP replay instead of hotplug for the
// IB-capable half of the fleet) crossed with three
// fault plans (fault free, a jittered crash of a seeded destination
// node, and a precopy socket drop against a seeded victim VM). jobs
// sizes each cell's fleet (0 = 4 jobs — smaller than the ext-fleet
// default 8, because a sweep multiplies every cell cost by |matrix|);
// seeds is the per-row replication count (0 = the SeedRange default of
// 16).
func DefaultMatrix(jobs, seeds int) Matrix {
	if jobs == 0 {
		jobs = 4
	}
	cfg := experiments.FleetConfig{Jobs: jobs}
	return Matrix{
		Directives: []Directive{
			{
				Name: "evac-greedy",
				Cfg:  cfg,
				Sc:   experiments.FleetScenario{Placement: fleet.PlaceGreedy},
			},
			{
				Name: "evac-swap-batched",
				Cfg:  cfg,
				Sc: experiments.FleetScenario{
					Placement: fleet.PlaceSwap,
					Seq:       fleet.SeqPolicy{Batched: true, Cap: 4},
				},
			},
			{
				Name: "rolling-cap2",
				Cfg:  cfg,
				Sc: experiments.FleetScenario{
					Kind:        fleet.RollingMaintenance,
					Placement:   fleet.PlaceSwap,
					MaxInFlight: 2,
				},
			},
			{
				Name: "evac-swap-maxflow",
				Cfg:  cfg,
				Sc: experiments.FleetScenario{
					Placement: fleet.PlaceSwap,
					Seq:       fleet.SeqPolicy{Batched: true, Mode: fleet.SeqMaxFlow},
				},
			},
			{
				Name: "evac-swap-rdma",
				Cfg:  cfg,
				Sc: experiments.FleetScenario{
					Placement: fleet.PlaceSwap,
					Seq:       fleet.SeqPolicy{Batched: true, Cap: 4},
					Mode:      ninja.RDMANative,
				},
			},
		},
		Plans: []FaultPlan{
			{Name: "none"},
			{
				Name: "dst-crash",
				Specs: []FaultSpec{{
					Spec:     faults.Spec{Kind: faults.KindNodeCrash, At: 2 * sim.Second, For: 120 * sim.Second},
					AtJitter: 20 * sim.Second,
					Victim:   VictimDstNode,
				}},
			},
			{
				Name: "migrate-abort",
				Specs: []FaultSpec{{
					Spec:   faults.Spec{Kind: faults.KindMigrateAbort, Pass: 1, Count: 1},
					Victim: VictimVM,
				}},
			},
		},
		Seeds: SeedRange{Count: seeds},
	}
}

// ChurnMatrix is the churn sweep matrix: both online placement policies
// (greedy first-fit and adaptive destination-swap) crossed with a
// fault-free plan and a jittered crash of a seeded destination node.
// Where DefaultMatrix replays one evacuation trajectory per cell, this
// matrix replays the continuous arrival/departure workload — each seed
// is a different workload, not just a different fault draw — and the
// summary's makespan/downtime columns carry the churn run's span and
// total placement wait. jobs sizes each cell's arrival count (0 = 32,
// half the ninjabench ext-churn default, because a sweep multiplies
// every cell cost by |matrix|); seeds is the per-row replication count
// (0 = the SeedRange default of 16).
func ChurnMatrix(jobs, seeds int) Matrix {
	if jobs == 0 {
		jobs = 32
	}
	cfg := experiments.ChurnConfig{}
	cfg.Workload.Jobs = jobs
	return Matrix{
		Directives: []Directive{
			{
				Name:  "churn-greedy",
				Churn: &ChurnDirective{Cfg: cfg, Sc: experiments.ChurnScenario{Policy: churn.PolicyGreedy}},
			},
			{
				Name:  "churn-swap",
				Churn: &ChurnDirective{Cfg: cfg, Sc: experiments.ChurnScenario{Policy: churn.PolicySwap}},
			},
		},
		Plans: []FaultPlan{
			{Name: "none"},
			{
				Name: "node-crash",
				Specs: []FaultSpec{{
					Spec:     faults.Spec{Kind: faults.KindNodeCrash, At: 60 * sim.Second, For: 180 * sim.Second},
					AtJitter: 120 * sim.Second,
					Victim:   VictimDstNode,
				}},
			},
		},
		Seeds: SeedRange{Count: seeds},
	}
}
