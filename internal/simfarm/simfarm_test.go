package simfarm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/ninja"
	"repro/internal/sim"
)

var faultsPlanStub = faults.Plan{Name: "stub"}

// fakeResult builds a deterministic synthetic FleetResult from a seed, so
// pool-scheduling tests don't pay for real deployments.
func fakeResult(seed int64) *experiments.FleetResult {
	mk := sim.Time(100+seed*7) * sim.Second
	return &experiments.FleetResult{
		Row: experiments.FleetRow{
			Makespan: mk,
			Downtime: sim.Time(seed) * sim.Second,
			Deadline: seed%4 != 0,
			Replans:  int(seed % 2),
			Requeues: int(seed % 3),
		},
		Report: fleet.Report{
			Finished: mk + 5*sim.Second,
			Jobs: []fleet.JobOutcome{
				{Outcome: ninja.OutcomeClean},
				{Outcome: ninja.OutcomeRetriedOK},
			},
		},
	}
}

func simpleMatrix(seeds int) Matrix {
	return Matrix{
		Directives: []Directive{{Name: "a"}, {Name: "b"}},
		Plans:      []FaultPlan{{Name: "p0"}, {Name: "p1"}},
		Seeds:      SeedRange{Count: seeds},
	}
}

// runAt runs the matrix with the given runner at one parallelism level.
func runAt(t *testing.T, m Matrix, par int, run func(Cell) (*experiments.FleetResult, error)) *Result {
	t.Helper()
	f, err := New(m, Options{Parallelism: par, Runner: run})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The core contract: the Summary — and the full per-cell record and the
// progress trail — are byte-identical at parallelism 1 and 8, including
// when one cell panics and another errors.
func TestSummaryByteIdenticalAcrossParallelism(t *testing.T) {
	m := simpleMatrix(8) // 2×2×8 = 32 cells
	run := func(c Cell) (*experiments.FleetResult, error) {
		if c.Directive.Name == "b" && c.Plan.Name == "p1" && c.Seed == 3 {
			panic("scripted cell panic")
		}
		if c.Directive.Name == "a" && c.Seed == 5 {
			return nil, errors.New("scripted cell error")
		}
		return fakeResult(c.Seed + int64(c.Index)), nil
	}

	var summaries [][]byte
	var cellsJSON [][]byte
	var trails []string
	for _, par := range []int{1, 8} {
		f, err := New(m, Options{Parallelism: par, Runner: run})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Wall.Parallelism != par {
			t.Fatalf("Wall.Parallelism = %d, want %d", res.Wall.Parallelism, par)
		}
		summaries = append(summaries, res.Summary.JSON())
		cj, err := json.Marshal(res.Cells)
		if err != nil {
			t.Fatal(err)
		}
		cellsJSON = append(cellsJSON, cj)
		trails = append(trails, f.Events().String())
	}
	if !bytes.Equal(summaries[0], summaries[1]) {
		t.Fatalf("summary differs between parallelism 1 and 8:\n--- par=1 ---\n%s\n--- par=8 ---\n%s",
			summaries[0], summaries[1])
	}
	if !bytes.Equal(cellsJSON[0], cellsJSON[1]) {
		t.Fatal("per-cell records differ between parallelism 1 and 8")
	}
	if trails[0] != trails[1] {
		t.Fatalf("event trails differ between parallelism 1 and 8:\n--- par=1 ---\n%s\n--- par=8 ---\n%s",
			trails[0], trails[1])
	}

	var s Summary
	if err := json.Unmarshal(summaries[0], &s); err != nil {
		t.Fatal(err)
	}
	if s.Runs != 32 || s.Failures != 3 { // 1 panic + 2 errors (a/p0/seed5, a/p1/seed5)
		t.Fatalf("Runs/Failures = %d/%d, want 32/3", s.Runs, s.Failures)
	}
}

// A panicking cell is recorded as that cell's failure — the sweep
// survives and the record says "panic: ...".
func TestPanicGuardRecordsCell(t *testing.T) {
	m := Matrix{Directives: []Directive{{Name: "d"}}, Seeds: SeedRange{Count: 3}}
	res := runAt(t, m, 2, func(c Cell) (*experiments.FleetResult, error) {
		if c.Seed == 2 {
			panic(fmt.Sprintf("boom seed %d", c.Seed))
		}
		return fakeResult(c.Seed), nil
	})
	if res.Summary.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", res.Summary.Failures)
	}
	if got := res.Cells[1].Err; got != "panic: boom seed 2" {
		t.Fatalf("panicked cell Err = %q", got)
	}
	if res.Cells[1].Skipped {
		t.Fatal("panicked cell marked skipped")
	}
}

// Cancelling mid-sweep skips the unstarted cells, keeps the committed
// ones, and surfaces context.Canceled alongside the partial result.
func TestCancellationSkipsRemainingCells(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := Matrix{Directives: []Directive{{Name: "d"}}, Seeds: SeedRange{Count: 6}}
	f, err := New(m, Options{Parallelism: 1, Runner: func(c Cell) (*experiments.FleetResult, error) {
		if c.Seed == 2 { // cancel after committing two cells
			cancel()
		}
		return fakeResult(c.Seed), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled Run returned no partial result")
	}
	if res.Summary.Runs != 2 {
		t.Fatalf("Runs = %d, want the 2 committed before cancel", res.Summary.Runs)
	}
	skipped := 0
	for _, c := range res.Cells {
		if c.Skipped {
			skipped++
		}
	}
	if skipped != 4 {
		t.Fatalf("%d cells skipped, want 4", skipped)
	}
}

// The progress trail is one sweep-cell per committed cell plus one
// sweep-row per matrix row, in enumeration order.
func TestProgressEvents(t *testing.T) {
	m := simpleMatrix(2) // 4 rows × 2 seeds
	f, err := New(m, Options{Parallelism: 4, Runner: func(c Cell) (*experiments.FleetResult, error) {
		return fakeResult(c.Seed), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	var streamed int
	f.Events().SetNotify(func(metrics.Event) { streamed++ })
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := f.Events().Count(metrics.EventSweepCell); got != 8 {
		t.Fatalf("%d sweep-cell events, want 8", got)
	}
	if got := f.Events().Count(metrics.EventSweepRow); got != 4 {
		t.Fatalf("%d sweep-row events, want 4", got)
	}
	if streamed != f.Events().Len() {
		t.Fatalf("notify streamed %d of %d events", streamed, f.Events().Len())
	}
	// Cells appear in enumeration order.
	cells := m.Cells()
	i := 0
	for _, e := range f.Events().Events() {
		if e.Kind != metrics.EventSweepCell {
			continue
		}
		want := cells[i].Directive.Name + "/" + cells[i].Plan.Name
		if e.Phase != want {
			t.Fatalf("sweep-cell %d phase %q, want %q", i, e.Phase, want)
		}
		i++
	}
}

func TestValidation(t *testing.T) {
	good := Matrix{Directives: []Directive{{Name: "d"}}}
	cases := []struct {
		name  string
		m     Matrix
		opts  Options
		field string
	}{
		{"no directives", Matrix{}, Options{}, "Matrix.Directives"},
		{"negative seed count", Matrix{Directives: good.Directives, Seeds: SeedRange{Count: -1}}, Options{}, "Matrix.Seeds.Count"},
		{"negative seed base", Matrix{Directives: good.Directives, Seeds: SeedRange{Base: -7}}, Options{}, "Matrix.Seeds.Base"},
		{"negative parallelism", good, Options{Parallelism: -2}, "Options.Parallelism"},
		{"reserved ExtraFaults", Matrix{Directives: []Directive{{
			Name: "d", Sc: experiments.FleetScenario{ExtraFaults: &faultsPlanStub},
		}}}, Options{}, "Matrix.Directives"},
	}
	for _, tc := range cases {
		_, err := New(tc.m, tc.opts)
		var oe *OptionsError
		if !errors.As(err, &oe) {
			t.Fatalf("%s: err = %v, want *OptionsError", tc.name, err)
		}
		if oe.Field != tc.field {
			t.Fatalf("%s: Field = %q, want %q", tc.name, oe.Field, tc.field)
		}
	}
	// Zero values select defaults instead of failing.
	f, err := New(good, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Matrix().Runs(); got != 16 { // 1 row × default 16 seeds
		t.Fatalf("default Runs = %d, want 16", got)
	}
}

func TestFarmRunsOnlyOnce(t *testing.T) {
	f, err := New(Matrix{Directives: []Directive{{Name: "d"}}, Seeds: SeedRange{Count: 1}},
		Options{Runner: func(Cell) (*experiments.FleetResult, error) { return fakeResult(1), nil }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(context.Background()); err == nil {
		t.Fatal("second Run succeeded, want error")
	}
}

func TestDistOfNearestRank(t *testing.T) {
	if d := distOf(nil); d != (Dist{}) {
		t.Fatalf("empty distOf = %+v", d)
	}
	// 1..100: nearest-rank pXX of N=100 is exactly XX.
	var vals []float64
	for i := 100; i >= 1; i-- {
		vals = append(vals, float64(i))
	}
	d := distOf(vals)
	if d.P50 != 50 || d.P90 != 90 || d.P99 != 99 || d.Max != 100 {
		t.Fatalf("distOf(1..100) = %+v", d)
	}
	// Small sample: N=4, p50 = ceil(2)-1 = index 1, p99 = ceil(3.96)-1 = index 3.
	d = distOf([]float64{4, 1, 3, 2})
	if d.P50 != 2 || d.P99 != 4 || d.Max != 4 {
		t.Fatalf("distOf(1..4) = %+v", d)
	}
	// distOf must not mutate its argument.
	if vals[0] != 100 {
		t.Fatal("distOf sorted the caller's slice")
	}
}

// Matrix enumeration: directive-major, then plan, then seed, with
// contiguous row indices.
func TestCellEnumerationOrder(t *testing.T) {
	m := simpleMatrix(3)
	cells := m.Cells()
	if len(cells) != m.Runs() || m.Runs() != 12 {
		t.Fatalf("Runs = %d, cells = %d, want 12", m.Runs(), len(cells))
	}
	want := []string{
		"a/p0/seed01", "a/p0/seed02", "a/p0/seed03",
		"a/p1/seed01", "a/p1/seed02", "a/p1/seed03",
		"b/p0/seed01", "b/p0/seed02", "b/p0/seed03",
		"b/p1/seed01", "b/p1/seed02", "b/p1/seed03",
	}
	for i, c := range cells {
		if c.Label() != want[i] {
			t.Fatalf("cell %d = %s, want %s", i, c.Label(), want[i])
		}
		if c.Index != i || c.Row != i/3 {
			t.Fatalf("cell %d: Index=%d Row=%d", i, c.Index, c.Row)
		}
	}
}

// The real fleet runner end to end, small: the default matrix with 2
// jobs and 2 seeds (3 directives × 3 plans × 2 = 18 cells) must complete
// with zero failures and identical summaries at both parallelism levels.
func TestDefaultMatrixFleetRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("real fleet sweep")
	}
	m := DefaultMatrix(2, 2)
	a := runAt(t, m, 1, nil)
	b := runAt(t, m, 8, nil)
	if a.Summary.Failures != 0 {
		for _, c := range a.Cells {
			if c.Err != "" {
				t.Errorf("cell %s failed: %s", c.Cell, c.Err)
			}
		}
		t.Fatalf("%d cell(s) failed", a.Summary.Failures)
	}
	if !bytes.Equal(a.Summary.JSON(), b.Summary.JSON()) {
		t.Fatalf("fleet sweep summary differs between parallelism 1 and 8:\n%s\nvs\n%s",
			a.Summary.JSON(), b.Summary.JSON())
	}
	// The fault plans must actually bite: the dst-crash rows should show
	// recovery activity (replans, retried jobs or spare usage) somewhere.
	for _, r := range a.Summary.Rows {
		if r.Runs != 2 {
			t.Fatalf("row %s/%s has %d runs, want 2", r.Directive, r.Plan, r.Runs)
		}
	}
}

// The churn axis end to end: the churn matrix (2 policies × 2 plans)
// runs real churn cells, each seed a different workload, with a
// byte-identical summary at parallelism 1 and 8.
func TestChurnMatrixByteIdenticalAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("real churn sweep")
	}
	m := ChurnMatrix(24, 3)
	a := runAt(t, m, 1, nil)
	b := runAt(t, m, 8, nil)
	if a.Summary.Failures != 0 {
		for _, c := range a.Cells {
			if c.Err != "" {
				t.Errorf("cell %s failed: %s", c.Cell, c.Err)
			}
		}
		t.Fatalf("%d cell(s) failed", a.Summary.Failures)
	}
	if !bytes.Equal(a.Summary.JSON(), b.Summary.JSON()) {
		t.Fatalf("churn sweep summary differs between parallelism 1 and 8:\n%s\nvs\n%s",
			a.Summary.JSON(), b.Summary.JSON())
	}
	// The policy axis must be live: only the destination-swap rows spend
	// corrective migrations (summed as Replans), and the greedy rows none.
	for _, r := range a.Summary.Rows {
		switch r.Directive {
		case "churn-swap":
			if r.Replans == 0 {
				t.Errorf("row %s/%s: destination-swap made no corrective moves", r.Directive, r.Plan)
			}
		case "churn-greedy":
			if r.Replans != 0 {
				t.Errorf("row %s/%s: greedy made %d corrective moves, want 0", r.Directive, r.Plan, r.Replans)
			}
		}
		if n := r.Outcomes["departed"] + r.Outcomes["rejected"]; n != 24*r.Runs {
			t.Errorf("row %s/%s leaked jobs: outcomes %v over %d runs of 24 jobs",
				r.Directive, r.Plan, r.Outcomes, r.Runs)
		}
	}
}

// A churn directive that tries to script its own faults is rejected:
// the farm's fault axis owns Sc.Faults.
func TestChurnDirectiveFaultsRejected(t *testing.T) {
	m := ChurnMatrix(8, 1)
	m.Directives[0].Churn.Sc.Faults = &faultsPlanStub
	var oe *OptionsError
	if _, err := New(m, Options{}); !errors.As(err, &oe) {
		t.Fatalf("New = %v, want *OptionsError for Churn.Sc.Faults", err)
	}
}
