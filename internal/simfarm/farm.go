package simfarm

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Options tune a Farm.
type Options struct {
	// Parallelism is the worker-pool size — how many independent sim
	// kernels run concurrently. 0 selects runtime.GOMAXPROCS(0); negative
	// values are rejected by Validate/New with an *OptionsError. The
	// Summary does not depend on this knob.
	Parallelism int
	// Runner overrides per-cell execution (nil = the fleet runner that
	// deploys a fresh three-site testbed per cell). Tests use it to
	// script failing or panicking cells; a Runner must be safe for
	// concurrent calls from Parallelism goroutines.
	Runner func(Cell) (*experiments.FleetResult, error)
}

// Validate rejects option values that are always caller bugs.
func (o Options) Validate() error {
	if o.Parallelism < 0 {
		return &OptionsError{
			Field: "Options.Parallelism", Value: int64(o.Parallelism),
			Reason: "worker count must not be negative (0 selects GOMAXPROCS)",
		}
	}
	return nil
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Farm executes one sweep matrix. Build with New, observe progress via
// Events, then Run once.
type Farm struct {
	m     Matrix
	opts  Options
	clock sim.Time
	ev    *metrics.EventLog
	ran   bool
}

// New validates the matrix and options and builds a farm.
func New(m Matrix, opts Options) (*Farm, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	f := &Farm{m: m, opts: opts}
	// The farm has no single simulated clock — each cell runs its own
	// kernel — so the progress trail is stamped with the *committed*
	// cell's simulated end time. Commits happen in enumeration order, so
	// the trail is deterministic (though not monotone: cells are
	// independent simulations that all start at their own epoch).
	f.ev = metrics.NewEventLog(func() sim.Time { return f.clock })
	return f, nil
}

// Matrix returns the farm's (validated) matrix.
func (f *Farm) Matrix() Matrix { return f.m }

// Events returns the farm's progress log: one EventSweepCell per
// committed cell and one EventSweepRow per completed matrix row, in
// enumeration order. Wire SetNotify into it before Run to stream live.
func (f *Farm) Events() *metrics.EventLog { return f.ev }

// Run executes the sweep: cells fan out over the worker pool, finish in
// whatever order the scheduler produces, and are committed — aggregated,
// logged — strictly in enumeration order. On context cancellation the
// cells already started run to completion (a cell's simulation has no
// internal blocking), unstarted cells are marked skipped, and Run
// returns the partial Result alongside ctx.Err().
func (f *Farm) Run(ctx context.Context) (*Result, error) {
	if f.ran {
		return nil, fmt.Errorf("simfarm: farm already run")
	}
	f.ran = true

	cells := f.m.Cells()
	results := make([]RunResult, len(cells))
	done := make([]chan struct{}, len(cells))
	for i := range done {
		done[i] = make(chan struct{})
	}

	start := time.Now()
	workers := f.opts.parallelism()
	if workers > len(cells) {
		workers = len(cells)
	}
	var next int64
	for w := 0; w < workers; w++ {
		go func() {
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(cells) {
					return
				}
				if ctx.Err() != nil {
					results[i] = RunResult{
						Cell:      cells[i].Label(),
						Directive: cells[i].Directive.Name,
						Plan:      cells[i].Plan.Name,
						Seed:      cells[i].Seed,
						Skipped:   true,
					}
				} else {
					results[i] = f.runCell(cells[i])
				}
				close(done[i])
			}
		}()
	}

	// Aggregate in enumeration order, never completion order: cell i is
	// not looked at before every cell < i has been committed.
	perRow := f.m.Seeds.count()
	for i := range cells {
		<-done[i]
		r := results[i]
		if r.Skipped {
			continue
		}
		f.clock = sim.FromSeconds(r.FinishedSimS)
		detail := fmt.Sprintf("makespan %.2fs downtime %.2fs %s", r.MakespanS, r.DowntimeS, outcomeString(r.Outcomes))
		if !r.DeadlineMet {
			detail += " DEADLINE-MISS"
		}
		if r.Err != "" {
			detail = "FAILED: " + r.Err
		}
		f.ev.Record(metrics.EventSweepCell, r.Directive+"/"+r.Plan, fmt.Sprintf("seed%02d", r.Seed), detail)
		if (i+1)%perRow == 0 {
			f.ev.Record(metrics.EventSweepRow, r.Directive+"/"+r.Plan, "",
				fmt.Sprintf("row %d/%d aggregated (%d seed(s))", cells[i].Row+1, f.m.Rows(), perRow))
		}
	}

	elapsed := time.Since(start)
	res := &Result{
		Summary: summarize(f.m, results),
		Cells:   results,
		Wall:    WallStats{Parallelism: workers, Elapsed: elapsed},
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.Wall.RunsPerSec = float64(res.Summary.Runs) / secs
	}
	return res, ctx.Err()
}

// runCell executes one cell under the panic guard: a panicking run —
// whether it escapes the fleet executor, the kernel, or a custom Runner —
// is recorded as that cell's failure instead of killing the sweep. (Sim
// proc panics re-panic out of Kernel.Run on this worker's goroutine, so
// the guard catches those too.)
func (f *Farm) runCell(cell Cell) (out RunResult) {
	out = RunResult{
		Cell:      cell.Label(),
		Directive: cell.Directive.Name,
		Plan:      cell.Plan.Name,
		Seed:      cell.Seed,
	}
	defer func() {
		if r := recover(); r != nil {
			out.Err = fmt.Sprintf("panic: %v", r)
		}
	}()
	run := f.opts.Runner
	if run == nil {
		if cell.Directive.Churn != nil {
			return runChurnCell(cell, out)
		}
		run = runFleetCell
	}
	res, err := run(cell)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.MakespanS = res.Row.Makespan.Seconds()
	out.DowntimeS = res.Row.Downtime.Seconds()
	out.DeadlineMet = res.Row.Deadline
	out.Replans = res.Row.Replans
	out.Requeues = res.Row.Requeues
	out.FinishedSimS = res.Report.Finished.Seconds()
	out.Outcomes = map[string]int{}
	for _, jo := range res.Report.Jobs {
		label := string(jo.Outcome)
		if label == "" {
			label = "unknown"
		}
		out.Outcomes[label]++
	}
	return out
}

// runChurnCell executes one churn-directive cell: the cell seed becomes
// the workload seed (so the replication axis sweeps workloads, not just
// fault draws), and the cell's fault plan materializes against the churn
// deployment's node names — churn cells have no VMs, so a VictimVM spec
// fails the cell loudly rather than silently picking nothing.
func runChurnCell(cell Cell, out RunResult) RunResult {
	cd := cell.Directive.Churn
	cfg := cd.Cfg
	cfg.Workload.Seed = cell.Seed
	sc := cd.Sc
	if len(cell.Plan.Specs) > 0 {
		rng := rand.New(rand.NewSource(cell.Seed))
		plan, err := cell.Plan.materialize(cell.Seed, rng, nil, experiments.ChurnVictims(cfg))
		if err != nil {
			out.Err = err.Error()
			return out
		}
		sc.Faults = &plan
	}
	res, err := experiments.RunChurnScenario(cfg, sc)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	rep := res.Report
	out.MakespanS = rep.Duration.Seconds()
	out.DowntimeS = rep.WaitTotal.Seconds()
	out.DeadlineMet = rep.Rejected == 0
	out.Replans = rep.SwapMigs
	out.Requeues = rep.FaultMigs
	out.FinishedSimS = rep.Duration.Seconds()
	out.Outcomes = map[string]int{}
	if rep.Departed > 0 {
		out.Outcomes["departed"] = rep.Departed
	}
	if rep.Rejected > 0 {
		out.Outcomes["rejected"] = rep.Rejected
	}
	return out
}

// runFleetCell is the default cell runner: materialize the cell's fault
// plan with the cell's own seeded PRNG (victims and jitter are drawn from
// it; nothing global), inject it into a copy of the scenario, and run a
// fresh fleet deployment.
func runFleetCell(cell Cell) (*experiments.FleetResult, error) {
	sc := cell.Directive.Sc
	if len(cell.Plan.Specs) > 0 {
		rng := rand.New(rand.NewSource(cell.Seed))
		vms, dstNodes := experiments.FleetVictims(cell.Directive.Cfg)
		plan, err := cell.Plan.materialize(cell.Seed, rng, vms, dstNodes)
		if err != nil {
			return nil, err
		}
		sc.ExtraFaults = &plan
	}
	return experiments.RunFleetScenario(cell.Directive.Cfg, sc)
}
