package fabric

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func approx(a, b sim.Time, tolFrac float64) bool {
	if b == 0 {
		return a < sim.Millisecond
	}
	diff := math.Abs(float64(a - b))
	return diff <= tolFrac*math.Abs(float64(b))+float64(sim.Millisecond)
}

func TestSingleFlowFullBandwidth(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k)
	l := n.NewLink("l", 100, 0) // 100 B/s
	var done sim.Time
	k.Go("x", func(p *sim.Proc) {
		n.Transfer(p, []*Link{l}, 1000, 0)
		done = p.Now()
	})
	k.Run()
	if !approx(done, 10*sim.Second, 1e-6) {
		t.Fatalf("done = %v, want ~10s", done)
	}
}

func TestFlowLatencyOnly(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k)
	l := n.NewLink("l", 1e9, 3*sim.Second)
	var done sim.Time
	k.Go("x", func(p *sim.Proc) {
		n.Transfer(p, []*Link{l}, 0, 0)
		done = p.Now()
	})
	k.Run()
	if done != 3*sim.Second {
		t.Fatalf("done = %v, want 3s", done)
	}
}

func TestEmptyPathImmediate(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k)
	var done sim.Time = -1
	k.Go("x", func(p *sim.Proc) {
		n.Transfer(p, nil, 1e9, 0)
		done = p.Now()
	})
	k.Run()
	if done != 0 {
		t.Fatalf("done = %v, want 0", done)
	}
}

func TestTwoFlowsFairShare(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k)
	l := n.NewLink("l", 100, 0)
	var d1, d2 sim.Time
	k.Go("a", func(p *sim.Proc) {
		n.Transfer(p, []*Link{l}, 1000, 0)
		d1 = p.Now()
	})
	k.Go("b", func(p *sim.Proc) {
		n.Transfer(p, []*Link{l}, 1000, 0)
		d2 = p.Now()
	})
	k.Run()
	// Both at 50 B/s → both finish at 20s.
	if !approx(d1, 20*sim.Second, 1e-3) || !approx(d2, 20*sim.Second, 1e-3) {
		t.Fatalf("d1=%v d2=%v, want ~20s", d1, d2)
	}
}

func TestShortFlowFreesBandwidth(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k)
	l := n.NewLink("l", 100, 0)
	var dShort, dLong sim.Time
	k.Go("short", func(p *sim.Proc) {
		n.Transfer(p, []*Link{l}, 500, 0) // at 50 B/s → done at 10s
		dShort = p.Now()
	})
	k.Go("long", func(p *sim.Proc) {
		n.Transfer(p, []*Link{l}, 1500, 0) // 500 by t=10, then 1000 at 100 B/s → 20s
		dLong = p.Now()
	})
	k.Run()
	if !approx(dShort, 10*sim.Second, 1e-3) {
		t.Fatalf("dShort = %v, want ~10s", dShort)
	}
	if !approx(dLong, 20*sim.Second, 1e-3) {
		t.Fatalf("dLong = %v, want ~20s", dLong)
	}
}

func TestMaxMinBottleneck(t *testing.T) {
	// Flow A uses links L1(100)+L2(100); Flow B uses only L2.
	// Max-min: both constrained by L2 → 50/50. After B ends, A gets 100.
	k := sim.NewKernel()
	n := NewNetwork(k)
	l1 := n.NewLink("l1", 100, 0)
	l2 := n.NewLink("l2", 100, 0)
	var dA, dB sim.Time
	k.Go("A", func(p *sim.Proc) {
		n.Transfer(p, []*Link{l1, l2}, 1000, 0)
		dA = p.Now()
	})
	k.Go("B", func(p *sim.Proc) {
		n.Transfer(p, []*Link{l2}, 500, 0)
		dB = p.Now()
	})
	k.Run()
	if !approx(dB, 10*sim.Second, 1e-3) {
		t.Fatalf("dB = %v, want ~10s", dB)
	}
	// A: 500 bytes by t=10 at 50 B/s, remaining 500 at 100 B/s → 15s.
	if !approx(dA, 15*sim.Second, 1e-3) {
		t.Fatalf("dA = %v, want ~15s", dA)
	}
}

func TestMaxMinUnusedShareRedistributed(t *testing.T) {
	// L(90) carries capped flow A (cap 10) and uncapped B.
	// Max-min: A=10, B=80.
	k := sim.NewKernel()
	n := NewNetwork(k)
	l := n.NewLink("l", 90, 0)
	var dA, dB sim.Time
	k.Go("A", func(p *sim.Proc) {
		n.Transfer(p, []*Link{l}, 100, 10) // 100 bytes at 10 B/s → 10s
		dA = p.Now()
	})
	k.Go("B", func(p *sim.Proc) {
		n.Transfer(p, []*Link{l}, 800, 0) // 800 at 80 B/s → 10s
		dB = p.Now()
	})
	k.Run()
	if !approx(dA, 10*sim.Second, 1e-3) {
		t.Fatalf("dA = %v, want ~10s", dA)
	}
	if !approx(dB, 10*sim.Second, 1e-3) {
		t.Fatalf("dB = %v, want ~10s", dB)
	}
}

func TestFlowCapAlone(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k)
	l := n.NewLink("l", 1000, 0)
	var done sim.Time
	k.Go("x", func(p *sim.Proc) {
		n.Transfer(p, []*Link{l}, 1000, 100) // capped at 100 B/s → 10s
		done = p.Now()
	})
	k.Run()
	if !approx(done, 10*sim.Second, 1e-3) {
		t.Fatalf("done = %v, want ~10s", done)
	}
}

func TestCancelFlow(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k)
	l := n.NewLink("l", 100, 0)
	f := n.StartFlow([]*Link{l}, 1e6, 0)
	k.Schedule(sim.Second, func() { n.Cancel(f) })
	k.Run()
	if f.Done().Done() {
		t.Fatal("cancelled flow resolved its future")
	}
	if n.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d, want 0", n.ActiveFlows())
	}
}

func TestCancelReleasesBandwidth(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k)
	l := n.NewLink("l", 100, 0)
	victim := n.StartFlow([]*Link{l}, 1e9, 0)
	var done sim.Time
	k.Go("x", func(p *sim.Proc) {
		n.Transfer(p, []*Link{l}, 1000, 0)
		done = p.Now()
	})
	k.Schedule(10*sim.Second, func() { n.Cancel(victim) })
	k.Run()
	// First 10s shared (50 B/s → 500 B), then full rate: 500 B at 100 B/s
	// → done at 15s.
	if !approx(done, 15*sim.Second, 1e-3) {
		t.Fatalf("done = %v, want ~15s", done)
	}
}

func TestCrossNetworkLinkPanics(t *testing.T) {
	k := sim.NewKernel()
	n1, n2 := NewNetwork(k), NewNetwork(k)
	l2 := n2.NewLink("foreign", 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n1.StartFlow([]*Link{l2}, 1, 0)
}

// Property: N equal uncapped flows through one link all finish together at
// N*bytes/bw, regardless of N.
func TestFairShareProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		nFlows := int(nRaw%6) + 1
		k := sim.NewKernel()
		n := NewNetwork(k)
		l := n.NewLink("l", 1000, 0)
		var finishes []sim.Time
		for i := 0; i < nFlows; i++ {
			k.Go("f", func(p *sim.Proc) {
				n.Transfer(p, []*Link{l}, 2000, 0)
				finishes = append(finishes, p.Now())
			})
		}
		k.Run()
		want := sim.FromSeconds(float64(nFlows) * 2.0)
		for _, fin := range finishes {
			if !approx(fin, want, 1e-3) {
				return false
			}
		}
		return len(finishes) == nFlows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAdapterPathAndReachability(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k)
	sw1 := n.NewSwitch("ib0", InfiniBand)
	sw2 := n.NewSwitch("eth0", Ethernet)
	a := sw1.NewAdapter("a", 1e9, 2*sim.Microsecond)
	b := sw1.NewAdapter("b", 1e9, 2*sim.Microsecond)
	c := sw2.NewAdapter("c", 1e9, 0)
	if !Reachable(a, b) {
		t.Fatal("a and b share a switch")
	}
	if Reachable(a, c) {
		t.Fatal("a and c are on different switches")
	}
	p := Path(a, b)
	if len(p) != 2 || p[0] != a.UpLink() || p[1] != b.DownLink() {
		t.Fatalf("unexpected path %v", p)
	}
	if got := Path(a, a); got != nil {
		t.Fatalf("loopback path = %v, want nil", got)
	}
	if PathLatency(p) != 2*sim.Microsecond {
		t.Fatalf("PathLatency = %v", PathLatency(p))
	}
}

func TestTechString(t *testing.T) {
	if InfiniBand.String() != "InfiniBand" || Ethernet.String() != "Ethernet" {
		t.Fatal("Tech.String broken")
	}
}
