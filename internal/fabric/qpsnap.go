package fabric

// This file implements QP checkpoint/replay (MigrOS-style,
// arXiv:2009.06988): instead of destroying queue pairs before a migration
// and re-training the link after it, the transport's connection state is
// serialized on the source HCA, shipped with the VM, and replayed onto the
// destination HCA. Peers are brought back in sync with a short bounded
// resync message exchange — no detach, no ≈30 s link training.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/sim"
)

// DefaultQPResyncTime is the bounded peer-resync cost of replaying a QP
// snapshot on the destination: a few RTTs of connection-state
// reconciliation instead of full link training (MigrOS reports
// sub-second reconnect; we model a conservative constant).
const DefaultQPResyncTime = 250 * sim.Millisecond

// Errors returned by the snapshot/replay path. All of them are recoverable
// by demoting the migration to the hotplug rung.
var (
	ErrSnapshotCorrupt = errors.New("fabric: qp snapshot corrupt")
	ErrSnapshotStale   = errors.New("fabric: qp snapshot stale (source QP state changed since capture)")
	ErrHCAMismatch     = errors.New("fabric: destination HCA incompatible with snapshot")
	ErrResyncTimeout   = errors.New("fabric: qp resync exceeded its window")
)

// QPState is one queue pair's portable state: identity, peer addressing,
// and the send-side accounting (credit left and completions the consumer
// has not reaped yet) that the destination must replay exactly.
type QPState struct {
	QPN        QPN
	RemoteLID  LID
	RemoteQPN  QPN
	Connected  bool
	SendCredit uint32
	Pending    uint32
}

// QPSnapshot is the serialized QP/CQ state of one HCA at the migration
// stop-point.
type QPSnapshot struct {
	HCAName string
	Epoch   uint64
	LID     LID
	QPs     []QPState
}

// qpSnapMagic/qpSnapVersion frame the wire encoding.
const (
	qpSnapMagic   uint32 = 0x4e4a5150 // "NJQP"
	qpSnapVersion uint16 = 1
)

// Encode serializes the snapshot deterministically (little-endian, QPs in
// ascending QPN order as produced by SnapshotQPs).
func (s *QPSnapshot) Encode() []byte {
	buf := make([]byte, 0, 24+len(s.HCAName)+16*len(s.QPs))
	buf = binary.LittleEndian.AppendUint32(buf, qpSnapMagic)
	buf = binary.LittleEndian.AppendUint16(buf, qpSnapVersion)
	buf = binary.LittleEndian.AppendUint64(buf, s.Epoch)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(s.LID))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s.HCAName)))
	buf = append(buf, s.HCAName...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.QPs)))
	for _, qp := range s.QPs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(qp.QPN))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(qp.RemoteLID))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(qp.RemoteQPN))
		var flags byte
		if qp.Connected {
			flags = 1
		}
		buf = append(buf, flags)
		buf = binary.LittleEndian.AppendUint32(buf, qp.SendCredit)
		buf = binary.LittleEndian.AppendUint32(buf, qp.Pending)
	}
	return buf
}

// DecodeQPSnapshot parses an encoded snapshot. Corrupted, truncated or
// trailing-garbage inputs return ErrSnapshotCorrupt; the caller treats any
// decode failure as a demotion to the hotplug rung, never a crash.
func DecodeQPSnapshot(data []byte) (*QPSnapshot, error) {
	if len(data) < 18 {
		return nil, fmt.Errorf("%w: %d-byte header", ErrSnapshotCorrupt, len(data))
	}
	if magic := binary.LittleEndian.Uint32(data[0:4]); magic != qpSnapMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrSnapshotCorrupt, magic)
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != qpSnapVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrSnapshotCorrupt, v)
	}
	s := &QPSnapshot{
		Epoch: binary.LittleEndian.Uint64(data[6:14]),
		LID:   LID(binary.LittleEndian.Uint16(data[14:16])),
	}
	nameLen := int(binary.LittleEndian.Uint16(data[16:18]))
	rest := data[18:]
	if len(rest) < nameLen+4 {
		return nil, fmt.Errorf("%w: truncated name", ErrSnapshotCorrupt)
	}
	s.HCAName = string(rest[:nameLen])
	rest = rest[nameLen:]
	n := int(binary.LittleEndian.Uint32(rest[0:4]))
	rest = rest[4:]
	const qpRecBytes = 19
	if n < 0 || len(rest) != n*qpRecBytes {
		return nil, fmt.Errorf("%w: %d QP records in %d bytes", ErrSnapshotCorrupt, n, len(rest))
	}
	if n > 0 {
		s.QPs = make([]QPState, n)
	}
	for i := 0; i < n; i++ {
		rec := rest[i*qpRecBytes : (i+1)*qpRecBytes]
		if rec[10] > 1 {
			// Only bit 0 (Connected) is defined; anything else is bit rot.
			return nil, fmt.Errorf("%w: QP record %d flags %#x", ErrSnapshotCorrupt, i, rec[10])
		}
		s.QPs[i] = QPState{
			QPN:        QPN(binary.LittleEndian.Uint32(rec[0:4])),
			RemoteLID:  LID(binary.LittleEndian.Uint16(rec[4:6])),
			RemoteQPN:  QPN(binary.LittleEndian.Uint32(rec[6:10])),
			Connected:  rec[10]&1 != 0,
			SendCredit: binary.LittleEndian.Uint32(rec[11:15]),
			Pending:    binary.LittleEndian.Uint32(rec[15:19]),
		}
	}
	return s, nil
}

// SnapshotQPs captures the HCA's live queue pairs into a portable snapshot.
// The port must be Active (the transparent path never detaches, so the
// link is still up at the precopy stop-point); capture on a down or
// training port returns ErrPortNotActive.
func (h *HCA) SnapshotQPs() (*QPSnapshot, error) {
	if h.state != PortActive {
		return nil, ErrPortNotActive
	}
	s := &QPSnapshot{HCAName: h.Name, Epoch: h.epoch, LID: h.lid}
	qpns := make([]QPN, 0, len(h.qps))
	for qpn := range h.qps {
		qpns = append(qpns, qpn)
	}
	sort.Slice(qpns, func(i, j int) bool { return qpns[i] < qpns[j] })
	for _, qpn := range qpns {
		qp := h.qps[qpn]
		s.QPs = append(s.QPs, QPState{
			QPN:        qp.num,
			RemoteLID:  qp.remoteLID,
			RemoteQPN:  qp.remoteQPN,
			Connected:  qp.connected,
			SendCredit: qp.sendCredit(),
			Pending:    qp.inflight,
		})
	}
	return s, nil
}

// RestoreQPs replays a snapshot captured on src onto this (destination)
// HCA and performs the bounded peer resync: the source's queue pairs are
// re-homed onto the destination port with fresh QPNs, and every connected
// peer's reverse path is rewritten to the destination's LID/QPN — the
// MigrOS connection-update message exchange. Existing *QueuePair handles
// (the BTL caches) remain valid throughout; nothing above the transport
// notices the move.
//
// limit bounds the resync in simulated time (≤0 uses no bound beyond the
// subnet's ResyncTime); an injected resync stall past the limit returns
// ErrResyncTimeout after consuming the window. All errors leave the
// source's QP state untouched, so the caller can demote to the hotplug
// rung cleanly.
func (h *HCA) RestoreQPs(p *sim.Proc, src *HCA, snap *QPSnapshot, limit sim.Time) error {
	if snap == nil || src == nil {
		return fmt.Errorf("%w: nil snapshot or source", ErrSnapshotCorrupt)
	}
	if h.state != PortActive {
		return ErrPortNotActive
	}
	if h.subnet != src.subnet {
		// Heterogeneous sites: no common subnet manager, so connection
		// updates cannot reach the peers. The ladder's hotplug rung applies.
		return fmt.Errorf("%w: %s and %s are on different subnets", ErrHCAMismatch, src.Name, h.Name)
	}
	if h.mismatchNext {
		h.mismatchNext = false
		return fmt.Errorf("%w: %s rejects foreign QP state (injected)", ErrHCAMismatch, h.Name)
	}
	if src.staleQPNext {
		src.staleQPNext = false
		return fmt.Errorf("%w: %s (injected)", ErrSnapshotStale, src.Name)
	}
	if snap.Epoch != src.epoch || snap.HCAName != src.Name {
		return fmt.Errorf("%w: snapshot epoch %d vs %s epoch %d", ErrSnapshotStale, snap.Epoch, src.Name, src.epoch)
	}
	// Validate every captured QP is still alive before touching anything:
	// replay is all-or-nothing.
	for _, st := range snap.QPs {
		qp, ok := src.qps[st.QPN]
		if !ok || qp.destroyed {
			return fmt.Errorf("%w: QP %d gone from %s", ErrSnapshotStale, st.QPN, src.Name)
		}
	}

	// Bounded resync span (connection-update exchange with every peer).
	resync := h.subnet.ResyncTime.SaturatingAdd(h.resyncStall)
	h.resyncStall = 0
	if limit > 0 && resync > limit {
		p.Sleep(limit)
		return fmt.Errorf("%w: %s needed %v, window %v", ErrResyncTimeout, h.Name, resync, limit)
	}
	p.Sleep(resync)

	if src == h {
		// Self-migration: the device never moved; resync is a no-op.
		return nil
	}
	for _, st := range snap.QPs {
		qp := src.qps[st.QPN]
		delete(src.qps, st.QPN)
		oldNum := qp.num
		qp.hca = h
		qp.epoch = h.epoch
		qp.num = h.nextQPN
		h.nextQPN++
		h.qps[qp.num] = qp
		if !qp.connected {
			continue
		}
		// Connection update: rewrite the peer's reverse path to point at
		// the destination port.
		peer, ok := h.subnet.Lookup(qp.remoteLID)
		if !ok {
			continue // peer re-trained meanwhile; its next send fails ErrStaleLID
		}
		rqpns := make([]QPN, 0, len(peer.qps))
		for rqpn := range peer.qps {
			rqpns = append(rqpns, rqpn)
		}
		sort.Slice(rqpns, func(i, j int) bool { return rqpns[i] < rqpns[j] })
		for _, rqpn := range rqpns {
			rqp := peer.qps[rqpn]
			if rqp.connected && rqp.remoteLID == snap.LID && rqp.remoteQPN == oldNum {
				rqp.remoteLID = h.lid
				rqp.remoteQPN = qp.num
			}
		}
	}
	return nil
}

// DiscardQPs destroys the queue pairs named by snap on this HCA, best
// effort — the demotion path: the VM has left the source node, so its QP
// state there is dead even though the replay failed.
func (h *HCA) DiscardQPs(snap *QPSnapshot) {
	if snap == nil {
		return
	}
	for _, st := range snap.QPs {
		if qp, ok := h.qps[st.QPN]; ok {
			qp.destroyed = true
			delete(h.qps, st.QPN)
		}
	}
}

// InjectResyncStall extends the next RestoreQPs resync on this
// (destination) HCA by d — fault injection for the resync-timeout rung of
// the degradation ladder.
func (h *HCA) InjectResyncStall(d sim.Time) {
	if d < 0 {
		d = 0
	}
	h.resyncStall = d
}

// InjectStaleQPState marks this (source) HCA's next snapshot replay as
// stale — fault injection modelling QP state that changed between capture
// and replay (one-shot).
func (h *HCA) InjectStaleQPState() { h.staleQPNext = true }

// InjectHCAMismatch makes this (destination) HCA reject the next snapshot
// replay — fault injection modelling incompatible adapter
// generations/firmware across heterogeneous sites (one-shot).
func (h *HCA) InjectHCAMismatch() { h.mismatchNext = true }
