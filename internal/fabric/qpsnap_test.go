package fabric

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// newQPSnapTestbed builds one subnet with a peer HCA, a migration source and
// a migration destination, all powered and trained. The topology is the same
// whether or not a test migrates, so connection traces are comparable.
func newQPSnapTestbed(t *testing.T, k *sim.Kernel) (sub *IBSubnet, peer, src, dst *HCA) {
	t.Helper()
	n := NewNetwork(k)
	sw := n.NewSwitch("ibsw", InfiniBand)
	sub = NewIBSubnet(sw)
	peer = sub.NewHCA("peer", 4e9)
	src = sub.NewHCA("src", 4e9)
	dst = sub.NewHCA("dst", 4e9)
	peer.PowerOn()
	src.PowerOn()
	dst.PowerOn()
	return sub, peer, src, dst
}

// traceSend runs one blocking send and appends a portable record of it —
// transfer duration plus both QP counters, but no absolute times or LIDs,
// so traces from different kernels can be compared byte for byte.
func traceSend(p *sim.Proc, tr *[]string, label string, qp *QueuePair, bytes float64) {
	start := p.Now()
	err := qp.Send(p, bytes)
	*tr = append(*tr, fmt.Sprintf("%s bytes=%g dur=%v err=%v inflight=%d completed=%d",
		label, bytes, p.Now()-start, err, qp.Inflight(), qp.Completed()))
}

// qpReplayTrace runs a fixed bidirectional transfer schedule between a QP on
// src and a QP on peer. With migrate set, the schedule is interrupted halfway
// by a full snapshot → encode → decode → RestoreQPs move of the source's QPs
// onto dst; the same *QueuePair handles are used throughout, exercising both
// the transplant and the peer-side connection update.
func qpReplayTrace(t *testing.T, migrate bool) []string {
	t.Helper()
	k := sim.NewKernel()
	_, peer, src, dst := newQPSnapTestbed(t, k)
	var tr []string
	k.Go("trace", func(p *sim.Proc) {
		peer.WaitActive(p)
		src.WaitActive(p)
		dst.WaitActive(p)
		qpS, err := src.CreateQP()
		if err != nil {
			t.Errorf("CreateQP(src): %v", err)
			return
		}
		qpP, err := peer.CreateQP()
		if err != nil {
			t.Errorf("CreateQP(peer): %v", err)
			return
		}
		if err := qpS.Connect(peer.LID(), qpP.QPN()); err != nil {
			t.Errorf("Connect src->peer: %v", err)
			return
		}
		if err := qpP.Connect(src.LID(), qpS.QPN()); err != nil {
			t.Errorf("Connect peer->src: %v", err)
			return
		}

		// First half of the schedule: establish non-trivial counter state.
		traceSend(p, &tr, "src->peer", qpS, 1e9)
		traceSend(p, &tr, "peer->src", qpP, 2e9)
		traceSend(p, &tr, "src->peer", qpS, 5e8)

		if migrate {
			snap, err := src.SnapshotQPs()
			if err != nil {
				t.Errorf("SnapshotQPs: %v", err)
				return
			}
			// Ship the snapshot over the wire format, like the real path.
			dec, err := DecodeQPSnapshot(snap.Encode())
			if err != nil {
				t.Errorf("DecodeQPSnapshot: %v", err)
				return
			}
			start := p.Now()
			if err := dst.RestoreQPs(p, src, dec, 0); err != nil {
				t.Errorf("RestoreQPs: %v", err)
				return
			}
			if got := p.Now() - start; got != DefaultQPResyncTime {
				t.Errorf("resync took %v, want %v", got, DefaultQPResyncTime)
			}
			if qpS.hca != dst {
				t.Error("QP not re-homed onto destination HCA")
			}
			if !qpS.Connected() {
				t.Error("transplanted QP lost its connection")
			}
		}

		// Second half: the same handles, both directions. The peer-side
		// sends only work after migration if the connection update rewrote
		// qpP's reverse path to dst's LID/QPN.
		traceSend(p, &tr, "src->peer", qpS, 1e9)
		traceSend(p, &tr, "peer->src", qpP, 4e9)
		traceSend(p, &tr, "src->peer", qpS, 2.5e8)
		traceSend(p, &tr, "peer->src", qpP, 1e9)
	})
	k.Run()
	return tr
}

// TestQPReplayOracleTrace is the kernel-oracle check for satellite hardware
// transparency: a connection that lives through snapshot/replay must produce
// exactly the trace (per-transfer durations, in-flight and completion
// counters) of a connection that never migrated.
func TestQPReplayOracleTrace(t *testing.T) {
	oracle := qpReplayTrace(t, false)
	migrated := qpReplayTrace(t, true)
	if !reflect.DeepEqual(oracle, migrated) {
		t.Fatalf("replayed trace diverges from never-migrated oracle:\noracle:   %q\nmigrated: %q", oracle, migrated)
	}
	if len(oracle) != 7 {
		t.Fatalf("trace has %d entries, want 7", len(oracle))
	}
}

// TestQPSnapshotEncodeDecodeRoundtrip pins the wire format: decode(encode(s))
// must reproduce the snapshot exactly, including empty and multi-QP shapes.
func TestQPSnapshotEncodeDecodeRoundtrip(t *testing.T) {
	for _, s := range []*QPSnapshot{
		{HCAName: "hca0", Epoch: 0, LID: 1},
		{HCAName: "agc-ib-n00/hca", Epoch: 42, LID: 9, QPs: []QPState{
			{QPN: 1, RemoteLID: 3, RemoteQPN: 7, Connected: true, SendCredit: 64, Pending: 0},
			{QPN: 2, RemoteLID: 0, RemoteQPN: 0, Connected: false, SendCredit: 12, Pending: 52},
		}},
	} {
		got, err := DecodeQPSnapshot(s.Encode())
		if err != nil {
			t.Fatalf("decode(encode(%+v)): %v", s, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("roundtrip changed snapshot:\n before: %+v\n after:  %+v", s, got)
		}
	}
}

// TestSnapshotOnDownPort: the transparent path never detaches, so capture on
// anything but an Active port is a caller bug surfaced as ErrPortNotActive.
func TestSnapshotOnDownPort(t *testing.T) {
	k := sim.NewKernel()
	_, h, _ := newIBTestbed(k)
	if _, err := h.SnapshotQPs(); !errors.Is(err, ErrPortNotActive) {
		t.Fatalf("SnapshotQPs on down port: err = %v, want ErrPortNotActive", err)
	}
	h.PowerOn() // Polling, not yet Active
	if _, err := h.SnapshotQPs(); !errors.Is(err, ErrPortNotActive) {
		t.Fatalf("SnapshotQPs on training port: err = %v, want ErrPortNotActive", err)
	}
}

// TestRestoreOntoDownPort: replay needs an Active destination port; a down
// port demotes to hotplug (which will train it) rather than wedging.
func TestRestoreOntoDownPort(t *testing.T) {
	k := sim.NewKernel()
	_, _, src, dst := newQPSnapTestbed(t, k)
	dst.PowerOff()
	k.Go("w", func(p *sim.Proc) {
		src.WaitActive(p)
		snap, err := src.SnapshotQPs()
		if err != nil {
			t.Errorf("SnapshotQPs: %v", err)
			return
		}
		if err := dst.RestoreQPs(p, src, snap, 0); !errors.Is(err, ErrPortNotActive) {
			t.Errorf("RestoreQPs onto down port: err = %v, want ErrPortNotActive", err)
		}
	})
	k.Run()
}

// TestRestoreAfterSourcePowerCycle: a power cycle between capture and replay
// bumps the source epoch and destroys its QPs — the snapshot is stale.
func TestRestoreAfterSourcePowerCycle(t *testing.T) {
	k := sim.NewKernel()
	_, peer, src, dst := newQPSnapTestbed(t, k)
	var snap *QPSnapshot
	k.Go("capture", func(p *sim.Proc) {
		src.WaitActive(p)
		peer.WaitActive(p)
		qpS, _ := src.CreateQP()
		qpP, _ := peer.CreateQP()
		if err := qpS.Connect(peer.LID(), qpP.QPN()); err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		var err error
		if snap, err = src.SnapshotQPs(); err != nil {
			t.Errorf("SnapshotQPs: %v", err)
		}
	})
	k.Run()
	src.PowerOff()
	src.PowerOn()
	k.Go("replay", func(p *sim.Proc) {
		src.WaitActive(p)
		if err := dst.RestoreQPs(p, src, snap, 0); !errors.Is(err, ErrSnapshotStale) {
			t.Errorf("RestoreQPs after source power cycle: err = %v, want ErrSnapshotStale", err)
		}
	})
	k.Run()
}

// TestRestoreResyncTimeout: an injected resync stall past the caller's window
// consumes exactly the window, fails with ErrResyncTimeout, and leaves the
// source's QP state intact so the hotplug rung can take over.
func TestRestoreResyncTimeout(t *testing.T) {
	k := sim.NewKernel()
	_, peer, src, dst := newQPSnapTestbed(t, k)
	k.Go("w", func(p *sim.Proc) {
		peer.WaitActive(p)
		src.WaitActive(p)
		dst.WaitActive(p)
		qpS, _ := src.CreateQP()
		qpP, _ := peer.CreateQP()
		qpS.Connect(peer.LID(), qpP.QPN())
		snap, err := src.SnapshotQPs()
		if err != nil {
			t.Errorf("SnapshotQPs: %v", err)
			return
		}
		dst.InjectResyncStall(5 * sim.Second)
		const limit = sim.Second
		start := p.Now()
		err = dst.RestoreQPs(p, src, snap, limit)
		if !errors.Is(err, ErrResyncTimeout) {
			t.Errorf("err = %v, want ErrResyncTimeout", err)
		}
		if got := p.Now() - start; got != limit {
			t.Errorf("timeout consumed %v, want exactly the %v window", got, limit)
		}
		// All-or-nothing: the source QP is untouched and still usable.
		if qpS.hca != src {
			t.Error("failed replay moved the QP off the source")
		}
		if err := qpS.Send(p, 4e8); err != nil {
			t.Errorf("send on source after failed replay: %v", err)
		}
		// The stall is one-shot: a retry inside the same window succeeds.
		if err := dst.RestoreQPs(p, src, snap, limit); err != nil {
			t.Errorf("retry after consumed stall: %v", err)
		}
	})
	k.Run()
}

// TestRestoreInjectedFaults covers the two remaining injected arms of the
// degradation ladder: stale source QP state and an incompatible destination
// HCA. Both are one-shot — the retry succeeds.
func TestRestoreInjectedFaults(t *testing.T) {
	for _, tc := range []struct {
		name   string
		inject func(src, dst *HCA)
		want   error
	}{
		{"stale-qp", func(src, _ *HCA) { src.InjectStaleQPState() }, ErrSnapshotStale},
		{"hca-mismatch", func(_, dst *HCA) { dst.InjectHCAMismatch() }, ErrHCAMismatch},
	} {
		t.Run(tc.name, func(t *testing.T) {
			k := sim.NewKernel()
			_, peer, src, dst := newQPSnapTestbed(t, k)
			k.Go("w", func(p *sim.Proc) {
				peer.WaitActive(p)
				src.WaitActive(p)
				dst.WaitActive(p)
				qpS, _ := src.CreateQP()
				qpP, _ := peer.CreateQP()
				qpS.Connect(peer.LID(), qpP.QPN())
				snap, err := src.SnapshotQPs()
				if err != nil {
					t.Errorf("SnapshotQPs: %v", err)
					return
				}
				tc.inject(src, dst)
				if err := dst.RestoreQPs(p, src, snap, 0); !errors.Is(err, tc.want) {
					t.Errorf("err = %v, want %v", err, tc.want)
				}
				if qpS.hca != src {
					t.Error("failed replay moved the QP off the source")
				}
				if err := dst.RestoreQPs(p, src, snap, 0); err != nil {
					t.Errorf("retry after one-shot fault: %v", err)
				}
			})
			k.Run()
		})
	}
}

// TestRestoreAcrossSubnets: heterogeneous sites share no subnet manager, so
// replay is structurally impossible — ErrHCAMismatch, hotplug rung applies.
func TestRestoreAcrossSubnets(t *testing.T) {
	k := sim.NewKernel()
	_, _, src := newIBTestbed(k)
	n2 := NewNetwork(k)
	sw2 := n2.NewSwitch("ibsw2", InfiniBand)
	sub2 := NewIBSubnet(sw2)
	dst := sub2.NewHCA("far-hca", 4e9)
	src.PowerOn()
	dst.PowerOn()
	k.Go("w", func(p *sim.Proc) {
		src.WaitActive(p)
		dst.WaitActive(p)
		snap, err := src.SnapshotQPs()
		if err != nil {
			t.Errorf("SnapshotQPs: %v", err)
			return
		}
		if err := dst.RestoreQPs(p, src, snap, 0); !errors.Is(err, ErrHCAMismatch) {
			t.Errorf("cross-subnet replay: err = %v, want ErrHCAMismatch", err)
		}
	})
	k.Run()
}

// TestSelfRestoreNoOp: replaying onto the source itself (migration that lands
// back home) pays only the resync and changes nothing.
func TestSelfRestoreNoOp(t *testing.T) {
	k := sim.NewKernel()
	_, peer, src, _ := newQPSnapTestbed(t, k)
	k.Go("w", func(p *sim.Proc) {
		peer.WaitActive(p)
		src.WaitActive(p)
		qpS, _ := src.CreateQP()
		qpP, _ := peer.CreateQP()
		qpS.Connect(peer.LID(), qpP.QPN())
		before := qpS.QPN()
		snap, err := src.SnapshotQPs()
		if err != nil {
			t.Errorf("SnapshotQPs: %v", err)
			return
		}
		if err := src.RestoreQPs(p, src, snap, 0); err != nil {
			t.Errorf("self-restore: %v", err)
			return
		}
		if qpS.QPN() != before || qpS.hca != src {
			t.Errorf("self-restore renumbered or moved the QP (QPN %d -> %d)", before, qpS.QPN())
		}
		if err := qpS.Send(p, 4e8); err != nil {
			t.Errorf("send after self-restore: %v", err)
		}
	})
	k.Run()
}

// TestRestorePeerRetrainedMeanwhile: if the peer power-cycled between capture
// and replay its LID is gone; replay still succeeds (the QP moves) but the
// stale reverse path surfaces as ErrStaleLID on the next send, exactly as if
// no migration had happened.
func TestRestorePeerRetrainedMeanwhile(t *testing.T) {
	k := sim.NewKernel()
	_, peer, src, dst := newQPSnapTestbed(t, k)
	var qpS *QueuePair
	var snap *QPSnapshot
	k.Go("capture", func(p *sim.Proc) {
		peer.WaitActive(p)
		src.WaitActive(p)
		dst.WaitActive(p)
		qpS, _ = src.CreateQP()
		qpP, _ := peer.CreateQP()
		qpS.Connect(peer.LID(), qpP.QPN())
		var err error
		if snap, err = src.SnapshotQPs(); err != nil {
			t.Errorf("SnapshotQPs: %v", err)
		}
	})
	k.Run()
	peer.PowerOff()
	peer.PowerOn()
	k.Go("replay", func(p *sim.Proc) {
		peer.WaitActive(p)
		if err := dst.RestoreQPs(p, src, snap, 0); err != nil {
			t.Errorf("RestoreQPs: %v", err)
			return
		}
		if qpS.hca != dst {
			t.Error("QP not re-homed onto destination HCA")
		}
		if err := qpS.Send(p, 1e8); !errors.Is(err, ErrStaleLID) {
			t.Errorf("send to re-trained peer after replay: err = %v, want ErrStaleLID", err)
		}
	})
	k.Run()
}

// TestDiscardQPs: the demotion path kills the snapshot's QPs on whichever
// HCA holds them; subsequent sends fail ErrQPDestroyed, and discarding a nil
// or already-discarded snapshot is a no-op.
func TestDiscardQPs(t *testing.T) {
	k := sim.NewKernel()
	_, peer, src, _ := newQPSnapTestbed(t, k)
	k.Go("w", func(p *sim.Proc) {
		peer.WaitActive(p)
		src.WaitActive(p)
		qpS, _ := src.CreateQP()
		qpP, _ := peer.CreateQP()
		qpS.Connect(peer.LID(), qpP.QPN())
		snap, err := src.SnapshotQPs()
		if err != nil {
			t.Errorf("SnapshotQPs: %v", err)
			return
		}
		src.DiscardQPs(nil) // no-op
		src.DiscardQPs(snap)
		if _, err := qpS.PostSend(1); !errors.Is(err, ErrQPDestroyed) {
			t.Errorf("PostSend after discard: err = %v, want ErrQPDestroyed", err)
		}
		src.DiscardQPs(snap) // idempotent
	})
	k.Run()
}

// TestDecodeQPSnapshotCorrupt enumerates the malformed-input classes the
// fuzz harness explores: every one must fail ErrSnapshotCorrupt, never panic.
func TestDecodeQPSnapshotCorrupt(t *testing.T) {
	good := (&QPSnapshot{HCAName: "h", Epoch: 3, LID: 5, QPs: []QPState{
		{QPN: 1, RemoteLID: 2, RemoteQPN: 3, Connected: true, SendCredit: 60, Pending: 4},
	}}).Encode()
	badMagic := append([]byte{}, good...)
	badMagic[0] ^= 0xff
	badVersion := append([]byte{}, good...)
	badVersion[4] = 0xfe
	cases := map[string][]byte{
		"empty":             nil,
		"short-header":      good[:10],
		"bad-magic":         badMagic,
		"bad-version":       badVersion,
		"truncated-name":    good[:17],
		"truncated-records": good[:len(good)-5],
		"trailing-garbage":  append(append([]byte{}, good...), 0xaa),
	}
	for name, data := range cases {
		if _, err := DecodeQPSnapshot(data); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Errorf("%s: err = %v, want ErrSnapshotCorrupt", name, err)
		}
	}
	if _, err := DecodeQPSnapshot(good); err != nil {
		t.Fatalf("control: valid snapshot failed to decode: %v", err)
	}
}
