package fabric

import (
	"fmt"

	"repro/internal/sim"
)

// Tech identifies an interconnect technology.
type Tech int

const (
	// InfiniBand is a VMM-bypass-capable RDMA interconnect (QDR in the
	// paper's testbed).
	InfiniBand Tech = iota
	// Ethernet is a TCP/IP interconnect (10 GbE in the paper's testbed).
	Ethernet
)

// String returns the technology name.
func (t Tech) String() string {
	switch t {
	case InfiniBand:
		return "InfiniBand"
	case Ethernet:
		return "Ethernet"
	default:
		return fmt.Sprintf("Tech(%d)", int(t))
	}
}

// Switch is a non-blocking crossbar for one technology. Adapters attached
// to the same switch can reach each other.
type Switch struct {
	Name string
	Tech Tech
	net  *Network
}

// NewSwitch creates a switch on the network.
func (n *Network) NewSwitch(name string, tech Tech) *Switch {
	return &Switch{Name: name, Tech: tech, net: n}
}

// Network returns the network this switch belongs to.
func (s *Switch) Network() *Network { return s.net }

// Adapter is one attachment point (a NIC or HCA port) cabled to a switch.
// It owns an up-link (adapter→switch) and a down-link (switch→adapter).
type Adapter struct {
	Name string
	sw   *Switch
	up   *Link
	down *Link
}

// NewAdapter attaches a new adapter to the switch with the given link
// bandwidth (bytes/sec, each direction) and one-way latency (split across
// the up and down links).
func (s *Switch) NewAdapter(name string, bandwidth float64, latency sim.Time) *Adapter {
	half := latency / 2
	return &Adapter{
		Name: name,
		sw:   s,
		up:   s.net.NewLink(name+"/up", bandwidth, half),
		down: s.net.NewLink(name+"/down", bandwidth, latency-half),
	}
}

// Switch returns the switch the adapter is cabled to.
func (a *Adapter) Switch() *Switch { return a.sw }

// Tech returns the adapter's interconnect technology.
func (a *Adapter) Tech() Tech { return a.sw.Tech }

// UpLink returns the adapter→switch link.
func (a *Adapter) UpLink() *Link { return a.up }

// DownLink returns the switch→adapter link.
func (a *Adapter) DownLink() *Link { return a.down }

// Reachable reports whether two adapters can exchange traffic: they share
// a switch, or their switches are joined (possibly transitively) by trunks.
func Reachable(a, b *Adapter) bool { return RouteReachable(a, b) }

// Path returns the link path for a transfer from src to dst (their
// up/down links plus any trunk hops). It panics when no route exists; a
// transfer from an adapter to itself (loopback) has an empty path.
func Path(src, dst *Adapter) []*Link {
	path, err := Route(src, dst)
	if err != nil {
		panic(fmt.Sprintf("fabric: no path between %q and %q", src.Name, dst.Name))
	}
	return path
}
