package fabric

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Trunk is an inter-switch connection (a pair of directional links), used
// to build multi-switch topologies: racks behind a core switch, or two
// data centers joined by a WAN circuit (the paper's §II-A disaster
// recovery and §V wide-area migration discussion).
type Trunk struct {
	A, B *Switch
	ab   *Link // A→B
	ba   *Link // B→A
}

// ErrNoRoute is returned when two adapters have no switch path.
var ErrNoRoute = errors.New("fabric: no route")

// Connect joins two switches of the same technology with a trunk of the
// given per-direction bandwidth (bytes/sec) and one-way latency.
func (n *Network) Connect(a, b *Switch, bandwidth float64, latency sim.Time) *Trunk {
	if a.net != n || b.net != n {
		panic("fabric: Connect across networks")
	}
	if a.Tech != b.Tech {
		panic(fmt.Sprintf("fabric: trunk between %s and %s switches", a.Tech, b.Tech))
	}
	if a == b {
		panic("fabric: trunk to self")
	}
	t := &Trunk{
		A:  a,
		B:  b,
		ab: n.NewLink(fmt.Sprintf("trunk/%s→%s", a.Name, b.Name), bandwidth, latency),
		ba: n.NewLink(fmt.Sprintf("trunk/%s→%s", b.Name, a.Name), bandwidth, latency),
	}
	n.trunks = append(n.trunks, t)
	return t
}

// Links returns the A→B and B→A links (for bandwidth inspection in tests).
func (t *Trunk) Links() (ab, ba *Link) { return t.ab, t.ba }

// neighbors returns (switch, link-to-it) pairs adjacent to sw.
func (n *Network) neighbors(sw *Switch) []struct {
	sw   *Switch
	link *Link
} {
	var out []struct {
		sw   *Switch
		link *Link
	}
	for _, t := range n.trunks {
		if t.A == sw {
			out = append(out, struct {
				sw   *Switch
				link *Link
			}{t.B, t.ab})
		}
		if t.B == sw {
			out = append(out, struct {
				sw   *Switch
				link *Link
			}{t.A, t.ba})
		}
	}
	return out
}

// Route returns the link path from src to dst: src's up-link, the trunk
// links of a shortest switch path (BFS, deterministic tie-break by trunk
// creation order), and dst's down-link. A route to self is empty.
func Route(src, dst *Adapter) ([]*Link, error) {
	if src == nil || dst == nil {
		return nil, ErrNoRoute
	}
	if src == dst {
		return nil, nil
	}
	if src.sw == dst.sw {
		return []*Link{src.up, dst.down}, nil
	}
	n := src.sw.net
	if dst.sw.net != n {
		return nil, ErrNoRoute
	}
	// BFS over the switch graph.
	type hop struct {
		prev *Switch
		via  *Link
	}
	visited := map[*Switch]hop{src.sw: {}}
	queue := []*Switch{src.sw}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == dst.sw {
			break
		}
		for _, nb := range n.neighbors(cur) {
			if _, seen := visited[nb.sw]; seen {
				continue
			}
			visited[nb.sw] = hop{prev: cur, via: nb.link}
			queue = append(queue, nb.sw)
		}
	}
	if _, ok := visited[dst.sw]; !ok {
		return nil, fmt.Errorf("%w: %s ↛ %s", ErrNoRoute, src.Name, dst.Name)
	}
	// Reconstruct the trunk chain backwards.
	var middle []*Link
	for sw := dst.sw; sw != src.sw; sw = visited[sw].prev {
		middle = append([]*Link{visited[sw].via}, middle...)
	}
	path := append([]*Link{src.up}, middle...)
	return append(path, dst.down), nil
}

// RouteReachable reports whether a route exists between the adapters.
func RouteReachable(a, b *Adapter) bool {
	if a == nil || b == nil {
		return false
	}
	_, err := Route(a, b)
	return err == nil
}
