package fabric

import (
	"testing"

	"repro/internal/sim"
)

func newEthTestbed(k *sim.Kernel) (*EthSegment, *NIC, *NIC) {
	n := NewNetwork(k)
	sw := n.NewSwitch("ethsw", Ethernet)
	seg := NewEthSegment(sw)
	n1 := seg.NewNIC("nic1", 1.25e9) // 10 GbE
	n2 := seg.NewNIC("nic2", 1.25e9)
	return seg, n1, n2
}

func TestNICAddressAssignment(t *testing.T) {
	k := sim.NewKernel()
	seg, n1, n2 := newEthTestbed(k)
	if n1.IP() == n2.IP() {
		t.Fatal("duplicate IPs")
	}
	if got, ok := seg.Lookup(n1.IP()); !ok || got != n1 {
		t.Fatal("Lookup failed")
	}
	if n1.IP().String() != "10.0.0.1" {
		t.Fatalf("first IP = %s, want 10.0.0.1", n1.IP())
	}
}

func TestEthSendBandwidth(t *testing.T) {
	k := sim.NewKernel()
	_, n1, n2 := newEthTestbed(k)
	var dur sim.Time
	k.Go("s", func(p *sim.Proc) {
		start := p.Now()
		if err := n1.Send(p, n2.IP(), 1.25e9, 0, nil); err != nil { // 1 s at 10 GbE
			t.Errorf("Send: %v", err)
		}
		dur = p.Now() - start
	})
	k.Run()
	if !approx(dur, sim.Second, 1e-3) {
		t.Fatalf("dur = %v, want ~1s", dur)
	}
}

func TestEthSendToDownNIC(t *testing.T) {
	k := sim.NewKernel()
	_, n1, n2 := newEthTestbed(k)
	n2.SetUp(false)
	k.Go("s", func(p *sim.Proc) {
		if err := n1.Send(p, n2.IP(), 100, 0, nil); err != ErrHostUnreach {
			t.Errorf("err = %v, want ErrHostUnreach", err)
		}
	})
	k.Run()
}

func TestEthSendFromDownNIC(t *testing.T) {
	k := sim.NewKernel()
	_, n1, n2 := newEthTestbed(k)
	n1.SetUp(false)
	k.Go("s", func(p *sim.Proc) {
		if err := n1.Send(p, n2.IP(), 100, 0, nil); err != ErrNICDown {
			t.Errorf("err = %v, want ErrNICDown", err)
		}
	})
	k.Run()
}

func TestEthSendUnknownIP(t *testing.T) {
	k := sim.NewKernel()
	_, n1, _ := newEthTestbed(k)
	k.Go("s", func(p *sim.Proc) {
		if err := n1.Send(p, IP(0xDEADBEEF), 100, 0, nil); err != ErrHostUnreach {
			t.Errorf("err = %v, want ErrHostUnreach", err)
		}
	})
	k.Run()
}

func TestVirtioCPUCostGatesThroughput(t *testing.T) {
	// Virtio NIC with a CPU cost of 1 core-sec per 1e8 bytes. On a
	// saturated host CPU (rate 0.5 cores effective), a 1e8-byte transfer
	// needs 1 core-sec of datapath work → 2 s wall, even though the wire
	// could do it in ~0.08 s.
	k := sim.NewKernel()
	net := NewNetwork(k)
	sw := net.NewSwitch("ethsw", Ethernet)
	seg := NewEthSegment(sw)
	src := seg.NewVirtioNIC("vnic", 1.25e9, 1.0/1e8)
	dst := seg.NewNIC("nic", 1.25e9)
	hostCPU := sim.NewPS(k, 1, 1)
	// A competing compute job keeps the CPU half-shared.
	k.Go("compute", func(p *sim.Proc) { hostCPU.Serve(p, 10) })
	var dur sim.Time
	k.Go("s", func(p *sim.Proc) {
		start := p.Now()
		if err := src.Send(p, dst.IP(), 1e8, 0, hostCPU); err != nil {
			t.Errorf("Send: %v", err)
		}
		dur = p.Now() - start
	})
	k.Run()
	if !approx(dur, 2*sim.Second, 0.05) {
		t.Fatalf("dur = %v, want ~2s (CPU-gated)", dur)
	}
}

func TestVirtioLatencyPenalty(t *testing.T) {
	k := sim.NewKernel()
	net := NewNetwork(k)
	sw := net.NewSwitch("ethsw", Ethernet)
	seg := NewEthSegment(sw)
	vn := seg.NewVirtioNIC("vnic", 1.25e9, 0)
	pn := seg.NewNIC("nic", 1.25e9)
	if vn.MsgLatency() <= pn.MsgLatency() {
		t.Fatalf("virtio latency %v should exceed physical %v", vn.MsgLatency(), pn.MsgLatency())
	}
	if !vn.Virtio() || pn.Virtio() {
		t.Fatal("Virtio flags wrong")
	}
}

func TestEthLinkUpIsImmediate(t *testing.T) {
	// Table II: Ethernet link-up time is ~0; a NIC is usable as soon as it
	// is administratively up.
	k := sim.NewKernel()
	_, n1, n2 := newEthTestbed(k)
	n1.SetUp(false)
	n1.SetUp(true)
	var done sim.Time = -1
	k.Go("s", func(p *sim.Proc) {
		if err := n1.Send(p, n2.IP(), 0, 0, nil); err != nil {
			t.Errorf("Send: %v", err)
		}
		done = p.Now()
	})
	k.Run()
	if done < 0 || done > sim.Millisecond {
		t.Fatalf("zero-byte send took %v, want ≈ msg latency only", done)
	}
}

func TestIPString(t *testing.T) {
	if IP(0x0A000102).String() != "10.0.1.2" {
		t.Fatalf("IP string = %s", IP(0x0A000102))
	}
}

func TestVirtioUplinkSharesHostNIC(t *testing.T) {
	// Two VMs on different hosts, each vNIC bridged through its host's
	// 100 B/s NIC. Two concurrent transfers from the same host must share
	// the host uplink: 1000 bytes each → 20 s, not 10 s.
	k := sim.NewKernel()
	net := NewNetwork(k)
	sw := net.NewSwitch("ethsw", Ethernet)
	seg := NewEthSegment(sw)
	hostA := seg.NewNIC("hostA", 100)
	hostB := seg.NewNIC("hostB", 100)
	v1 := seg.NewVirtioNIC("v1", 1e9, 0)
	v2 := seg.NewVirtioNIC("v2", 1e9, 0)
	dst := seg.NewVirtioNIC("dst", 1e9, 0)
	v1.SetUplink(hostA)
	v2.SetUplink(hostA)
	dst.SetUplink(hostB)
	var d1, d2 sim.Time
	k.Go("t1", func(p *sim.Proc) {
		v1.Send(p, dst.IP(), 1000, 0, nil)
		d1 = p.Now()
	})
	k.Go("t2", func(p *sim.Proc) {
		v2.Send(p, dst.IP(), 1000, 0, nil)
		d2 = p.Now()
	})
	k.Run()
	if !approx(d1, 20*sim.Second, 0.01) || !approx(d2, 20*sim.Second, 0.01) {
		t.Fatalf("d1=%v d2=%v, want ~20s (shared host uplink)", d1, d2)
	}
}

func TestVirtioSameHostBridgeLocal(t *testing.T) {
	// Two vNICs on one host: traffic is bridged locally and must not be
	// limited by the host's slow physical NIC.
	k := sim.NewKernel()
	net := NewNetwork(k)
	sw := net.NewSwitch("ethsw", Ethernet)
	seg := NewEthSegment(sw)
	host := seg.NewNIC("host", 10) // 10 B/s: would take 100 s
	v1 := seg.NewVirtioNIC("v1", 1000, 0)
	v2 := seg.NewVirtioNIC("v2", 1000, 0)
	v1.SetUplink(host)
	v2.SetUplink(host)
	var d sim.Time
	k.Go("t", func(p *sim.Proc) {
		v1.Send(p, v2.IP(), 1000, 0, nil)
		d = p.Now()
	})
	k.Run()
	if !approx(d, sim.Second, 0.01) {
		t.Fatalf("same-host transfer took %v, want ~1s (local bridge)", d)
	}
}

func TestUplinkRepointing(t *testing.T) {
	// After "migration", the vNIC bridges through a different host NIC.
	k := sim.NewKernel()
	net := NewNetwork(k)
	sw := net.NewSwitch("ethsw", Ethernet)
	seg := NewEthSegment(sw)
	slow := seg.NewNIC("slow", 10)
	fast := seg.NewNIC("fast", 1000)
	peer := seg.NewNIC("peer", 1000)
	v := seg.NewVirtioNIC("v", 1e6, 0)
	v.SetUplink(slow)
	if v.Uplink() != slow {
		t.Fatal("uplink not set")
	}
	v.SetUplink(fast)
	var d sim.Time
	k.Go("t", func(p *sim.Proc) {
		v.Send(p, peer.IP(), 1000, 0, nil)
		d = p.Now()
	})
	k.Run()
	if !approx(d, sim.Second, 0.01) {
		t.Fatalf("transfer took %v, want ~1s via fast uplink", d)
	}
}
