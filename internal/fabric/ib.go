package fabric

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// PortState is the physical/logical state of an InfiniBand port.
type PortState int

const (
	// PortDown: the port is unpowered or the HCA is detached.
	PortDown PortState = iota
	// PortPolling: link training in progress; the port is not usable.
	// The paper measures this phase at ≈30 s after a hotplug re-attach
	// (Table II) and flags it as the dominant constant overhead.
	PortPolling
	// PortActive: the link is up; the subnet manager has assigned a LID.
	PortActive
)

// String returns the state name as reported by ibstat-like tools.
func (s PortState) String() string {
	switch s {
	case PortDown:
		return "Down"
	case PortPolling:
		return "Polling"
	case PortActive:
		return "Active"
	default:
		return fmt.Sprintf("PortState(%d)", int(s))
	}
}

// LID is an InfiniBand local identifier, assigned by the subnet manager
// each time a port becomes active. LIDs are not stable across detach/attach.
type LID uint16

// QPN is a queue pair number, unique per HCA instance. QPNs are not stable
// across detach/attach either; the paper relies on Open MPI's BTL
// reconstruction rather than virtualizing them (unlike Nomad).
type QPN uint32

// Errors returned by HCA and queue-pair operations.
var (
	ErrPortNotActive   = errors.New("fabric: ib port not active")
	ErrQPDestroyed     = errors.New("fabric: queue pair destroyed")
	ErrQPNotConnected  = errors.New("fabric: queue pair not connected")
	ErrStaleLID        = errors.New("fabric: stale LID (peer re-trained)")
	ErrTrainingTimeout = errors.New("fabric: ib port stuck in Polling past the wait window")
)

// IBSubnet is the subnet manager state for one InfiniBand switch: it
// assigns LIDs and resolves them back to HCAs.
type IBSubnet struct {
	sw      *Switch
	nextLID LID
	byLID   map[LID]*HCA
	// TrainingTime is how long a port spends in Polling before Active.
	TrainingTime sim.Time
	// MsgLatency is the per-message end-to-end software+wire latency.
	MsgLatency sim.Time
	// ResyncTime is the bounded peer-resync cost of replaying a QP
	// snapshot (the RDMA-native migration path) instead of re-training.
	ResyncTime sim.Time
}

// DefaultIBTrainingTime matches the ≈30 s link-up cost measured in Table II.
const DefaultIBTrainingTime = 29800 * sim.Millisecond

// DefaultIBMsgLatency is a QDR verbs-level small-message latency.
const DefaultIBMsgLatency = 2 * sim.Microsecond

// NewIBSubnet creates a subnet manager for an InfiniBand switch.
func NewIBSubnet(sw *Switch) *IBSubnet {
	if sw.Tech != InfiniBand {
		panic("fabric: IB subnet on non-InfiniBand switch")
	}
	return &IBSubnet{
		sw:           sw,
		nextLID:      1,
		byLID:        make(map[LID]*HCA),
		TrainingTime: DefaultIBTrainingTime,
		MsgLatency:   DefaultIBMsgLatency,
		ResyncTime:   DefaultQPResyncTime,
	}
}

// Lookup resolves a LID to its HCA; ok is false for stale or unknown LIDs.
func (s *IBSubnet) Lookup(lid LID) (*HCA, bool) {
	h, ok := s.byLID[lid]
	return h, ok
}

// HCA is an InfiniBand host channel adapter (one port). The paper's testbed
// uses Mellanox ConnectX HCAs assigned to guests by PCI passthrough.
type HCA struct {
	Name    string
	subnet  *IBSubnet
	adapter *Adapter
	state   PortState
	lid     LID
	epoch   uint64 // bumped every PowerOn; stale QP handles detect this
	nextQPN QPN
	qps     map[QPN]*QueuePair
	active  *sim.Future[struct{}]
	trainEv sim.Event
	// stall is extra Polling time consumed by the next PowerOn (fault
	// injection: link training stuck beyond the normal 30 s window).
	stall sim.Time
	// resyncStall / staleQPNext / mismatchNext are one-shot fault arms for
	// the QP snapshot/replay path (see qpsnap.go).
	resyncStall  sim.Time
	staleQPNext  bool
	mismatchNext bool
}

// NewHCA creates a powered-down HCA cabled to the subnet's home switch
// with the given link bandwidth (bytes/sec).
func (s *IBSubnet) NewHCA(name string, bandwidth float64) *HCA {
	return s.NewHCAOn(s.sw, name, bandwidth)
}

// NewHCAOn creates an HCA on another InfiniBand switch managed by the same
// subnet manager (multi-switch fabrics built with Network.Connect).
func (s *IBSubnet) NewHCAOn(sw *Switch, name string, bandwidth float64) *HCA {
	if sw.Tech != InfiniBand {
		panic("fabric: HCA on non-InfiniBand switch")
	}
	return &HCA{
		Name:    name,
		subnet:  s,
		adapter: sw.NewAdapter(name, bandwidth, 0),
		state:   PortDown,
		nextQPN: 1,
		qps:     make(map[QPN]*QueuePair),
	}
}

// State returns the current port state.
func (h *HCA) State() PortState { return h.state }

// LID returns the port's LID; valid only while Active.
func (h *HCA) LID() LID { return h.lid }

// Adapter returns the underlying fabric attachment.
func (h *HCA) Adapter() *Adapter { return h.adapter }

// Subnet returns the subnet manager for this HCA's switch.
func (h *HCA) Subnet() *IBSubnet { return h.subnet }

// PowerOn transitions the port Down→Polling and starts link training; after
// the subnet's TrainingTime, the port becomes Active with a fresh LID.
// Calling PowerOn on a non-Down port panics (the PCI layer guarantees the
// device is quiescent before attach).
func (h *HCA) PowerOn() {
	if h.state != PortDown {
		panic(fmt.Sprintf("fabric: PowerOn on %s port %q", h.state, h.Name))
	}
	h.state = PortPolling
	h.epoch++
	h.active = sim.NewFuture[struct{}](h.k())
	training := h.subnet.TrainingTime.SaturatingAdd(h.stall)
	h.stall = 0
	h.trainEv = h.k().Schedule(training, func() {
		h.trainEv = sim.Event{}
		h.state = PortActive
		h.lid = h.subnet.nextLID
		h.subnet.nextLID++
		h.subnet.byLID[h.lid] = h
		h.active.Set(struct{}{})
	})
}

// PowerOff transitions the port to Down, withdraws its LID, and destroys
// every queue pair. Safe to call in any state.
func (h *HCA) PowerOff() {
	h.trainEv.Cancel()
	h.trainEv = sim.Event{}
	if h.state == PortActive {
		delete(h.subnet.byLID, h.lid)
	}
	h.state = PortDown
	h.lid = 0
	h.active = nil
	for qpn, qp := range h.qps {
		qp.destroyed = true
		delete(h.qps, qpn)
	}
}

// WaitActive blocks the calling process until the port reaches Active.
// This is the guest driver's "confirm linkup" step from Fig. 4.
func (h *HCA) WaitActive(p *sim.Proc) error {
	return h.WaitActiveTimeout(p, 0)
}

// WaitActiveTimeout is WaitActive bounded to d of simulated time (≤0 waits
// forever). It returns ErrTrainingTimeout if the port is still Polling when
// the window closes — the signal the Ninja orchestrator uses to degrade an
// IB destination to TCP instead of hanging the whole job on a link that
// never trains.
func (h *HCA) WaitActiveTimeout(p *sim.Proc, d sim.Time) error {
	switch h.state {
	case PortActive:
		return nil
	case PortPolling:
		if _, ok := sim.WaitTimeout(p, h.active, d); !ok {
			return fmt.Errorf("%w: %s after %v", ErrTrainingTimeout, h.Name, d)
		}
		return nil
	default:
		return ErrPortNotActive
	}
}

// InjectTrainingStall extends the next link training by d (one-shot fault
// injection): the port sits in Polling for TrainingTime+d before going
// Active, modelling the link-training stalls the paper's hardware exhibits
// on hotplug re-attach.
func (h *HCA) InjectTrainingStall(d sim.Time) {
	if d < 0 {
		d = 0
	}
	h.stall = d
}

// Flap power-cycles an Active port (cable pull / switch port reset): every
// queue pair dies, the LID is withdrawn, and the link re-trains from
// scratch. A non-Active port is left alone.
func (h *HCA) Flap() {
	if h.state != PortActive {
		return
	}
	h.PowerOff()
	h.PowerOn()
}

func (h *HCA) k() *sim.Kernel { return h.subnet.sw.net.k }

// CreateQP allocates a reliable-connected queue pair. The port must be
// Active (verbs would fail otherwise).
func (h *HCA) CreateQP() (*QueuePair, error) {
	if h.state != PortActive {
		return nil, ErrPortNotActive
	}
	qp := &QueuePair{hca: h, num: h.nextQPN, epoch: h.epoch}
	h.nextQPN++
	h.qps[qp.num] = qp
	return qp, nil
}

// QueuePair is a reliable-connected IB queue pair. Destroying the HCA (or
// powering it off) invalidates the QP; sends then fail, which is exactly
// why the paper quiesces MPI traffic before detaching the device.
type QueuePair struct {
	hca       *HCA
	num       QPN
	epoch     uint64
	remoteLID LID
	remoteQPN QPN
	connected bool
	destroyed bool
	// inflight is posted-but-uncompleted sends (consumes send credit);
	// completed counts reaped completions. Both are carried across an
	// RDMA-native migration by the QP snapshot.
	inflight  uint32
	completed uint64
}

// qpSendCreditMax is the modeled send-queue depth (verbs max_send_wr).
const qpSendCreditMax = 64

// sendCredit returns the remaining send credit (queue depth minus
// in-flight work requests), floored at zero.
func (qp *QueuePair) sendCredit() uint32 {
	if qp.inflight >= qpSendCreditMax {
		return 0
	}
	return qpSendCreditMax - qp.inflight
}

// Inflight returns the posted-but-uncompleted send count.
func (qp *QueuePair) Inflight() int { return int(qp.inflight) }

// Completed returns the total reaped send completions.
func (qp *QueuePair) Completed() uint64 { return qp.completed }

// QPN returns the queue pair number.
func (qp *QueuePair) QPN() QPN { return qp.num }

// Connect transitions the QP to ready-to-send toward a remote (LID, QPN).
func (qp *QueuePair) Connect(remote LID, remoteQPN QPN) error {
	if qp.destroyed || qp.epoch != qp.hca.epoch {
		return ErrQPDestroyed
	}
	if _, ok := qp.hca.subnet.Lookup(remote); !ok {
		return ErrStaleLID
	}
	qp.remoteLID = remote
	qp.remoteQPN = remoteQPN
	qp.connected = true
	return nil
}

// Connected reports whether the QP has a remote endpoint.
func (qp *QueuePair) Connected() bool { return qp.connected && !qp.destroyed }

// PostSend transmits bytes to the connected peer (send or RDMA-write; the
// cost model is identical at flow level). It returns a completion future,
// or an error if the QP or the peer's port is unusable.
func (qp *QueuePair) PostSend(bytes float64) (*sim.Future[struct{}], error) {
	if qp.destroyed || qp.epoch != qp.hca.epoch {
		return nil, ErrQPDestroyed
	}
	if !qp.connected {
		return nil, ErrQPNotConnected
	}
	if qp.hca.state != PortActive {
		return nil, ErrPortNotActive
	}
	peer, ok := qp.hca.subnet.Lookup(qp.remoteLID)
	if !ok {
		return nil, ErrStaleLID
	}
	net := qp.hca.subnet.sw.net
	path := Path(qp.hca.adapter, peer.adapter)
	fut := sim.NewFuture[struct{}](net.k)
	flow := net.StartFlow(path, bytes, 0)
	lat := qp.hca.subnet.MsgLatency
	qp.inflight++
	flow.Done().OnDone(func(struct{}) {
		net.k.Schedule(lat, func() {
			if qp.inflight > 0 {
				qp.inflight--
			}
			qp.completed++
			fut.Set(struct{}{})
		})
	})
	return fut, nil
}

// Send is PostSend + blocking wait.
func (qp *QueuePair) Send(p *sim.Proc, bytes float64) error {
	fut, err := qp.PostSend(bytes)
	if err != nil {
		return err
	}
	fut.Wait(p)
	return nil
}
