package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// TestMaxMinInvariants checks, on randomized single-bottleneck topologies,
// the two defining properties of max-min fairness at a snapshot:
//  1. feasibility — the summed rate on every link ≤ its capacity;
//  2. bottleneck saturation — every flow crosses at least one link that is
//     (nearly) fully utilized, or runs at its own cap.
func TestMaxMinInvariants(t *testing.T) {
	f := func(nFlowsRaw, capRaw uint8, caps []uint8) bool {
		nFlows := int(nFlowsRaw%6) + 2
		linkCap := float64(capRaw%100) + 10
		k := sim.NewKernel()
		n := NewNetwork(k)
		shared := n.NewLink("shared", linkCap, 0)
		private := make([]*Link, nFlows)
		flows := make([]*Flow, nFlows)
		for i := 0; i < nFlows; i++ {
			private[i] = n.NewLink("p", linkCap*2, 0)
			var flowCap float64
			if i < len(caps) && caps[i]%3 == 0 {
				flowCap = float64(caps[i]%20) + 1
			}
			flows[i] = n.StartFlow([]*Link{private[i], shared}, 1e12, flowCap)
		}
		k.RunUntil(sim.Second) // flows active, far from completion

		// Feasibility on every link.
		for _, l := range append(private, shared) {
			var sum float64
			for f := range l.flows {
				sum += f.Rate()
			}
			if sum > l.Bandwidth*1.0001 {
				return false
			}
		}
		// Saturation or cap for every flow.
		var sharedSum float64
		for f := range shared.flows {
			sharedSum += f.Rate()
		}
		sharedSaturated := sharedSum >= shared.Bandwidth*0.999
		for _, fl := range flows {
			atCap := fl.maxRate > 0 && fl.Rate() >= fl.maxRate*0.999
			if !sharedSaturated && !atCap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: total bytes delivered are conserved — a flow's Done fires at
// exactly bytes/(aggregate fair share) when flows are symmetric.
func TestFlowCompletionConservation(t *testing.T) {
	f := func(nRaw, bytesRaw uint8) bool {
		n := int(nRaw%5) + 1
		bytes := float64(bytesRaw%100+1) * 10
		k := sim.NewKernel()
		net := NewNetwork(k)
		l := net.NewLink("l", 100, 0)
		count := 0
		for i := 0; i < n; i++ {
			net.StartFlow([]*Link{l}, bytes, 0).Done().OnDone(func(struct{}) { count++ })
		}
		end := k.Run()
		want := sim.FromSeconds(float64(n) * bytes / 100)
		diff := end - want
		if diff < 0 {
			diff = -diff
		}
		return count == n && diff < 10*sim.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestVerySlowFlowDoesNotOverflow(t *testing.T) {
	// Regression: a heavily-capped flow's completion estimate used to
	// wrap past MaxTime and panic.
	k := sim.NewKernel()
	n := NewNetwork(k)
	l := n.NewLink("l", 1e9, 0)
	f := n.StartFlow([]*Link{l}, 1e15, 1e-6) // ~3e13 years
	k.RunUntil(24 * sim.Hour)
	if f.Done().Done() {
		t.Fatal("flow cannot have finished")
	}
}
