package fabric

import (
	"testing"

	"repro/internal/sim"
)

func TestRouteSameSwitch(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k)
	sw := n.NewSwitch("s", Ethernet)
	a := sw.NewAdapter("a", 100, 0)
	b := sw.NewAdapter("b", 100, 0)
	path, err := Route(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 || path[0] != a.UpLink() || path[1] != b.DownLink() {
		t.Fatalf("path = %v", path)
	}
}

func TestRouteAcrossTrunk(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k)
	s1 := n.NewSwitch("s1", Ethernet)
	s2 := n.NewSwitch("s2", Ethernet)
	tr := n.Connect(s1, s2, 1000, 5*sim.Millisecond)
	a := s1.NewAdapter("a", 100, 0)
	b := s2.NewAdapter("b", 100, 0)
	path, err := Route(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ab, ba := tr.Links()
	if len(path) != 3 || path[0] != a.UpLink() || path[1] != ab || path[2] != b.DownLink() {
		t.Fatalf("path = %v", path)
	}
	// Reverse direction takes the other trunk link.
	rpath, _ := Route(b, a)
	if rpath[1] != ba {
		t.Fatal("reverse route does not use the B→A trunk link")
	}
	if PathLatency(path) != 5*sim.Millisecond {
		t.Fatalf("latency = %v", PathLatency(path))
	}
}

func TestRouteMultiHop(t *testing.T) {
	// s1 — s2 — s3 chain.
	k := sim.NewKernel()
	n := NewNetwork(k)
	s1 := n.NewSwitch("s1", Ethernet)
	s2 := n.NewSwitch("s2", Ethernet)
	s3 := n.NewSwitch("s3", Ethernet)
	n.Connect(s1, s2, 1000, sim.Millisecond)
	n.Connect(s2, s3, 1000, sim.Millisecond)
	a := s1.NewAdapter("a", 100, 0)
	c := s3.NewAdapter("c", 100, 0)
	path, err := Route(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 { // up + 2 trunks + down
		t.Fatalf("path length = %d", len(path))
	}
}

func TestRouteShortestPreferred(t *testing.T) {
	// Triangle: s1—s2, s2—s3 and a direct s1—s3. BFS must take the
	// direct hop.
	k := sim.NewKernel()
	n := NewNetwork(k)
	s1 := n.NewSwitch("s1", Ethernet)
	s2 := n.NewSwitch("s2", Ethernet)
	s3 := n.NewSwitch("s3", Ethernet)
	n.Connect(s1, s2, 1000, sim.Millisecond)
	n.Connect(s2, s3, 1000, sim.Millisecond)
	direct := n.Connect(s1, s3, 1000, sim.Millisecond)
	a := s1.NewAdapter("a", 100, 0)
	c := s3.NewAdapter("c", 100, 0)
	path, _ := Route(a, c)
	ab, _ := direct.Links()
	if len(path) != 3 || path[1] != ab {
		t.Fatalf("not the direct route: %v", path)
	}
}

func TestRouteNoRoute(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k)
	s1 := n.NewSwitch("s1", Ethernet)
	s2 := n.NewSwitch("s2", Ethernet) // not connected
	a := s1.NewAdapter("a", 100, 0)
	b := s2.NewAdapter("b", 100, 0)
	if _, err := Route(a, b); err == nil {
		t.Fatal("expected ErrNoRoute")
	}
	if Reachable(a, b) {
		t.Fatal("unconnected switches reachable")
	}
}

func TestTrunkTechMismatchPanics(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k)
	s1 := n.NewSwitch("ib", InfiniBand)
	s2 := n.NewSwitch("eth", Ethernet)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Connect(s1, s2, 1000, 0)
}

func TestTrunkSharedByFlows(t *testing.T) {
	// Two transfers across one 100 B/s trunk share it max-min fairly.
	k := sim.NewKernel()
	n := NewNetwork(k)
	s1 := n.NewSwitch("s1", Ethernet)
	s2 := n.NewSwitch("s2", Ethernet)
	n.Connect(s1, s2, 100, 0)
	a1 := s1.NewAdapter("a1", 1000, 0)
	a2 := s1.NewAdapter("a2", 1000, 0)
	b1 := s2.NewAdapter("b1", 1000, 0)
	b2 := s2.NewAdapter("b2", 1000, 0)
	var d1, d2 sim.Time
	k.Go("f1", func(p *sim.Proc) {
		n.Transfer(p, Path(a1, b1), 1000, 0)
		d1 = p.Now()
	})
	k.Go("f2", func(p *sim.Proc) {
		n.Transfer(p, Path(a2, b2), 1000, 0)
		d2 = p.Now()
	})
	k.Run()
	// 1000 B each at 50 B/s → 20 s (trunk is the bottleneck).
	if !approx(d1, 20*sim.Second, 0.01) || !approx(d2, 20*sim.Second, 0.01) {
		t.Fatalf("d1=%v d2=%v, want ~20s (shared trunk)", d1, d2)
	}
}

func TestEthSegmentSpansSwitches(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k)
	s1 := n.NewSwitch("dc1", Ethernet)
	s2 := n.NewSwitch("dc2", Ethernet)
	n.Connect(s1, s2, 1e9, 10*sim.Millisecond)
	seg := NewEthSegment(s1)
	nic1 := seg.NewNIC("n1", 1e9)
	nic2 := seg.NewNICOn(s2, "n2", 1e9)
	var done sim.Time
	k.Go("x", func(p *sim.Proc) {
		if err := nic1.Send(p, nic2.IP(), 1e9, 0, nil); err != nil {
			t.Errorf("Send: %v", err)
		}
		done = p.Now()
	})
	k.Run()
	// ≈1 s of wire + 10 ms WAN latency.
	if !approx(done, sim.Second+10*sim.Millisecond, 0.02) {
		t.Fatalf("done = %v", done)
	}
}

func TestIBSubnetSpansSwitches(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k)
	s1 := n.NewSwitch("ib1", InfiniBand)
	s2 := n.NewSwitch("ib2", InfiniBand)
	n.Connect(s1, s2, 4e9, 5*sim.Microsecond)
	sub := NewIBSubnet(s1)
	h1 := sub.NewHCA("h1", 4e9)
	h2 := sub.NewHCAOn(s2, "h2", 4e9)
	h1.PowerOn()
	h2.PowerOn()
	var err error
	k.Go("x", func(p *sim.Proc) {
		h1.WaitActive(p)
		h2.WaitActive(p)
		qp1, _ := h1.CreateQP()
		qp2, _ := h2.CreateQP()
		if e := qp1.Connect(h2.LID(), qp2.QPN()); e != nil {
			err = e
			return
		}
		err = qp1.Send(p, 1e6)
	})
	k.Run()
	if err != nil {
		t.Fatalf("cross-switch IB send: %v", err)
	}
}
