package fabric

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// IP is a simplified layer-3 address on an Ethernet segment.
type IP uint32

// String formats the IP dotted-quad style.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Errors returned by Ethernet operations.
var (
	ErrNICDown       = errors.New("fabric: NIC is down")
	ErrHostUnreach   = errors.New("fabric: no route to host")
	ErrConnReset     = errors.New("fabric: connection reset")
	ErrAddrExhausted = errors.New("fabric: segment address space exhausted")
)

// EthSegment is one Ethernet broadcast domain (a switch plus its address
// assignment). Both real 10 GbE NICs and para-virtualized virtio-net
// devices attach here.
type EthSegment struct {
	sw     *Switch
	nextIP IP
	byIP   map[IP]*NIC
	// MsgLatency is the per-message TCP/IP software+wire latency.
	MsgLatency sim.Time
}

// DefaultEthMsgLatency is a kernel-TCP-over-10GbE round latency.
const DefaultEthMsgLatency = 30 * sim.Microsecond

// DefaultVirtioExtraLatency is the added per-message cost of the
// para-virtualized virtio-net path (VM exits, vhost wakeups).
const DefaultVirtioExtraLatency = 25 * sim.Microsecond

// NewEthSegment creates a segment for an Ethernet switch.
func NewEthSegment(sw *Switch) *EthSegment {
	if sw.Tech != Ethernet {
		panic("fabric: Ethernet segment on non-Ethernet switch")
	}
	return &EthSegment{
		sw:         sw,
		nextIP:     0x0A000001, // 10.0.0.1
		byIP:       make(map[IP]*NIC),
		MsgLatency: DefaultEthMsgLatency,
	}
}

// Network returns the underlying flow network.
func (s *EthSegment) Network() *Network { return s.sw.net }

// Lookup resolves an IP to a NIC on this segment.
func (s *EthSegment) Lookup(ip IP) (*NIC, bool) {
	n, ok := s.byIP[ip]
	return n, ok
}

// NIC is an Ethernet device: either a physical NIC or a virtio-net device
// whose backend shares the host's physical port.
type NIC struct {
	Name    string
	seg     *EthSegment
	adapter *Adapter
	ip      IP
	up      bool
	virtio  bool
	// CPUCostPerByte is host CPU work (core-seconds per byte) consumed by
	// the para-virtualized datapath (vhost); zero for physical NICs or
	// VMM-bypass devices. The caller (guest driver / BTL) charges it.
	CPUCostPerByte float64
	extraLatency   sim.Time
	// uplink, for a virtio NIC, is the host physical NIC its backend
	// bridges through; virtio traffic traverses the uplink's links too.
	// Live migration re-points it at the destination host's NIC.
	uplink *NIC
}

// SetUplink bridges a virtio NIC through a host physical NIC. Passing nil
// detaches the bridge (traffic then uses only the vNIC's own links).
func (n *NIC) SetUplink(host *NIC) { n.uplink = host }

// Uplink returns the bridged host NIC, or nil.
func (n *NIC) Uplink() *NIC { return n.uplink }

// txPath returns the transmit-side link chain (vNIC up, then host NIC up).
func (n *NIC) txPath() []*Link {
	if n.uplink != nil && n.uplink != n {
		return []*Link{n.adapter.up, n.uplink.adapter.up}
	}
	return []*Link{n.adapter.up}
}

// rxPath returns the receive-side link chain (host NIC down, then vNIC down).
func (n *NIC) rxPath() []*Link {
	if n.uplink != nil && n.uplink != n {
		return []*Link{n.uplink.adapter.down, n.adapter.down}
	}
	return []*Link{n.adapter.down}
}

// NewNIC attaches a physical NIC on the segment's home switch with the
// given bandwidth (bytes/sec). Ethernet link-up is effectively instant
// (Table II measures ≈0 s), so the NIC is up and addressed immediately.
func (s *EthSegment) NewNIC(name string, bandwidth float64) *NIC {
	return s.newNIC(s.sw, name, bandwidth, false, 0, 0)
}

// NewNICOn attaches a physical NIC on another Ethernet switch that shares
// this segment's address space (multi-switch/WAN topologies built with
// Network.Connect).
func (s *EthSegment) NewNICOn(sw *Switch, name string, bandwidth float64) *NIC {
	if sw.Tech != Ethernet {
		panic("fabric: Ethernet NIC on non-Ethernet switch")
	}
	return s.newNIC(sw, name, bandwidth, false, 0, 0)
}

// NewVirtioNIC attaches a para-virtualized virtio-net device. Its traffic
// costs host CPU (cpuCostPerByte core-seconds/byte) and extra per-message
// latency, reproducing the virtualization overhead the paper's VMM-bypass
// design avoids on the InfiniBand path.
func (s *EthSegment) NewVirtioNIC(name string, bandwidth float64, cpuCostPerByte float64) *NIC {
	return s.newNIC(s.sw, name, bandwidth, true, cpuCostPerByte, DefaultVirtioExtraLatency)
}

func (s *EthSegment) newNIC(sw *Switch, name string, bandwidth float64, virtio bool, cpuCost float64, extraLat sim.Time) *NIC {
	ip := s.nextIP
	if _, taken := s.byIP[ip]; taken {
		panic(ErrAddrExhausted)
	}
	s.nextIP++
	n := &NIC{
		Name:           name,
		seg:            s,
		adapter:        sw.NewAdapter(name, bandwidth, 0),
		ip:             ip,
		up:             true,
		virtio:         virtio,
		CPUCostPerByte: cpuCost,
		extraLatency:   extraLat,
	}
	s.byIP[ip] = n
	return n
}

// IP returns the NIC's address.
func (n *NIC) IP() IP { return n.ip }

// Up reports whether the NIC is administratively up.
func (n *NIC) Up() bool { return n.up }

// Virtio reports whether this is a para-virtualized device.
func (n *NIC) Virtio() bool { return n.virtio }

// Adapter returns the underlying fabric attachment.
func (n *NIC) Adapter() *Adapter { return n.adapter }

// Segment returns the NIC's Ethernet segment.
func (n *NIC) Segment() *EthSegment { return n.seg }

// SetUp administratively raises or lowers the NIC. Ethernet has no
// multi-second training phase: the transition is immediate.
func (n *NIC) SetUp(up bool) { n.up = up }

// MsgLatency returns the per-message latency for traffic through this NIC
// (segment base latency plus any virtio penalty).
func (n *NIC) MsgLatency() sim.Time { return n.seg.MsgLatency + n.extraLatency }

// SendTo transmits bytes to the NIC that owns dst and returns a completion
// future. maxRate caps the flow (0 = uncapped). srcCPU and dstCPU, if
// non-nil, absorb the virtio datapath (vhost) cost of the corresponding
// side; the transfer completes when the wire flow and all CPU work are
// done (they proceed concurrently).
func (n *NIC) SendTo(dst IP, bytes float64, maxRate float64, srcCPU, dstCPU *sim.PS) (*sim.Future[struct{}], error) {
	if !n.up {
		return nil, ErrNICDown
	}
	peer, ok := n.seg.Lookup(dst)
	if !ok || !peer.up {
		return nil, ErrHostUnreach
	}
	net := n.seg.sw.net
	k := net.k
	fut := sim.NewFuture[struct{}](k)
	lat := n.MsgLatency() + peer.extraLatency
	var path []*Link
	switch {
	case peer == n: // loopback stays in memory
	case n.uplink != nil && n.uplink == peer.uplink:
		// Two vNICs bridged through the same host NIC: the software
		// bridge forwards locally without touching the wire.
		path = []*Link{n.adapter.up, peer.adapter.down}
	default:
		srcEff, dstEff := n.adapter, peer.adapter
		var prefix, suffix []*Link
		if n.uplink != nil {
			srcEff = n.uplink.adapter
			prefix = []*Link{n.adapter.up}
		}
		if peer.uplink != nil {
			dstEff = peer.uplink.adapter
			suffix = []*Link{peer.adapter.down}
		}
		mid, err := Route(srcEff, dstEff)
		if err != nil {
			return nil, ErrHostUnreach
		}
		path = append(append(prefix, mid...), suffix...)
	}
	pendingParts := 1 // the wire flow
	partDone := func(struct{}) {
		pendingParts--
		if pendingParts == 0 {
			k.Schedule(lat, func() { fut.Set(struct{}{}) })
		}
	}
	if srcCPU != nil && n.CPUCostPerByte > 0 && bytes > 0 {
		pendingParts++
		srcCPU.ServeAsync(n.CPUCostPerByte * bytes).OnDone(partDone)
	}
	if dstCPU != nil && peer.CPUCostPerByte > 0 && bytes > 0 {
		pendingParts++
		dstCPU.ServeAsync(peer.CPUCostPerByte * bytes).OnDone(partDone)
	}
	net.StartFlow(path, bytes, maxRate).Done().OnDone(partDone)
	return fut, nil
}

// Send is SendTo + blocking wait.
func (n *NIC) Send(p *sim.Proc, dst IP, bytes float64, maxRate float64, hostCPU *sim.PS) error {
	fut, err := n.SendTo(dst, bytes, maxRate, hostCPU, hostCPU)
	if err != nil {
		return err
	}
	fut.Wait(p)
	return nil
}
