package fabric

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeQPSnapshot hunts decoder panics with a roundtrip oracle:
// corrupted, truncated or stale-epoch snapshots must fail cleanly with
// ErrSnapshotCorrupt (the ladder demotes to the hotplug rung on any decode
// error — a panic would wedge the migration instead). Any input the decoder
// accepts must re-encode to exactly the bytes it was decoded from: the wire
// format has no redundant representations, so decode ∘ encode is the
// identity on valid snapshots.
func FuzzDecodeQPSnapshot(f *testing.F) {
	f.Add([]byte(nil))
	f.Add((&QPSnapshot{}).Encode())
	f.Add((&QPSnapshot{HCAName: "hca1", Epoch: 1, LID: 1}).Encode())
	seed := (&QPSnapshot{HCAName: "agc-ib-n00/hca", Epoch: 7, LID: 3, QPs: []QPState{
		{QPN: 1, RemoteLID: 2, RemoteQPN: 9, Connected: true, SendCredit: 64, Pending: 0},
		{QPN: 4, RemoteLID: 0, RemoteQPN: 0, Connected: false, SendCredit: 1, Pending: 63},
	}}).Encode()
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // truncated record
	f.Add(append(append([]byte{}, seed...), 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeQPSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("decode failed with %v, want ErrSnapshotCorrupt", err)
			}
			return
		}
		if again := s.Encode(); !bytes.Equal(again, data) {
			t.Fatalf("decode/encode not the identity:\n in:  %x\n out: %x", data, again)
		}
	})
}
