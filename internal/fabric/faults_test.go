package fabric

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestWaitActiveTimeoutExpires(t *testing.T) {
	k := sim.NewKernel()
	_, h, _ := newIBTestbed(k)
	h.InjectTrainingStall(120 * sim.Second)
	h.PowerOn()
	k.Go("w", func(p *sim.Proc) {
		err := h.WaitActiveTimeout(p, 10*sim.Second)
		if !errors.Is(err, ErrTrainingTimeout) {
			t.Errorf("err = %v, want ErrTrainingTimeout", err)
		}
		if p.Now() != 10*sim.Second {
			t.Errorf("timed out at %v, want 10s", p.Now())
		}
	})
	k.Run()
	// The port still comes up eventually, at the stalled training time.
	if h.State() != PortActive {
		t.Fatalf("state = %v, want Active after stalled training", h.State())
	}
	if got, want := k.Now(), DefaultIBTrainingTime+120*sim.Second; got != want {
		t.Fatalf("active at %v, want %v", got, want)
	}
}

func TestTrainingStallConsumedOnce(t *testing.T) {
	k := sim.NewKernel()
	_, h, _ := newIBTestbed(k)
	h.InjectTrainingStall(60 * sim.Second)
	h.PowerOn()
	k.Run()
	first := k.Now()
	if first != DefaultIBTrainingTime+60*sim.Second {
		t.Fatalf("first training took %v, want %v", first, DefaultIBTrainingTime+60*sim.Second)
	}
	// A power cycle after the stall trains at the normal rate again.
	h.PowerOff()
	h.PowerOn()
	k.Run()
	if got, want := k.Now()-first, DefaultIBTrainingTime; got != want {
		t.Fatalf("second training took %v, want %v", got, want)
	}
}

func TestFlapRetrainsWithFreshLID(t *testing.T) {
	k := sim.NewKernel()
	_, h, _ := newIBTestbed(k)
	h.PowerOn()
	k.Run()
	lid1 := h.LID()
	h.Flap()
	if h.State() != PortPolling {
		t.Fatalf("state after Flap = %v, want Polling", h.State())
	}
	k.Run()
	if h.State() != PortActive {
		t.Fatalf("state = %v, want Active after retraining", h.State())
	}
	if h.LID() == lid1 {
		t.Fatal("LID unchanged across flap; want a fresh assignment")
	}
}
