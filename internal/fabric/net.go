// Package fabric models cluster interconnects at flow level: links with
// bandwidth and latency, max-min fair sharing among concurrent flows, and
// technology-specific device models (InfiniBand HCAs with a link-training
// state machine, Ethernet NICs, para-virtualized virtio-net).
package fabric

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Link is a unidirectional pipe with a bandwidth capacity and a propagation
// latency contribution. Bidirectional adapters are modelled as an up-link /
// down-link pair.
type Link struct {
	Name      string
	Bandwidth float64  // bytes per second
	Latency   sim.Time // one-way propagation + serialization setup cost
	net       *Network
	flows     map[*Flow]struct{}
}

// Flow is an in-progress transfer across a path of links. Its rate is
// recomputed by the network whenever the set of active flows changes.
type Flow struct {
	path      []*Link
	remaining float64
	rate      float64
	maxRate   float64 // 0 = uncapped
	done      *sim.Future[struct{}]
	cancelled bool
}

// Done returns the future resolved when the flow finishes.
func (f *Flow) Done() *sim.Future[struct{}] { return f.done }

// Remaining returns the bytes left to transfer (as of the last network
// recomputation; call Network.Sync for an up-to-date value).
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the flow's current max-min fair rate in bytes per second.
func (f *Flow) Rate() float64 { return f.rate }

// Network performs max-min fair bandwidth allocation across all active
// flows. All links of a simulated deployment belong to one Network.
type Network struct {
	k          *sim.Kernel
	links      []*Link
	trunks     []*Trunk
	flows      map[*Flow]struct{}
	lastUpdate sim.Time
	pending    sim.Event
}

// NewNetwork returns an empty network bound to k.
func NewNetwork(k *sim.Kernel) *Network {
	return &Network{k: k, flows: make(map[*Flow]struct{})}
}

// Kernel returns the simulation kernel the network runs on.
func (n *Network) Kernel() *sim.Kernel { return n.k }

// NewLink creates a link with the given capacity (bytes/sec) and latency.
func (n *Network) NewLink(name string, bandwidth float64, latency sim.Time) *Link {
	if bandwidth <= 0 {
		panic(fmt.Sprintf("fabric: link %q with non-positive bandwidth", name))
	}
	l := &Link{Name: name, Bandwidth: bandwidth, Latency: latency, net: n, flows: make(map[*Flow]struct{})}
	n.links = append(n.links, l)
	return l
}

// PathLatency returns the summed latency of the path.
func PathLatency(path []*Link) sim.Time {
	var t sim.Time
	for _, l := range path {
		t += l.Latency
	}
	return t
}

// StartFlow begins a transfer of the given number of bytes along path.
// The path's summed latency elapses first (propagation), then the payload
// is served at the flow's max-min fair rate. maxRate caps the flow's rate
// (0 = uncapped). The returned flow's Done future resolves on completion.
//
// A zero-byte flow completes after just the path latency. An empty path is
// an intra-memory transfer and completes immediately.
func (n *Network) StartFlow(path []*Link, bytes float64, maxRate float64) *Flow {
	for _, l := range path {
		if l.net != n {
			panic("fabric: StartFlow with link from another network")
		}
	}
	f := &Flow{
		path:      path,
		remaining: bytes,
		maxRate:   maxRate,
		done:      sim.NewFuture[struct{}](n.k),
	}
	lat := PathLatency(path)
	if bytes <= 0 || len(path) == 0 {
		n.k.Schedule(lat, func() { f.done.Set(struct{}{}) })
		return f
	}
	n.k.Schedule(lat, func() {
		if f.cancelled {
			return
		}
		n.sync()
		n.flows[f] = struct{}{}
		for _, l := range f.path {
			l.flows[f] = struct{}{}
		}
		n.replan()
	})
	return f
}

// Transfer runs a flow and blocks the calling process until it completes.
func (n *Network) Transfer(p *sim.Proc, path []*Link, bytes float64, maxRate float64) {
	n.StartFlow(path, bytes, maxRate).Done().Wait(p)
}

// Cancel aborts a flow; its Done future never resolves. Safe to call on a
// finished flow (no-op).
func (n *Network) Cancel(f *Flow) {
	if f.done.Done() || f.cancelled {
		return
	}
	f.cancelled = true
	if _, active := n.flows[f]; active {
		n.sync()
		n.removeFlow(f)
		n.replan()
	}
}

// Sync advances flow accounting to the current simulated time, so that
// Remaining() values are current.
func (n *Network) Sync() { n.sync() }

// ActiveFlows returns the number of flows currently in their bandwidth phase.
func (n *Network) ActiveFlows() int { return len(n.flows) }

func (n *Network) removeFlow(f *Flow) {
	delete(n.flows, f)
	for _, l := range f.path {
		delete(l.flows, f)
	}
}

// sync advances every flow's remaining bytes at its current rate.
func (n *Network) sync() {
	now := n.k.Now()
	if now == n.lastUpdate {
		return
	}
	elapsed := (now - n.lastUpdate).Seconds()
	for f := range n.flows {
		f.remaining -= f.rate * elapsed
	}
	n.lastUpdate = now
}

const flowEpsilon = 1e-6

// replan completes finished flows, recomputes max-min fair rates and
// schedules the next completion event.
func (n *Network) replan() {
	var finished []*Flow
	for f := range n.flows {
		if f.remaining <= flowEpsilon {
			finished = append(finished, f)
		}
	}
	for _, f := range finished {
		n.removeFlow(f)
		f.done.Set(struct{}{})
	}
	n.pending.Cancel()
	n.pending = sim.Event{}
	if len(n.flows) == 0 {
		return
	}
	n.computeRates()
	next := sim.MaxTime
	for f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		// +1ns guards against float rounding short; saturate, don't wrap.
		dt := sim.FromSeconds(f.remaining / f.rate).SaturatingAdd(1)
		if dt < next {
			next = dt
		}
	}
	if next == sim.MaxTime {
		return // all flows stalled or absurdly slow; nothing to schedule
	}
	n.pending = n.k.Schedule(next, func() {
		n.pending = sim.Event{}
		n.sync()
		n.replan()
	})
}

// computeRates performs max-min fair allocation with per-flow caps
// (progressive filling / waterfilling).
func (n *Network) computeRates() {
	unassigned := make(map[*Flow]struct{}, len(n.flows))
	for f := range n.flows {
		f.rate = 0
		unassigned[f] = struct{}{}
	}
	remCap := make(map[*Link]float64)
	cnt := make(map[*Link]int)
	for _, l := range n.links {
		if len(l.flows) == 0 {
			continue
		}
		remCap[l] = l.Bandwidth
		cnt[l] = len(l.flows)
	}
	for len(unassigned) > 0 {
		// Fair share if we saturated the tightest link now.
		share := math.Inf(1)
		for l, c := range cnt {
			if c > 0 {
				if s := remCap[l] / float64(c); s < share {
					share = s
				}
			}
		}
		// Flows capped below the share settle first at their cap.
		progressed := false
		for f := range unassigned {
			if f.maxRate > 0 && f.maxRate <= share {
				f.rate = f.maxRate
				for _, l := range f.path {
					remCap[l] -= f.maxRate
					cnt[l]--
				}
				delete(unassigned, f)
				progressed = true
			}
		}
		if progressed {
			continue
		}
		if math.IsInf(share, 1) {
			// No constraining link (shouldn't happen: every flow has links).
			for f := range unassigned {
				f.rate = f.maxRate
				delete(unassigned, f)
			}
			return
		}
		// Saturate the bottleneck link(s): fix every unassigned flow that
		// crosses a link whose fair share equals the minimum.
		const tol = 1e-9
		for l, c := range cnt {
			if c <= 0 {
				continue
			}
			if remCap[l]/float64(c) <= share*(1+tol) {
				for f := range l.flows {
					if _, ok := unassigned[f]; !ok {
						continue
					}
					f.rate = share
					for _, pl := range f.path {
						remCap[pl] -= share
						cnt[pl]--
					}
					delete(unassigned, f)
				}
			}
		}
	}
}
