package fabric

import (
	"testing"

	"repro/internal/sim"
)

func newIBTestbed(k *sim.Kernel) (*IBSubnet, *HCA, *HCA) {
	n := NewNetwork(k)
	sw := n.NewSwitch("ibsw", InfiniBand)
	sub := NewIBSubnet(sw)
	h1 := sub.NewHCA("hca1", 4e9)
	h2 := sub.NewHCA("hca2", 4e9)
	return sub, h1, h2
}

func TestHCALinkTraining(t *testing.T) {
	k := sim.NewKernel()
	_, h, _ := newIBTestbed(k)
	if h.State() != PortDown {
		t.Fatalf("initial state = %v, want Down", h.State())
	}
	h.PowerOn()
	if h.State() != PortPolling {
		t.Fatalf("state after PowerOn = %v, want Polling", h.State())
	}
	var activeAt sim.Time
	k.Go("w", func(p *sim.Proc) {
		if err := h.WaitActive(p); err != nil {
			t.Errorf("WaitActive: %v", err)
		}
		activeAt = p.Now()
	})
	k.Run()
	if h.State() != PortActive {
		t.Fatalf("state = %v, want Active", h.State())
	}
	if activeAt != DefaultIBTrainingTime {
		t.Fatalf("activeAt = %v, want %v", activeAt, DefaultIBTrainingTime)
	}
}

func TestWaitActiveOnDownPortErrors(t *testing.T) {
	k := sim.NewKernel()
	_, h, _ := newIBTestbed(k)
	k.Go("w", func(p *sim.Proc) {
		if err := h.WaitActive(p); err != ErrPortNotActive {
			t.Errorf("err = %v, want ErrPortNotActive", err)
		}
	})
	k.Run()
}

func TestLIDChangesAcrossPowerCycle(t *testing.T) {
	k := sim.NewKernel()
	_, h, _ := newIBTestbed(k)
	h.PowerOn()
	k.Run()
	lid1 := h.LID()
	h.PowerOff()
	if h.State() != PortDown || h.LID() != 0 {
		t.Fatalf("after PowerOff: state=%v lid=%v", h.State(), h.LID())
	}
	h.PowerOn()
	k.Run()
	lid2 := h.LID()
	if lid1 == lid2 {
		t.Fatalf("LID stable across power cycle (%v): paper relies on LIDs changing", lid1)
	}
}

func TestPowerOffDuringTrainingCancels(t *testing.T) {
	k := sim.NewKernel()
	_, h, _ := newIBTestbed(k)
	h.PowerOn()
	k.Schedule(sim.Second, func() { h.PowerOff() })
	k.Run()
	if h.State() != PortDown {
		t.Fatalf("state = %v, want Down", h.State())
	}
}

func TestDoublePowerOnPanics(t *testing.T) {
	k := sim.NewKernel()
	_, h, _ := newIBTestbed(k)
	h.PowerOn()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.PowerOn()
}

func TestQPSendBetweenHCAs(t *testing.T) {
	k := sim.NewKernel()
	_, h1, h2 := newIBTestbed(k)
	h1.PowerOn()
	h2.PowerOn()
	var done sim.Time
	k.Go("sender", func(p *sim.Proc) {
		h1.WaitActive(p)
		h2.WaitActive(p)
		qp1, err := h1.CreateQP()
		if err != nil {
			t.Errorf("CreateQP: %v", err)
			return
		}
		qp2, err := h2.CreateQP()
		if err != nil {
			t.Errorf("CreateQP: %v", err)
			return
		}
		if err := qp1.Connect(h2.LID(), qp2.QPN()); err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		start := p.Now()
		if err := qp1.Send(p, 4e9); err != nil { // 4 GB at 4 GB/s ≈ 1 s
			t.Errorf("Send: %v", err)
			return
		}
		done = p.Now() - start
	})
	k.Run()
	if !approx(done, sim.Second, 1e-3) {
		t.Fatalf("transfer took %v, want ~1s", done)
	}
}

func TestQPOnInactivePort(t *testing.T) {
	k := sim.NewKernel()
	_, h, _ := newIBTestbed(k)
	if _, err := h.CreateQP(); err != ErrPortNotActive {
		t.Fatalf("CreateQP on down port: err = %v, want ErrPortNotActive", err)
	}
}

func TestQPDestroyedByPowerOff(t *testing.T) {
	k := sim.NewKernel()
	_, h1, h2 := newIBTestbed(k)
	h1.PowerOn()
	h2.PowerOn()
	k.Run()
	qp1, _ := h1.CreateQP()
	qp2, _ := h2.CreateQP()
	if err := qp1.Connect(h2.LID(), qp2.QPN()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	h1.PowerOff()
	if _, err := qp1.PostSend(100); err != ErrQPDestroyed {
		t.Fatalf("PostSend after PowerOff: err = %v, want ErrQPDestroyed", err)
	}
	if qp1.Connected() {
		t.Fatal("QP still connected after PowerOff")
	}
}

func TestStaleLIDDetected(t *testing.T) {
	// Peer power-cycles: its old LID must become unroutable, so a QP still
	// holding it fails with ErrStaleLID. This is the state the paper's BTL
	// reconstruction recovers from.
	k := sim.NewKernel()
	_, h1, h2 := newIBTestbed(k)
	h1.PowerOn()
	h2.PowerOn()
	k.Run()
	qp1, _ := h1.CreateQP()
	qp2, _ := h2.CreateQP()
	if err := qp1.Connect(h2.LID(), qp2.QPN()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	h2.PowerOff()
	h2.PowerOn()
	k.Run()
	if _, err := qp1.PostSend(100); err != ErrStaleLID {
		t.Fatalf("PostSend to re-trained peer: err = %v, want ErrStaleLID", err)
	}
}

func TestConnectToUnknownLID(t *testing.T) {
	k := sim.NewKernel()
	_, h1, _ := newIBTestbed(k)
	h1.PowerOn()
	k.Run()
	qp, _ := h1.CreateQP()
	if err := qp.Connect(LID(9999), 1); err != ErrStaleLID {
		t.Fatalf("err = %v, want ErrStaleLID", err)
	}
}

func TestUnconnectedQPSendFails(t *testing.T) {
	k := sim.NewKernel()
	_, h1, _ := newIBTestbed(k)
	h1.PowerOn()
	k.Run()
	qp, _ := h1.CreateQP()
	if _, err := qp.PostSend(1); err != ErrQPNotConnected {
		t.Fatalf("err = %v, want ErrQPNotConnected", err)
	}
}

func TestQPNsUniqueAndFreshAfterCycle(t *testing.T) {
	k := sim.NewKernel()
	_, h, _ := newIBTestbed(k)
	h.PowerOn()
	k.Run()
	qpA, _ := h.CreateQP()
	qpB, _ := h.CreateQP()
	if qpA.QPN() == qpB.QPN() {
		t.Fatal("duplicate QPNs")
	}
	h.PowerOff()
	h.PowerOn()
	k.Run()
	qpC, _ := h.CreateQP()
	if qpC.QPN() == qpA.QPN() || qpC.QPN() == qpB.QPN() {
		t.Fatal("QPN reused across power cycle")
	}
}

func TestPortStateString(t *testing.T) {
	if PortDown.String() != "Down" || PortPolling.String() != "Polling" || PortActive.String() != "Active" {
		t.Fatal("PortState.String broken")
	}
}
