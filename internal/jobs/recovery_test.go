package jobs_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/jobs"
)

// seedRecord writes a record straight to the state directory, as a dead
// daemon incarnation would have left it.
func seedRecord(t *testing.T, dir string, r *jobs.Record) {
	t.Helper()
	s, err := jobs.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(r); err != nil {
		t.Fatal(err)
	}
}

func hasEvent(rec jobs.Record, kind string) bool {
	for _, ev := range rec.Events {
		if ev.Kind == kind {
			return true
		}
	}
	return false
}

func TestRecoverPendingAtBoot(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	seedRecord(t, dir, &jobs.Record{
		ID: "p1", State: jobs.Pending, Directive: json.RawMessage(`{}`),
		Submitted: now, Updated: now,
		Events: []jobs.Event{{Seq: 1, Wall: now, Kind: jobs.EventSubmitted}},
	})
	m := startMgr(t, fastCfg(dir, okHandler(`"recovered"`)))
	rec := waitState(t, m, "p1", jobs.Done)
	if string(rec.Result) != `"recovered"` || rec.Interrupts != 0 {
		t.Fatalf("recovered pending job: %+v", rec)
	}
}

func TestStalePickedReclaimedAtBoot(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	seedRecord(t, dir, &jobs.Record{
		ID: "s1", State: jobs.Picked, Directive: json.RawMessage(`{}`),
		Submitted: now.Add(-time.Minute), Updated: now.Add(-time.Minute),
		Owner: "ghost-1234-dead", LeaseUntil: now.Add(-time.Second),
		Attempts: 1,
	})
	m := startMgr(t, fastCfg(dir, okHandler(`"ok"`)))
	rec := waitState(t, m, "s1", jobs.Done)
	if !hasEvent(rec, jobs.EventReclaimed) {
		t.Fatalf("no reclaimed event: %+v", rec.Events)
	}
	// The ghost's claim counted an attempt; the re-run counted another.
	if rec.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", rec.Attempts)
	}
}

func TestFreshLeaseWaitsForJanitor(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	// The ghost's lease is still live at boot: the boot scan must leave the
	// job alone, and only the janitor may reclaim it once the lease lapses.
	seedRecord(t, dir, &jobs.Record{
		ID: "f1", State: jobs.Picked, Directive: json.RawMessage(`{}`),
		Submitted: now, Updated: now,
		Owner: "ghost-1234-dead", LeaseUntil: now.Add(150 * time.Millisecond),
		Attempts: 1,
	})
	m := startMgr(t, fastCfg(dir, okHandler(`"ok"`)))
	rec, err := m.Get("f1")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != jobs.Picked || rec.Owner != "ghost-1234-dead" {
		t.Fatalf("boot scan stole a live lease: %+v", rec)
	}
	rec = waitState(t, m, "f1", jobs.Done)
	if !hasEvent(rec, jobs.EventReclaimed) {
		t.Fatalf("no reclaimed event after lease lapse: %+v", rec.Events)
	}
}

func TestRunningInterruptedAtBoot(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	seedRecord(t, dir, &jobs.Record{
		ID: "r1", State: jobs.Running, Directive: json.RawMessage(`{}`),
		Submitted: now, Updated: now,
		Owner: "ghost-1234-dead", LeaseUntil: now.Add(time.Minute),
		Attempts: 1,
	})
	m := startMgr(t, fastCfg(dir, okHandler(`"rerun"`)))
	rec := waitState(t, m, "r1", jobs.Done)
	if rec.Interrupts != 1 {
		t.Fatalf("interrupts = %d, want 1", rec.Interrupts)
	}
	if !hasEvent(rec, jobs.EventInterrupted) {
		t.Fatalf("no interrupted event: %+v", rec.Events)
	}
	if string(rec.Result) != `"rerun"` {
		t.Fatalf("result = %s", rec.Result)
	}
}

// TestCrashMidRunRecovers is the kill-and-restart test at package level:
// Abandon freezes the state directory exactly as kill -9 would (the
// record is on disk as running, mid-attempt), and a second manager over
// the same directory must recover and finish the job.
func TestCrashMidRunRecovers(t *testing.T) {
	dir := t.TempDir()
	entered := make(chan struct{})
	stall := make(chan struct{})
	h1 := func(ctx context.Context, rec jobs.Record, emit func(jobs.Event)) (json.RawMessage, error) {
		close(entered)
		<-stall // never released: the "crash" happens first
		return nil, ctx.Err()
	}
	m1, err := jobs.New(fastCfg(dir, h1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Start(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m1.Submit("crash-1", json.RawMessage(`{"kind":"evacuate"}`)); err != nil {
		t.Fatal(err)
	}
	<-entered
	waitState(t, m1, "crash-1", jobs.Running)
	m1.Abandon()
	close(stall)

	// The disk must show the job mid-run — the crash lost nothing, and
	// persisted nothing after the fact.
	s, _ := jobs.NewStore(dir)
	onDisk, err := s.Load("crash-1")
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State != jobs.Running {
		t.Fatalf("on-disk state after crash = %s, want running", onDisk.State)
	}

	m2 := startMgr(t, fastCfg(dir, okHandler(`{"report":"identical"}`)))
	rec := waitState(t, m2, "crash-1", jobs.Done)
	if rec.Interrupts != 1 {
		t.Fatalf("interrupts = %d, want 1", rec.Interrupts)
	}
	if !hasEvent(rec, jobs.EventInterrupted) {
		t.Fatalf("no interrupted event: %+v", rec.Events)
	}
	if string(rec.Directive) != `{"kind":"evacuate"}` {
		t.Fatalf("directive lost across crash: %s", rec.Directive)
	}
	if string(rec.Result) != `{"report":"identical"}` {
		t.Fatalf("result = %s", rec.Result)
	}
}

func TestCorruptRecordDoesNotBrickBoot(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "mangled.json"), []byte(`{"id": "mangl`), 0o644); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	seedRecord(t, dir, &jobs.Record{
		ID: "good", State: jobs.Pending, Directive: json.RawMessage(`{}`),
		Submitted: now, Updated: now,
	})
	m := startMgr(t, fastCfg(dir, okHandler(`"ok"`)))
	waitState(t, m, "good", jobs.Done)
	if _, err := m.Get("mangled"); err == nil {
		t.Fatal("corrupt record surfaced as a job")
	}
}
