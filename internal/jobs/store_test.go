package jobs_test

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/jobs"
)

func TestStoreRoundTrip(t *testing.T) {
	s, err := jobs.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	r := &jobs.Record{
		ID: "job-1", State: jobs.Pending,
		Directive: json.RawMessage(`{"kind":"evacuate"}`),
		Submitted: now, Updated: now, Attempts: 2,
		Events: []jobs.Event{{Seq: 1, Wall: now, Kind: jobs.EventSubmitted}},
	}
	if err := s.Save(r); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.State != jobs.Pending || got.Attempts != 2 || len(got.Events) != 1 {
		t.Fatalf("round trip mangled record: %+v", got)
	}
	if string(got.Directive) != `{"kind":"evacuate"}` {
		t.Fatalf("directive = %s", got.Directive)
	}
}

func TestStoreLoadMissing(t *testing.T) {
	s, _ := jobs.NewStore(t.TempDir())
	if _, err := s.Load("nope"); !errors.Is(err, jobs.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestStoreLoadAllOrderAndTmpCleanup(t *testing.T) {
	dir := t.TempDir()
	s, _ := jobs.NewStore(dir)
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i, id := range []string{"c", "a", "b"} {
		r := &jobs.Record{ID: id, State: jobs.Pending, Submitted: base.Add(time.Duration(2-i) * time.Second)}
		if err := s.Save(r); err != nil {
			t.Fatal(err)
		}
	}
	// A torn write from a crash mid-save must be swept, and garbage must
	// not break the scan.
	if err := os.WriteFile(filepath.Join(dir, "torn.json.tmp"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := s.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].ID != "b" || recs[1].ID != "a" || recs[2].ID != "c" {
		t.Fatalf("wrong order: %v", ids(recs))
	}
	if len(skipped) != 1 || skipped[0] != "bad.json" {
		t.Fatalf("skipped = %v", skipped)
	}
	if _, err := os.Stat(filepath.Join(dir, "torn.json.tmp")); !os.IsNotExist(err) {
		t.Fatal("torn tmp file not swept")
	}
}

func TestStoreDelete(t *testing.T) {
	s, _ := jobs.NewStore(t.TempDir())
	r := &jobs.Record{ID: "x", State: jobs.Done}
	if err := s.Save(r); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("x"); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := s.Load("x"); !errors.Is(err, jobs.ErrNotFound) {
		t.Fatalf("want ErrNotFound after delete, got %v", err)
	}
}

func TestValidID(t *testing.T) {
	for id, want := range map[string]bool{
		"job-1":       true,
		"A.b_c-9":     true,
		"":            false,
		"-leading":    false,
		".hidden":     false,
		"has space":   false,
		"path/../etc": false,
	} {
		if got := jobs.ValidID(id); got != want {
			t.Errorf("ValidID(%q) = %v, want %v", id, got, want)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	if jobs.ValidID(string(long)) {
		t.Error("65-char id accepted")
	}
}

func ids(recs []*jobs.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.ID
	}
	return out
}
