package jobs_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/jobs"
)

// fastCfg returns a manager config tuned for test speed: short lease,
// tight polling, millisecond backoff.
func fastCfg(dir string, h jobs.Handler) jobs.Config {
	return jobs.Config{
		Dir: dir, Handler: h,
		Lease: 250 * time.Millisecond, Poll: 2 * time.Millisecond,
		Backoff: 3 * time.Millisecond, HardGrace: 500 * time.Millisecond,
		MaxAttempts: 3, Workers: 2,
	}
}

func startMgr(t *testing.T, cfg jobs.Config) *jobs.Manager {
	t.Helper()
	m, err := jobs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Abandon)
	return m
}

func waitState(t *testing.T, m *jobs.Manager, id string, want jobs.State) jobs.Record {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.State == want {
			return rec
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (want %s): %+v", id, rec.State, want, rec.Events)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func okHandler(result string) jobs.Handler {
	return func(ctx context.Context, rec jobs.Record, emit func(jobs.Event)) (json.RawMessage, error) {
		return json.RawMessage(result), nil
	}
}

func TestTransitionTable(t *testing.T) {
	all := []jobs.State{jobs.Pending, jobs.Picked, jobs.Running, jobs.Done, jobs.Failed, jobs.Cancelled}
	legal := map[[2]jobs.State]bool{
		{jobs.Pending, jobs.Picked}:    true, // claim
		{jobs.Pending, jobs.Cancelled}: true, // cancel before pick-up
		{jobs.Picked, jobs.Running}:    true, // execution begins
		{jobs.Picked, jobs.Pending}:    true, // lease reclaim
		{jobs.Picked, jobs.Cancelled}:  true, // cancel raced the claim
		{jobs.Running, jobs.Done}:      true, // success
		{jobs.Running, jobs.Failed}:    true, // budget spent
		{jobs.Running, jobs.Cancelled}: true, // cancel mid-run
		{jobs.Running, jobs.Pending}:   true, // retry / interrupt / reclaim
	}
	for _, from := range all {
		for _, to := range all {
			want := legal[[2]jobs.State{from, to}]
			if got := jobs.CanTransition(from, to); got != want {
				t.Errorf("CanTransition(%s, %s) = %v, want %v", from, to, got, want)
			}
		}
	}
	for _, s := range all {
		if !s.Valid() {
			t.Errorf("%s not Valid()", s)
		}
	}
	if jobs.State("bogus").Valid() {
		t.Error("bogus state Valid()")
	}
	for _, s := range []jobs.State{jobs.Done, jobs.Failed, jobs.Cancelled} {
		if !s.Terminal() {
			t.Errorf("%s not Terminal()", s)
		}
	}
	for _, s := range []jobs.State{jobs.Pending, jobs.Picked, jobs.Running} {
		if s.Terminal() {
			t.Errorf("%s Terminal()", s)
		}
	}
}

func TestLifecycleDone(t *testing.T) {
	m := startMgr(t, fastCfg(t.TempDir(), okHandler(`{"ok":true}`)))
	rec, created, err := m.Submit("job-1", json.RawMessage(`{"kind":"noop"}`))
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	if rec.State != jobs.Pending {
		t.Fatalf("fresh job state = %s", rec.State)
	}
	done := waitState(t, m, "job-1", jobs.Done)
	if string(done.Result) != `{"ok":true}` {
		t.Fatalf("result = %s", done.Result)
	}
	if done.Attempts != 1 || done.Interrupts != 0 {
		t.Fatalf("attempts=%d interrupts=%d", done.Attempts, done.Interrupts)
	}
	var kinds []string
	for i, ev := range done.Events {
		if ev.Seq != i+1 {
			t.Fatalf("event seq not dense: %+v", done.Events)
		}
		kinds = append(kinds, ev.Kind)
	}
	want := []string{jobs.EventSubmitted, jobs.EventPicked, jobs.EventRunning, jobs.EventDone}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
	// The terminal record must be on disk, matching the in-memory view.
	s, _ := jobs.NewStore(m.Dir())
	onDisk, err := s.Load("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State != jobs.Done || string(onDisk.Result) != `{"ok":true}` {
		t.Fatalf("on-disk record: %+v", onDisk)
	}
}

func TestSubmitIdempotent(t *testing.T) {
	m := startMgr(t, fastCfg(t.TempDir(), okHandler(`1`)))
	if _, created, err := m.Submit("dup", json.RawMessage(`{"a": 1}`)); err != nil || !created {
		t.Fatalf("first submit: %v %v", created, err)
	}
	// Same directive (modulo whitespace): idempotent, not recreated.
	rec, created, err := m.Submit("dup", json.RawMessage(`{"a":1}`))
	if err != nil || created {
		t.Fatalf("resubmit: created=%v err=%v", created, err)
	}
	if rec.ID != "dup" {
		t.Fatalf("resubmit returned %q", rec.ID)
	}
	// Different directive under the same ID: typed conflict.
	var mismatch *jobs.MismatchError
	if _, _, err := m.Submit("dup", json.RawMessage(`{"a":2}`)); !errors.As(err, &mismatch) {
		t.Fatalf("want MismatchError, got %v", err)
	}
	// Bad IDs and bad JSON are rejected up front.
	if _, _, err := m.Submit("../escape", json.RawMessage(`{}`)); err == nil {
		t.Fatal("path-escaping id accepted")
	}
	if _, _, err := m.Submit("okid", json.RawMessage(`{nope`)); err == nil {
		t.Fatal("invalid JSON accepted")
	}
	// Empty ID gets a generated one.
	rec, created, err = m.Submit("", json.RawMessage(`{}`))
	if err != nil || !created || rec.ID == "" {
		t.Fatalf("generated-id submit: %+v %v %v", rec, created, err)
	}
}

func TestRetryBackoffThenDone(t *testing.T) {
	var calls atomic.Int32
	h := func(ctx context.Context, rec jobs.Record, emit func(jobs.Event)) (json.RawMessage, error) {
		if calls.Add(1) < 3 {
			return nil, fmt.Errorf("transient %d", calls.Load())
		}
		return json.RawMessage(`"ok"`), nil
	}
	m := startMgr(t, fastCfg(t.TempDir(), h))
	m.Submit("flaky", json.RawMessage(`{}`))
	rec := waitState(t, m, "flaky", jobs.Done)
	if rec.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", rec.Attempts)
	}
	retries := 0
	for _, ev := range rec.Events {
		if ev.Kind == jobs.EventRetry {
			retries++
		}
	}
	if retries != 2 {
		t.Fatalf("retry events = %d, want 2; trail: %+v", retries, rec.Events)
	}
	if rec.Error != "" {
		t.Fatalf("error not cleared on success: %q", rec.Error)
	}
}

func TestRetriesExhausted(t *testing.T) {
	h := func(ctx context.Context, rec jobs.Record, emit func(jobs.Event)) (json.RawMessage, error) {
		return nil, errors.New("permanent")
	}
	m := startMgr(t, fastCfg(t.TempDir(), h))
	m.Submit("doomed", json.RawMessage(`{}`))
	rec := waitState(t, m, "doomed", jobs.Failed)
	if rec.Attempts != 3 || rec.Error != "permanent" {
		t.Fatalf("attempts=%d error=%q", rec.Attempts, rec.Error)
	}
}

func TestCancelPending(t *testing.T) {
	// Not started: jobs stay pending, so cancellation hits the
	// pending→cancelled edge deterministically.
	m, err := jobs.New(fastCfg(t.TempDir(), okHandler(`1`)))
	if err != nil {
		t.Fatal(err)
	}
	m.Submit("c1", json.RawMessage(`{}`))
	rec, err := m.Cancel("c1")
	if err != nil || rec.State != jobs.Cancelled {
		t.Fatalf("cancel pending: %s %v", rec.State, err)
	}
	// Idempotent on terminal jobs.
	rec, err = m.Cancel("c1")
	if err != nil || rec.State != jobs.Cancelled {
		t.Fatalf("re-cancel: %s %v", rec.State, err)
	}
	if _, err := m.Cancel("ghost"); !errors.Is(err, jobs.ErrNotFound) {
		t.Fatalf("cancel missing: %v", err)
	}
}

func TestCancelRunning(t *testing.T) {
	running := make(chan struct{})
	h := func(ctx context.Context, rec jobs.Record, emit func(jobs.Event)) (json.RawMessage, error) {
		close(running)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	m := startMgr(t, fastCfg(t.TempDir(), h))
	m.Submit("c2", json.RawMessage(`{}`))
	<-running
	waitState(t, m, "c2", jobs.Running)
	if _, err := m.Cancel("c2"); err != nil {
		t.Fatal(err)
	}
	rec := waitState(t, m, "c2", jobs.Cancelled)
	if !rec.CancelRequested {
		t.Fatal("CancelRequested not recorded")
	}
}

func TestStopDrainsInFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	h := func(ctx context.Context, rec jobs.Record, emit func(jobs.Event)) (json.RawMessage, error) {
		close(started)
		<-release
		return json.RawMessage(`"drained"`), nil
	}
	m := startMgr(t, fastCfg(t.TempDir(), h))
	m.Submit("d1", json.RawMessage(`{}`))
	<-started
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	if err := m.Stop(context.Background()); err != nil {
		t.Fatalf("stop: %v", err)
	}
	rec, _ := m.Get("d1")
	if rec.State != jobs.Done || string(rec.Result) != `"drained"` {
		t.Fatalf("drained job: %s %s", rec.State, rec.Result)
	}
	if _, _, err := m.Submit("late", json.RawMessage(`{}`)); err == nil {
		t.Fatal("submit accepted after Stop")
	}
}

func TestStopDeadlineInterruptsToCheckpoint(t *testing.T) {
	started := make(chan struct{})
	h := func(ctx context.Context, rec jobs.Record, emit func(jobs.Event)) (json.RawMessage, error) {
		close(started)
		<-ctx.Done() // honors cancellation, but never finishes on its own
		return nil, ctx.Err()
	}
	m := startMgr(t, fastCfg(t.TempDir(), h))
	m.Submit("d2", json.RawMessage(`{}`))
	<-started
	waitState(t, m, "d2", jobs.Running)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := m.Stop(ctx); err != nil {
		t.Fatalf("stop: %v", err)
	}
	// The drained job must be checkpointed as interrupted-pending — a
	// clean restart point, indistinguishable from a crash except nothing
	// un-persisted was lost.
	rec, _ := m.Get("d2")
	if rec.State != jobs.Pending || rec.Interrupts != 1 {
		t.Fatalf("interrupted job: state=%s interrupts=%d", rec.State, rec.Interrupts)
	}
	s, _ := jobs.NewStore(m.Dir())
	onDisk, err := s.Load("d2")
	if err != nil || onDisk.State != jobs.Pending || onDisk.Interrupts != 1 {
		t.Fatalf("on-disk checkpoint: %+v err=%v", onDisk, err)
	}
}

func TestWatchStreamsToTerminal(t *testing.T) {
	h := func(ctx context.Context, rec jobs.Record, emit func(jobs.Event)) (json.RawMessage, error) {
		emit(jobs.Event{Kind: "batch", Detail: "batch 1/1", Sim: 36.5})
		return json.RawMessage(`"ok"`), nil
	}
	cfg := fastCfg(t.TempDir(), h)
	m, err := jobs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Abandon)
	m.Submit("w1", json.RawMessage(`{}`))
	replay, tail, off, err := m.Watch("w1", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer off()
	if len(replay) != 1 || replay[0].Kind != jobs.EventSubmitted {
		t.Fatalf("replay = %+v", replay)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	var live []jobs.Event
	timeout := time.After(10 * time.Second)
	for tail != nil {
		select {
		case ev, ok := <-tail:
			if !ok {
				tail = nil
				break
			}
			live = append(live, ev)
		case <-timeout:
			t.Fatalf("stream never closed; got %+v", live)
		}
	}
	var kinds []string
	for _, ev := range live {
		kinds = append(kinds, ev.Kind)
	}
	want := []string{jobs.EventPicked, jobs.EventRunning, "batch", jobs.EventDone}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("live kinds = %v, want %v", kinds, want)
	}
	if live[2].Sim != 36.5 {
		t.Fatalf("handler event sim time lost: %+v", live[2])
	}
	// Watching a terminal job replays everything with no live tail.
	replay, tail, off2, err := m.Watch("w1", 0)
	if err != nil || tail != nil {
		t.Fatalf("terminal watch: tail=%v err=%v", tail, err)
	}
	defer off2()
	if len(replay) != 5 {
		t.Fatalf("terminal replay %d events, want 5: %+v", len(replay), replay)
	}
}
