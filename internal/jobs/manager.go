package jobs

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Handler executes one job attempt. It receives a snapshot of the record
// (safe to keep), must honor ctx cancellation at whatever boundaries it
// can, and may emit trail events through emit (Seq and Wall are filled in
// by the manager). A nil error commits the returned result; an error
// consumes one attempt.
type Handler func(ctx context.Context, rec Record, emit func(Event)) (json.RawMessage, error)

// Config tunes a Manager. The zero value of every field except Dir and
// Handler selects the documented default.
type Config struct {
	// Dir is the state directory (required).
	Dir string
	// Handler executes job attempts (required).
	Handler Handler
	// Workers is the number of concurrent executors (default 2).
	Workers int
	// Lease is how long a claim stays valid without renewal (default
	// 30s). Workers renew at Lease/3; a lease that lapses marks its
	// holder dead and the job reclaimable.
	Lease time.Duration
	// MaxAttempts bounds executions per job, counting the first
	// (default 3).
	MaxAttempts int
	// Backoff is the base retry delay, doubling per failed attempt
	// (default 500ms, capped at Backoff<<6).
	Backoff time.Duration
	// Poll is the worker idle re-scan interval (default 100ms).
	Poll time.Duration
	// HardGrace bounds how long Stop waits for handlers after cancelling
	// their contexts (default 5s).
	HardGrace time.Duration
	// Owner names this daemon incarnation in leases and events (default
	// "<hostname>-<pid>-<random>").
	Owner string
	// Logf receives operational log lines (default: discarded).
	Logf func(format string, args ...any)
	// Now is the wall clock, overridable for tests (default time.Now).
	Now func() time.Time
}

// Manager owns the durable job lifecycle: idempotent submission, leased
// pick-up, asynchronous execution with bounded retry, cancellation,
// crash recovery and graceful drain. All disk writes happen under the
// manager's lock via the atomic Store, so the state directory always
// holds a consistent prefix of the lifecycle.
type Manager struct {
	cfg   Config
	store *Store
	owner string
	now   func() time.Time
	logf  func(string, ...any)

	mu       sync.Mutex
	recs     map[string]*Record
	active   map[string]context.CancelFunc // jobs with a live in-process worker
	watchers map[string][]chan Event

	wake chan struct{} // pokes idle workers after submit/requeue
	stop chan struct{} // closed by Stop/Abandon: stop claiming new work
	dead atomic.Bool   // Abandon: simulate kill -9 — no further disk writes

	wg          sync.WaitGroup
	stopOnce    sync.Once
	abandonOnce sync.Once
	started     bool
}

// New opens the state directory and builds a manager. Call Start to
// recover persisted jobs and begin executing.
func New(cfg Config) (*Manager, error) {
	if cfg.Handler == nil {
		return nil, errors.New("jobs: Config.Handler is required")
	}
	store, err := NewStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 30 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 500 * time.Millisecond
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 100 * time.Millisecond
	}
	if cfg.HardGrace <= 0 {
		cfg.HardGrace = 5 * time.Second
	}
	if cfg.Owner == "" {
		host, _ := os.Hostname()
		cfg.Owner = fmt.Sprintf("%s-%d-%s", host, os.Getpid(), randomHex(4))
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Manager{
		cfg:      cfg,
		store:    store,
		owner:    cfg.Owner,
		now:      cfg.Now,
		logf:     cfg.Logf,
		recs:     make(map[string]*Record),
		active:   make(map[string]context.CancelFunc),
		watchers: make(map[string][]chan Event),
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}, nil
}

// Owner returns the manager's incarnation name.
func (m *Manager) Owner() string { return m.owner }

// Dir returns the state directory.
func (m *Manager) Dir() string { return m.store.Dir() }

// Start recovers the state directory and launches the workers and the
// lease janitor. Recovery implements the restart invariants: pending
// jobs are re-queued as they are; picked jobs past their lease are
// reclaimed (an unexpired foreign lease is left for the janitor, which
// reclaims it the moment it lapses); running jobs are orphans of a dead
// incarnation — a state directory belongs to one daemon at a time — so
// they are marked interrupted and re-queued for deterministic
// re-execution.
func (m *Manager) Start() error {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return errors.New("jobs: manager already started")
	}
	m.started = true

	recs, skipped, err := m.store.LoadAll()
	if err != nil {
		m.mu.Unlock()
		return err
	}
	for _, name := range skipped {
		m.logf("jobs: skipping corrupt record %s", name)
	}
	now := m.now()
	var pending, reclaimed, interrupted int
	for _, r := range recs {
		m.recs[r.ID] = r
		switch r.State {
		case Pending:
			pending++
		case Picked:
			if r.LeaseUntil.After(now) {
				continue // lease still live; the janitor reclaims on expiry
			}
			r.Owner, r.LeaseUntil = "", time.Time{}
			m.eventLocked(r, Event{Kind: EventReclaimed,
				Detail: "stale lease at boot; re-queued"})
			if err := m.transitionLocked(r, Pending); err != nil {
				m.mu.Unlock()
				return err
			}
			reclaimed++
		case Running:
			r.Interrupts++
			r.Owner, r.LeaseUntil = "", time.Time{}
			m.eventLocked(r, Event{Kind: EventInterrupted,
				Detail: "found running at boot (previous daemon died); re-queued for deterministic re-execution"})
			if err := m.transitionLocked(r, Pending); err != nil {
				m.mu.Unlock()
				return err
			}
			interrupted++
		}
	}
	m.mu.Unlock()
	if pending+reclaimed+interrupted > 0 {
		m.logf("jobs: recovery: %d pending re-queued, %d stale picked reclaimed, %d interrupted running re-queued",
			pending, reclaimed, interrupted)
	}

	for i := 0; i < m.cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	m.wg.Add(1)
	go m.janitor()
	m.signal()
	return nil
}

// Submit records a job durably and queues it. An empty id is assigned a
// random one. Submission is idempotent: re-submitting an existing ID with
// the same directive returns the current record with created=false;
// a different directive under the same ID returns *MismatchError. The
// record is on disk before Submit returns — an accepted job survives any
// crash from this point on.
func (m *Manager) Submit(id string, directive json.RawMessage) (Record, bool, error) {
	if m.dead.Load() {
		return Record{}, false, errors.New("jobs: manager is down")
	}
	if m.stopping() {
		return Record{}, false, errors.New("jobs: manager is draining")
	}
	if id == "" {
		id = "j-" + randomHex(6)
	}
	if !ValidID(id) {
		return Record{}, false, fmt.Errorf("jobs: invalid job id %q", id)
	}
	dir, err := compactJSON(directive)
	if err != nil {
		return Record{}, false, fmt.Errorf("jobs: %s: directive is not valid JSON: %w", id, err)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.recs[id]; ok {
		if !bytes.Equal(r.Directive, dir) {
			return Record{}, false, &MismatchError{ID: id}
		}
		return r.Clone(), false, nil
	}
	now := m.now()
	r := &Record{ID: id, State: Pending, Directive: dir, Submitted: now, Updated: now}
	m.eventLocked(r, Event{Kind: EventSubmitted, Detail: "accepted"})
	if err := m.persistLocked(r); err != nil {
		return Record{}, false, err
	}
	m.recs[id] = r
	m.signal()
	return r.Clone(), true, nil
}

// Get returns a snapshot of the job.
func (m *Manager) Get(id string) (Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.recs[id]
	if !ok {
		return Record{}, fmt.Errorf("jobs: %s: %w", id, ErrNotFound)
	}
	return r.Clone(), nil
}

// List returns snapshots of every job, in submission order.
func (m *Manager) List() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, 0, len(m.recs))
	for _, r := range m.recs {
		out = append(out, r.Clone())
	}
	sortRecords(out)
	return out
}

// Counts tallies jobs per state.
func (m *Manager) Counts() map[State]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[State]int)
	for _, r := range m.recs {
		out[r.State]++
	}
	return out
}

// Cancel requests cancellation. A pending job cancels immediately; a
// picked or running job is flagged and its handler context cancelled, and
// the worker commits the cancellation at its next boundary. Cancelling a
// terminal job is a no-op returning the record.
func (m *Manager) Cancel(id string) (Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.recs[id]
	if !ok {
		return Record{}, fmt.Errorf("jobs: %s: %w", id, ErrNotFound)
	}
	switch r.State {
	case Pending:
		r.CancelRequested = true
		r.NotBefore = time.Time{}
		m.eventLocked(r, Event{Kind: EventCancelled, Detail: "cancelled while pending"})
		if err := m.transitionLocked(r, Cancelled); err != nil {
			return Record{}, err
		}
	case Picked, Running:
		if !r.CancelRequested {
			r.CancelRequested = true
			if err := m.persistLocked(r); err != nil {
				return Record{}, err
			}
			if cancel := m.active[id]; cancel != nil {
				cancel()
			}
		}
	}
	return r.Clone(), nil
}

// Watch returns the job's recorded events after fromSeq plus, for a
// non-terminal job, a channel tailing new ones. The channel closes when
// the job reaches a terminal state (or on Abandon). Call off() when done.
// A slow consumer that lets the 256-event buffer fill drops events —
// the durable record keeps the complete trail.
func (m *Manager) Watch(id string, fromSeq int) (replay []Event, tail <-chan Event, off func(), err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.recs[id]
	if !ok {
		return nil, nil, nil, fmt.Errorf("jobs: %s: %w", id, ErrNotFound)
	}
	for _, ev := range r.Events {
		if ev.Seq > fromSeq {
			replay = append(replay, ev)
		}
	}
	if r.State.Terminal() {
		return replay, nil, func() {}, nil
	}
	ch := make(chan Event, 256)
	m.watchers[id] = append(m.watchers[id], ch)
	off = func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		ws := m.watchers[id]
		for i, w := range ws {
			if w == ch {
				m.watchers[id] = append(ws[:i], ws[i+1:]...)
				break
			}
		}
	}
	return replay, ch, off, nil
}

// Stop drains the manager: no new jobs are claimed, in-flight handlers
// run to their next checkpointable boundary (normally completion). If ctx
// expires first, the in-flight handler contexts are cancelled and their
// jobs are persisted back to pending as interrupted — the state directory
// then holds a clean restart point, exactly as after a crash, except
// nothing was lost un-persisted. Stop only errors if a handler ignores
// its context past HardGrace.
func (m *Manager) Stop(ctx context.Context) error {
	m.stopOnce.Do(func() { close(m.stop) })
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	m.mu.Lock()
	for _, cancel := range m.active {
		if cancel != nil {
			cancel()
		}
	}
	m.mu.Unlock()
	select {
	case <-done:
		return nil
	case <-time.After(m.cfg.HardGrace):
		return fmt.Errorf("jobs: drain: handlers still running %v after cancel", m.cfg.HardGrace)
	}
}

// Abandon simulates kill -9 for tests and last-resort teardown: workers
// are cut loose, handler contexts cancelled, and — critically — nothing
// further is written to the state directory, so the on-disk records stay
// exactly as the "crash" left them. A later Manager over the same
// directory exercises the real recovery path.
func (m *Manager) Abandon() {
	m.abandonOnce.Do(func() {
		m.dead.Store(true)
		m.stopOnce.Do(func() { close(m.stop) })
		m.mu.Lock()
		for _, cancel := range m.active {
			if cancel != nil {
				cancel()
			}
		}
		for id, ws := range m.watchers {
			for _, ch := range ws {
				close(ch)
			}
			delete(m.watchers, id)
		}
		m.mu.Unlock()
	})
}

// --- internals ---

func (m *Manager) stopping() bool {
	select {
	case <-m.stop:
		return true
	default:
		return false
	}
}

func (m *Manager) signal() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// persistLocked saves the record unless the manager is "dead" (Abandon):
// a dead manager must leave the directory exactly as the crash did.
func (m *Manager) persistLocked(r *Record) error {
	if m.dead.Load() {
		return nil
	}
	return m.store.Save(r)
}

// transitionLocked validates and commits a state change durably. Callers
// mutate the record's auxiliary fields first so one atomic save covers
// the whole transition.
func (m *Manager) transitionLocked(r *Record, to State) error {
	if !CanTransition(r.State, to) {
		return &TransitionError{ID: r.ID, From: r.State, To: to}
	}
	r.State = to
	r.Updated = m.now()
	if err := m.persistLocked(r); err != nil {
		return err
	}
	if to.Terminal() {
		for _, ch := range m.watchers[r.ID] {
			close(ch)
		}
		delete(m.watchers, r.ID)
	}
	return nil
}

// eventLocked appends a trail event (stamping Seq and Wall) and notifies
// watchers. It does not persist — the caller's next transitionLocked (or
// the job's completion) carries the event to disk.
func (m *Manager) eventLocked(r *Record, ev Event) {
	ev.Seq = len(r.Events) + 1
	ev.Wall = m.now()
	r.Events = append(r.Events, ev)
	for _, ch := range m.watchers[r.ID] {
		select {
		case ch <- ev:
		default: // slow consumer: drop; the record keeps the full trail
		}
	}
}

// appendEvent is the handler emit callback target.
func (m *Manager) appendEvent(id string, ev Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.recs[id]; ok {
		m.eventLocked(r, ev)
	}
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		if m.stopping() {
			return
		}
		id, wait := m.claim()
		if id == "" {
			timer := time.NewTimer(wait)
			select {
			case <-m.stop:
				timer.Stop()
				return
			case <-m.wake:
				timer.Stop()
			case <-timer.C:
			}
			continue
		}
		m.runOne(id)
	}
}

// claim picks the oldest eligible pending job and moves it to picked
// under a fresh lease. It returns ("", wait) when nothing is claimable,
// where wait is bounded by the nearest retry backoff gate.
func (m *Manager) claim() (string, time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	wait := m.cfg.Poll
	var best *Record
	for _, r := range m.recs {
		if r.State != Pending {
			continue
		}
		if r.NotBefore.After(now) {
			if d := r.NotBefore.Sub(now); d < wait {
				wait = d
			}
			continue
		}
		if best == nil || r.Submitted.Before(best.Submitted) ||
			(r.Submitted.Equal(best.Submitted) && r.ID < best.ID) {
			best = r
		}
	}
	if best == nil {
		return "", wait
	}
	best.Attempts++
	best.Owner = m.owner
	best.LeaseUntil = now.Add(m.cfg.Lease)
	best.NotBefore = time.Time{}
	m.eventLocked(best, Event{Kind: EventPicked,
		Detail: fmt.Sprintf("claimed by %s (attempt %d/%d)", m.owner, best.Attempts, m.cfg.MaxAttempts)})
	if err := m.transitionLocked(best, Picked); err != nil {
		// Could not persist the claim: undo it and back off rather than
		// hot-loop against a broken disk.
		m.logf("jobs: %s: claim: %v", best.ID, err)
		best.State = Pending
		best.Attempts--
		best.Owner, best.LeaseUntil = "", time.Time{}
		return "", m.cfg.Poll
	}
	return best.ID, 0
}

// runOne executes one claimed job attempt end to end.
func (m *Manager) runOne(id string) {
	m.mu.Lock()
	r, ok := m.recs[id]
	if !ok || r.State != Picked {
		m.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if r.CancelRequested {
		r.Owner, r.LeaseUntil = "", time.Time{}
		m.eventLocked(r, Event{Kind: EventCancelled, Detail: "cancelled before execution"})
		if err := m.transitionLocked(r, Cancelled); err != nil {
			m.logf("jobs: %s: %v", id, err)
		}
		m.mu.Unlock()
		return
	}
	m.active[id] = cancel
	m.eventLocked(r, Event{Kind: EventRunning,
		Detail: fmt.Sprintf("attempt %d/%d", r.Attempts, m.cfg.MaxAttempts)})
	if err := m.transitionLocked(r, Running); err != nil {
		m.logf("jobs: %s: %v", id, err)
		delete(m.active, id)
		m.mu.Unlock()
		return
	}
	snapshot := r.Clone()
	m.mu.Unlock()

	renewDone := make(chan struct{})
	go m.renewLease(id, renewDone)
	result, err := m.cfg.Handler(ctx, snapshot, func(ev Event) { m.appendEvent(id, ev) })
	close(renewDone)

	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.active, id)
	if m.dead.Load() {
		return // abandoned: the on-disk record must stay as the crash left it
	}
	r, ok = m.recs[id]
	if !ok || r.State != Running {
		return // reclaimed out from under us (lease lapsed); the new owner decides
	}
	r.Owner, r.LeaseUntil = "", time.Time{}
	switch {
	case err == nil:
		r.Result = result
		r.Error = ""
		m.eventLocked(r, Event{Kind: EventDone, Detail: "directive complete"})
		err = m.transitionLocked(r, Done)
	case r.CancelRequested && errors.Is(err, context.Canceled):
		m.eventLocked(r, Event{Kind: EventCancelled, Detail: "cancelled mid-run"})
		err = m.transitionLocked(r, Cancelled)
	case errors.Is(err, context.Canceled):
		// Drained mid-run (Stop past its deadline): checkpoint at the job
		// boundary — back to pending for this or the next incarnation.
		r.Interrupts++
		m.eventLocked(r, Event{Kind: EventInterrupted, Detail: "drained mid-run; re-queued"})
		err = m.transitionLocked(r, Pending)
	case r.Attempts >= m.cfg.MaxAttempts:
		r.Error = err.Error()
		m.eventLocked(r, Event{Kind: EventFailed,
			Detail: fmt.Sprintf("attempt %d/%d failed: %v; attempt budget spent", r.Attempts, m.cfg.MaxAttempts, err)})
		err = m.transitionLocked(r, Failed)
	default:
		backoff := m.cfg.Backoff << uint(min(r.Attempts-1, 6))
		r.Error = err.Error()
		r.NotBefore = m.now().Add(backoff)
		m.eventLocked(r, Event{Kind: EventRetry,
			Detail: fmt.Sprintf("attempt %d/%d failed: %v; retrying in %v", r.Attempts, m.cfg.MaxAttempts, r.Error, backoff)})
		err = m.transitionLocked(r, Pending)
		m.signal()
	}
	if err != nil {
		m.logf("jobs: %s: %v", id, err)
	}
}

// renewLease keeps a claimed job's lease fresh while its handler runs, so
// only a dead incarnation's leases ever lapse.
func (m *Manager) renewLease(id string, done <-chan struct{}) {
	interval := m.cfg.Lease / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
			m.mu.Lock()
			if r, ok := m.recs[id]; ok && (r.State == Picked || r.State == Running) && r.Owner == m.owner {
				r.LeaseUntil = m.now().Add(m.cfg.Lease)
				if err := m.persistLocked(r); err != nil {
					m.logf("jobs: %s: lease renew: %v", id, err)
				}
			}
			m.mu.Unlock()
		}
	}
}

// janitor periodically reclaims picked/running jobs whose lease lapsed
// without a live in-process worker — the runtime-side counterpart of the
// boot-time recovery scan (it also picks up leases that were still fresh
// at boot).
func (m *Manager) janitor() {
	defer m.wg.Done()
	interval := m.cfg.Lease / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 5*time.Second {
		interval = 5 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			m.reclaimStale()
		}
	}
}

func (m *Manager) reclaimStale() {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	for _, r := range m.recs {
		if r.State != Picked && r.State != Running {
			continue
		}
		if _, live := m.active[r.ID]; live {
			continue // renewals cover it; never steal from a live worker
		}
		if r.LeaseUntil.After(now) {
			continue
		}
		if r.State == Running {
			r.Interrupts++
		}
		from := r.State
		r.Owner, r.LeaseUntil = "", time.Time{}
		m.eventLocked(r, Event{Kind: EventReclaimed,
			Detail: fmt.Sprintf("lease expired while %s; re-queued", from)})
		if err := m.transitionLocked(r, Pending); err != nil {
			m.logf("jobs: %s: reclaim: %v", r.ID, err)
			continue
		}
		m.signal()
	}
}

func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic(err) // crypto/rand failing means the platform is broken
	}
	return hex.EncodeToString(b)
}

func compactJSON(raw json.RawMessage) (json.RawMessage, error) {
	if len(raw) == 0 {
		return json.RawMessage("{}"), nil
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return nil, err
	}
	return json.RawMessage(buf.Bytes()), nil
}

func sortRecords(recs []Record) {
	for i := 1; i < len(recs); i++ { // insertion sort: lists are small
		for j := i; j > 0; j-- {
			a, b := &recs[j-1], &recs[j]
			if a.Submitted.Before(b.Submitted) ||
				(a.Submitted.Equal(b.Submitted) && a.ID <= b.ID) {
				break
			}
			recs[j-1], recs[j] = recs[j], recs[j-1]
		}
	}
}
