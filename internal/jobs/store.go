package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store persists job records as one JSON file per job under a state
// directory. Every save writes a temp file, fsyncs it and renames it over
// the record, so a reader — including a daemon restarted after kill -9 —
// only ever sees a complete record: either the pre-transition one or the
// post-transition one, never a torn write.
type Store struct{ dir string }

// NewStore opens (creating if needed) the state directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("jobs: state directory not set")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: state dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(id string) string { return filepath.Join(s.dir, id+".json") }

// Save atomically persists the record.
func (s *Store) Save(r *Record) error {
	if !ValidID(r.ID) {
		return fmt.Errorf("jobs: invalid job id %q", r.ID)
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: %s: marshal: %w", r.ID, err)
	}
	path := s.path(r.ID)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: %s: %w", r.ID, err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobs: %s: %w", r.ID, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobs: %s: sync: %w", r.ID, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: %s: %w", r.ID, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: %s: %w", r.ID, err)
	}
	// Durability of the rename itself: fsync the directory, best effort
	// (some filesystems refuse; the rename is still atomic without it).
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Load reads one record. A missing file reports ErrNotFound.
func (s *Store) Load(id string) (*Record, error) {
	if !ValidID(id) {
		return nil, fmt.Errorf("jobs: invalid job id %q", id)
	}
	data, err := os.ReadFile(s.path(id))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("jobs: %s: %w", id, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("jobs: %s: %w", id, err)
	}
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("jobs: %s: corrupt record: %w", id, err)
	}
	// The indented on-disk form re-indents embedded raw JSON; normalize it
	// back to the compact form Submit stored, so byte comparisons (the
	// idempotency check, result diffs) behave identically across a restart.
	for _, raw := range []*json.RawMessage{&r.Directive, &r.Result} {
		if len(*raw) == 0 {
			continue
		}
		var buf bytes.Buffer
		if err := json.Compact(&buf, *raw); err != nil {
			return nil, fmt.Errorf("jobs: %s: corrupt record: %w", id, err)
		}
		*raw = append((*raw)[:0], buf.Bytes()...)
	}
	return &r, nil
}

// LoadAll reads every record in the directory, sorted by submission time
// then ID (the pick-up order). Leftover ".tmp" files from an interrupted
// save are skipped and removed; corrupt records are skipped and reported
// through skipped so a bad file cannot brick the daemon.
func (s *Store) LoadAll() (recs []*Record, skipped []string, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: scan state dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(s.dir, name)) // torn write from a crash
			continue
		}
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		r, lerr := s.Load(id)
		if lerr != nil {
			skipped = append(skipped, name)
			continue
		}
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].Submitted.Equal(recs[j].Submitted) {
			return recs[i].Submitted.Before(recs[j].Submitted)
		}
		return recs[i].ID < recs[j].ID
	})
	return recs, skipped, nil
}

// Delete removes a record (no error if absent).
func (s *Store) Delete(id string) error {
	if !ValidID(id) {
		return fmt.Errorf("jobs: invalid job id %q", id)
	}
	err := os.Remove(s.path(id))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}
