// Package jobs is a durable, filesystem-backed asynchronous job manager:
// the persistence layer under the ninjad control-plane daemon. Every
// accepted directive becomes a job record on disk, written atomically
// (temp file + rename) on every state transition, so a crashed daemon —
// kill -9 included — restarts with the exact set of accepted, in-flight
// and finished jobs it had before, and loses none.
//
// The lifecycle follows the fs/kv-backed async-job-manager pattern of
// object-store reconstructors (auklet-style pick-up/commit/clean):
//
//	submit → pending → picked → running → done | failed | cancelled
//	                     │         │
//	                     │ lease   │ error (bounded retry, backoff)
//	                     │ expiry  │ interrupt (daemon died / drained)
//	                     └────► pending ◄┘
//
// A worker claims a pending job by moving it to picked under a wall-clock
// lease it keeps renewing; a lease that stops being renewed (the daemon
// died) makes the job reclaimable. On boot the manager scans the state
// directory: pending jobs are re-queued, picked jobs past their lease are
// reclaimed, and running jobs — necessarily orphans of a dead incarnation,
// since a state directory belongs to one daemon at a time — are marked
// interrupted and re-queued for deterministic re-execution (the ninja
// fleet simulation is a pure function of the directive, so a re-run
// converges on the same report the lost run would have produced).
package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"regexp"
	"time"
)

// State is a job's lifecycle position.
type State string

const (
	// Pending: accepted and durable, waiting for a worker (or for its
	// retry backoff gate NotBefore to pass).
	Pending State = "pending"
	// Picked: claimed by a worker under a lease, not yet executing.
	Picked State = "picked"
	// Running: the handler is executing the directive.
	Running State = "running"
	// Done: the handler succeeded; Result holds its output.
	Done State = "done"
	// Failed: the handler failed and the attempt budget is spent; Error
	// holds the last error.
	Failed State = "failed"
	// Cancelled: cancelled before completion (directly from pending, or
	// by interrupting a running handler).
	Cancelled State = "cancelled"
)

// Valid reports whether s is one of the six lifecycle states.
func (s State) Valid() bool {
	switch s {
	case Pending, Picked, Running, Done, Failed, Cancelled:
		return true
	}
	return false
}

// Terminal reports whether a job in this state will never run again.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Cancelled }

// validNext is the transition table. Picked→Pending is a lease
// reclamation; Running→Pending is a retry (handler error, budget left) or
// an interruption (daemon died or drained mid-run).
var validNext = map[State]map[State]bool{
	Pending: {Picked: true, Cancelled: true},
	Picked:  {Running: true, Pending: true, Cancelled: true},
	Running: {Done: true, Failed: true, Cancelled: true, Pending: true},
}

// CanTransition reports whether from → to is a legal lifecycle move.
func CanTransition(from, to State) bool { return validNext[from][to] }

// TransitionError reports an attempted illegal lifecycle move.
type TransitionError struct {
	ID       string
	From, To State
}

func (e *TransitionError) Error() string {
	return fmt.Sprintf("jobs: %s: illegal transition %s -> %s", e.ID, e.From, e.To)
}

// MismatchError reports an idempotent re-submission whose directive
// differs from the one already recorded under the same ID.
type MismatchError struct{ ID string }

func (e *MismatchError) Error() string {
	return fmt.Sprintf("jobs: %s: job exists with a different directive", e.ID)
}

// ErrNotFound reports an unknown job ID.
var ErrNotFound = errors.New("jobs: not found")

// Event is one entry of a job's trail: manager lifecycle marks plus
// whatever the handler emits (ninjad forwards the fleet executor's
// metrics.Event trail). Seq is 1-based and dense per job, so clients can
// resume a stream from the last sequence number they saw.
type Event struct {
	Seq     int       `json:"seq"`
	Wall    time.Time `json:"wall"`
	Kind    string    `json:"kind"`
	Phase   string    `json:"phase,omitempty"`
	Subject string    `json:"subject,omitempty"`
	Detail  string    `json:"detail,omitempty"`
	// Sim is the simulated-clock timestamp in seconds, for events that
	// carry one (the fleet trail does; lifecycle marks do not).
	Sim float64 `json:"sim_s,omitempty"`
}

// Manager-emitted lifecycle event kinds. Handler-emitted kinds ride
// through verbatim.
const (
	EventSubmitted   = "submitted"
	EventPicked      = "picked"
	EventRunning     = "running"
	EventRetry       = "retry"
	EventReclaimed   = "reclaimed"
	EventInterrupted = "interrupted"
	EventDone        = "done"
	EventFailed      = "failed"
	EventCancelled   = "cancelled"
)

// Record is one durable job. Everything a restarted daemon needs to
// resume — the directive, the lifecycle position, the attempt and
// interruption counters, the lease — lives here; the file on disk is the
// source of truth and is rewritten atomically on every transition.
type Record struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Directive is the opaque payload handed to the handler (ninjad
	// stores the fleet directive spec).
	Directive json.RawMessage `json:"directive,omitempty"`
	Submitted time.Time       `json:"submitted"`
	Updated   time.Time       `json:"updated"`
	// NotBefore gates a retried job's next pick-up (exponential backoff).
	NotBefore time.Time `json:"not_before,omitempty"`
	// LeaseUntil is the claim expiry while picked/running. A job whose
	// lease lapses without renewal belongs to a dead worker and is
	// reclaimable.
	LeaseUntil time.Time `json:"lease_until,omitempty"`
	// Owner names the daemon incarnation holding the lease.
	Owner string `json:"owner,omitempty"`
	// Attempts counts executions begun (picked), including the current.
	Attempts int `json:"attempts,omitempty"`
	// Interrupts counts times the job was found running by a recovery
	// scan or drained mid-flight and re-queued.
	Interrupts int `json:"interrupts,omitempty"`
	// CancelRequested marks a cancel that arrived while picked/running;
	// the worker honors it at the next boundary.
	CancelRequested bool            `json:"cancel_requested,omitempty"`
	Result          json.RawMessage `json:"result,omitempty"`
	Error           string          `json:"error,omitempty"`
	Events          []Event         `json:"events,omitempty"`
}

// Clone returns a deep-enough copy for handing outside the manager's
// lock: the event slice and raw JSON are copied, so later appends or
// transitions cannot race a reader.
func (r *Record) Clone() Record {
	out := *r
	out.Directive = append(json.RawMessage(nil), r.Directive...)
	out.Result = append(json.RawMessage(nil), r.Result...)
	out.Events = append([]Event(nil), r.Events...)
	return out
}

var idPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ValidID reports whether id is acceptable as a job ID (and therefore as
// a file name inside the state directory): 1-64 chars of
// [A-Za-z0-9._-], not starting with a punctuation character.
func ValidID(id string) bool { return idPattern.MatchString(id) }
