package churn

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Report is one churn run's outcome. The headline metric is
// CostIntegral — the time integral of the fleet-wide interconnect
// affinity deficit (ideal minus achieved, summed per VM over running
// jobs, in affinity-points·seconds). Lower is better; the adaptive
// policy spends migrations to buy it down.
type Report struct {
	Policy string `json:"policy"`
	Seed   int64  `json:"seed"`
	// Duration is the simulated span from epoch to the last departure
	// or rejection (plus any trailing migration work).
	Duration sim.Time `json:"duration_ns"`

	Arrived  int `json:"arrived"`
	Placed   int `json:"placed"`
	Rejected int `json:"rejected"` // placement-deadline misses
	Departed int `json:"departed"`

	// SwapMigs counts corrective destination-swap migrations executed;
	// FaultMigs counts re-placements after a node crash; MigBytes is
	// their summed wire payload. Faults counts node-crash injections.
	SwapMigs  int     `json:"swap_migs"`
	FaultMigs int     `json:"fault_migs"`
	Faults    int     `json:"faults"`
	MigBytes  float64 `json:"mig_bytes"`

	// CostIntegral is ∫ affinity-deficit dt; AvgCost is the integral
	// over the run duration (time-weighted mean deficit).
	CostIntegral float64 `json:"cost_integral"`
	AvgCost      float64 `json:"avg_cost"`

	// Placement latency (queue wait of first-time placements),
	// nearest-rank percentiles. WaitTotal also folds in the queue time
	// of fault re-placements — the run's summed service interruption.
	WaitP50   sim.Time `json:"wait_p50_ns"`
	WaitP95   sim.Time `json:"wait_p95_ns"`
	WaitMax   sim.Time `json:"wait_max_ns"`
	WaitTotal sim.Time `json:"wait_total_ns"`

	waits []sim.Time
}

// finalize computes the wait percentiles from the recorded queue waits.
func (r *Report) finalize() {
	if len(r.waits) == 0 {
		return
	}
	w := append([]sim.Time(nil), r.waits...)
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	r.WaitP50 = nearestRank(w, 50)
	r.WaitP95 = nearestRank(w, 95)
	r.WaitMax = w[len(w)-1]
}

// nearestRank is the nearest-rank percentile over sorted samples — the
// same convention as the simfarm Dist aggregator, so churn rows read
// like sweep rows.
func nearestRank(sorted []sim.Time, pct int) sim.Time {
	if len(sorted) == 0 {
		return 0
	}
	rank := (pct*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// JSON renders the report in a stable byte order (struct field order,
// integer nanosecond times) — the byte-identity surface the ninjad and
// simfarm layers compare across backends and re-executions.
func (r Report) JSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Sprintf("{%q:%q}", "error", err.Error())
	}
	return string(b)
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf(
		"churn[%s seed=%d]: %d arrived, %d placed, %d rejected, %d departed; %d swap-migs, %d fault-migs; cost=%.0f (avg %.1f); wait p50=%v p95=%v",
		r.Policy, r.Seed, r.Arrived, r.Placed, r.Rejected, r.Departed,
		r.SwapMigs, r.FaultMigs, r.CostIntegral, r.AvgCost, r.WaitP50, r.WaitP95)
}
