package churn

import (
	"math"
	"testing"

	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/hw"
	"repro/internal/sim"
)

// rig is one churn deployment: an IB site and an Ethernet site over a
// fresh kernel. The IB site comes first in candidate order, so the
// greedy baseline burns IB slots on whatever arrives first.
type rig struct {
	k    *sim.Kernel
	topo *fleet.Topology
}

func newRig(backend sim.Backend, nfs float64) *rig {
	k := sim.NewKernelWith(sim.Options{Backend: backend})
	tb := hw.NewTestbed(k)
	ib := tb.AddCluster("ib", 4, hw.AGCNodeSpec)
	ethSpec := hw.AGCNodeSpec
	ethSpec.IBBandwidth = 0
	eth := tb.AddCluster("eth", 4, ethSpec)
	topo := fleet.NewTopology(
		&fleet.Site{Name: "ib", Nodes: ib.Nodes, SlotsPerNode: 2, WANBandwidth: 1.25e9},
		&fleet.Site{Name: "eth", Nodes: eth.Nodes, SlotsPerNode: 2, WANBandwidth: 1.25e9},
	)
	topo.NFSBandwidth = nfs
	return &rig{k: k, topo: topo}
}

func defaultWorkload(seed int64) Workload {
	return Workload{
		Seed:         seed,
		Jobs:         48,
		ArrivalRate:  0.5,
		MeanLifetime: 90 * sim.Second,
		MaxVMs:       2,
		IBFraction:   0.5,
	}
}

func runOnce(t *testing.T, backend sim.Backend, opts Options) Report {
	t.Helper()
	r := newRig(backend, 0)
	defer r.k.Close()
	eng, err := New(r.k, r.topo, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := eng.Run()
	if !eng.Done().Done() {
		t.Fatalf("engine did not finish: %+v", rep)
	}
	return rep
}

// The arrival schedule is a pure function of the workload spec: same
// seed, same schedule; the empirical arrival rate tracks the spec over
// many draws (a property of the exponential sampler, not of the
// engine).
func TestWorkloadScheduleDeterministicAndCalibrated(t *testing.T) {
	w := Workload{Seed: 7, Jobs: 4000, ArrivalRate: 2.0}
	a, b := w.schedule(), w.schedule()
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	span := a[len(a)-1].at.Seconds()
	got := float64(len(a)) / span
	if math.Abs(got-2.0) > 0.15 {
		t.Fatalf("empirical arrival rate %.3f/s, want ≈2/s", got)
	}
	other := Workload{Seed: 8, Jobs: 4000, ArrivalRate: 2.0}.schedule()
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// Lifetimes respect the configured bounds for every draw.
func TestWorkloadLifetimeBounds(t *testing.T) {
	w := Workload{Seed: 3, Jobs: 2000, MinLifetime: 20 * sim.Second, MaxLifetime: 40 * sim.Second}
	for _, a := range w.schedule() {
		if a.lifetime < 20*sim.Second || a.lifetime > 40*sim.Second {
			t.Fatalf("lifetime %v outside [20s, 40s]", a.lifetime)
		}
	}
}

// A churn run is byte-identical across kernel backends: the heap and
// timer-wheel queues execute the same events in the same (time, seq)
// order, and the engine consumes its PRNG before the clock starts.
func TestChurnDeterministicAcrossBackends(t *testing.T) {
	for _, pol := range []Policy{PolicyGreedy, PolicySwap} {
		opts := Options{Workload: defaultWorkload(11), Policy: pol}
		heap := runOnce(t, sim.BackendHeap, opts)
		wheel := runOnce(t, sim.BackendWheel, opts)
		if heap.JSON() != wheel.JSON() {
			t.Errorf("%v: backend reports differ:\nheap:  %s\nwheel: %s", pol, heap.JSON(), wheel.JSON())
		}
	}
}

// Repeated runs with the same seed are byte-identical; a different seed
// produces a different run.
func TestChurnSeedStability(t *testing.T) {
	opts := Options{Workload: defaultWorkload(5), Policy: PolicySwap}
	a := runOnce(t, sim.BackendHeap, opts)
	b := runOnce(t, sim.BackendHeap, opts)
	if a.JSON() != b.JSON() {
		t.Fatalf("same seed, different reports:\n%s\n%s", a.JSON(), b.JSON())
	}
	opts.Workload.Seed = 6
	c := runOnce(t, sim.BackendHeap, opts)
	if a.JSON() == c.JSON() {
		t.Fatal("different seeds produced byte-identical reports")
	}
}

// The adaptive destination-swap policy buys down the time-weighted
// affinity deficit relative to the greedy baseline — the subsystem's
// headline claim — and pays for it with migrations.
func TestSwapBeatsGreedyOnAffinityCost(t *testing.T) {
	greedy := runOnce(t, sim.BackendHeap, Options{Workload: defaultWorkload(11), Policy: PolicyGreedy})
	swap := runOnce(t, sim.BackendHeap, Options{Workload: defaultWorkload(11), Policy: PolicySwap})
	if greedy.SwapMigs != 0 {
		t.Fatalf("greedy executed %d swap migrations, want 0", greedy.SwapMigs)
	}
	if swap.CostIntegral >= greedy.CostIntegral {
		t.Fatalf("swap cost %.0f not below greedy cost %.0f", swap.CostIntegral, greedy.CostIntegral)
	}
	if swap.SwapMigs == 0 {
		t.Fatal("swap policy executed no corrective migrations on a mixed workload")
	}
}

// Every job reaches a terminal state and the books balance.
func TestChurnConservation(t *testing.T) {
	for _, pol := range []Policy{PolicyGreedy, PolicySwap} {
		rep := runOnce(t, sim.BackendHeap, Options{Workload: defaultWorkload(2), Policy: pol})
		if rep.Arrived != 48 {
			t.Fatalf("%v: arrived %d, want 48", pol, rep.Arrived)
		}
		if rep.Departed+rep.Rejected != rep.Arrived {
			t.Fatalf("%v: departed %d + rejected %d != arrived %d", pol, rep.Departed, rep.Rejected, rep.Arrived)
		}
		if rep.Placed > rep.Arrived {
			t.Fatalf("%v: placed %d > arrived %d", pol, rep.Placed, rep.Arrived)
		}
	}
}

// A node crash evicts the jobs running there; the engine re-places them
// (counted as fault migrations) and the run still terminates
// deterministically.
func TestChurnNodeCrashEvictsAndReplaces(t *testing.T) {
	plan, err := faults.ParsePlan("node-crash@30s+120s:node=ib-n00")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	opts := Options{Workload: defaultWorkload(4), Policy: PolicySwap, Faults: plan}
	a := runOnce(t, sim.BackendHeap, opts)
	b := runOnce(t, sim.BackendWheel, opts)
	if a.JSON() != b.JSON() {
		t.Fatalf("faulted runs differ across backends:\n%s\n%s", a.JSON(), b.JSON())
	}
	if a.Faults != 1 {
		t.Fatalf("faults fired %d, want 1", a.Faults)
	}
	if a.FaultMigs == 0 {
		t.Fatal("node crash at 30s evicted nobody — expected fault re-placements")
	}
	if a.Departed+a.Rejected != a.Arrived {
		t.Fatalf("faulted run leaked jobs: departed %d + rejected %d != arrived %d",
			a.Departed, a.Rejected, a.Arrived)
	}
}

// Option validation rejects caller bugs with the typed error.
func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Workload: Workload{Jobs: -1}},
		{Workload: Workload{ArrivalRate: -0.5}},
		{Workload: Workload{IBFraction: 1.5}},
		{Workload: Workload{MinLifetime: 10 * sim.Second, MaxLifetime: 5 * sim.Second}},
		{MaxSwapsPerEvent: -1},
		{PlaceDeadline: -sim.Second},
	}
	for i, o := range bad {
		err := o.Validate()
		if err == nil {
			t.Errorf("case %d: invalid options accepted", i)
			continue
		}
		if _, ok := err.(*OptionsError); !ok {
			t.Errorf("case %d: error %T, want *OptionsError", i, err)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
}

// Pricing: a swap migration between WAN-constrained sites crosses both
// uplinks; with a cold model and a priced NFS server it also crosses
// the storage link.
func TestMigrationPricingLinks(t *testing.T) {
	r := newRig(sim.BackendHeap, 1e9)
	defer r.k.Close()
	eng, err := New(r.k, r.topo, Options{Workload: defaultWorkload(1), Model: fleet.CostModel{Cold: true}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j := &job{name: "j", ib: true, vms: 1, nodes: []*hw.Node{r.topo.Sites[1].Nodes[0]}}
	mig := eng.migrationFor(j, []*hw.Node{r.topo.Sites[0].Nodes[0]})
	want := map[string]bool{"wan:ib": true, "wan:eth": true, "nfs:shared": true}
	if len(mig.Links) != len(want) {
		t.Fatalf("links %v, want %v", mig.Links, want)
	}
	for _, l := range mig.Links {
		if !want[l] {
			t.Fatalf("unexpected link %q in %v", l, mig.Links)
		}
	}
	if mig.Bytes != eng.opts.Workload.VMBytes {
		t.Fatalf("bytes %g, want one VM payload %g", mig.Bytes, eng.opts.Workload.VMBytes)
	}
}

// Regression for the eviction accounting bug: evictFrom used to release
// a gang's slots and memory back to *every* node it ran on, including
// the crashed one — so the dead node's books showed schedulable
// capacity while it was down, and a restore stacked the stale release
// on top of the reset. Capacity on failed hardware must be stranded
// until reinstate rebuilds the books from ground truth.
func TestEvictFromStrandsFailedCapacity(t *testing.T) {
	r := newRig(sim.BackendHeap, 0)
	defer r.k.Close()
	eng, err := New(r.k, r.topo, Options{Workload: defaultWorkload(1)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	bad := r.topo.Sites[0].Nodes[0]
	good := r.topo.Sites[0].Nodes[1]
	j := &job{name: "gang", ib: true, vms: 2, lifetime: 60 * sim.Second, state: stateRunning, nodes: []*hw.Node{bad, good}}
	eng.jobs = append(eng.jobs, j)
	eng.take(bad)
	eng.take(good)
	full := siteSlots(r.topo, bad)
	if eng.slots[bad] != full-1 {
		t.Fatalf("setup: slots[bad] = %d, want %d", eng.slots[bad], full-1)
	}

	bad.Fail()
	eng.evictFrom(bad)

	// The crashed node's claim is stranded, not freed: its books still
	// show the evicted VM's slot as taken. The buggy release made this
	// full again.
	if eng.slots[bad] != full-1 {
		t.Fatalf("slots on failed node = %d after eviction, want %d (stranded)", eng.slots[bad], full-1)
	}
	if eng.mem[bad] != eng.opts.Workload.VMBytes {
		t.Fatalf("mem on failed node = %g after eviction, want one stranded VM (%g)", eng.mem[bad], eng.opts.Workload.VMBytes)
	}
	// The drain triggered by the eviction re-placed the gang, and only
	// on healthy nodes.
	if j.state != stateRunning {
		t.Fatalf("evicted gang not re-placed: state %v", j.state)
	}
	for _, d := range j.nodes {
		if d == bad || d.Failed() {
			t.Fatalf("gang re-placed onto failed node %s", d.Name)
		}
	}

	// Restore rebuilds the books from ground truth: no resident VMs on
	// the node, minus any relocation reservations still on the wire.
	eng.reserved[bad] = 1
	bad.Restore()
	eng.reinstate(bad)
	if eng.slots[bad] != full-1 {
		t.Fatalf("slots after reinstate = %d, want %d (full minus 1 reservation)", eng.slots[bad], full-1)
	}
	if eng.mem[bad] != eng.opts.Workload.VMBytes {
		t.Fatalf("mem after reinstate = %g, want one reserved VM (%g)", eng.mem[bad], eng.opts.Workload.VMBytes)
	}
	eng.reserved[bad] = 0
	eng.reinstate(bad)
	if eng.slots[bad] != full || eng.mem[bad] != 0 {
		t.Fatalf("slots/mem after clean reinstate = %d/%g, want %d/0", eng.slots[bad], eng.mem[bad], full)
	}
}
