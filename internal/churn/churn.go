// Package churn is an online, continuous-workload simulator layered on
// the fleet control plane. Where a fleet directive plans a batch of
// known jobs up front, churn drives the steady state of a heterogeneous
// data center: jobs arrive on a seeded Poisson process, live for a
// bounded random lifetime, and depart — and the placement engine has to
// decide, online, which nodes each gang lands on and whether to pay for
// corrective swap migrations as the mix drifts.
//
// Two placement policies are pluggable:
//
//   - PolicyGreedy: capacity-driven first-fit in node order — the
//     affinity-blind baseline an online bin-packer would produce.
//   - PolicySwap: best-fit by interconnect affinity on arrival, plus, on
//     every arrival and departure, up to MaxSwapsPerEvent affinity-
//     improving moves (gang relocations into free capacity and pairwise
//     destination swaps, after Avin et al., "Simple Destination-Swap
//     Strategies for Adaptive Intra- and Inter-Tenant VM Migration").
//     Each accepted move is priced through fleet.CostModel, sequenced
//     with fleet.PlanSequence against the topology's shared links, and
//     executed as an incremental mini-plan on the shared DES kernel.
//
// Everything runs on the simulated clock from one per-run PRNG: the
// whole arrival schedule is drawn up front in a fixed order, decisions
// iterate slices (never maps), and mini-plans execute at the sequencer's
// predicted batch times — so a run is byte-identical across kernel
// backends and host parallelism.
package churn

import (
	"fmt"
	"math/rand"

	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/sim"
)

// Policy selects the online placement algorithm.
type Policy int

const (
	// PolicyGreedy is first-fit in node order, no corrective migrations.
	PolicyGreedy Policy = iota
	// PolicySwap is affinity best-fit plus adaptive destination-swap
	// migrations on every arrival and departure.
	PolicySwap
)

// String returns the policy label.
func (p Policy) String() string {
	switch p {
	case PolicyGreedy:
		return "greedy"
	case PolicySwap:
		return "destination-swap"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// OptionsError reports an option field set to a value that is always a
// caller bug (mirrors fleet.OptionsError; the zero value of every
// tunable selects the documented default).
type OptionsError struct {
	Field  string
	Value  float64
	Reason string
}

func (e *OptionsError) Error() string {
	return fmt.Sprintf("churn: invalid %s %g: %s", e.Field, e.Value, e.Reason)
}

// Workload is the seeded arrival process: how jobs enter and leave the
// fleet. Every random draw comes from one rand.Rand seeded with Seed,
// consumed in a fixed order before the clock starts, so the schedule is
// a pure function of the spec.
type Workload struct {
	// Seed seeds the per-run PRNG (0 is a valid, fixed seed).
	Seed int64
	// Jobs is the total number of arrivals to generate (default 64).
	Jobs int
	// ArrivalRate is the Poisson arrival intensity in jobs per simulated
	// second (default 0.1 — one job every 10 s on average, which runs
	// the default two-site deployment at high-but-survivable utilization:
	// queues form, a few placements miss the deadline, most land).
	ArrivalRate float64
	// MeanLifetime is the exponential mean of a job's lifetime (default
	// 120 s), clamped to [MinLifetime, MaxLifetime].
	MeanLifetime sim.Time
	// MinLifetime / MaxLifetime bound the lifetime draw (defaults 10 s
	// and 600 s).
	MinLifetime sim.Time
	MaxLifetime sim.Time
	// MaxVMs bounds a job's gang size, drawn uniformly from [1, MaxVMs]
	// (default 2).
	MaxVMs int
	// IBFraction is the probability an arriving job is IB-capable
	// (default 0.5).
	IBFraction float64
	// VMBytes is one VM's wire payload for pricing migrations (default
	// 4 GiB of touched guest memory).
	VMBytes float64
}

func (w Workload) withDefaults() Workload {
	if w.Jobs <= 0 {
		w.Jobs = 64
	}
	if w.ArrivalRate <= 0 {
		w.ArrivalRate = 0.1
	}
	if w.MeanLifetime <= 0 {
		w.MeanLifetime = 120 * sim.Second
	}
	if w.MinLifetime <= 0 {
		w.MinLifetime = 10 * sim.Second
	}
	if w.MaxLifetime <= 0 {
		w.MaxLifetime = 600 * sim.Second
	}
	if w.MaxVMs <= 0 {
		w.MaxVMs = 2
	}
	if w.IBFraction <= 0 {
		w.IBFraction = 0.5
	}
	if w.VMBytes <= 0 {
		w.VMBytes = 4 * (1 << 30)
	}
	return w
}

// Validate rejects spec values that are always caller bugs.
func (w Workload) Validate() error {
	if w.Jobs < 0 {
		return &OptionsError{Field: "Workload.Jobs", Value: float64(w.Jobs),
			Reason: "arrival count must not be negative (0 selects the default)"}
	}
	if w.ArrivalRate < 0 {
		return &OptionsError{Field: "Workload.ArrivalRate", Value: w.ArrivalRate,
			Reason: "arrival rate must not be negative"}
	}
	if w.IBFraction > 1 {
		return &OptionsError{Field: "Workload.IBFraction", Value: w.IBFraction,
			Reason: "a probability cannot exceed 1"}
	}
	if w.MinLifetime > 0 && w.MaxLifetime > 0 && w.MinLifetime > w.MaxLifetime {
		return &OptionsError{Field: "Workload.MinLifetime", Value: w.MinLifetime.Seconds(),
			Reason: "lifetime floor above the ceiling"}
	}
	return nil
}

// arrival is one pre-drawn job arrival.
type arrival struct {
	name     string
	at       sim.Time
	lifetime sim.Time
	vms      int
	ib       bool
}

// schedule draws the full arrival schedule from one PRNG in a fixed
// order (per job: inter-arrival gap, lifetime, gang size, IB flag). The
// PRNG is exhausted before the clock starts, so event execution order
// can never perturb the workload.
func (w Workload) schedule() []arrival {
	w = w.withDefaults()
	rng := rand.New(rand.NewSource(w.Seed))
	out := make([]arrival, w.Jobs)
	var t sim.Time
	for i := range out {
		gap := sim.FromSeconds(rng.ExpFloat64() / w.ArrivalRate)
		t += gap
		life := sim.FromSeconds(rng.ExpFloat64() * w.MeanLifetime.Seconds())
		if life < w.MinLifetime {
			life = w.MinLifetime
		}
		if life > w.MaxLifetime {
			life = w.MaxLifetime
		}
		out[i] = arrival{
			name:     fmt.Sprintf("churn-%03d", i),
			at:       t,
			lifetime: life,
			vms:      1 + rng.Intn(w.MaxVMs),
			ib:       rng.Float64() < w.IBFraction,
		}
	}
	return out
}

// Options configures one churn run.
type Options struct {
	// Workload is the seeded arrival process.
	Workload Workload
	// Policy selects greedy or destination-swap placement.
	Policy Policy
	// MaxSwapsPerEvent bounds the corrective moves proposed per arrival
	// or departure under PolicySwap (default 2; ignored for greedy).
	MaxSwapsPerEvent int
	// PlaceDeadline bounds a job's queue wait: a job still unplaced
	// after this long is rejected and counted as a deadline miss
	// (default 60 s).
	PlaceDeadline sim.Time
	// Model prices swap and fault migrations (zero value → fleet
	// defaults). Set Model.Cold to stream re-placements through the
	// topology's NFS link.
	Model fleet.CostModel
	// Seq selects how mini-plan migrations overlap (default batched).
	Seq fleet.SeqPolicy
	// HealthPoll is the failed-node sweep interval while a fault plan is
	// armed (default 5 s).
	HealthPoll sim.Time
	// Faults is the node-fault script. Only node-crash specs apply — an
	// abstract churn job has no guest to aim a QMP or migrate-abort
	// fault at — and unsupported kinds are skipped with a log line.
	Faults faults.Plan
	// Log receives one line per engine decision (nil discards).
	Log func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	o.Workload = o.Workload.withDefaults()
	if o.MaxSwapsPerEvent <= 0 {
		o.MaxSwapsPerEvent = 2
	}
	if o.PlaceDeadline <= 0 {
		o.PlaceDeadline = 60 * sim.Second
	}
	if o.HealthPoll <= 0 {
		o.HealthPoll = 5 * sim.Second
	}
	if o.Seq == (fleet.SeqPolicy{}) {
		o.Seq = fleet.SeqPolicy{Batched: true}
	}
	return o
}

// Validate rejects option values that are always caller bugs.
func (o Options) Validate() error {
	if err := o.Workload.Validate(); err != nil {
		return err
	}
	if o.MaxSwapsPerEvent < 0 {
		return &OptionsError{Field: "Options.MaxSwapsPerEvent", Value: float64(o.MaxSwapsPerEvent),
			Reason: "swap budget must not be negative (0 selects the default)"}
	}
	if o.PlaceDeadline < 0 {
		return &OptionsError{Field: "Options.PlaceDeadline", Value: o.PlaceDeadline.Seconds(),
			Reason: "placement deadline must not be negative (0 selects the default)"}
	}
	if err := o.Seq.Validate(); err != nil {
		return err
	}
	return nil
}

// idealAffinity is the best per-VM score a job of this capability can
// achieve anywhere in the fleet: AffinityIB for IB-capable jobs,
// AffinityEth for TCP-only jobs (an IB slot would score lower for them).
func idealAffinity(ib bool) int {
	if ib {
		return fleet.AffinityIB
	}
	return fleet.AffinityEth
}

// deficit is the per-VM affinity cost of a concrete placement: ideal
// minus achieved, always ≥ 0. The time integral of the fleet-wide
// deficit is the run's headline metric.
func deficit(ib bool, achieved int) int {
	d := idealAffinity(ib) - achieved
	if d < 0 {
		return 0
	}
	return d
}
