package churn

import (
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/hw"
	"repro/internal/sim"
)

// jobState is where a churn job is in its lifecycle.
type jobState int

const (
	stateQueued jobState = iota
	stateRunning
	stateRejected
	stateDeparted
)

// job is one churn job: an abstract gang (no guest VMs are booted — the
// engine prices and times its migrations through the fleet sequencer,
// which only reads payload, fixed cost, rate and links).
type job struct {
	name     string
	ib       bool
	vms      int
	lifetime sim.Time
	arrived  sim.Time // arrival (or re-queue-after-fault) instant
	state    jobState
	nodes    []*hw.Node // one entry per VM while running
	wait     sim.Time   // queue wait actually paid before placement
	departEv sim.Event  // pending departure, cancelable on eviction
	deadline sim.Event  // pending queue-deadline, cancelable on placement
	evicted  bool       // re-queued by a node fault at least once
}

// moveGroup is one atomic corrective move: either a single-gang
// relocation into free capacity (destination slots reserved while the
// plan is on the wire) or a pairwise destination exchange between two
// equal-shape gangs (net-zero per node, nothing to reserve). The group
// commits all-or-nothing — a half-applied exchange would corrupt the
// occupancy books.
type moveGroup struct {
	jobs     []*job
	dsts     [][]*hw.Node
	exchange bool
}

// miniPlan is one queued unit of migration work: a priced sequence plus
// the move groups to land when the wire time has elapsed.
type miniPlan struct {
	seq    fleet.Sequence
	groups []*moveGroup
}

// Engine runs one churn workload over a fleet topology on the shared
// DES kernel.
type Engine struct {
	k    *sim.Kernel
	topo *fleet.Topology
	opts Options

	nodes    []*hw.Node           // candidate order: site order, then node order
	slots    map[*hw.Node]int     // free placement slots
	mem      map[*hw.Node]float64 // bytes of churn payload resident per node
	reserved map[*hw.Node]int     // relocation reservations on the wire, per destination

	jobs    []*job // every job, arrival order (stable iteration)
	queue   []*job // waiting for capacity, FIFO
	pending []*miniPlan
	busy    bool // a mini-plan is on the wire

	clock   sim.Time // last cost-integral checkpoint
	cost    float64  // ∫ fleet affinity deficit dt (points·seconds)
	rep     Report
	stopped bool
	done    *sim.Future[struct{}]
}

// New builds an engine over the topology. Sites are taken in topology
// order and nodes in site order — the deterministic candidate order both
// policies share.
func New(k *sim.Kernel, topo *fleet.Topology, opts Options) (*Engine, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	e := &Engine{
		k:        k,
		topo:     topo,
		opts:     opts,
		slots:    make(map[*hw.Node]int),
		mem:      make(map[*hw.Node]float64),
		reserved: make(map[*hw.Node]int),
		done:     sim.NewFuture[struct{}](k),
	}
	for _, s := range topo.Sites {
		for _, n := range s.Nodes {
			e.nodes = append(e.nodes, n)
			e.slots[n] = siteSlots(topo, n)
		}
	}
	if len(e.nodes) == 0 {
		return nil, fmt.Errorf("churn: topology has no nodes")
	}
	return e, nil
}

func siteSlots(topo *fleet.Topology, n *hw.Node) int {
	s := topo.SiteOf(n)
	if s == nil || s.SlotsPerNode < 1 {
		return 1
	}
	return s.SlotsPerNode
}

func (e *Engine) logf(format string, args ...any) {
	if e.opts.Log != nil {
		e.opts.Log(format, args...)
	}
}

// Run schedules the whole workload and drives the kernel until every
// job has departed or been rejected, then returns the report. The
// caller owns the kernel; Run uses k.Run, so no other open-ended procs
// should be left runnable.
func (e *Engine) Run() Report {
	e.Start()
	e.k.Run()
	return e.ReportNow()
}

// Start arms the workload on the kernel without driving it — for
// callers interleaving churn with other simulated activity. Done
// resolves when the run is complete.
func (e *Engine) Start() {
	sched := e.opts.Workload.schedule()
	e.rep.Policy = e.opts.Policy.String()
	e.rep.Seed = e.opts.Workload.Seed
	for i := range sched {
		a := sched[i]
		e.k.ScheduleAt(a.at, func() { e.onArrival(a) })
	}
	e.armFaults()
	if e.opts.Workload.Jobs == 0 {
		e.finish()
	}
}

// Done resolves once every job has departed or been rejected.
func (e *Engine) Done() *sim.Future[struct{}] { return e.done }

// armFaults schedules the plan's node-crash specs on the kernel.
// Targets name nodes; an empty target picks the first node. Kinds that
// need a guest VM or the shared store have nothing to bite on an
// abstract churn gang and are skipped with a log line.
func (e *Engine) armFaults() {
	for _, s := range e.opts.Faults.Specs {
		if s.Kind != faults.KindNodeCrash {
			e.logf("churn: skipping %s fault (no guest-level surface in the churn engine)", s.Kind)
			continue
		}
		n := e.pickNode(s.Target)
		if n == nil {
			e.logf("churn: node-crash target %q not in topology; skipped", s.Target)
			continue
		}
		spec := s
		e.k.ScheduleAt(spec.At, func() {
			n.Fail()
			e.rep.Faults++
			e.logf("churn: %v node %s down", e.k.Now(), n.Name)
			e.evictFrom(n)
		})
		if spec.For > 0 {
			e.k.ScheduleAt(spec.At+spec.For, func() {
				n.Restore()
				e.reinstate(n)
				e.logf("churn: %v node %s restored", e.k.Now(), n.Name)
				e.drainQueue()
				e.maybeSwap()
			})
		}
	}
}

func (e *Engine) pickNode(target string) *hw.Node {
	if target == "" {
		return e.nodes[0]
	}
	for _, n := range e.nodes {
		if n.Name == target {
			return n
		}
	}
	return nil
}

// onArrival admits one job: place it now or queue it under the
// placement deadline.
func (e *Engine) onArrival(a arrival) {
	j := &job{name: a.name, ib: a.ib, vms: a.vms, lifetime: a.lifetime, arrived: e.k.Now()}
	e.jobs = append(e.jobs, j)
	e.rep.Arrived++
	if e.place(j) {
		e.maybeSwap()
		return
	}
	e.enqueue(j)
	e.maybeSwap()
}

// enqueue parks an unplaceable job behind the placement deadline.
func (e *Engine) enqueue(j *job) {
	j.state = stateQueued
	e.queue = append(e.queue, j)
	jj := j
	j.deadline = e.k.Schedule(e.opts.PlaceDeadline, func() { e.onDeadline(jj) })
}

// onDeadline rejects a job that waited out its placement deadline.
func (e *Engine) onDeadline(j *job) {
	if j.state != stateQueued {
		return
	}
	e.removeQueued(j)
	j.state = stateRejected
	e.rep.Rejected++
	e.logf("churn: %v job %s rejected after %v in queue", e.k.Now(), j.name, e.opts.PlaceDeadline)
	e.checkDone()
}

// place tries to put the job's gang on nodes now. Greedy takes the
// first free slots in candidate order; swap takes the highest-affinity
// free slots. Returns false when capacity is short.
func (e *Engine) place(j *job) bool {
	dsts := e.findSlots(j)
	if dsts == nil {
		return false
	}
	e.accrue()
	for _, n := range dsts {
		e.take(n)
	}
	j.nodes = dsts
	j.state = stateRunning
	j.wait = e.k.Now() - j.arrived
	j.deadline.Cancel()
	j.deadline = sim.Event{}
	e.rep.WaitTotal += j.wait
	if j.evicted {
		e.rep.FaultMigs++
		e.rep.MigBytes += float64(j.vms) * e.opts.Workload.VMBytes
	} else {
		e.rep.Placed++
		e.rep.waits = append(e.rep.waits, j.wait)
	}
	jj := j
	j.departEv = e.k.Schedule(j.lifetime, func() { e.onDeparture(jj) })
	return true
}

// findSlots returns one healthy node per VM, respecting slot and memory
// headroom, nil when the gang does not fit. A gang may spread across
// nodes; a node with several free slots may hold several of its VMs.
func (e *Engine) findSlots(j *job) []*hw.Node {
	order := e.nodes
	if e.opts.Policy == PolicySwap {
		order = append([]*hw.Node(nil), e.nodes...)
		sort.SliceStable(order, func(a, b int) bool {
			return fleet.Affinity(j.ib, order[a]) > fleet.Affinity(j.ib, order[b])
		})
	}
	vmBytes := e.opts.Workload.VMBytes
	taken := make(map[*hw.Node]int)
	var dsts []*hw.Node
	for v := 0; v < j.vms; v++ {
		placed := false
		for _, n := range order {
			if n.Failed() || e.slots[n]-taken[n] <= 0 {
				continue
			}
			if e.mem[n]+float64(taken[n]+1)*vmBytes > n.MemoryBytes {
				continue
			}
			taken[n]++
			dsts = append(dsts, n)
			placed = true
			break
		}
		if !placed {
			return nil
		}
	}
	return dsts
}

func (e *Engine) take(n *hw.Node) {
	e.slots[n]--
	e.mem[n] += e.opts.Workload.VMBytes
}

func (e *Engine) release(n *hw.Node) {
	e.slots[n]++
	e.mem[n] -= e.opts.Workload.VMBytes
}

// onDeparture retires a job at end of life.
func (e *Engine) onDeparture(j *job) {
	if j.state != stateRunning {
		return
	}
	e.accrue()
	for _, n := range j.nodes {
		e.release(n)
	}
	j.nodes = nil
	j.state = stateDeparted
	e.rep.Departed++
	e.drainQueue()
	e.maybeSwap()
	e.checkDone()
}

// drainQueue re-tries queued jobs in FIFO order after capacity frees
// up. A job that fits is placed with its accumulated wait; jobs that
// still do not fit keep waiting (their deadline events are armed).
func (e *Engine) drainQueue() {
	var still []*job
	for _, j := range e.queue {
		if j.state != stateQueued {
			continue
		}
		if e.place(j) {
			continue
		}
		still = append(still, j)
	}
	e.queue = still
	e.checkDone()
}

func (e *Engine) removeQueued(j *job) {
	for i, q := range e.queue {
		if q == j {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return
		}
	}
}

// evictFrom re-queues every running job with a VM on the failed node.
// The gang's checkpoint survives on the shared store, so the job is not
// lost — it waits for re-placement like a fresh arrival, and the
// re-placement is counted as a fault migration.
//
// Capacity released by an eviction goes back only to healthy nodes: a
// VM's claim on failed hardware is stranded, not freed — dead nodes must
// not appear to hold schedulable slots while down. (findSlots and
// proposeGroups both skip Failed nodes as well, so this is
// defense-in-depth for the books themselves; pickNode only resolves
// fault targets and never places.) reinstate rebuilds the node's books
// from ground truth when it restores.
func (e *Engine) evictFrom(n *hw.Node) {
	e.accrue()
	evicted := false
	for _, j := range e.jobs {
		if j.state != stateRunning {
			continue
		}
		hit := false
		for _, d := range j.nodes {
			if d == n {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		for _, d := range j.nodes {
			if d.Failed() {
				continue
			}
			e.release(d)
		}
		j.nodes = nil
		j.evicted = true
		j.arrived = e.k.Now()
		j.departEv.Cancel()
		j.departEv = sim.Event{}
		e.logf("churn: %v job %s evicted from %s", e.k.Now(), j.name, n.Name)
		e.enqueue(j)
		evicted = true
	}
	if evicted {
		e.drainQueue()
		e.maybeSwap()
	}
}

// reinstate rebuilds a restored node's capacity books from ground truth.
// While the node was down, evicted occupants' claims were deliberately
// not released back to it (dead hardware holds no schedulable capacity),
// so the stale counters are replaced wholesale: full site slots minus
// VMs still resident (none, after eviction) and minus relocation
// reservations still on the wire.
func (e *Engine) reinstate(n *hw.Node) {
	occ := 0
	for _, j := range e.jobs {
		if j.state != stateRunning {
			continue
		}
		for _, d := range j.nodes {
			if d == n {
				occ++
			}
		}
	}
	held := occ + e.reserved[n]
	e.slots[n] = siteSlots(e.topo, n) - held
	e.mem[n] = float64(held) * e.opts.Workload.VMBytes
}

// maybeSwap proposes up to MaxSwapsPerEvent affinity-improving move
// groups and queues them as one priced mini-plan. Only one mini-plan is
// on the wire at a time; further proposals are deferred until it lands
// so they are always computed against fresh state. Relocation
// destinations are reserved immediately — an arrival racing the wire
// must not claim the same slot.
func (e *Engine) maybeSwap() {
	if e.opts.Policy != PolicySwap || e.busy || e.stopped {
		return
	}
	groups := e.proposeGroups()
	if len(groups) == 0 {
		return
	}
	var migs []*fleet.Migration
	for _, g := range groups {
		for i, j := range g.jobs {
			migs = append(migs, e.migrationFor(j, g.dsts[i]))
		}
		if !g.exchange {
			for _, dst := range g.dsts {
				for _, n := range dst {
					e.take(n)
					e.reserved[n]++
				}
			}
		}
	}
	seq := fleet.PlanSequence(migs, e.topo.LinkCaps(), e.opts.Seq)
	e.submit(&miniPlan{seq: seq, groups: groups})
}

// proposeGroups scans for strictly improving corrective moves against a
// shadow of the current occupancy: gang relocations into free capacity
// first, then pairwise destination exchanges between equal-shape gangs.
// Earlier proposals update the shadow so later ones see their effect.
// One group counts one move against the MaxSwapsPerEvent budget.
func (e *Engine) proposeGroups() []*moveGroup {
	shadowSlots := make(map[*hw.Node]int, len(e.slots))
	for n, s := range e.slots {
		shadowSlots[n] = s
	}
	shadowMem := make(map[*hw.Node]float64, len(e.mem))
	for n, m := range e.mem {
		shadowMem[n] = m
	}
	loc := make(map[*job][]*hw.Node)
	var running []*job
	for _, j := range e.jobs {
		if j.state == stateRunning {
			running = append(running, j)
			loc[j] = append([]*hw.Node(nil), j.nodes...)
		}
	}
	vmBytes := e.opts.Workload.VMBytes
	score := func(j *job, nodes []*hw.Node) int {
		s := 0
		for _, n := range nodes {
			s += fleet.Affinity(j.ib, n)
		}
		return s
	}
	var groups []*moveGroup
	// Relocations: best free slots strictly better than the current ones.
	for _, j := range running {
		if len(groups) >= e.opts.MaxSwapsPerEvent {
			return groups
		}
		order := append([]*hw.Node(nil), e.nodes...)
		sort.SliceStable(order, func(a, b int) bool {
			return fleet.Affinity(j.ib, order[a]) > fleet.Affinity(j.ib, order[b])
		})
		taken := make(map[*hw.Node]int)
		var dst []*hw.Node
		for v := 0; v < j.vms; v++ {
			for _, n := range order {
				if n.Failed() || shadowSlots[n]-taken[n] <= 0 {
					continue
				}
				if shadowMem[n]+float64(taken[n]+1)*vmBytes > n.MemoryBytes {
					continue
				}
				taken[n]++
				dst = append(dst, n)
				break
			}
		}
		if len(dst) < j.vms || score(j, dst) <= score(j, loc[j]) {
			continue
		}
		for _, n := range loc[j] {
			shadowSlots[n]++
			shadowMem[n] -= vmBytes
		}
		for _, n := range dst {
			shadowSlots[n]--
			shadowMem[n] += vmBytes
		}
		loc[j] = dst
		groups = append(groups, &moveGroup{jobs: []*job{j}, dsts: [][]*hw.Node{dst}})
	}
	// Pairwise destination exchanges: swap two equal-shape gangs' node
	// sets when the summed affinity strictly rises. Slot counts per node
	// are unchanged by an exchange; with uniform VMBytes so is memory.
	for i := 0; i < len(running); i++ {
		if len(groups) >= e.opts.MaxSwapsPerEvent {
			return groups
		}
		for jdx := i + 1; jdx < len(running); jdx++ {
			a, b := running[i], running[jdx]
			if a.vms != b.vms {
				continue
			}
			before := score(a, loc[a]) + score(b, loc[b])
			after := score(a, loc[b]) + score(b, loc[a])
			if after <= before {
				continue
			}
			loc[a], loc[b] = loc[b], loc[a]
			groups = append(groups, &moveGroup{
				jobs: []*job{a, b}, dsts: [][]*hw.Node{loc[a], loc[b]}, exchange: true,
			})
			break
		}
	}
	return groups
}

// migrationFor prices moving the gang to dsts: per-VM payload and wire
// rate, coordination plus IB re-attach overheads, the WAN circuits the
// gang crosses, and the shared NFS link when the model streams
// checkpoints (fleet.MigrationOf's pricing, applied to an abstract
// gang).
func (e *Engine) migrationFor(j *job, dsts []*hw.Node) *fleet.Migration {
	m := e.opts.Model.WithDefaults()
	mig := &fleet.Migration{Job: &fleet.Job{Name: j.name, IBCapable: j.ib}, Dsts: dsts, Fixed: m.Coordination}
	links := map[string]bool{}
	dstIB := false
	for i, d := range dsts {
		mig.Bytes += e.opts.Workload.VMBytes
		mig.MaxRate += m.PerVMWireRate
		var src *fleet.Site
		if i < len(j.nodes) {
			src = e.topo.SiteOf(j.nodes[i])
		}
		dst := e.topo.SiteOf(d)
		if src != dst {
			for _, s := range []*fleet.Site{src, dst} {
				if s != nil && s.WANBandwidth > 0 {
					links["wan:"+s.Name] = true
				}
			}
		}
		if d.HasInfiniBand() {
			dstIB = true
		}
	}
	if j.ib {
		mig.Fixed += m.Hotplug
		if dstIB {
			mig.Fixed += m.IBLinkup
		}
	}
	if m.Cold && e.topo.NFSBandwidth > 0 {
		links[e.topo.NFSLink()] = true
	}
	for l := range links {
		mig.Links = append(mig.Links, l)
	}
	sort.Strings(mig.Links)
	return mig
}

// submit queues a mini-plan and starts the wire pump if idle.
func (e *Engine) submit(p *miniPlan) {
	e.pending = append(e.pending, p)
	if !e.busy {
		e.pump()
	}
}

// pump executes pending mini-plans one at a time: each batch holds the
// wire for its predicted duration (the sequencer's contention-aware
// estimate), then the plan's commit flips engine state atomically.
func (e *Engine) pump() {
	if len(e.pending) == 0 {
		e.busy = false
		e.maybeSwap()
		e.checkDone()
		return
	}
	e.busy = true
	p := e.pending[0]
	e.pending = e.pending[1:]
	e.k.Schedule(p.seq.Predicted, func() {
		e.commitGroups(p.groups)
		e.pump()
	})
}

// commitGroups lands a mini-plan's move groups all-or-nothing each:
// source slots free, destination slots fill, and the cost integral
// switches to the new affinities. A group whose job departed, was
// evicted, or whose destination failed while the plan was on the wire
// is abandoned — its relocation reservation is returned.
func (e *Engine) commitGroups(groups []*moveGroup) {
	e.accrue()
	for _, g := range groups {
		ok := true
		for _, j := range g.jobs {
			if j.state != stateRunning {
				ok = false
			}
		}
		for _, dst := range g.dsts {
			for _, n := range dst {
				if n.Failed() {
					ok = false
				}
			}
		}
		if !ok {
			if !g.exchange {
				// Return the relocation reservation. A destination that
				// failed on the wire keeps nothing — its books are rebuilt
				// by reinstate on restore.
				for _, dst := range g.dsts {
					for _, n := range dst {
						e.reserved[n]--
						if n.Failed() {
							continue
						}
						e.release(n)
					}
				}
			}
			continue
		}
		for i, j := range g.jobs {
			for _, n := range j.nodes {
				e.release(n)
			}
			if g.exchange {
				for _, n := range g.dsts[i] {
					e.take(n)
				}
			} else {
				// The reservation (taken at proposal time) becomes
				// occupancy.
				for _, n := range g.dsts[i] {
					e.reserved[n]--
				}
			}
			j.nodes = g.dsts[i]
			e.rep.SwapMigs++
			e.rep.MigBytes += float64(j.vms) * e.opts.Workload.VMBytes
		}
	}
}

// accrue folds the elapsed interval into the cost integral at the
// current fleet-wide affinity deficit. Call before any state change.
func (e *Engine) accrue() {
	now := e.k.Now()
	if now > e.clock {
		e.cost += float64(e.deficitNow()) * (now - e.clock).Seconds()
		e.clock = now
	}
}

// deficitNow sums the per-VM affinity deficit over running jobs.
func (e *Engine) deficitNow() int {
	d := 0
	for _, j := range e.jobs {
		if j.state != stateRunning {
			continue
		}
		for _, n := range j.nodes {
			d += deficit(j.ib, fleet.Affinity(j.ib, n))
		}
	}
	return d
}

// checkDone finishes the run once every job is departed or rejected and
// no migration work is pending.
func (e *Engine) checkDone() {
	if e.stopped || e.busy || len(e.pending) > 0 {
		return
	}
	if e.rep.Departed+e.rep.Rejected < e.opts.Workload.Jobs {
		return
	}
	e.finish()
}

func (e *Engine) finish() {
	if e.stopped {
		return
	}
	e.stopped = true
	e.accrue()
	e.rep.Duration = e.k.Now()
	e.done.Set(struct{}{})
}

// ReportNow snapshots the report (final once Done has resolved). A
// finished run keeps the finish-time duration even if the kernel ran
// longer on unrelated events (e.g. a node-restore scheduled after the
// last departure).
func (e *Engine) ReportNow() Report {
	e.accrue()
	r := e.rep
	if !e.stopped {
		r.Duration = e.k.Now()
	}
	r.CostIntegral = e.cost
	if r.Duration > 0 {
		r.AvgCost = e.cost / r.Duration.Seconds()
	}
	r.finalize()
	return r
}
