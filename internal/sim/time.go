// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock and executes events in (time, sequence)
// order. Simulated processes are ordinary goroutines, but the kernel enforces
// a strict handoff discipline: at most one goroutine (either the kernel loop
// or a single process) is runnable at any instant, so simulations are fully
// deterministic and race-free without locks in model code.
package sim

import (
	"fmt"
	"math"
)

// Time is a point on (or a span of) the simulated clock, in nanoseconds.
// The zero Time is the simulation epoch.
type Time int64

// Common durations, mirroring time.Duration granularity.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// MaxTime is the largest representable simulated time.
const MaxTime Time = math.MaxInt64

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the time as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts a floating-point number of seconds to a Time.
// It saturates at MaxTime rather than overflowing.
func FromSeconds(s float64) Time {
	ns := s * float64(Second)
	if ns >= float64(math.MaxInt64) {
		return MaxTime
	}
	return Time(ns)
}

// SaturatingAdd returns t+d, clamped to [0, MaxTime] instead of wrapping.
func (t Time) SaturatingAdd(d Time) Time {
	s := t + d
	if d > 0 && s < t {
		return MaxTime
	}
	if d < 0 && s > t {
		return 0
	}
	return s
}

// String formats the time with an adaptive unit, e.g. "1.500s" or "250µs".
func (t Time) String() string {
	switch {
	case t == MaxTime:
		return "∞"
	case t == -MaxTime || t == math.MinInt64:
		return "-∞"
	case t < 0:
		return "-" + (-t).String()
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}
