package sim

import "fmt"

// procKilled is the sentinel panic value used to unwind a parked process
// when the kernel is closed.
type procKilled struct{}

// Proc is a simulated process: a goroutine whose execution is interleaved
// with other processes only at explicit blocking points (Sleep, waits on
// sync primitives). Between blocking points a process runs to completion,
// so model code needs no locking.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	parked bool
	killed bool
	doneF  *Future[struct{}]
}

// Go starts fn as a new simulated process. The process begins executing at
// the current simulated time, after all already-queued events for this
// instant. The returned Proc can be waited on via Done.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
		doneF:  NewFuture[struct{}](k),
	}
	k.procs[p] = struct{}{}
	go func() {
		<-p.resume // wait for first scheduling
		defer func() {
			r := recover()
			delete(k.procs, p)
			if r != nil {
				if _, ok := r.(procKilled); ok {
					// Kernel shutdown: unwind silently. Close() performs
					// the handoff receive itself.
					k.yield <- struct{}{}
					return
				}
				k.failure = fmt.Sprintf("sim: proc %q panicked: %v", p.name, r)
			} else {
				p.doneF.Set(struct{}{})
			}
			k.yield <- struct{}{}
		}()
		if p.killed {
			panic(procKilled{})
		}
		fn(p)
	}()
	k.Schedule(0, func() { p.step() })
	return p
}

// step transfers control to the process and waits for it to park or exit.
// It must only be called from event context (the kernel loop).
func (p *Proc) step() {
	p.parked = false
	p.resume <- struct{}{}
	<-p.k.yield
}

// park suspends the process until some event calls step. It must only be
// called from the process's own goroutine.
func (p *Proc) park() {
	p.parked = true
	p.k.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(procKilled{})
	}
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.k.now }

// Done returns a future that resolves when the process function returns.
func (p *Proc) Done() *Future[struct{}] { return p.doneF }

// Sleep suspends the process for d simulated time. A non-positive d yields
// the processor for one scheduling round (other events at the current
// instant run first).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.k.Schedule(d, func() { p.step() })
	p.park()
}

// Yield is Sleep(0): lets all other events queued for the current instant
// run before the process continues.
func (p *Proc) Yield() { p.Sleep(0) }
