package sim

import "testing"

func TestWaitTimeoutResolvesBeforeDeadline(t *testing.T) {
	k := NewKernel()
	f := NewFuture[int](k)
	k.Schedule(Second, func() { f.Set(42) })
	k.Go("w", func(p *Proc) {
		v, ok := WaitTimeout(p, f, 5*Second)
		if !ok || v != 42 {
			t.Errorf("WaitTimeout = (%d, %v), want (42, true)", v, ok)
		}
		if p.Now() != Second {
			t.Errorf("resolved at %v, want 1s", p.Now())
		}
	})
	k.Run()
}

func TestWaitTimeoutExpires(t *testing.T) {
	k := NewKernel()
	f := NewFuture[int](k)
	k.Go("w", func(p *Proc) {
		v, ok := WaitTimeout(p, f, 2*Second)
		if ok {
			t.Errorf("WaitTimeout = (%d, true), want timeout", v)
		}
		if p.Now() != 2*Second {
			t.Errorf("timed out at %v, want 2s", p.Now())
		}
	})
	k.Run()
}

func TestWaitTimeoutZeroIsUnbounded(t *testing.T) {
	k := NewKernel()
	f := NewFuture[string](k)
	k.Schedule(10*Second, func() { f.Set("late") })
	k.Go("w", func(p *Proc) {
		v, ok := WaitTimeout(p, f, 0)
		if !ok || v != "late" {
			t.Errorf("WaitTimeout = (%q, %v), want (late, true)", v, ok)
		}
		if p.Now() != 10*Second {
			t.Errorf("resolved at %v, want 10s", p.Now())
		}
	})
	k.Run()
}

func TestWaitTimeoutAlreadyDone(t *testing.T) {
	k := NewKernel()
	f := NewFuture[int](k)
	f.Set(7)
	k.Go("w", func(p *Proc) {
		v, ok := WaitTimeout(p, f, Second)
		if !ok || v != 7 {
			t.Errorf("WaitTimeout = (%d, %v), want (7, true)", v, ok)
		}
		if p.Now() != 0 {
			t.Errorf("returned at %v, want 0 (no wait)", p.Now())
		}
	})
	k.Run()
}
