package sim

import (
	"container/heap"
	"fmt"
)

// Logger receives kernel trace output when tracing is enabled.
type Logger interface {
	Logf(format string, args ...any)
}

// event is a scheduled callback. Events with equal fire times execute in
// the order they were scheduled (FIFO by seq).
type event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index; -1 once popped or cancelled
}

// Event is a handle to a scheduled event, usable to cancel it.
type Event struct {
	k  *Kernel
	ev *event
}

// Cancel removes the event from the queue. It is a no-op if the event has
// already fired or been cancelled. Reports whether the event was cancelled.
func (e *Event) Cancel() bool {
	if e == nil || e.ev == nil || e.ev.index < 0 {
		return false
	}
	heap.Remove(&e.k.queue, e.ev.index)
	e.ev.index = -1
	e.ev.fn = nil
	return true
}

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e != nil && e.ev != nil && e.ev.index >= 0 }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Kernel is a discrete-event simulation engine. A Kernel is not safe for
// concurrent use from multiple OS-level goroutines except through the
// Proc handoff protocol it manages itself.
type Kernel struct {
	now     Time
	seq     uint64
	queue   eventHeap
	yield   chan struct{} // procs signal here when they park or exit
	procs   map[*Proc]struct{}
	running bool
	failure any // first panic propagated from a proc
	trace   Logger
	closed  bool
}

// NewKernel returns a kernel with the clock at the epoch.
func NewKernel() *Kernel {
	return &Kernel{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// SetTrace installs a trace logger (nil disables tracing).
func (k *Kernel) SetTrace(l Logger) { k.trace = l }

// Tracef emits a trace line prefixed with the current simulated time.
func (k *Kernel) Tracef(format string, args ...any) {
	if k.trace != nil {
		k.trace.Logf("[%s] %s", k.now, fmt.Sprintf(format, args...))
	}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Schedule queues fn to run after delay. A negative delay panics.
// The returned handle may be used to cancel the event.
func (k *Kernel) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %v", delay))
	}
	if k.closed {
		panic("sim: Schedule on closed kernel")
	}
	ev := &event{at: k.now.SaturatingAdd(delay), seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, ev)
	return &Event{k: k, ev: ev}
}

// ScheduleAt queues fn to run at absolute time at, which must not be in
// the past.
func (k *Kernel) ScheduleAt(at Time, fn func()) *Event {
	if at < k.now {
		panic(fmt.Sprintf("sim: ScheduleAt %v is before now %v", at, k.now))
	}
	return k.Schedule(at-k.now, fn)
}

// Run executes events until the queue is empty. It returns the final
// simulated time. If any process panicked, Run re-panics with that value.
func (k *Kernel) Run() Time { return k.RunUntil(MaxTime) }

// RunUntil executes events with fire times <= deadline, then sets the clock
// to min(deadline, time of last executed event). Events after deadline stay
// queued; a later RunUntil call continues from where this one stopped.
func (k *Kernel) RunUntil(deadline Time) Time {
	if k.running {
		panic("sim: RunUntil called re-entrantly")
	}
	k.running = true
	defer func() { k.running = false }()
	for len(k.queue) > 0 {
		next := k.queue[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&k.queue)
		if next.at < k.now {
			panic("sim: event time went backwards")
		}
		k.now = next.at
		fn := next.fn
		next.fn = nil
		fn()
		if k.failure != nil {
			f := k.failure
			k.failure = nil
			panic(f)
		}
	}
	if deadline != MaxTime && deadline > k.now {
		k.now = deadline
	}
	return k.now
}

// Idle reports whether no events are queued.
func (k *Kernel) Idle() bool { return len(k.queue) == 0 }

// PendingEvents returns the number of queued events.
func (k *Kernel) PendingEvents() int { return len(k.queue) }

// LiveProcs returns the number of processes that have been started and have
// not yet exited (including parked ones).
func (k *Kernel) LiveProcs() int { return len(k.procs) }

// Close terminates every parked process by unwinding its goroutine, then
// marks the kernel unusable. It is safe to call after Run returns; it lets
// tests assert no goroutines leak. Close must not be called from within a
// simulation event.
func (k *Kernel) Close() {
	if k.running {
		panic("sim: Close called from inside the simulation")
	}
	if k.closed {
		return
	}
	k.closed = true
	for p := range k.procs {
		if p.parked {
			p.killed = true
			p.resume <- struct{}{}
			<-k.yield
		}
	}
	k.procs = nil
	k.queue = nil
}
