package sim

import (
	"container/heap"
	"fmt"
)

// Logger receives kernel trace output when tracing is enabled.
type Logger interface {
	Logf(format string, args ...any)
}

// Backend names an event-queue implementation for the kernel.
type Backend string

const (
	// BackendHeap is the default binary-heap event queue: O(log n)
	// Schedule and Cancel, a fresh event struct per Schedule. It is the
	// reference implementation the timer wheel is validated against.
	BackendHeap Backend = "heap"
	// BackendWheel is a hierarchical timer wheel: O(1) Schedule and
	// Cancel with pooled event structs. Semantically identical to the
	// heap (same (time, seq) execution order); faster and allocation-lean
	// at fleet scale. See wheel.go.
	BackendWheel Backend = "wheel"
)

// Options configures a kernel built with NewKernelWith.
type Options struct {
	// Backend selects the event-queue implementation. Empty means
	// BackendHeap.
	Backend Backend
}

// Stats counts scheduler activity since kernel creation.
type Stats struct {
	Scheduled uint64 // events accepted by Schedule/ScheduleAt
	Executed  uint64 // events that fired
	Cancelled uint64 // events cancelled before firing
}

// event states. A pooled event is recycled once it leaves statePending, so
// Event handles revalidate via the seq ticket before touching one.
const (
	stateFree uint8 = iota
	statePending
	stateFired
	stateCancelled
)

// event is a scheduled callback. Events with equal fire times execute in
// the order they were scheduled (FIFO by seq).
type event struct {
	at    Time
	seq   uint64
	fn    func()
	k     *Kernel
	index int    // heap/overflow position; -1 once popped or removed
	next  *event // wheel slot chain / ready chain / free list
	prev  *event // wheel slot chain (doubly linked for O(1) cancel)
	state uint8
	lvl   uint8 // wheel level, lvlOverflow, or lvlReady
	slot  uint8 // wheel slot within lvl
}

// Event is a cheap value handle to a scheduled event, usable to cancel it.
// The zero Event refers to no event: Cancel is a no-op and Pending reports
// false. Handles stay valid (as inert no-ops) after the event fires, even
// though the backend may recycle the underlying struct.
type Event struct {
	ev  *event
	seq uint64
}

// Cancel removes the event from the queue. It is a no-op if the event has
// already fired or been cancelled. Reports whether the event was cancelled.
func (e Event) Cancel() bool {
	ev := e.ev
	if ev == nil || ev.seq != e.seq || ev.state != statePending {
		return false
	}
	ev.k.cancelled++
	return ev.k.q.cancel(ev)
}

// Pending reports whether the event is still queued.
func (e Event) Pending() bool {
	return e.ev != nil && e.ev.seq == e.seq && e.ev.state == statePending
}

// eventQueue is the kernel's pluggable event-queue backend. Implementations
// must execute events in strict (at, seq) order and never hand back a
// cancelled event.
type eventQueue interface {
	// alloc returns a blank event struct, recycled if the backend pools.
	alloc() *event
	// schedule enqueues ev (at, seq, fn, k, state already set).
	schedule(ev *event)
	// cancel removes a pending event; reports whether it did.
	cancel(ev *event) bool
	// pop removes and returns the earliest pending event with at <= limit,
	// or nil if there is none.
	pop(limit Time) *event
	// release returns a fired event for recycling (no-op if unpooled).
	release(ev *event)
	// len reports the number of pending (non-cancelled) events.
	len() int
	// clear discards all queued events and pooled memory.
	clear()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// heapQueue is the baseline backend: a plain binary heap, one event
// allocation per Schedule, eager removal on Cancel.
type heapQueue struct {
	h eventHeap
}

func (q *heapQueue) alloc() *event      { return &event{} }
func (q *heapQueue) schedule(ev *event) { heap.Push(&q.h, ev) }

func (q *heapQueue) cancel(ev *event) bool {
	heap.Remove(&q.h, ev.index)
	ev.state = stateCancelled
	ev.fn = nil
	return true
}

func (q *heapQueue) pop(limit Time) *event {
	if len(q.h) == 0 || q.h[0].at > limit {
		return nil
	}
	return heap.Pop(&q.h).(*event)
}

func (q *heapQueue) release(*event) {}
func (q *heapQueue) len() int       { return len(q.h) }
func (q *heapQueue) clear()         { q.h = nil }

// Kernel is a discrete-event simulation engine. A Kernel is not safe for
// concurrent use from multiple OS-level goroutines except through the
// Proc handoff protocol it manages itself.
type Kernel struct {
	now       Time
	seq       uint64
	q         eventQueue
	backend   Backend
	scheduled uint64
	executed  uint64
	cancelled uint64
	yield     chan struct{} // procs signal here when they park or exit
	procs     map[*Proc]struct{}
	running   bool
	stopReq   bool // cooperative Stop() requested; consumed by RunUntil
	failure   any  // first panic propagated from a proc
	trace     Logger
	closed    bool
}

// NewKernel returns a heap-backed kernel with the clock at the epoch.
func NewKernel() *Kernel { return NewKernelWith(Options{}) }

// NewKernelWith returns a kernel with the clock at the epoch, using the
// event-queue backend selected by opts. An unknown backend panics.
func NewKernelWith(opts Options) *Kernel {
	b := opts.Backend
	if b == "" {
		b = BackendHeap
	}
	k := &Kernel{
		backend: b,
		yield:   make(chan struct{}),
		procs:   make(map[*Proc]struct{}),
	}
	switch b {
	case BackendHeap:
		k.q = &heapQueue{}
	case BackendWheel:
		k.q = &wheelQueue{}
	default:
		panic(fmt.Sprintf("sim: unknown kernel backend %q", b))
	}
	return k
}

// Backend reports which event-queue backend the kernel runs on.
func (k *Kernel) Backend() Backend { return k.backend }

// Stats returns scheduler activity counters (for profiling and the
// events/sec benchmarks).
func (k *Kernel) Stats() Stats {
	return Stats{Scheduled: k.scheduled, Executed: k.executed, Cancelled: k.cancelled}
}

// SetTrace installs a trace logger (nil disables tracing).
func (k *Kernel) SetTrace(l Logger) { k.trace = l }

// Tracef emits a trace line prefixed with the current simulated time.
func (k *Kernel) Tracef(format string, args ...any) {
	if k.trace != nil {
		k.trace.Logf("[%s] %s", k.now, fmt.Sprintf(format, args...))
	}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Schedule queues fn to run after delay. A negative delay panics.
// The returned handle may be used to cancel the event.
func (k *Kernel) Schedule(delay Time, fn func()) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %v", delay))
	}
	if k.closed {
		panic("sim: Schedule on closed kernel")
	}
	ev := k.q.alloc()
	ev.at = k.now.SaturatingAdd(delay)
	ev.seq = k.seq
	ev.fn = fn
	ev.k = k
	ev.state = statePending
	k.seq++
	k.scheduled++
	k.q.schedule(ev)
	return Event{ev: ev, seq: ev.seq}
}

// ScheduleAt queues fn to run at absolute time at, which must not be in
// the past.
func (k *Kernel) ScheduleAt(at Time, fn func()) Event {
	if at < k.now {
		panic(fmt.Sprintf("sim: ScheduleAt %v is before now %v", at, k.now))
	}
	return k.Schedule(at-k.now, fn)
}

// Run executes events until the queue is empty. It returns the final
// simulated time. If any process panicked, Run re-panics with that value.
func (k *Kernel) Run() Time { return k.RunUntil(MaxTime) }

// Stop makes the in-flight Run/RunUntil return once the current event's
// callback completes, leaving the clock at the last executed event and
// every later event queued. It is the cooperative cancellation point for
// drivers that must abandon a long simulation cleanly (e.g. on SIGINT):
// call it from an event callback or process body, let Run return, then
// Close to unwind parked processes. A pending stop request is consumed by
// the next Run/RunUntil if none is in flight.
func (k *Kernel) Stop() { k.stopReq = true }

// RunUntil executes events with fire times <= deadline, then sets the clock
// to min(deadline, time of last executed event). Events after deadline stay
// queued; a later RunUntil call continues from where this one stopped.
func (k *Kernel) RunUntil(deadline Time) Time {
	if k.running {
		panic("sim: RunUntil called re-entrantly")
	}
	k.running = true
	defer func() { k.running = false }()
	for {
		if k.stopReq {
			k.stopReq = false
			return k.now
		}
		ev := k.q.pop(deadline)
		if ev == nil {
			break
		}
		if ev.at < k.now {
			panic("sim: event time went backwards")
		}
		k.now = ev.at
		fn := ev.fn
		ev.fn = nil
		ev.state = stateFired
		k.q.release(ev)
		k.executed++
		fn()
		if k.failure != nil {
			f := k.failure
			k.failure = nil
			panic(f)
		}
	}
	if deadline != MaxTime && deadline > k.now {
		k.now = deadline
	}
	return k.now
}

// Idle reports whether no events are queued.
func (k *Kernel) Idle() bool { return k.q.len() == 0 }

// PendingEvents returns the number of queued events.
func (k *Kernel) PendingEvents() int { return k.q.len() }

// LiveProcs returns the number of processes that have been started and have
// not yet exited (including parked ones).
func (k *Kernel) LiveProcs() int { return len(k.procs) }

// Close terminates every parked process by unwinding its goroutine, then
// marks the kernel unusable. It is safe to call after Run returns; it lets
// tests assert no goroutines leak. Close must not be called from within a
// simulation event.
func (k *Kernel) Close() {
	if k.running {
		panic("sim: Close called from inside the simulation")
	}
	if k.closed {
		return
	}
	k.closed = true
	for p := range k.procs {
		if p.parked {
			p.killed = true
			p.resume <- struct{}{}
			<-k.yield
		}
	}
	k.procs = nil
	k.q.clear()
}
