package sim

import (
	"container/heap"
	"math/bits"
)

// wheelQueue is a hierarchical timer wheel: wheelLevels wheels of
// wheelSlots slots each, with slot width 64^level nanoseconds, indexed by
// absolute fire time. Level 0 has 1 ns slots, so every event in a level-0
// slot of the current window shares an exact timestamp; coarser slots are
// cascaded down as the cursor reaches them. Events further than 2^48 ns
// (~3.3 simulated days) ahead of the cursor wait in an overflow heap and
// migrate into the wheel once the cursor gets near.
//
// Schedule and Cancel are O(1): slot chains are doubly linked, so a
// cancelled event is unlinked and recycled immediately — watchdog-style
// workloads (arm a long timeout, cancel it moments later) never park dead
// events in coarse slots. Event structs are pooled on a free list; a
// recycled struct's seq ticket invalidates stale handles.
//
// The invariant load-bearing for correctness: an event is inserted at the
// lowest level whose slot width covers its distance from the cursor, so a
// level-l slot, at the moment the cursor enters its window, only holds
// events that still need l more levels of cascading. The oracle test
// (oracle_test.go) checks trace-identical execution against both the heap
// backend and a naive sorted-slice executor.
const (
	wheelBits     = 6
	wheelSlots    = 1 << wheelBits // 64
	wheelMask     = wheelSlots - 1
	wheelLevels   = 8
	wheelSpanBits = wheelBits * wheelLevels // 48
	wheelSpan     = Time(1) << wheelSpanBits
)

// Location tags for event.lvl beyond the wheel levels proper.
const (
	lvlOverflow uint8 = 0xFF // in the overflow heap (event.index valid)
	lvlReady    uint8 = 0xFE // in the ready chain (singly linked)
)

type wheelQueue struct {
	cur      Time // lower bound on every queued event's fire time
	n        int  // pending (non-cancelled) events across wheel+overflow+ready
	head     [wheelLevels][wheelSlots]*event
	tail     [wheelLevels][wheelSlots]*event
	occ      [wheelLevels]uint64 // per-level slot occupancy bitmaps
	ready    *event              // extracted same-instant batch, sorted by seq
	overflow eventHeap           // events >= wheelSpan ahead of cur
	free     *event              // event struct pool
}

func (q *wheelQueue) alloc() *event {
	if ev := q.free; ev != nil {
		q.free = ev.next
		ev.next = nil
		return ev
	}
	return &event{}
}

func (q *wheelQueue) freeEvent(ev *event) {
	ev.fn = nil
	ev.prev = nil
	ev.state = stateFree
	ev.next = q.free
	q.free = ev
}

func (q *wheelQueue) schedule(ev *event) {
	q.n++
	q.insert(ev)
}

// insert places ev relative to the current cursor. Precondition: ev.at >=
// q.cur (the kernel clock never trails the cursor).
func (q *wheelQueue) insert(ev *event) {
	d := ev.at - q.cur
	var l int
	if d > 0 {
		l = (bits.Len64(uint64(d)) - 1) / wheelBits
	}
	if l >= wheelLevels {
		ev.lvl = lvlOverflow
		ev.prev = nil
		ev.next = nil
		heap.Push(&q.overflow, ev)
		return
	}
	s := int(ev.at>>(uint(l)*wheelBits)) & wheelMask
	ev.lvl = uint8(l)
	ev.slot = uint8(s)
	ev.next = nil
	ev.prev = q.tail[l][s]
	if ev.prev == nil {
		q.head[l][s] = ev
		q.occ[l] |= 1 << uint(s)
	} else {
		ev.prev.next = ev
	}
	q.tail[l][s] = ev
}

// unlink removes ev from its doubly-linked wheel slot.
func (q *wheelQueue) unlink(ev *event) {
	l, s := int(ev.lvl), int(ev.slot)
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		q.head[l][s] = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		q.tail[l][s] = ev.prev
	}
	if q.head[l][s] == nil {
		q.occ[l] &^= 1 << uint(s)
	}
	ev.prev = nil
	ev.next = nil
}

func (q *wheelQueue) cancel(ev *event) bool {
	q.n--
	switch {
	case ev.lvl < wheelLevels:
		q.unlink(ev)
		q.freeEvent(ev)
	case ev.lvl == lvlOverflow:
		heap.Remove(&q.overflow, ev.index)
		q.freeEvent(ev)
	default:
		// Ready chain (singly linked): mark and reclaim when served.
		ev.state = stateCancelled
		ev.fn = nil
	}
	return true
}

func (q *wheelQueue) pop(limit Time) *event {
	for {
		// Serve the already-extracted exact-time batch first.
		for q.ready != nil {
			ev := q.ready
			if ev.at > limit {
				return nil
			}
			q.ready = ev.next
			ev.next = nil
			if ev.state != statePending {
				q.freeEvent(ev)
				continue
			}
			q.n--
			return ev
		}

		// Find the earliest candidate window across all levels. For ties,
		// prefer the coarsest source so same-instant events all funnel into
		// the level-0 slot (and sort by seq) before any of them fire.
		best := MaxTime
		bestLevel := -1
		for l := 0; l < wheelLevels; l++ {
			bm := q.occ[l]
			if bm == 0 {
				continue
			}
			shift := uint(l) * wheelBits
			p := int(q.cur>>shift) & wheelMask
			winMask := Time(1)<<(shift+wheelBits) - 1
			base := q.cur &^ winMask
			// Slots at or before the cursor position hold next-wrap events
			// (except level 0's own position, which is exactly "now").
			hiFrom := uint(p) + 1
			if l == 0 {
				hiFrom = uint(p)
			}
			var t Time
			if hi := bm >> hiFrom << hiFrom; hi != 0 {
				s := bits.TrailingZeros64(hi)
				t = base | Time(s)<<shift
			} else {
				lo := bm & (1<<hiFrom - 1)
				s := bits.TrailingZeros64(lo)
				t = base + (winMask + 1) + Time(s)<<shift
			}
			if t <= best {
				best = t
				bestLevel = l
			}
		}

		if len(q.overflow) > 0 && q.overflow[0].at <= best {
			// The overflow heap holds the (tied-)earliest event: migrate its
			// cohort into the wheel. Any wheel event is strictly nearer than
			// cur+wheelSpan, so if the overflow top is out of insertion range
			// the wheel must be empty and the cursor may jump freely.
			ovT := q.overflow[0].at
			if ovT > limit {
				return nil
			}
			if ovT-q.cur >= wheelSpan {
				q.cur = ovT &^ Time(wheelMask)
			}
			for len(q.overflow) > 0 && q.overflow[0].at-q.cur < wheelSpan {
				q.insert(heap.Pop(&q.overflow).(*event))
			}
			continue
		}

		if bestLevel < 0 {
			return nil // empty
		}
		if best > limit {
			return nil
		}
		shift := uint(bestLevel) * wheelBits
		s := int(best>>shift) & wheelMask
		q.cur = best
		if bestLevel == 0 {
			q.extractExact(s)
			continue
		}
		q.cascade(bestLevel, s)
		// Entry cascade: finer slots whose window base ties with the new
		// cursor position would otherwise be misread as next-wrap on the
		// next scan (a level>=1 slot at the cursor's own digit is ambiguous
		// in the bitmap). Drain them top-down; the cascade above never
		// refills them (its events land at digits strictly after the
		// cursor's, which are zero here since best is 64^bestLevel-aligned).
		for l := bestLevel - 1; l >= 1; l-- {
			es := int(best>>(uint(l)*wheelBits)) & wheelMask
			if q.occ[l]&(1<<uint(es)) != 0 {
				q.cascade(l, es)
			}
		}
	}
}

// extractExact drains level-0 slot s (every event in it fires at exactly
// q.cur) into the ready chain, ordered by seq.
func (q *wheelQueue) extractExact(s int) {
	ev := q.head[0][s]
	q.head[0][s] = nil
	q.tail[0][s] = nil
	q.occ[0] &^= 1 << uint(s)
	for ev != nil {
		next := ev.next
		if ev.at != q.cur {
			panic("sim: timer wheel level-0 slot holds a mistimed event")
		}
		ev.lvl = lvlReady
		ev.prev = nil
		q.pushReady(ev)
		ev = next
	}
}

// cascade redistributes level-l slot s into finer wheels after the cursor
// advanced to the slot's window base.
func (q *wheelQueue) cascade(l, s int) {
	ev := q.head[l][s]
	q.head[l][s] = nil
	q.tail[l][s] = nil
	q.occ[l] &^= 1 << uint(s)
	for ev != nil {
		next := ev.next
		q.insert(ev)
		ev = next
	}
}

// pushReady inserts ev into the seq-sorted ready chain. Slot chains are
// FIFO-appended, so the chain is nearly sorted already and batches are
// tiny; insertion sort is cheap and allocation-free.
func (q *wheelQueue) pushReady(ev *event) {
	if q.ready == nil || ev.seq < q.ready.seq {
		ev.next = q.ready
		q.ready = ev
		return
	}
	p := q.ready
	for p.next != nil && p.next.seq < ev.seq {
		p = p.next
	}
	ev.next = p.next
	p.next = ev
}

func (q *wheelQueue) release(ev *event) { q.freeEvent(ev) }

func (q *wheelQueue) len() int { return q.n }

func (q *wheelQueue) clear() {
	*q = wheelQueue{}
}
