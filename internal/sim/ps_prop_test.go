package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestPSFairShareInvariant checks the processor-sharing conservation law:
// the integral of the delivered aggregate rate (per-job rate × active jobs)
// over the run equals the total work submitted, under randomized arrivals,
// capacity changes, and background-load churn. The test-side integral is
// accumulated piecewise at every transition point — arrivals, SetCapacity,
// AddBackground, and completions (via OnDone) — using the aggregate rate
// that held since the previous transition.
func TestPSFairShareInvariant(t *testing.T) {
	type bgPulse struct {
		at    Time
		dur   Time
		delta float64
	}
	type arrival struct {
		at Time
		w  float64
	}
	type capChange struct {
		at Time
		c  float64
	}
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cap0 := 1 + 3*rng.Float64()
		var arrivals []arrival
		var caps []capChange
		var pulses []bgPulse
		totalWork := 0.0
		n := 20 + rng.Intn(20)
		for i := 0; i < n; i++ {
			a := arrival{at: Time(rng.Int63n(int64(20 * Second))), w: 0.1 + 4*rng.Float64()}
			arrivals = append(arrivals, a)
			totalWork += a.w
		}
		for i := 0; i < 6; i++ {
			caps = append(caps, capChange{at: Time(rng.Int63n(int64(25 * Second))), c: 0.5 + 3.5*rng.Float64()})
		}
		for i := 0; i < 8; i++ {
			pulses = append(pulses, bgPulse{
				at:    Time(rng.Int63n(int64(22 * Second))),
				dur:   Time(1 + rng.Int63n(int64(8*Second))),
				delta: 0.25 + 2*rng.Float64(),
			})
		}

		for _, backend := range []Backend{BackendHeap, BackendWheel} {
			t.Run(fmt.Sprintf("seed%d/%s", seed, backend), func(t *testing.T) {
				k := NewKernelWith(Options{Backend: backend})
				defer k.Close()
				ps := NewPS(k, cap0, 0)
				var integral float64
				lastT := k.Now()
				lastAgg := 0.0
				accrue := func() {
					now := k.Now()
					integral += lastAgg * (now - lastT).Seconds()
					lastT = now
				}
				recapture := func() { lastAgg = ps.rate() * float64(ps.Load()) }
				completed := 0
				for _, a := range arrivals {
					a := a
					k.Schedule(a.at, func() {
						accrue()
						ps.ServeAsync(a.w).OnDone(func(struct{}) {
							completed++
							accrue()
							recapture()
						})
						recapture()
					})
				}
				for _, c := range caps {
					c := c
					k.Schedule(c.at, func() { accrue(); ps.SetCapacity(c.c); recapture() })
				}
				for _, p := range pulses {
					p := p
					k.Schedule(p.at, func() { accrue(); ps.AddBackground(p.delta); recapture() })
					k.Schedule(p.at+p.dur, func() { accrue(); ps.AddBackground(-p.delta); recapture() })
				}
				k.Run()
				if completed != len(arrivals) {
					t.Fatalf("%d of %d jobs completed", completed, len(arrivals))
				}
				if ps.Load() != 0 {
					t.Fatalf("PS still loaded after drain: %d", ps.Load())
				}
				if diff := integral - totalWork; diff < -1e-3*totalWork || diff > 1e-3*totalWork {
					t.Fatalf("conservation violated: delivered %.9f, submitted %.9f (diff %.2e)",
						integral, totalWork, diff)
				}
			})
		}
	}
}

// TestPSSaturatedThroughput: with jobs always present, no per-job cap and
// no background load, the server delivers exactly its capacity — the batch
// drains at totalWork/capacity regardless of job sizes.
func TestPSSaturatedThroughput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const capacity = 2.5
	k := NewKernel()
	defer k.Close()
	ps := NewPS(k, capacity, 0)
	totalWork := 0.0
	for i := 0; i < 25; i++ {
		w := 0.2 + 3*rng.Float64()
		totalWork += w
		ps.ServeAsync(w)
	}
	end := k.Run()
	want := totalWork / capacity
	if got := end.Seconds(); got < want-1e-6 || got > want+1e-6 {
		t.Fatalf("drain took %.9fs, want %.9fs", got, want)
	}
}

// TestPSZeroRateStall: when the per-job rate underflows to zero (capacity
// fully absorbed by background load), replan must take the explicit stall
// path — no completion event, no Inf/NaN deadline — and a later capacity
// or background change must revive the job.
func TestPSZeroRateStall(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	ps := NewPS(k, 1e-300, 0)
	fut := ps.ServeAsync(1)
	ps.AddBackground(1e40) // 1e-300 / 1e40 underflows to rate 0
	if ps.rate() != 0 {
		t.Fatalf("rate = %g, want exact 0", ps.rate())
	}
	if n := k.PendingEvents(); n != 0 {
		t.Fatalf("stalled PS scheduled %d events", n)
	}
	k.RunUntil(k.Now() + 10*Second)
	if fut.Done() {
		t.Fatal("job completed while stalled")
	}
	ps.AddBackground(-1e40)
	ps.SetCapacity(1)
	start := k.Now()
	k.Run()
	if !fut.Done() {
		t.Fatal("job did not complete after recovery")
	}
	took := (k.Now() - start).Seconds()
	if took < 1-1e-6 || took > 1+1e-6 {
		t.Fatalf("recovered job took %.9fs, want 1s", took)
	}
}
