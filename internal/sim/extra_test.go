package sim

import (
	"testing"
	"testing/quick"
)

// Property: a Chan preserves FIFO order for any burst of sends, with any
// buffer capacity.
func TestChanFIFOProperty(t *testing.T) {
	f := func(capRaw, nRaw uint8) bool {
		capacity := int(capRaw % 5)
		n := int(nRaw%20) + 1
		k := NewKernel()
		ch := NewChan[int](k, capacity)
		var got []int
		k.Go("sender", func(p *Proc) {
			for i := 0; i < n; i++ {
				ch.Send(p, i)
			}
		})
		k.Go("receiver", func(p *Proc) {
			for i := 0; i < n; i++ {
				v, ok := ch.Recv(p)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		k.Run()
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPSBackgroundSlowsJobs(t *testing.T) {
	// 1 job + 7 background spinners on 8 cores: full speed (each spinner
	// has its own core). 1 job + 15 spinners: rate 8/16 = 0.5.
	k := NewKernel()
	ps := NewPS(k, 8, 1)
	ps.AddBackground(7)
	var firstDone Time
	k.Go("j1", func(p *Proc) {
		ps.Serve(p, 10)
		firstDone = p.Now()
	})
	k.Run()
	if firstDone < 9900*Millisecond || firstDone > 10100*Millisecond {
		t.Fatalf("with 7 spinners on 8 cores: %v, want ~10s", firstDone)
	}
	ps.AddBackground(8) // now 15 spinners
	var secondDone Time
	start := k.Now()
	k.Go("j2", func(p *Proc) {
		ps.Serve(p, 10)
		secondDone = p.Now() - start
	})
	k.Run()
	if secondDone < 19*Second || secondDone > 21*Second {
		t.Fatalf("with 15 spinners: %v, want ~20s", secondDone)
	}
}

func TestPSBackgroundNegativePanics(t *testing.T) {
	k := NewKernel()
	ps := NewPS(k, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ps.AddBackground(-1)
}

func TestPSBackgroundAccessor(t *testing.T) {
	k := NewKernel()
	ps := NewPS(k, 4, 1)
	ps.AddBackground(3)
	if ps.Background() != 3 {
		t.Fatalf("Background = %v", ps.Background())
	}
	ps.AddBackground(-3)
	if ps.Background() != 0 {
		t.Fatalf("Background = %v", ps.Background())
	}
}

func TestRunUntilEventExactlyAtDeadline(t *testing.T) {
	k := NewKernel()
	fired := false
	k.Schedule(5*Second, func() { fired = true })
	k.RunUntil(5 * Second)
	if !fired {
		t.Fatal("event at the deadline should fire")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	k := NewKernel()
	ev := k.Schedule(Second, func() {})
	k.Run()
	if ev.Cancel() {
		t.Fatal("Cancel after fire should report false")
	}
	if ev.Pending() {
		t.Fatal("fired event still pending")
	}
}

func TestScheduleOnClosedKernelPanics(t *testing.T) {
	k := NewKernel()
	k.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Schedule(0, func() {})
}

func TestProcNameAndKernelAccessors(t *testing.T) {
	k := NewKernel()
	k.Go("worker", func(p *Proc) {
		if p.Name() != "worker" || p.Kernel() != k || p.Now() != 0 {
			t.Error("accessors broken")
		}
	})
	k.Run()
}

// Property: WaitGroup with arbitrary add/done interleavings releases the
// waiter exactly when the count returns to zero.
func TestWaitGroupProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%10) + 1
		k := NewKernel()
		wg := NewWaitGroup(k)
		wg.Add(n)
		var doneAt Time
		for i := 1; i <= n; i++ {
			i := i
			k.Go("w", func(p *Proc) {
				p.Sleep(Time(i) * Second)
				wg.Done()
			})
		}
		k.Go("waiter", func(p *Proc) {
			wg.Wait(p)
			doneAt = p.Now()
		})
		k.Run()
		return doneAt == Time(n)*Second
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSaturatingAdd(t *testing.T) {
	if MaxTime.SaturatingAdd(1) != MaxTime {
		t.Fatal("positive overflow should saturate at MaxTime")
	}
	if Time(-MaxTime).SaturatingAdd(-2) != 0 {
		t.Fatal("negative overflow should clamp to 0")
	}
	if Time(5).SaturatingAdd(3) != 8 {
		t.Fatal("plain addition broken")
	}
}

func TestTimeStringExtremes(t *testing.T) {
	// Regression: formatting MinInt64 used to recurse infinitely.
	if got := Time(-1 << 63).String(); got != "-∞" {
		t.Fatalf("MinInt64 = %q", got)
	}
	if got := (-MaxTime).String(); got != "-∞" {
		t.Fatalf("-MaxTime = %q", got)
	}
}

func TestPSVerySlowJobDoesNotOverflow(t *testing.T) {
	// Regression: a nearly-stalled job's completion estimate used to wrap
	// past MaxTime and panic in Schedule.
	k := NewKernel()
	ps := NewPS(k, 1e-6, 0) // glacial capacity
	done := false
	ps.ServeAsync(1e15).OnDone(func(struct{}) { done = true })
	k.RunUntil(Hour)
	if done {
		t.Fatal("job cannot have finished")
	}
}

type captureLogger struct{ lines []string }

func (c *captureLogger) Logf(format string, args ...any) {
	c.lines = append(c.lines, format)
}

func TestKernelTracing(t *testing.T) {
	k := NewKernel()
	log := &captureLogger{}
	k.SetTrace(log)
	k.Schedule(Second, func() { k.Tracef("event %d", 1) })
	k.Run()
	if len(log.lines) != 1 {
		t.Fatalf("trace lines = %d, want 1", len(log.lines))
	}
	k.SetTrace(nil)
	k.Schedule(Second, func() { k.Tracef("dropped") })
	k.Run()
	if len(log.lines) != 1 {
		t.Fatal("Tracef with nil logger should be a no-op")
	}
}
