package sim

import "math"

// PS is a processor-sharing resource: a server with a total capacity
// (work units per simulated second) shared equally among all active jobs,
// optionally with a per-job rate cap. It models both CPUs under contention
// (capacity = cores, per-job cap = 1 core) and network pipes with fair
// sharing (capacity = bandwidth).
type PS struct {
	k          *Kernel
	capacity   float64 // units per second
	perJobCap  float64 // max units per second per job; <=0 means unlimited
	background float64 // capacity-consuming load with no completion (spinners)
	jobs       map[*psJob]struct{}
	lastUpdate Time
	pending    *Event
}

type psJob struct {
	remaining float64
	fut       *Future[struct{}]
}

const psEpsilon = 1e-6

// NewPS returns a processor-sharing resource. capacity must be positive;
// perJobCap <= 0 means a job may consume the whole capacity when alone.
func NewPS(k *Kernel, capacity, perJobCap float64) *PS {
	if capacity <= 0 {
		panic("sim: NewPS with non-positive capacity")
	}
	return &PS{
		k:          k,
		capacity:   capacity,
		perJobCap:  perJobCap,
		jobs:       make(map[*psJob]struct{}),
		lastUpdate: k.Now(),
	}
}

// Load returns the number of active jobs.
func (ps *PS) Load() int { return len(ps.jobs) }

// Capacity returns the total capacity in units per second.
func (ps *PS) Capacity() float64 { return ps.capacity }

// SetCapacity changes the total capacity, re-planning active jobs.
func (ps *PS) SetCapacity(c float64) {
	if c <= 0 {
		panic("sim: SetCapacity with non-positive capacity")
	}
	ps.update()
	ps.capacity = c
	ps.replan()
}

// AddBackground adjusts the background load: capacity-consuming work that
// never completes, such as busy-polling vCPUs. Background load takes an
// equal processor share but produces nothing, slowing real jobs.
func (ps *PS) AddBackground(delta float64) {
	ps.update()
	ps.background += delta
	if ps.background < 0 {
		panic("sim: negative PS background load")
	}
	ps.replan()
}

// Background returns the current background load.
func (ps *PS) Background() float64 { return ps.background }

// rate returns the per-job service rate right now.
func (ps *PS) rate() float64 {
	n := len(ps.jobs)
	if n == 0 {
		return 0
	}
	r := ps.capacity / (float64(n) + ps.background)
	if ps.perJobCap > 0 && r > ps.perJobCap {
		r = ps.perJobCap
	}
	return r
}

// update advances all jobs' remaining work to the current time.
func (ps *PS) update() {
	now := ps.k.Now()
	if now == ps.lastUpdate {
		return
	}
	elapsed := (now - ps.lastUpdate).Seconds()
	r := ps.rate()
	if r > 0 {
		for j := range ps.jobs {
			j.remaining -= r * elapsed
		}
	}
	ps.lastUpdate = now
}

// replan completes any finished jobs and schedules the next completion.
func (ps *PS) replan() {
	if ps.pending != nil {
		ps.pending.Cancel()
		ps.pending = nil
	}
	var finished []*psJob
	for j := range ps.jobs {
		if j.remaining <= psEpsilon {
			finished = append(finished, j)
		}
	}
	for _, j := range finished {
		delete(ps.jobs, j)
		j.fut.Set(struct{}{})
	}
	if len(ps.jobs) == 0 {
		return
	}
	r := ps.rate()
	minRemaining := math.Inf(1)
	for j := range ps.jobs {
		if j.remaining < minRemaining {
			minRemaining = j.remaining
		}
	}
	dt := FromSeconds(minRemaining / r).SaturatingAdd(1) // +1ns guards against rounding short
	if dt >= MaxTime {
		return // effectively stalled; a later capacity change replans
	}
	ps.pending = ps.k.Schedule(dt, func() {
		ps.pending = nil
		ps.update()
		ps.replan()
	})
}

// ServeAsync submits a job of the given amount of work and returns a future
// that resolves when the job completes. A non-positive amount completes
// immediately.
func (ps *PS) ServeAsync(amount float64) *Future[struct{}] {
	fut := NewFuture[struct{}](ps.k)
	if amount <= 0 {
		fut.Set(struct{}{})
		return fut
	}
	ps.update()
	ps.jobs[&psJob{remaining: amount, fut: fut}] = struct{}{}
	ps.replan()
	return fut
}

// Serve submits a job and blocks the process until it completes.
func (ps *PS) Serve(p *Proc, amount float64) {
	ps.ServeAsync(amount).Wait(p)
}
