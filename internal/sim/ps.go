package sim

// PS is a processor-sharing resource: a server with a total capacity
// (work units per simulated second) shared equally among all active jobs,
// optionally with a per-job rate cap. It models both CPUs under contention
// (capacity = cores, per-job cap = 1 core) and network pipes with fair
// sharing (capacity = bandwidth).
//
// Internally PS runs on virtual-time accounting: because every active job
// receives the same instantaneous rate, the cumulative per-job service
// ("virtual work") advances identically for all of them. A job joining
// when the accumulator reads V with amount A finishes when the accumulator
// reaches V+A, so jobs complete in a fixed (finish tag, arrival seq) order
// held in a min-heap. Clock advancement is O(1), completion is O(log K)
// for K concurrent jobs — no per-job rescans.
type PS struct {
	k          *Kernel
	capacity   float64 // units per second
	perJobCap  float64 // max units per second per job; <=0 means unlimited
	background float64 // capacity-consuming load with no completion (spinners)
	virtual    float64 // cumulative per-job service since creation
	seq        uint64  // arrival order tie-break for equal finish tags
	jobs       []*psJob
	freeJobs   []*psJob // recycled psJob structs
	lastUpdate Time
	pending    Event
	onFire     func() // preallocated completion callback
}

type psJob struct {
	finish float64 // virtual-time finish tag: virtual at join + amount
	seq    uint64
	fut    *Future[struct{}]
}

const psEpsilon = 1e-6

// NewPS returns a processor-sharing resource. capacity must be positive;
// perJobCap <= 0 means a job may consume the whole capacity when alone.
func NewPS(k *Kernel, capacity, perJobCap float64) *PS {
	if capacity <= 0 {
		panic("sim: NewPS with non-positive capacity")
	}
	ps := &PS{
		k:          k,
		capacity:   capacity,
		perJobCap:  perJobCap,
		lastUpdate: k.Now(),
	}
	ps.onFire = func() {
		ps.pending = Event{}
		ps.update()
		ps.replan()
	}
	return ps
}

// Load returns the number of active jobs.
func (ps *PS) Load() int { return len(ps.jobs) }

// Capacity returns the total capacity in units per second.
func (ps *PS) Capacity() float64 { return ps.capacity }

// SetCapacity changes the total capacity, re-planning active jobs.
func (ps *PS) SetCapacity(c float64) {
	if c <= 0 {
		panic("sim: SetCapacity with non-positive capacity")
	}
	ps.update()
	ps.capacity = c
	ps.replan()
}

// AddBackground adjusts the background load: capacity-consuming work that
// never completes, such as busy-polling vCPUs. Background load takes an
// equal processor share but produces nothing, slowing real jobs.
func (ps *PS) AddBackground(delta float64) {
	ps.update()
	ps.background += delta
	if ps.background < 0 {
		// Paired add/remove deltas need not cancel exactly in floating
		// point; absorb the rounding residue, but reject real misuse.
		if ps.background < -psEpsilon {
			panic("sim: negative PS background load")
		}
		ps.background = 0
	}
	ps.replan()
}

// Background returns the current background load.
func (ps *PS) Background() float64 { return ps.background }

// rate returns the per-job service rate right now.
func (ps *PS) rate() float64 {
	n := len(ps.jobs)
	if n == 0 {
		return 0
	}
	r := ps.capacity / (float64(n) + ps.background)
	if ps.perJobCap > 0 && r > ps.perJobCap {
		r = ps.perJobCap
	}
	return r
}

// update advances the virtual-work accumulator to the current time.
func (ps *PS) update() {
	now := ps.k.Now()
	if now == ps.lastUpdate {
		return
	}
	elapsed := (now - ps.lastUpdate).Seconds()
	if r := ps.rate(); r > 0 {
		ps.virtual += r * elapsed
	}
	ps.lastUpdate = now
}

// replan completes any finished jobs and schedules the next completion.
func (ps *PS) replan() {
	ps.pending.Cancel()
	ps.pending = Event{}
	for len(ps.jobs) > 0 && ps.jobs[0].finish-ps.virtual <= psEpsilon {
		j := ps.popJob()
		fut := j.fut
		j.fut = nil
		ps.freeJobs = append(ps.freeJobs, j)
		fut.Set(struct{}{})
	}
	if len(ps.jobs) == 0 {
		return
	}
	r := ps.rate()
	if r <= 0 {
		// Stalled: capacity is fully absorbed by background load (or has
		// underflowed to a zero per-job rate). No completion can happen
		// until SetCapacity or AddBackground replans, so schedule nothing
		// rather than dividing by zero into Inf/NaN deadlines.
		return
	}
	dt := FromSeconds((ps.jobs[0].finish - ps.virtual) / r).SaturatingAdd(1) // +1ns guards against rounding short
	if dt >= MaxTime {
		return // effectively stalled; a later capacity change replans
	}
	ps.pending = ps.k.Schedule(dt, ps.onFire)
}

// pushJob adds j to the completion-order min-heap.
func (ps *PS) pushJob(j *psJob) {
	ps.jobs = append(ps.jobs, j)
	i := len(ps.jobs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !psLess(ps.jobs[i], ps.jobs[parent]) {
			break
		}
		ps.jobs[i], ps.jobs[parent] = ps.jobs[parent], ps.jobs[i]
		i = parent
	}
}

// popJob removes and returns the next job to complete.
func (ps *PS) popJob() *psJob {
	j := ps.jobs[0]
	last := len(ps.jobs) - 1
	ps.jobs[0] = ps.jobs[last]
	ps.jobs[last] = nil
	ps.jobs = ps.jobs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(ps.jobs) && psLess(ps.jobs[l], ps.jobs[smallest]) {
			smallest = l
		}
		if r < len(ps.jobs) && psLess(ps.jobs[r], ps.jobs[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		ps.jobs[i], ps.jobs[smallest] = ps.jobs[smallest], ps.jobs[i]
		i = smallest
	}
	return j
}

func psLess(a, b *psJob) bool {
	if a.finish != b.finish {
		return a.finish < b.finish
	}
	return a.seq < b.seq
}

// ServeAsync submits a job of the given amount of work and returns a future
// that resolves when the job completes. A non-positive amount completes
// immediately.
func (ps *PS) ServeAsync(amount float64) *Future[struct{}] {
	fut := NewFuture[struct{}](ps.k)
	if amount <= 0 {
		fut.Set(struct{}{})
		return fut
	}
	ps.update()
	var j *psJob
	if n := len(ps.freeJobs); n > 0 {
		j = ps.freeJobs[n-1]
		ps.freeJobs = ps.freeJobs[:n-1]
	} else {
		j = &psJob{}
	}
	j.finish, j.seq, j.fut = ps.virtual+amount, ps.seq, fut
	ps.pushJob(j)
	ps.seq++
	ps.replan()
	return fut
}

// Serve submits a job and blocks the process until it completes.
func (ps *PS) Serve(p *Proc, amount float64) {
	ps.ServeAsync(amount).Wait(p)
}
