package sim

import (
	"math"
	"testing"
	"testing/quick"
)

// approx reports whether a is within tol (fractional) of b.
func approx(a, b Time, tolFrac float64) bool {
	if b == 0 {
		return a < Millisecond
	}
	diff := math.Abs(float64(a - b))
	return diff <= tolFrac*math.Abs(float64(b))+float64(Millisecond)
}

func TestPSSingleJobFullRate(t *testing.T) {
	k := NewKernel()
	ps := NewPS(k, 4, 1) // 4 cores, 1 core max per job
	var done Time
	k.Go("j", func(p *Proc) {
		ps.Serve(p, 10) // 10 core-seconds at 1 core/s = 10s
		done = p.Now()
	})
	k.Run()
	if !approx(done, 10*Second, 1e-6) {
		t.Fatalf("done = %v, want ~10s", done)
	}
}

func TestPSUncappedSingleJob(t *testing.T) {
	k := NewKernel()
	ps := NewPS(k, 8, 0) // uncapped: lone job gets full capacity
	var done Time
	k.Go("j", func(p *Proc) {
		ps.Serve(p, 16)
		done = p.Now()
	})
	k.Run()
	if !approx(done, 2*Second, 1e-6) {
		t.Fatalf("done = %v, want ~2s", done)
	}
}

func TestPSEqualSharingUnderOvercommit(t *testing.T) {
	// 8 jobs of 10 core-seconds each on 4 cores, 1-core cap:
	// rate = 0.5 core each, so all finish at 20s.
	k := NewKernel()
	ps := NewPS(k, 4, 1)
	var finishes []Time
	for i := 0; i < 8; i++ {
		k.Go("j", func(p *Proc) {
			ps.Serve(p, 10)
			finishes = append(finishes, p.Now())
		})
	}
	k.Run()
	if len(finishes) != 8 {
		t.Fatalf("finished %d jobs, want 8", len(finishes))
	}
	for _, f := range finishes {
		if !approx(f, 20*Second, 1e-3) {
			t.Fatalf("finish = %v, want ~20s", f)
		}
	}
}

func TestPSNoContentionWhenUnderCapacity(t *testing.T) {
	// 4 jobs on 8 cores with 1-core cap: no slowdown.
	k := NewKernel()
	ps := NewPS(k, 8, 1)
	var finishes []Time
	for i := 0; i < 4; i++ {
		k.Go("j", func(p *Proc) {
			ps.Serve(p, 5)
			finishes = append(finishes, p.Now())
		})
	}
	k.Run()
	for _, f := range finishes {
		if !approx(f, 5*Second, 1e-3) {
			t.Fatalf("finish = %v, want ~5s", f)
		}
	}
}

func TestPSLateArrivalSlowsEarlyJob(t *testing.T) {
	// Job A (10 units) starts at t=0 on capacity 1. Job B (10 units)
	// arrives at t=5. A has 5 left, now at rate 0.5 → A finishes at 15.
	// B then runs alone: 7.5 done by t=15... B: from 5 to 15 does 5 units,
	// then full rate for 5 more → finishes at 20.
	k := NewKernel()
	ps := NewPS(k, 1, 0)
	var aDone, bDone Time
	k.Go("a", func(p *Proc) {
		ps.Serve(p, 10)
		aDone = p.Now()
	})
	k.Go("b", func(p *Proc) {
		p.Sleep(5 * Second)
		ps.Serve(p, 10)
		bDone = p.Now()
	})
	k.Run()
	if !approx(aDone, 15*Second, 1e-3) {
		t.Fatalf("aDone = %v, want ~15s", aDone)
	}
	if !approx(bDone, 20*Second, 1e-3) {
		t.Fatalf("bDone = %v, want ~20s", bDone)
	}
}

func TestPSZeroAmountImmediate(t *testing.T) {
	k := NewKernel()
	ps := NewPS(k, 1, 0)
	var done Time = -1
	k.Go("j", func(p *Proc) {
		ps.Serve(p, 0)
		done = p.Now()
	})
	k.Run()
	if done != 0 {
		t.Fatalf("done = %v, want 0", done)
	}
}

func TestPSSetCapacity(t *testing.T) {
	// 10 units at capacity 1; at t=5 capacity doubles → remaining 5 units
	// at rate 2 takes 2.5s → done at 7.5s.
	k := NewKernel()
	ps := NewPS(k, 1, 0)
	var done Time
	k.Go("j", func(p *Proc) {
		ps.Serve(p, 10)
		done = p.Now()
	})
	k.Schedule(5*Second, func() { ps.SetCapacity(2) })
	k.Run()
	if !approx(done, 7500*Millisecond, 1e-3) {
		t.Fatalf("done = %v, want ~7.5s", done)
	}
}

func TestPSLoad(t *testing.T) {
	k := NewKernel()
	ps := NewPS(k, 1, 0)
	k.Go("j", func(p *Proc) { ps.Serve(p, 100) })
	k.Schedule(Second, func() {
		if ps.Load() != 1 {
			t.Errorf("Load = %d, want 1", ps.Load())
		}
	})
	k.Run()
	if ps.Load() != 0 {
		t.Fatalf("Load after completion = %d, want 0", ps.Load())
	}
}

// Property: total work conserved — N equal jobs on capacity C (uncapped)
// all finish at N*W/C regardless of N and W.
func TestPSWorkConservationProperty(t *testing.T) {
	f := func(nRaw, wRaw uint8) bool {
		n := int(nRaw%8) + 1
		w := float64(wRaw%50) + 1
		k := NewKernel()
		ps := NewPS(k, 4, 0)
		var finishes []Time
		for i := 0; i < n; i++ {
			k.Go("j", func(p *Proc) {
				ps.Serve(p, w)
				finishes = append(finishes, p.Now())
			})
		}
		k.Run()
		want := FromSeconds(float64(n) * w / 4)
		for _, fin := range finishes {
			if !approx(fin, want, 1e-3) {
				return false
			}
		}
		return len(finishes) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPSNonPositiveCapacityPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPS(k, 0, 0)
}
