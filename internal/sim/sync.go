package sim

// Future is a write-once value that processes can wait on.
type Future[T any] struct {
	k       *Kernel
	done    bool
	val     T
	waiters []*Proc
	cbs     []func(T)
}

// NewFuture returns an unresolved future bound to k.
func NewFuture[T any](k *Kernel) *Future[T] { return &Future[T]{k: k} }

// Done reports whether the future has been resolved.
func (f *Future[T]) Done() bool { return f.done }

// Value returns the resolved value; it panics if the future is unresolved.
func (f *Future[T]) Value() T {
	if !f.done {
		panic("sim: Future.Value on unresolved future")
	}
	return f.val
}

// Set resolves the future and wakes all waiters. Setting an already
// resolved future panics (futures are write-once).
func (f *Future[T]) Set(v T) {
	if f.done {
		panic("sim: Future.Set on already-resolved future")
	}
	f.done = true
	f.val = v
	waiters := f.waiters
	f.waiters = nil
	cbs := f.cbs
	f.cbs = nil
	for _, p := range waiters {
		p := p
		f.k.Schedule(0, func() { p.step() })
	}
	for _, cb := range cbs {
		cb := cb
		f.k.Schedule(0, func() { cb(v) })
	}
}

// Wait blocks the process until the future resolves, then returns its value.
func (f *Future[T]) Wait(p *Proc) T {
	if !f.done {
		f.waiters = append(f.waiters, p)
		p.park()
	}
	return f.val
}

// OnDone registers cb to run (in event context) once the future resolves.
// If already resolved, cb is scheduled immediately.
func (f *Future[T]) OnDone(cb func(T)) {
	if f.done {
		v := f.val
		f.k.Schedule(0, func() { cb(v) })
		return
	}
	f.cbs = append(f.cbs, cb)
}

// WaitAll blocks until every future in fs has resolved.
func WaitAll[T any](p *Proc, fs ...*Future[T]) {
	for _, f := range fs {
		f.Wait(p)
	}
}

// WaitTimeout blocks until f resolves or d elapses, whichever comes first.
// ok reports whether the future resolved within the window; on timeout the
// zero value is returned and the future is left untouched (it may still
// resolve later for other waiters). A non-positive d degenerates to a
// plain Wait. This is the primitive watchdogs are built from: it bounds a
// wait in simulated time without cancelling the underlying operation.
func WaitTimeout[T any](p *Proc, f *Future[T], d Time) (v T, ok bool) {
	if f.Done() {
		return f.Value(), true
	}
	if d <= 0 {
		return f.Wait(p), true
	}
	race := NewFuture[bool](f.k)
	f.OnDone(func(T) {
		if !race.Done() {
			race.Set(true)
		}
	})
	timer := f.k.Schedule(d, func() {
		if !race.Done() {
			race.Set(false)
		}
	})
	if race.Wait(p) {
		timer.Cancel()
		return f.Value(), true
	}
	return v, false
}

// Chan is a simulated channel with FIFO semantics and an optional buffer,
// analogous to a Go channel but integrated with the simulation clock.
type Chan[T any] struct {
	k      *Kernel
	buf    []T
	cap    int // 0 = rendezvous
	sendq  []*chanSend[T]
	recvq  []*chanRecv[T]
	closed bool
}

type chanSend[T any] struct {
	p   *Proc
	val T
	ok  bool // delivered
}

type chanRecv[T any] struct {
	p   *Proc
	val T
	ok  bool // received a value (false once closed and drained)
	set bool
}

// NewChan returns a simulated channel with the given buffer capacity.
func NewChan[T any](k *Kernel, capacity int) *Chan[T] {
	if capacity < 0 {
		panic("sim: NewChan with negative capacity")
	}
	return &Chan[T]{k: k, cap: capacity}
}

// Len returns the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Close closes the channel; pending and future receives complete with
// ok=false once the buffer drains. Sending on a closed channel panics.
func (c *Chan[T]) Close() {
	if c.closed {
		panic("sim: close of closed Chan")
	}
	c.closed = true
	if len(c.buf) == 0 {
		recvq := c.recvq
		c.recvq = nil
		for _, r := range recvq {
			r := r
			r.set = true
			c.k.Schedule(0, func() { r.p.step() })
		}
	}
}

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool { return c.closed }

// Send delivers v, blocking while the buffer is full (or, for a rendezvous
// channel, until a receiver arrives).
func (c *Chan[T]) Send(p *Proc, v T) {
	if c.closed {
		panic("sim: send on closed Chan")
	}
	// Direct handoff to a waiting receiver.
	if len(c.recvq) > 0 {
		r := c.recvq[0]
		c.recvq = c.recvq[1:]
		r.val, r.ok, r.set = v, true, true
		c.k.Schedule(0, func() { r.p.step() })
		return
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return
	}
	s := &chanSend[T]{p: p, val: v}
	c.sendq = append(c.sendq, s)
	p.park()
	if !s.ok {
		panic("sim: Chan send woken without delivery")
	}
}

// Recv returns the next value. ok is false if the channel is closed and
// drained.
func (c *Chan[T]) Recv(p *Proc) (v T, ok bool) {
	if len(c.buf) > 0 {
		v = c.buf[0]
		c.buf = c.buf[1:]
		// Promote a blocked sender into the freed buffer slot.
		if len(c.sendq) > 0 {
			s := c.sendq[0]
			c.sendq = c.sendq[1:]
			c.buf = append(c.buf, s.val)
			s.ok = true
			c.k.Schedule(0, func() { s.p.step() })
		}
		return v, true
	}
	if len(c.sendq) > 0 { // rendezvous handoff
		s := c.sendq[0]
		c.sendq = c.sendq[1:]
		s.ok = true
		c.k.Schedule(0, func() { s.p.step() })
		return s.val, true
	}
	if c.closed {
		var zero T
		return zero, false
	}
	r := &chanRecv[T]{p: p}
	c.recvq = append(c.recvq, r)
	p.park()
	if !r.set {
		panic("sim: Chan recv woken without value")
	}
	return r.val, r.ok
}

// TryRecv receives without blocking; ok reports whether a value was taken.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if len(c.buf) > 0 {
		v = c.buf[0]
		c.buf = c.buf[1:]
		if len(c.sendq) > 0 {
			s := c.sendq[0]
			c.sendq = c.sendq[1:]
			c.buf = append(c.buf, s.val)
			s.ok = true
			c.k.Schedule(0, func() { s.p.step() })
		}
		return v, true
	}
	if len(c.sendq) > 0 {
		s := c.sendq[0]
		c.sendq = c.sendq[1:]
		s.ok = true
		c.k.Schedule(0, func() { s.p.step() })
		return s.val, true
	}
	var zero T
	return zero, false
}

// WaitGroup counts outstanding work items, like sync.WaitGroup but
// simulation-aware.
type WaitGroup struct {
	k       *Kernel
	count   int
	waiters []*Proc
}

// NewWaitGroup returns a WaitGroup bound to k.
func NewWaitGroup(k *Kernel) *WaitGroup { return &WaitGroup{k: k} }

// Add increments the counter by n (n may be negative, like Done).
func (wg *WaitGroup) Add(n int) {
	wg.count += n
	if wg.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.count == 0 {
		waiters := wg.waiters
		wg.waiters = nil
		for _, p := range waiters {
			p := p
			wg.k.Schedule(0, func() { p.step() })
		}
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	wg.waiters = append(wg.waiters, p)
	p.park()
}

// Cond is a simulation-aware condition variable. Because processes run to
// completion between blocking points there is no associated lock; Wait
// simply parks until Signal or Broadcast.
type Cond struct {
	k       *Kernel
	waiters []*Proc
}

// NewCond returns a condition variable bound to k.
func NewCond(k *Kernel) *Cond { return &Cond{k: k} }

// Wait parks the process until a Signal or Broadcast.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.k.Schedule(0, func() { p.step() })
}

// Broadcast wakes every waiting process.
func (c *Cond) Broadcast() {
	waiters := c.waiters
	c.waiters = nil
	for _, p := range waiters {
		p := p
		c.k.Schedule(0, func() { p.step() })
	}
}

// Waiting returns the number of parked waiters.
func (c *Cond) Waiting() int { return len(c.waiters) }

// Semaphore is a counting semaphore with FIFO acquisition order.
type Semaphore struct {
	k       *Kernel
	tokens  int
	waiters []*semWait
}

type semWait struct {
	p *Proc
	n int
}

// NewSemaphore returns a semaphore with the given number of tokens.
func NewSemaphore(k *Kernel, tokens int) *Semaphore {
	if tokens < 0 {
		panic("sim: NewSemaphore with negative tokens")
	}
	return &Semaphore{k: k, tokens: tokens}
}

// Acquire takes n tokens, blocking until available. FIFO order is strict:
// a large waiter at the head blocks smaller waiters behind it.
func (s *Semaphore) Acquire(p *Proc, n int) {
	if n <= 0 {
		panic("sim: Semaphore.Acquire with non-positive n")
	}
	if len(s.waiters) == 0 && s.tokens >= n {
		s.tokens -= n
		return
	}
	s.waiters = append(s.waiters, &semWait{p: p, n: n})
	p.park()
}

// Release returns n tokens and wakes eligible waiters in FIFO order.
func (s *Semaphore) Release(n int) {
	if n <= 0 {
		panic("sim: Semaphore.Release with non-positive n")
	}
	s.tokens += n
	for len(s.waiters) > 0 && s.tokens >= s.waiters[0].n {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.tokens -= w.n
		p := w.p
		s.k.Schedule(0, func() { p.step() })
	}
}

// Available returns the current token count.
func (s *Semaphore) Available() int { return s.tokens }
