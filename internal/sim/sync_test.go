package sim

import "testing"

func TestFutureSetBeforeWait(t *testing.T) {
	k := NewKernel()
	f := NewFuture[int](k)
	f.Set(42)
	var got int
	k.Go("w", func(p *Proc) { got = f.Wait(p) })
	k.Run()
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}

func TestFutureWaitBeforeSet(t *testing.T) {
	k := NewKernel()
	f := NewFuture[string](k)
	var got string
	var at Time
	k.Go("w", func(p *Proc) {
		got = f.Wait(p)
		at = p.Now()
	})
	k.Schedule(3*Second, func() { f.Set("hello") })
	k.Run()
	if got != "hello" || at != 3*Second {
		t.Fatalf("got %q at %v", got, at)
	}
}

func TestFutureMultipleWaiters(t *testing.T) {
	k := NewKernel()
	f := NewFuture[int](k)
	count := 0
	for i := 0; i < 5; i++ {
		k.Go("w", func(p *Proc) {
			f.Wait(p)
			count++
		})
	}
	k.Schedule(Second, func() { f.Set(1) })
	k.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestFutureDoubleSetPanics(t *testing.T) {
	k := NewKernel()
	f := NewFuture[int](k)
	f.Set(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double Set")
		}
	}()
	f.Set(2)
}

func TestFutureValueUnresolvedPanics(t *testing.T) {
	k := NewKernel()
	f := NewFuture[int](k)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Value of unresolved future")
		}
	}()
	f.Value()
}

func TestFutureOnDone(t *testing.T) {
	k := NewKernel()
	f := NewFuture[int](k)
	var got []int
	f.OnDone(func(v int) { got = append(got, v) })
	k.Schedule(Second, func() { f.Set(7) })
	k.Run()
	f.OnDone(func(v int) { got = append(got, v*2) }) // after resolution
	k.Run()
	if len(got) != 2 || got[0] != 7 || got[1] != 14 {
		t.Fatalf("got %v", got)
	}
}

func TestChanRendezvous(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, 0)
	var sentAt, recvAt Time
	k.Go("sender", func(p *Proc) {
		ch.Send(p, 99)
		sentAt = p.Now()
	})
	k.Go("receiver", func(p *Proc) {
		p.Sleep(2 * Second)
		v, ok := ch.Recv(p)
		if !ok || v != 99 {
			t.Errorf("recv = %d,%v", v, ok)
		}
		recvAt = p.Now()
	})
	k.Run()
	if sentAt != 2*Second || recvAt != 2*Second {
		t.Fatalf("sentAt=%v recvAt=%v, want both 2s", sentAt, recvAt)
	}
}

func TestChanBuffered(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, 2)
	var blockedAt, unblockedAt Time
	k.Go("sender", func(p *Proc) {
		ch.Send(p, 1) // buffered, no block
		ch.Send(p, 2) // buffered, no block
		blockedAt = p.Now()
		ch.Send(p, 3) // blocks until a recv frees a slot
		unblockedAt = p.Now()
	})
	k.Go("receiver", func(p *Proc) {
		p.Sleep(5 * Second)
		for i := 1; i <= 3; i++ {
			v, _ := ch.Recv(p)
			if v != i {
				t.Errorf("recv %d, want %d (FIFO)", v, i)
			}
		}
	})
	k.Run()
	if blockedAt != 0 {
		t.Fatalf("blockedAt = %v, want 0", blockedAt)
	}
	if unblockedAt != 5*Second {
		t.Fatalf("unblockedAt = %v, want 5s", unblockedAt)
	}
}

func TestChanCloseDrains(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, 4)
	k.Go("sender", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2)
		ch.Close()
	})
	var got []int
	var lastOK bool = true
	k.Go("receiver", func(p *Proc) {
		p.Sleep(Second)
		for {
			v, ok := ch.Recv(p)
			if !ok {
				lastOK = false
				return
			}
			got = append(got, v)
		}
	})
	k.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 || lastOK {
		t.Fatalf("got %v lastOK=%v", got, lastOK)
	}
}

func TestChanCloseWakesBlockedReceiver(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, 0)
	woke := false
	k.Go("receiver", func(p *Proc) {
		_, ok := ch.Recv(p)
		if ok {
			t.Error("expected ok=false from closed channel")
		}
		woke = true
	})
	k.Schedule(Second, func() { ch.Close() })
	k.Run()
	if !woke {
		t.Fatal("receiver never woke on close")
	}
}

func TestChanSendOnClosedPanics(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, 1)
	ch.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Go("s", func(p *Proc) { ch.Send(p, 1) })
	k.Run()
}

func TestChanTryRecv(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, 1)
	if _, ok := ch.TryRecv(); ok {
		t.Fatal("TryRecv on empty chan should fail")
	}
	k.Go("s", func(p *Proc) { ch.Send(p, 5) })
	k.Run()
	if v, ok := ch.TryRecv(); !ok || v != 5 {
		t.Fatalf("TryRecv = %d,%v", v, ok)
	}
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel()
	wg := NewWaitGroup(k)
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		i := i
		k.Go("w", func(p *Proc) {
			p.Sleep(Time(i) * Second)
			wg.Done()
		})
	}
	var doneAt Time
	k.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	k.Run()
	if doneAt != 3*Second {
		t.Fatalf("doneAt = %v, want 3s", doneAt)
	}
}

func TestWaitGroupZeroNoBlock(t *testing.T) {
	k := NewKernel()
	wg := NewWaitGroup(k)
	ran := false
	k.Go("w", func(p *Proc) {
		wg.Wait(p) // should not block
		ran = true
	})
	k.Run()
	if !ran {
		t.Fatal("Wait on zero WaitGroup blocked")
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	k := NewKernel()
	wg := NewWaitGroup(k)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	wg.Done()
}

func TestCondSignalFIFO(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.Go("w", func(p *Proc) {
			p.Sleep(Time(i) * Millisecond) // deterministic arrival order
			c.Wait(p)
			order = append(order, i)
		})
	}
	k.Schedule(Second, func() { c.Signal() })
	k.Schedule(2*Second, func() { c.Signal() })
	k.Schedule(3*Second, func() { c.Signal() })
	k.Run()
	for i, v := range []int{0, 1, 2} {
		if order[i] != v {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestCondBroadcast(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	count := 0
	for i := 0; i < 4; i++ {
		k.Go("w", func(p *Proc) {
			c.Wait(p)
			count++
		})
	}
	k.Schedule(Second, func() {
		if c.Waiting() != 4 {
			t.Errorf("Waiting = %d, want 4", c.Waiting())
		}
		c.Broadcast()
	})
	k.Run()
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
}

func TestSemaphoreFIFO(t *testing.T) {
	k := NewKernel()
	s := NewSemaphore(k, 2)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		k.Go("w", func(p *Proc) {
			p.Sleep(Time(i) * Millisecond)
			s.Acquire(p, 1)
			order = append(order, i)
			p.Sleep(Second)
			s.Release(1)
		})
	}
	k.Run()
	for i, v := range []int{0, 1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestSemaphoreLargeWaiterBlocksQueue(t *testing.T) {
	k := NewKernel()
	s := NewSemaphore(k, 2)
	var order []string
	k.Go("big", func(p *Proc) {
		p.Sleep(Millisecond)
		s.Acquire(p, 3) // cannot be satisfied until 3 tokens free
		order = append(order, "big")
		s.Release(3)
	})
	k.Go("small", func(p *Proc) {
		p.Sleep(2 * Millisecond)
		s.Acquire(p, 1) // arrives later; must queue behind big (strict FIFO)
		order = append(order, "small")
	})
	k.Schedule(Second, func() { s.Release(1) })
	k.Run()
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Fatalf("order = %v, want [big small]", order)
	}
}

func TestWaitAll(t *testing.T) {
	k := NewKernel()
	f1, f2 := NewFuture[int](k), NewFuture[int](k)
	var at Time
	k.Go("w", func(p *Proc) {
		WaitAll(p, f1, f2)
		at = p.Now()
	})
	k.Schedule(Second, func() { f2.Set(2) })
	k.Schedule(2*Second, func() { f1.Set(1) })
	k.Run()
	if at != 2*Second {
		t.Fatalf("WaitAll finished at %v, want 2s", at)
	}
}
