package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.Schedule(3*Second, func() { got = append(got, 3) })
	k.Schedule(1*Second, func() { got = append(got, 1) })
	k.Schedule(2*Second, func() { got = append(got, 2) })
	end := k.Run()
	if end != 3*Second {
		t.Fatalf("end time = %v, want 3s", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestScheduleFIFOTieBreak(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(Second, func() { got = append(got, i) })
	}
	k.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie-break order = %v, want FIFO", got)
		}
	}
}

func TestScheduleNegativePanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	k.Schedule(-1, func() {})
}

func TestScheduleAt(t *testing.T) {
	k := NewKernel()
	var fired Time
	k.ScheduleAt(5*Second, func() { fired = k.Now() })
	k.Run()
	if fired != 5*Second {
		t.Fatalf("fired at %v, want 5s", fired)
	}
}

func TestEventCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	ev := k.Schedule(Second, func() { fired = true })
	if !ev.Pending() {
		t.Fatal("event should be pending before run")
	}
	if !ev.Cancel() {
		t.Fatal("Cancel should report true for a pending event")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelOneOfMany(t *testing.T) {
	k := NewKernel()
	var got []int
	var evs []Event
	for i := 0; i < 5; i++ {
		i := i
		evs = append(evs, k.Schedule(Time(i+1)*Second, func() { got = append(got, i) }))
	}
	evs[2].Cancel()
	k.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		k.Schedule(Time(i)*Second, func() { count++ })
	}
	k.RunUntil(5 * Second)
	if count != 5 {
		t.Fatalf("count = %d after RunUntil(5s), want 5", count)
	}
	if k.Now() != 5*Second {
		t.Fatalf("now = %v, want 5s", k.Now())
	}
	k.Run()
	if count != 10 {
		t.Fatalf("count = %d after Run, want 10", count)
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	k := NewKernel()
	k.RunUntil(42 * Second)
	if k.Now() != 42*Second {
		t.Fatalf("now = %v, want 42s", k.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			k.Schedule(Millisecond, rec)
		}
	}
	k.Schedule(0, rec)
	end := k.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if end != 99*Millisecond {
		t.Fatalf("end = %v, want 99ms", end)
	}
}

func TestProcBasics(t *testing.T) {
	k := NewKernel()
	var trace []string
	k.Go("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(2 * Second)
		trace = append(trace, "a1")
	})
	k.Go("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(1 * Second)
		trace = append(trace, "b1")
	})
	k.Run()
	want := []string{"a0", "b0", "b1", "a1"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", k.LiveProcs())
	}
}

func TestProcDoneFuture(t *testing.T) {
	k := NewKernel()
	worker := k.Go("worker", func(p *Proc) { p.Sleep(5 * Second) })
	var joinedAt Time
	k.Go("joiner", func(p *Proc) {
		worker.Done().Wait(p)
		joinedAt = p.Now()
	})
	k.Run()
	if joinedAt != 5*Second {
		t.Fatalf("joined at %v, want 5s", joinedAt)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	k := NewKernel()
	k.Go("boom", func(p *Proc) {
		p.Sleep(Second)
		panic("kaboom")
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected Run to re-panic with proc failure")
		}
	}()
	k.Run()
}

func TestProcYieldOrdering(t *testing.T) {
	k := NewKernel()
	var trace []int
	k.Go("a", func(p *Proc) {
		trace = append(trace, 1)
		p.Yield()
		trace = append(trace, 3)
	})
	k.Go("b", func(p *Proc) {
		trace = append(trace, 2)
	})
	k.Run()
	for i, v := range []int{1, 2, 3} {
		if trace[i] != v {
			t.Fatalf("trace = %v", trace)
		}
	}
}

func TestCloseUnblocksParkedProcs(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, 0)
	k.Go("stuck", func(p *Proc) {
		ch.Recv(p) // blocks forever
		t.Error("stuck proc should never resume normally")
	})
	k.Run()
	if k.LiveProcs() != 1 {
		t.Fatalf("LiveProcs = %d, want 1 parked", k.LiveProcs())
	}
	k.Close()
	if k.LiveProcs() != 0 {
		t.Fatalf("LiveProcs after Close = %d, want 0", k.LiveProcs())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var trace []string
		ch := NewChan[int](k, 2)
		for i := 0; i < 4; i++ {
			i := i
			k.Go("p", func(p *Proc) {
				p.Sleep(Time(i%2) * Second)
				ch.Send(p, i)
				trace = append(trace, p.Name())
			})
		}
		k.Go("drain", func(p *Proc) {
			for i := 0; i < 4; i++ {
				v, _ := ch.Recv(p)
				trace = append(trace, string(rune('0'+v)))
				p.Sleep(500 * Millisecond)
			}
		})
		k.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic lengths: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic traces:\n%v\n%v", a, b)
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0ns"},
		{500, "500ns"},
		{2500, "2.500µs"},
		{3 * Millisecond, "3.000ms"},
		{90 * Second, "90.000s"},
		{MaxTime, "∞"},
		{-Second, "-1.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	f := func(ms uint32) bool {
		tm := FromSeconds(float64(ms) / 1000)
		want := Time(ms) * Millisecond
		diff := tm - want
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1 // float64 rounding may be off by one nanosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromSecondsSaturates(t *testing.T) {
	if FromSeconds(1e30) != MaxTime {
		t.Fatal("FromSeconds should saturate at MaxTime")
	}
}

// Property: for any batch of events with arbitrary delays, execution order is
// sorted by (time, insertion order).
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, d := range delays {
			i, d := i, d
			k.Schedule(Time(d)*Millisecond, func() {
				fired = append(fired, rec{k.Now(), i})
			})
		}
		k.Run()
		for i := 1; i < len(fired); i++ {
			prev, cur := fired[i-1], fired[i]
			if cur.at < prev.at {
				return false
			}
			if cur.at == prev.at && delays[cur.seq] == delays[prev.seq] && cur.seq < prev.seq {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStopHaltsRunAtCurrentTime(t *testing.T) {
	k := NewKernel()
	var fired []int
	k.Schedule(1*Second, func() { fired = append(fired, 1) })
	k.Schedule(2*Second, func() {
		fired = append(fired, 2)
		k.Stop()
	})
	k.Schedule(3*Second, func() { fired = append(fired, 3) })
	end := k.Run()
	if end != 2*Second {
		t.Fatalf("stopped at %v, want 2s", end)
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("fired = %v, want [1 2]", fired)
	}
	// Stop is consumed: a later Run proceeds normally from where it left
	// off, delivering the remaining event.
	end = k.Run()
	if end != 3*Second || len(fired) != 3 || fired[2] != 3 {
		t.Fatalf("resume: end=%v fired=%v", end, fired)
	}
}

func TestStopDoesNotPerturbRunUntilClock(t *testing.T) {
	// An uninterrupted RunUntil advances the clock to the deadline when the
	// queue drains; a Stop must freeze it at the last delivered event so a
	// resumed simulation stays bit-identical with an uninterrupted one.
	k := NewKernel()
	k.Schedule(1*Second, func() { k.Stop() })
	if end := k.RunUntil(10 * Second); end != 1*Second {
		t.Fatalf("stopped RunUntil returned %v, want 1s", end)
	}
	if end := k.RunUntil(10 * Second); end != 10*Second {
		t.Fatalf("resumed RunUntil returned %v, want 10s", end)
	}
}
