package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// The kernel oracle: a randomized schedule/cancel/RunUntil program is run
// against a naive sorted-slice reference executor and against real kernels
// on every backend, and the full execution traces must be identical. This
// is the license to refactor the event-queue hot path freely.

// oracleEngine abstracts the scheduler under test so the same seeded
// program can drive the reference executor and real kernels.
type oracleEngine interface {
	now() Time
	pending() int
	schedule(delay Time, fn func()) func() bool // returns the cancel func
	runUntil(deadline Time)
	run()
}

// refEvent / refEngine: the obviously-correct reference — a flat slice,
// scanned for the (at, seq) minimum on every pop. Mirrors the kernel's
// documented semantics: FIFO among equal fire times, clock bumped to the
// deadline after a bounded run, cancel is a no-op once fired.
type refEvent struct {
	at   Time
	seq  uint64
	fn   func()
	done bool // fired or cancelled
}

type refEngine struct {
	cur Time
	seq uint64
	evs []*refEvent
}

func (e *refEngine) now() Time { return e.cur }

func (e *refEngine) pending() int {
	n := 0
	for _, ev := range e.evs {
		if !ev.done {
			n++
		}
	}
	return n
}

func (e *refEngine) schedule(delay Time, fn func()) func() bool {
	ev := &refEvent{at: e.cur.SaturatingAdd(delay), seq: e.seq, fn: fn}
	e.seq++
	e.evs = append(e.evs, ev)
	return func() bool {
		if ev.done {
			return false
		}
		ev.done = true
		ev.fn = nil
		return true
	}
}

func (e *refEngine) runUntil(deadline Time) {
	for {
		var best *refEvent
		for _, ev := range e.evs {
			if ev.done || ev.at > deadline {
				continue
			}
			if best == nil || ev.at < best.at || (ev.at == best.at && ev.seq < best.seq) {
				best = ev
			}
		}
		if best == nil {
			break
		}
		e.cur = best.at
		best.done = true
		fn := best.fn
		best.fn = nil
		fn()
	}
	if deadline != MaxTime && deadline > e.cur {
		e.cur = deadline
	}
}

func (e *refEngine) run() { e.runUntil(MaxTime) }

type kernelEngine struct {
	k *Kernel
}

func (e *kernelEngine) now() Time    { return e.k.Now() }
func (e *kernelEngine) pending() int { return e.k.PendingEvents() }
func (e *kernelEngine) run()         { e.k.Run() }
func (e *kernelEngine) runUntil(d Time) {
	e.k.RunUntil(d)
}

func (e *kernelEngine) schedule(delay Time, fn func()) func() bool {
	return e.k.Schedule(delay, fn).Cancel
}

// oracleProgram drives eng with a seeded random program and returns the
// execution trace. The program exercises nested scheduling from inside
// callbacks, cancellation (from outside and inside callbacks, including
// double-cancels and cancels of already-fired events), bounded RunUntil
// segments, zero delays, same-instant collisions, delays spanning every
// timer-wheel level, and the >2^48 ns overflow region. The rng is consumed
// inside callbacks too, so any divergence in execution order derails the
// remainder of the trace — small bugs produce loud diffs.
func oracleProgram(seed int64, eng oracleEngine) []string {
	rng := rand.New(rand.NewSource(seed))
	var trace []string
	var handles []func() bool
	nextID := 0
	budget := 2500

	randomDelay := func() Time {
		switch rng.Intn(10) {
		case 0:
			return 0
		case 1:
			return Time(rng.Int63n(64)) // level 0
		case 2:
			return Time(rng.Int63n(8)) * 4096 // cross-level collisions
		case 3:
			return Time(1)<<48 + Time(rng.Int63n(1<<50)) // overflow region
		default:
			lvl := uint(rng.Intn(8))
			return Time(rng.Int63n(1 << (6*lvl + 6)))
		}
	}

	var fire func(id int) func()
	fire = func(id int) func() {
		return func() {
			trace = append(trace, fmt.Sprintf("fire %d @%d", id, eng.now()))
			for rng.Intn(3) == 0 && budget > 0 {
				budget--
				cid := nextID
				nextID++
				handles = append(handles, eng.schedule(randomDelay(), fire(cid)))
			}
			if rng.Intn(4) == 0 && len(handles) > 0 {
				i := rng.Intn(len(handles))
				trace = append(trace, fmt.Sprintf("cancel %d -> %v", i, handles[i]()))
			}
		}
	}

	for seg := 0; seg < 12; seg++ {
		n := rng.Intn(40)
		for i := 0; i < n && budget > 0; i++ {
			budget--
			cid := nextID
			nextID++
			handles = append(handles, eng.schedule(randomDelay(), fire(cid)))
		}
		for i := 0; i < 10 && len(handles) > 0; i++ {
			j := rng.Intn(len(handles))
			trace = append(trace, fmt.Sprintf("cancel %d -> %v", j, handles[j]()))
		}
		eng.runUntil(eng.now().SaturatingAdd(randomDelay()))
		trace = append(trace, fmt.Sprintf("seg %d now=%d pending=%d", seg, eng.now(), eng.pending()))
	}
	eng.run()
	trace = append(trace, fmt.Sprintf("end now=%d pending=%d", eng.now(), eng.pending()))
	return trace
}

func diffTrace(t *testing.T, name string, want, got []string) {
	t.Helper()
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			t.Fatalf("%s: trace diverges at %d:\n  reference: %s\n  %s", name, i, want[i], got[i])
		}
	}
	if len(want) != len(got) {
		t.Fatalf("%s: trace length %d, reference %d", name, len(got), len(want))
	}
}

func TestKernelOracle(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ref := oracleProgram(seed, &refEngine{})
			for _, b := range []Backend{BackendHeap, BackendWheel} {
				k := NewKernelWith(Options{Backend: b})
				got := oracleProgram(seed, &kernelEngine{k: k})
				diffTrace(t, string(b), ref, got)
				if !k.Idle() {
					t.Fatalf("%s: kernel not idle after Run", b)
				}
				k.Close()
			}
		})
	}
}

// TestKernelBackendsAgreeDense floods a narrow time range so level-0 slots,
// ready-chain ordering, and pooled-event recycling are all stressed with
// heavy same-instant collisions.
func TestKernelBackendsAgreeDense(t *testing.T) {
	run := func(b Backend) []string {
		k := NewKernelWith(Options{Backend: b})
		defer k.Close()
		rng := rand.New(rand.NewSource(7))
		var trace []string
		for i := 0; i < 500; i++ {
			id := i
			at := Time(rng.Int63n(97))
			k.Schedule(at, func() {
				trace = append(trace, fmt.Sprintf("%d@%d", id, k.Now()))
			})
		}
		k.Run()
		return trace
	}
	diffTrace(t, "dense", run(BackendHeap), run(BackendWheel))
}
