package storage

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestOfflineFailsIO(t *testing.T) {
	k := sim.NewKernel()
	nfs := NewNFS("io")
	nfs.EnableIO(k, 100, 100)
	nfs.SetOffline(true)
	if !nfs.Offline() {
		t.Fatal("Offline() = false after SetOffline(true)")
	}
	k.Go("w", func(p *sim.Proc) {
		if err := nfs.Write(p, 100); !errors.Is(err, ErrOffline) {
			t.Errorf("Write err = %v, want ErrOffline", err)
		}
		if err := nfs.Read(p, 100); !errors.Is(err, ErrOffline) {
			t.Errorf("Read err = %v, want ErrOffline", err)
		}
		if p.Now() != 0 {
			t.Errorf("offline IO consumed %v of simulated time, want immediate failure", p.Now())
		}
		// Back online, the same transfer succeeds and costs time again.
		nfs.SetOffline(false)
		if err := nfs.Read(p, 100); err != nil {
			t.Errorf("Read after restore: %v", err)
		}
		if p.Now() == 0 {
			t.Error("restored read cost no time")
		}
	})
	k.Run()
}

func TestSlowdownScalesServiceTime(t *testing.T) {
	k := sim.NewKernel()
	nfs := NewNFS("io")
	nfs.EnableIO(k, 100, 100) // 100 B/s
	nfs.SetSlowdown(3)
	var done sim.Time
	k.Go("r", func(p *sim.Proc) {
		if err := nfs.Read(p, 100); err != nil { // 1 s clean, 3 s degraded
			t.Errorf("Read: %v", err)
		}
		done = p.Now()
	})
	k.Run()
	if done < 2900*sim.Millisecond || done > 3100*sim.Millisecond {
		t.Fatalf("degraded read took %v, want ≈3s", done)
	}
	// Factors ≤1 clear the slowdown.
	nfs.SetSlowdown(0.5)
	var done2 sim.Time
	start := k.Now()
	k.Go("r2", func(p *sim.Proc) {
		if err := nfs.Read(p, 100); err != nil {
			t.Errorf("Read: %v", err)
		}
		done2 = p.Now() - start
	})
	k.Run()
	if done2 < 900*sim.Millisecond || done2 > 1100*sim.Millisecond {
		t.Fatalf("clean read took %v, want ≈1s", done2)
	}
}
