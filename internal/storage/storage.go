// Package storage models the NFS-style shared storage the paper's live
// migration depends on (§IV-A: "Live migration was required for the shared
// storage among the source and destination nodes. In this experiment, we
// used NFS version 3").
package storage

import (
	"errors"

	"repro/internal/hw"
	"repro/internal/sim"
)

// ErrNotShared is returned when a migration's source and destination do
// not mount a common store.
var ErrNotShared = errors.New("storage: nodes do not share a store")

// NFS is a shared store with a mount set and an optional I/O service model
// (a single server whose read and write bandwidth is shared fairly by
// concurrent clients — what makes eight VMs checkpointing at once slower
// than one).
type NFS struct {
	Name   string
	mounts map[*hw.Node]bool

	readPS  *sim.PS
	writePS *sim.PS
}

// NewNFS returns an empty store with instantaneous I/O (call EnableIO to
// model server bandwidth).
func NewNFS(name string) *NFS {
	return &NFS{Name: name, mounts: make(map[*hw.Node]bool)}
}

// EnableIO gives the store finite read/write bandwidth (bytes/sec),
// shared fairly among concurrent requests.
func (s *NFS) EnableIO(k *sim.Kernel, readBW, writeBW float64) {
	s.readPS = sim.NewPS(k, readBW, 0)
	s.writePS = sim.NewPS(k, writeBW, 0)
}

// Write stores bytes, blocking for the server's share of write bandwidth.
func (s *NFS) Write(p *sim.Proc, bytes float64) {
	if s.writePS != nil && bytes > 0 {
		s.writePS.Serve(p, bytes)
	}
}

// Read fetches bytes, blocking for the server's share of read bandwidth.
func (s *NFS) Read(p *sim.Proc, bytes float64) {
	if s.readPS != nil && bytes > 0 {
		s.readPS.Serve(p, bytes)
	}
}

// Mount exports the store to a node.
func (s *NFS) Mount(n *hw.Node) { s.mounts[n] = true }

// MountAll exports the store to every node of the clusters.
func (s *NFS) MountAll(clusters ...*hw.Cluster) {
	for _, c := range clusters {
		for _, n := range c.Nodes {
			s.Mount(n)
		}
	}
}

// Unmount withdraws the export.
func (s *NFS) Unmount(n *hw.Node) { delete(s.mounts, n) }

// MountedOn reports whether the node mounts this store.
func (s *NFS) MountedOn(n *hw.Node) bool { return s.mounts[n] }

// SharedBy reports whether both nodes mount this store, the precondition
// for (disk-less) live migration.
func (s *NFS) SharedBy(a, b *hw.Node) bool { return s.mounts[a] && s.mounts[b] }
