// Package storage models the NFS-style shared storage the paper's live
// migration depends on (§IV-A: "Live migration was required for the shared
// storage among the source and destination nodes. In this experiment, we
// used NFS version 3").
package storage

import (
	"errors"
	"fmt"

	"repro/internal/hw"
	"repro/internal/sim"
)

// Errors returned by store operations.
var (
	// ErrNotShared is returned when a migration's source and destination
	// do not mount a common store.
	ErrNotShared = errors.New("storage: nodes do not share a store")
	// ErrOffline is returned while the server is in an injected outage.
	ErrOffline = errors.New("storage: server offline")
)

// NFS is a shared store with a mount set and an optional I/O service model
// (a single server whose read and write bandwidth is shared fairly by
// concurrent clients — what makes eight VMs checkpointing at once slower
// than one).
type NFS struct {
	Name   string
	mounts map[*hw.Node]bool

	readPS  *sim.PS
	writePS *sim.PS

	slowdown float64 // service-time multiplier (fault injection; 0/1 = none)
	offline  bool    // injected outage: requests fail immediately
}

// NewNFS returns an empty store with instantaneous I/O (call EnableIO to
// model server bandwidth).
func NewNFS(name string) *NFS {
	return &NFS{Name: name, mounts: make(map[*hw.Node]bool)}
}

// EnableIO gives the store finite read/write bandwidth (bytes/sec),
// shared fairly among concurrent requests.
func (s *NFS) EnableIO(k *sim.Kernel, readBW, writeBW float64) {
	s.readPS = sim.NewPS(k, readBW, 0)
	s.writePS = sim.NewPS(k, writeBW, 0)
}

// SetSlowdown stretches every transfer's service time by factor (fault
// injection: a degraded NFS server). Factors ≤1 clear the slowdown.
func (s *NFS) SetSlowdown(factor float64) {
	if factor <= 1 {
		factor = 0
	}
	s.slowdown = factor
}

// SetOffline toggles an injected outage. While offline, Read and Write
// fail immediately with ErrOffline (the NFS client would retry for minutes
// and then surface EIO; the caller owns the retry policy here).
func (s *NFS) SetOffline(on bool) { s.offline = on }

// Offline reports whether the server is in an injected outage.
func (s *NFS) Offline() bool { return s.offline }

func (s *NFS) scaled(bytes float64) float64 {
	if s.slowdown > 1 {
		return bytes * s.slowdown
	}
	return bytes
}

// Write stores bytes, blocking for the server's share of write bandwidth.
// It fails if the server is offline.
func (s *NFS) Write(p *sim.Proc, bytes float64) error {
	if s.offline {
		return fmt.Errorf("%w: %s (write)", ErrOffline, s.Name)
	}
	if s.writePS != nil && bytes > 0 {
		s.writePS.Serve(p, s.scaled(bytes))
	}
	return nil
}

// Read fetches bytes, blocking for the server's share of read bandwidth.
// It fails if the server is offline.
func (s *NFS) Read(p *sim.Proc, bytes float64) error {
	if s.offline {
		return fmt.Errorf("%w: %s (read)", ErrOffline, s.Name)
	}
	if s.readPS != nil && bytes > 0 {
		s.readPS.Serve(p, s.scaled(bytes))
	}
	return nil
}

// Mount exports the store to a node.
func (s *NFS) Mount(n *hw.Node) { s.mounts[n] = true }

// MountAll exports the store to every node of the clusters.
func (s *NFS) MountAll(clusters ...*hw.Cluster) {
	for _, c := range clusters {
		for _, n := range c.Nodes {
			s.Mount(n)
		}
	}
}

// Unmount withdraws the export.
func (s *NFS) Unmount(n *hw.Node) { delete(s.mounts, n) }

// MountedOn reports whether the node mounts this store.
func (s *NFS) MountedOn(n *hw.Node) bool { return s.mounts[n] }

// SharedBy reports whether both nodes mount this store, the precondition
// for (disk-less) live migration.
func (s *NFS) SharedBy(a, b *hw.Node) bool { return s.mounts[a] && s.mounts[b] }
