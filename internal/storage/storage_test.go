package storage

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

func TestMountSharing(t *testing.T) {
	k := sim.NewKernel()
	tb := hw.NewTestbed(k)
	a := tb.AddCluster("a", 2, hw.AGCNodeSpec)
	b := tb.AddCluster("b", 2, hw.AGCNodeSpec)
	nfs := NewNFS("nfs0")
	nfs.MountAll(a)
	if !nfs.SharedBy(a.Nodes[0], a.Nodes[1]) {
		t.Fatal("intra-cluster sharing broken")
	}
	if nfs.SharedBy(a.Nodes[0], b.Nodes[0]) {
		t.Fatal("b not mounted yet")
	}
	nfs.Mount(b.Nodes[0])
	if !nfs.SharedBy(a.Nodes[0], b.Nodes[0]) {
		t.Fatal("cross-cluster sharing broken after mount")
	}
	nfs.Unmount(b.Nodes[0])
	if nfs.MountedOn(b.Nodes[0]) {
		t.Fatal("unmount failed")
	}
}

func TestIOBandwidthSharing(t *testing.T) {
	k := sim.NewKernel()
	nfs := NewNFS("io")
	nfs.EnableIO(k, 100, 50) // 100 B/s read, 50 B/s write
	var readDone, writeDone sim.Time
	k.Go("r", func(p *sim.Proc) {
		nfs.Read(p, 200) // 2 s alone
		readDone = p.Now()
	})
	k.Go("w", func(p *sim.Proc) {
		nfs.Write(p, 200) // 4 s alone (separate write server)
		writeDone = p.Now()
	})
	k.Run()
	if readDone < 1900*sim.Millisecond || readDone > 2100*sim.Millisecond {
		t.Fatalf("read took %v, want ≈2s", readDone)
	}
	if writeDone < 3900*sim.Millisecond || writeDone > 4100*sim.Millisecond {
		t.Fatalf("write took %v, want ≈4s", writeDone)
	}
}

func TestIOConcurrentWritersShare(t *testing.T) {
	k := sim.NewKernel()
	nfs := NewNFS("io")
	nfs.EnableIO(k, 100, 100)
	var d1, d2 sim.Time
	k.Go("w1", func(p *sim.Proc) { nfs.Write(p, 100); d1 = p.Now() })
	k.Go("w2", func(p *sim.Proc) { nfs.Write(p, 100); d2 = p.Now() })
	k.Run()
	// Two writers share 100 B/s: both finish at ≈2 s.
	if d1 < 1900*sim.Millisecond || d2 < 1900*sim.Millisecond {
		t.Fatalf("d1=%v d2=%v, want ≈2s (shared server)", d1, d2)
	}
}

func TestIODisabledInstant(t *testing.T) {
	k := sim.NewKernel()
	nfs := NewNFS("fast")
	done := sim.Time(-1)
	k.Go("w", func(p *sim.Proc) {
		nfs.Write(p, 1e12)
		nfs.Read(p, 1e12)
		done = p.Now()
	})
	k.Run()
	if done != 0 {
		t.Fatalf("instant IO took %v", done)
	}
}
