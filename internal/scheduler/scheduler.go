// Package scheduler models the cloud scheduler the paper assumes (§III-C:
// "we assume that the cloud scheduler provides information, including the
// source and destination nodes of migration, and the PCI ID of a
// VMM-bypass I/O device"). It delivers trigger events — maintenance
// windows, disaster evacuations, consolidation decisions — to a Ninja
// orchestrator at scheduled times and records the outcomes, in the spirit
// of the GridARS middleware the authors cite.
package scheduler

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/hw"
	"repro/internal/ninja"
	"repro/internal/sim"
)

// Reason classifies why a migration is triggered (§II-A use cases).
type Reason int

const (
	// Maintenance: non-stop hardware/software maintenance.
	Maintenance Reason = iota
	// Consolidation: high resource utilization / server consolidation.
	Consolidation
	// DisasterRecovery: evacuate before the data center fails.
	DisasterRecovery
	// Recovery: migrate back after the fallback condition clears.
	Recovery
)

// String returns the reason label.
func (r Reason) String() string {
	switch r {
	case Maintenance:
		return "maintenance"
	case Consolidation:
		return "consolidation"
	case DisasterRecovery:
		return "disaster-recovery"
	case Recovery:
		return "recovery"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Event is one planned migration.
type Event struct {
	At     sim.Time
	Reason Reason
	// Dsts is the destination host list (one node per VM, job order) —
	// the information the scheduler owns.
	Dsts []*hw.Node
	// HostPCIID is the VMM-bypass device's host address at destinations.
	HostPCIID string
}

// Outcome records a completed trigger.
type Outcome struct {
	Event  Event
	Report ninja.Report
	Err    error
	// Started/Finished are the actual execution times.
	Started, Finished sim.Time
}

// Scheduler executes a plan of migration events against an orchestrator.
type Scheduler struct {
	k     *sim.Kernel
	orch  *ninja.Orchestrator
	plan  []Event
	done  []Outcome
	fin   *sim.Future[struct{}]
	begun bool
}

// ErrAlreadyStarted guards against double Start.
var ErrAlreadyStarted = errors.New("scheduler: already started")

// DstCountError reports a planned event whose destination list does not
// match the job's VM count — the migration script needs exactly one
// destination node per VM, in job VM order.
type DstCountError struct {
	Event Event
	Want  int // job VM count
	Got   int // len(Event.Dsts)
}

func (e *DstCountError) Error() string {
	return fmt.Sprintf("scheduler: event %s at t=%.2fs has %d destinations for a %d-VM job",
		e.Event.Reason, e.Event.At.Seconds(), e.Got, e.Want)
}

// New builds a scheduler over an orchestrator.
func New(orch *ninja.Orchestrator) *Scheduler {
	return &Scheduler{k: orch.Job().Kernel(), orch: orch}
}

// Plan appends an event to the plan (events may be added in any order;
// they execute sorted by time). The destination list is validated here,
// at plan time: a mismatch against the job's VM count returns a
// *DstCountError instead of surfacing mid-migration.
func (s *Scheduler) Plan(ev Event) error {
	if want := len(s.orch.Job().VMs()); len(ev.Dsts) != want {
		return &DstCountError{Event: ev, Want: want, Got: len(ev.Dsts)}
	}
	s.plan = append(s.plan, ev)
	return nil
}

// PlanSize returns the number of planned events.
func (s *Scheduler) PlanSize() int { return len(s.plan) }

// Start launches the plan executor. Events run strictly sequentially in
// time order — a trigger that arrives while a previous migration is still
// running waits for it (the runtime refuses concurrent checkpoints).
// Events sharing a timestamp execute in plan-insertion order (the sort is
// stable), so a plan is deterministic regardless of timer coincidences.
// The returned future resolves when every planned event has executed.
func (s *Scheduler) Start() (*sim.Future[struct{}], error) {
	if s.begun {
		return nil, ErrAlreadyStarted
	}
	s.begun = true
	s.fin = sim.NewFuture[struct{}](s.k)
	plan := append([]Event(nil), s.plan...)
	sort.SliceStable(plan, func(i, j int) bool { return plan[i].At < plan[j].At })
	s.k.Go("cloud-scheduler", func(p *sim.Proc) {
		for _, ev := range plan {
			if ev.At > p.Now() {
				p.Sleep(ev.At - p.Now())
			}
			out := Outcome{Event: ev, Started: p.Now()}
			out.Report, out.Err = s.orch.Migrate(p, ev.Dsts)
			out.Finished = p.Now()
			s.done = append(s.done, out)
		}
		s.fin.Set(struct{}{})
	})
	return s.fin, nil
}

// Outcomes returns the executed events in completion order.
func (s *Scheduler) Outcomes() []Outcome { return s.done }

// Spares is the scheduler's pool of standby destination nodes, handed to
// the orchestrator (ninja.Options.Spares) so a migration whose planned
// destination died mid-flight can be redirected instead of aborted. It
// implements ninja.SparePool and is safe for concurrent use — a fleet of
// orchestrators running gang migrations in parallel may all reach for the
// same pool, and two of them must never walk away with the same node.
type Spares struct {
	mu    sync.Mutex
	nodes []*hw.Node
}

// NewSpares builds a pool from standby nodes (order is preference order).
func NewSpares(nodes ...*hw.Node) *Spares {
	return &Spares{nodes: append([]*hw.Node(nil), nodes...)}
}

// Add appends a standby node to the pool.
func (s *Spares) Add(n *hw.Node) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nodes = append(s.nodes, n)
}

// Remaining returns how many spares are still available.
func (s *Spares) Remaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.nodes)
}

// Acquire removes and returns the first healthy spare that is not already
// a planned destination, or nil when none qualifies.
func (s *Spares) Acquire(exclude []*hw.Node) *hw.Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, n := range s.nodes {
		if n.Failed() || contains(exclude, n) {
			continue
		}
		s.nodes = append(s.nodes[:i], s.nodes[i+1:]...)
		return n
	}
	return nil
}

func contains(ns []*hw.Node, n *hw.Node) bool {
	for _, x := range ns {
		if x == n {
			return true
		}
	}
	return false
}
