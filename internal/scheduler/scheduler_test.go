package scheduler

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func deploy(t *testing.T) *experiments.Deployment {
	t.Helper()
	d, err := experiments.Deploy(experiments.DeployConfig{
		NVMs: 2, RanksPerVM: 1, AttachHCA: true, DstHasIB: false,
		ContinueLikeRestart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func launchApp(t *testing.T, d *experiments.Deployment, iters int) *sim.Future[struct{}] {
	t.Helper()
	return d.Job.Launch("app", func(p *sim.Proc, rk *mpi.Rank) {
		for i := 0; i < iters; i++ {
			rk.FTProbe(p)
			rk.Compute(p, 1)
			if err := rk.Bcast(p, 0, 1e6); err != nil {
				t.Errorf("bcast: %v", err)
				return
			}
		}
	})
}

func TestPlannedEvacuationAndReturn(t *testing.T) {
	d := deploy(t)
	app := launchApp(t, d, 400)
	s := New(d.Orch)
	epoch := d.K.Now()
	s.Plan(Event{At: epoch + 10*sim.Second, Reason: DisasterRecovery, Dsts: d.DstNodes(2)})
	s.Plan(Event{At: epoch + 200*sim.Second, Reason: Recovery, Dsts: d.SrcNodes(2)})
	fin, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	d.K.Run()
	if !fin.Done() || !app.Done() {
		t.Fatal("plan or app incomplete")
	}
	outs := s.Outcomes()
	if len(outs) != 2 {
		t.Fatalf("%d outcomes", len(outs))
	}
	for _, o := range outs {
		if o.Err != nil {
			t.Fatalf("%s failed: %v", o.Event.Reason, o.Err)
		}
		if o.Started < o.Event.At {
			t.Fatalf("%s started at %v before planned %v", o.Event.Reason, o.Started, o.Event.At)
		}
	}
	if outs[0].Event.Reason != DisasterRecovery || outs[1].Event.Reason != Recovery {
		t.Fatal("events executed out of order")
	}
	// VMs back home, transport back on InfiniBand.
	for i, vm := range d.VMs {
		if vm.Node() != d.Src.Nodes[i] {
			t.Fatalf("VM %d not home after recovery", i)
		}
	}
	if name, _ := d.Job.Rank(0).TransportTo(1); name != "openib" {
		t.Fatalf("transport = %s after recovery", name)
	}
}

func TestOverlappingEventsSerialize(t *testing.T) {
	d := deploy(t)
	app := launchApp(t, d, 400)
	s := New(d.Orch)
	epoch := d.K.Now()
	// Second event fires while the first migration is still running: it
	// must wait, not fail.
	s.Plan(Event{At: epoch + 5*sim.Second, Reason: Maintenance, Dsts: d.DstNodes(2)})
	s.Plan(Event{At: epoch + 6*sim.Second, Reason: Recovery, Dsts: d.SrcNodes(2)})
	fin, _ := s.Start()
	d.K.Run()
	if !fin.Done() || !app.Done() {
		t.Fatal("incomplete")
	}
	outs := s.Outcomes()
	if outs[0].Err != nil || outs[1].Err != nil {
		t.Fatalf("errors: %v / %v", outs[0].Err, outs[1].Err)
	}
	if outs[1].Started < outs[0].Finished {
		t.Fatal("second event overlapped the first")
	}
}

func TestDoubleStartRefused(t *testing.T) {
	d := deploy(t)
	s := New(d.Orch)
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(); err != ErrAlreadyStarted {
		t.Fatalf("err = %v", err)
	}
	d.K.Run()
}

func TestReasonString(t *testing.T) {
	for r, want := range map[Reason]string{
		Maintenance: "maintenance", Consolidation: "consolidation",
		DisasterRecovery: "disaster-recovery", Recovery: "recovery",
	} {
		if r.String() != want {
			t.Fatalf("%d → %s", r, r.String())
		}
	}
}
