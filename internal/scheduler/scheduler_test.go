// External test package: the deployment helpers live in experiments, and
// an in-package test importing experiments would forbid experiments (and
// anything above it, like the fleet control plane) from ever importing
// scheduler.
package scheduler_test

import (
	"errors"
	"testing"

	"repro/internal/experiments"
	"repro/internal/mpi"
	"repro/internal/scheduler"
	"repro/internal/sim"
)

func deploy(t *testing.T) *experiments.Deployment {
	t.Helper()
	d, err := experiments.Deploy(experiments.DeployConfig{
		NVMs: 2, RanksPerVM: 1, AttachHCA: true, DstHasIB: false,
		ContinueLikeRestart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func launchApp(t *testing.T, d *experiments.Deployment, iters int) *sim.Future[struct{}] {
	t.Helper()
	return d.Job.Launch("app", func(p *sim.Proc, rk *mpi.Rank) {
		for i := 0; i < iters; i++ {
			rk.FTProbe(p)
			rk.Compute(p, 1)
			if err := rk.Bcast(p, 0, 1e6); err != nil {
				t.Errorf("bcast: %v", err)
				return
			}
		}
	})
}

func mustPlan(t *testing.T, s *scheduler.Scheduler, ev scheduler.Event) {
	t.Helper()
	if err := s.Plan(ev); err != nil {
		t.Fatal(err)
	}
}

func TestPlannedEvacuationAndReturn(t *testing.T) {
	d := deploy(t)
	app := launchApp(t, d, 400)
	s := scheduler.New(d.Orch)
	epoch := d.K.Now()
	mustPlan(t, s, scheduler.Event{At: epoch + 10*sim.Second, Reason: scheduler.DisasterRecovery, Dsts: d.DstNodes(2)})
	mustPlan(t, s, scheduler.Event{At: epoch + 200*sim.Second, Reason: scheduler.Recovery, Dsts: d.SrcNodes(2)})
	fin, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	d.K.Run()
	if !fin.Done() || !app.Done() {
		t.Fatal("plan or app incomplete")
	}
	outs := s.Outcomes()
	if len(outs) != 2 {
		t.Fatalf("%d outcomes", len(outs))
	}
	for _, o := range outs {
		if o.Err != nil {
			t.Fatalf("%s failed: %v", o.Event.Reason, o.Err)
		}
		if o.Started < o.Event.At {
			t.Fatalf("%s started at %v before planned %v", o.Event.Reason, o.Started, o.Event.At)
		}
	}
	if outs[0].Event.Reason != scheduler.DisasterRecovery || outs[1].Event.Reason != scheduler.Recovery {
		t.Fatal("events executed out of order")
	}
	// VMs back home, transport back on InfiniBand.
	for i, vm := range d.VMs {
		if vm.Node() != d.Src.Nodes[i] {
			t.Fatalf("VM %d not home after recovery", i)
		}
	}
	if name, _ := d.Job.Rank(0).TransportTo(1); name != "openib" {
		t.Fatalf("transport = %s after recovery", name)
	}
}

func TestOverlappingEventsSerialize(t *testing.T) {
	d := deploy(t)
	app := launchApp(t, d, 400)
	s := scheduler.New(d.Orch)
	epoch := d.K.Now()
	// Second event fires while the first migration is still running: it
	// must wait, not fail.
	mustPlan(t, s, scheduler.Event{At: epoch + 5*sim.Second, Reason: scheduler.Maintenance, Dsts: d.DstNodes(2)})
	mustPlan(t, s, scheduler.Event{At: epoch + 6*sim.Second, Reason: scheduler.Recovery, Dsts: d.SrcNodes(2)})
	fin, _ := s.Start()
	d.K.Run()
	if !fin.Done() || !app.Done() {
		t.Fatal("incomplete")
	}
	outs := s.Outcomes()
	if outs[0].Err != nil || outs[1].Err != nil {
		t.Fatalf("errors: %v / %v", outs[0].Err, outs[1].Err)
	}
	if outs[1].Started < outs[0].Finished {
		t.Fatal("second event overlapped the first")
	}
}

func TestPlanValidatesDstCount(t *testing.T) {
	d := deploy(t) // 2-VM job
	s := scheduler.New(d.Orch)
	err := s.Plan(scheduler.Event{At: 10 * sim.Second, Reason: scheduler.Maintenance, Dsts: d.DstNodes(1)})
	var dce *scheduler.DstCountError
	if !errors.As(err, &dce) {
		t.Fatalf("Plan with 1 destination for a 2-VM job: err = %v, want *DstCountError", err)
	}
	if dce.Want != 2 || dce.Got != 1 {
		t.Fatalf("DstCountError = want %d / got %d", dce.Want, dce.Got)
	}
	if s.PlanSize() != 0 {
		t.Fatalf("rejected event was planned anyway (PlanSize = %d)", s.PlanSize())
	}
	if err := s.Plan(scheduler.Event{At: 10 * sim.Second, Reason: scheduler.Maintenance, Dsts: d.DstNodes(2)}); err != nil {
		t.Fatalf("valid event rejected: %v", err)
	}
}

// Events planned for the same timestamp must execute in plan-insertion
// order — the executor's sort is stable on At. Regression guard: an
// unstable sort would make same-time plans nondeterministic.
func TestSameTimestampEventsKeepPlanOrder(t *testing.T) {
	d := deploy(t)
	app := launchApp(t, d, 400)
	s := scheduler.New(d.Orch)
	at := d.K.Now() + 5*sim.Second
	// Out and back, planned for the same instant: evacuation first.
	mustPlan(t, s, scheduler.Event{At: at, Reason: scheduler.DisasterRecovery, Dsts: d.DstNodes(2)})
	mustPlan(t, s, scheduler.Event{At: at, Reason: scheduler.Recovery, Dsts: d.SrcNodes(2)})
	fin, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	d.K.Run()
	if !fin.Done() || !app.Done() {
		t.Fatal("incomplete")
	}
	outs := s.Outcomes()
	if len(outs) != 2 {
		t.Fatalf("%d outcomes", len(outs))
	}
	if outs[0].Event.Reason != scheduler.DisasterRecovery || outs[1].Event.Reason != scheduler.Recovery {
		t.Fatalf("same-timestamp events ran out of plan order: %s then %s",
			outs[0].Event.Reason, outs[1].Event.Reason)
	}
	for i, vm := range d.VMs {
		if vm.Node() != d.Src.Nodes[i] {
			t.Fatalf("VM %d not home after same-time out-and-back", i)
		}
	}
}

func TestDoubleStartRefused(t *testing.T) {
	d := deploy(t)
	s := scheduler.New(d.Orch)
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(); err != scheduler.ErrAlreadyStarted {
		t.Fatalf("err = %v", err)
	}
	d.K.Run()
}

func TestReasonString(t *testing.T) {
	for r, want := range map[scheduler.Reason]string{
		scheduler.Maintenance: "maintenance", scheduler.Consolidation: "consolidation",
		scheduler.DisasterRecovery: "disaster-recovery", scheduler.Recovery: "recovery",
	} {
		if r.String() != want {
			t.Fatalf("%d → %s", r, r.String())
		}
	}
}
