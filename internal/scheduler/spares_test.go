package scheduler

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

func TestSparesAcquire(t *testing.T) {
	k := sim.NewKernel()
	tb := hw.NewTestbed(k)
	c := tb.AddCluster("c", 4, hw.AGCNodeSpec)
	s := NewSpares(c.Nodes...)
	if s.Remaining() != 4 {
		t.Fatalf("Remaining = %d, want 4", s.Remaining())
	}

	c.Nodes[0].Fail()                        // skipped: failed
	got := s.Acquire([]*hw.Node{c.Nodes[1]}) // skipped: excluded
	if got != c.Nodes[2] {
		t.Fatalf("Acquire = %v, want node 2 (first healthy, non-excluded)", got)
	}
	if s.Remaining() != 3 {
		t.Fatalf("Remaining = %d after Acquire, want 3", s.Remaining())
	}
	// The acquired node is gone; next call moves on.
	if got := s.Acquire(nil); got != c.Nodes[1] {
		t.Fatalf("second Acquire = %v, want node 1", got)
	}

	// Only the failed node is left (plus nothing healthy) → nil.
	if got := s.Acquire([]*hw.Node{c.Nodes[3]}); got != nil {
		t.Fatalf("Acquire with everything failed/excluded = %v, want nil", got)
	}

	s.Add(c.Nodes[3]) // duplicate add is the caller's business; pool is a list
	if got := s.Acquire(nil); got != c.Nodes[3] {
		t.Fatalf("Acquire after Add = %v, want node 3", got)
	}
}
