package scheduler_test

import (
	"sync"
	"testing"

	"repro/internal/hw"
	"repro/internal/scheduler"
	"repro/internal/sim"
)

func TestSparesAcquire(t *testing.T) {
	k := sim.NewKernel()
	tb := hw.NewTestbed(k)
	c := tb.AddCluster("c", 4, hw.AGCNodeSpec)
	s := scheduler.NewSpares(c.Nodes...)
	if s.Remaining() != 4 {
		t.Fatalf("Remaining = %d, want 4", s.Remaining())
	}

	c.Nodes[0].Fail()                        // skipped: failed
	got := s.Acquire([]*hw.Node{c.Nodes[1]}) // skipped: excluded
	if got != c.Nodes[2] {
		t.Fatalf("Acquire = %v, want node 2 (first healthy, non-excluded)", got)
	}
	if s.Remaining() != 3 {
		t.Fatalf("Remaining = %d after Acquire, want 3", s.Remaining())
	}
	// The acquired node is gone; next call moves on.
	if got := s.Acquire(nil); got != c.Nodes[1] {
		t.Fatalf("second Acquire = %v, want node 1", got)
	}

	// Only the failed node is left (plus nothing healthy) → nil.
	if got := s.Acquire([]*hw.Node{c.Nodes[3]}); got != nil {
		t.Fatalf("Acquire with everything failed/excluded = %v, want nil", got)
	}

	s.Add(c.Nodes[3]) // duplicate add is the caller's business; pool is a list
	if got := s.Acquire(nil); got != c.Nodes[3] {
		t.Fatalf("Acquire after Add = %v, want node 3", got)
	}
}

// A fleet of orchestrators shares one spare pool; concurrent Acquire
// calls must neither race (run under -race) nor hand the same node to
// two callers.
func TestSparesConcurrentAcquire(t *testing.T) {
	k := sim.NewKernel()
	tb := hw.NewTestbed(k)
	const n = 16
	c := tb.AddCluster("c", n, hw.AGCNodeSpec)
	s := scheduler.NewSpares(c.Nodes...)

	const acquirers = 4 * n // more claimants than spares: some must get nil
	got := make([]*hw.Node, acquirers)
	var wg sync.WaitGroup
	for i := 0; i < acquirers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = s.Acquire(nil)
			s.Remaining() // interleave reads with the takes
		}()
	}
	wg.Wait()

	seen := map[*hw.Node]bool{}
	wins := 0
	for _, node := range got {
		if node == nil {
			continue
		}
		if seen[node] {
			t.Fatalf("node %s handed to two acquirers", node.Name)
		}
		seen[node] = true
		wins++
	}
	if wins != n {
		t.Fatalf("%d spares handed out, want exactly %d", wins, n)
	}
	if s.Remaining() != 0 {
		t.Fatalf("Remaining = %d after draining, want 0", s.Remaining())
	}
}
