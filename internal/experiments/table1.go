package experiments

import (
	"repro/internal/hw"
	"repro/internal/metrics"
)

// Table1 reproduces Table I: the AGC cluster specification, verified
// against the simulated testbed model (core counts, memory, interconnect
// bandwidths are cross-checked by the test suite).
func Table1() *metrics.Table {
	t := metrics.NewTable("Table I — AGC cluster specifications", "Item", "Value")
	for _, row := range hw.AGCSpecTable() {
		t.AddRow(row.Item, row.Value)
	}
	return t
}
