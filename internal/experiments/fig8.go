package experiments

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/ninja"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Fig8Result is the fallback-and-recovery experiment outcome: rank 0's
// per-iteration elapsed times with the migration overhead landing in
// steps 11, 21 and 31 (1-indexed), plus the three migration reports.
type Fig8Result struct {
	RanksPerVM int
	Series     metrics.Series
	// Phase[i] labels step i ("4 hosts (IB)", "2 hosts (TCP)", ...).
	Phase   []string
	Reports []ninja.Report
}

// fig8Migration is one gated migration of the scenario.
type fig8Migration struct {
	step     int
	dsts     []*hw.Node
	label    string
	arrivals int
	ready    *sim.Future[struct{}]
	release  *sim.Future[struct{}]
}

// Fig8 reproduces Fig. 8: 4 VMs running the bcast+reduce benchmark (8 GB
// per node, 40 steps) follow the scenario 4 hosts (IB) → 2 hosts (TCP) →
// 4 hosts (IB) → 4 hosts (TCP), with Ninja migration launched every 10
// iteration steps. ranksPerVM is 1 (Fig. 8a) or 8 (Fig. 8b).
func Fig8(ranksPerVM int, steps int) (*Fig8Result, error) {
	if steps <= 0 {
		steps = 40
	}
	d, err := Deploy(DeployConfig{
		NVMs: 4, RanksPerVM: ranksPerVM, AttachHCA: true,
		DstHasIB: false, ContinueLikeRestart: true,
	})
	if err != nil {
		return nil, err
	}
	k := d.K
	nRanks := d.Job.Size()

	// The scenario's three migrations, gated at exact step boundaries.
	third := steps / 4
	consolidated := []*hw.Node{d.Dst.Nodes[0], d.Dst.Nodes[0], d.Dst.Nodes[1], d.Dst.Nodes[1]}
	home := d.SrcNodes(4)
	spread := d.DstNodes(4)
	plan := map[int]*fig8Migration{}
	for _, m := range []*fig8Migration{
		{step: 1 * third, dsts: consolidated, label: "2 hosts (TCP)"},
		{step: 2 * third, dsts: home, label: "4 hosts (IB)"},
		{step: 3 * third, dsts: spread, label: "4 hosts (TCP)"},
	} {
		m.ready = sim.NewFuture[struct{}](k)
		m.release = sim.NewFuture[struct{}](k)
		plan[m.step] = m
	}

	res := &Fig8Result{RanksPerVM: ranksPerVM,
		Series: metrics.Series{Label: fmt.Sprintf("Fig. 8 — %d process(es)/VM", ranksPerVM)}}
	res.Phase = make([]string, steps)
	label := "4 hosts (IB)"
	for s := 0; s < steps; s++ {
		if m, ok := plan[s]; ok {
			label = m.label
		}
		res.Phase[s] = label
	}

	bench := &workloads.BcastReduce{
		BytesPerNode: 8e9,
		Steps:        steps,
		StepDone: func(step int, elapsed sim.Time) {
			res.Series.Add(step+1, elapsed) // 1-indexed, as in the paper
		},
		BeforeStep: func(p *sim.Proc, r *mpi.Rank, step int) {
			m, ok := plan[step]
			if !ok {
				return
			}
			m.arrivals++
			if m.arrivals == nRanks {
				m.ready.Set(struct{}{})
			}
			m.release.Wait(p)
		},
	}
	appDone, err := workloads.Run(d.Job, bench)
	if err != nil {
		return nil, err
	}

	var migErr error
	order := []*fig8Migration{plan[1*third], plan[2*third], plan[3*third]}
	k.Go("scenario-driver", func(p *sim.Proc) {
		for _, m := range order {
			m.ready.Wait(p)
			// Release the ranks and request the checkpoint within the
			// same run-slice: the request is visible before any rank's
			// next FTProbe.
			m.release.Set(struct{}{})
			rep, err := d.Orch.Migrate(p, m.dsts)
			if err != nil {
				migErr = fmt.Errorf("experiments: fig8 step %d: %w", m.step, err)
				return
			}
			res.Reports = append(res.Reports, rep)
		}
	})
	k.Run()
	if migErr != nil {
		return nil, migErr
	}
	if !appDone.Done() {
		return nil, fmt.Errorf("experiments: fig8 (%d ranks/VM): app did not finish", ranksPerVM)
	}
	return res, nil
}

// Fig8Render formats the per-step series with phase labels and, for the
// migration steps, the application/overhead split of the paper's stacked
// bars (overhead = the Ninja report's trigger-to-resume total).
func Fig8Render(res *Fig8Result) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Fig. 8 — fallback and recovery migration (%d process(es)/VM)", res.RanksPerVM),
		"Step", "Phase", "Elapsed [s]", "Application [s]", "Overhead [s]")
	migSteps := map[int]ninja.Report{}
	third := len(res.Series.Points) / 4
	for i, rep := range res.Reports {
		migSteps[(i+1)*third] = rep
	}
	for i, pt := range res.Series.Points {
		if rep, ok := migSteps[i]; ok {
			app := pt.Y - rep.Total
			if app < 0 {
				app = 0
			}
			t.AddRow(pt.X, res.Phase[i], pt.Y, app, rep.Total)
			continue
		}
		t.AddRow(pt.X, res.Phase[i], pt.Y, pt.Y, sim.Time(0))
	}
	return t
}
