package experiments

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/ninja"
	"repro/internal/sim"
)

// This file implements the RDMA-native extension experiment: the same
// IB→IB gang migration run once per degradation-ladder rung. The hotplug
// baseline pays the paper's fixed overheads (detach/attach fan-out plus
// ≈30 s of destination link training — the Fig. 6 / Table II terms);
// QP checkpoint/replay eliminates both, and each injected replay fault
// (resync stall past the window, stale snapshot epoch, incompatible
// destination HCA) must demote cleanly to the hotplug rung rather than
// fail the migration.

// RDMARow is one ladder rung's measured outcome.
type RDMARow struct {
	Scenario string
	// Mode is the degradation-ladder rung the run terminated on.
	Mode ninja.RungMode
	// Demoted counts VMs whose QP replay fell back to the hotplug rung.
	Demoted int
	// Fired counts fault-plan firings.
	Fired int
	// Hotplug is detach+attach; Linkup the resume-to-traffic span (IB
	// training when a demotion or the baseline re-attached an HCA).
	Hotplug sim.Time
	Linkup  sim.Time
	Total   sim.Time
	Outcome ninja.Outcome
}

// rdmaScenario describes one rung of the ext-rdma ladder.
type rdmaScenario struct {
	Name string
	// RDMA selects the RDMA-native entry point (false = hotplug baseline).
	RDMA bool
	// DstIB gives the destination cluster InfiniBand (false exercises the
	// preflight demotion: no destination HCA to replay onto).
	DstIB bool
	// Specs is the fault plan, At relative to the migration trigger.
	// Targets use the deployment's node names (source "agc-ib-n<i>",
	// destination "agc-dst-n<i>").
	Specs []faults.Spec
}

func extRDMAScenarios() []rdmaScenario {
	return []rdmaScenario{
		{Name: "hotplug-baseline", RDMA: false, DstIB: true},
		{Name: "rdma-native", RDMA: true, DstIB: true},
		{Name: "rdma-resync-timeout", RDMA: true, DstIB: true,
			Specs: []faults.Spec{{Kind: faults.KindQPResyncStall, Target: "agc-dst-n00", For: 10 * sim.Second}}},
		{Name: "rdma-stale-qp", RDMA: true, DstIB: true,
			Specs: []faults.Spec{{Kind: faults.KindQPStale, Target: "agc-ib-n00"}}},
		{Name: "rdma-hca-mismatch", RDMA: true, DstIB: true,
			Specs: []faults.Spec{{Kind: faults.KindHCAMismatch, Target: "agc-dst-n00"}}},
		{Name: "rdma-preflight-no-ib", RDMA: true, DstIB: false},
	}
}

// runRDMAScenario executes one rung on a fresh 2-VM deployment.
func runRDMAScenario(sc rdmaScenario, b sim.Backend) (RDMARow, error) {
	row := RDMARow{Scenario: sc.Name}
	d, err := Deploy(DeployConfig{
		NVMs: 2, RanksPerVM: 1, GuestMemGB: 8,
		AttachHCA: true, DstHasIB: sc.DstIB, ContinueLikeRestart: true,
		Backend: b,
	})
	if err != nil {
		return row, err
	}
	for _, vm := range d.VMs {
		if _, err := vm.Memory().AddRegion("data", 2*hw.GB, 0, 0); err != nil {
			return row, err
		}
	}

	pol := ninja.DefaultRetryPolicy()
	opts := ninja.Options{Retry: &pol}
	orch := ninja.New(d.Job, opts)
	dsts := d.DstNodes(len(d.VMs))

	// Arm the fault plan (times shifted to absolute), logging firings into
	// the orchestrator's trail. The victim list spans both clusters so
	// source-side (stale snapshot) and destination-side (resync stall,
	// mismatch) targets both resolve.
	trigger := d.Epoch + 5*sim.Second
	plan := faults.Plan{Name: sc.Name, Seed: 1}
	for _, s := range sc.Specs {
		s.At += trigger
		plan.Specs = append(plan.Specs, s)
	}
	victims := append(append([]*hw.Node(nil), d.SrcNodes(len(d.VMs))...), dsts...)
	inj := faults.NewInjector(d.K, plan, faults.Env{
		VMs: d.VMs, Nodes: victims, Store: d.NFS,
		Log: func(kind, subject, detail string) {
			orch.Events().Record(metrics.EventFaultInjected, kind, subject, detail)
		},
	})
	if err := inj.Arm(); err != nil {
		return row, err
	}

	app := d.Job.Launch("app", func(p *sim.Proc, rk *mpi.Rank) {
		for i := 0; i < 1600; i++ {
			rk.FTProbe(p)
			rk.Compute(p, 0.2)
		}
	})

	var rep ninja.Report
	var migErr error
	d.K.Go("driver", func(p *sim.Proc) {
		if trigger > p.Now() {
			p.Sleep(trigger - p.Now())
		}
		if sc.RDMA {
			rep, migErr = orch.RDMAMigrate(p, dsts)
		} else {
			rep, migErr = orch.MigratePolicy(p, dsts, ninja.AttachAuto)
		}
	})
	d.K.Run()

	if !app.Done() {
		return row, fmt.Errorf("experiments: %s: app incomplete (job wedged)", sc.Name)
	}
	if migErr != nil {
		return row, fmt.Errorf("experiments: %s: unexpected error: %w", sc.Name, migErr)
	}
	row.Mode = rep.Mode
	row.Demoted = rep.RDMADemoted
	row.Fired = inj.Fired()
	row.Hotplug = rep.Hotplug()
	row.Linkup = rep.Linkup
	row.Total = rep.Total
	row.Outcome = rep.Outcome
	return row, nil
}

// ExtRDMA runs the RDMA-native ladder matrix.
func ExtRDMA() ([]RDMARow, error) { return ExtRDMAWith(sim.BackendHeap) }

// ExtRDMAWith is ExtRDMA on an explicit kernel backend — the determinism
// acceptance test renders the matrix on both and diffs the tables.
func ExtRDMAWith(b sim.Backend) ([]RDMARow, error) {
	var rows []RDMARow
	for _, sc := range extRDMAScenarios() {
		row, err := runRDMAScenario(sc, b)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ExtRDMARender formats the ladder matrix.
func ExtRDMARender(rows []RDMARow) *metrics.Table {
	t := metrics.NewTable("Ext. — RDMA-native (QP replay) vs hotplug ladder",
		"scenario", "rung", "demoted", "fired", "hotplug [s]", "linkup [s]", "total [s]", "outcome")
	for _, r := range rows {
		t.AddRow(r.Scenario, string(r.Mode), r.Demoted, r.Fired,
			r.Hotplug, r.Linkup, r.Total, string(r.Outcome))
	}
	return t
}
