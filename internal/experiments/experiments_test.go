package experiments

import (
	"testing"

	"repro/internal/sim"
)

func sec(t sim.Time) float64 { return t.Seconds() }

func TestTable1(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 9 {
		t.Fatalf("Table I has %d rows", len(tab.Rows))
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	get := func(src, dst string) Table2Row {
		for _, r := range rows {
			if r.Src == src && r.Dst == dst {
				return r
			}
		}
		t.Fatalf("missing %s→%s", src, dst)
		return Table2Row{}
	}
	ibib := get("Infiniband", "Infiniband")
	ibeth := get("Infiniband", "Ethernet")
	ethib := get("Ethernet", "Infiniband")
	etheth := get("Ethernet", "Ethernet")

	t.Logf("Table II measured: IB→IB %.2f/%.2f  IB→Eth %.2f/%.2f  Eth→IB %.2f/%.2f  Eth→Eth %.2f/%.2f",
		sec(ibib.Hotplug), sec(ibib.Linkup), sec(ibeth.Hotplug), sec(ibeth.Linkup),
		sec(ethib.Hotplug), sec(ethib.Linkup), sec(etheth.Hotplug), sec(etheth.Linkup))

	// Ordering (the paper's qualitative result).
	if !(ibib.Hotplug > ibeth.Hotplug && ibeth.Hotplug > ethib.Hotplug && ethib.Hotplug > etheth.Hotplug) {
		t.Fatalf("hotplug ordering broken: %v %v %v %v",
			ibib.Hotplug, ibeth.Hotplug, ethib.Hotplug, etheth.Hotplug)
	}
	// Link-up ≈30 s iff destination has InfiniBand attached.
	for _, r := range []Table2Row{ibib, ethib} {
		if sec(r.Linkup) < 28 || sec(r.Linkup) > 32 {
			t.Fatalf("%s→%s linkup = %.2f, want ≈30", r.Src, r.Dst, sec(r.Linkup))
		}
	}
	for _, r := range []Table2Row{ibeth, etheth} {
		if sec(r.Linkup) > 1 {
			t.Fatalf("%s→%s linkup = %.2f, want ≈0", r.Src, r.Dst, sec(r.Linkup))
		}
	}
	// Quantitative bands (paper: 3.88 / 2.80 / 1.15 / 0.13).
	if sec(ibib.Hotplug) < 3.0 || sec(ibib.Hotplug) > 5.0 {
		t.Fatalf("IB→IB hotplug = %.2f, want ≈3.9", sec(ibib.Hotplug))
	}
	if sec(ibeth.Hotplug) < 2.2 || sec(ibeth.Hotplug) > 3.5 {
		t.Fatalf("IB→Eth hotplug = %.2f, want ≈2.8", sec(ibeth.Hotplug))
	}
	if sec(ethib.Hotplug) < 0.8 || sec(ethib.Hotplug) > 1.7 {
		t.Fatalf("Eth→IB hotplug = %.2f, want ≈1.2", sec(ethib.Hotplug))
	}
	if sec(etheth.Hotplug) > 0.5 {
		t.Fatalf("Eth→Eth hotplug = %.2f, want ≈0.1", sec(etheth.Hotplug))
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := Fig6([]float64{2, 16})
	if err != nil {
		t.Fatal(err)
	}
	r2, r16 := rows[0], rows[1]
	t.Logf("Fig6 2GB: mig %.1f hotplug %.1f linkup %.1f | 16GB: mig %.1f hotplug %.1f linkup %.1f",
		sec(r2.Migration), sec(r2.Hotplug), sec(r2.Linkup),
		sec(r16.Migration), sec(r16.Hotplug), sec(r16.Linkup))
	// Migration grows with footprint but sub-linearly (×8 footprint ⇒
	// well under ×2 time; paper: 35.9 → 53.7).
	if r16.Migration <= r2.Migration {
		t.Fatal("migration time did not grow with footprint")
	}
	if ratio := float64(r16.Migration) / float64(r2.Migration); ratio > 2 {
		t.Fatalf("migration grew ×%.2f for ×8 footprint: compression missing", ratio)
	}
	// Absolute bands (paper 35.9 and 53.7 ±25%).
	if sec(r2.Migration) < 27 || sec(r2.Migration) > 45 {
		t.Fatalf("2GB migration = %.1f, want ≈36", sec(r2.Migration))
	}
	if sec(r16.Migration) < 40 || sec(r16.Migration) > 67 {
		t.Fatalf("16GB migration = %.1f, want ≈54", sec(r16.Migration))
	}
	// Hotplug ≈3× Table II (≈12 s) and roughly constant; link-up ≈30 s.
	for _, r := range rows {
		if sec(r.Hotplug) < 9 || sec(r.Hotplug) > 16 {
			t.Fatalf("%vGB hotplug = %.1f, want ≈12", r.FootprintGB, sec(r.Hotplug))
		}
		if sec(r.Linkup) < 28 || sec(r.Linkup) > 32 {
			t.Fatalf("%vGB linkup = %.1f, want ≈30", r.FootprintGB, sec(r.Linkup))
		}
	}
}

func TestFig7ShapeScaled(t *testing.T) {
	// A scaled-down run (10% iterations) checking the two headline
	// claims: no overhead during normal operation (baseline ≈ application
	// component) and proposed = baseline + breakdown.
	rows, err := Fig7([]string{"CG", "FT"}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("Fig7 %s: baseline %.1f proposed %.1f (mig %.1f hotplug %.1f linkup %.1f)",
			r.Kernel, sec(r.Baseline), sec(r.Proposed), sec(r.Migration), sec(r.Hotplug), sec(r.Linkup))
		if r.Proposed <= r.Baseline {
			t.Fatalf("%s: proposed (%v) not slower than baseline (%v)", r.Kernel, r.Proposed, r.Baseline)
		}
		// Application component ≈ baseline within 10%: Ninja adds no
		// overhead during normal operation.
		app := sec(r.Application)
		base := sec(r.Baseline)
		if app < base*0.9 || app > base*1.1 {
			t.Fatalf("%s: application %.1f deviates from baseline %.1f — normal-operation overhead?",
				r.Kernel, app, base)
		}
	}
	// FT's footprint (16 GB) ≫ CG's (2.3 GB): its migration must cost more.
	var cg, ft Fig7Row
	for _, r := range rows {
		if r.Kernel == "CG" {
			cg = r
		}
		if r.Kernel == "FT" {
			ft = r
		}
	}
	if ft.Migration <= cg.Migration {
		t.Fatalf("FT migration (%v) not above CG (%v) despite larger footprint", ft.Migration, cg.Migration)
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(1, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series.Points) != 40 {
		t.Fatalf("%d steps recorded", len(res.Series.Points))
	}
	if len(res.Reports) != 3 {
		t.Fatalf("%d migrations ran", len(res.Reports))
	}
	// Phase means.
	mean := func(lo, hi int) float64 { // steps [lo,hi) excluding migration steps
		var s float64
		var n int
		for i := lo; i < hi; i++ {
			if i == 10 || i == 20 || i == 30 {
				continue
			}
			s += res.Series.Points[i].Y.Seconds()
			n++
		}
		return s / float64(n)
	}
	ib1 := mean(0, 10)
	tcp2h := mean(10, 20)
	ib2 := mean(20, 30)
	tcp4h := mean(30, 40)
	t.Logf("Fig8a means: IB %.1f | 2-host TCP %.1f | IB %.1f | 4-host TCP %.1f", ib1, tcp2h, ib2, tcp4h)
	// IB phases fastest; both TCP phases slower; the two IB phases agree
	// (recovery fully restores performance — no restart, no degradation).
	if !(ib1 < tcp4h && ib1 < tcp2h) {
		t.Fatal("InfiniBand phase not fastest")
	}
	if ib2 > ib1*1.15 || ib2 < ib1*0.85 {
		t.Fatalf("recovered IB phase (%.1f) deviates from initial (%.1f)", ib2, ib1)
	}
	// Migration steps spike above their phase's mean.
	for _, s := range []int{10, 20, 30} {
		spike := res.Series.Points[s].Y.Seconds()
		if spike < tcp2h {
			t.Fatalf("step %d (%.1f) does not include migration overhead", s+1, spike)
		}
	}
}

func TestFig8MultiProcFasterOnIB(t *testing.T) {
	// Fig. 8b claim: "the execution times of 8 processes per VM are
	// faster than those of 1 process per VM, except for 2 hosts (TCP)"
	// (CPU over-commit). Compare phase means across the two settings.
	one, err := Fig8(1, 40)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Fig8(8, 40)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(r *Fig8Result, lo, hi int) float64 {
		var s float64
		var n int
		for i := lo; i < hi; i++ {
			if i == 10 || i == 20 || i == 30 {
				continue
			}
			s += r.Series.Points[i].Y.Seconds()
			n++
		}
		return s / float64(n)
	}
	ib1, ib8 := mean(one, 0, 10), mean(eight, 0, 10)
	cons1, cons8 := mean(one, 10, 20), mean(eight, 10, 20)
	t.Logf("IB phase: 1p %.1f vs 8p %.1f | 2-host TCP: 1p %.1f vs 8p %.1f", ib1, ib8, cons1, cons8)
	if ib8 >= ib1 {
		t.Fatalf("8 procs/VM (%.1f) not faster than 1 proc/VM (%.1f) on InfiniBand", ib8, ib1)
	}
	if cons8 <= cons1 {
		t.Fatalf("2-host TCP with 8 procs/VM (%.1f) should suffer CPU over-commit vs 1 proc (%.1f)", cons8, cons1)
	}
}

func TestExtScalabilityShape(t *testing.T) {
	rows, err := ExtScalability([]int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	one, eight := rows[0], rows[1]
	t.Logf("scalability: n=1 intra %.1f / wan %.1f | n=8 intra %.1f / wan %.1f",
		sec(one.IntraDC), sec(one.CrossWAN), sec(eight.IntraDC), sec(eight.CrossWAN))
	// §V claim: intra-enclosure migration is essentially scalable —
	// disjoint node pairs keep wall time flat.
	if ratio := float64(eight.IntraDC) / float64(one.IntraDC); ratio > 1.1 {
		t.Fatalf("intra-DC migration not scalable: ×%.2f for 8 VMs", ratio)
	}
	// §V concern: a shared WAN circuit congests — 8 VMs take much longer.
	if ratio := float64(eight.CrossWAN) / float64(one.CrossWAN); ratio < 1.5 {
		t.Fatalf("cross-WAN migration did not congest: ×%.2f for 8 VMs", ratio)
	}
}

func TestExtColdVsLiveShape(t *testing.T) {
	rows, err := ExtColdVsLive([]int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	one, eight := rows[0], rows[1]
	t.Logf("cold-vs-live: n=1 live %.1f / cold %.1f | n=8 live %.1f / cold %.1f",
		sec(one.Live), sec(one.Cold), sec(eight.Live), sec(eight.Cold))
	for _, r := range rows {
		if r.Live <= 0 || r.Cold <= 0 {
			t.Fatalf("missing data: %+v", r)
		}
	}
	// The NFS server is the shared bottleneck for cold: 8 VMs cost
	// clearly more than 1, while live over a 10 Gbit WAN barely moves
	// (8 × 1.3 Gbit/s ≈ the circuit).
	if ratio := float64(eight.Cold) / float64(one.Cold); ratio < 1.5 {
		t.Fatalf("cold path did not contend on NFS: ×%.2f", ratio)
	}
}

func TestExtBypassOverheadShape(t *testing.T) {
	rows, err := ExtBypassOverhead()
	if err != nil {
		t.Fatal(err)
	}
	var bypass, pv BypassRow
	for _, r := range rows {
		if r.Mode == "vmm-bypass" {
			bypass = r
		} else {
			pv = r
		}
	}
	t.Logf("bypass: %.3fms / %.2f GB/s | paravirt: %.3fms / %.2f GB/s",
		bypass.PingPong1MB.Milliseconds(), bypass.Bandwidth1GB/1e9,
		pv.PingPong1MB.Milliseconds(), pv.Bandwidth1GB/1e9)
	// The paper's claim 1: bypass runs at device speed — ≈3.2 GB/s here.
	if bypass.Bandwidth1GB < 2.8e9 {
		t.Fatalf("bypass bandwidth %.2f GB/s, want ≈3.2 (no virtualization overhead)", bypass.Bandwidth1GB/1e9)
	}
	// The paravirt alternative loses latency AND bandwidth on busy hosts.
	if pv.PingPong1MB <= bypass.PingPong1MB {
		t.Fatal("paravirt latency should exceed bypass")
	}
	if pv.Bandwidth1GB >= bypass.Bandwidth1GB*0.8 {
		t.Fatalf("paravirt bandwidth %.2f GB/s should be well below bypass %.2f GB/s",
			pv.Bandwidth1GB/1e9, bypass.Bandwidth1GB/1e9)
	}
}

func TestDeterministicReproduction(t *testing.T) {
	// The whole evaluation is a deterministic simulation: two independent
	// Fig. 8 runs must agree to the nanosecond.
	a, err := Fig8(8, 40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig8(8, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Series.Points {
		if a.Series.Points[i] != b.Series.Points[i] {
			t.Fatalf("step %d differs: %v vs %v", i+1, a.Series.Points[i], b.Series.Points[i])
		}
	}
	for i := range a.Reports {
		if a.Reports[i].Total != b.Reports[i].Total {
			t.Fatalf("migration %d total differs: %v vs %v", i, a.Reports[i].Total, b.Reports[i].Total)
		}
	}
}
