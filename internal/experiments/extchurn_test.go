package experiments

import (
	"strings"
	"testing"

	"repro/internal/churn"
	"repro/internal/sim"
)

// The subsystem's acceptance claim: on the default scenario the
// adaptive destination-swap policy achieves strictly lower
// time-weighted affinity cost than the greedy baseline, paying with
// corrective migrations the baseline never makes.
func TestExtChurnSwapBeatsGreedy(t *testing.T) {
	greedy, err := RunChurnScenario(ChurnConfig{}, ChurnScenario{Policy: churn.PolicyGreedy})
	if err != nil {
		t.Fatalf("greedy: %v", err)
	}
	swap, err := RunChurnScenario(ChurnConfig{}, ChurnScenario{Policy: churn.PolicySwap})
	if err != nil {
		t.Fatalf("swap: %v", err)
	}
	if swap.Row.CostIntegral >= greedy.Row.CostIntegral {
		t.Fatalf("destination-swap cost %.0f not strictly below greedy %.0f",
			swap.Row.CostIntegral, greedy.Row.CostIntegral)
	}
	if swap.Row.SwapMigs == 0 || greedy.Row.SwapMigs != 0 {
		t.Fatalf("swap-migs: swap=%d (want >0), greedy=%d (want 0)",
			swap.Row.SwapMigs, greedy.Row.SwapMigs)
	}
}

// The full matrix runs, keeps its row order, and the faulted rows
// actually evict and re-place gangs.
func TestExtChurnMatrix(t *testing.T) {
	rows, err := ExtChurnMatrix(ChurnConfig{})
	if err != nil {
		t.Fatalf("ExtChurnMatrix: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	wantLabels := []string{
		"greedy", "destination-swap",
		"greedy+plan:node-crash", "destination-swap+plan:node-crash",
		"destination-swap+maxflow", "destination-swap+maxflow+plan:node-crash",
	}
	for i, r := range rows {
		if r.Scenario != wantLabels[i] {
			t.Errorf("row %d label %q, want %q", i, r.Scenario, wantLabels[i])
		}
		if r.Departed+r.Rejected != r.Arrived {
			t.Errorf("row %s leaked jobs: %d departed + %d rejected != %d arrived",
				r.Scenario, r.Departed, r.Rejected, r.Arrived)
		}
	}
	for _, i := range []int{2, 3, 5} {
		if rows[i].FaultMigs == 0 {
			t.Errorf("faulted row %s re-placed no gangs after the crash", rows[i].Scenario)
		}
	}
	table := ExtChurnRender(rows).String()
	if !strings.Contains(table, "destination-swap") {
		t.Errorf("rendered table missing policy label:\n%s", table)
	}
}

// A churn report is byte-identical across kernel backends at the
// experiments layer too (deployment naming and fault wiring included),
// and the log tap does not perturb the run.
func TestExtChurnDeterminism(t *testing.T) {
	sc := ChurnScenario{Policy: churn.PolicySwap, Faults: ChurnCrashPlan()}
	heap, err := RunChurnScenario(ChurnConfig{Backend: sim.BackendHeap}, sc)
	if err != nil {
		t.Fatalf("heap: %v", err)
	}
	lines := 0
	wheel, err := RunChurnScenarioWith(ChurnConfig{Backend: sim.BackendWheel}, sc,
		func(string, ...any) { lines++ })
	if err != nil {
		t.Fatalf("wheel: %v", err)
	}
	if heap.Report.JSON() != wheel.Report.JSON() {
		t.Fatalf("backend reports differ:\nheap:  %s\nwheel: %s",
			heap.Report.JSON(), wheel.Report.JSON())
	}
	if lines == 0 {
		t.Fatal("log tap observed no engine lines on a faulted run")
	}
}

// ChurnVictims names the nodes DeployChurn builds, in candidate order.
func TestChurnVictims(t *testing.T) {
	victims := ChurnVictims(ChurnConfig{})
	d := DeployChurn(ChurnConfig{})
	defer d.K.Close()
	var got []string
	for _, s := range d.Topo.Sites {
		for _, n := range s.Nodes {
			got = append(got, n.Name)
		}
	}
	if len(victims) != len(got) {
		t.Fatalf("victims %v, deployment %v", victims, got)
	}
	for i := range victims {
		if victims[i] != got[i] {
			t.Fatalf("victim %d: %q, deployment has %q", i, victims[i], got[i])
		}
	}
}
