package experiments

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/mpi/btl"
	"repro/internal/ninja"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/vmm"
)

// This file implements extension experiments beyond the paper's figures,
// quantifying the §V discussion: scalability of simultaneous migrations
// (intra-enclosure vs over a shared WAN circuit) and the proactive
// fault-tolerance alternative (checkpoint/restart through shared storage
// vs live migration).

// WideDeployment is a two-site deployment for the extension experiments.
type WideDeployment struct {
	K    *sim.Kernel
	W    *hw.WideArea
	NFS  *storage.NFS
	VMs  []*vmm.VM
	Job  *mpi.Job
	Orch *ninja.Orchestrator
}

// DeployWideArea boots nVMs VMs (one per dc0 node) on a two-site testbed
// whose sites share a WAN circuit of wanBandwidth bytes/sec.
func DeployWideArea(nVMs, ranksPerVM int, wanBandwidth float64, nfsBandwidth float64) (*WideDeployment, error) {
	k := sim.NewKernel()
	w := hw.NewWideArea(k, hw.WideAreaConfig{
		DataCenters:  2,
		NodesPerDC:   8,
		Spec:         hw.AGCNodeSpec,
		WANBandwidth: wanBandwidth,
		WANLatency:   10 * sim.Millisecond,
	})
	nfs := storage.NewNFS("wan-nfs")
	if nfsBandwidth > 0 {
		nfs.EnableIO(k, nfsBandwidth, nfsBandwidth)
	}
	nfs.MountAll(w.DCs[0].Cluster, w.DCs[1].Cluster)
	d := &WideDeployment{K: k, W: w, NFS: nfs}
	for i := 0; i < nVMs; i++ {
		vm, err := vmm.New(k, w.DCs[0].Cluster.Nodes[i], w.Segment, vmm.Config{
			Name: fmt.Sprintf("vm%02d", i), VCPUs: 8, MemoryBytes: 20 * hw.GB,
		}, vmm.DefaultParams())
		if err != nil {
			return nil, err
		}
		vm.SetStorage(nfs)
		d.VMs = append(d.VMs, vm)
	}
	k.RunUntil(fabric.DefaultIBTrainingTime + sim.Second)
	job, err := mpi.NewJob(k, mpi.Config{VMs: d.VMs, RanksPerVM: ranksPerVM, ContinueLikeRestart: true})
	if err != nil {
		return nil, err
	}
	d.Job = job
	d.Orch = ninja.New(job, ninja.Options{})
	return d, nil
}

// ScalabilityRow is one point of the extension scalability experiment.
type ScalabilityRow struct {
	VMs int
	// IntraDC is the wall time of N simultaneous migrations between
	// disjoint node pairs inside one enclosure (the paper's setting —
	// §V argues this is "essentially scalable").
	IntraDC sim.Time
	// CrossWAN is the same N migrations squeezed through one shared WAN
	// circuit — where the paper expects "migration time may significantly
	// increase as the number of hosts increases due to network
	// congestion".
	CrossWAN sim.Time
}

// extWorkload gives every VM an 8 GiB incompressible region and an
// iterating job so the Ninja protocol has something to coordinate.
func extWorkload(d *WideDeployment) *sim.Future[struct{}] {
	for _, vm := range d.VMs {
		if _, err := vm.Memory().AddRegion("data", 8*hw.GB, 0, 0); err != nil {
			panic(err)
		}
	}
	return d.Job.Launch("app", func(p *sim.Proc, rk *mpi.Rank) {
		for i := 0; i < 4000; i++ {
			rk.FTProbe(p)
			rk.Compute(p, 0.2)
		}
	})
}

// ExtScalability measures migration wall time for N = vmCounts
// simultaneous VM migrations, intra-DC vs across a 2.6 Gbit/s WAN circuit.
func ExtScalability(vmCounts []int) ([]ScalabilityRow, error) {
	if len(vmCounts) == 0 {
		vmCounts = []int{1, 2, 4, 8}
	}
	const wanBW = 0.325e9 // 2.6 Gbit/s disaster-recovery circuit
	var rows []ScalabilityRow
	for _, n := range vmCounts {
		row := ScalabilityRow{VMs: n}
		for _, cross := range []bool{false, true} {
			d, err := DeployWideArea(n, 1, wanBW, 0)
			if err != nil {
				return nil, err
			}
			app := extWorkload(d)
			var dsts []*hw.Node
			if cross {
				dsts = d.W.DCs[1].Cluster.Nodes[:n]
			} else {
				// Swap within dc0: VM i moves to node (i+n)%8... use the
				// unoccupied upper nodes for disjoint pairs.
				for i := 0; i < n; i++ {
					dsts = append(dsts, d.W.DCs[0].Cluster.Nodes[(i+4)%8])
				}
			}
			var rep ninja.Report
			var migErr error
			d.K.Go("driver", func(p *sim.Proc) {
				p.Sleep(2 * sim.Second)
				rep, migErr = d.Orch.MigratePolicy(p, dsts, ninja.AttachNever)
			})
			d.K.Run()
			if migErr != nil {
				return nil, fmt.Errorf("experiments: scalability n=%d cross=%v: %w", n, cross, migErr)
			}
			if !app.Done() {
				return nil, fmt.Errorf("experiments: scalability n=%d: app incomplete", n)
			}
			if cross {
				row.CrossWAN = rep.Migration
			} else {
				row.IntraDC = rep.Migration
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ExtScalabilityRender formats the scalability rows.
func ExtScalabilityRender(rows []ScalabilityRow) *metrics.Table {
	t := metrics.NewTable("Ext. — simultaneous migration scalability (§V) [seconds]",
		"VMs", "intra-DC", "cross-WAN (2.6 Gbit/s shared)")
	for _, r := range rows {
		t.AddRow(r.VMs, r.IntraDC, r.CrossWAN)
	}
	return t
}

// ColdVsLiveRow compares the two transfer mechanisms for the same fleet.
type ColdVsLiveRow struct {
	VMs  int
	Live sim.Time // live migration over the WAN
	Cold sim.Time // savevm → shared NFS → loadvm
}

// ExtColdVsLive contrasts live migration with the proactive-FT
// checkpoint/restart path (§II-A) for N VMs crossing the WAN, with an NFS
// server on a 10 Gbit/s pipe.
func ExtColdVsLive(vmCounts []int) ([]ColdVsLiveRow, error) {
	if len(vmCounts) == 0 {
		vmCounts = []int{1, 4, 8}
	}
	var rows []ColdVsLiveRow
	for _, n := range vmCounts {
		row := ColdVsLiveRow{VMs: n}
		for _, cold := range []bool{false, true} {
			d, err := DeployWideArea(n, 1, 1.25e9, 1.25e9)
			if err != nil {
				return nil, err
			}
			app := extWorkload(d)
			dsts := d.W.DCs[1].Cluster.Nodes[:n]
			var rep ninja.Report
			var migErr error
			d.K.Go("driver", func(p *sim.Proc) {
				p.Sleep(2 * sim.Second)
				if cold {
					rep, migErr = d.Orch.ColdMigrate(p, dsts)
				} else {
					rep, migErr = d.Orch.MigratePolicy(p, dsts, ninja.AttachNever)
				}
			})
			d.K.Run()
			if migErr != nil {
				return nil, fmt.Errorf("experiments: cold-vs-live n=%d cold=%v: %w", n, cold, migErr)
			}
			if !app.Done() {
				return nil, fmt.Errorf("experiments: cold-vs-live n=%d: app incomplete", n)
			}
			if cold {
				row.Cold = rep.Migration
			} else {
				row.Live = rep.Migration
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ExtColdVsLiveRender formats the comparison.
func ExtColdVsLiveRender(rows []ColdVsLiveRow) *metrics.Table {
	t := metrics.NewTable("Ext. — live migration vs checkpoint/restart through NFS [seconds]",
		"VMs", "live (WAN)", "cold (savevm+loadvm)")
	for _, r := range rows {
		t.AddRow(r.VMs, r.Live, r.Cold)
	}
	return t
}

// BypassRow compares VMM-bypass InfiniBand to a para-virtualized IB
// driver for MPI point-to-point traffic — the motivation for the whole
// design (§I: "VMM-bypass I/O technologies ... significantly reduce the
// overhead" / §VI's pv-driver related work).
type BypassRow struct {
	Mode string // "vmm-bypass" or "paravirt"
	// PingPong1MB is the round-trip time for a 1 MB exchange.
	PingPong1MB sim.Time
	// Bandwidth1GB is the achieved throughput for a 1 GB transfer (B/s).
	Bandwidth1GB float64
}

// ExtBypassOverhead measures both modes on two busy VMs (7 of 8 cores
// loaded with compute, as in a real application) to expose the paravirt
// datapath's CPU appetite.
func ExtBypassOverhead() ([]BypassRow, error) {
	run := func(paravirt bool) (BypassRow, error) {
		row := BypassRow{Mode: "vmm-bypass"}
		if paravirt {
			row.Mode = "paravirt"
		}
		d, err := Deploy(DeployConfig{
			NVMs: 2, RanksPerVM: 1, AttachHCA: true, DstHasIB: true,
			ContinueLikeRestart: true,
		})
		if err != nil {
			return row, err
		}
		if paravirt {
			for _, rk := range d.Job.Ranks() {
				for _, m := range rk.BTLs().Modules() {
					if ib, ok := m.(*btl.OpenIB); ok {
						pv := btl.DefaultParavirtCosts
						ib.SetParavirt(&pv)
					}
				}
			}
		}
		// Background compute load on every host (7 cores busy).
		for _, vm := range d.VMs {
			vm.HostCPU().AddBackground(7)
		}
		app := d.Job.Launch("pingpong", func(p *sim.Proc, rk *mpi.Rank) {
			peer := 1 - rk.RankID()
			// Warm the connection.
			if rk.RankID() == 0 {
				rk.Send(p, peer, 0, 1024)
			} else {
				rk.Recv(p, peer, 0)
			}
			// 1 MB ping-pong ×10.
			start := p.Now()
			for i := 0; i < 10; i++ {
				if rk.RankID() == 0 {
					rk.Send(p, peer, 1, 1e6)
					rk.Recv(p, peer, 2)
				} else {
					rk.Recv(p, peer, 1)
					rk.Send(p, peer, 2, 1e6)
				}
			}
			if rk.RankID() == 0 {
				row.PingPong1MB = (p.Now() - start) / 10
			}
			// 1 GB one-way bandwidth.
			start = p.Now()
			if rk.RankID() == 0 {
				rk.Send(p, peer, 3, 1e9)
			} else {
				rk.Recv(p, peer, 3)
			}
			if rk.RankID() == 0 {
				row.Bandwidth1GB = 1e9 / (p.Now() - start).Seconds()
			}
		})
		d.K.Run()
		if !app.Done() {
			return row, fmt.Errorf("experiments: bypass overhead (%s): app incomplete", row.Mode)
		}
		return row, nil
	}
	var rows []BypassRow
	for _, pv := range []bool{false, true} {
		row, err := run(pv)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ExtBypassOverheadRender formats the comparison.
func ExtBypassOverheadRender(rows []BypassRow) *metrics.Table {
	t := metrics.NewTable("Ext. — VMM-bypass vs para-virtualized InfiniBand (busy hosts)",
		"Mode", "1MB ping-pong [ms]", "1GB bandwidth [GB/s]")
	for _, r := range rows {
		t.AddRow(r.Mode, r.PingPong1MB.Milliseconds(), r.Bandwidth1GB/1e9)
	}
	return t
}
