// Package experiments defines one constructor per table and figure of the
// paper's evaluation (§IV), each returning structured results that the
// ninjabench tool and the Go benchmarks render. EXPERIMENTS.md records the
// paper-vs-measured comparison these produce.
package experiments

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/mpi"
	"repro/internal/ninja"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/vmm"
)

// Deployment is a ready-to-run virtualized cluster pair with an MPI job
// and a Ninja orchestrator, matching the paper's experimental setting
// (§IV-A): one VM per physical node, 8 vCPUs, 20 GB RAM, qcow2 image on
// NFS, VMM-bypass HCA attached at boot on InfiniBand nodes.
type Deployment struct {
	K    *sim.Kernel
	TB   *hw.Testbed
	Src  *hw.Cluster // cluster hosting the VMs initially
	Dst  *hw.Cluster // the other cluster
	NFS  *storage.NFS
	VMs  []*vmm.VM
	Job  *mpi.Job
	Orch *ninja.Orchestrator
	// Epoch is the simulated time after boot + link training, from which
	// experiment timings are measured.
	Epoch sim.Time
}

// DeployConfig shapes a deployment.
type DeployConfig struct {
	// NVMs is the number of VMs (= source nodes used).
	NVMs int
	// RanksPerVM is the MPI processes per VM.
	RanksPerVM int
	// GuestMemGB is guest RAM (paper: 20 GB).
	GuestMemGB float64
	// DstHasIB makes the destination cluster InfiniBand-equipped (the
	// Fig. 6/7 setting "both clusters use Infiniband only"); otherwise
	// the destination is the Ethernet cluster of Fig. 1/8.
	DstHasIB bool
	// AttachHCA boot-attaches the source HCAs ("Infiniband setting").
	AttachHCA bool
	// ContinueLikeRestart sets the recovery-migration MCA knob.
	ContinueLikeRestart bool
	// Params overrides the VMM cost model (zero value → defaults).
	Params *vmm.Params
	// Backend selects the kernel event-queue backend (zero value → heap).
	Backend sim.Backend
}

// Deploy builds the testbed, boots the VMs and creates the job.
func Deploy(cfg DeployConfig) (*Deployment, error) {
	if cfg.NVMs <= 0 || cfg.NVMs > 8 {
		return nil, fmt.Errorf("experiments: NVMs %d outside the 8-node cluster", cfg.NVMs)
	}
	if cfg.GuestMemGB == 0 {
		cfg.GuestMemGB = 20
	}
	params := vmm.DefaultParams()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	k := sim.NewKernelWith(sim.Options{Backend: cfg.Backend})
	tb := hw.NewTestbed(k)
	src := tb.AddCluster("agc-ib", 8, hw.AGCNodeSpec)
	dstSpec := hw.AGCNodeSpec
	if !cfg.DstHasIB {
		dstSpec.IBBandwidth = 0
	}
	dst := tb.AddCluster("agc-dst", 8, dstSpec)
	nfs := storage.NewNFS("nfs0")
	nfs.MountAll(src, dst)

	d := &Deployment{K: k, TB: tb, Src: src, Dst: dst, NFS: nfs}
	for i := 0; i < cfg.NVMs; i++ {
		vm, err := vmm.New(k, src.Nodes[i], tb.Segment, vmm.Config{
			Name:        fmt.Sprintf("vm%02d", i),
			VCPUs:       8,
			MemoryBytes: cfg.GuestMemGB * hw.GB,
		}, params)
		if err != nil {
			return nil, err
		}
		vm.SetStorage(nfs)
		if cfg.AttachHCA {
			if err := vm.AttachBootHCA(); err != nil {
				return nil, err
			}
		}
		d.VMs = append(d.VMs, vm)
	}
	// Let host/guest HCA links finish training before the experiment.
	d.Epoch = k.RunUntil(fabric.DefaultIBTrainingTime + sim.Second)

	job, err := mpi.NewJob(k, mpi.Config{
		VMs:                 d.VMs,
		RanksPerVM:          cfg.RanksPerVM,
		ContinueLikeRestart: cfg.ContinueLikeRestart,
	})
	if err != nil {
		return nil, err
	}
	d.Job = job
	d.Orch = ninja.New(job, ninja.Options{})
	return d, nil
}

// SrcNodes returns the first n source-cluster nodes.
func (d *Deployment) SrcNodes(n int) []*hw.Node { return d.Src.Nodes[:n] }

// DstNodes returns the first n destination-cluster nodes.
func (d *Deployment) DstNodes(n int) []*hw.Node { return d.Dst.Nodes[:n] }
