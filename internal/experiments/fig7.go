package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/ninja"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Fig7Row is one NPB kernel of Fig. 7: baseline vs proposed (one Ninja
// migration at t=180 s) with the overhead breakdown.
type Fig7Row struct {
	Kernel      string
	Baseline    sim.Time // execution without Ninja migration
	Proposed    sim.Time // execution with one Ninja migration
	Migration   sim.Time
	Hotplug     sim.Time
	Linkup      sim.Time
	Application sim.Time // Proposed minus the overhead components
}

// Fig7 reproduces Fig. 7: NPB 3.3 class D with 64 processes on 8 VMs × 8
// ranks, migrating between InfiniBand clusters three minutes after start.
// scale < 1 shrinks the iteration counts proportionally (and the trigger
// time with them) for quick runs; use 1.0 for the paper-shaped result.
func Fig7(kernels []string, scale float64) ([]Fig7Row, error) {
	if len(kernels) == 0 {
		kernels = []string{"BT", "CG", "FT", "LU"}
	}
	if scale <= 0 {
		scale = 1
	}
	var rows []Fig7Row
	for _, kn := range kernels {
		row := Fig7Row{Kernel: kn}
		var rep ninja.Report
		for _, withNinja := range []bool{false, true} {
			d, err := Deploy(DeployConfig{
				NVMs: 8, RanksPerVM: 8, AttachHCA: true,
				DstHasIB: true, ContinueLikeRestart: true,
			})
			if err != nil {
				return nil, err
			}
			bench, err := workloads.NPBClassD(kn)
			if err != nil {
				return nil, err
			}
			bench.Iterations = int(float64(bench.Iterations)*scale + 0.5)
			if bench.Iterations < 4 {
				bench.Iterations = 4
			}
			appDone, err := workloads.Run(d.Job, bench)
			if err != nil {
				return nil, err
			}
			start := d.K.Now()
			var migErr error
			if withNinja {
				d.K.Go("driver", func(p *sim.Proc) {
					p.Sleep(sim.FromSeconds(180 * scale))
					var r ninja.Report
					r, migErr = d.Orch.Migrate(p, d.DstNodes(8))
					rep = r
				})
			}
			d.K.Run()
			if migErr != nil {
				return nil, fmt.Errorf("experiments: fig7 %s: %w", kn, migErr)
			}
			if !appDone.Done() {
				return nil, fmt.Errorf("experiments: fig7 %s: benchmark did not finish", kn)
			}
			elapsed := d.K.Now() - start
			if withNinja {
				row.Proposed = elapsed
			} else {
				row.Baseline = elapsed
			}
		}
		row.Migration = rep.Migration
		row.Hotplug = rep.Hotplug()
		row.Linkup = rep.Linkup
		row.Application = row.Proposed - row.Migration - row.Hotplug - row.Linkup
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig7Render formats the rows like the paper's grouped bars.
func Fig7Render(rows []Fig7Row) *metrics.Table {
	t := metrics.NewTable("Fig. 7 — Ninja migration overhead on NPB 3.3 (64 procs, class D) [seconds]",
		"Kernel", "baseline", "proposed", "application", "migration", "hotplug", "link-up")
	for _, r := range rows {
		t.AddRow(r.Kernel, r.Baseline, r.Proposed, r.Application, r.Migration, r.Hotplug, r.Linkup)
	}
	return t
}
