package experiments

import (
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/ninja"
)

// The acceptance property of the fleet control plane: on the default
// 8-job evacuation, swap-refined placement with batched gang execution
// beats sequential greedy on makespan, and places strictly better by
// affinity score.
func TestFleetBatchedSwapBeatsSequentialGreedy(t *testing.T) {
	base, err := RunFleetScenario(FleetConfig{}, FleetScenario{
		Placement: fleet.PlaceGreedy, Seq: fleet.SeqPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := RunFleetScenario(FleetConfig{}, FleetScenario{
		Placement: fleet.PlaceSwap, Seq: fleet.SeqPolicy{Batched: true, Cap: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Row.Makespan >= base.Row.Makespan {
		t.Fatalf("batched+swap makespan %v not strictly below sequential greedy %v",
			tuned.Row.Makespan, base.Row.Makespan)
	}
	if tuned.Row.Score <= base.Row.Score {
		t.Fatalf("swap score %d not above greedy %d", tuned.Row.Score, base.Row.Score)
	}
	if tuned.Row.IBJobsOnIB != tuned.Row.IBJobs {
		t.Fatalf("swap left %d/%d IB jobs off InfiniBand",
			tuned.Row.IBJobs-tuned.Row.IBJobsOnIB, tuned.Row.IBJobs)
	}
	if base.Row.IBJobsOnIB >= base.Row.IBJobs {
		t.Fatal("greedy placed every IB job on IB — the testbed no longer distinguishes the policies")
	}
	for _, res := range []*FleetResult{base, tuned} {
		if !res.Report.DeadlineMet {
			t.Fatalf("%s missed the deadline", res.Row.Scenario)
		}
		for _, jo := range res.Report.Jobs {
			if jo.Outcome != ninja.OutcomeClean {
				t.Fatalf("%s: job %s ended %s", res.Row.Scenario, jo.Job.Name, jo.Outcome)
			}
		}
	}
}

// Same deployment, same policies → bit-identical plan and timings.
func TestFleetDeterministic(t *testing.T) {
	sc := FleetScenario{Placement: fleet.PlaceSwap, Seq: fleet.SeqPolicy{Batched: true, Cap: 4}}
	cfg := FleetConfig{Jobs: 4}
	a, err := RunFleetScenario(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleetScenario(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Row.Makespan != b.Row.Makespan || a.Row.Downtime != b.Row.Downtime ||
		a.Row.Score != b.Row.Score || a.Row.Batches != b.Row.Batches {
		t.Fatalf("reruns differ:\n%+v\n%+v", a.Row, b.Row)
	}
	for i := range a.Plan.Assignments {
		for v, n := range a.Plan.Assignments[i].Dsts {
			if n.Name != b.Plan.Assignments[i].Dsts[v].Name {
				t.Fatalf("assignment %d VM %d differs: %s vs %s",
					i, v, n.Name, b.Plan.Assignments[i].Dsts[v].Name)
			}
		}
	}
}

// A destination-node crash mid-directive forces the control plane to
// replan the victim's migration before its batch launches; every job
// still completes healthy.
func TestFleetReplansAfterDestinationCrash(t *testing.T) {
	res, err := RunFleetScenario(FleetConfig{}, FleetScenario{
		Placement: fleet.PlaceSwap, Seq: fleet.SeqPolicy{Batched: true, Cap: 4}, Faulted: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Replans < 1 {
		t.Fatal("destination crash did not trigger a replan")
	}
	replanEvents := 0
	for _, e := range res.Report.Events {
		if e.Kind == metrics.EventReplan {
			replanEvents++
		}
	}
	if replanEvents < 1 {
		t.Fatal("no replanned event in the fleet trail")
	}
	recovered := 0
	for _, jo := range res.Report.Jobs {
		switch jo.Outcome {
		case ninja.OutcomeClean:
		case ninja.OutcomeRetriedOK, ninja.OutcomeDegradedTCP, ninja.OutcomeRolledBack:
			recovered++
		default:
			t.Fatalf("job %s ended %q", jo.Job.Name, jo.Outcome)
		}
		if jo.Replanned {
			for _, n := range jo.Dsts {
				if n.Failed() {
					t.Fatalf("job %s replanned onto failed node %s", jo.Job.Name, n.Name)
				}
			}
		}
	}
	if recovered < 1 {
		t.Fatal("no job shows a recovery outcome despite the forced replan")
	}
	if !res.Report.DeadlineMet {
		t.Fatal("faulted run missed the deadline")
	}
}

// The matrix itself: five rows, stable labels, no failures at a small
// fleet size (the full size runs in the dedicated tests above).
func TestExtFleetMatrixShape(t *testing.T) {
	rows, err := ExtFleetMatrix(FleetConfig{Jobs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ExtFleetScenarios()) {
		t.Fatalf("%d rows, want %d", len(rows), len(ExtFleetScenarios()))
	}
	tab := ExtFleetRender(rows)
	if len(tab.Rows) != len(rows) {
		t.Fatalf("table has %d rows", len(tab.Rows))
	}
	if !strings.Contains(tab.Rows[0][0], "greedy/sequential") {
		t.Fatalf("row 0 label = %q", tab.Rows[0][0])
	}
	for _, r := range rows {
		if r.Jobs != 3 {
			t.Fatalf("row %s has %d jobs", r.Scenario, r.Jobs)
		}
	}
}

// Directive validation: an evacuate directive without a source site and a
// consolidation that cannot fit must fail loudly at plan time.
func TestFleetPlannerRejectsImpossibleDirectives(t *testing.T) {
	d, err := DeployFleet(FleetConfig{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	pl := &fleet.Planner{Topo: d.Topo, Placement: fleet.PlaceSwap}
	if _, err := pl.Plan(fleet.Directive{Kind: fleet.Evacuate}, d.Jobs); err == nil {
		t.Fatal("evacuate without a source site planned successfully")
	}
	// Consolidating 4 VMs onto 1 single-slot node cannot fit.
	_, err = pl.Plan(fleet.Directive{
		Kind: fleet.Consolidate, Source: d.Source, MaxNodes: 1,
	}, d.Jobs)
	if err == nil {
		t.Fatal("impossible consolidation planned successfully")
	}
}
