package experiments

import (
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/ninja"
)

// The acceptance property of the fleet control plane: on the default
// 8-job evacuation, swap-refined placement with batched gang execution
// beats sequential greedy on makespan, and places strictly better by
// affinity score.
func TestFleetBatchedSwapBeatsSequentialGreedy(t *testing.T) {
	base, err := RunFleetScenario(FleetConfig{}, FleetScenario{
		Placement: fleet.PlaceGreedy, Seq: fleet.SeqPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := RunFleetScenario(FleetConfig{}, FleetScenario{
		Placement: fleet.PlaceSwap, Seq: fleet.SeqPolicy{Batched: true, Cap: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Row.Makespan >= base.Row.Makespan {
		t.Fatalf("batched+swap makespan %v not strictly below sequential greedy %v",
			tuned.Row.Makespan, base.Row.Makespan)
	}
	if tuned.Row.Score <= base.Row.Score {
		t.Fatalf("swap score %d not above greedy %d", tuned.Row.Score, base.Row.Score)
	}
	if tuned.Row.IBJobsOnIB != tuned.Row.IBJobs {
		t.Fatalf("swap left %d/%d IB jobs off InfiniBand",
			tuned.Row.IBJobs-tuned.Row.IBJobsOnIB, tuned.Row.IBJobs)
	}
	if base.Row.IBJobsOnIB >= base.Row.IBJobs {
		t.Fatal("greedy placed every IB job on IB — the testbed no longer distinguishes the policies")
	}
	for _, res := range []*FleetResult{base, tuned} {
		if !res.Report.DeadlineMet {
			t.Fatalf("%s missed the deadline", res.Row.Scenario)
		}
		for _, jo := range res.Report.Jobs {
			if jo.Outcome != ninja.OutcomeClean {
				t.Fatalf("%s: job %s ended %s", res.Row.Scenario, jo.Job.Name, jo.Outcome)
			}
		}
	}
}

// Same deployment, same policies → bit-identical plan and timings.
func TestFleetDeterministic(t *testing.T) {
	sc := FleetScenario{Placement: fleet.PlaceSwap, Seq: fleet.SeqPolicy{Batched: true, Cap: 4}}
	cfg := FleetConfig{Jobs: 4}
	a, err := RunFleetScenario(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleetScenario(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Row.Makespan != b.Row.Makespan || a.Row.Downtime != b.Row.Downtime ||
		a.Row.Score != b.Row.Score || a.Row.Batches != b.Row.Batches {
		t.Fatalf("reruns differ:\n%+v\n%+v", a.Row, b.Row)
	}
	for i := range a.Plan.Assignments {
		for v, n := range a.Plan.Assignments[i].Dsts {
			if n.Name != b.Plan.Assignments[i].Dsts[v].Name {
				t.Fatalf("assignment %d VM %d differs: %s vs %s",
					i, v, n.Name, b.Plan.Assignments[i].Dsts[v].Name)
			}
		}
	}
}

// A destination-node crash mid-directive forces the control plane to
// replan the victim's migration before its batch launches; every job
// still completes healthy.
func TestFleetReplansAfterDestinationCrash(t *testing.T) {
	res, err := RunFleetScenario(FleetConfig{}, FleetScenario{
		Placement: fleet.PlaceSwap, Seq: fleet.SeqPolicy{Batched: true, Cap: 4}, Faulted: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Replans < 1 {
		t.Fatal("destination crash did not trigger a replan")
	}
	replanEvents := 0
	for _, e := range res.Report.Events {
		if e.Kind == metrics.EventReplan {
			replanEvents++
		}
	}
	if replanEvents < 1 {
		t.Fatal("no replanned event in the fleet trail")
	}
	recovered := 0
	for _, jo := range res.Report.Jobs {
		switch jo.Outcome {
		case ninja.OutcomeClean:
		case ninja.OutcomeRetriedOK, ninja.OutcomeDegradedTCP, ninja.OutcomeRolledBack:
			recovered++
		default:
			t.Fatalf("job %s ended %q", jo.Job.Name, jo.Outcome)
		}
		if jo.Replanned {
			for _, n := range jo.Dsts {
				if n.Failed() {
					t.Fatalf("job %s replanned onto failed node %s", jo.Job.Name, n.Name)
				}
			}
		}
	}
	if recovered < 1 {
		t.Fatal("no job shows a recovery outcome despite the forced replan")
	}
	if !res.Report.DeadlineMet {
		t.Fatal("faulted run missed the deadline")
	}
}

// The matrix itself: seven rows, stable labels, no failures at a small
// fleet size (the full size runs in the dedicated tests above).
func TestExtFleetMatrixShape(t *testing.T) {
	rows, err := ExtFleetMatrix(FleetConfig{Jobs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ExtFleetScenarios(2, "")) {
		t.Fatalf("%d rows, want %d", len(rows), len(ExtFleetScenarios(2, "")))
	}
	tab := ExtFleetRender(rows)
	if len(tab.Rows) != len(rows) {
		t.Fatalf("table has %d rows", len(tab.Rows))
	}
	if !strings.Contains(tab.Rows[0][0], "greedy/sequential") {
		t.Fatalf("row 0 label = %q", tab.Rows[0][0])
	}
	for _, r := range rows {
		if r.Jobs != 3 {
			t.Fatalf("row %s has %d jobs", r.Scenario, r.Jobs)
		}
	}
}

// A rolling drain of dc0 must empty every source node in turn, never
// exceeding the configured jobs-in-flight cap in any mini-plan, and
// leave every job healthy. Placement may legally refill already-
// maintained nodes (the caterpillar pattern — that is what lets a drain
// proceed with one node's headroom), so the guarantee is per-drain:
// the node under maintenance is empty when its mini-plan completes.
func TestRollingMaintenanceDrainsEveryNode(t *testing.T) {
	res, err := RunFleetScenario(FleetConfig{Jobs: 4}, FleetScenario{
		Kind: fleet.RollingMaintenance, Placement: fleet.PlaceSwap, MaxInFlight: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	srcNodes := res.Plan.Dir.Source.Nodes
	if len(rep.Drains) != len(srcNodes) {
		t.Fatalf("%d drain records, want one per source node (%d)",
			len(rep.Drains), len(srcNodes))
	}
	for i, dr := range rep.Drains {
		if dr.Node != srcNodes[i].Name {
			t.Fatalf("drain %d covered %s, want %s in site order", i, dr.Node, srcNodes[i].Name)
		}
		if dr.Left != 0 {
			t.Fatalf("node %s still hosts %d VM(s) after its drain", dr.Node, dr.Left)
		}
		if dr.MaxInFlight > 2 {
			t.Fatalf("node %s ran %d jobs in flight, cap is 2", dr.Node, dr.MaxInFlight)
		}
	}
	drainEvents := 0
	for _, e := range rep.Events {
		if e.Kind == metrics.EventDrain {
			drainEvents++
		}
	}
	if drainEvents < len(srcNodes) {
		t.Fatalf("%d drain events, want at least %d", drainEvents, len(srcNodes))
	}
	if !rep.DeadlineMet {
		t.Fatal("rolling drain missed the deadline")
	}
	// Any VM still on dc0 must sit on a node whose drain already completed
	// empty — verified above via Left — never on one awaiting its turn.
	// The last node in site order can therefore never be refilled.
	last := srcNodes[len(srcNodes)-1]
	for _, j := range res.Plan.Jobs {
		for _, vm := range j.VMs() {
			if vm.Node() == last {
				t.Fatalf("VM %s on %s, the final drain target", vm.Name(), last.Name)
			}
		}
	}
	for _, jo := range rep.Jobs {
		if jo.Outcome != ninja.OutcomeClean {
			t.Fatalf("job %s ended %s in a fault-free drain", jo.Job.Name, jo.Outcome)
		}
	}
}

// Forcing job00's migration to roll back in place during its drain must
// make the executor re-queue it; the job ends healthy and its drained
// node still comes up empty.
func TestRollingRequeueAfterForcedRollback(t *testing.T) {
	res, err := RunFleetScenario(FleetConfig{Jobs: 4}, FleetScenario{
		Kind: fleet.RollingMaintenance, Placement: fleet.PlaceSwap,
		MaxInFlight: 2, ForcedRollback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.Requeues < 1 {
		t.Fatal("forced rollback-in-place was not re-queued")
	}
	requeueEvents := 0
	for _, e := range rep.Events {
		if e.Kind == metrics.EventRequeue {
			requeueEvents++
		}
	}
	if requeueEvents < 1 {
		t.Fatal("no requeue event in the fleet trail")
	}
	for _, dr := range rep.Drains {
		if dr.Left != 0 {
			t.Fatalf("node %s still hosts %d VM(s) after its drain", dr.Node, dr.Left)
		}
	}
	// The rollback hits job00 while its boot node (first in site order) is
	// draining: that mini-plan's outcome must show the re-queued second
	// attempt succeeding, and the node must still come up empty (Left
	// above) — the job ended off the drained node despite the rollback.
	firstDrain := "drain:" + res.Plan.Dir.Source.Nodes[0].Name
	seen := false
	for _, jo := range rep.Jobs {
		if jo.Job.Name != "job00" || jo.Leg != firstDrain {
			continue
		}
		seen = true
		if jo.Outcome != ninja.OutcomeRetriedOK {
			t.Fatalf("job00 ended %s, want %s after the re-queue", jo.Outcome, ninja.OutcomeRetriedOK)
		}
		if jo.Attempts < 2 {
			t.Fatalf("job00 recorded %d fleet attempt(s), want the re-queued second", jo.Attempts)
		}
	}
	if !seen {
		t.Fatalf("no outcome recorded for job00 on leg %q", firstDrain)
	}
	if !rep.DeadlineMet {
		t.Fatal("re-queued drain missed the deadline")
	}
}

// A bidirectional evacuation through a site outage: the fleet leaves the
// failed site, waits for the restore, and migrates every VM back to the
// exact node it booted on, recording one outcome per job per leg.
func TestFleetEvacuateReturnHome(t *testing.T) {
	cfg := FleetConfig{Jobs: 4}
	res, err := RunFleetScenario(cfg, FleetScenario{
		Placement: fleet.PlaceSwap, Seq: fleet.SeqPolicy{Batched: true, Cap: 4},
		ReturnHome: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if !rep.DeadlineMet {
		t.Fatal("bidirectional evacuation missed the deadline")
	}
	returnEvents := 0
	for _, e := range rep.Events {
		if e.Kind == metrics.EventReturnHome {
			returnEvents++
		}
	}
	if returnEvents < 1 {
		t.Fatal("no return-home event in the fleet trail")
	}
	// DeployFleet boots VM j*VMsPerJob+v of job j on that same index of
	// dc0's node list; a complete round trip puts each one back there.
	srcNodes := res.Plan.Dir.Source.Nodes
	for j, job := range res.Plan.Jobs {
		for v, vm := range job.VMs() {
			want := srcNodes[j*2+v]
			if vm.Node() != want {
				t.Fatalf("VM %s ended on %s, want home node %s",
					vm.Name(), vm.Node().Name, want.Name)
			}
		}
	}
	legs := map[string]int{}
	for _, jo := range rep.Jobs {
		legs[jo.Leg]++
	}
	if legs[""] != cfg.Jobs || legs["return"] != cfg.Jobs {
		t.Fatalf("leg outcomes = %v, want %d evacuation + %d return", legs, cfg.Jobs, cfg.Jobs)
	}
}

// Directive validation: an evacuate directive without a source site and a
// consolidation that cannot fit must fail loudly at plan time.
func TestFleetPlannerRejectsImpossibleDirectives(t *testing.T) {
	d, err := DeployFleet(FleetConfig{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	pl := &fleet.Planner{Topo: d.Topo, Placement: fleet.PlaceSwap}
	if _, err := pl.Plan(fleet.Directive{Kind: fleet.Evacuate}, d.Jobs); err == nil {
		t.Fatal("evacuate without a source site planned successfully")
	}
	// Consolidating 4 VMs onto 1 single-slot node cannot fit.
	_, err = pl.Plan(fleet.Directive{
		Kind: fleet.Consolidate, Source: d.Source, MaxNodes: 1,
	}, d.Jobs)
	if err == nil {
		t.Fatal("impossible consolidation planned successfully")
	}
}
