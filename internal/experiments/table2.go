package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/ninja"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Table2Row is one interconnect combination of Table II.
type Table2Row struct {
	Src, Dst string // "Infiniband" or "Ethernet"
	Hotplug  sim.Time
	Linkup   sim.Time
}

// Table2 reproduces Table II: elapsed hotplug and link-up time of a
// self-migration under the four interconnect combinations, measured with
// 8 VMs running the 2 GB memtest benchmark (§IV-B1).
func Table2() ([]Table2Row, error) {
	combos := []struct {
		src, dst string
		attach   bool // HCA attached at boot (source setting)
		policy   ninja.AttachPolicy
	}{
		{"Infiniband", "Infiniband", true, ninja.AttachAuto},
		{"Infiniband", "Ethernet", true, ninja.AttachNever},
		{"Ethernet", "Infiniband", false, ninja.AttachAuto},
		{"Ethernet", "Ethernet", false, ninja.AttachNever},
	}
	var rows []Table2Row
	for _, c := range combos {
		d, err := Deploy(DeployConfig{
			NVMs: 8, RanksPerVM: 1, AttachHCA: c.attach,
			DstHasIB: true, ContinueLikeRestart: true,
		})
		if err != nil {
			return nil, err
		}
		mt := &workloads.Memtest{ArrayBytes: 2e9, Passes: 400}
		appDone, err := workloads.Run(d.Job, mt)
		if err != nil {
			return nil, err
		}
		var rep ninja.Report
		var migErr error
		d.K.Go("driver", func(p *sim.Proc) {
			p.Sleep(5 * sim.Second)
			dsts := d.SrcNodes(8) // self-migration: every VM to its own node
			rep, migErr = d.Orch.MigratePolicy(p, dsts, c.policy)
		})
		d.K.Run()
		if migErr != nil {
			return nil, fmt.Errorf("experiments: table2 %s→%s: %w", c.src, c.dst, migErr)
		}
		if !appDone.Done() {
			return nil, fmt.Errorf("experiments: table2 %s→%s: memtest did not finish", c.src, c.dst)
		}
		rows = append(rows, Table2Row{Src: c.src, Dst: c.dst, Hotplug: rep.Hotplug(), Linkup: rep.Linkup})
	}
	return rows, nil
}

// Table2Render formats the rows like the paper's table.
func Table2Render(rows []Table2Row) *metrics.Table {
	t := metrics.NewTable("Table II — Elapsed time of hotplug and link-up [seconds]",
		"Src", "Dst", "hotplug", "link-up")
	for _, r := range rows {
		t.AddRow(r.Src, r.Dst, r.Hotplug, r.Linkup)
	}
	return t
}
