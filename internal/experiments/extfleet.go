package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/ninja"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/vmm"
)

// This file implements the fleet control-plane extension experiment: a
// datacenter evacuation of N independent MPI jobs, crossed over placement
// policy (greedy first-fit vs swap-refined) and sequencing policy
// (sequential vs batched gang execution), plus a faulted run where a
// planned destination node crashes mid-directive and the control plane
// replans the not-yet-started migrations.

// FleetConfig shapes a fleet deployment.
type FleetConfig struct {
	// Jobs is the number of independent MPI jobs (default 8). Jobs
	// alternate IB-capable (VMM-bypass HCAs attached at boot, even
	// indices) and TCP-only (odd indices).
	Jobs int
	// VMsPerJob is each job's gang size (default 2; one VM per node —
	// a passthrough HCA cannot be shared between guests).
	VMsPerJob int
	// GuestMemGB is guest RAM per VM (default 4 — small guests keep the
	// fleet-sized matrix tractable).
	GuestMemGB float64
	// DataGB is the per-VM workload region (default 1).
	DataGB float64
	// Spares is the count of dc1 standby nodes handed to the shared
	// scheduler.Spares pool, outside the fleet placement (default 2).
	Spares int
	// WANBandwidth is every site's uplink circuit capacity (default
	// 1.25e9 B/s, a 10 Gbit/s disaster-recovery circuit).
	WANBandwidth float64
	// AppIters is each job's iteration count; the apps must outlive the
	// directive so late migrations still find ranks to quiesce
	// (default 3000 × 0.2 s ≈ 600 s of compute).
	AppIters int
	// DrainCap is the rolling-maintenance jobs-in-flight cap per
	// mini-plan (default 2).
	DrainCap int
	// Backend selects the simulation kernel's event-queue backend (zero
	// value = sim.BackendHeap). Observable results are backend-independent
	// — the determinism acceptance test holds the matrix byte-identical
	// across backends.
	Backend sim.Backend
	// SeqMode selects the matrix's sequencing algorithm: "" or "lpt"
	// keeps the default LPT matrix (byte-stable across releases);
	// "maxflow" swaps the batched rows for time-expanded max-flow rounds
	// (fleet.SeqMaxFlow), keeping the capped LPT rows as the reference
	// they are read against.
	SeqMode string
}

func (cfg FleetConfig) withDefaults() FleetConfig {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 8
	}
	if cfg.VMsPerJob <= 0 {
		cfg.VMsPerJob = 2
	}
	if cfg.GuestMemGB == 0 {
		cfg.GuestMemGB = 4
	}
	if cfg.DataGB == 0 {
		cfg.DataGB = 1
	}
	if cfg.Spares < 0 {
		cfg.Spares = 0
	} else if cfg.Spares == 0 {
		cfg.Spares = 2
	}
	if cfg.WANBandwidth == 0 {
		cfg.WANBandwidth = 1.25e9
	}
	if cfg.AppIters <= 0 {
		cfg.AppIters = 3000
	}
	if cfg.DrainCap <= 0 {
		cfg.DrainCap = 2
	}
	return cfg
}

// shape returns the deployment's VM count and the dc1 IB-destination node
// count for a defaulted config — the single source of truth shared by
// DeployFleet and FleetVictims.
func (cfg FleetConfig) shape() (nVMs, ibDst int) {
	nVMs = cfg.Jobs * cfg.VMsPerJob
	ibDst = nVMs / 2
	if ibDst < cfg.VMsPerJob {
		ibDst = cfg.VMsPerJob // room for at least one gang on IB
	}
	return nVMs, ibDst
}

// FleetVictims returns the deterministic fault-victim name lists of the
// deployment DeployFleet(cfg) would boot, without booting anything: every
// fleet VM ("j00v00", ...) and every destination node (the dc1 IB nodes
// and the dc2 Ethernet nodes, in site order). Monte Carlo sweeps draw
// seeded victims from these lists before a cell's testbed exists.
func FleetVictims(cfg FleetConfig) (vms, dstNodes []string) {
	cfg = cfg.withDefaults()
	nVMs, ibDst := cfg.shape()
	for j := 0; j < cfg.Jobs; j++ {
		for v := 0; v < cfg.VMsPerJob; v++ {
			vms = append(vms, fmt.Sprintf("j%02dv%02d", j, v))
		}
	}
	for i := 0; i < ibDst; i++ {
		dstNodes = append(dstNodes, fmt.Sprintf("dc1-n%02d", i))
	}
	for i := 0; i < nVMs; i++ {
		dstNodes = append(dstNodes, fmt.Sprintf("dc2-n%02d", i))
	}
	return vms, dstNodes
}

// FleetDeployment is a three-site testbed under fleet control: dc0 is the
// IB source hosting every job, dc1 a smaller IB destination (plus spare
// nodes feeding the shared pool), dc2 an Ethernet destination big enough
// for the whole fleet. Destination capacity is scarce on the IB side by
// construction, so placement policy visibly matters.
type FleetDeployment struct {
	K      *sim.Kernel
	W      *hw.WideArea
	NFS    *storage.NFS
	Topo   *fleet.Topology
	Source *fleet.Site // dc0, the site the directive evacuates
	Jobs   []*fleet.Job
	Apps   []*sim.Future[struct{}]
	Spares *scheduler.Spares
	// SpareNodes are the dc1 standbys behind Spares (for tests).
	SpareNodes []*hw.Node
	// Epoch is the simulated time after boot + link training.
	Epoch sim.Time
}

// VMs returns every fleet VM, job-major.
func (d *FleetDeployment) VMs() []*vmm.VM {
	var out []*vmm.VM
	for _, j := range d.Jobs {
		out = append(out, j.VMs()...)
	}
	return out
}

// DeployFleet boots the three-site fleet testbed and launches the jobs'
// iterating applications.
func DeployFleet(cfg FleetConfig) (*FleetDeployment, error) {
	cfg = cfg.withDefaults()
	nVMs, ibDst := cfg.shape()
	ethSpec := hw.AGCNodeSpec
	ethSpec.IBBandwidth = 0
	k := sim.NewKernelWith(sim.Options{Backend: cfg.Backend})
	w := hw.NewWideArea(k, hw.WideAreaConfig{
		Sites: []hw.SiteConfig{
			{Nodes: nVMs, Spec: hw.AGCNodeSpec},               // dc0: IB source
			{Nodes: ibDst + cfg.Spares, Spec: hw.AGCNodeSpec}, // dc1: scarce IB destination
			{Nodes: nVMs, Spec: ethSpec},                      // dc2: Ethernet overflow
		},
		WANBandwidth: cfg.WANBandwidth,
		WANLatency:   10 * sim.Millisecond,
	})
	nfs := storage.NewNFS("wan-nfs")
	nfs.MountAll(w.DCs[0].Cluster, w.DCs[1].Cluster, w.DCs[2].Cluster)

	d := &FleetDeployment{K: k, W: w, NFS: nfs}
	dc1 := w.DCs[1].Cluster.Nodes
	src := &fleet.Site{Name: "dc0", Nodes: w.DCs[0].Cluster.Nodes, WANBandwidth: cfg.WANBandwidth}
	dst1 := &fleet.Site{Name: "dc1", Nodes: dc1[:ibDst], WANBandwidth: cfg.WANBandwidth}
	dst2 := &fleet.Site{Name: "dc2", Nodes: w.DCs[2].Cluster.Nodes, WANBandwidth: cfg.WANBandwidth}
	d.Topo = fleet.NewTopology(src, dst1, dst2)
	d.Source = src
	d.SpareNodes = dc1[ibDst:]
	d.Spares = scheduler.NewSpares(d.SpareNodes...)

	// Boot one VM per dc0 node; even-indexed jobs carry boot-attached
	// HCAs, odd-indexed jobs ride the tcp BTL.
	var vms [][]*vmm.VM
	for j := 0; j < cfg.Jobs; j++ {
		ib := j%2 == 0
		var gang []*vmm.VM
		for v := 0; v < cfg.VMsPerJob; v++ {
			node := w.DCs[0].Cluster.Nodes[j*cfg.VMsPerJob+v]
			vm, err := vmm.New(k, node, w.Segment, vmm.Config{
				Name:        fmt.Sprintf("j%02dv%02d", j, v),
				VCPUs:       2,
				MemoryBytes: cfg.GuestMemGB * hw.GB,
			}, vmm.DefaultParams())
			if err != nil {
				return nil, err
			}
			vm.SetStorage(nfs)
			if ib {
				if err := vm.AttachBootHCA(); err != nil {
					return nil, err
				}
			}
			if _, err := vm.Memory().AddRegion("data", cfg.DataGB*hw.GB, 0, 0); err != nil {
				return nil, err
			}
			gang = append(gang, vm)
		}
		vms = append(vms, gang)
	}
	d.Epoch = k.RunUntil(fabric.DefaultIBTrainingTime + sim.Second)

	// One MPI job + orchestrator per gang, all sharing the retry policy
	// and the spare pool.
	pol := ninja.DefaultRetryPolicy()
	for j := 0; j < cfg.Jobs; j++ {
		job, err := mpi.NewJob(k, mpi.Config{
			VMs: vms[j], RanksPerVM: 1, ContinueLikeRestart: true,
		})
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("job%02d", j)
		d.Jobs = append(d.Jobs, &fleet.Job{
			Name:      name,
			Orch:      ninja.New(job, ninja.Options{Retry: &pol, Spares: d.Spares}),
			IBCapable: j%2 == 0,
		})
		iters := cfg.AppIters
		d.Apps = append(d.Apps, job.Launch(name, func(p *sim.Proc, rk *mpi.Rank) {
			for i := 0; i < iters; i++ {
				rk.FTProbe(p)
				rk.Compute(p, 0.2)
			}
		}))
	}
	return d, nil
}

// FleetScenario is one matrix cell: the directive kind, the policy pair,
// and the fault switches.
type FleetScenario struct {
	// Kind selects the directive (zero value = Evacuate).
	Kind      fleet.DirectiveKind
	Placement fleet.PlacementPolicy
	Seq       fleet.SeqPolicy
	// Mode selects the transfer mechanism (zero value = Live). RDMANative
	// migrates IB-capable jobs by QP checkpoint/replay — no hotplug, no
	// link retraining — with per-VM demotion to the hotplug rung on replay
	// faults; the sequencer prices those jobs without the fixed terms.
	Mode ninja.Mode
	// MaxInFlight caps jobs migrating concurrently per rolling-maintenance
	// mini-plan.
	MaxInFlight int
	// ReturnHome makes the evacuation bidirectional: the whole source site
	// crashes just before the trigger and restores 300 s later, so the
	// fleet evacuates the failed site and then migrates every job back to
	// its original node.
	ReturnHome bool
	// Faulted crashes a planned destination of the final batch shortly
	// after the directive starts, exercising the executor's replanning.
	Faulted bool
	// ForcedRollback kills job00's migration at the first precopy pass
	// until its ninja retry budget is spent, forcing a rollback-in-place
	// the executor must re-queue into a fresh batch.
	ForcedRollback bool
	// ExtraFaults, when non-nil, is an additional fault plan armed over
	// the whole deployment (every fleet VM, every node of every site, and
	// the shared NFS) with spec At times relative to the directive
	// trigger. This is the Monte Carlo sweep hook: simfarm materializes a
	// seeded plan per cell and injects it here. The plan's own Seed drives
	// any empty-target victim selection inside the faults package.
	ExtraFaults *faults.Plan
}

// Label renders "swap/batched(cap=4)"-style identifiers.
func (sc FleetScenario) Label() string {
	var l string
	if sc.Kind == fleet.RollingMaintenance {
		l = fmt.Sprintf("rolling(cap=%d)/%s", sc.MaxInFlight, sc.Placement)
		if sc.Seq.Mode == fleet.SeqMaxFlow {
			l += "/maxflow"
		}
	} else {
		l = sc.Placement.String() + "/" + sc.Seq.String()
	}
	switch sc.Mode {
	case ninja.RDMANative:
		l += "+rdma"
	case ninja.Cold:
		l += "+cold"
	}
	if sc.ReturnHome {
		l += "+return"
	}
	if sc.Faulted {
		l += "+crash"
	}
	if sc.ForcedRollback {
		l += "+rollback"
	}
	if sc.ExtraFaults != nil && sc.ExtraFaults.Name != "" {
		l += "+plan:" + sc.ExtraFaults.Name
	}
	return l
}

// FleetRow is one matrix row's result.
type FleetRow struct {
	Scenario string
	Jobs     int
	Batches  int
	// Score is the placement's aggregate interconnect-affinity score.
	Score int
	// IBJobsOnIB counts IB-capable jobs whose guests still have usable
	// InfiniBand after landing (the placement quality ground truth).
	IBJobsOnIB int
	IBJobs     int
	Predicted  sim.Time // sequencer's contention-model makespan estimate
	Makespan   sim.Time // measured directive wall time
	Downtime   sim.Time // summed per-job service interruption
	Deadline   bool
	Replans    int
	Requeues   int
	Outcomes   string
}

// FleetResult pairs the row with the raw report for tests.
type FleetResult struct {
	Row    FleetRow
	Plan   *fleet.Plan
	Report fleet.Report
}

// RunFleetScenario deploys a fresh fleet, plans the directive over dc0
// under the scenario's policies, runs it, and reports. The deadline is
// fixed per directive shape (400 s for a plain evacuation, 800 s for a
// bidirectional one, 1200 s for a rolling drain) so rows within a shape
// are comparable.
func RunFleetScenario(cfg FleetConfig, sc FleetScenario) (*FleetResult, error) {
	return RunFleetScenarioWith(cfg, sc, nil)
}

// RunFleetScenarioWith is RunFleetScenario with a live tap on the
// executor's event trail: sink (if non-nil) observes every metrics.Event
// as it is recorded, in simulation order, before the run completes. The
// run itself is unchanged — a nil and a non-nil sink produce byte-
// identical results, which is what lets ninjad stream progress without
// perturbing the determinism its crash-recovery proof depends on.
func RunFleetScenarioWith(cfg FleetConfig, sc FleetScenario, sink func(metrics.Event)) (*FleetResult, error) {
	cfg = cfg.withDefaults()
	d, err := DeployFleet(cfg)
	if err != nil {
		return nil, err
	}
	// Unwind parked processes (wedged apps, abandoned waiters) on every
	// exit path: a Monte Carlo sweep runs hundreds of scenarios in one
	// process, and each leaked proc goroutine would otherwise outlive its
	// run. Close is a no-op on the happy path where everything exited.
	defer d.K.Close()
	trigger := d.Epoch + 5*sim.Second
	deadline := trigger + 400*sim.Second
	switch {
	case sc.Kind == fleet.RollingMaintenance:
		deadline = trigger + 1200*sim.Second
	case sc.ReturnHome:
		deadline = trigger + 800*sim.Second
	}
	dir := fleet.Directive{
		Kind:        sc.Kind,
		Source:      d.Source,
		Deadline:    deadline,
		MaxInFlight: sc.MaxInFlight,
		ReturnHome:  sc.ReturnHome,
	}
	model := fleet.CostModel{RDMANative: sc.Mode == ninja.RDMANative}
	planner := &fleet.Planner{Topo: d.Topo, Placement: sc.Placement, Seq: sc.Seq, Model: model}
	plan, err := planner.Plan(dir, d.Jobs)
	if err != nil {
		return nil, err
	}

	ex := fleet.NewExecutor(d.K, plan, fleet.Options{
		Topo:      d.Topo,
		Placement: sc.Placement,
		Replan:    true,
		Mode:      sc.Mode,
		Model:     model,
	})
	if sink != nil {
		ex.Events().SetNotify(sink)
	}
	logInjection := func(kind, subject, detail string) {
		ex.Events().Record(metrics.EventFaultInjected, kind, subject, detail)
	}
	if sc.Faulted && len(plan.Seq.Batches) > 0 {
		// Crash the first planned destination of the final batch while the
		// first batch is still in flight: the fleet must notice before
		// launching the victim's batch and re-place it.
		last := plan.Seq.Batches[len(plan.Seq.Batches)-1]
		victim := last[0].Dsts[0]
		inj := faults.NewInjector(d.K, faults.Plan{
			Name: "fleet-dst-crash", Seed: 1,
			Specs: []faults.Spec{{
				Kind: faults.KindNodeCrash, Target: victim.Name, At: trigger + 5*sim.Second,
			}},
		}, faults.Env{Nodes: []*hw.Node{victim}, Log: logInjection})
		if err := inj.Arm(); err != nil {
			return nil, err
		}
	}
	if sc.ReturnHome {
		// The whole source site goes dark just before the trigger and comes
		// back 300 s later. Failed nodes only refuse inbound migrations, so
		// the fleet evacuates off the dead site, waits out the outage, and
		// migrates everyone home.
		var specs []faults.Spec
		for _, n := range d.Source.Nodes {
			specs = append(specs, faults.Spec{
				Kind: faults.KindNodeCrash, Target: n.Name,
				At: trigger - 2*sim.Second, For: 300 * sim.Second,
			})
		}
		inj := faults.NewInjector(d.K, faults.Plan{
			Name: "fleet-site-outage", Seed: 1, Specs: specs,
		}, faults.Env{Nodes: d.Source.Nodes, Log: logInjection})
		if err := inj.Arm(); err != nil {
			return nil, err
		}
	}
	if sc.ExtraFaults != nil {
		// The sweep hook: shift the plan's trigger-relative times to
		// absolute simulated time and arm it over the whole deployment.
		plan := faults.Plan{Name: sc.ExtraFaults.Name, Seed: sc.ExtraFaults.Seed}
		for _, s := range sc.ExtraFaults.Specs {
			s.At += trigger
			plan.Specs = append(plan.Specs, s)
		}
		var nodes []*hw.Node
		for _, s := range d.Topo.Sites {
			nodes = append(nodes, s.Nodes...)
		}
		nodes = append(nodes, d.SpareNodes...)
		inj := faults.NewInjector(d.K, plan, faults.Env{
			VMs: d.VMs(), Nodes: nodes, Store: d.NFS, Log: logInjection,
		})
		if err := inj.Arm(); err != nil {
			return nil, err
		}
	}
	if sc.ForcedRollback {
		// Kill job00's migration at the first precopy pass on every ninja
		// attempt (Count = the retry budget): the first executor attempt
		// ends in a rollback-in-place, which the executor must re-queue;
		// the fault budget is spent by then, so the re-queued attempt lands.
		pol := ninja.DefaultRetryPolicy()
		inj := faults.NewInjector(d.K, faults.Plan{
			Name: "fleet-forced-rollback", Seed: 1,
			Specs: []faults.Spec{{
				Kind: faults.KindMigrateAbort, Target: "j00v00",
				At: trigger, Pass: 1, Count: pol.MaxAttempts,
			}},
		}, faults.Env{VMs: d.VMs(), Log: logInjection})
		if err := inj.Arm(); err != nil {
			return nil, err
		}
	}

	var rep fleet.Report
	var fut *sim.Future[fleet.Report]
	d.K.Go("fleet-driver", func(p *sim.Proc) {
		if trigger > p.Now() {
			p.Sleep(trigger - p.Now())
		}
		f, err2 := ex.Start()
		if err2 != nil {
			panic(err2) // Start on a fresh executor cannot fail
		}
		fut = f
	})
	d.K.Run()
	if fut == nil || !fut.Done() {
		return nil, fmt.Errorf("experiments: fleet %s: directive incomplete", sc.Label())
	}
	rep = fut.Value()
	for i, app := range d.Apps {
		if !app.Done() {
			return nil, fmt.Errorf("experiments: fleet %s: job %d wedged", sc.Label(), i)
		}
	}
	if failed := rep.Failed(); len(failed) > 0 {
		return nil, fmt.Errorf("experiments: fleet %s: job %s failed: %v",
			sc.Label(), failed[0].Job.Name, failed[0].Err)
	}

	row := FleetRow{
		Scenario:  sc.Label(),
		Jobs:      len(d.Jobs),
		Batches:   len(plan.Seq.Batches),
		Score:     fleet.ScoreAll(plan.Assignments),
		Predicted: plan.Seq.Predicted,
		Makespan:  rep.Makespan,
		Downtime:  rep.Downtime,
		Deadline:  rep.DeadlineMet,
		Replans:   rep.Replans,
		Requeues:  rep.Requeues,
		Outcomes:  rep.OutcomeCounts(),
	}
	if sc.Kind == fleet.RollingMaintenance {
		// Rolling plans are placed and sequenced incrementally: count the
		// mini-plans' batches instead of the (empty) up-front sequence.
		for _, dr := range rep.Drains {
			row.Batches += dr.Batches
		}
	}
	for _, j := range d.Jobs {
		if !j.IBCapable {
			continue
		}
		row.IBJobs++
		onIB := true
		for _, vm := range j.VMs() {
			if !vm.Guest().IBUsable() {
				onIB = false
			}
		}
		if onIB {
			row.IBJobsOnIB++
		}
	}
	return &FleetResult{Row: row, Plan: plan, Report: rep}, nil
}

// ExtFleetScenarios is the directive × policy matrix: both placements
// under both sequencers, the faulted run on the strongest pair, then the
// extension directives — a rolling drain of dc0 (capped jobs-in-flight)
// and a bidirectional evacuation through a 300 s site outage.
//
// seqMode fleet.SeqMaxFlow swaps the batched rows for uncapped
// time-expanded max-flow rounds and keeps the two capped LPT rows as the
// reference they are read against; any other value returns the default
// LPT matrix unchanged.
func ExtFleetScenarios(drainCap int, seqMode string) []FleetScenario {
	if drainCap <= 0 {
		drainCap = 2
	}
	if seqMode == fleet.SeqMaxFlow {
		mf := fleet.SeqPolicy{Batched: true, Mode: fleet.SeqMaxFlow}
		return []FleetScenario{
			{Placement: fleet.PlaceGreedy, Seq: fleet.SeqPolicy{Batched: true, Cap: 4}},
			{Placement: fleet.PlaceSwap, Seq: fleet.SeqPolicy{Batched: true, Cap: 4}},
			{Placement: fleet.PlaceGreedy, Seq: mf},
			{Placement: fleet.PlaceSwap, Seq: mf},
			{Placement: fleet.PlaceSwap, Seq: mf, Faulted: true},
			{Placement: fleet.PlaceSwap, Seq: mf, Mode: ninja.RDMANative},
			{Kind: fleet.RollingMaintenance, Placement: fleet.PlaceSwap,
				Seq: fleet.SeqPolicy{Mode: fleet.SeqMaxFlow}, MaxInFlight: drainCap},
			{Placement: fleet.PlaceSwap, Seq: mf, ReturnHome: true},
		}
	}
	return []FleetScenario{
		{Placement: fleet.PlaceGreedy, Seq: fleet.SeqPolicy{}},
		{Placement: fleet.PlaceSwap, Seq: fleet.SeqPolicy{}},
		{Placement: fleet.PlaceGreedy, Seq: fleet.SeqPolicy{Batched: true, Cap: 4}},
		{Placement: fleet.PlaceSwap, Seq: fleet.SeqPolicy{Batched: true, Cap: 4}},
		{Placement: fleet.PlaceSwap, Seq: fleet.SeqPolicy{Batched: true, Cap: 4}, Faulted: true},
		{Placement: fleet.PlaceSwap, Seq: fleet.SeqPolicy{Batched: true, Cap: 4}, Mode: ninja.RDMANative},
		{Kind: fleet.RollingMaintenance, Placement: fleet.PlaceSwap, MaxInFlight: drainCap},
		{Placement: fleet.PlaceSwap, Seq: fleet.SeqPolicy{Batched: true, Cap: 4}, ReturnHome: true},
	}
}

// ExtFleetMatrix runs the full fleet directive × policy × fault matrix.
func ExtFleetMatrix(cfg FleetConfig) ([]FleetRow, error) {
	return ExtFleetMatrixCtx(context.Background(), cfg)
}

// ExtFleetMatrixCtx is ExtFleetMatrix with cooperative cancellation: ctx
// is checked between scenarios (a scenario, once started, runs to
// completion — the simulation has no wall-clock blocking inside it), and
// a cancelled run returns the rows finished so far alongside ctx.Err().
func ExtFleetMatrixCtx(ctx context.Context, cfg FleetConfig) ([]FleetRow, error) {
	cfg = cfg.withDefaults()
	var rows []FleetRow
	for _, sc := range ExtFleetScenarios(cfg.DrainCap, cfg.SeqMode) {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		res, err := RunFleetScenario(cfg, sc)
		if err != nil {
			return rows, err
		}
		rows = append(rows, res.Row)
	}
	return rows, nil
}

// ExtFleetRender formats the fleet evacuation matrix.
func ExtFleetRender(rows []FleetRow) *metrics.Table {
	t := metrics.NewTable("Ext. — fleet evacuation: placement × sequencing matrix",
		"policy", "jobs", "batches", "score", "ib-jobs-on-ib",
		"predicted [s]", "makespan [s]", "downtime [s]", "deadline", "replans", "requeues", "outcomes")
	for _, r := range rows {
		deadline := "hit"
		if !r.Deadline {
			deadline = "MISS"
		}
		t.AddRow(r.Scenario, r.Jobs, r.Batches, r.Score,
			fmt.Sprintf("%d/%d", r.IBJobsOnIB, r.IBJobs),
			r.Predicted, r.Makespan, r.Downtime, deadline, r.Replans, r.Requeues, r.Outcomes)
	}
	return t
}

// FleetEventsSummary renders the replan/batch trail of a report, for the
// example walkthrough.
func FleetEventsSummary(rep fleet.Report) string {
	var b strings.Builder
	for _, e := range rep.Events {
		b.WriteString(e.String())
		b.WriteString("\n")
	}
	return b.String()
}
