package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/ninja"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Fig6Row is one footprint point of Fig. 6: the Ninja migration overhead
// breakdown on the memtest benchmark.
type Fig6Row struct {
	FootprintGB float64
	Migration   sim.Time
	Hotplug     sim.Time
	Linkup      sim.Time
	Total       sim.Time
}

// Fig6 reproduces Fig. 6: 8 VMs running memtest with array sizes of
// 2–16 GB migrate between two InfiniBand clusters ("both the source and
// the destination clusters use Infiniband only"); the overhead decomposes
// into migration (footprint-dependent, sub-linear thanks to zero-page
// compression), hotplug (≈3× Table II under migration noise) and link-up
// (constant ≈30 s).
func Fig6(footprintsGB []float64) ([]Fig6Row, error) {
	if len(footprintsGB) == 0 {
		footprintsGB = []float64{2, 4, 8, 16}
	}
	var rows []Fig6Row
	for _, f := range footprintsGB {
		d, err := Deploy(DeployConfig{
			NVMs: 8, RanksPerVM: 1, AttachHCA: true,
			DstHasIB: true, ContinueLikeRestart: true,
		})
		if err != nil {
			return nil, err
		}
		passTime := f * 1e9 / workloads.MemWriteBandwidth
		passes := int(240/passTime) + 1
		mt := &workloads.Memtest{ArrayBytes: f * 1e9, Passes: passes}
		appDone, err := workloads.Run(d.Job, mt)
		if err != nil {
			return nil, err
		}
		var rep ninja.Report
		var migErr error
		d.K.Go("driver", func(p *sim.Proc) {
			p.Sleep(30 * sim.Second)
			rep, migErr = d.Orch.Migrate(p, d.DstNodes(8))
		})
		d.K.Run()
		if migErr != nil {
			return nil, fmt.Errorf("experiments: fig6 %vGB: %w", f, migErr)
		}
		if !appDone.Done() {
			return nil, fmt.Errorf("experiments: fig6 %vGB: memtest did not finish", f)
		}
		rows = append(rows, Fig6Row{
			FootprintGB: f,
			Migration:   rep.Migration,
			Hotplug:     rep.Hotplug(),
			Linkup:      rep.Linkup,
			Total:       rep.Total,
		})
	}
	return rows, nil
}

// Fig6Render formats the rows like the paper's stacked bars.
func Fig6Render(rows []Fig6Row) *metrics.Table {
	t := metrics.NewTable("Fig. 6 — Ninja migration overhead on memtest [seconds]",
		"Array", "migration", "hotplug", "link-up", "total")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.0fGB", r.FootprintGB), r.Migration, r.Hotplug, r.Linkup, r.Total)
	}
	return t
}
