package experiments

import (
	"repro/internal/sim"
)

// This file is the fleet-scale kernel workload behind BenchmarkFleetScale
// and `ninjabench -scale-jobs`: a pure event-level model of an O(jobs)
// directive that concentrates the control plane's hot operations —
// Schedule/Cancel watchdog churn, processor-sharing completions, and
// same-instant event bursts — without goroutine handoffs, so the two
// kernel backends can be compared on event-queue cost alone.

// FleetScaleResult summarizes one synthetic fleet-scale run.
type FleetScaleResult struct {
	Jobs    int
	Iters   int
	Backend sim.Backend
	Stats   sim.Stats
	End     sim.Time // simulated completion time
}

// FleetScaleSim runs jobs synthetic orchestrators for iters iterations
// each on a kernel with the given backend. Every iteration submits a work
// quantum to a processor-sharing pool shared by up to 8 jobs (the PS
// O(log K) hot path), arms eight guard timers spanning the timer-wheel
// levels — the per-operation timeout fan a real orchestrator carries
// (precopy-pass watchdog, downtime cap, QMP timeout, FT probe, drain
// deadline, ...) — and cancels them all when the quantum completes, then
// sleeps a per-job think time. The run is fully deterministic: no wall
// clock, no PRNG.
func FleetScaleSim(jobs, iters int, backend sim.Backend) FleetScaleResult {
	if jobs <= 0 {
		jobs = 8
	}
	if iters <= 0 {
		iters = 200
	}
	k := sim.NewKernelWith(sim.Options{Backend: backend})
	defer k.Close()
	const poolSize = 8
	nPools := (jobs + poolSize - 1) / poolSize
	pools := make([]*sim.PS, nPools)
	for i := range pools {
		pools[i] = sim.NewPS(k, poolSize, 1)
	}
	type job struct {
		iter      int
		work      float64
		think     sim.Time
		watchdogs [8]sim.Event
		step      func()
		onServe   func(struct{})
	}
	noop := func() {}
	js := make([]*job, jobs)
	for i := 0; i < jobs; i++ {
		j := &job{
			work:  0.05 + float64(i%7)*0.01,
			think: sim.Time(50+i*13%250) * sim.Millisecond,
		}
		ps := pools[i%nPools]
		j.onServe = func(struct{}) {
			for w := range j.watchdogs {
				j.watchdogs[w].Cancel()
			}
			if j.iter >= iters {
				return
			}
			k.Schedule(j.think, j.step)
		}
		j.step = func() {
			j.iter++
			for w := range j.watchdogs {
				j.watchdogs[w] = k.Schedule(250*sim.Millisecond<<uint(w), noop)
			}
			ps.ServeAsync(j.work).OnDone(j.onServe)
		}
		js[i] = j
		k.Schedule(sim.Time(i)*sim.Millisecond, j.step)
	}
	end := k.Run()
	return FleetScaleResult{Jobs: jobs, Iters: iters, Backend: backend, Stats: k.Stats(), End: end}
}
