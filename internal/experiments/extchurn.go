package experiments

import (
	"context"
	"fmt"

	"repro/internal/churn"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// This file implements the online churn extension experiment: a
// continuous seeded arrival/departure workload over a two-site
// heterogeneous fleet (scarce InfiniBand, plentiful Ethernet), crossed
// over placement policy — greedy first-fit vs adaptive destination-swap
// — with and without an injected node crash. The headline comparison is
// the time-weighted interconnect-affinity deficit each policy leaves on
// the table, against the migration traffic the adaptive policy spends
// to buy it down.

// ChurnConfig shapes a churn deployment: a small IB site (first in
// candidate order, so the greedy baseline burns its slots blindly) and
// an Ethernet site, with a seeded arrival workload.
type ChurnConfig struct {
	// IBNodes / EthNodes size the two sites (defaults 4 and 4).
	IBNodes  int
	EthNodes int
	// SlotsPerNode caps churn gangs per node (default 2).
	SlotsPerNode int
	// WANBandwidth is each site's uplink capacity (default 1.25e9 B/s).
	WANBandwidth float64
	// NFSBandwidth prices the shared storage server (0 = unpriced).
	// Combined with ChurnScenario.Cold, re-placements contend on it.
	NFSBandwidth float64
	// Workload is the seeded arrival process; zero fields default as in
	// churn.Workload (64 jobs, 0.5/s, exponential 120 s lifetimes).
	Workload churn.Workload
	// Backend selects the kernel's event-queue backend (zero value =
	// sim.BackendHeap). Churn reports are backend-independent — the
	// determinism acceptance test holds them byte-identical.
	Backend sim.Backend
}

func (cfg ChurnConfig) withDefaults() ChurnConfig {
	if cfg.IBNodes <= 0 {
		cfg.IBNodes = 4
	}
	if cfg.EthNodes <= 0 {
		cfg.EthNodes = 4
	}
	if cfg.SlotsPerNode <= 0 {
		cfg.SlotsPerNode = 2
	}
	if cfg.WANBandwidth == 0 {
		cfg.WANBandwidth = 1.25e9
	}
	return cfg
}

// ChurnVictims returns the deterministic fault-victim node names of the
// deployment DeployChurn(cfg) would build, without building it: the IB
// site's nodes, then the Ethernet site's, in candidate order. Monte
// Carlo sweeps draw seeded victims from this list before a cell's
// testbed exists.
func ChurnVictims(cfg ChurnConfig) []string {
	cfg = cfg.withDefaults()
	var out []string
	for i := 0; i < cfg.IBNodes; i++ {
		out = append(out, fmt.Sprintf("churn-ib-n%02d", i))
	}
	for i := 0; i < cfg.EthNodes; i++ {
		out = append(out, fmt.Sprintf("churn-eth-n%02d", i))
	}
	return out
}

// ChurnDeployment is the churn testbed: a kernel and a two-site
// topology. No guest VMs are booted — churn jobs are abstract gangs the
// engine prices through the fleet sequencer.
type ChurnDeployment struct {
	K    *sim.Kernel
	Topo *fleet.Topology
}

// DeployChurn builds the two-site churn testbed.
func DeployChurn(cfg ChurnConfig) *ChurnDeployment {
	cfg = cfg.withDefaults()
	k := sim.NewKernelWith(sim.Options{Backend: cfg.Backend})
	tb := hw.NewTestbed(k)
	ib := tb.AddCluster("churn-ib", cfg.IBNodes, hw.AGCNodeSpec)
	ethSpec := hw.AGCNodeSpec
	ethSpec.IBBandwidth = 0
	eth := tb.AddCluster("churn-eth", cfg.EthNodes, ethSpec)
	topo := fleet.NewTopology(
		&fleet.Site{Name: "churn-ib", Nodes: ib.Nodes, SlotsPerNode: cfg.SlotsPerNode, WANBandwidth: cfg.WANBandwidth},
		&fleet.Site{Name: "churn-eth", Nodes: eth.Nodes, SlotsPerNode: cfg.SlotsPerNode, WANBandwidth: cfg.WANBandwidth},
	)
	topo.NFSBandwidth = cfg.NFSBandwidth
	topo.NFSName = "churn"
	return &ChurnDeployment{K: k, Topo: topo}
}

// ChurnScenario is one matrix cell: the placement policy and the fault
// switches.
type ChurnScenario struct {
	// Policy selects greedy first-fit or adaptive destination-swap.
	Policy churn.Policy
	// MaxSwaps bounds corrective moves per arrival/departure event
	// (0 = the churn default of 2).
	MaxSwaps int
	// Cold prices swap and re-placement migrations as checkpoint/restart
	// through the shared NFS link (requires ChurnConfig.NFSBandwidth).
	Cold bool
	// Seq selects how mini-plan migrations overlap (zero value = the
	// churn default, batched LPT). fleet.SeqMaxFlow routes every
	// mini-plan through the time-expanded max-flow planner.
	Seq fleet.SeqPolicy
	// Faults, when non-nil, is the node-fault script armed over the
	// deployment (absolute sim times; only node-crash specs bite).
	Faults *faults.Plan
}

// Label renders "destination-swap+plan:node-crash"-style identifiers.
func (sc ChurnScenario) Label() string {
	l := sc.Policy.String()
	if sc.Cold {
		l += "+cold"
	}
	if sc.Seq.Mode == fleet.SeqMaxFlow {
		l += "+maxflow"
	}
	if sc.Faults != nil && sc.Faults.Name != "" {
		l += "+plan:" + sc.Faults.Name
	}
	return l
}

// ChurnRow is one matrix row's result.
type ChurnRow struct {
	Scenario string
	Arrived  int
	Placed   int
	Rejected int
	Departed int
	// SwapMigs/FaultMigs/MigGB are the corrective-migration spend.
	SwapMigs  int
	FaultMigs int
	MigGB     float64
	// CostIntegral is the time-weighted affinity deficit (points·s);
	// AvgCost the time-averaged deficit. Lower is better.
	CostIntegral float64
	AvgCost      float64
	WaitP50      sim.Time
	WaitP95      sim.Time
	Duration     sim.Time
}

// ChurnResult pairs the row with the raw report for tests.
type ChurnResult struct {
	Row    ChurnRow
	Report churn.Report
}

// RunChurnScenario deploys a fresh churn testbed and runs the workload
// under the scenario's policy.
func RunChurnScenario(cfg ChurnConfig, sc ChurnScenario) (*ChurnResult, error) {
	return RunChurnScenarioWith(cfg, sc, nil)
}

// RunChurnScenarioWith is RunChurnScenario with a live tap on the
// engine's decision log: logf (if non-nil) observes every engine log
// line as it is emitted, in simulation order. The run itself is
// unchanged — a nil and a non-nil tap produce byte-identical reports,
// which is what lets ninjad stream progress without perturbing the
// determinism its crash-recovery proof depends on.
func RunChurnScenarioWith(cfg ChurnConfig, sc ChurnScenario, logf func(format string, args ...any)) (*ChurnResult, error) {
	cfg = cfg.withDefaults()
	d := DeployChurn(cfg)
	defer d.K.Close()
	opts := churn.Options{
		Workload:         cfg.Workload,
		Policy:           sc.Policy,
		MaxSwapsPerEvent: sc.MaxSwaps,
		Model:            fleet.CostModel{Cold: sc.Cold},
		Seq:              sc.Seq,
		Log:              logf,
	}
	if sc.Faults != nil {
		opts.Faults = *sc.Faults
	}
	eng, err := churn.New(d.K, d.Topo, opts)
	if err != nil {
		return nil, err
	}
	rep := eng.Run()
	if !eng.Done().Done() {
		return nil, fmt.Errorf("experiments: churn %s: run incomplete (%d/%d jobs resolved)",
			sc.Label(), rep.Departed+rep.Rejected, rep.Arrived)
	}
	row := ChurnRow{
		Scenario:     sc.Label(),
		Arrived:      rep.Arrived,
		Placed:       rep.Placed,
		Rejected:     rep.Rejected,
		Departed:     rep.Departed,
		SwapMigs:     rep.SwapMigs,
		FaultMigs:    rep.FaultMigs,
		MigGB:        rep.MigBytes / hw.GB,
		CostIntegral: rep.CostIntegral,
		AvgCost:      rep.AvgCost,
		WaitP50:      rep.WaitP50,
		WaitP95:      rep.WaitP95,
		Duration:     rep.Duration,
	}
	return &ChurnResult{Row: row, Report: rep}, nil
}

// ChurnCrashPlan is the default faulted row's script: the first IB node
// crashes at 120 s — well into the loaded phase, so the gangs it hosts
// are evicted and re-placed under contention — and restores three
// minutes later.
func ChurnCrashPlan() *faults.Plan {
	return &faults.Plan{
		Name: "node-crash",
		Specs: []faults.Spec{{
			Kind: faults.KindNodeCrash, Target: "churn-ib-n00",
			At: 120 * sim.Second, For: 180 * sim.Second,
		}},
	}
}

// ExtChurnScenarios is the policy × fault matrix: both policies fault
// free, then both policies through the node-crash plan, then the
// destination-swap policy with its mini-plans sequenced by the
// time-expanded max-flow planner — fault free and through the crash.
func ExtChurnScenarios() []ChurnScenario {
	mf := fleet.SeqPolicy{Batched: true, Mode: fleet.SeqMaxFlow}
	return []ChurnScenario{
		{Policy: churn.PolicyGreedy},
		{Policy: churn.PolicySwap},
		{Policy: churn.PolicyGreedy, Faults: ChurnCrashPlan()},
		{Policy: churn.PolicySwap, Faults: ChurnCrashPlan()},
		{Policy: churn.PolicySwap, Seq: mf},
		{Policy: churn.PolicySwap, Seq: mf, Faults: ChurnCrashPlan()},
	}
}

// ExtChurnMatrix runs the full churn policy × fault matrix.
func ExtChurnMatrix(cfg ChurnConfig) ([]ChurnRow, error) {
	return ExtChurnMatrixCtx(context.Background(), cfg)
}

// ExtChurnMatrixCtx is ExtChurnMatrix with cooperative cancellation
// between scenarios.
func ExtChurnMatrixCtx(ctx context.Context, cfg ChurnConfig) ([]ChurnRow, error) {
	var rows []ChurnRow
	for _, sc := range ExtChurnScenarios() {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		res, err := RunChurnScenario(cfg, sc)
		if err != nil {
			return rows, err
		}
		rows = append(rows, res.Row)
	}
	return rows, nil
}

// ExtChurnRender formats the churn matrix.
func ExtChurnRender(rows []ChurnRow) *metrics.Table {
	t := metrics.NewTable("Ext. — online churn: adaptive destination-swap vs greedy placement",
		"policy", "arrived", "placed", "rejected", "departed",
		"swap-migs", "fault-migs", "mig [GB]",
		"cost [pt·s]", "avg-cost", "wait-p50", "wait-p95", "span [s]")
	for _, r := range rows {
		t.AddRow(r.Scenario, r.Arrived, r.Placed, r.Rejected, r.Departed,
			r.SwapMigs, r.FaultMigs, fmt.Sprintf("%.1f", r.MigGB),
			fmt.Sprintf("%.0f", r.CostIntegral), fmt.Sprintf("%.1f", r.AvgCost),
			r.WaitP50, r.WaitP95, r.Duration)
	}
	return t
}
