package experiments

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/ninja"
	"repro/internal/sim"
)

// This file implements the robustness extension experiment: a phase ×
// fault outcome matrix. Each scenario deploys a fresh testbed, launches
// an iterating MPI job, arms one fault plan against a specific phase of
// the Ninja script, and triggers a migration. The run must end with the
// job healthy — every injected fault resolved by retry, degradation to
// TCP, or rollback-in-place — and the MPI iteration counter strictly
// monotone across the fault (no lost or repeated iterations).

// FaultScenario describes one matrix row's setup.
type FaultScenario struct {
	Name string
	// Phase is the Ninja phase the fault targets (table label).
	Phase string
	// Specs is the fault plan, with At relative to the migration trigger
	// (shifted to absolute simulated time at deploy).
	Specs []faults.Spec
	// Mode selects live or cold transfer.
	Mode ninja.Mode
	// DstIB gives the destination cluster InfiniBand.
	DstIB bool
	// Spares adds destination-cluster standby nodes to the orchestrator.
	Spares int
	// Tune adjusts the retry policy (applied over DefaultRetryPolicy).
	Tune func(*ninja.RetryPolicy)
}

// FaultRow is one matrix row's result.
type FaultRow struct {
	Scenario string
	Phase    string
	Outcome  ninja.Outcome
	// Err is the orchestration error (expected only for rollback rows).
	Err         error
	Retries     int
	SparesUsed  int
	DegradedVMs int
	FaultsFired int
	Total       sim.Time
	// Iters is the number of MPI iterations completed; Monotone is false
	// if the per-rank iteration counter ever repeated or went backwards.
	Iters    int
	Monotone bool
}

// extFaultScenarios is the matrix: every phase of the script crossed with
// the fault class that stresses it, plus the zero-fault control.
func extFaultScenarios() []FaultScenario {
	const trig = 0 // shorthand: offsets below are relative to the trigger
	return []FaultScenario{
		{
			Name: "none", Phase: "-", DstIB: true,
		},
		{
			Name: "drop-device-deleted", Phase: "detach", DstIB: true,
			Specs: []faults.Spec{{Kind: faults.KindDropEvent, Target: "vm00", Arg: "DEVICE_DELETED"}},
			Tune: func(pol *ninja.RetryPolicy) {
				pol.DetachTimeout = 20 * sim.Second // don't wait a full minute on the lost event
			},
		},
		{
			Name: "qmp-error-detach", Phase: "detach", DstIB: true,
			Specs: []faults.Spec{{Kind: faults.KindQMPError, Target: "vm00", Arg: "device_del"}},
		},
		{
			Name: "migrate-abort", Phase: "migration", DstIB: true,
			Specs: []faults.Spec{{Kind: faults.KindMigrateAbort, Target: "vm00", Pass: 1}},
		},
		{
			Name: "dst-node-crash", Phase: "migration", DstIB: true, Spares: 1,
			Specs: []faults.Spec{{Kind: faults.KindNodeCrash, At: trig + 1*sim.Second}},
		},
		{
			Name: "qmp-error-attach", Phase: "attach", DstIB: true,
			Specs: []faults.Spec{{Kind: faults.KindQMPError, Target: "vm00", Arg: "device_add"}},
		},
		{
			Name: "ib-train-stall", Phase: "linkup", DstIB: true,
			Specs: []faults.Spec{{Kind: faults.KindTrainStall, For: 120 * sim.Second}},
		},
		{
			Name: "nfs-outage", Phase: "cold migration", Mode: ninja.Cold,
			Specs: []faults.Spec{{Kind: faults.KindNFSOutage, At: trig, For: 30 * sim.Second}},
			Tune: func(pol *ninja.RetryPolicy) {
				pol.Backoff = 20 * sim.Second // outlast the outage window
			},
		},
		{
			Name: "attach-fails-no-degrade", Phase: "attach", DstIB: true,
			Specs: []faults.Spec{{Kind: faults.KindQMPError, Target: "vm00", Arg: "device_add", Count: 10}},
			Tune: func(pol *ninja.RetryPolicy) {
				pol.DegradeToTCP = false // force the rollback rung
				pol.MaxAttempts = 2
			},
		},
	}
}

// sparePool is a minimal ninja.SparePool over a fixed node list. (The
// full implementation lives in internal/scheduler, which this package
// cannot import without a test-build cycle.)
type sparePool struct{ nodes []*hw.Node }

func (s *sparePool) Acquire(exclude []*hw.Node) *hw.Node {
	for i, n := range s.nodes {
		if n.Failed() {
			continue
		}
		excluded := false
		for _, x := range exclude {
			if x == n {
				excluded = true
			}
		}
		if excluded {
			continue
		}
		s.nodes = append(s.nodes[:i], s.nodes[i+1:]...)
		return n
	}
	return nil
}

// runFaultScenario executes one matrix row on a fresh 2-VM deployment.
func runFaultScenario(sc FaultScenario) (FaultRow, error) {
	row := FaultRow{Scenario: sc.Name, Phase: sc.Phase, Monotone: true}
	d, err := Deploy(DeployConfig{
		NVMs: 2, RanksPerVM: 1, GuestMemGB: 8,
		AttachHCA: true, DstHasIB: sc.DstIB, ContinueLikeRestart: true,
	})
	if err != nil {
		return row, err
	}
	for _, vm := range d.VMs {
		if _, err := vm.Memory().AddRegion("data", 2*hw.GB, 0, 0); err != nil {
			return row, err
		}
	}

	pol := ninja.DefaultRetryPolicy()
	if sc.Tune != nil {
		sc.Tune(&pol)
	}
	opts := ninja.Options{Retry: &pol}
	dsts := d.DstNodes(len(d.VMs))
	if sc.Spares > 0 {
		opts.Spares = &sparePool{nodes: d.Dst.Nodes[len(d.VMs) : len(d.VMs)+sc.Spares]}
	}
	orch := ninja.New(d.Job, opts)

	// Shift the plan's trigger-relative times to absolute simulated time
	// and arm it, logging firings into the orchestrator's event trail.
	trigger := d.Epoch + 5*sim.Second
	plan := faults.Plan{Name: sc.Name, Seed: 1}
	for _, s := range sc.Specs {
		s.At += trigger
		plan.Specs = append(plan.Specs, s)
	}
	inj := faults.NewInjector(d.K, plan, faults.Env{
		VMs: d.VMs, Nodes: dsts, Store: d.NFS,
		Log: func(kind, subject, detail string) {
			orch.Events().Record(metrics.EventFaultInjected, kind, subject, detail)
		},
	})
	if err := inj.Arm(); err != nil {
		return row, err
	}

	// The iterating job: rank 0's iteration counter is the monotonicity
	// witness — every index must be seen exactly once, in order.
	const iters = 1600
	lastIter, lastAt := -1, sim.Time(-1)
	app := d.Job.Launch("app", func(p *sim.Proc, rk *mpi.Rank) {
		for i := 0; i < iters; i++ {
			rk.FTProbe(p)
			rk.Compute(p, 0.2)
			if rk.RankID() == 0 {
				if i != lastIter+1 || p.Now() < lastAt {
					row.Monotone = false
				}
				lastIter, lastAt = i, p.Now()
				row.Iters = i + 1
			}
		}
	})

	var rep ninja.Report
	var migErr error
	d.K.Go("driver", func(p *sim.Proc) {
		if trigger > p.Now() {
			p.Sleep(trigger - p.Now())
		}
		if sc.Mode == ninja.Cold {
			rep, migErr = orch.ColdMigrate(p, dsts)
		} else {
			rep, migErr = orch.Migrate(p, dsts)
		}
	})
	d.K.Run()

	if !app.Done() {
		return row, fmt.Errorf("experiments: %s: app incomplete (job wedged)", sc.Name)
	}
	row.Outcome = rep.Outcome
	row.Err = migErr
	row.Retries = rep.Retries
	row.SparesUsed = rep.SparesUsed
	row.DegradedVMs = rep.DegradedToTCP
	row.FaultsFired = inj.Fired()
	row.Total = rep.Total
	if migErr != nil && rep.Outcome != ninja.OutcomeRolledBack {
		return row, fmt.Errorf("experiments: %s: unexpected error: %w", sc.Name, migErr)
	}
	return row, nil
}

// ExtFaultMatrix runs every fault scenario and returns the outcome matrix.
func ExtFaultMatrix() ([]FaultRow, error) {
	var rows []FaultRow
	for _, sc := range extFaultScenarios() {
		row, err := runFaultScenario(sc)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ExtFaultMatrixRender formats the phase × fault outcome matrix.
func ExtFaultMatrixRender(rows []FaultRow) *metrics.Table {
	t := metrics.NewTable("Ext. — fault injection × Ninja phase outcome matrix",
		"fault", "phase", "outcome", "retries", "spares", "degraded", "fired", "total [s]", "mpi-iters")
	for _, r := range rows {
		iters := fmt.Sprintf("%d monotone", r.Iters)
		if !r.Monotone {
			iters = fmt.Sprintf("%d NON-MONOTONE", r.Iters)
		}
		t.AddRow(r.Scenario, r.Phase, string(r.Outcome),
			r.Retries, r.SparesUsed, r.DegradedVMs, r.FaultsFired, r.Total, iters)
	}
	return t
}
