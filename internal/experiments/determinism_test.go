package experiments

import (
	"testing"

	"repro/internal/sim"
)

// TestExtFleetDeterminism is the backend acceptance gate: the full 7-row
// ext-fleet matrix (every directive × policy × fault combination) must
// render byte-identical across the heap and timer-wheel kernel backends,
// and across two consecutive runs on the same backend — under both
// sequencing modes. Any divergence in event ordering, PS completion
// order, pooled-event reuse, or sequencer tie-breaking shows up here as
// a table diff.
// TestExtRDMADeterminism is the RDMA-native acceptance row: the six-rung
// ext-rdma ladder (clean replay, each injected demotion, the preflight
// demotion and the hotplug baseline) must render byte-identical across the
// heap and timer-wheel backends and across consecutive runs. With the mode
// off the rows ARE the hotplug baseline, so this also pins the zero-fault
// observables the bench baseline guards.
func TestExtRDMADeterminism(t *testing.T) {
	render := func(b sim.Backend) string {
		rows, err := ExtRDMAWith(b)
		if err != nil {
			t.Fatalf("%s ladder: %v", b, err)
		}
		if len(rows) != len(extRDMAScenarios()) {
			t.Fatalf("%s ladder: %d rows", b, len(rows))
		}
		return ExtRDMARender(rows).String()
	}
	heap1 := render(sim.BackendHeap)
	heap2 := render(sim.BackendHeap)
	if heap1 != heap2 {
		t.Fatalf("heap backend not reproducible across runs:\n--- run 1:\n%s\n--- run 2:\n%s", heap1, heap2)
	}
	wheel1 := render(sim.BackendWheel)
	wheel2 := render(sim.BackendWheel)
	if wheel1 != wheel2 {
		t.Fatalf("wheel backend not reproducible across runs:\n--- run 1:\n%s\n--- run 2:\n%s", wheel1, wheel2)
	}
	if heap1 != wheel1 {
		t.Fatalf("backends disagree:\n--- heap:\n%s\n--- wheel:\n%s", heap1, wheel1)
	}
}

func TestExtFleetDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run fleet matrix is not short")
	}
	for _, seqMode := range []string{"", "maxflow"} {
		render := func(b sim.Backend) string {
			cfg := FleetConfig{Jobs: 3, DrainCap: 2, Backend: b, SeqMode: seqMode}
			rows, err := ExtFleetMatrix(cfg)
			if err != nil {
				t.Fatalf("%s matrix: %v", b, err)
			}
			if len(rows) != len(ExtFleetScenarios(cfg.DrainCap, cfg.SeqMode)) {
				t.Fatalf("%s matrix: %d rows", b, len(rows))
			}
			return ExtFleetRender(rows).String()
		}
		heap1 := render(sim.BackendHeap)
		heap2 := render(sim.BackendHeap)
		if heap1 != heap2 {
			t.Fatalf("seq %q: heap backend not reproducible across runs:\n--- run 1:\n%s\n--- run 2:\n%s", seqMode, heap1, heap2)
		}
		wheel1 := render(sim.BackendWheel)
		wheel2 := render(sim.BackendWheel)
		if wheel1 != wheel2 {
			t.Fatalf("seq %q: wheel backend not reproducible across runs:\n--- run 1:\n%s\n--- run 2:\n%s", seqMode, wheel1, wheel2)
		}
		if heap1 != wheel1 {
			t.Fatalf("seq %q: backends disagree:\n--- heap:\n%s\n--- wheel:\n%s", seqMode, heap1, wheel1)
		}
	}
}
