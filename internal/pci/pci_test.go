package pci

import (
	"testing"

	"repro/internal/sim"
)

type recordingListener struct {
	added    []string
	removed  []string
	probe    sim.Time
	unbind   sim.Time
	lastBus  *Bus
	lastSlot string
}

func (r *recordingListener) DeviceAdded(p *sim.Proc, b *Bus, slot string, fn *Function) {
	b.SleepScaled(p, r.probe)
	r.added = append(r.added, fn.Name)
	r.lastBus, r.lastSlot = b, slot
}

func (r *recordingListener) DeviceRemoveRequested(p *sim.Proc, b *Bus, slot string, fn *Function) {
	b.SleepScaled(p, r.unbind)
	r.removed = append(r.removed, fn.Name)
}

func TestAddRemoveLifecycle(t *testing.T) {
	k := sim.NewKernel()
	b := NewBus(k, "bus0")
	l := &recordingListener{probe: sim.Second, unbind: 2 * sim.Second}
	b.SetListener(l)
	fn := &Function{Name: "vf0", Class: ClassIBHCA, HostID: "04:00.0",
		HostAttach: 500 * sim.Millisecond, HostDetach: 300 * sim.Millisecond}

	var addedAt, removedAt sim.Time
	addFut, err := b.Add("slot1", fn)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	k.Go("watch", func(p *sim.Proc) {
		addFut.Wait(p)
		addedAt = p.Now()
		rmFut, err := b.Remove("slot1")
		if err != nil {
			t.Errorf("Remove: %v", err)
			return
		}
		got := rmFut.Wait(p)
		removedAt = p.Now()
		if got != fn {
			t.Errorf("Remove returned %v, want the added function", got)
		}
	})
	k.Run()
	if addedAt != 1500*sim.Millisecond { // 0.5s host + 1s probe
		t.Fatalf("addedAt = %v, want 1.5s", addedAt)
	}
	if removedAt != addedAt+2300*sim.Millisecond { // 2s unbind + 0.3s host
		t.Fatalf("removedAt = %v, want %v", removedAt, addedAt+2300*sim.Millisecond)
	}
	if b.At("slot1") != nil {
		t.Fatal("slot still occupied after remove")
	}
	if len(l.added) != 1 || len(l.removed) != 1 {
		t.Fatalf("listener calls: added=%v removed=%v", l.added, l.removed)
	}
}

func TestAddOccupiedSlot(t *testing.T) {
	k := sim.NewKernel()
	b := NewBus(k, "bus0")
	fn := &Function{Name: "a"}
	if _, err := b.Add("s", fn); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if _, err := b.Add("s", &Function{Name: "b"}); err != ErrSlotOccupied {
		t.Fatalf("err = %v, want ErrSlotOccupied", err)
	}
}

func TestRemoveEmptySlot(t *testing.T) {
	k := sim.NewKernel()
	b := NewBus(k, "bus0")
	if _, err := b.Remove("nope"); err != ErrSlotEmpty {
		t.Fatalf("err = %v, want ErrSlotEmpty", err)
	}
}

func TestConcurrentOpOnSlotBusy(t *testing.T) {
	k := sim.NewKernel()
	b := NewBus(k, "bus0")
	fn := &Function{Name: "a", HostAttach: sim.Second}
	if _, err := b.Add("s", fn); err != nil {
		t.Fatal(err)
	}
	// The add is still in flight (it needs 1s): a second op must fail.
	if _, err := b.Add("s", fn); err != ErrBusy {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	if _, err := b.Remove("s"); err != ErrBusy {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	k.Run()
}

func TestSlowdownStretchesHotplug(t *testing.T) {
	k := sim.NewKernel()
	b := NewBus(k, "bus0")
	factor := 3.0
	b.Slowdown = func() float64 { return factor }
	l := &recordingListener{probe: sim.Second}
	b.SetListener(l)
	fn := &Function{Name: "a", HostAttach: sim.Second}
	fut, _ := b.Add("s", fn)
	var at sim.Time
	k.Go("w", func(p *sim.Proc) {
		fut.Wait(p)
		at = p.Now()
	})
	k.Run()
	if at != 6*sim.Second { // (1s + 1s) × 3
		t.Fatalf("hotplug with 3× noise took %v, want 6s", at)
	}
}

func TestSlowdownBelowOneClamped(t *testing.T) {
	k := sim.NewKernel()
	b := NewBus(k, "bus0")
	b.Slowdown = func() float64 { return 0.1 }
	fn := &Function{Name: "a", HostAttach: sim.Second}
	fut, _ := b.Add("s", fn)
	var at sim.Time
	k.Go("w", func(p *sim.Proc) {
		fut.Wait(p)
		at = p.Now()
	})
	k.Run()
	if at != sim.Second {
		t.Fatalf("at = %v, want 1s (factor clamped to 1)", at)
	}
}

func TestFindByTag(t *testing.T) {
	k := sim.NewKernel()
	b := NewBus(k, "bus0")
	b.Add("s1", &Function{Name: "vf0"})
	b.Add("s2", &Function{Name: "vf1"})
	k.Run()
	slot, fn, ok := b.FindByTag("vf1")
	if !ok || slot != "s2" || fn.Name != "vf1" {
		t.Fatalf("FindByTag = %q,%v,%v", slot, fn, ok)
	}
	if _, _, ok := b.FindByTag("missing"); ok {
		t.Fatal("found missing tag")
	}
}

func TestSlotsSorted(t *testing.T) {
	k := sim.NewKernel()
	b := NewBus(k, "bus0")
	b.Add("zz", &Function{Name: "a"})
	b.Add("aa", &Function{Name: "b"})
	b.Add("mm", &Function{Name: "c"})
	k.Run()
	s := b.Slots()
	if len(s) != 3 || s[0] != "aa" || s[1] != "mm" || s[2] != "zz" {
		t.Fatalf("Slots = %v", s)
	}
}

func TestClassString(t *testing.T) {
	if ClassIBHCA.String() != "ib-hca" || ClassVirtioNet.String() != "virtio-net" || ClassOther.String() != "other" {
		t.Fatal("Class.String broken")
	}
}

func TestAddWithoutListener(t *testing.T) {
	k := sim.NewKernel()
	b := NewBus(k, "bus0")
	fut, err := b.Add("s", &Function{Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !fut.Done() {
		t.Fatal("add without listener never completed")
	}
}
