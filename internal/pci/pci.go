// Package pci models a guest-visible PCI bus with ACPI-style hotplug,
// the mechanism Ninja migration uses to detach a VMM-bypass device before
// a live migration and re-attach one afterwards (paper §III-B: "PCI
// hotplugging ... enables us to add and remove devices while the OS is
// running").
package pci

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Class is a coarse PCI device class used by guest drivers to bind.
type Class int

const (
	// ClassOther is any device without a modelled driver.
	ClassOther Class = iota
	// ClassIBHCA is a VMM-bypass InfiniBand host channel adapter
	// (the paper's Mellanox ConnectX, passed through or as an SR-IOV VF).
	ClassIBHCA
	// ClassVirtioNet is a para-virtualized Ethernet device.
	ClassVirtioNet
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassIBHCA:
		return "ib-hca"
	case ClassVirtioNet:
		return "virtio-net"
	default:
		return "other"
	}
}

// Function is one PCI function that can be plugged into a bus slot.
// Payload carries the underlying fabric device (*fabric.HCA, *fabric.NIC).
type Function struct {
	Name    string // e.g. "vf0" — the tag used in Ninja migration scripts
	Class   Class
	HostID  string // host PCI address, e.g. "04:00.0" (from the scheduler)
	Payload any
	// HostAttach/HostDetach are the VMM-side costs of mapping/unmapping
	// the device (VFIO, IOMMU, interrupt remapping).
	HostAttach sim.Time
	HostDetach sim.Time
}

// Listener is the guest OS side of hotplug: the acpiphp driver. Methods
// run in process context and may sleep (driver probe/unbind work). Use
// bus.SleepScaled so guest-side work is subject to the same noise scaling
// as host-side work.
type Listener interface {
	// DeviceAdded is invoked after the VMM inserts a function; it returns
	// once the guest driver has bound the device.
	DeviceAdded(p *sim.Proc, b *Bus, slot string, fn *Function)
	// DeviceRemoveRequested is invoked on an ACPI eject request; it
	// returns once the guest has released the device.
	DeviceRemoveRequested(p *sim.Proc, b *Bus, slot string, fn *Function)
}

// Errors returned by bus operations.
var (
	ErrSlotOccupied = errors.New("pci: slot occupied")
	ErrSlotEmpty    = errors.New("pci: slot empty")
	ErrBusy         = errors.New("pci: hotplug operation in progress on slot")
)

// Bus is a guest-visible PCI bus with hotplug slots.
type Bus struct {
	k        *sim.Kernel
	name     string
	slots    map[string]*Function
	busy     map[string]bool
	listener Listener
	// Slowdown, if non-nil, returns a factor (≥1) stretching hotplug work;
	// the VMM installs this to model migration noise (Fig. 6 shows
	// hotplug ≈3× slower when overlapping a live migration).
	Slowdown func() float64
}

// NewBus creates an empty bus.
func NewBus(k *sim.Kernel, name string) *Bus {
	return &Bus{
		k:     k,
		name:  name,
		slots: make(map[string]*Function),
		busy:  make(map[string]bool),
	}
}

// SetListener installs the guest's hotplug handler.
func (b *Bus) SetListener(l Listener) { b.listener = l }

// Name returns the bus name.
func (b *Bus) Name() string { return b.name }

// At returns the function in the slot, or nil.
func (b *Bus) At(slot string) *Function { return b.slots[slot] }

// Slots returns the occupied slot IDs in sorted order.
func (b *Bus) Slots() []string {
	out := make([]string, 0, len(b.slots))
	for s := range b.slots {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// FindByTag returns the first slot whose function name matches tag.
func (b *Bus) FindByTag(tag string) (slot string, fn *Function, ok bool) {
	for _, s := range b.Slots() {
		if f := b.slots[s]; f.Name == tag {
			return s, f, true
		}
	}
	return "", nil, false
}

func (b *Bus) factor() float64 {
	if b.Slowdown == nil {
		return 1
	}
	f := b.Slowdown()
	if f < 1 {
		return 1
	}
	return f
}

// SleepScaled sleeps d stretched by the bus's current slowdown factor.
// Guest drivers use it for probe/unbind work so that migration noise
// applies uniformly.
func (b *Bus) SleepScaled(p *sim.Proc, d sim.Time) {
	p.Sleep(sim.Time(float64(d) * b.factor()))
}

// Insert cold-plugs fn into the slot as part of the machine's boot
// configuration: no hotplug latency and no listener notification (the
// guest discovers the device during boot enumeration instead).
func (b *Bus) Insert(slot string, fn *Function) error {
	if b.busy[slot] {
		return ErrBusy
	}
	if _, occupied := b.slots[slot]; occupied {
		return ErrSlotOccupied
	}
	b.slots[slot] = fn
	return nil
}

// Add hot-plugs fn into the slot (the QEMU monitor's device_add). The
// returned future resolves once the guest driver has bound the device.
func (b *Bus) Add(slot string, fn *Function) (*sim.Future[struct{}], error) {
	if b.busy[slot] {
		return nil, ErrBusy
	}
	if _, occupied := b.slots[slot]; occupied {
		return nil, ErrSlotOccupied
	}
	b.busy[slot] = true
	fut := sim.NewFuture[struct{}](b.k)
	b.k.Go(fmt.Sprintf("%s/add/%s", b.name, slot), func(p *sim.Proc) {
		b.SleepScaled(p, fn.HostAttach) // VMM maps the device
		b.slots[slot] = fn
		if b.listener != nil {
			b.listener.DeviceAdded(p, b, slot, fn) // ACPI notify → driver probe
		}
		b.busy[slot] = false
		fut.Set(struct{}{})
	})
	return fut, nil
}

// Remove hot-unplugs the slot's function (device_del). The returned future
// resolves once the guest has released the device and the VMM has unmapped
// it; its value is the removed function.
func (b *Bus) Remove(slot string) (*sim.Future[*Function], error) {
	if b.busy[slot] {
		return nil, ErrBusy
	}
	fn, occupied := b.slots[slot]
	if !occupied {
		return nil, ErrSlotEmpty
	}
	b.busy[slot] = true
	fut := sim.NewFuture[*Function](b.k)
	b.k.Go(fmt.Sprintf("%s/del/%s", b.name, slot), func(p *sim.Proc) {
		if b.listener != nil {
			b.listener.DeviceRemoveRequested(p, b, slot, fn) // eject request
		}
		b.SleepScaled(p, fn.HostDetach) // VMM unmaps the device
		delete(b.slots, slot)
		b.busy[slot] = false
		fut.Set(fn)
	})
	return fut, nil
}
