// Package symvirt implements the SymVirt mechanism (§III-B): a gray-box
// rendezvous between distributed VMMs and guest applications. Guest-side
// coordinators issue SymVirt wait hypercalls that block the application;
// a host-side controller observes when every VM has entered wait, runs
// VMM operations through per-VM agents (device detach/attach, migration),
// and issues SymVirt signal to resume the guests.
package symvirt

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/vmm"
)

// Token is the value a SymVirt signal delivers to the waiting guest.
type Token int

const (
	// TokenHold instructs the guest library to re-enter wait immediately:
	// the controller script has more phases for this blocking point
	// (e.g. detach, then migrate, then attach — Fig. 4's three rounds).
	TokenHold Token = iota
	// TokenProceed releases the guest to continue past the blocking point.
	TokenProceed
)

// Coordinator is the guest-side half, one per VM. Application processes
// (MPI ranks) call Hold; once all expected processes of the VM are
// blocked, the VM is announced ready to the controller.
type Coordinator struct {
	k        *sim.Kernel
	vm       *vmm.VM
	expected int

	waiting int
	gen     int
	token   Token
	ready   *sim.Future[struct{}]
	release *sim.Cond
}

// NewCoordinator creates the coordinator for a VM expecting the given
// number of application processes to participate in each rendezvous.
func NewCoordinator(vm *vmm.VM, expected int) *Coordinator {
	if expected < 1 {
		panic("symvirt: coordinator needs at least one participant")
	}
	k := vm.Kernel()
	return &Coordinator{
		k:        k,
		vm:       vm,
		expected: expected,
		ready:    sim.NewFuture[struct{}](k),
		release:  sim.NewCond(k),
	}
}

// VM returns the coordinated VM.
func (c *Coordinator) VM() *vmm.VM { return c.vm }

// wait is one SymVirt wait hypercall: block until the next signal, and
// return the signal's token.
func (c *Coordinator) wait(p *sim.Proc) Token {
	c.waiting++
	if c.waiting == c.expected {
		c.ready.Set(struct{}{})
	}
	gen := c.gen
	for c.gen == gen {
		c.release.Wait(p)
	}
	return c.token
}

// Hold blocks the calling process at one logical blocking point, spanning
// as many controller phases as the script runs (wait → signal(hold) →
// wait → ... → signal(proceed)).
func (c *Coordinator) Hold(p *sim.Proc) {
	for c.wait(p) != TokenProceed {
	}
}

// Ready returns the future resolved when all expected processes of this
// VM are blocked in wait for the current round.
func (c *Coordinator) Ready() *sim.Future[struct{}] { return c.ready }

// signal releases all current waiters with the token and opens the next
// round.
func (c *Coordinator) signal(tok Token) error {
	if !c.ready.Done() {
		return fmt.Errorf("symvirt: signal to %s before all %d processes reached wait",
			c.vm.Name(), c.expected)
	}
	c.waiting = 0
	c.token = tok
	c.gen++
	c.ready = sim.NewFuture[struct{}](c.k)
	c.release.Broadcast()
	return nil
}

// Target couples a VM's monitor with its coordinator — one row of the
// controller's host list.
type Target struct {
	VM    *vmm.VM
	Coord *Coordinator
}

// ErrScriptOrder reports controller misuse (e.g. signal before wait_all).
var ErrScriptOrder = errors.New("symvirt: script ordering violation")

// Controller is the host-side master (the paper's Python controller). It
// spawns one agent per VM for each operation; agents talk to QEMU through
// the monitor (QMP) interface.
type Controller struct {
	k       *sim.Kernel
	targets []Target
	// ConfirmTime is the per-phase script/QMP bookkeeping cost (the
	// "confirm" slices in Fig. 4, counted into the hotplug overhead).
	ConfirmTime sim.Time
}

// NewController builds a controller over the target VMs.
func NewController(k *sim.Kernel, targets []Target, confirm sim.Time) *Controller {
	return &Controller{k: k, targets: targets, ConfirmTime: confirm}
}

// Targets returns the controlled VMs.
func (c *Controller) Targets() []Target { return c.targets }

// WaitAll blocks until every VM's processes are parked in SymVirt wait
// (the script's ctl.wait_all()).
func (c *Controller) WaitAll(p *sim.Proc) {
	for _, t := range c.targets {
		t.Coord.Ready().Wait(p)
	}
	p.Sleep(c.ConfirmTime)
}

// Signal resumes every VM with the token (ctl.signal()).
func (c *Controller) Signal(tok Token) error {
	for _, t := range c.targets {
		if err := t.Coord.signal(tok); err != nil {
			return err
		}
	}
	return nil
}

// agentFanout runs op once per target in parallel agent processes and
// blocks until all complete, collecting the first error.
func (c *Controller) agentFanout(p *sim.Proc, name string, op func(ap *sim.Proc, t Target) error) error {
	wg := sim.NewWaitGroup(c.k)
	wg.Add(len(c.targets))
	var firstErr error
	for _, t := range c.targets {
		t := t
		c.k.Go(fmt.Sprintf("symvirt-agent/%s/%s", name, t.VM.Name()), func(ap *sim.Proc) {
			if err := op(ap, t); err != nil && firstErr == nil {
				firstErr = err
			}
			wg.Done()
		})
	}
	wg.Wait(p)
	p.Sleep(c.ConfirmTime)
	return firstErr
}

// DeviceDetach hot-unplugs the tagged device from every VM (script
// ctl.device_detach(tag='vf0')). VMs without the device are skipped, so
// the same script works on Ethernet-only sources. Agents speak QMP, as in
// the paper: device_del, then wait for the DEVICE_DELETED event.
func (c *Controller) DeviceDetach(p *sim.Proc, tag string) error {
	return c.agentFanout(p, "detach", func(ap *sim.Proc, t Target) error {
		if _, _, ok := t.VM.Bus().FindByTag(tag); !ok {
			return nil
		}
		q := t.VM.QMP()
		cmd, _ := json.Marshal(vmm.QMPCommand{
			Execute:   "device_del",
			Arguments: json.RawMessage(fmt.Sprintf(`{"id":%q}`, tag)),
		})
		var resp vmm.QMPResponse
		if err := json.Unmarshal(q.Execute(cmd), &resp); err != nil {
			return err
		}
		if resp.Error != nil {
			return fmt.Errorf("symvirt: device_del on %s: %s", t.VM.Name(), resp.Error.Desc)
		}
		q.WaitEvent(ap, "DEVICE_DELETED")
		return nil
	})
}

// DeviceAttach hot-plugs the host HCA into every VM whose current node has
// one (script ctl.device_attach(host='04:00.0', tag='vf0')), via QMP.
func (c *Controller) DeviceAttach(p *sim.Proc, tag, hostID string) error {
	return c.agentFanout(p, "attach", func(ap *sim.Proc, t Target) error {
		if t.VM.Node().HCA == nil {
			return nil
		}
		if _, _, present := t.VM.Bus().FindByTag(tag); present {
			return nil // idempotent: already attached (rollback paths)
		}
		q := t.VM.QMP()
		cmd, _ := json.Marshal(vmm.QMPCommand{
			Execute:   "device_add",
			Arguments: json.RawMessage(fmt.Sprintf(`{"driver":"vfio-pci","host":%q,"id":%q}`, hostID, tag)),
		})
		var resp vmm.QMPResponse
		if err := json.Unmarshal(q.Execute(cmd), &resp); err != nil {
			return err
		}
		if resp.Error != nil {
			return fmt.Errorf("symvirt: device_add on %s: %s", t.VM.Name(), resp.Error.Desc)
		}
		q.WaitEvent(ap, "NINJA_DEVICE_ADDED")
		return nil
	})
}

// Migrate live-migrates every VM to the corresponding destination node,
// in parallel, and returns the per-VM stats in target order (script
// ctl.migration(src_hostlist, dst_hostlist)).
func (c *Controller) Migrate(p *sim.Proc, dsts []*hw.Node) ([]vmm.MigrationStats, error) {
	if len(dsts) != len(c.targets) {
		return nil, fmt.Errorf("%w: %d destinations for %d VMs", ErrScriptOrder, len(dsts), len(c.targets))
	}
	stats := make([]vmm.MigrationStats, len(c.targets))
	err := c.agentFanout(p, "migrate", func(ap *sim.Proc, t Target) error {
		idx := indexOf(c.targets, t)
		fut, err := t.VM.Monitor().Migrate(dsts[idx])
		if err != nil {
			stats[idx].Err = err
			return err
		}
		stats[idx] = fut.Wait(ap)
		return stats[idx].Err
	})
	return stats, err
}

// MigrateOne live-migrates a single target (by index) to dst — the
// orchestrator's per-VM retry primitive after a fanout partially failed.
func (c *Controller) MigrateOne(p *sim.Proc, idx int, dst *hw.Node) (vmm.MigrationStats, error) {
	if idx < 0 || idx >= len(c.targets) {
		return vmm.MigrationStats{}, fmt.Errorf("%w: migrate index %d of %d", ErrScriptOrder, idx, len(c.targets))
	}
	t := c.targets[idx]
	fut, err := t.VM.Monitor().Migrate(dst)
	if err != nil {
		return vmm.MigrationStats{}, err
	}
	st := fut.Wait(p)
	return st, st.Err
}

// MigrateTransparent live-migrates every VM RDMA-natively (QP
// checkpoint/replay; the passthrough device never detaches) to the
// corresponding destination node, in parallel. resyncLimit bounds each
// VM's destination-side QP resync (≤0 uses the VMM default). Per-VM
// replay demotions are recorded in the stats, not surfaced as errors.
func (c *Controller) MigrateTransparent(p *sim.Proc, dsts []*hw.Node, resyncLimit sim.Time) ([]vmm.MigrationStats, error) {
	if len(dsts) != len(c.targets) {
		return nil, fmt.Errorf("%w: %d destinations for %d VMs", ErrScriptOrder, len(dsts), len(c.targets))
	}
	stats := make([]vmm.MigrationStats, len(c.targets))
	err := c.agentFanout(p, "migrate-rdma", func(ap *sim.Proc, t Target) error {
		idx := indexOf(c.targets, t)
		fut, err := t.VM.Monitor().MigrateTransparent(dsts[idx], resyncLimit)
		if err != nil {
			stats[idx].Err = err
			return err
		}
		stats[idx] = fut.Wait(ap)
		return stats[idx].Err
	})
	return stats, err
}

// MigrateTransparentOne RDMA-natively migrates a single target (by index)
// to dst — the per-VM retry primitive for the transparent fan-out.
func (c *Controller) MigrateTransparentOne(p *sim.Proc, idx int, dst *hw.Node, resyncLimit sim.Time) (vmm.MigrationStats, error) {
	if idx < 0 || idx >= len(c.targets) {
		return vmm.MigrationStats{}, fmt.Errorf("%w: migrate index %d of %d", ErrScriptOrder, idx, len(c.targets))
	}
	t := c.targets[idx]
	fut, err := t.VM.Monitor().MigrateTransparent(dst, resyncLimit)
	if err != nil {
		return vmm.MigrationStats{}, err
	}
	st := fut.Wait(p)
	return st, st.Err
}

// ColdMigrate checkpoint/restarts every VM through the shared store
// (savevm on the source, loadvm on the destination) — the paper's
// proactive fault-tolerance path. Returns per-VM stats in target order.
func (c *Controller) ColdMigrate(p *sim.Proc, dsts []*hw.Node) ([]vmm.ColdStats, error) {
	if len(dsts) != len(c.targets) {
		return nil, fmt.Errorf("%w: %d destinations for %d VMs", ErrScriptOrder, len(dsts), len(c.targets))
	}
	stats := make([]vmm.ColdStats, len(c.targets))
	err := c.agentFanout(p, "cold-migrate", func(ap *sim.Proc, t Target) error {
		idx := indexOf(c.targets, t)
		st, err := c.coldMigrateTarget(ap, t, dsts[idx])
		if err != nil {
			return err
		}
		stats[idx] = st
		return nil
	})
	return stats, err
}

// ColdMigrateOne checkpoint/restarts a single target (by index) to dst.
// Like ColdMigrate it is idempotent across retries: a VM already suspended
// to image (a previous attempt failed after savevm) skips straight to the
// restore.
func (c *Controller) ColdMigrateOne(p *sim.Proc, idx int, dst *hw.Node) (vmm.ColdStats, error) {
	if idx < 0 || idx >= len(c.targets) {
		return vmm.ColdStats{}, fmt.Errorf("%w: cold-migrate index %d of %d", ErrScriptOrder, idx, len(c.targets))
	}
	return c.coldMigrateTarget(p, c.targets[idx], dst)
}

func (c *Controller) coldMigrateTarget(p *sim.Proc, t Target, dst *hw.Node) (vmm.ColdStats, error) {
	var save vmm.ColdStats
	if t.VM.Saved() {
		// Retry after a failed restore: the image is already on the store.
		save.From, save.ImageBytes = t.VM.Node().Name, t.VM.ImageBytes()
	} else {
		var err error
		save, err = t.VM.SaveImage(p)
		if err != nil {
			return save, err
		}
	}
	restore, err := t.VM.RestoreOn(p, dst)
	if err != nil {
		return save, err
	}
	return vmm.ColdStats{
		From: save.From, To: restore.To, ImageBytes: save.ImageBytes,
		SaveTime: save.SaveTime, RestoreTime: restore.RestoreTime,
	}, nil
}

func indexOf(ts []Target, t Target) int {
	for i := range ts {
		if ts[i].VM == t.VM {
			return i
		}
	}
	return -1
}
