package symvirt

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/vmm"
)

type rig struct {
	k    *sim.Kernel
	tb   *hw.Testbed
	ib   *hw.Cluster
	eth  *hw.Cluster
	vms  []*vmm.VM
	ctl  *Controller
	tgts []Target
}

func newRig(t *testing.T, nVMs, procsPerVM int) *rig {
	t.Helper()
	k := sim.NewKernel()
	tb := hw.NewTestbed(k)
	ib := tb.AddCluster("ib", nVMs, hw.AGCNodeSpec)
	ethSpec := hw.AGCNodeSpec
	ethSpec.IBBandwidth = 0
	eth := tb.AddCluster("eth", nVMs, ethSpec)
	nfs := storage.NewNFS("nfs0")
	nfs.MountAll(ib, eth)
	var vms []*vmm.VM
	var tgts []Target
	for i := 0; i < nVMs; i++ {
		vm, err := vmm.New(k, ib.Nodes[i], tb.Segment, vmm.Config{
			Name: ib.Nodes[i].Name + "/vm", VCPUs: 8, MemoryBytes: 20 * hw.GB,
		}, vmm.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		vm.SetStorage(nfs)
		if err := vm.AttachBootHCA(); err != nil {
			t.Fatal(err)
		}
		vms = append(vms, vm)
		tgts = append(tgts, Target{VM: vm, Coord: NewCoordinator(vm, procsPerVM)})
	}
	k.RunUntil(fabric.DefaultIBTrainingTime + sim.Second)
	ctl := NewController(k, tgts, 40*sim.Millisecond)
	return &rig{k: k, tb: tb, ib: ib, eth: eth, vms: vms, ctl: ctl, tgts: tgts}
}

func TestWaitAllBlocksUntilAllProcsWait(t *testing.T) {
	r := newRig(t, 2, 2)
	epoch := r.k.Now()
	var waitAllDone sim.Time
	// 4 guest procs enter Hold at staggered times; controller WaitAll
	// must return only after the last (t=+3s).
	for vi, tgt := range r.tgts {
		for pi := 0; pi < 2; pi++ {
			tgt := tgt
			delay := sim.Time(vi*2+pi) * sim.Second
			r.k.Go("guest", func(p *sim.Proc) {
				p.Sleep(delay)
				tgt.Coord.Hold(p)
			})
		}
	}
	r.k.Go("ctl", func(p *sim.Proc) {
		r.ctl.WaitAll(p)
		waitAllDone = p.Now() - epoch
		r.ctl.Signal(TokenProceed)
	})
	r.k.Run()
	if waitAllDone < 3*sim.Second {
		t.Fatalf("WaitAll returned at %v, before all procs were waiting", waitAllDone)
	}
}

func TestSignalBeforeReadyErrors(t *testing.T) {
	r := newRig(t, 1, 1)
	if err := r.ctl.Signal(TokenProceed); err == nil {
		t.Fatal("expected script-order error")
	}
}

func TestHoldSpansMultipleRounds(t *testing.T) {
	// TokenHold keeps the guest in the blocking point; TokenProceed
	// releases it. This drives Fig. 4's three-phase script.
	r := newRig(t, 1, 1)
	epoch := r.k.Now()
	var released sim.Time
	r.k.Go("guest", func(p *sim.Proc) {
		r.tgts[0].Coord.Hold(p)
		released = p.Now() - epoch
	})
	r.k.Go("ctl", func(p *sim.Proc) {
		for round := 0; round < 3; round++ {
			r.ctl.WaitAll(p)
			p.Sleep(sim.Second) // a VMM operation
			tok := TokenHold
			if round == 2 {
				tok = TokenProceed
			}
			if err := r.ctl.Signal(tok); err != nil {
				t.Errorf("signal round %d: %v", round, err)
			}
		}
	})
	r.k.Run()
	if released < 3*sim.Second {
		t.Fatalf("guest released at %v, want after 3 held rounds", released)
	}
}

func TestDeviceDetachAttachFanout(t *testing.T) {
	r := newRig(t, 2, 1)
	var err1, err2 error
	r.k.Go("ctl", func(p *sim.Proc) {
		err1 = r.ctl.DeviceDetach(p, "vf0")
		for _, vm := range r.vms {
			if vm.Monitor().HasPassthrough() {
				t.Errorf("%s still has passthrough after fanout detach", vm.Name())
			}
		}
		err2 = r.ctl.DeviceAttach(p, "vf0", "04:00.0")
		for _, vm := range r.vms {
			if !vm.Monitor().HasPassthrough() {
				t.Errorf("%s missing passthrough after fanout attach", vm.Name())
			}
		}
	})
	r.k.Run()
	if err1 != nil || err2 != nil {
		t.Fatalf("detach err=%v attach err=%v", err1, err2)
	}
}

func TestDetachSkipsVMsWithoutDevice(t *testing.T) {
	r := newRig(t, 2, 1)
	// Manually detach VM 0 first, then the fanout must still succeed.
	r.k.Go("ctl", func(p *sim.Proc) {
		fut, err := r.vms[0].Monitor().DeviceDel("vf0")
		if err != nil {
			t.Errorf("pre-detach: %v", err)
			return
		}
		fut.Wait(p)
		if err := r.ctl.DeviceDetach(p, "vf0"); err != nil {
			t.Errorf("fanout detach with missing device: %v", err)
		}
	})
	r.k.Run()
}

func TestAttachSkipsNodesWithoutHCA(t *testing.T) {
	r := newRig(t, 1, 1)
	// Move the VM to an Ethernet node first (detach + migrate).
	r.k.Go("ctl", func(p *sim.Proc) {
		fut, _ := r.vms[0].Monitor().DeviceDel("vf0")
		fut.Wait(p)
		mfut, err := r.vms[0].Migrate(r.eth.Nodes[0])
		if err != nil {
			t.Errorf("migrate: %v", err)
			return
		}
		mfut.Wait(p)
		if err := r.ctl.DeviceAttach(p, "vf0", "04:00.0"); err != nil {
			t.Errorf("attach on HCA-less node should be a no-op, got %v", err)
		}
		if r.vms[0].Monitor().HasPassthrough() {
			t.Error("passthrough appeared on an HCA-less node")
		}
	})
	r.k.Run()
}

func TestParallelMigrationFanout(t *testing.T) {
	r := newRig(t, 2, 1)
	epoch := r.k.Now()
	var done sim.Time
	r.k.Go("ctl", func(p *sim.Proc) {
		if err := r.ctl.DeviceDetach(p, "vf0"); err != nil {
			t.Errorf("detach: %v", err)
			return
		}
		start := p.Now()
		stats, err := r.ctl.Migrate(p, []*hw.Node{r.eth.Nodes[0], r.eth.Nodes[1]})
		if err != nil {
			t.Errorf("migrate: %v", err)
			return
		}
		done = p.Now() - start
		if len(stats) != 2 {
			t.Errorf("stats for %d VMs", len(stats))
		}
		for i, s := range stats {
			if s.Duration <= 0 {
				t.Errorf("VM %d migration duration %v", i, s.Duration)
			}
		}
	})
	r.k.Run()
	_ = epoch
	// Two disjoint node pairs migrate concurrently: wall time ≈ one
	// migration (scan-dominated ≈32s), not two.
	if done > 45*sim.Second {
		t.Fatalf("parallel migrations took %v — serialized?", done)
	}
	for i, vm := range r.vms {
		if vm.Node() != r.eth.Nodes[i] {
			t.Fatalf("VM %d on %s", i, vm.Node().Name)
		}
	}
}

func TestMigrateDestinationCountMismatch(t *testing.T) {
	r := newRig(t, 2, 1)
	r.k.Go("ctl", func(p *sim.Proc) {
		if _, err := r.ctl.Migrate(p, []*hw.Node{r.eth.Nodes[0]}); err == nil {
			t.Error("expected destination-count error")
		}
	})
	r.k.Run()
}

func TestColdMigrateFanout(t *testing.T) {
	r := newRig(t, 2, 1)
	// Cold migration needs the HCAs detached first (like live migration).
	r.k.Go("ctl", func(p *sim.Proc) {
		if err := r.ctl.DeviceDetach(p, "vf0"); err != nil {
			t.Errorf("detach: %v", err)
			return
		}
		stats, err := r.ctl.ColdMigrate(p, []*hw.Node{r.eth.Nodes[0], r.eth.Nodes[1]})
		if err != nil {
			t.Errorf("cold migrate: %v", err)
			return
		}
		if len(stats) != 2 {
			t.Errorf("stats for %d VMs", len(stats))
		}
		for i, s := range stats {
			if s.SaveTime <= 0 || s.RestoreTime <= 0 || s.ImageBytes <= 0 {
				t.Errorf("VM %d cold stats incomplete: %+v", i, s)
			}
		}
	})
	r.k.Run()
	for i, vm := range r.vms {
		if vm.Node() != r.eth.Nodes[i] {
			t.Fatalf("VM %d on %s", i, vm.Node().Name)
		}
		if vm.State().String() != "running" {
			t.Fatalf("VM %d not running after restore", i)
		}
	}
}

func TestTargetAccessors(t *testing.T) {
	r := newRig(t, 1, 1)
	if r.tgts[0].Coord.VM() != r.vms[0] {
		t.Fatal("Coordinator.VM broken")
	}
	if len(r.ctl.Targets()) != 1 {
		t.Fatal("Controller.Targets broken")
	}
}
