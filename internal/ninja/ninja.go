// Package ninja implements the paper's primary contribution: an
// interconnect-transparent migration that simultaneously moves multiple
// co-located VMs between data centers with different interconnects, by
// cooperation between the VMM (via SymVirt) and the Open MPI runtime on
// the guest (via the CRCP/CRS checkpoint framework). MPI processes keep
// running across the move; only the transport underneath them changes.
package ninja

import (
	"errors"
	"fmt"

	"repro/internal/crs"
	"repro/internal/hw"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/symvirt"
	"repro/internal/vmm"
)

// DeviceTag is the passthrough-device tag Ninja scripts operate on
// (the 'vf0' of Fig. 5).
const DeviceTag = "vf0"

// DefaultHostPCIID is the host PCI address of the HCA on the paper's
// nodes, provided by the cloud scheduler.
const DefaultHostPCIID = "04:00.0"

// Report is one Ninja migration's overhead breakdown — the categories of
// Figs. 4, 6 and 7: coordination, hotplug (detach + attach + confirm),
// migration, and link-up.
type Report struct {
	// Coordination is the CRCP quiesce span: from the trigger until every
	// VM's processes are parked in SymVirt wait.
	Coordination sim.Time
	// Detach is the device_del fan-out span.
	Detach sim.Time
	// Migration is the parallel live-migration span.
	Migration sim.Time
	// Attach is the device_add fan-out span.
	Attach sim.Time
	// Linkup is the span from the final signal until the MPI job resumed
	// (dominated by InfiniBand port training when the destination has an
	// HCA; ≈0 on Ethernet destinations).
	Linkup sim.Time
	// Total is trigger-to-resume.
	Total sim.Time
	// VMStats are the per-VM live-migration statistics (live mode).
	VMStats []vmm.MigrationStats
	// ColdStats are the per-VM save/restore statistics (cold mode).
	ColdStats []vmm.ColdStats
}

// Hotplug is the paper's "hotplug" category: detach + re-attach + confirm.
func (r Report) Hotplug() sim.Time { return r.Detach + r.Attach }

// Options tune an orchestrator.
type Options struct {
	// HostPCIID is what the scheduler reports as the HCA's host address.
	HostPCIID string
	// ConfirmTime overrides the per-phase script confirmation cost
	// (defaults to the VMM parameter).
	ConfirmTime sim.Time
}

// Orchestrator wires an MPI job to SymVirt coordinators and a controller,
// and runs Ninja migration scripts against them.
type Orchestrator struct {
	k    *sim.Kernel
	job  *mpi.Job
	ctl  *symvirt.Controller
	tgts []symvirt.Target
	opts Options
}

// ErrShape reports a mismatch between destinations and VMs.
var ErrShape = errors.New("ninja: destination list does not match VM list")

// New builds an orchestrator over the job: one SymVirt coordinator per VM
// (expecting ranksPerVM participants) and SELF CRS callbacks on every rank
// that funnel into the coordinator — the libsymvirt.so LD_PRELOAD of the
// paper, installed without modifying the MPI library or the application.
func New(job *mpi.Job, opts Options) *Orchestrator {
	k := job.Kernel()
	if opts.HostPCIID == "" {
		opts.HostPCIID = DefaultHostPCIID
	}
	o := &Orchestrator{k: k, job: job, opts: opts}

	coordByVM := make(map[*vmm.VM]*symvirt.Coordinator)
	for _, vm := range job.VMs() {
		c := symvirt.NewCoordinator(vm, job.RanksPerVM())
		coordByVM[vm] = c
		o.tgts = append(o.tgts, symvirt.Target{VM: vm, Coord: c})
	}
	for _, r := range job.Ranks() {
		r := r
		coord := coordByVM[r.VM()]
		r.SetCRS(crs.NewSELF(crs.Callbacks{
			// Wait #1: the detach window.
			Checkpoint: func(p *sim.Proc) { coord.Hold(p) },
			// Wait #2..n: migration and re-attach windows, then confirm
			// link-up before the runtime reconstructs BTLs.
			Continue: func(p *sim.Proc) {
				coord.Hold(p)
				if _, ok := r.VM().Guest().IBDevice(); ok {
					if err := r.VM().Guest().WaitIBLinkup(p); err != nil {
						panic(fmt.Sprintf("ninja: linkup confirm on %s: %v", r.VM().Name(), err))
					}
				}
			},
		}))
	}
	confirm := opts.ConfirmTime
	if confirm <= 0 {
		confirm = job.VMs()[0].Params().ConfirmTime
	}
	o.ctl = symvirt.NewController(k, o.tgts, confirm)
	return o
}

// Job returns the orchestrated MPI job.
func (o *Orchestrator) Job() *mpi.Job { return o.job }

// Controller returns the SymVirt controller (for custom scripts).
func (o *Orchestrator) Controller() *symvirt.Controller { return o.ctl }

// Targets returns the VM/coordinator pairs.
func (o *Orchestrator) Targets() []symvirt.Target { return o.tgts }

// Migrate runs the full Ninja migration script against destination nodes
// (one per VM, in job VM order):
//
//	ckpt request → wait_all → device_detach → signal
//	            → wait_all → migration     → signal/hold
//	            → [wait_all → device_attach] → signal
//	            → link-up confirm → BTL reconstruction → resume
//
// dsts[i] == current node performs a self-migration for VM i. The detach
// and attach phases self-skip on VMs/nodes without HCAs, so the same
// script implements fallback (IB→Eth), recovery (Eth→IB), and homogeneous
// (IB→IB, Eth→Eth) moves — interconnect transparency.
func (o *Orchestrator) Migrate(p *sim.Proc, dsts []*hw.Node) (Report, error) {
	return o.MigratePolicy(p, dsts, AttachAuto)
}

// AttachPolicy controls the re-attach phase of a Ninja migration.
type AttachPolicy int

const (
	// AttachAuto re-attaches on destinations that have an HCA.
	AttachAuto AttachPolicy = iota
	// AttachNever skips the re-attach phase: the VM runs on TCP even if
	// the destination has InfiniBand. Table II's "→ Ethernet" settings
	// use this on the HCA-equipped testbed.
	AttachNever
)

// Mode selects how VM state crosses to the destination.
type Mode int

const (
	// Live uses precopy live migration over the management network.
	Live Mode = iota
	// Cold suspends each VM to a qcow2 snapshot on the shared store and
	// restores it on the destination — the paper's proactive
	// fault-tolerance path (checkpointed images, §II-A). Trades wire
	// bandwidth for (shared) storage bandwidth and works even when the
	// source is about to disappear.
	Cold
)

// ColdMigrate runs the Ninja script with checkpoint/restart transfer
// instead of live migration.
func (o *Orchestrator) ColdMigrate(p *sim.Proc, dsts []*hw.Node) (Report, error) {
	return o.run(p, dsts, AttachAuto, Cold)
}

// MigratePolicy is Migrate with an explicit re-attach policy.
func (o *Orchestrator) MigratePolicy(p *sim.Proc, dsts []*hw.Node, policy AttachPolicy) (Report, error) {
	return o.run(p, dsts, policy, Live)
}

func (o *Orchestrator) run(p *sim.Proc, dsts []*hw.Node, policy AttachPolicy, mode Mode) (Report, error) {
	var rep Report
	if len(dsts) != len(o.tgts) {
		return rep, fmt.Errorf("%w: %d destinations, %d VMs", ErrShape, len(dsts), len(o.tgts))
	}
	start := p.Now()

	// Trigger: the cloud scheduler asks the MPI runtime to checkpoint.
	ckptDone, err := o.job.RequestCheckpoint()
	if err != nil {
		return rep, err
	}

	// Phase 0 — coordination: all processes quiesce into SymVirt wait.
	o.ctl.WaitAll(p)
	rep.Coordination = p.Now() - start

	// Cross-node migrations run under migration noise for the rest of
	// the sequence (hotplug ≈3× slower; Fig. 6 vs Table II).
	cross := false
	for i, t := range o.tgts {
		if dsts[i] != t.VM.Node() {
			cross = true
		}
	}
	if cross {
		for _, t := range o.tgts {
			t.VM.SetHotplugNoise(true)
		}
		defer func() {
			for _, t := range o.tgts {
				t.VM.SetHotplugNoise(false)
			}
		}()
	}

	// abort recovers from a mid-script failure: the application is parked
	// in SymVirt wait, so we must restore a working configuration —
	// re-attach devices wherever the VM currently sits on an HCA node —
	// and release the guests before surfacing the error. Without this, a
	// failed migration would leave the whole MPI job frozen forever.
	abort := func(stage string, cause error) (Report, error) {
		_ = o.ctl.DeviceAttach(p, DeviceTag, o.opts.HostPCIID) // best effort, idempotent
		_ = o.ctl.Signal(symvirt.TokenProceed)
		ckptDone.Wait(p)
		rep.Total = p.Now() - start
		return rep, fmt.Errorf("ninja: %s: %w (rolled back; job resumed in place)", stage, cause)
	}

	// Phase 1 — detach VMM-bypass devices.
	mark := p.Now()
	if err := o.ctl.DeviceDetach(p, DeviceTag); err != nil {
		return abort("detach", err)
	}
	rep.Detach = p.Now() - mark
	// TokenProceed ends the checkpoint callback; the guests immediately
	// re-enter SymVirt wait from the continue callback.
	if err := o.ctl.Signal(symvirt.TokenProceed); err != nil {
		return rep, err
	}

	// Phase 2 — parallel live migration.
	o.ctl.WaitAll(p)
	mark = p.Now()
	needAttach := false
	if policy == AttachAuto {
		for _, d := range dsts {
			if d.HCA != nil {
				needAttach = true
			}
		}
	}
	switch mode {
	case Cold:
		stats, err := o.ctl.ColdMigrate(p, dsts)
		if err != nil {
			return abort("cold migration", err)
		}
		rep.ColdStats = stats
	default:
		stats, err := o.ctl.Migrate(p, dsts)
		if err != nil {
			return abort("migration", err)
		}
		rep.VMStats = stats
	}
	rep.Migration = p.Now() - mark

	// Phase 3 — re-attach on HCA-equipped destinations.
	if needAttach {
		if err := o.ctl.Signal(symvirt.TokenHold); err != nil {
			return rep, err
		}
		o.ctl.WaitAll(p)
		mark = p.Now()
		if err := o.ctl.DeviceAttach(p, DeviceTag, o.opts.HostPCIID); err != nil {
			return abort("attach", err)
		}
		rep.Attach = p.Now() - mark
	}

	// Release the guests: link-up confirmation + BTL reconstruction.
	mark = p.Now()
	if err := o.ctl.Signal(symvirt.TokenProceed); err != nil {
		return rep, err
	}
	ckptDone.Wait(p)
	rep.Linkup = p.Now() - mark
	rep.Total = p.Now() - start
	return rep, nil
}

// SelfMigrate runs the script with every VM migrating to its own node —
// the Table II methodology for isolating hotplug and link-up costs.
func (o *Orchestrator) SelfMigrate(p *sim.Proc) (Report, error) {
	dsts := make([]*hw.Node, len(o.tgts))
	for i, t := range o.tgts {
		dsts[i] = t.VM.Node()
	}
	return o.Migrate(p, dsts)
}
