// Package ninja implements the paper's primary contribution: an
// interconnect-transparent migration that simultaneously moves multiple
// co-located VMs between data centers with different interconnects, by
// cooperation between the VMM (via SymVirt) and the Open MPI runtime on
// the guest (via the CRCP/CRS checkpoint framework). MPI processes keep
// running across the move; only the transport underneath them changes.
package ninja

import (
	"errors"
	"fmt"

	"repro/internal/crs"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/symvirt"
	"repro/internal/vmm"
)

// DeviceTag is the passthrough-device tag Ninja scripts operate on
// (the 'vf0' of Fig. 5).
const DeviceTag = "vf0"

// DefaultHostPCIID is the host PCI address of the HCA on the paper's
// nodes, provided by the cloud scheduler.
const DefaultHostPCIID = "04:00.0"

// Outcome summarizes how a Ninja migration concluded.
type Outcome string

const (
	// OutcomeClean: no fault touched the run.
	OutcomeClean Outcome = "clean"
	// OutcomeRetriedOK: at least one phase or VM operation failed and a
	// retry (possibly against a spare node) completed the move.
	OutcomeRetriedOK Outcome = "retried-ok"
	// OutcomeDegradedTCP: the move completed but one or more VMs gave up
	// on InfiniBand and continue over the tcp BTL.
	OutcomeDegradedTCP Outcome = "degraded-to-tcp"
	// OutcomeRolledBack: the script aborted and the job resumed on its
	// original placement.
	OutcomeRolledBack Outcome = "rolled-back-in-place"
)

// RungMode names the degradation-ladder rung a run terminated on. The
// ladder is rdma-native → hotplug → TCP → rollback-in-place: a clean
// RDMA-native run replays QP state with no hotplug and no link training; a
// failed replay or preflight falls back to the classic hotplug script;
// failed re-attach/link-up degrades to the tcp BTL; an unrecoverable
// script failure rolls the job back where it was.
type RungMode string

const (
	// ModeRDMANative: QP checkpoint/replay carried the transport across;
	// no detach, no hotplug, no link training.
	ModeRDMANative RungMode = "rdma-native"
	// ModeHotplug: the classic detach → migrate → attach → link-up script
	// (or an RDMA-native run whose replay demoted to it).
	ModeHotplug RungMode = "hotplug"
	// ModeTCP: the job ended the run on the tcp BTL (degraded, attach
	// skipped, or an Ethernet destination).
	ModeTCP RungMode = "tcp"
	// ModeRollback: the run aborted and the job resumed in place.
	ModeRollback RungMode = "rollback"
)

// Report is one Ninja migration's overhead breakdown — the categories of
// Figs. 4, 6 and 7: coordination, hotplug (detach + attach + confirm),
// migration, and link-up — plus the robustness outcome of the run.
type Report struct {
	// Coordination is the CRCP quiesce span: from the trigger until every
	// VM's processes are parked in SymVirt wait.
	Coordination sim.Time
	// Detach is the device_del fan-out span.
	Detach sim.Time
	// Migration is the parallel live-migration span.
	Migration sim.Time
	// Attach is the device_add fan-out span.
	Attach sim.Time
	// Linkup is the span from the final signal until the MPI job resumed
	// (dominated by InfiniBand port training when the destination has an
	// HCA; ≈0 on Ethernet destinations).
	Linkup sim.Time
	// Total is trigger-to-resume.
	Total sim.Time
	// VMStats are the per-VM live-migration statistics (live mode).
	VMStats []vmm.MigrationStats
	// ColdStats are the per-VM save/restore statistics (cold mode).
	ColdStats []vmm.ColdStats

	// Outcome classifies the run (clean / retried-ok / degraded-to-tcp /
	// rolled-back-in-place).
	Outcome Outcome
	// Mode is the degradation-ladder rung the run terminated on
	// (rdma-native / hotplug / tcp / rollback).
	Mode RungMode
	// RDMADemoted counts VMs whose QP replay failed and fell back to the
	// hotplug rung (RDMA-native runs only).
	RDMADemoted int
	// Retries counts successful re-attempts (phases and per-VM ops).
	Retries int
	// SparesUsed counts destinations replaced from the spare pool.
	SparesUsed int
	// DegradedToTCP counts VMs that abandoned InfiniBand this run.
	DegradedToTCP int
	// Events is the orchestration event trail for this run (faults seen,
	// timeouts, retries, degradations, rollback).
	Events []metrics.Event
}

// Hotplug is the paper's "hotplug" category: detach + re-attach + confirm.
func (r Report) Hotplug() sim.Time { return r.Detach + r.Attach }

// Options tune an orchestrator.
type Options struct {
	// HostPCIID is what the scheduler reports as the HCA's host address.
	HostPCIID string
	// ConfirmTime overrides the per-phase script confirmation cost
	// (defaults to the VMM parameter).
	ConfirmTime sim.Time
	// Retry bounds phases in simulated time and enables retries and
	// graceful degradation. nil reproduces the original fail-fast script:
	// any phase error rolls the job back in place immediately.
	Retry *RetryPolicy
	// Spares supplies replacement destinations when a planned destination
	// node fails mid-migration (typically scheduler.NewSpares).
	Spares SparePool
}

// Orchestrator wires an MPI job to SymVirt coordinators and a controller,
// and runs Ninja migration scripts against them.
type Orchestrator struct {
	k    *sim.Kernel
	job  *mpi.Job
	ctl  *symvirt.Controller
	tgts []symvirt.Target
	opts Options

	events *metrics.EventLog
	// Per-run counters, reset at the top of run().
	retries    int
	sparesUsed int
	degraded   int
}

// ErrShape reports a mismatch between destinations and VMs.
var ErrShape = errors.New("ninja: destination list does not match VM list")

// New builds an orchestrator over the job: one SymVirt coordinator per VM
// (expecting ranksPerVM participants) and SELF CRS callbacks on every rank
// that funnel into the coordinator — the libsymvirt.so LD_PRELOAD of the
// paper, installed without modifying the MPI library or the application.
func New(job *mpi.Job, opts Options) *Orchestrator {
	k := job.Kernel()
	if opts.HostPCIID == "" {
		opts.HostPCIID = DefaultHostPCIID
	}
	o := &Orchestrator{k: k, job: job, opts: opts, events: metrics.NewEventLog(k.Now)}

	coordByVM := make(map[*vmm.VM]*symvirt.Coordinator)
	for _, vm := range job.VMs() {
		c := symvirt.NewCoordinator(vm, job.RanksPerVM())
		coordByVM[vm] = c
		o.tgts = append(o.tgts, symvirt.Target{VM: vm, Coord: c})
	}
	for _, r := range job.Ranks() {
		r := r
		coord := coordByVM[r.VM()]
		r.SetCRS(crs.NewSELF(crs.Callbacks{
			// Wait #1: the detach window.
			Checkpoint: func(p *sim.Proc) { coord.Hold(p) },
			// Wait #2..n: migration and re-attach windows, then confirm
			// link-up before the runtime reconstructs BTLs.
			Continue: func(p *sim.Proc) {
				coord.Hold(p)
				g := r.VM().Guest()
				if _, ok := g.IBDevice(); ok {
					if err := g.WaitIBLinkupTimeout(p, o.linkupTimeout()); err != nil {
						// Recoverable: a port stuck in POLLING (or never
						// powered) must not wedge the rank. Drop the IB
						// binding so BTL reconstruction selects tcp and
						// surface the degradation on the report.
						o.noteLinkupFailure(r.VM(), err)
					}
				}
			},
		}))
	}
	confirm := opts.ConfirmTime
	if confirm <= 0 {
		confirm = job.VMs()[0].Params().ConfirmTime
	}
	o.ctl = symvirt.NewController(k, o.tgts, confirm)
	return o
}

// Job returns the orchestrated MPI job.
func (o *Orchestrator) Job() *mpi.Job { return o.job }

// Controller returns the SymVirt controller (for custom scripts).
func (o *Orchestrator) Controller() *symvirt.Controller { return o.ctl }

// Targets returns the VM/coordinator pairs.
func (o *Orchestrator) Targets() []symvirt.Target { return o.tgts }

// Events returns the orchestrator's full event log (across runs).
func (o *Orchestrator) Events() *metrics.EventLog { return o.events }

func (o *Orchestrator) linkupTimeout() sim.Time {
	if o.opts.Retry == nil {
		return 0 // unbounded, as in the original script
	}
	return o.opts.Retry.LinkupTimeout
}

// noteLinkupFailure implements the bottom rung of the degradation ladder
// from inside a guest rank: IB never came up, so the VM continues over
// Ethernet. (Rolling back is impossible from here — the controller has
// already released the guests — and unnecessary: the tcp BTL works.)
func (o *Orchestrator) noteLinkupFailure(vm *vmm.VM, err error) {
	o.events.Record(metrics.EventPhaseError, "linkup", vm.Name(), err.Error())
	vm.Guest().AbandonIB()
	o.degraded++
	o.events.Record(metrics.EventDegraded, "linkup", vm.Name(), "continuing over the tcp BTL")
}

// Migrate runs the full Ninja migration script against destination nodes
// (one per VM, in job VM order):
//
//	ckpt request → wait_all → device_detach → signal
//	            → wait_all → migration     → signal/hold
//	            → [wait_all → device_attach] → signal
//	            → link-up confirm → BTL reconstruction → resume
//
// dsts[i] == current node performs a self-migration for VM i. The detach
// and attach phases self-skip on VMs/nodes without HCAs, so the same
// script implements fallback (IB→Eth), recovery (Eth→IB), and homogeneous
// (IB→IB, Eth→Eth) moves — interconnect transparency.
func (o *Orchestrator) Migrate(p *sim.Proc, dsts []*hw.Node) (Report, error) {
	return o.MigratePolicy(p, dsts, AttachAuto)
}

// AttachPolicy controls the re-attach phase of a Ninja migration.
type AttachPolicy int

const (
	// AttachAuto re-attaches on destinations that have an HCA.
	AttachAuto AttachPolicy = iota
	// AttachNever skips the re-attach phase: the VM runs on TCP even if
	// the destination has InfiniBand. Table II's "→ Ethernet" settings
	// use this on the HCA-equipped testbed.
	AttachNever
)

// Mode selects how VM state crosses to the destination.
type Mode int

const (
	// Live uses precopy live migration over the management network.
	Live Mode = iota
	// Cold suspends each VM to a qcow2 snapshot on the shared store and
	// restores it on the destination — the paper's proactive
	// fault-tolerance path (checkpointed images, §II-A). Trades wire
	// bandwidth for (shared) storage bandwidth and works even when the
	// source is about to disappear.
	Cold
	// RDMANative keeps the passthrough HCA attached across the move and
	// replays its QP state on the destination (MigrOS-style QP
	// checkpoint/replay): no DEVICE_DELETED, no hotplug, no ≈30 s link
	// training — a short bounded resync instead. Requires an HCA on both
	// ends; anything else demotes to the hotplug rung before the script
	// commits.
	RDMANative
)

// ColdMigrate runs the Ninja script with checkpoint/restart transfer
// instead of live migration.
func (o *Orchestrator) ColdMigrate(p *sim.Proc, dsts []*hw.Node) (Report, error) {
	return o.run(p, dsts, AttachAuto, Cold)
}

// RDMAMigrate runs the Ninja script in RDMA-native mode: the passthrough
// device stays attached, QP state is checkpointed at the stop-point and
// replayed on the destination HCA. Preflight failures (no attached device,
// destination without an HCA) and per-VM replay failures demote to the
// hotplug rung rather than failing; the terminal rung is in Report.Mode.
func (o *Orchestrator) RDMAMigrate(p *sim.Proc, dsts []*hw.Node) (Report, error) {
	return o.run(p, dsts, AttachAuto, RDMANative)
}

// MigratePolicy is Migrate with an explicit re-attach policy.
func (o *Orchestrator) MigratePolicy(p *sim.Proc, dsts []*hw.Node, policy AttachPolicy) (Report, error) {
	return o.run(p, dsts, policy, Live)
}

// stage identifies where in the script a failure surfaced — the abort
// path must release the guests differently depending on which SymVirt
// wait they are parked in.
type stage int

const (
	stageDetach  stage = iota // guests in the checkpoint wait (#1)
	stageMigrate              // guests in the continue wait (#2)
	stageAttach               // guests in the continue wait (#3, after hold)
)

func (o *Orchestrator) run(p *sim.Proc, dsts []*hw.Node, policy AttachPolicy, mode Mode) (Report, error) {
	var rep Report
	if len(dsts) != len(o.tgts) {
		return rep, fmt.Errorf("%w: %d destinations, %d VMs", ErrShape, len(dsts), len(o.tgts))
	}
	// Spare substitution rewrites destinations; work on a private copy so
	// the caller's plan stays intact.
	dsts = append([]*hw.Node(nil), dsts...)
	pol := o.opts.Retry
	var coordT, detachT, migT, attachT sim.Time
	if pol != nil {
		coordT, detachT, migT, attachT = pol.CoordTimeout, pol.DetachTimeout, pol.MigrateTimeout, pol.AttachTimeout
	}
	o.retries, o.sparesUsed, o.degraded = 0, 0, 0
	evMark := o.events.Len()
	start := p.Now()

	// Rung selection: RDMA-native runs only commit to the top rung when
	// every VM has its passthrough device and every destination has an
	// HCA; otherwise the run demotes to the classic hotplug script before
	// the checkpoint is even requested.
	rdmaRequested := mode == RDMANative
	rdmaPreflightDemoted := false
	rdmaDemotions := 0
	if mode == RDMANative {
		if reason := o.rdmaPreflightFailure(dsts); reason != "" {
			o.events.Record(metrics.EventRDMADemoted, "preflight", "", reason)
			mode = Live
			rdmaPreflightDemoted = true
		} else {
			// The flag must be up before any rank enters its ft_event
			// sequence, or the BTLs release the very queue pairs the
			// replay is about to ship.
			o.job.SetTransparentCkpt(true)
			defer o.job.SetTransparentCkpt(false)
		}
	}

	finish := func(out Outcome) {
		rep.Retries, rep.SparesUsed, rep.DegradedToTCP = o.retries, o.sparesUsed, o.degraded
		rep.RDMADemoted = rdmaDemotions
		rep.Events = append([]metrics.Event(nil), o.events.Since(evMark)...)
		rep.Outcome = out
		rep.Mode = o.terminalRung(out, policy, rdmaRequested, rdmaPreflightDemoted, rdmaDemotions)
		rep.Total = p.Now() - start
	}
	classify := func() Outcome {
		switch {
		case o.degraded > 0:
			return OutcomeDegradedTCP
		case o.retries > 0 || o.sparesUsed > 0:
			return OutcomeRetriedOK
		default:
			return OutcomeClean
		}
	}

	// Trigger: the cloud scheduler asks the MPI runtime to checkpoint.
	ckptDone, err := o.job.RequestCheckpoint()
	if err != nil {
		return rep, err
	}

	// Phase 0 — coordination: all processes quiesce into SymVirt wait.
	// A quiesce that never completes cannot be rolled back (signalling
	// before wait_all is a protocol violation), so a timeout here is
	// surfaced as-is.
	if err := o.watch(p, "coordination", coordT, func(wp *sim.Proc) error {
		o.ctl.WaitAll(wp)
		return nil
	}); err != nil {
		o.events.Record(metrics.EventPhaseTimeout, "coordination", "", err.Error())
		finish(OutcomeRolledBack)
		return rep, err
	}
	rep.Coordination = p.Now() - start

	// Cross-node migrations run under migration noise for the rest of
	// the sequence (hotplug ≈3× slower; Fig. 6 vs Table II).
	cross := false
	for i, t := range o.tgts {
		if dsts[i] != t.VM.Node() {
			cross = true
		}
	}
	if cross {
		for _, t := range o.tgts {
			t.VM.SetHotplugNoise(true)
		}
		defer func() {
			for _, t := range o.tgts {
				t.VM.SetHotplugNoise(false)
			}
		}()
	}

	// abort recovers from a mid-script failure: the application is parked
	// in SymVirt wait, so we must restore a working configuration —
	// re-attach devices wherever the VM currently sits on an HCA node —
	// and release the guests before surfacing the error. Without this, a
	// failed migration would leave the whole MPI job frozen forever.
	abort := func(st stage, name string, cause error) (Report, error) {
		o.events.Record(metrics.EventRollback, name, "", cause.Error())
		// The migration is over; rollback hotplug runs without precopy
		// traffic, so it must not be billed the migration-noise inflation.
		for _, t := range o.tgts {
			t.VM.SetHotplugNoise(false)
		}
		// Re-attach is only meaningful if some VM currently sits on an
		// HCA-equipped node; on a pure-Ethernet placement the fan-out
		// (and its per-phase confirm cost) is skipped outright.
		anyHCA := false
		for _, t := range o.tgts {
			if t.VM.Node().HCA != nil {
				anyHCA = true
			}
		}
		if anyHCA {
			_ = o.ctl.DeviceAttach(p, DeviceTag, o.opts.HostPCIID) // best effort, idempotent
		}
		_ = o.ctl.Signal(symvirt.TokenProceed)
		if st == stageDetach {
			// The guests were still in the checkpoint wait: the proceed
			// token only moves them into the continue wait. Meet them
			// there and release that round too, or ckptDone never
			// resolves and the job stays frozen.
			o.ctl.WaitAll(p)
			_ = o.ctl.Signal(symvirt.TokenProceed)
		}
		ckptDone.Wait(p)
		finish(OutcomeRolledBack)
		return rep, fmt.Errorf("ninja: %s: %w (rolled back; job resumed in place)", name, cause)
	}

	// Phase 1 — detach VMM-bypass devices. Retried under a watchdog: a
	// lost DEVICE_DELETED leaves an agent waiting forever, but the
	// device is actually gone, so the re-run observes it missing and
	// completes immediately. RDMA-native skips the detach outright — the
	// device rides along and its QP state is replayed at the stop-point.
	mark := p.Now()
	if mode != RDMANative {
		if err := o.retryPhase(p, "detach", detachT, func(wp *sim.Proc) error {
			return o.ctl.DeviceDetach(wp, DeviceTag)
		}); err != nil {
			return abort(stageDetach, "detach", err)
		}
		rep.Detach = p.Now() - mark
	}
	// TokenProceed ends the checkpoint callback; the guests immediately
	// re-enter SymVirt wait from the continue callback.
	if err := o.ctl.Signal(symvirt.TokenProceed); err != nil {
		return rep, err
	}

	// Phase 2 — parallel live migration.
	if err := o.watch(p, "pre-migration wait_all", coordT, func(wp *sim.Proc) error {
		o.ctl.WaitAll(wp)
		return nil
	}); err != nil {
		o.events.Record(metrics.EventPhaseTimeout, "pre-migration wait_all", "", err.Error())
		finish(OutcomeRolledBack)
		return rep, err
	}
	mark = p.Now()
	switch mode {
	case RDMANative:
		var stats []vmm.MigrationStats
		err := o.watch(p, "rdma migration", migT, func(wp *sim.Proc) error {
			st, e := o.ctl.MigrateTransparent(wp, dsts, o.resyncTimeout())
			stats = st
			return e
		})
		if err != nil && pol != nil {
			stats, err = o.recoverTransparent(p, dsts, stats, err)
		}
		rep.VMStats = stats
		if err != nil {
			return abort(stageMigrate, "rdma migration", err)
		}
		for i, st := range stats {
			if st.RDMA != nil && st.RDMA.Demoted {
				rdmaDemotions++
				o.events.Record(metrics.EventRDMADemoted, "resync", o.tgts[i].VM.Name(), st.RDMA.DemoteReason)
			}
		}
		if rdmaDemotions > 0 {
			// Demoted VMs hold stale QP caches; dropping the transparent
			// flag makes the continue path run a full BTL reconstruction.
			o.job.SetTransparentCkpt(false)
		}
	case Cold:
		var stats []vmm.ColdStats
		err := o.watch(p, "cold migration", migT, func(wp *sim.Proc) error {
			st, e := o.ctl.ColdMigrate(wp, dsts)
			stats = st
			return e
		})
		if err != nil && pol != nil {
			stats, err = o.recoverCold(p, dsts, stats, err)
		}
		rep.ColdStats = stats
		if err != nil {
			return abort(stageMigrate, "cold migration", err)
		}
	default:
		var stats []vmm.MigrationStats
		err := o.watch(p, "migration", migT, func(wp *sim.Proc) error {
			st, e := o.ctl.Migrate(wp, dsts)
			stats = st
			return e
		})
		if err != nil && pol != nil {
			stats, err = o.recoverLive(p, dsts, stats, err)
		}
		rep.VMStats = stats
		if err != nil {
			return abort(stageMigrate, "migration", err)
		}
	}
	rep.Migration = p.Now() - mark

	// Phase 3 — re-attach wherever the VMs actually landed (spare
	// substitution may have changed the plan) on HCA-equipped nodes.
	// RDMA-native never detached, so there is nothing to re-attach.
	needAttach := false
	if policy == AttachAuto && mode != RDMANative {
		for _, t := range o.tgts {
			if t.VM.Node().HCA != nil {
				needAttach = true
			}
		}
	}
	if needAttach {
		if err := o.ctl.Signal(symvirt.TokenHold); err != nil {
			return rep, err
		}
		if err := o.watch(p, "pre-attach wait_all", coordT, func(wp *sim.Proc) error {
			o.ctl.WaitAll(wp)
			return nil
		}); err != nil {
			o.events.Record(metrics.EventPhaseTimeout, "pre-attach wait_all", "", err.Error())
			finish(OutcomeRolledBack)
			return rep, err
		}
		mark = p.Now()
		if err := o.retryPhase(p, "attach", attachT, func(wp *sim.Proc) error {
			return o.ctl.DeviceAttach(wp, DeviceTag, o.opts.HostPCIID)
		}); err != nil {
			if pol != nil && pol.DegradeToTCP {
				// Next rung of the degradation ladder: run on the
				// destination without InfiniBand rather than migrate
				// back. Every VM that should have the device but does
				// not is marked degraded; its guest has no IB binding,
				// so BTL reconstruction picks tcp.
				for _, t := range o.tgts {
					if t.VM.Node().HCA == nil {
						continue
					}
					if _, _, present := t.VM.Bus().FindByTag(DeviceTag); !present {
						o.degraded++
						o.events.Record(metrics.EventDegraded, "attach", t.VM.Name(),
							"device_add kept failing; continuing over the tcp BTL")
					}
				}
			} else {
				return abort(stageAttach, "attach", err)
			}
		}
		rep.Attach = p.Now() - mark
	}

	// Release the guests: link-up confirmation + BTL reconstruction.
	mark = p.Now()
	if err := o.ctl.Signal(symvirt.TokenProceed); err != nil {
		return rep, err
	}
	ckptDone.Wait(p)
	rep.Linkup = p.Now() - mark
	finish(classify())
	return rep, nil
}

// recoverLive retries failed per-VM live migrations under the policy,
// substituting spare destinations for failed nodes. stats may be nil
// (fan-out watchdog expiry); fanErr is the fan-out's error.
func (o *Orchestrator) recoverLive(p *sim.Proc, dsts []*hw.Node, stats []vmm.MigrationStats, fanErr error) ([]vmm.MigrationStats, error) {
	pol := o.opts.Retry
	if stats == nil {
		stats = make([]vmm.MigrationStats, len(o.tgts))
	}
	for i, t := range o.tgts {
		failed := stats[i].Err != nil || t.VM.Node() != dsts[i]
		if !failed {
			continue
		}
		lastErr := stats[i].Err
		if lastErr == nil {
			lastErr = fmt.Errorf("ninja: %s not on destination after fan-out: %w", t.VM.Name(), fanErr)
		}
		backoff := pol.Backoff
		for attempt := 2; attempt <= pol.attempts(); attempt++ {
			if backoff > 0 {
				p.Sleep(backoff)
				backoff = pol.nextBackoff(backoff)
			}
			o.substituteSpare(dsts, i, t.VM.Name(), "migration")
			o.events.Record(metrics.EventRetry, "migration", t.VM.Name(),
				fmt.Sprintf("attempt %d/%d -> %s", attempt, pol.attempts(), dsts[i].Name))
			st, err := o.ctl.MigrateOne(p, i, dsts[i])
			if err == nil {
				stats[i] = st
				o.retries++
				o.events.Record(metrics.EventRetryOK, "migration", t.VM.Name(), "")
				lastErr = nil
				break
			}
			lastErr = err
			o.events.Record(metrics.EventPhaseError, "migration", t.VM.Name(), err.Error())
		}
		if lastErr != nil {
			return stats, lastErr
		}
	}
	return stats, nil
}

// rdmaPreflightFailure checks the RDMA-native preconditions across the
// job: every VM holds its passthrough device and every cross-node
// destination has an HCA. It returns a human-readable reason on the first
// violation, or "" when the top rung can be attempted.
func (o *Orchestrator) rdmaPreflightFailure(dsts []*hw.Node) string {
	for i, t := range o.tgts {
		if _, _, ok := t.VM.Bus().FindByTag(DeviceTag); !ok {
			return fmt.Sprintf("%s: no passthrough device attached", t.VM.Name())
		}
		if _, ok := t.VM.Guest().IBDevice(); !ok {
			return fmt.Sprintf("%s: no HCA bound in guest", t.VM.Name())
		}
		if dsts[i] != t.VM.Node() && dsts[i].HCA == nil {
			return fmt.Sprintf("%s: destination %s has no HCA", t.VM.Name(), dsts[i].Name)
		}
	}
	return ""
}

// terminalRung classifies which ladder rung the run ended on.
func (o *Orchestrator) terminalRung(out Outcome, policy AttachPolicy, rdmaRequested, rdmaPreflightDemoted bool, rdmaDemotions int) RungMode {
	switch {
	case out == OutcomeRolledBack:
		return ModeRollback
	case out == OutcomeDegradedTCP:
		return ModeTCP
	case rdmaRequested && !rdmaPreflightDemoted && rdmaDemotions == 0:
		return ModeRDMANative
	case policy == AttachNever:
		return ModeTCP
	default:
		// Hotplug script: if no guest ends the run with a usable HCA
		// (Ethernet destination), the job is effectively on the tcp BTL.
		for _, t := range o.tgts {
			if t.VM.Guest().IBUsable() {
				return ModeHotplug
			}
		}
		return ModeTCP
	}
}

func (o *Orchestrator) resyncTimeout() sim.Time {
	if o.opts.Retry == nil {
		return 0 // use the VMM's default resync window
	}
	return o.opts.Retry.ResyncTimeout
}

// recoverTransparent is recoverLive for the RDMA-native fan-out: failed
// per-VM migrations are retried through the transparent path (replay
// demotions are not failures — they surface in the stats, not here).
func (o *Orchestrator) recoverTransparent(p *sim.Proc, dsts []*hw.Node, stats []vmm.MigrationStats, fanErr error) ([]vmm.MigrationStats, error) {
	pol := o.opts.Retry
	if stats == nil {
		stats = make([]vmm.MigrationStats, len(o.tgts))
	}
	for i, t := range o.tgts {
		failed := stats[i].Err != nil || t.VM.Node() != dsts[i]
		if !failed {
			continue
		}
		lastErr := stats[i].Err
		if lastErr == nil {
			lastErr = fmt.Errorf("ninja: %s not on destination after fan-out: %w", t.VM.Name(), fanErr)
		}
		backoff := pol.Backoff
		for attempt := 2; attempt <= pol.attempts(); attempt++ {
			if backoff > 0 {
				p.Sleep(backoff)
				backoff = pol.nextBackoff(backoff)
			}
			o.substituteSpare(dsts, i, t.VM.Name(), "rdma migration")
			o.events.Record(metrics.EventRetry, "rdma migration", t.VM.Name(),
				fmt.Sprintf("attempt %d/%d -> %s", attempt, pol.attempts(), dsts[i].Name))
			st, err := o.ctl.MigrateTransparentOne(p, i, dsts[i], o.resyncTimeout())
			if err == nil {
				stats[i] = st
				o.retries++
				o.events.Record(metrics.EventRetryOK, "rdma migration", t.VM.Name(), "")
				lastErr = nil
				break
			}
			lastErr = err
			o.events.Record(metrics.EventPhaseError, "rdma migration", t.VM.Name(), err.Error())
		}
		if lastErr != nil {
			return stats, lastErr
		}
	}
	return stats, nil
}

// recoverCold is recoverLive for the checkpoint/restart path. Save is
// idempotent across retries (a VM already suspended to image skips
// straight to restore), so a restore-side failure retries cheaply.
func (o *Orchestrator) recoverCold(p *sim.Proc, dsts []*hw.Node, stats []vmm.ColdStats, fanErr error) ([]vmm.ColdStats, error) {
	pol := o.opts.Retry
	if stats == nil {
		stats = make([]vmm.ColdStats, len(o.tgts))
	}
	for i, t := range o.tgts {
		failed := t.VM.Saved() || t.VM.Node() != dsts[i]
		if !failed {
			continue
		}
		lastErr := fmt.Errorf("ninja: %s not restored on destination: %w", t.VM.Name(), fanErr)
		backoff := pol.Backoff
		for attempt := 2; attempt <= pol.attempts(); attempt++ {
			if backoff > 0 {
				p.Sleep(backoff)
				backoff = pol.nextBackoff(backoff)
			}
			o.substituteSpare(dsts, i, t.VM.Name(), "cold migration")
			o.events.Record(metrics.EventRetry, "cold migration", t.VM.Name(),
				fmt.Sprintf("attempt %d/%d -> %s", attempt, pol.attempts(), dsts[i].Name))
			st, err := o.ctl.ColdMigrateOne(p, i, dsts[i])
			if err == nil {
				stats[i] = st
				o.retries++
				o.events.Record(metrics.EventRetryOK, "cold migration", t.VM.Name(), "")
				lastErr = nil
				break
			}
			lastErr = err
			o.events.Record(metrics.EventPhaseError, "cold migration", t.VM.Name(), err.Error())
		}
		if lastErr != nil {
			return stats, lastErr
		}
	}
	return stats, nil
}

// substituteSpare replaces dsts[i] with a node from the spare pool when
// the planned destination is down and a pool is configured.
func (o *Orchestrator) substituteSpare(dsts []*hw.Node, i int, vmName, phase string) {
	if !dsts[i].Failed() || o.opts.Spares == nil {
		return
	}
	if sp := o.opts.Spares.Acquire(dsts); sp != nil {
		o.sparesUsed++
		o.events.Record(metrics.EventSpareUsed, phase, vmName,
			fmt.Sprintf("%s is down, redirecting to spare %s", dsts[i].Name, sp.Name))
		dsts[i] = sp
	}
}

// SelfMigrate runs the script with every VM migrating to its own node —
// the Table II methodology for isolating hotplug and link-up costs.
func (o *Orchestrator) SelfMigrate(p *sim.Proc) (Report, error) {
	dsts := make([]*hw.Node, len(o.tgts))
	for i, t := range o.tgts {
		dsts[i] = t.VM.Node()
	}
	return o.Migrate(p, dsts)
}
