package ninja

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func TestMixedDestinationsPartialSelf(t *testing.T) {
	// VM0 self-migrates (its node is healthy), VM1 moves to Ethernet.
	// The script must handle heterogeneous destinations in one pass.
	r := newRig(t, 2, 1, true)
	app := r.runApp(t, 40)
	var rep Report
	r.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		var err error
		rep, err = r.orch.Migrate(p, []*hw.Node{r.ib.Nodes[0], r.eth.Nodes[0]})
		if err != nil {
			t.Errorf("Migrate: %v", err)
		}
	})
	r.k.Run()
	if !app.Done() {
		t.Fatal("app incomplete")
	}
	if r.vms[0].Node() != r.ib.Nodes[0] || r.vms[1].Node() != r.eth.Nodes[0] {
		t.Fatal("placement wrong")
	}
	// VM0 stays on an IB node → re-attach + linkup still happen for it.
	if rep.Linkup < 28*sim.Second {
		t.Fatalf("linkup = %v, want ≈30s (VM0 re-attaches)", rep.Linkup)
	}
	// But VM1 has no IB: the inter-VM transport must fall back to tcp
	// (openib needs Active HCAs on BOTH ends).
	if name, _ := r.job.Rank(0).TransportTo(1); name != "tcp" {
		t.Fatalf("transport = %s, want tcp (asymmetric devices)", name)
	}
}

func TestMigrationFailureDestinationFull(t *testing.T) {
	// Fault injection: the destination node runs out of memory. The
	// orchestrator must surface the error; the VM must stay home and the
	// application must be able to continue afterwards.
	r := newRig(t, 1, 1, true)
	// Exhaust the destination.
	if err := r.eth.Nodes[0].AllocMemory(40 * hw.GB); err != nil {
		t.Fatal(err)
	}
	app := r.runApp(t, 30)
	var migErr error
	r.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		_, migErr = r.orch.Migrate(p, []*hw.Node{r.eth.Nodes[0]})
	})
	r.k.Run()
	if migErr == nil {
		t.Fatal("expected a destination-memory error")
	}
	if r.vms[0].Node() != r.ib.Nodes[0] {
		t.Fatal("VM moved despite the failure")
	}
	if !app.Done() {
		t.Fatal("application must survive a failed migration attempt")
	}
}

func TestColdMigrateEndToEnd(t *testing.T) {
	r := newRig(t, 2, 2, true)
	app := r.runApp(t, 40)
	var rep Report
	r.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		var err error
		rep, err = r.orch.ColdMigrate(p, r.ethDsts(2))
		if err != nil {
			t.Errorf("ColdMigrate: %v", err)
		}
	})
	r.k.Run()
	if !app.Done() {
		t.Fatal("app incomplete")
	}
	if len(rep.ColdStats) != 2 {
		t.Fatalf("cold stats for %d VMs", len(rep.ColdStats))
	}
	for i, vm := range r.vms {
		if vm.Node() != r.eth.Nodes[i] {
			t.Fatalf("VM %d on %s", i, vm.Node().Name)
		}
		if vm.Saved() {
			t.Fatalf("VM %d still suspended", i)
		}
	}
	for rk, n := range r.iters {
		if n != 40 {
			t.Fatalf("rank %d: %d/40 iterations across cold migration", rk, n)
		}
	}
	if name, _ := r.job.Rank(0).TransportTo(2); name != "tcp" {
		t.Fatalf("transport = %s after cold fallback", name)
	}
}

func TestSchedulerFailedEventDoesNotBlockPlan(t *testing.T) {
	// A failed migration (bad destination) must be recorded and the next
	// planned event must still run. (Exercised here rather than in the
	// scheduler package to reuse the full rig.)
	r := newRig(t, 1, 1, true)
	r.eth.Nodes[0].AllocMemory(40 * hw.GB) // first destination full
	app := r.runApp(t, 60)
	var errs []error
	r.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		_, err1 := r.orch.Migrate(p, []*hw.Node{r.eth.Nodes[0]})
		errs = append(errs, err1)
		p.Sleep(sim.Second)
		_, err2 := r.orch.Migrate(p, []*hw.Node{r.eth.Nodes[1]})
		errs = append(errs, err2)
	})
	r.k.Run()
	if !app.Done() {
		t.Fatal("app incomplete")
	}
	if errs[0] == nil {
		t.Fatal("first migration should fail")
	}
	if errs[1] != nil {
		t.Fatalf("second migration: %v", errs[1])
	}
	if r.vms[0].Node() != r.eth.Nodes[1] {
		t.Fatal("second migration did not place the VM")
	}
}

func TestRanksStaggeredAcrossIterations(t *testing.T) {
	// Ranks probe at different iteration indices (staggered start): the
	// quiesce barrier must still form a consistent cut and the migration
	// must complete.
	r := newRig(t, 4, 1, true)
	app := r.job.Launch("staggered", func(p *sim.Proc, rk *mpi.Rank) {
		p.Sleep(sim.Time(rk.RankID()) * 3 * sim.Second) // staggered start
		for i := 0; i < 25; i++ {
			rk.FTProbe(p)
			rk.Compute(p, 0.5)
			peer := (rk.RankID() + 1) % 4
			from := (rk.RankID() + 3) % 4
			if _, err := rk.Sendrecv(p, peer, 7, 1e5, from, 7); err != nil {
				t.Errorf("rank %d: %v", rk.RankID(), err)
				return
			}
			r.iters[rk.RankID()]++
		}
	})
	r.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(10 * sim.Second)
		if _, err := r.orch.Migrate(p, r.ethDsts(4)); err != nil {
			t.Errorf("Migrate: %v", err)
		}
	})
	r.k.Run()
	if !app.Done() {
		t.Fatal("staggered app incomplete")
	}
	for rk, n := range r.iters {
		if n != 25 {
			t.Fatalf("rank %d: %d/25", rk, n)
		}
	}
}

func TestColdRecoveryRestoresInfiniBand(t *testing.T) {
	// Cold fallback to Ethernet, then cold recovery to InfiniBand: the
	// re-attach + link-up + BTL reconstruction path must work for the
	// checkpoint/restart transfer too.
	r := newRig(t, 2, 1, true)
	app := r.runApp(t, 60)
	var rec Report
	r.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		if _, err := r.orch.ColdMigrate(p, r.ethDsts(2)); err != nil {
			t.Errorf("cold fallback: %v", err)
			return
		}
		p.Sleep(sim.Second)
		var err error
		rec, err = r.orch.ColdMigrate(p, r.ibDsts(2))
		if err != nil {
			t.Errorf("cold recovery: %v", err)
		}
	})
	r.k.Run()
	if !app.Done() {
		t.Fatal("app incomplete")
	}
	if name, _ := r.job.Rank(0).TransportTo(1); name != "openib" {
		t.Fatalf("transport = %s after cold recovery", name)
	}
	if rec.Linkup < 28*sim.Second {
		t.Fatalf("cold recovery linkup = %v, want ≈30s", rec.Linkup)
	}
}
