package ninja

import (
	"fmt"
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/vmm"
)

// qmpFail returns hooks that make one QMP command fail persistently.
func qmpFail(cmd string) *vmm.FaultHooks {
	return &vmm.FaultHooks{QMPExec: func(v *vmm.VM, execute string) *vmm.QMPError {
		if execute == cmd {
			return &vmm.QMPError{Class: "GenericError", Desc: "test: injected " + cmd + " failure"}
		}
		return nil
	}}
}

// TestRollbackInPlace injects an unrecoverable failure into each phase of
// the script under the fail-fast (nil-policy) orchestrator and asserts
// the abort path always releases the job: every rank finishes every
// iteration, and the report carries the rollback outcome and a total.
func TestRollbackInPlace(t *testing.T) {
	cases := []struct {
		name   string
		cold   bool
		dstIB  bool // attach phase runs only toward HCA-equipped nodes
		inject func(r *rig)
		// homebound asserts VM 0 never left its source node; attach
		// failures strand the VM on the (working) destination instead.
		homebound bool
	}{
		{
			name: "detach", homebound: true,
			inject: func(r *rig) { r.vms[0].SetFaultHooks(qmpFail("device_del")) },
		},
		{
			name: "migration", homebound: true,
			inject: func(r *rig) {
				r.vms[0].SetFaultHooks(&vmm.FaultHooks{
					MigrationPass: func(v *vmm.VM, pass int) error {
						return fmt.Errorf("test: socket dropped at precopy pass %d", pass)
					},
				})
			},
		},
		{
			name: "cold-migration", cold: true, homebound: true,
			inject: func(r *rig) { r.nfs.SetOffline(true) },
		},
		{
			name: "attach", dstIB: true,
			inject: func(r *rig) { r.vms[0].SetFaultHooks(qmpFail("device_add")) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, 2, 1, true)
			tc.inject(r)
			app := r.runApp(t, 30)
			home := make([]*hw.Node, len(r.vms))
			for i, vm := range r.vms {
				home[i] = vm.Node()
			}
			dsts := r.ethDsts(2)
			if tc.dstIB {
				dsts = []*hw.Node{r.ib.Nodes[2], r.ib.Nodes[3]}
			}
			var rep Report
			var err error
			r.k.Go("driver", func(p *sim.Proc) {
				p.Sleep(2 * sim.Second)
				if tc.cold {
					rep, err = r.orch.ColdMigrate(p, dsts)
				} else {
					rep, err = r.orch.Migrate(p, dsts)
				}
			})
			r.k.Run()
			if err == nil {
				t.Fatal("migration succeeded despite injected fault")
			}
			if rep.Outcome != OutcomeRolledBack {
				t.Fatalf("Outcome = %q, want %q (err: %v)", rep.Outcome, OutcomeRolledBack, err)
			}
			if rep.Total <= 0 {
				t.Fatalf("Report.Total = %v, want > 0", rep.Total)
			}
			if !app.Done() {
				t.Fatal("app did not finish: job frozen after rollback")
			}
			for rk, n := range r.iters {
				if n != 30 {
					t.Fatalf("rank %d completed %d/30 iterations", rk, n)
				}
			}
			if tc.homebound && r.vms[0].Node() != home[0] {
				t.Fatalf("VM 0 on %s, want %s (resumed in place)", r.vms[0].Node().Name, home[0].Name)
			}
		})
	}
}

// TestDetachRetryAfterDroppedEvent loses one DEVICE_DELETED completion:
// the first detach attempt times out, the re-run observes the device
// already gone, and the migration completes.
func TestDetachRetryAfterDroppedEvent(t *testing.T) {
	r := newRig(t, 2, 1, true)
	dropped := false
	r.vms[0].SetFaultHooks(&vmm.FaultHooks{
		DropEvent: func(v *vmm.VM, event string) bool {
			if event == "DEVICE_DELETED" && !dropped {
				dropped = true
				return true
			}
			return false
		},
	})
	pol := DefaultRetryPolicy()
	pol.DetachTimeout = 20 * sim.Second
	r.orch = New(r.job, Options{Retry: &pol})
	app := r.runApp(t, 30)
	var rep Report
	var err error
	r.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(2 * sim.Second)
		rep, err = r.orch.Migrate(p, r.ethDsts(2))
	})
	r.k.Run()
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if !dropped {
		t.Fatal("fault never fired")
	}
	if rep.Outcome != OutcomeRetriedOK || rep.Retries < 1 {
		t.Fatalf("Outcome = %q (retries %d), want retried-ok with ≥1 retry", rep.Outcome, rep.Retries)
	}
	if !app.Done() {
		t.Fatal("app did not finish")
	}
	for i, vm := range r.vms {
		if vm.Node() != r.eth.Nodes[i] {
			t.Fatalf("VM %d on %s, want %s", i, vm.Node().Name, r.eth.Nodes[i].Name)
		}
	}
}

// TestMigrateAbortRetriedOK drops the migration socket once mid-precopy;
// the per-VM retry re-runs the transfer and the job lands on the
// destination with no lost iterations.
func TestMigrateAbortRetriedOK(t *testing.T) {
	r := newRig(t, 2, 1, true)
	fired := false
	r.vms[0].SetFaultHooks(&vmm.FaultHooks{
		MigrationPass: func(v *vmm.VM, pass int) error {
			if !fired {
				fired = true
				return fmt.Errorf("test: socket dropped at precopy pass %d", pass)
			}
			return nil
		},
	})
	pol := DefaultRetryPolicy()
	r.orch = New(r.job, Options{Retry: &pol})
	app := r.runApp(t, 30)
	var rep Report
	var err error
	r.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(2 * sim.Second)
		rep, err = r.orch.Migrate(p, r.ethDsts(2))
	})
	r.k.Run()
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if !fired {
		t.Fatal("fault never fired")
	}
	if rep.Outcome != OutcomeRetriedOK || rep.Retries < 1 {
		t.Fatalf("Outcome = %q (retries %d), want retried-ok", rep.Outcome, rep.Retries)
	}
	if r.vms[0].Node() != r.eth.Nodes[0] {
		t.Fatalf("VM 0 on %s, want %s", r.vms[0].Node().Name, r.eth.Nodes[0].Name)
	}
	if !app.Done() {
		t.Fatal("app did not finish")
	}
	for rk, n := range r.iters {
		if n != 30 {
			t.Fatalf("rank %d completed %d/30 iterations", rk, n)
		}
	}
}

// testSpares is a minimal SparePool for in-package tests (the production
// implementation lives in internal/scheduler, which imports this package).
type testSpares struct{ nodes []*hw.Node }

func (s *testSpares) Acquire(exclude []*hw.Node) *hw.Node {
	for i, n := range s.nodes {
		if n.Failed() {
			continue
		}
		skip := false
		for _, x := range exclude {
			if x == n {
				skip = true
			}
		}
		if skip {
			continue
		}
		s.nodes = append(s.nodes[:i], s.nodes[i+1:]...)
		return n
	}
	return nil
}

// TestSpareDestinationAfterNodeCrash fails one planned destination before
// the transfer; the orchestrator substitutes a spare node and completes.
func TestSpareDestinationAfterNodeCrash(t *testing.T) {
	r := newRig(t, 2, 1, true)
	r.eth.Nodes[0].Fail()
	pol := DefaultRetryPolicy()
	r.orch = New(r.job, Options{Retry: &pol, Spares: &testSpares{nodes: []*hw.Node{r.eth.Nodes[2]}}})
	app := r.runApp(t, 30)
	var rep Report
	var err error
	r.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(2 * sim.Second)
		rep, err = r.orch.Migrate(p, r.ethDsts(2))
	})
	r.k.Run()
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if rep.SparesUsed != 1 || rep.Outcome != OutcomeRetriedOK {
		t.Fatalf("Outcome = %q (spares %d), want retried-ok with 1 spare", rep.Outcome, rep.SparesUsed)
	}
	if r.vms[0].Node() != r.eth.Nodes[2] {
		t.Fatalf("VM 0 on %s, want spare %s", r.vms[0].Node().Name, r.eth.Nodes[2].Name)
	}
	if r.vms[1].Node() != r.eth.Nodes[1] {
		t.Fatalf("VM 1 on %s, want %s", r.vms[1].Node().Name, r.eth.Nodes[1].Name)
	}
	if !app.Done() {
		t.Fatal("app did not finish")
	}
}

// TestLinkupStallDegradesToTCP sticks the destination ports in POLLING
// past the linkup timeout: the ranks must abandon InfiniBand and continue
// over the tcp BTL rather than wedge (degradation ladder, bottom rung).
func TestLinkupStallDegradesToTCP(t *testing.T) {
	r := newRig(t, 2, 1, true)
	dsts := []*hw.Node{r.ib.Nodes[2], r.ib.Nodes[3]}
	for _, n := range dsts {
		n.HCA.InjectTrainingStall(120 * sim.Second)
	}
	pol := DefaultRetryPolicy()
	r.orch = New(r.job, Options{Retry: &pol})
	app := r.runApp(t, 30)
	var rep Report
	var err error
	r.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(2 * sim.Second)
		rep, err = r.orch.Migrate(p, dsts)
	})
	r.k.Run()
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if rep.Outcome != OutcomeDegradedTCP || rep.DegradedToTCP != 2 {
		t.Fatalf("Outcome = %q (degraded %d), want degraded-to-tcp for both VMs", rep.Outcome, rep.DegradedToTCP)
	}
	if name, _ := r.job.Rank(0).TransportTo(1); name != "tcp" {
		t.Fatalf("transport = %s, want tcp after degradation", name)
	}
	if !app.Done() {
		t.Fatal("app did not finish")
	}
}

// TestRetryPolicyPreservesCleanTiming runs the same self-migration with
// and without a retry policy: with zero faults the watchdogs must not
// perturb a single phase duration (seed determinism).
func TestRetryPolicyPreservesCleanTiming(t *testing.T) {
	runOnce := func(withPolicy bool) Report {
		r := newRig(t, 2, 1, true)
		if withPolicy {
			pol := DefaultRetryPolicy()
			r.orch = New(r.job, Options{Retry: &pol})
		}
		r.runApp(t, 30)
		var rep Report
		var err error
		r.k.Go("driver", func(p *sim.Proc) {
			p.Sleep(2 * sim.Second)
			rep, err = r.orch.SelfMigrate(p)
		})
		r.k.Run()
		if err != nil {
			t.Fatalf("SelfMigrate(policy=%v): %v", withPolicy, err)
		}
		return rep
	}
	base, guarded := runOnce(false), runOnce(true)
	if base.Coordination != guarded.Coordination || base.Detach != guarded.Detach ||
		base.Migration != guarded.Migration || base.Attach != guarded.Attach ||
		base.Linkup != guarded.Linkup || base.Total != guarded.Total {
		t.Fatalf("phase timings diverge under zero-fault policy:\nbase:    %+v\nguarded: %+v", base, guarded)
	}
	if guarded.Outcome != OutcomeClean || guarded.Retries != 0 {
		t.Fatalf("guarded run Outcome = %q (retries %d), want clean/0", guarded.Outcome, guarded.Retries)
	}
}
