package ninja

import (
	"errors"
	"fmt"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// ErrPhaseTimeout reports a watchdog expiry: an orchestration phase made
// no progress within its simulated-time budget (e.g. a DEVICE_DELETED
// event that was never delivered left the detach agent blocked forever).
var ErrPhaseTimeout = errors.New("ninja: phase timed out")

// RetryPolicy bounds every externally-visible wait of the Ninja script in
// simulated time and governs how failures are retried. The zero value is
// not useful — use DefaultRetryPolicy() and override fields. A nil
// *RetryPolicy in Options disables watchdogs and retries entirely,
// reproducing the original fail-fast script bit-for-bit (zero-fault runs
// are unaffected either way: watchdog timers cancel without firing).
type RetryPolicy struct {
	// MaxAttempts is the per-phase attempt budget, including the first
	// try. Values < 1 mean 1 (no retries).
	MaxAttempts int
	// Backoff is the simulated-time delay before the second attempt;
	// subsequent delays multiply by BackoffFactor (exponential backoff on
	// the DES clock — nothing here reads the wall clock).
	Backoff sim.Time
	// BackoffFactor scales the backoff between attempts (default 2).
	BackoffFactor float64

	// CoordTimeout bounds each wait_all (quiesce) barrier.
	CoordTimeout sim.Time
	// DetachTimeout bounds one device_del fan-out attempt.
	DetachTimeout sim.Time
	// MigrateTimeout bounds one migration fan-out / per-VM attempt.
	MigrateTimeout sim.Time
	// AttachTimeout bounds one device_add fan-out attempt.
	AttachTimeout sim.Time
	// LinkupTimeout bounds the guest-side "confirm linkup" wait. An IB
	// port stuck in POLLING past this degrades the VM to TCP (or, with
	// DegradeToTCP false, simply proceeds without InfiniBand — the BTL
	// layer falls back to tcp on its own).
	LinkupTimeout sim.Time
	// ResyncTimeout bounds the destination-side QP resync of an
	// RDMA-native migration (the top rung): a replay that would exceed it
	// demotes that VM to the hotplug rung. ≤0 uses the VMM's default
	// window (Params.RDMAResyncTimeout).
	ResyncTimeout sim.Time

	// DegradeToTCP selects graceful degradation over rollback when the
	// re-attach or link-up step is what failed: the job continues on the
	// destination over Ethernet instead of migrating back.
	DegradeToTCP bool
}

// DefaultRetryPolicy returns the knobs used by the fault experiments:
// generous enough that a healthy run never trips a watchdog (IB training
// alone is ≈30 s), tight enough that a wedged phase resolves within a few
// simulated minutes.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    3,
		Backoff:        2 * sim.Second,
		BackoffFactor:  2,
		CoordTimeout:   120 * sim.Second,
		DetachTimeout:  60 * sim.Second,
		MigrateTimeout: 1800 * sim.Second,
		AttachTimeout:  60 * sim.Second,
		LinkupTimeout:  90 * sim.Second,
		ResyncTimeout:  2 * sim.Second,
		DegradeToTCP:   true,
	}
}

func (pol *RetryPolicy) attempts() int {
	if pol == nil || pol.MaxAttempts < 1 {
		return 1
	}
	return pol.MaxAttempts
}

func (pol *RetryPolicy) nextBackoff(cur sim.Time) sim.Time {
	f := pol.BackoffFactor
	if f < 1 {
		f = 2
	}
	return sim.Time(float64(cur) * f)
}

// SparePool hands out replacement destination nodes when a planned
// destination fails mid-migration. internal/scheduler's Spares implements
// it; the interface lives here so ninja does not import the scheduler.
type SparePool interface {
	// Acquire removes and returns a healthy spare not in exclude, or nil
	// when the pool is exhausted.
	Acquire(exclude []*hw.Node) *hw.Node
}

// watch runs op under a simulated-time watchdog: op executes in its own
// process racing a timer. On expiry the op process is abandoned (it stays
// parked on whatever it was waiting for; Kernel.Close reaps it) and
// ErrPhaseTimeout is returned, so the orchestrator can retry a phase whose
// completion signal was lost. d <= 0 runs op inline, unbounded.
func (o *Orchestrator) watch(p *sim.Proc, name string, d sim.Time, op func(wp *sim.Proc) error) error {
	if d <= 0 {
		return op(p)
	}
	fut := sim.NewFuture[error](o.k)
	o.k.Go("ninja-watchdog/"+name, func(wp *sim.Proc) {
		fut.Set(op(wp))
	})
	err, ok := sim.WaitTimeout(p, fut, d)
	if !ok {
		return fmt.Errorf("%w: %s after %v", ErrPhaseTimeout, name, d)
	}
	return err
}

// retryPhase runs a fan-out phase with the policy's watchdog and attempt
// budget: timeout or error → exponential backoff in simulated time → rerun.
// Phases are written idempotently (detach skips already-removed devices,
// attach skips already-present ones), which is what makes blind re-runs
// safe after a lost completion event.
func (o *Orchestrator) retryPhase(p *sim.Proc, name string, timeout sim.Time, op func(wp *sim.Proc) error) error {
	pol := o.opts.Retry
	attempts := pol.attempts()
	backoff := sim.Time(0)
	if pol != nil {
		backoff = pol.Backoff
	}
	var err error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			if backoff > 0 {
				p.Sleep(backoff)
				backoff = pol.nextBackoff(backoff)
			}
			o.events.Record(metrics.EventRetry, name, "", fmt.Sprintf("attempt %d/%d", attempt, attempts))
		}
		err = o.watch(p, name, timeout, op)
		if err == nil {
			if attempt > 1 {
				o.retries++
				o.events.Record(metrics.EventRetryOK, name, "", fmt.Sprintf("succeeded on attempt %d", attempt))
			}
			return nil
		}
		kind := metrics.EventPhaseError
		if errors.Is(err, ErrPhaseTimeout) {
			kind = metrics.EventPhaseTimeout
		}
		o.events.Record(kind, name, "", err.Error())
	}
	return err
}
