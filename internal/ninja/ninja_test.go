package ninja

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/vmm"
)

// rig is a complete Ninja testbed: nVMs VMs on the IB cluster running an
// MPI job, an orchestrator, and an iteration-counting workload.
type rig struct {
	k     *sim.Kernel
	tb    *hw.Testbed
	ib    *hw.Cluster
	eth   *hw.Cluster
	nfs   *storage.NFS
	vms   []*vmm.VM
	job   *mpi.Job
	orch  *Orchestrator
	iters []int // per-rank completed iterations
}

func newRig(t *testing.T, nVMs, ranksPerVM int, clr bool) *rig {
	t.Helper()
	return newRigBackend(t, sim.BackendHeap, nVMs, ranksPerVM, clr)
}

// newRigBackend is newRig on an explicit kernel backend — the ladder
// property test runs every case on both backends and compares fingerprints.
func newRigBackend(t *testing.T, b sim.Backend, nVMs, ranksPerVM int, clr bool) *rig {
	t.Helper()
	k := sim.NewKernelWith(sim.Options{Backend: b})
	tb, ibc, ethc := hw.NewAGC(k)
	nfs := storage.NewNFS("nfs0")
	nfs.MountAll(ibc, ethc)
	var vms []*vmm.VM
	for i := 0; i < nVMs; i++ {
		vm, err := vmm.New(k, ibc.Nodes[i], tb.Segment, vmm.Config{
			Name: ibc.Nodes[i].Name + "/vm", VCPUs: 8, MemoryBytes: 20 * hw.GB,
		}, vmm.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		vm.SetStorage(nfs)
		if err := vm.AttachBootHCA(); err != nil {
			t.Fatal(err)
		}
		vms = append(vms, vm)
	}
	k.RunUntil(fabric.DefaultIBTrainingTime + sim.Second)
	job, err := mpi.NewJob(k, mpi.Config{VMs: vms, RanksPerVM: ranksPerVM, ContinueLikeRestart: clr})
	if err != nil {
		t.Fatal(err)
	}
	orch := New(job, Options{})
	return &rig{k: k, tb: tb, ib: ibc, eth: ethc, nfs: nfs, vms: vms, job: job, orch: orch,
		iters: make([]int, job.Size())}
}

// runApp launches an iteration loop (probe + bcast) on every rank.
func (r *rig) runApp(t *testing.T, iterations int) *sim.Future[struct{}] {
	t.Helper()
	return r.job.Launch("app", func(p *sim.Proc, rk *mpi.Rank) {
		for i := 0; i < iterations; i++ {
			rk.FTProbe(p)
			rk.Compute(p, 0.5) // half a core-second of "application work"
			if err := rk.Bcast(p, 0, 1e6); err != nil {
				t.Errorf("rank %d iter %d: %v", rk.RankID(), i, err)
				return
			}
			r.iters[rk.RankID()]++
		}
	})
}

func (r *rig) ethDsts(n int) []*hw.Node {
	dsts := make([]*hw.Node, n)
	for i := range dsts {
		dsts[i] = r.eth.Nodes[i]
	}
	return dsts
}

func (r *rig) ibDsts(n int) []*hw.Node {
	dsts := make([]*hw.Node, n)
	for i := range dsts {
		dsts[i] = r.ib.Nodes[i]
	}
	return dsts
}

func TestFallbackMigrationEndToEnd(t *testing.T) {
	r := newRig(t, 4, 1, true)
	app := r.runApp(t, 50)
	var rep Report
	var err error
	r.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(2 * sim.Second)
		rep, err = r.orch.Migrate(p, r.ethDsts(4))
	})
	r.k.Run()
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if !app.Done() {
		t.Fatal("app did not finish")
	}
	// Every VM moved; process count unchanged; iteration counters are all
	// 50 — "without restarting the processes".
	for i, vm := range r.vms {
		if vm.Node() != r.eth.Nodes[i] {
			t.Fatalf("VM %d on %s", i, vm.Node().Name)
		}
	}
	for rk, n := range r.iters {
		if n != 50 {
			t.Fatalf("rank %d completed %d/50 iterations", rk, n)
		}
	}
	// Transport switched to tcp.
	if name, _ := r.job.Rank(0).TransportTo(1); name != "tcp" {
		t.Fatalf("transport after fallback = %s, want tcp", name)
	}
	// Breakdown shape: detach is seconds-scale (IB unbind), attach ≈0 (no
	// HCA at destination), link-up ≈0 (Ethernet), migration tens of
	// seconds (20 GB scan).
	if rep.Detach < 2*sim.Second {
		t.Fatalf("detach = %v, want ≳2.5s×noise", rep.Detach)
	}
	if rep.Attach != 0 {
		t.Fatalf("attach = %v, want 0 on Ethernet destination", rep.Attach)
	}
	if rep.Linkup > sim.Second {
		t.Fatalf("linkup = %v, want ≈0 on Ethernet destination", rep.Linkup)
	}
	if rep.Migration < 20*sim.Second || rep.Migration > 60*sim.Second {
		t.Fatalf("migration = %v, want tens of seconds", rep.Migration)
	}
	if rep.Coordination > sim.Second {
		t.Fatalf("coordination = %v, want negligible", rep.Coordination)
	}
}

func TestRecoveryMigrationRestoresInfiniBand(t *testing.T) {
	r := newRig(t, 2, 1, true)
	app := r.runApp(t, 60)
	var fall, rec Report
	var err1, err2 error
	r.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		fall, err1 = r.orch.Migrate(p, r.ethDsts(2))
		p.Sleep(sim.Second)
		rec, err2 = r.orch.Migrate(p, r.ibDsts(2))
	})
	r.k.Run()
	if err1 != nil || err2 != nil {
		t.Fatalf("fallback err=%v recovery err=%v", err1, err2)
	}
	if !app.Done() {
		t.Fatal("app incomplete")
	}
	if name, _ := r.job.Rank(0).TransportTo(1); name != "openib" {
		t.Fatalf("transport after recovery = %s, want openib", name)
	}
	// Recovery to an IB destination pays attach + ≈30 s link-up.
	if rec.Attach < sim.Second {
		t.Fatalf("recovery attach = %v, want seconds-scale", rec.Attach)
	}
	if rec.Linkup < 28*sim.Second || rec.Linkup > 32*sim.Second {
		t.Fatalf("recovery linkup = %v, want ≈30s", rec.Linkup)
	}
	if fall.Linkup > sim.Second {
		t.Fatalf("fallback linkup = %v, want ≈0", fall.Linkup)
	}
	for i, vm := range r.vms {
		if vm.Node() != r.ib.Nodes[i] {
			t.Fatalf("VM %d not home: %s", i, vm.Node().Name)
		}
	}
}

func TestRecoveryWithoutCLRStaysOnTCP(t *testing.T) {
	// The paper's ablation: without ompi_cr_continue_like_restart, the
	// recovery migration leaves the job on tcp despite InfiniBand being
	// available again.
	r := newRig(t, 2, 1, false)
	app := r.runApp(t, 60)
	r.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		if _, err := r.orch.Migrate(p, r.ethDsts(2)); err != nil {
			t.Errorf("fallback: %v", err)
			return
		}
		p.Sleep(sim.Second)
		if _, err := r.orch.Migrate(p, r.ibDsts(2)); err != nil {
			t.Errorf("recovery: %v", err)
		}
	})
	r.k.Run()
	if !app.Done() {
		t.Fatal("app incomplete")
	}
	if name, _ := r.job.Rank(0).TransportTo(1); name != "tcp" {
		t.Fatalf("transport = %s, want tcp (stale selection without the knob)", name)
	}
}

func TestSelfMigrationTableIIShape(t *testing.T) {
	// IB→IB self-migration: hotplug = detach + attach + confirms ≈ 3.9 s
	// (no migration noise on a self-migration), linkup ≈ 30 s.
	r := newRig(t, 2, 1, true)
	app := r.runApp(t, 30)
	var rep Report
	r.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		var err error
		rep, err = r.orch.SelfMigrate(p)
		if err != nil {
			t.Errorf("SelfMigrate: %v", err)
		}
	})
	r.k.Run()
	if !app.Done() {
		t.Fatal("app incomplete")
	}
	if rep.Hotplug() < 3500*sim.Millisecond || rep.Hotplug() > 4500*sim.Millisecond {
		t.Fatalf("IB→IB self-migration hotplug = %v, want ≈3.9s (Table II: 3.88s)", rep.Hotplug())
	}
	if rep.Linkup < 28*sim.Second || rep.Linkup > 32*sim.Second {
		t.Fatalf("linkup = %v, want ≈30s (Table II: 29.91s)", rep.Linkup)
	}
	if name, _ := r.job.Rank(0).TransportTo(1); name != "openib" {
		t.Fatalf("transport = %s, want openib after IB→IB", name)
	}
}

func TestCrossNodeHotplugNoise(t *testing.T) {
	// Fig. 6: hotplug during a real (cross-node) migration is ≈3× the
	// Table II self-migration value.
	self := newRig(t, 1, 1, true)
	appS := self.runApp(t, 20)
	var selfRep Report
	self.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		var err error
		selfRep, err = self.orch.SelfMigrate(p)
		if err != nil {
			t.Errorf("SelfMigrate: %v", err)
		}
	})
	self.k.Run()
	if !appS.Done() {
		t.Fatal("self app incomplete")
	}

	cross := newRig(t, 1, 1, true)
	appC := cross.runApp(t, 20)
	var crossRep Report
	cross.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		var err error
		crossRep, err = cross.orch.Migrate(p, []*hw.Node{cross.ib.Nodes[1]})
		if err != nil {
			t.Errorf("Migrate: %v", err)
		}
	})
	cross.k.Run()
	if !appC.Done() {
		t.Fatal("cross app incomplete")
	}
	ratio := float64(crossRep.Hotplug()) / float64(selfRep.Hotplug())
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("hotplug noise ratio = %.2f (self %v, cross %v), want ≈3", ratio, selfRep.Hotplug(), crossRep.Hotplug())
	}
}

func TestDestinationCountMismatch(t *testing.T) {
	r := newRig(t, 2, 1, true)
	r.runApp(t, 5)
	r.k.Go("driver", func(p *sim.Proc) {
		if _, err := r.orch.Migrate(p, r.ethDsts(1)); err == nil {
			t.Error("expected shape error")
		}
	})
	r.k.Run()
}

func TestMultiRankPerVM(t *testing.T) {
	// 2 VMs × 4 ranks: all 8 processes must coordinate (the coordinator
	// waits for every rank in the VM before announcing ready).
	r := newRig(t, 2, 4, true)
	app := r.runApp(t, 20)
	r.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		if _, err := r.orch.Migrate(p, r.ethDsts(2)); err != nil {
			t.Errorf("Migrate: %v", err)
		}
	})
	r.k.Run()
	if !app.Done() {
		t.Fatal("app incomplete")
	}
	for rk, n := range r.iters {
		if n != 20 {
			t.Fatalf("rank %d: %d/20 iterations", rk, n)
		}
	}
	// Intra-VM stays sm; inter-VM switched to tcp.
	if name, _ := r.job.Rank(0).TransportTo(1); name != "sm" {
		t.Fatalf("intra-VM transport = %s, want sm", name)
	}
	if name, _ := r.job.Rank(0).TransportTo(4); name != "tcp" {
		t.Fatalf("inter-VM transport = %s, want tcp", name)
	}
}

func TestPrewarmedAttachSkipsLinkup(t *testing.T) {
	// §V optimization ablation: with IBPrewarmedAttach the recovery
	// link-up cost collapses from ≈30 s to ≈0.
	k := sim.NewKernel()
	tb, ibc, ethc := hw.NewAGC(k)
	nfs := storage.NewNFS("nfs0")
	nfs.MountAll(ibc, ethc)
	params := vmm.DefaultParams()
	params.IBPrewarmedAttach = true
	var vms []*vmm.VM
	for i := 0; i < 2; i++ {
		vm, err := vmm.New(k, ibc.Nodes[i], tb.Segment, vmm.Config{
			Name: ibc.Nodes[i].Name + "/vm", VCPUs: 8, MemoryBytes: 20 * hw.GB,
		}, params)
		if err != nil {
			t.Fatal(err)
		}
		vm.SetStorage(nfs)
		vm.AttachBootHCA()
		vms = append(vms, vm)
	}
	k.RunUntil(fabric.DefaultIBTrainingTime + sim.Second)
	job, _ := mpi.NewJob(k, mpi.Config{VMs: vms, RanksPerVM: 1, ContinueLikeRestart: true})
	orch := New(job, Options{})
	job.Launch("app", func(p *sim.Proc, rk *mpi.Rank) {
		for i := 0; i < 20; i++ {
			rk.FTProbe(p)
			if err := rk.Bcast(p, 0, 1e5); err != nil {
				t.Errorf("bcast: %v", err)
				return
			}
		}
	})
	var rep Report
	k.Go("driver", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		var err error
		rep, err = orch.SelfMigrate(p)
		if err != nil {
			t.Errorf("SelfMigrate: %v", err)
		}
	})
	k.Run()
	if rep.Linkup > sim.Second {
		t.Fatalf("prewarmed linkup = %v, want ≈0", rep.Linkup)
	}
	if name, _ := job.Rank(0).TransportTo(1); name != "openib" {
		t.Fatalf("transport = %s, want openib", name)
	}
}
