package ninja

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

// This file is the property-test lockdown of the degradation ladder: a
// seeded fault-plan × mode matrix is run to completion on both kernel
// backends, and every run must (a) terminate — the MPI app finishes all
// iterations, no wedge, (b) land on exactly one ladder rung out of
// {rdma-native, hotplug, tcp, rollback} with an internally consistent
// Report, and (c) produce a byte-identical fingerprint on the heap and
// wheel event queues.

// ladderPlan is one cell of the matrix.
type ladderPlan struct {
	name   string
	nVMs   int
	mode   int  // 0 RDMAMigrate, 1 Migrate, 2 MigratePolicy(AttachNever), 3 ColdMigrate
	dst    int  // 0 cross IB→IB, 1 IB→Ethernet, 2 self-migration
	policy bool // DefaultRetryPolicy vs nil (fail-fast)
	fault  int  // ladderFault* below
}

const (
	ladderFaultNone        = iota
	ladderFaultStallShort  // resync stall under the window: top rung, just slower
	ladderFaultStallLong   // resync stall past the window: demotes to hotplug
	ladderFaultStaleQP     // source QP state stale at replay: demotes to hotplug
	ladderFaultHCAMismatch // destination rejects foreign QP state: demotes
	ladderFaultTrainStall  // destination link training stalls: degrades to tcp
	ladderFaultDstCrash    // destination node dies: rollback in place
	ladderFaultCount
)

var ladderModeNames = [...]string{"rdma", "live", "attach-never", "cold"}
var ladderDstNames = [...]string{"ib", "eth", "self"}
var ladderFaultNames = [...]string{"none", "stall-short", "stall-long", "stale-qp", "hca-mismatch", "train-stall", "dst-crash"}

// ladderPlanFromSeed derives a matrix cell deterministically from a seed
// (math/rand's generator sequence is stable across platforms and releases).
func ladderPlanFromSeed(seed int64) ladderPlan {
	rng := rand.New(rand.NewSource(seed*7919 + 17))
	pl := ladderPlan{
		nVMs:   1 + rng.Intn(3),
		mode:   rng.Intn(4),
		dst:    rng.Intn(3),
		policy: rng.Intn(2) == 0,
		fault:  rng.Intn(ladderFaultCount),
	}
	if pl.fault == ladderFaultDstCrash && pl.dst == 2 {
		// Crashing the node a VM self-migrates onto kills the job, not the
		// migration; redirect the crash at a real destination.
		pl.dst = 1
	}
	pl.name = fmt.Sprintf("seed%d-%s-%s-%s", seed,
		ladderModeNames[pl.mode], ladderDstNames[pl.dst], ladderFaultNames[pl.fault])
	if pl.policy {
		pl.name += "-retry"
	}
	return pl
}

// ladderRun executes one cell on one backend and returns (fingerprint,
// terminal rung). All single-run properties are asserted inside.
func ladderRun(t *testing.T, pl ladderPlan, b sim.Backend) (string, RungMode) {
	t.Helper()
	r := newRigBackend(t, b, pl.nVMs, 1, true)
	if pl.policy {
		pol := DefaultRetryPolicy()
		r.orch.opts.Retry = &pol
	}

	var dsts []*hw.Node
	switch pl.dst {
	case 0: // cross-cluster IB→IB
		dsts = make([]*hw.Node, pl.nVMs)
		for i := range dsts {
			dsts[i] = r.ib.Nodes[pl.nVMs+i]
		}
	case 1:
		dsts = r.ethDsts(pl.nVMs)
	default:
		dsts = r.ibDsts(pl.nVMs) // current nodes: self-migration
	}

	// Arm the fault before the run; every arm is a one-shot consumed (or
	// harmlessly ignored) by the first operation that reaches it.
	srcHCA := r.ib.Nodes[0].HCA
	dstHCA := dsts[0].HCA
	switch pl.fault {
	case ladderFaultStallShort:
		if dstHCA != nil {
			dstHCA.InjectResyncStall(sim.Second)
		}
	case ladderFaultStallLong:
		if dstHCA != nil {
			dstHCA.InjectResyncStall(10 * sim.Second)
		}
	case ladderFaultStaleQP:
		srcHCA.InjectStaleQPState()
	case ladderFaultHCAMismatch:
		if dstHCA != nil {
			dstHCA.InjectHCAMismatch()
		}
	case ladderFaultTrainStall:
		if dstHCA != nil {
			dstHCA.InjectTrainingStall(200 * sim.Second)
		}
	case ladderFaultDstCrash:
		dsts[0].Fail()
	}

	const iters = 30
	app := r.runApp(t, iters)
	var rep Report
	var migErr error
	r.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(2 * sim.Second)
		switch pl.mode {
		case 0:
			rep, migErr = r.orch.RDMAMigrate(p, dsts)
		case 1:
			rep, migErr = r.orch.Migrate(p, dsts)
		case 2:
			rep, migErr = r.orch.MigratePolicy(p, dsts, AttachNever)
		default:
			rep, migErr = r.orch.ColdMigrate(p, dsts)
		}
	})
	r.k.Run()

	// Property 1 — no wedge: the kernel drained and every rank finished
	// every iteration, migration failed or not.
	if !app.Done() {
		t.Errorf("%s/%s: app wedged", pl.name, b)
	}
	for rk, n := range r.iters {
		if n != iters {
			t.Errorf("%s/%s: rank %d completed %d/%d iterations", pl.name, b, rk, n, iters)
		}
	}

	// Property 2 — the run landed on exactly one ladder rung, and a failed
	// run is always the bottom one.
	switch rep.Mode {
	case ModeRDMANative, ModeHotplug, ModeTCP, ModeRollback:
	default:
		t.Errorf("%s/%s: terminal rung %q not on the ladder", pl.name, b, rep.Mode)
	}
	if migErr != nil && rep.Mode != ModeRollback {
		t.Errorf("%s/%s: failed run (%v) on rung %q, want rollback", pl.name, b, migErr, rep.Mode)
	}

	// Property 3 — Report consistency: no negative spans, components do not
	// exceed the total, per-VM counters in range, top rung implies no
	// hotplug work.
	spans := []struct {
		name string
		v    sim.Time
	}{
		{"coordination", rep.Coordination}, {"detach", rep.Detach}, {"migration", rep.Migration},
		{"attach", rep.Attach}, {"linkup", rep.Linkup}, {"total", rep.Total},
	}
	var sum sim.Time
	for _, s := range spans {
		if s.v < 0 {
			t.Errorf("%s/%s: %s = %v, negative", pl.name, b, s.name, s.v)
		}
		if s.name != "total" {
			sum += s.v
		}
	}
	if sum > rep.Total {
		t.Errorf("%s/%s: component sum %v exceeds total %v", pl.name, b, sum, rep.Total)
	}
	if rep.RDMADemoted < 0 || rep.RDMADemoted > pl.nVMs {
		t.Errorf("%s/%s: RDMADemoted = %d with %d VMs", pl.name, b, rep.RDMADemoted, pl.nVMs)
	}
	if rep.DegradedToTCP < 0 || rep.DegradedToTCP > pl.nVMs {
		t.Errorf("%s/%s: DegradedToTCP = %d with %d VMs", pl.name, b, rep.DegradedToTCP, pl.nVMs)
	}
	if rep.Mode == ModeRDMANative {
		if rep.RDMADemoted != 0 || rep.Detach != 0 || rep.Attach != 0 {
			t.Errorf("%s/%s: rdma-native rung with demoted=%d detach=%v attach=%v",
				pl.name, b, rep.RDMADemoted, rep.Detach, rep.Attach)
		}
	}

	// Fingerprint: everything observable about the run, rendered to a
	// string. Compared byte-for-byte across backends.
	var fp strings.Builder
	fmt.Fprintf(&fp, "mode=%s outcome=%s err=%v demoted=%d retries=%d spares=%d degraded=%d\n",
		rep.Mode, rep.Outcome, migErr, rep.RDMADemoted, rep.Retries, rep.SparesUsed, rep.DegradedToTCP)
	fmt.Fprintf(&fp, "coord=%v detach=%v mig=%v attach=%v linkup=%v total=%v events=%d\n",
		rep.Coordination, rep.Detach, rep.Migration, rep.Attach, rep.Linkup, rep.Total, len(rep.Events))
	for i, vm := range r.vms {
		fmt.Fprintf(&fp, "vm%d@%s ", i, vm.Node().Name)
	}
	if pl.nVMs > 1 {
		name, _ := r.job.Rank(0).TransportTo(1)
		fmt.Fprintf(&fp, "transport=%s", name)
	}
	fmt.Fprintf(&fp, " end=%v\n", r.k.Now())
	return fp.String(), rep.Mode
}

// TestLadderPropertyMatrix runs four hand-picked cells that pin one rung
// each, plus a seeded random sweep, on both backends.
func TestLadderPropertyMatrix(t *testing.T) {
	plans := []ladderPlan{
		{name: "pin-rdma-native", nVMs: 2, mode: 0, dst: 0, policy: true, fault: ladderFaultNone},
		{name: "pin-hotplug", nVMs: 2, mode: 0, dst: 0, policy: true, fault: ladderFaultStaleQP},
		{name: "pin-tcp", nVMs: 2, mode: 1, dst: 1, policy: true, fault: ladderFaultNone},
		{name: "pin-rollback", nVMs: 2, mode: 1, dst: 1, policy: false, fault: ladderFaultDstCrash},
	}
	for seed := int64(0); seed < 10; seed++ {
		plans = append(plans, ladderPlanFromSeed(seed))
	}

	seen := map[RungMode]string{}
	for _, pl := range plans {
		pl := pl
		t.Run(pl.name, func(t *testing.T) {
			fpHeap, rung := ladderRun(t, pl, sim.BackendHeap)
			fpWheel, _ := ladderRun(t, pl, sim.BackendWheel)
			if fpHeap != fpWheel {
				t.Errorf("backend fingerprints diverge:\nheap:  %swheel: %s", fpHeap, fpWheel)
			}
			seen[rung] = pl.name
		})
	}
	for _, rung := range []RungMode{ModeRDMANative, ModeHotplug, ModeTCP, ModeRollback} {
		if _, ok := seen[rung]; !ok {
			t.Errorf("matrix never terminated on rung %q", rung)
		}
	}
}
