// Package vmm models a QEMU/KVM-like virtual machine monitor: VMs with
// vCPUs and guest RAM, a guest OS with PCI hotplug drivers, a QMP-style
// monitor command interface, and precopy live migration with zero-page
// compression. It is the substrate SymVirt/Ninja migration drives.
package vmm

import "repro/internal/sim"

// Params are the VMM cost-model constants. Defaults are calibrated against
// the paper's measurements (QEMU/KVM 1.1-rc3 on the AGC cluster); see
// EXPERIMENTS.md for the calibration notes.
type Params struct {
	// MigrationSetup is the fixed cost of starting a migration (monitor
	// round trips, socket setup, destination QEMU launch handshake).
	MigrationSetup sim.Time

	// ScanRate is how fast the single-threaded migration loop walks guest
	// RAM checking the dirty bitmap and testing pages for uniformity
	// (bytes/sec of guest RAM scanned). The paper observes the whole 20 GB
	// guest is traversed in roughly 30 s → ≈0.6 GB/s.
	ScanRate float64

	// NetRate is the effective wire throughput of the migration thread for
	// non-uniform page data. The paper measures <1.3 Gbit/s on a 10 GbE
	// link because one CPU core saturates (§V) → 0.1625 GB/s.
	NetRate float64

	// UniformPageWireBytes is what a compressed uniform ("zero") page
	// costs on the wire (QEMU sends a 1-byte marker plus header per page).
	UniformPageWireBytes float64

	// PageBytes is the guest page size.
	PageBytes float64

	// MaxIterations caps precopy rounds before forcing stop-and-copy.
	MaxIterations int

	// DowntimeLimit is the target maximum stop-and-copy pause; precopy
	// converges when the remaining dirty set can be sent within it.
	DowntimeLimit sim.Time

	// MigrationCPUJobs is how many host-CPU-core-equivalents the migration
	// machinery occupies while active (the QEMU migration thread plus
	// dirty-bitmap syncing in the main loop). It both consumes host CPU
	// and determines hotplug slowdown under migration noise (Fig. 6 shows
	// hotplug ≈3× slower during migration → 2 noise jobs + the hotplug
	// work itself sharing the management path).
	MigrationCPUJobs int

	// HotplugNoiseFactor stretches PCI hotplug work that overlaps an
	// active migration on the same VM (Fig. 6 vs Table II: ≈3×).
	HotplugNoiseFactor float64

	// IBProbeTime is the guest mlx4 driver probe cost on device_add
	// and IBUnbindTime the teardown on device_del. Together with the
	// host-side VFIO costs these reproduce the Table II hotplug times.
	IBProbeTime  sim.Time
	IBUnbindTime sim.Time
	// IBHostAttach/IBHostDetach are the VMM-side VFIO/IOMMU costs.
	IBHostAttach sim.Time
	IBHostDetach sim.Time

	// VirtioProbeTime/VirtioUnbindTime and the host-side equivalents are
	// the same costs for a para-virtualized NIC (much cheaper: no IOMMU,
	// no firmware handshake).
	VirtioProbeTime  sim.Time
	VirtioUnbindTime sim.Time
	VirtioHostAttach sim.Time
	VirtioHostDetach sim.Time

	// ConfirmTime is the SymVirt script's per-phase confirmation overhead
	// (QMP round trips, wait_all bookkeeping) counted into "hotplug" in
	// the paper's breakdown.
	ConfirmTime sim.Time

	// VirtioCPUCostPerByte is host CPU work per byte of virtio traffic
	// (vhost): ≈1 core saturates at ~0.5 GB/s on the paper's Nehalems.
	VirtioCPUCostPerByte float64

	// VirtioBandwidth is the vNIC's own ring throughput ceiling.
	VirtioBandwidth float64

	// OSResidentBytes is the guest OS's non-uniform resident set, sent
	// uncompressed on migration even for an otherwise idle guest.
	OSResidentBytes float64

	// IBPrewarmedAttach models a §V-style optimization: the host keeps
	// the HCA port trained and hands it to the guest without a driver
	// reset on hot-attach, eliminating the ≈30 s link-up wait. (The paper
	// flags the link-up cost as its main open issue.)
	IBPrewarmedAttach bool

	// RDMAMigration, when true, models the §V optimization: the migration
	// transport uses RDMA, removing the single-core CPU bottleneck
	// (NetRate rises to wire speed and scanning parallelizes 4×).
	RDMAMigration bool

	// MigrationThreads models multi-threaded migration (§V): scan and
	// send rates scale with the thread count.
	MigrationThreads int

	// RDMAResyncTimeout bounds the destination-side QP resync of an
	// RDMA-native (transparent) migration; a resync that would exceed it
	// demotes the VM to the hotplug rung. Orchestrator policies may
	// override it per migration.
	RDMAResyncTimeout sim.Time
}

// DefaultParams returns the calibrated QEMU/KVM 1.1 cost model.
func DefaultParams() Params {
	return Params{
		MigrationSetup:       100 * sim.Millisecond,
		ScanRate:             0.62e9,
		NetRate:              0.1625e9, // 1.3 Gbit/s
		UniformPageWireBytes: 9,
		PageBytes:            4096,
		MaxIterations:        2,
		DowntimeLimit:        30 * sim.Millisecond,
		MigrationCPUJobs:     2,
		HotplugNoiseFactor:   3.0,
		IBProbeTime:          1050 * sim.Millisecond,
		IBUnbindTime:         2500 * sim.Millisecond,
		IBHostAttach:         60 * sim.Millisecond,
		IBHostDetach:         180 * sim.Millisecond,
		VirtioProbeTime:      45 * sim.Millisecond,
		VirtioUnbindTime:     60 * sim.Millisecond,
		VirtioHostAttach:     10 * sim.Millisecond,
		VirtioHostDetach:     15 * sim.Millisecond,
		ConfirmTime:          25 * sim.Millisecond,
		VirtioCPUCostPerByte: 1.0 / 0.5e9,
		VirtioBandwidth:      1.25e9,
		OSResidentBytes:      0.3e9,
		MigrationThreads:     1,
		RDMAResyncTimeout:    2 * sim.Second,
	}
}
