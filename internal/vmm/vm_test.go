package vmm

import (
	"math"
	"testing"

	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/pci"
	"repro/internal/sim"
	"repro/internal/storage"
)

func approxT(a, b sim.Time, tolFrac float64) bool {
	if b == 0 {
		return a < 10*sim.Millisecond
	}
	diff := math.Abs(float64(a - b))
	return diff <= tolFrac*math.Abs(float64(b))+float64(10*sim.Millisecond)
}

// testRig builds a 2+2 node testbed with a shared store and returns a VM
// on the first IB node (with boot-attached HCA when attach is true).
type testRig struct {
	k     *sim.Kernel
	tb    *hw.Testbed
	ib    *hw.Cluster
	eth   *hw.Cluster
	store *storage.NFS
	vm    *VM
}

func newTestRig(t *testing.T, attach bool, memGB float64) *testRig {
	t.Helper()
	k := sim.NewKernel()
	tb := hw.NewTestbed(k)
	ib := tb.AddCluster("ib", 2, hw.AGCNodeSpec)
	ethSpec := hw.AGCNodeSpec
	ethSpec.IBBandwidth = 0
	eth := tb.AddCluster("eth", 2, ethSpec)
	store := storage.NewNFS("nfs0")
	store.MountAll(ib, eth)
	vm, err := New(k, ib.Nodes[0], tb.Segment, Config{
		Name: "vm0", VCPUs: 8, MemoryBytes: memGB * hw.GB,
	}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	vm.SetStorage(store)
	if attach {
		if err := vm.AttachBootHCA(); err != nil {
			t.Fatal(err)
		}
	}
	k.RunUntil(fabric.DefaultIBTrainingTime + sim.Second) // host links train
	return &testRig{k: k, tb: tb, ib: ib, eth: eth, store: store, vm: vm}
}

func TestBootAttachNoRetraining(t *testing.T) {
	r := newTestRig(t, true, 20)
	if !r.vm.Guest().IBUsable() {
		t.Fatal("boot-attached HCA not usable (link should be pre-trained)")
	}
	if !r.vm.Monitor().HasPassthrough() {
		t.Fatal("HasPassthrough = false with HCA attached")
	}
}

func TestMigrateRefusedWithPassthrough(t *testing.T) {
	r := newTestRig(t, true, 20)
	if _, err := r.vm.Migrate(r.eth.Nodes[0]); err != ErrHasPassthrough {
		t.Fatalf("err = %v, want ErrHasPassthrough", err)
	}
}

func TestMigrateRefusedWithoutSharedStorage(t *testing.T) {
	r := newTestRig(t, false, 20)
	r.store.Unmount(r.eth.Nodes[0])
	if _, err := r.vm.Migrate(r.eth.Nodes[0]); err != storage.ErrNotShared {
		t.Fatalf("err = %v, want ErrNotShared", err)
	}
}

func TestMigrateRefusedWhenDestinationFull(t *testing.T) {
	r := newTestRig(t, false, 20)
	// Fill the destination.
	if err := r.eth.Nodes[0].AllocMemory(40 * hw.GB); err != nil {
		t.Fatal(err)
	}
	if _, err := r.vm.Migrate(r.eth.Nodes[0]); err == nil {
		t.Fatal("expected destination-memory error")
	}
}

func TestHotplugDetachAttachCycle(t *testing.T) {
	r := newTestRig(t, true, 20)
	mon := r.vm.Monitor()
	var detachDur, attachDur, linkupDur sim.Time
	r.k.Go("cycle", func(p *sim.Proc) {
		start := p.Now()
		fut, err := mon.DeviceDel("vf0")
		if err != nil {
			t.Errorf("DeviceDel: %v", err)
			return
		}
		fut.Wait(p)
		detachDur = p.Now() - start
		if mon.HasPassthrough() {
			t.Error("passthrough still present after detach")
		}
		if r.vm.Guest().IBUsable() {
			t.Error("guest still sees IB device")
		}

		start = p.Now()
		afut, err := mon.DeviceAdd("vf0", "04:00.0")
		if err != nil {
			t.Errorf("DeviceAdd: %v", err)
			return
		}
		afut.Wait(p)
		attachDur = p.Now() - start

		start = p.Now()
		if err := r.vm.Guest().WaitIBLinkup(p); err != nil {
			t.Errorf("WaitIBLinkup: %v", err)
		}
		linkupDur = p.Now() - start
	})
	r.k.Run()
	p := DefaultParams()
	if !approxT(detachDur, p.IBUnbindTime+p.IBHostDetach, 0.01) {
		t.Fatalf("detach took %v", detachDur)
	}
	if !approxT(attachDur, p.IBProbeTime+p.IBHostAttach, 0.01) {
		t.Fatalf("attach took %v", attachDur)
	}
	// Link-up ≈ training time minus the probe overlap; must be ≈30 s.
	if linkupDur < 28*sim.Second || linkupDur > 31*sim.Second {
		t.Fatalf("linkup took %v, want ≈30s", linkupDur)
	}
	if !r.vm.Guest().IBUsable() {
		t.Fatal("IB not usable after re-attach + linkup")
	}
}

func TestHotplugNoiseDuringMigration(t *testing.T) {
	// A hotplug that overlaps an active migration must be stretched by
	// HotplugNoiseFactor (Fig. 6 measures ≈3× vs Table II).
	r := newTestRig(t, false, 20)
	mon := r.vm.Monitor()
	params := DefaultParams()
	base := params.VirtioUnbindTime + params.VirtioHostDetach
	var normal, noisy sim.Time
	r.k.Go("seq", func(p *sim.Proc) {
		// Baseline detach, no migration running.
		start := p.Now()
		fut, err := mon.DeviceDel("virtio-net0")
		if err != nil {
			t.Errorf("DeviceDel: %v", err)
			return
		}
		fut.Wait(p)
		normal = p.Now() - start

		// Re-attach (clean), then detach again while migrating.
		vnicFn := &pci.Function{Name: "virtio-net0", Class: pci.ClassVirtioNet,
			Payload: r.vm.VNIC(), HostAttach: params.VirtioHostAttach,
			HostDetach: params.VirtioHostDetach}
		afut, err := r.vm.Bus().Add(VNICSlot, vnicFn)
		if err != nil {
			t.Errorf("Add: %v", err)
			return
		}
		afut.Wait(p)

		migFut, err := r.vm.Migrate(r.eth.Nodes[0])
		if err != nil {
			t.Errorf("Migrate: %v", err)
			return
		}
		start = p.Now()
		dfut, err := mon.DeviceDel("virtio-net0")
		if err != nil {
			t.Errorf("DeviceDel under migration: %v", err)
			return
		}
		dfut.Wait(p)
		noisy = p.Now() - start
		migFut.Wait(p)
	})
	r.k.Run()
	if !approxT(normal, base, 0.01) {
		t.Fatalf("normal detach took %v, want %v", normal, base)
	}
	want := sim.Time(float64(base) * params.HotplugNoiseFactor)
	if !approxT(noisy, want, 0.01) {
		t.Fatalf("noisy detach took %v, want %v (3×)", noisy, want)
	}
}
