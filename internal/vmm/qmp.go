package vmm

import (
	"encoding/json"
	"fmt"

	"repro/internal/pci"
	"repro/internal/sim"
)

// QMP is a JSON wire-protocol front end to the Monitor — the QEMU Monitor
// Protocol the paper's SymVirt agents connect to ("Each agent communicates
// with a QEMU process via the QEMU Monitor Protocol (QMP)"). Commands are
// JSON objects {"execute": ..., "arguments": {...}}; asynchronous
// completions surface as events, exactly like QEMU's DEVICE_DELETED and
// MIGRATION events.
type QMP struct {
	mon    *Monitor
	events []QMPEvent
	cond   *sim.Cond
}

// QMPCommand is a decoded request.
type QMPCommand struct {
	Execute   string          `json:"execute"`
	Arguments json.RawMessage `json:"arguments,omitempty"`
	ID        any             `json:"id,omitempty"`
}

// QMPResponse is the reply envelope.
type QMPResponse struct {
	Return any       `json:"return,omitempty"`
	Error  *QMPError `json:"error,omitempty"`
	ID     any       `json:"id,omitempty"`
}

// QMPError mirrors QEMU's error object.
type QMPError struct {
	Class string `json:"class"`
	Desc  string `json:"desc"`
}

// QMPEvent is an asynchronous notification.
type QMPEvent struct {
	Event string         `json:"event"`
	Data  map[string]any `json:"data,omitempty"`
	// Timestamp is the simulated time the event fired.
	Timestamp sim.Time `json:"-"`
}

// QMP returns the VM's QMP server (one per VM: agents connecting later
// still see earlier sessions' pending events, like a QEMU monitor socket).
func (vm *VM) QMP() *QMP {
	if vm.qmp == nil {
		vm.qmp = &QMP{mon: vm.Monitor(), cond: sim.NewCond(vm.k)}
	}
	return vm.qmp
}

// Events drains the queued asynchronous events.
func (q *QMP) Events() []QMPEvent {
	evs := q.events
	q.events = nil
	return evs
}

// WaitEvent blocks until an event with the given name is queued, consumes
// it, and returns it. Other queued events are left untouched.
func (q *QMP) WaitEvent(p *sim.Proc, name string) QMPEvent {
	for {
		for i, ev := range q.events {
			if ev.Event == name {
				q.events = append(q.events[:i], q.events[i+1:]...)
				return ev
			}
		}
		q.cond.Wait(p)
	}
}

func (q *QMP) emit(name string, data map[string]any) {
	vm := q.mon.vm
	if h := vm.faults; h != nil && h.DropEvent != nil && h.DropEvent(vm, name) {
		return // injected fault: the completion notification is lost
	}
	q.events = append(q.events, QMPEvent{Event: name, Data: data, Timestamp: vm.k.Now()})
	q.cond.Broadcast()
}

func qmpErr(id any, class, desc string) []byte {
	out, _ := json.Marshal(QMPResponse{Error: &QMPError{Class: class, Desc: desc}, ID: id})
	return out
}

func qmpOK(id any, ret any) []byte {
	if ret == nil {
		ret = map[string]any{}
	}
	out, _ := json.Marshal(QMPResponse{Return: ret, ID: id})
	return out
}

// Execute decodes and runs one QMP command, returning the JSON response.
// Asynchronous commands (device_del, device_add) return immediately and
// emit DEVICE_DELETED / NINJA_DEVICE_ADDED events on completion.
func (q *QMP) Execute(raw []byte) []byte {
	var cmd QMPCommand
	if err := json.Unmarshal(raw, &cmd); err != nil {
		return qmpErr(nil, "GenericError", "invalid JSON: "+err.Error())
	}
	vm := q.mon.vm
	if h := vm.faults; h != nil && h.QMPExec != nil {
		if qe := h.QMPExec(vm, cmd.Execute); qe != nil {
			return qmpErr(cmd.ID, qe.Class, qe.Desc)
		}
	}
	switch cmd.Execute {
	case "query-status":
		return qmpOK(cmd.ID, map[string]any{
			"status":  q.mon.QueryStatus(),
			"running": q.mon.VM().State() == Running,
		})
	case "stop":
		q.mon.Stop()
		return qmpOK(cmd.ID, nil)
	case "cont":
		q.mon.Cont()
		return qmpOK(cmd.ID, nil)
	case "device_del":
		var args struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(cmd.Arguments, &args); err != nil || args.ID == "" {
			return qmpErr(cmd.ID, "GenericError", "device_del needs an id")
		}
		fut, err := q.mon.DeviceDel(args.ID)
		if err != nil {
			return qmpErr(cmd.ID, "DeviceNotFound", err.Error())
		}
		fut.OnDone(func(*pci.Function) {
			q.emit("DEVICE_DELETED", map[string]any{"device": args.ID})
		})
		return qmpOK(cmd.ID, nil)
	case "device_add":
		var args struct {
			Driver string `json:"driver"`
			Host   string `json:"host"`
			ID     string `json:"id"`
		}
		if err := json.Unmarshal(cmd.Arguments, &args); err != nil || args.ID == "" {
			return qmpErr(cmd.ID, "GenericError", "device_add needs an id")
		}
		fut, err := q.mon.DeviceAdd(args.ID, args.Host)
		if err != nil {
			return qmpErr(cmd.ID, "DeviceNotFound", err.Error())
		}
		fut.OnDone(func(struct{}) {
			q.emit("NINJA_DEVICE_ADDED", map[string]any{"device": args.ID, "host": args.Host})
		})
		return qmpOK(cmd.ID, nil)
	case "query-migrate":
		status := "none"
		if vm.Migrating() {
			status = "active"
		} else if n := len(vm.Migrations()); n > 0 {
			if vm.Migrations()[n-1].Err != nil {
				status = "failed"
			} else {
				status = "completed"
			}
		}
		ret := map[string]any{"status": status}
		if n := len(vm.Migrations()); n > 0 && !vm.Migrating() {
			last := vm.Migrations()[n-1]
			ret["ram"] = map[string]any{
				"transferred": last.WireBytes,
				"total":       vm.Memory().TotalBytes(),
				"downtime-ms": last.Downtime.Milliseconds(),
			}
		}
		return qmpOK(cmd.ID, ret)
	default:
		return qmpErr(cmd.ID, "CommandNotFound",
			fmt.Sprintf("The command %s has not been found", cmd.Execute))
	}
}

// ExecuteString is Execute on a string command (test convenience).
func (q *QMP) ExecuteString(s string) string { return string(q.Execute([]byte(s))) }
