package vmm

// FaultHooks are optional injection points the VMM consults at its
// failure-prone boundaries. They model the failures the paper's real
// hardware exhibits — migration socket drops mid-round, QMP commands that
// error or whose completion event is lost — without perturbing the happy
// path: every hook may be nil, and hooks run on the DES clock, so a fault
// plan is exactly as deterministic as the simulation itself.
type FaultHooks struct {
	// MigrationPass is consulted before each precopy pass (1-based). A
	// non-nil error aborts the live migration mid-round: the destination
	// reservation is released, the VM stays on the source, and the stats
	// future resolves with Err set.
	MigrationPass func(vm *VM, pass int) error

	// QMPExec intercepts a QMP command by name ("device_del",
	// "device_add", ...). A non-nil error is returned to the issuing
	// agent instead of executing the command.
	QMPExec func(vm *VM, execute string) *QMPError

	// DropEvent, when it returns true, suppresses delivery of the named
	// asynchronous QMP event (e.g. DEVICE_DELETED) — a lost completion.
	// The underlying operation still happens; only the notification is
	// swallowed, which is what makes retries observable as idempotent.
	DropEvent func(vm *VM, event string) bool
}

// SetFaultHooks installs (or, with nil, removes) the VM's fault hooks.
func (vm *VM) SetFaultHooks(h *FaultHooks) { vm.faults = h }

// FaultHooks returns the installed hooks, or nil.
func (vm *VM) FaultHooks() *FaultHooks { return vm.faults }
