package vmm

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

// migrate runs a migration to dst and returns the stats.
func migrate(t *testing.T, r *testRig, dst *hw.Node) MigrationStats {
	t.Helper()
	var stats MigrationStats
	r.k.Go("drive", func(p *sim.Proc) {
		fut, err := r.vm.Migrate(dst)
		if err != nil {
			t.Errorf("Migrate: %v", err)
			return
		}
		stats = fut.Wait(p)
	})
	r.k.Run()
	return stats
}

func TestMigrationIdleGuestScanDominated(t *testing.T) {
	// Idle 20 GB guest, frozen app: one pass, scan-dominated.
	r := newTestRig(t, false, 20)
	r.vm.Guest().SetAppFrozen(true)
	stats := migrate(t, r, r.eth.Nodes[0])
	p := DefaultParams()
	scan := sim.FromSeconds(20 * hw.GB / p.ScanRate)
	wire := sim.FromSeconds(p.OSResidentBytes / p.NetRate)
	want := p.MigrationSetup + scan + wire
	if !approxT(stats.Duration, want, 0.05) {
		t.Fatalf("duration = %v, want ≈%v", stats.Duration, want)
	}
	if stats.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1 (nothing re-dirtied)", stats.Iterations)
	}
	if r.vm.Node() != r.eth.Nodes[0] {
		t.Fatal("VM did not move")
	}
}

func TestMigrationHostAccounting(t *testing.T) {
	r := newTestRig(t, false, 20)
	src, dst := r.ib.Nodes[0], r.eth.Nodes[0]
	if src.MemoryUsed() != 20*hw.GB {
		t.Fatalf("src mem used = %v", src.MemoryUsed())
	}
	migrate(t, r, dst)
	if src.MemoryUsed() != 0 {
		t.Fatalf("src mem not freed: %v", src.MemoryUsed())
	}
	if dst.MemoryUsed() != 20*hw.GB {
		t.Fatalf("dst mem not charged: %v", dst.MemoryUsed())
	}
	if r.vm.VNIC().Uplink() != dst.NIC {
		t.Fatal("virtio uplink not re-pointed at destination NIC")
	}
}

func TestMigrationGrowsWithNonUniformFootprint(t *testing.T) {
	// A mostly-uniform memtest-like region: migration time must grow
	// sub-linearly (scan + 18% of footprint on the wire).
	durFor := func(footGB float64) sim.Time {
		r := newTestRig(t, false, 20)
		r.vm.Memory().AddRegion("memtest", footGB*hw.GB, 0.82, 1.5e9)
		r.vm.Guest().SetAppFrozen(true)
		return migrate(t, r, r.eth.Nodes[0]).Duration
	}
	d2, d16 := durFor(2), durFor(16)
	if d16 <= d2 {
		t.Fatalf("16 GB (%v) not slower than 2 GB (%v)", d16, d2)
	}
	// Sub-linear: 8× footprint must NOT be ≈8× time; expect <2×.
	if float64(d16)/float64(d2) > 2.0 {
		t.Fatalf("migration ∝ footprint: d2=%v d16=%v (zero-page compression missing?)", d2, d16)
	}
}

func TestMigrationRunningWorkloadIterates(t *testing.T) {
	// A running workload re-dirties its region, forcing extra precopy
	// rounds up to MaxIterations.
	r := newTestRig(t, false, 20)
	r.vm.Memory().AddRegion("hot", 2*hw.GB, 0.82, 1.5e9)
	// App NOT frozen: dirty accumulation active.
	stats := migrate(t, r, r.eth.Nodes[0])
	if stats.Iterations != DefaultParams().MaxIterations {
		t.Fatalf("iterations = %d, want MaxIterations=%d", stats.Iterations, DefaultParams().MaxIterations)
	}
	if stats.Downtime <= 0 {
		t.Fatal("expected non-zero stop-and-copy downtime")
	}
	// The uncoordinated migration's downtime must dwarf the coordinated
	// one's (which transfers nothing in stop-and-copy).
	if stats.Downtime < sim.Second {
		t.Fatalf("downtime = %v, expected seconds-scale for non-converging workload", stats.Downtime)
	}
}

func TestFrozenAppMinimalDowntime(t *testing.T) {
	r := newTestRig(t, false, 20)
	r.vm.Memory().AddRegion("hot", 2*hw.GB, 0.82, 1.5e9)
	r.vm.Guest().SetAppFrozen(true)
	stats := migrate(t, r, r.eth.Nodes[0])
	if stats.Downtime > 10*sim.Millisecond {
		t.Fatalf("downtime = %v, want ≈0 for frozen app", stats.Downtime)
	}
}

func TestSelfMigration(t *testing.T) {
	// Table II methodology: migrate to the same physical node.
	r := newTestRig(t, false, 20)
	src := r.ib.Nodes[0]
	stats := migrate(t, r, src)
	if r.vm.Node() != src {
		t.Fatal("self-migration moved the VM")
	}
	if src.MemoryUsed() != 20*hw.GB {
		t.Fatalf("self-migration corrupted memory accounting: %v", src.MemoryUsed())
	}
	if stats.Duration <= 0 {
		t.Fatal("self-migration should still take time (full protocol)")
	}
}

func TestConcurrentMigrationRefused(t *testing.T) {
	r := newTestRig(t, false, 20)
	r.k.Go("drive", func(p *sim.Proc) {
		fut, err := r.vm.Migrate(r.eth.Nodes[0])
		if err != nil {
			t.Errorf("first Migrate: %v", err)
			return
		}
		if _, err := r.vm.Migrate(r.eth.Nodes[1]); err != ErrMigrating {
			t.Errorf("second Migrate err = %v, want ErrMigrating", err)
		}
		fut.Wait(p)
	})
	r.k.Run()
}

func TestMigrationStatsRecorded(t *testing.T) {
	r := newTestRig(t, false, 20)
	migrate(t, r, r.eth.Nodes[0])
	migs := r.vm.Migrations()
	if len(migs) != 1 {
		t.Fatalf("recorded %d migrations, want 1", len(migs))
	}
	m := migs[0]
	if m.From != r.ib.Nodes[0].Name || m.To != r.eth.Nodes[0].Name {
		t.Fatalf("from/to = %s/%s", m.From, m.To)
	}
	if m.ScannedBytes < 20*hw.GB {
		t.Fatalf("scanned = %v, want ≥ guest RAM", m.ScannedBytes)
	}
	if m.WireBytes <= 0 || m.WireBytes >= 20*hw.GB {
		t.Fatalf("wire bytes = %v, want compressed (0, 20GB)", m.WireBytes)
	}
}

func TestRDMAMigrationFaster(t *testing.T) {
	// §V optimization: RDMA transport removes the 1.3 Gbps CPU cap.
	run := func(rdma bool) sim.Time {
		k := sim.NewKernel()
		tb := hw.NewTestbed(k)
		ib := tb.AddCluster("ib", 2, hw.AGCNodeSpec)
		params := DefaultParams()
		params.RDMAMigration = rdma
		vm, err := New(k, ib.Nodes[0], tb.Segment, Config{Name: "vm", VCPUs: 8, MemoryBytes: 20 * hw.GB}, params)
		if err != nil {
			t.Fatal(err)
		}
		vm.Memory().AddRegion("data", 8*hw.GB, 0.0, 0) // non-uniform: wire-bound
		vm.Guest().SetAppFrozen(true)
		var dur sim.Time
		k.Go("drive", func(p *sim.Proc) {
			fut, err := vm.Migrate(ib.Nodes[1])
			if err != nil {
				t.Errorf("Migrate: %v", err)
				return
			}
			dur = fut.Wait(p).Duration
		})
		k.Run()
		return dur
	}
	tcp, rdma := run(false), run(true)
	if float64(tcp)/float64(rdma) < 2 {
		t.Fatalf("RDMA migration (%v) not ≥2× faster than TCP (%v)", rdma, tcp)
	}
}

func TestComputeFollowsVMAcrossMigration(t *testing.T) {
	// Guest compute started before migration must complete on the new
	// host, and a stopped VM must not compute.
	r := newTestRig(t, false, 20)
	var finished sim.Time
	r.k.Go("work", func(p *sim.Proc) {
		r.vm.Compute(p, 200) // 200 core-seconds
		finished = p.Now()
	})
	r.k.Go("drive", func(p *sim.Proc) {
		p.Sleep(10 * sim.Second)
		fut, err := r.vm.Migrate(r.eth.Nodes[0])
		if err != nil {
			t.Errorf("Migrate: %v", err)
			return
		}
		fut.Wait(p)
	})
	r.k.Run()
	if finished <= 0 {
		t.Fatal("compute never finished")
	}
	if r.vm.Node() != r.eth.Nodes[0] {
		t.Fatal("VM did not move")
	}
}

func TestStopGateBlocksCompute(t *testing.T) {
	r := newTestRig(t, false, 20)
	r.vm.Stop()
	var finished sim.Time = -1
	r.k.Go("work", func(p *sim.Proc) {
		r.vm.Compute(p, 5)
		finished = p.Now()
	})
	r.k.Schedule(100*sim.Second, func() { r.vm.Cont() })
	r.k.Run()
	if finished < 100*sim.Second {
		t.Fatalf("compute finished at %v despite stopped VM", finished)
	}
}

func TestStateString(t *testing.T) {
	if Running.String() != "running" || Stopped.String() != "paused" {
		t.Fatal("State.String broken")
	}
}
