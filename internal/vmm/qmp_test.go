package vmm

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestQMPQueryStatus(t *testing.T) {
	r := newTestRig(t, false, 20)
	q := r.vm.QMP()
	out := q.ExecuteString(`{"execute":"query-status","id":7}`)
	var resp QMPResponse
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error != nil {
		t.Fatalf("error: %+v", resp.Error)
	}
	ret := resp.Return.(map[string]any)
	if ret["status"] != "running" || ret["running"] != true {
		t.Fatalf("ret = %v", ret)
	}
	if resp.ID != float64(7) {
		t.Fatalf("id echo = %v", resp.ID)
	}
}

func TestQMPStopCont(t *testing.T) {
	r := newTestRig(t, false, 20)
	q := r.vm.QMP()
	q.ExecuteString(`{"execute":"stop"}`)
	if r.vm.State() != Stopped {
		t.Fatal("stop did not stop")
	}
	q.ExecuteString(`{"execute":"cont"}`)
	if r.vm.State() != Running {
		t.Fatal("cont did not resume")
	}
}

func TestQMPDeviceDelAndEvent(t *testing.T) {
	r := newTestRig(t, true, 20)
	q := r.vm.QMP()
	out := q.ExecuteString(`{"execute":"device_del","arguments":{"id":"vf0"}}`)
	if strings.Contains(out, "error") {
		t.Fatalf("device_del: %s", out)
	}
	if len(q.Events()) != 0 {
		t.Fatal("event fired before the unplug completed")
	}
	r.k.Run() // let the hotplug finish
	evs := q.Events()
	if len(evs) != 1 || evs[0].Event != "DEVICE_DELETED" || evs[0].Data["device"] != "vf0" {
		t.Fatalf("events = %+v", evs)
	}
	if r.vm.Monitor().HasPassthrough() {
		t.Fatal("device still attached")
	}
}

func TestQMPDeviceDelUnknown(t *testing.T) {
	r := newTestRig(t, false, 20)
	out := r.vm.QMP().ExecuteString(`{"execute":"device_del","arguments":{"id":"nope"}}`)
	if !strings.Contains(out, "DeviceNotFound") {
		t.Fatalf("out = %s", out)
	}
}

func TestQMPDeviceAddRoundTrip(t *testing.T) {
	r := newTestRig(t, true, 20)
	q := r.vm.QMP()
	q.ExecuteString(`{"execute":"device_del","arguments":{"id":"vf0"}}`)
	r.k.Run()
	q.Events()
	out := q.ExecuteString(`{"execute":"device_add","arguments":{"driver":"vfio-pci","host":"04:00.0","id":"vf0"}}`)
	if strings.Contains(out, "error") {
		t.Fatalf("device_add: %s", out)
	}
	r.k.Run()
	evs := q.Events()
	if len(evs) != 1 || evs[0].Event != "NINJA_DEVICE_ADDED" {
		t.Fatalf("events = %+v", evs)
	}
	if !r.vm.Monitor().HasPassthrough() {
		t.Fatal("device not attached")
	}
}

func TestQMPQueryMigrate(t *testing.T) {
	r := newTestRig(t, false, 20)
	q := r.vm.QMP()
	out := q.ExecuteString(`{"execute":"query-migrate"}`)
	if !strings.Contains(out, `"status":"none"`) {
		t.Fatalf("pre-migration: %s", out)
	}
	migrate(t, r, r.eth.Nodes[0])
	out = q.ExecuteString(`{"execute":"query-migrate"}`)
	if !strings.Contains(out, `"status":"completed"`) {
		t.Fatalf("post-migration: %s", out)
	}
	var resp QMPResponse
	json.Unmarshal([]byte(out), &resp)
	ram := resp.Return.(map[string]any)["ram"].(map[string]any)
	if ram["transferred"].(float64) <= 0 {
		t.Fatalf("ram stats = %v", ram)
	}
}

func TestQMPBadJSONAndUnknownCommand(t *testing.T) {
	r := newTestRig(t, false, 20)
	q := r.vm.QMP()
	if out := q.ExecuteString(`{not json`); !strings.Contains(out, "GenericError") {
		t.Fatalf("bad json: %s", out)
	}
	if out := q.ExecuteString(`{"execute":"frobnicate"}`); !strings.Contains(out, "CommandNotFound") {
		t.Fatalf("unknown: %s", out)
	}
	if out := q.ExecuteString(`{"execute":"device_del","arguments":{}}`); !strings.Contains(out, "GenericError") {
		t.Fatalf("missing id: %s", out)
	}
}
