package vmm

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

func TestSaveRestoreCycle(t *testing.T) {
	r := newTestRig(t, false, 20)
	r.store.EnableIO(r.k, 1e9, 1e9) // 1 GB/s NFS server
	r.vm.Memory().AddRegion("data", 4*hw.GB, 0.5, 0)
	src, dst := r.ib.Nodes[0], r.eth.Nodes[0]
	var save, restore ColdStats
	r.k.Go("drive", func(p *sim.Proc) {
		var err error
		save, err = r.vm.SaveImage(p)
		if err != nil {
			t.Errorf("SaveImage: %v", err)
			return
		}
		if !r.vm.Saved() || r.vm.State() != Stopped {
			t.Error("VM not suspended after save")
		}
		if src.MemoryUsed() != 0 {
			t.Errorf("source memory not freed: %v", src.MemoryUsed())
		}
		restore, err = r.vm.RestoreOn(p, dst)
		if err != nil {
			t.Errorf("RestoreOn: %v", err)
			return
		}
	})
	r.k.Run()
	if r.vm.Node() != dst || r.vm.Saved() || r.vm.State() != Running {
		t.Fatal("VM not running on destination after restore")
	}
	if dst.MemoryUsed() != 20*hw.GB {
		t.Fatalf("destination memory = %v", dst.MemoryUsed())
	}
	// Image = OS 0.3 GB + 50% of 4 GiB non-uniform.
	wantImg := 0.3e9 + 2*hw.GB
	if save.ImageBytes != wantImg {
		t.Fatalf("image = %v, want %v", save.ImageBytes, wantImg)
	}
	// Save ≈ RAM scan (20 GiB / 0.62 GB/s ≈ 34.6 s) + write (≈2.4 s).
	if save.SaveTime < 30*sim.Second || save.SaveTime > 45*sim.Second {
		t.Fatalf("save took %v", save.SaveTime)
	}
	// Restore ≈ read + page-in, no full-RAM scan: much cheaper.
	if restore.RestoreTime >= save.SaveTime {
		t.Fatalf("restore (%v) not cheaper than save (%v)", restore.RestoreTime, save.SaveTime)
	}
}

func TestSaveRefusedWithPassthrough(t *testing.T) {
	r := newTestRig(t, true, 20)
	r.k.Go("drive", func(p *sim.Proc) {
		if _, err := r.vm.SaveImage(p); err != ErrHasPassthrough {
			t.Errorf("err = %v, want ErrHasPassthrough", err)
		}
	})
	r.k.Run()
}

func TestRestoreRequiresSave(t *testing.T) {
	r := newTestRig(t, false, 20)
	r.k.Go("drive", func(p *sim.Proc) {
		if _, err := r.vm.RestoreOn(p, r.eth.Nodes[0]); err != ErrNotSaved {
			t.Errorf("err = %v, want ErrNotSaved", err)
		}
	})
	r.k.Run()
}

func TestDoubleSaveRefused(t *testing.T) {
	r := newTestRig(t, false, 20)
	r.k.Go("drive", func(p *sim.Proc) {
		if _, err := r.vm.SaveImage(p); err != nil {
			t.Errorf("first save: %v", err)
			return
		}
		if _, err := r.vm.SaveImage(p); err != ErrAlreadySaved {
			t.Errorf("second save err = %v, want ErrAlreadySaved", err)
		}
	})
	r.k.Run()
}

func TestLiveMigrateRefusedWhileSaved(t *testing.T) {
	r := newTestRig(t, false, 20)
	r.k.Go("drive", func(p *sim.Proc) {
		if _, err := r.vm.SaveImage(p); err != nil {
			t.Errorf("save: %v", err)
			return
		}
		if _, err := r.vm.Migrate(r.eth.Nodes[0]); err != ErrAlreadySaved {
			t.Errorf("migrate err = %v, want ErrAlreadySaved", err)
		}
	})
	r.k.Run()
}

func TestRestoreRequiresMount(t *testing.T) {
	r := newTestRig(t, false, 20)
	r.store.Unmount(r.eth.Nodes[0])
	r.k.Go("drive", func(p *sim.Proc) {
		if _, err := r.vm.SaveImage(p); err != nil {
			t.Errorf("save: %v", err)
			return
		}
		if _, err := r.vm.RestoreOn(p, r.eth.Nodes[0]); err == nil {
			t.Error("restore on unmounted node should fail")
		}
		// Recovery path: restore somewhere that does mount it.
		if _, err := r.vm.RestoreOn(p, r.eth.Nodes[1]); err != nil {
			t.Errorf("restore on mounted node: %v", err)
		}
	})
	r.k.Run()
}

func TestComputeBlockedWhileSaved(t *testing.T) {
	r := newTestRig(t, false, 20)
	var done sim.Time
	r.k.Go("work", func(p *sim.Proc) {
		r.vm.Compute(p, 300) // spans the save: must stall while suspended
		done = p.Now()
	})
	var restoredAt sim.Time
	r.k.Go("drive", func(p *sim.Proc) {
		if _, err := r.vm.SaveImage(p); err != nil {
			t.Errorf("save: %v", err)
			return
		}
		p.Sleep(100 * sim.Second)
		if _, err := r.vm.RestoreOn(p, r.eth.Nodes[0]); err != nil {
			t.Errorf("restore: %v", err)
			return
		}
		restoredAt = p.Now()
	})
	r.k.Run()
	if done < restoredAt {
		t.Fatalf("compute finished at %v, before restore at %v", done, restoredAt)
	}
}

func TestConcurrentSavesShareNFS(t *testing.T) {
	// Two VMs saving at once share the store's write bandwidth: each
	// takes roughly twice as long as a lone save (for the write part).
	run := func(n int) sim.Time {
		r := newTestRig(t, false, 20)
		r.store.EnableIO(r.k, 0.5e9, 0.5e9)
		vms := []*VM{r.vm}
		if n == 2 {
			vm2, err := New(r.k, r.ib.Nodes[1], r.tb.Segment, Config{
				Name: "vm1", VCPUs: 8, MemoryBytes: 20 * hw.GB,
			}, DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			vm2.SetStorage(r.store)
			vms = append(vms, vm2)
		}
		for _, vm := range vms {
			vm.Memory().AddRegion("data", 8*hw.GB, 0, 0) // 8 GiB incompressible
		}
		start := r.k.Now()
		var last sim.Time
		for _, vm := range vms {
			vm := vm
			r.k.Go("save", func(p *sim.Proc) {
				if _, err := vm.SaveImage(p); err != nil {
					t.Errorf("save: %v", err)
				}
				last = p.Now() - start
			})
		}
		r.k.Run()
		return last
	}
	one, two := run(1), run(2)
	if float64(two) < float64(one)*1.2 {
		t.Fatalf("two concurrent saves (%v) should be slower than one (%v)", two, one)
	}
}
