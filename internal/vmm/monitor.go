package vmm

import (
	"errors"
	"fmt"

	"repro/internal/hw"
	"repro/internal/pci"
	"repro/internal/sim"
)

// Monitor is the VM's QMP-like control interface. SymVirt agents connect
// here and issue the same command vocabulary as the paper's Python agents:
// device_add, device_del, migrate, stop, cont, query-status.
type Monitor struct{ vm *VM }

// Monitor returns the VM's monitor interface.
func (vm *VM) Monitor() *Monitor { return &Monitor{vm: vm} }

// ErrNoSuchDevice is returned when a tag does not match any function.
var ErrNoSuchDevice = errors.New("vmm: no such device")

// VM returns the monitored VM.
func (m *Monitor) VM() *VM { return m.vm }

// QueryStatus returns the QMP run state string.
func (m *Monitor) QueryStatus() string { return m.vm.state.String() }

// Stop halts the vCPUs.
func (m *Monitor) Stop() { m.vm.Stop() }

// Cont resumes the vCPUs.
func (m *Monitor) Cont() { m.vm.Cont() }

// DeviceDel hot-unplugs the device with the given tag (e.g. "vf0"). The
// future resolves with the removed function once the guest has released it.
func (m *Monitor) DeviceDel(tag string) (*sim.Future[*pci.Function], error) {
	slot, _, ok := m.vm.bus.FindByTag(tag)
	if !ok {
		return nil, fmt.Errorf("%w: tag %q", ErrNoSuchDevice, tag)
	}
	return m.vm.bus.Remove(slot)
}

// DeviceAdd hot-plugs the host node's IB HCA into the VM under the given
// tag, using the host PCI ID supplied by the cloud scheduler (the paper's
// scripts pass e.g. host="04:00.0", tag="vf0").
func (m *Monitor) DeviceAdd(tag, hostID string) (*sim.Future[struct{}], error) {
	hca := m.vm.node.HCA
	if hca == nil {
		return nil, fmt.Errorf("%w: host %s has no HCA at %s", ErrNoSuchDevice, m.vm.node.Name, hostID)
	}
	return m.vm.bus.Add(HCASlot, m.vm.HCAFunction(hca, tag, hostID))
}

// HasPassthrough reports whether a VMM-bypass device is currently attached
// — the condition that makes live migration impossible (§I).
func (m *Monitor) HasPassthrough() bool {
	for _, slot := range m.vm.bus.Slots() {
		if m.vm.bus.At(slot).Class == pci.ClassIBHCA {
			return true
		}
	}
	return false
}

// Migrate starts a precopy live migration to dst and returns a future
// resolving with the migration statistics.
func (m *Monitor) Migrate(dst *hw.Node) (*sim.Future[MigrationStats], error) {
	return m.vm.Migrate(dst)
}

// MigrateTransparent starts an RDMA-native live migration to dst: the
// passthrough HCA stays attached and its QP state is replayed on the
// destination (no hotplug, no link training). resyncLimit ≤ 0 uses the
// VMM's default resync window.
func (m *Monitor) MigrateTransparent(dst *hw.Node, resyncLimit sim.Time) (*sim.Future[MigrationStats], error) {
	return m.vm.MigrateTransparent(dst, resyncLimit)
}
