package vmm

import (
	"errors"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/pci"
	"repro/internal/sim"
	"repro/internal/storage"
)

// State is the VM execution state.
type State int

const (
	// Running: vCPUs execute.
	Running State = iota
	// Stopped: vCPUs are halted (QMP "stop", or stop-and-copy downtime).
	Stopped
)

// String returns the QMP-style state name.
func (s State) String() string {
	if s == Stopped {
		return "paused"
	}
	return "running"
}

// Errors returned by VM operations.
var (
	ErrHasPassthrough = errors.New("vmm: cannot migrate with a passthrough device attached")
	ErrMigrating      = errors.New("vmm: migration already in progress")
	ErrNotStopped     = errors.New("vmm: VM not stopped")
)

// HCASlot is the bus slot Ninja scripts use for the passthrough HCA, and
// VNICSlot the slot of the para-virtualized NIC.
const (
	HCASlot  = "slot0"
	VNICSlot = "slot1"
)

// Config describes a VM to launch.
type Config struct {
	Name        string
	VCPUs       int
	MemoryBytes float64
	// ComputeQuantum is the preemption granularity of guest compute work
	// (how often a compute loop checks the VM run gate). Defaults to one
	// core-second.
	ComputeQuantum float64
}

// VM is one QEMU/KVM-like virtual machine.
type VM struct {
	k      *sim.Kernel
	cfg    Config
	params Params

	node  *hw.Node
	bus   *pci.Bus
	mem   *Memory
	guest *Guest
	vnic  *fabric.NIC
	store *storage.NFS

	state     State
	runCond   *sim.Cond
	migActive bool
	noiseOn   bool
	saved     bool
	migs      []MigrationStats
	qmp       *QMP
	faults    *FaultHooks
}

// New launches a VM on node with its guest RAM reserved, a virtio vNIC
// bridged through the node's physical NIC, and (optionally, via AttachBootHCA)
// the node's IB HCA passed through. The guest boots instantly at simulated
// time; boot cost is irrelevant to the paper's experiments.
func New(k *sim.Kernel, node *hw.Node, seg *fabric.EthSegment, cfg Config, params Params) (*VM, error) {
	if cfg.VCPUs <= 0 {
		return nil, fmt.Errorf("vmm: VM %q with %d vCPUs", cfg.Name, cfg.VCPUs)
	}
	if cfg.ComputeQuantum <= 0 {
		cfg.ComputeQuantum = 1
	}
	if err := node.AllocMemory(cfg.MemoryBytes); err != nil {
		return nil, err
	}
	vm := &VM{
		k:       k,
		cfg:     cfg,
		params:  params,
		node:    node,
		bus:     pci.NewBus(k, cfg.Name+"/pci"),
		mem:     NewMemory(cfg.MemoryBytes, params.OSResidentBytes),
		runCond: sim.NewCond(k),
		state:   Running,
	}
	vm.bus.Slowdown = func() float64 {
		if vm.migActive || vm.noiseOn {
			return vm.params.HotplugNoiseFactor
		}
		return 1
	}
	vm.guest = newGuest(vm)
	vm.bus.SetListener(vm.guest)

	// Every paper VM has a virtio_net device for the TCP/IP path.
	vm.vnic = seg.NewVirtioNIC(cfg.Name+"/virtio0", params.VirtioBandwidth, params.VirtioCPUCostPerByte)
	vm.vnic.SetUplink(node.NIC)
	vnicFn := &pci.Function{
		Name:       "virtio-net0",
		Class:      pci.ClassVirtioNet,
		Payload:    vm.vnic,
		HostAttach: params.VirtioHostAttach,
		HostDetach: params.VirtioHostDetach,
	}
	vm.bootAttach(VNICSlot, vnicFn)
	return vm, nil
}

// bootAttach places a function into a slot as part of the machine's boot
// configuration: no hotplug latency, no driver reset (the device was
// initialized during boot, links already trained by the host).
func (vm *VM) bootAttach(slot string, fn *pci.Function) {
	if err := vm.bus.Insert(slot, fn); err != nil {
		panic(fmt.Sprintf("vmm: boot attach %s: %v", slot, err))
	}
	vm.guest.bootBind(fn)
}

// AttachBootHCA passes the host node's IB HCA through to the guest as part
// of the boot configuration (pre-trained: no 30 s link-up at t=0).
func (vm *VM) AttachBootHCA() error {
	if vm.node.HCA == nil {
		return fmt.Errorf("vmm: node %s has no HCA", vm.node.Name)
	}
	vm.bootAttach(HCASlot, vm.HCAFunction(vm.node.HCA, "vf0", "04:00.0"))
	return nil
}

// HCAFunction wraps a host HCA as a pluggable PCI function with the
// calibrated VFIO attach/detach costs.
func (vm *VM) HCAFunction(hca *fabric.HCA, tag, hostID string) *pci.Function {
	return &pci.Function{
		Name:       tag,
		Class:      pci.ClassIBHCA,
		HostID:     hostID,
		Payload:    hca,
		HostAttach: vm.params.IBHostAttach,
		HostDetach: vm.params.IBHostDetach,
	}
}

// Name returns the VM name.
func (vm *VM) Name() string { return vm.cfg.Name }

// Node returns the host node the VM currently runs on.
func (vm *VM) Node() *hw.Node { return vm.node }

// Bus returns the guest PCI bus.
func (vm *VM) Bus() *pci.Bus { return vm.bus }

// Memory returns the guest RAM model.
func (vm *VM) Memory() *Memory { return vm.mem }

// Guest returns the guest OS.
func (vm *VM) Guest() *Guest { return vm.guest }

// VNIC returns the guest's virtio NIC.
func (vm *VM) VNIC() *fabric.NIC { return vm.vnic }

// Params returns the VMM cost model.
func (vm *VM) Params() Params { return vm.params }

// Kernel returns the simulation kernel.
func (vm *VM) Kernel() *sim.Kernel { return vm.k }

// SetStorage attaches the shared store backing the VM image.
func (vm *VM) SetStorage(s *storage.NFS) { vm.store = s }

// State returns the execution state.
func (vm *VM) State() State { return vm.state }

// Migrating reports whether a live migration is in flight.
func (vm *VM) Migrating() bool { return vm.migActive }

// SetHotplugNoise forces the migration-noise slowdown onto hotplug work
// even outside the precopy window. Ninja migration sets it for the whole
// fallback/recovery sequence of a cross-node migration, reproducing the
// ≈3× hotplug inflation of Fig. 6 (destination QEMU warm-up and
// post-migration page faulting keep interfering with ACPI processing).
func (vm *VM) SetHotplugNoise(on bool) { vm.noiseOn = on }

// Migrations returns stats of completed migrations, oldest first.
func (vm *VM) Migrations() []MigrationStats { return vm.migs }

// Stop halts the vCPUs (QMP "stop").
func (vm *VM) Stop() { vm.state = Stopped }

// Cont resumes the vCPUs (QMP "cont").
func (vm *VM) Cont() {
	vm.state = Running
	vm.runCond.Broadcast()
}

// WaitRunnable blocks the calling guest process while the VM is stopped.
func (vm *VM) WaitRunnable(p *sim.Proc) {
	for vm.state == Stopped {
		vm.runCond.Wait(p)
	}
}

// Compute executes coreSeconds of single-threaded guest CPU work on the
// VM's current host, respecting CPU contention (processor sharing with
// other vCPUs, vhost threads and migration threads), the VM run gate, and
// host changes mid-computation (the work follows the VM across migration).
func (vm *VM) Compute(p *sim.Proc, coreSeconds float64) {
	q := vm.cfg.ComputeQuantum
	for coreSeconds > 1e-12 {
		vm.WaitRunnable(p)
		chunk := coreSeconds
		if chunk > q {
			chunk = q
		}
		vm.node.CPU.Serve(p, chunk)
		coreSeconds -= chunk
	}
}

// HostCPU returns the current host node's CPU resource (for charging
// datapath work such as vhost).
func (vm *VM) HostCPU() *sim.PS { return vm.node.CPU }
