package vmm

import (
	"errors"
	"fmt"

	"repro/internal/hw"
	"repro/internal/sim"
)

// Cold migration (checkpoint/restart through the shared store) backs the
// paper's proactive fault-tolerance use case (§II-A: "we can restart VMs
// on an Ethernet cluster from checkpointed VM images on an Infiniband
// cluster"). The VM image is a qcow2-internal snapshot (§IV-A: "The VM
// image was created using the qcow2 format which enabled us to make
// snapshots internally"); uniform pages compress, so the image holds only
// the non-uniform resident data.

// Errors for the checkpoint/restart path.
var (
	ErrNotSaved     = errors.New("vmm: VM has no saved image")
	ErrAlreadySaved = errors.New("vmm: VM already suspended to image")
	ErrNoStorage    = errors.New("vmm: VM has no shared store attached")
)

// ColdStats records one suspend-to-disk / restore cycle.
type ColdStats struct {
	From, To    string
	ImageBytes  float64
	SaveTime    sim.Time
	RestoreTime sim.Time
}

// ImageBytes returns the current size of a memory snapshot: the OS
// resident set plus each region's non-uniform fraction (uniform pages
// compress in qcow2 exactly as they do on the migration wire).
func (vm *VM) ImageBytes() float64 {
	img := vm.mem.OSBytes()
	for _, r := range vm.mem.Regions() {
		img += r.Bytes * (1 - r.Uniformity)
	}
	return img
}

// Saved reports whether the VM is currently suspended to an image.
func (vm *VM) Saved() bool { return vm.saved }

// SaveImage suspends the VM to the shared store ("savevm"): the vCPUs
// stop, the memory snapshot is written at the store's (shared) write
// bandwidth, and the host's memory reservation is released. Like live
// migration, it refuses while a VMM-bypass device is attached.
func (vm *VM) SaveImage(p *sim.Proc) (ColdStats, error) {
	var st ColdStats
	if vm.saved {
		return st, ErrAlreadySaved
	}
	if vm.migActive {
		return st, ErrMigrating
	}
	if vm.Monitor().HasPassthrough() {
		return st, ErrHasPassthrough
	}
	if vm.store == nil {
		return st, ErrNoStorage
	}
	start := p.Now()
	wasRunning := vm.state == Running
	vm.Stop()
	st.From = vm.node.Name
	st.ImageBytes = vm.ImageBytes()
	// The snapshot writer walks guest RAM like the migration thread...
	vm.node.CPU.Serve(p, vm.mem.TotalBytes()/vm.params.ScanRate)
	// ...and streams the non-uniform pages to the store.
	if err := vm.store.Write(p, st.ImageBytes); err != nil {
		// Rollback in place: the guest memory is intact, so the VM simply
		// resumes on its current node with nothing saved.
		if wasRunning {
			vm.Cont()
		}
		return st, fmt.Errorf("vmm: savevm %s: %w", vm.Name(), err)
	}
	vm.node.FreeMemory(vm.cfg.MemoryBytes)
	vm.saved = true
	st.SaveTime = p.Now() - start
	return st, nil
}

// RestoreOn resumes a saved VM on dst ("loadvm" in a fresh QEMU): memory
// is re-reserved, the image is read back at the store's bandwidth, the
// virtio backend re-bridges, and the vCPUs continue. The guest observes
// nothing but a pause — the same property live migration provides, at
// disk cost instead of wire cost.
func (vm *VM) RestoreOn(p *sim.Proc, dst *hw.Node) (ColdStats, error) {
	var st ColdStats
	if !vm.saved {
		return st, ErrNotSaved
	}
	if !vm.store.MountedOn(dst) {
		return st, fmt.Errorf("vmm: restore %s: store %s not mounted on %s",
			vm.Name(), vm.store.Name, dst.Name)
	}
	if err := dst.AllocMemory(vm.cfg.MemoryBytes); err != nil {
		return st, fmt.Errorf("vmm: restore %s: %w", vm.Name(), err)
	}
	start := p.Now()
	st.From, st.To = vm.node.Name, dst.Name
	st.ImageBytes = vm.ImageBytes()
	if err := vm.store.Read(p, st.ImageBytes); err != nil {
		// The image is still on the store; release the reservation and
		// leave the VM suspended so a retry (possibly elsewhere) works.
		dst.FreeMemory(vm.cfg.MemoryBytes)
		return st, fmt.Errorf("vmm: loadvm %s: %w", vm.Name(), err)
	}
	dst.CPU.Serve(p, st.ImageBytes/vm.params.ScanRate) // page-in & fixups
	vm.vnic.SetUplink(dst.NIC)
	vm.node = dst
	vm.saved = false
	vm.Cont()
	st.RestoreTime = p.Now() - start
	return st, nil
}
