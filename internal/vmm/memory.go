package vmm

import (
	"fmt"
	"sort"
)

// Memory is an aggregate model of guest RAM, tracked as workload-declared
// regions rather than individual pages. Each region records how much of it
// holds uniform (compressible) data and how fast the workload re-dirties
// it; the migration engine derives scan and wire costs from this.
type Memory struct {
	totalBytes float64
	osBytes    float64 // guest OS resident set, non-uniform
	regions    map[string]*Region
}

// Region is a workload-visible slice of guest RAM.
type Region struct {
	Name  string
	Bytes float64
	// Uniformity is the fraction of the region's pages holding uniform
	// data (all bytes equal), which the VMM compresses on the wire.
	// memtest's pattern arrays are mostly uniform; NPB arrays are not.
	Uniformity float64
	// DirtyRate is bytes/sec the workload re-dirties while the VM runs.
	DirtyRate float64

	dirty bool // needs (re)transmission in the current migration
}

// NewMemory returns guest RAM of the given size with the OS resident set
// already "touched" (non-uniform).
func NewMemory(totalBytes, osBytes float64) *Memory {
	if osBytes > totalBytes {
		panic("vmm: OS resident set exceeds guest RAM")
	}
	return &Memory{
		totalBytes: totalBytes,
		osBytes:    osBytes,
		regions:    make(map[string]*Region),
	}
}

// TotalBytes returns the guest RAM size.
func (m *Memory) TotalBytes() float64 { return m.totalBytes }

// OSBytes returns the OS resident set size.
func (m *Memory) OSBytes() float64 { return m.osBytes }

// AddRegion declares a workload region. It fails if the region would not
// fit in guest RAM alongside the OS and existing regions.
func (m *Memory) AddRegion(name string, bytes, uniformity, dirtyRate float64) (*Region, error) {
	if _, dup := m.regions[name]; dup {
		return nil, fmt.Errorf("vmm: duplicate memory region %q", name)
	}
	if uniformity < 0 || uniformity > 1 {
		return nil, fmt.Errorf("vmm: region %q uniformity %v outside [0,1]", name, uniformity)
	}
	used := m.osBytes
	for _, r := range m.regions {
		used += r.Bytes
	}
	if used+bytes > m.totalBytes {
		return nil, fmt.Errorf("vmm: region %q (%.0f B) exceeds guest RAM (%.0f of %.0f used)",
			name, bytes, used, m.totalBytes)
	}
	r := &Region{Name: name, Bytes: bytes, Uniformity: uniformity, DirtyRate: dirtyRate}
	m.regions[name] = r
	return r, nil
}

// Region returns a declared region by name.
func (m *Memory) Region(name string) (*Region, bool) {
	r, ok := m.regions[name]
	return r, ok
}

// RemoveRegion drops a region (workload freed its arrays).
func (m *Memory) RemoveRegion(name string) { delete(m.regions, name) }

// Regions returns the declared regions sorted by name (deterministic).
func (m *Memory) Regions() []*Region {
	out := make([]*Region, 0, len(m.regions))
	for _, r := range m.regions {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FootprintBytes returns the workload footprint (regions, excluding OS).
func (m *Memory) FootprintBytes() float64 {
	var f float64
	for _, r := range m.regions {
		f += r.Bytes
	}
	return f
}

// TouchedBytes returns all resident data (OS + regions).
func (m *Memory) TouchedBytes() float64 { return m.osBytes + m.FootprintBytes() }

// UntouchedBytes returns never-written guest RAM (true zero pages).
func (m *Memory) UntouchedBytes() float64 { return m.totalBytes - m.TouchedBytes() }

// passCosts describes one precopy pass: how many bytes must be scanned and
// how many go on the wire uncompressed vs compressed.
type passCosts struct {
	scanBytes       float64 // RAM walked (full RAM on pass 1, dirty set after)
	wireBytes       float64 // uncompressed page payloads
	uniformPages    float64 // pages sent as compressed markers
	transferedBytes float64 // logical guest bytes covered by this pass
}

// firstPassCosts covers the whole of guest RAM: everything is scanned;
// untouched RAM and uniform region pages compress, the rest travels whole.
func (m *Memory) firstPassCosts(pageBytes float64) passCosts {
	c := passCosts{scanBytes: m.totalBytes, transferedBytes: m.totalBytes}
	c.wireBytes = m.osBytes
	uniformBytes := m.UntouchedBytes()
	for _, r := range m.regions {
		c.wireBytes += r.Bytes * (1 - r.Uniformity)
		uniformBytes += r.Bytes * r.Uniformity
		r.dirty = false
	}
	c.uniformPages = uniformBytes / pageBytes
	return c
}

// dirtyPassCosts covers only regions re-dirtied since the previous pass.
func (m *Memory) dirtyPassCosts(pageBytes float64) passCosts {
	var c passCosts
	for _, r := range m.regions {
		if !r.dirty {
			continue
		}
		c.scanBytes += r.Bytes
		c.transferedBytes += r.Bytes
		c.wireBytes += r.Bytes * (1 - r.Uniformity)
		c.uniformPages += r.Bytes * r.Uniformity / pageBytes
		r.dirty = false
	}
	return c
}

// accumulateDirty marks regions dirtied while a pass of the given duration
// ran, for a workload that is still executing. running=false leaves all
// regions clean (the Ninja case: the app is frozen in SymVirt wait).
func (m *Memory) accumulateDirty(passSeconds float64, running bool) {
	if !running {
		return
	}
	for _, r := range m.regions {
		if r.DirtyRate > 0 && passSeconds*r.DirtyRate > 0 {
			r.dirty = true
		}
	}
}

// dirtyBytes returns the byte total of currently-dirty regions.
func (m *Memory) dirtyBytes() float64 {
	var d float64
	for _, r := range m.regions {
		if r.dirty {
			d += r.Bytes
		}
	}
	return d
}
