package vmm

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/pci"
	"repro/internal/sim"
)

// Guest models the guest operating system: the acpiphp hotplug driver, the
// mlx4-like IB driver and the virtio-net driver. It is the layer SymVirt's
// gray-box approach cooperates with.
type Guest struct {
	vm *VM

	ib  *fabric.HCA // bound IB device, nil when detached
	eth *fabric.NIC // bound virtio NIC

	// appFrozen is set while the application is blocked in SymVirt wait;
	// a frozen application dirties no memory, which is what makes Ninja
	// migration's single-pass transfer possible.
	appFrozen bool
}

// SetAppFrozen marks the application frozen/unfrozen (SymVirt wait/signal).
func (g *Guest) SetAppFrozen(frozen bool) { g.appFrozen = frozen }

// AppFrozen reports whether the application is frozen in SymVirt wait.
func (g *Guest) AppFrozen() bool { return g.appFrozen }

func newGuest(vm *VM) *Guest { return &Guest{vm: vm} }

// bootBind binds a cold-plugged device without reset: the device was
// initialized at boot, so a passthrough HCA keeps its trained link.
func (g *Guest) bootBind(fn *pci.Function) {
	switch fn.Class {
	case pci.ClassIBHCA:
		g.ib = fn.Payload.(*fabric.HCA)
	case pci.ClassVirtioNet:
		g.eth = fn.Payload.(*fabric.NIC)
		g.eth.SetUp(true)
	}
}

// DeviceAdded implements pci.Listener: the acpiphp driver probes a
// hot-plugged device. For an IB HCA the mlx4 driver resets the adapter,
// which drops the physical link into Polling — the origin of the ≈30 s
// link-up cost the paper measures whenever the destination has InfiniBand.
func (g *Guest) DeviceAdded(p *sim.Proc, b *pci.Bus, slot string, fn *pci.Function) {
	switch fn.Class {
	case pci.ClassIBHCA:
		b.SleepScaled(p, g.vm.params.IBProbeTime)
		hca := fn.Payload.(*fabric.HCA)
		if g.vm.params.IBPrewarmedAttach && hca.State() == fabric.PortActive {
			// Optimized handoff (§V): adopt the host-trained link without
			// a reset — no 30 s re-training.
			g.ib = hca
			return
		}
		if hca.State() != fabric.PortDown {
			hca.PowerOff() // driver reset drops the link
		}
		hca.PowerOn() // training starts; WaitIBLinkup observes Active
		g.ib = hca
	case pci.ClassVirtioNet:
		b.SleepScaled(p, g.vm.params.VirtioProbeTime)
		nic := fn.Payload.(*fabric.NIC)
		nic.SetUp(true)
		g.eth = nic
	}
}

// DeviceRemoveRequested implements pci.Listener: the guest releases the
// device. For an IB HCA this destroys all queue pairs — which is why the
// MPI layer must have released its InfiniBand resources first (the
// pre-checkpoint phase of the paper's CRCP coordination).
func (g *Guest) DeviceRemoveRequested(p *sim.Proc, b *pci.Bus, slot string, fn *pci.Function) {
	switch fn.Class {
	case pci.ClassIBHCA:
		b.SleepScaled(p, g.vm.params.IBUnbindTime)
		hca := fn.Payload.(*fabric.HCA)
		hca.PowerOff()
		if g.ib == hca {
			g.ib = nil
		}
	case pci.ClassVirtioNet:
		b.SleepScaled(p, g.vm.params.VirtioUnbindTime)
		nic := fn.Payload.(*fabric.NIC)
		nic.SetUp(false)
		if g.eth == nic {
			g.eth = nil
		}
	}
}

// IBDevice returns the bound IB HCA, if any.
func (g *Guest) IBDevice() (*fabric.HCA, bool) { return g.ib, g.ib != nil }

// IBUsable reports whether an IB device is bound and its link is Active.
func (g *Guest) IBUsable() bool {
	return g.ib != nil && g.ib.State() == fabric.PortActive
}

// EthDevice returns the bound virtio NIC, if any.
func (g *Guest) EthDevice() (*fabric.NIC, bool) { return g.eth, g.eth != nil }

// WaitIBLinkup blocks until the bound IB device's port is Active — the
// "confirm linkup" step in Fig. 4. It returns an error if no IB device is
// bound or it is powered down.
func (g *Guest) WaitIBLinkup(p *sim.Proc) error {
	if g.ib == nil {
		return fmt.Errorf("vmm: %s: no IB device bound", g.vm.Name())
	}
	return g.ib.WaitActive(p)
}

// WaitIBLinkupTimeout is WaitIBLinkup with a simulated-time bound: a port
// stuck in Polling past d surfaces as fabric.ErrTrainingTimeout instead of
// blocking the orchestration forever. d <= 0 waits unbounded.
func (g *Guest) WaitIBLinkupTimeout(p *sim.Proc, d sim.Time) error {
	if g.ib == nil {
		return fmt.Errorf("vmm: %s: no IB device bound", g.vm.Name())
	}
	return g.ib.WaitActiveTimeout(p, d)
}

// AbandonIB drops the guest's IB binding without touching the device: the
// orchestrator's degradation path after a link-up timeout. With no bound
// HCA, IBUsable() is false and BTL reconstruction selects the tcp path —
// the job proceeds over Ethernet instead of rolling back.
func (g *Guest) AbandonIB() { g.ib = nil }
