package vmm

import (
	"errors"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/pci"
	"repro/internal/sim"
	"repro/internal/storage"
)

// MigrationStats records one completed live migration.
type MigrationStats struct {
	From, To   string
	Start      sim.Time
	Duration   sim.Time
	Downtime   sim.Time
	Iterations int
	// ScannedBytes is guest RAM walked by the migration thread.
	ScannedBytes float64
	// WireBytes is what actually crossed the network (after zero-page
	// compression).
	WireBytes float64
	// LogicalBytes is the guest data covered (pre-compression).
	LogicalBytes float64
	// Err is non-nil when the migration aborted mid-flight (injected
	// socket drop, destination failure): the VM stayed on the source and
	// kept running.
	Err error
	// RDMA is the QP checkpoint/replay leg of a transparent (RDMA-native)
	// migration; nil for the classic hotplug path.
	RDMA *RDMAStats
}

// RDMAStats records the QP checkpoint/replay leg of an RDMA-native
// migration: the snapshot shipped with the VM and the bounded resync that
// replaces link training on the destination.
type RDMAStats struct {
	// QPs is the number of queue pairs replayed onto the destination HCA.
	QPs int
	// SnapshotBytes is the encoded QPSnapshot size carried in the
	// migration stream.
	SnapshotBytes int
	// Resync is the destination-side resync span (≪ the ≈30 s training).
	Resync sim.Time
	// Demoted reports that the replay failed and the VM fell back to the
	// hotplug rung on the destination (driver reset + full link training).
	Demoted bool
	// DemoteReason is the replay error that forced the demotion.
	DemoteReason string
}

// Migrate starts a precopy live migration of the VM to dst. It returns an
// error immediately if the preconditions fail:
//
//   - a VMM-bypass (passthrough) device is still attached — QEMU refuses,
//     which is the core problem Ninja migration solves by detaching first;
//   - another migration is in flight;
//   - dst lacks memory for the guest;
//   - source and destination do not share the image store.
//
// dst == current node performs a self-migration (the paper's Table II
// methodology): the full protocol runs with a loopback transport.
func (vm *VM) Migrate(dst *hw.Node) (*sim.Future[MigrationStats], error) {
	if vm.migActive {
		return nil, ErrMigrating
	}
	if vm.saved {
		return nil, ErrAlreadySaved
	}
	if vm.Monitor().HasPassthrough() {
		return nil, ErrHasPassthrough
	}
	src := vm.node
	if dst != src {
		if dst.Failed() {
			return nil, fmt.Errorf("vmm: migrate %s: destination %s is down", vm.Name(), dst.Name)
		}
		if vm.store != nil && !vm.store.SharedBy(src, dst) {
			return nil, storage.ErrNotShared
		}
		if err := dst.AllocMemory(vm.cfg.MemoryBytes); err != nil {
			return nil, fmt.Errorf("vmm: migrate %s: %w", vm.Name(), err)
		}
	}
	vm.migActive = true
	fut := sim.NewFuture[MigrationStats](vm.k)
	vm.k.Go(vm.Name()+"/migration", func(p *sim.Proc) {
		stats := vm.runMigration(p, src, dst, false, 0)
		vm.migActive = false
		vm.migs = append(vm.migs, stats)
		fut.Set(stats)
	})
	return fut, nil
}

// ErrNoRDMAPath reports that a transparent migration was requested but the
// RDMA-native preconditions do not hold: the guest must own a passthrough
// HCA and the destination node must have one too.
var ErrNoRDMAPath = errors.New("vmm: rdma-native migration needs a passthrough HCA on source and destination")

// MigrateTransparent starts an RDMA-native live migration to dst: the
// passthrough HCA stays attached (no DEVICE_DELETED, no hotplug), the
// guest's queue pairs are quiesced and snapshotted at the precopy
// stop-point, and the snapshot is replayed onto the destination HCA with a
// short bounded resync instead of full link training (MigrOS-style).
// resyncLimit bounds the resync (≤0 uses Params.RDMAResyncTimeout); a
// failed replay demotes the VM to the hotplug rung on the destination —
// recorded in MigrationStats.RDMA, never an error.
//
// Unlike Migrate, an attached passthrough device is required rather than
// forbidden; the remaining preconditions are identical.
func (vm *VM) MigrateTransparent(dst *hw.Node, resyncLimit sim.Time) (*sim.Future[MigrationStats], error) {
	if vm.migActive {
		return nil, ErrMigrating
	}
	if vm.saved {
		return nil, ErrAlreadySaved
	}
	src := vm.node
	if vm.guest.ib == nil || (dst != src && dst.HCA == nil) {
		return nil, fmt.Errorf("%w: %s -> %s", ErrNoRDMAPath, vm.Name(), dst.Name)
	}
	if dst != src {
		if dst.Failed() {
			return nil, fmt.Errorf("vmm: migrate %s: destination %s is down", vm.Name(), dst.Name)
		}
		if vm.store != nil && !vm.store.SharedBy(src, dst) {
			return nil, storage.ErrNotShared
		}
		if err := dst.AllocMemory(vm.cfg.MemoryBytes); err != nil {
			return nil, fmt.Errorf("vmm: migrate %s: %w", vm.Name(), err)
		}
	}
	vm.migActive = true
	fut := sim.NewFuture[MigrationStats](vm.k)
	vm.k.Go(vm.Name()+"/migration", func(p *sim.Proc) {
		stats := vm.runMigration(p, src, dst, true, resyncLimit)
		vm.migActive = false
		vm.migs = append(vm.migs, stats)
		fut.Set(stats)
	})
	return fut, nil
}

// rates returns the effective scan and wire rates given the optimization
// knobs (§V: RDMA transport, multi-threaded migration).
func (vm *VM) rates() (scanRate, netRate float64) {
	threads := vm.params.MigrationThreads
	if threads < 1 {
		threads = 1
	}
	scanRate = vm.params.ScanRate * float64(threads)
	netRate = vm.params.NetRate * float64(threads)
	if vm.params.RDMAMigration {
		// RDMA removes the per-core copy bottleneck: the wire itself is
		// the limit, and registration-based scanning is ~4× faster.
		scanRate = vm.params.ScanRate * 4
		netRate = 0 // uncapped: link speed governs
	}
	return scanRate, netRate
}

func (vm *VM) runMigration(p *sim.Proc, src, dst *hw.Node, transparent bool, resyncLimit sim.Time) MigrationStats {
	stats := MigrationStats{From: src.Name, To: dst.Name, Start: p.Now()}
	params := vm.params
	scanRate, netRate := vm.rates()

	var wirePath []*fabric.Link
	if dst != src {
		// The migration stream rides the management Ethernet, including
		// any WAN trunks between data centers (where concurrent
		// migrations contend — the §V scalability concern).
		wirePath = fabric.Path(src.NIC.Adapter(), dst.NIC.Adapter())
	}
	net := src.NIC.Segment().Network()

	p.Sleep(params.MigrationSetup)

	onePass := func(c passCosts) {
		// The single migration thread alternates between walking RAM
		// (CPU-bound) and pushing page data (wire/CPU-bound), so the two
		// costs are additive.
		if c.scanBytes > 0 {
			src.CPU.Serve(p, c.scanBytes/scanRate)
		}
		wire := c.wireBytes + c.uniformPages*params.UniformPageWireBytes
		if wire > 0 {
			net.Transfer(p, wirePath, wire, netRate)
		}
		stats.ScannedBytes += c.scanBytes
		stats.WireBytes += wire
		stats.LogicalBytes += c.transferedBytes
	}

	appRunning := func() bool { return vm.state == Running && !vm.guest.appFrozen }

	costs := vm.mem.firstPassCosts(params.PageBytes)
	for {
		stats.Iterations++
		if h := vm.faults; h != nil && h.MigrationPass != nil {
			if err := h.MigrationPass(vm, stats.Iterations); err != nil {
				// Mid-round abort: the destination QEMU dies with the
				// socket; the source VM never stopped, so it just keeps
				// running. Release the destination reservation.
				if dst != src {
					dst.FreeMemory(vm.cfg.MemoryBytes)
				}
				stats.Err = fmt.Errorf("vmm: migrate %s pass %d: %w", vm.Name(), stats.Iterations, err)
				stats.Duration = p.Now() - stats.Start
				return stats
			}
		}
		passStart := p.Now()
		onePass(costs)
		vm.mem.accumulateDirty((p.Now() - passStart).Seconds(), appRunning())

		dirty := vm.mem.dirtyBytes()
		estDowntime := sim.FromSeconds(dirty / netRateOrWire(netRate, src))
		if dirty <= 0 || estDowntime <= params.DowntimeLimit ||
			stats.Iterations >= params.MaxIterations {
			break
		}
		costs = vm.mem.dirtyPassCosts(params.PageBytes)
	}

	// Stop-and-copy: halt the vCPUs, drain the remaining dirty set,
	// switch hosts, resume.
	downStart := p.Now()
	wasRunning := vm.state == Running
	vm.Stop()
	if final := vm.mem.dirtyPassCosts(params.PageBytes); final.scanBytes > 0 {
		onePass(final)
	}
	if transparent {
		// QPs are quiescent now (vCPUs halted, application parked): capture
		// the transport state and replay it on the destination HCA.
		stats.RDMA = vm.replayQPs(p, src, dst, resyncLimit)
	}
	vm.switchHost(src, dst)
	if wasRunning {
		vm.Cont()
	}
	stats.Downtime = p.Now() - downStart
	stats.Duration = p.Now() - stats.Start
	return stats
}

// netRateOrWire returns the effective drain rate used for the downtime
// estimate: the capped rate, or the physical NIC speed when uncapped.
func netRateOrWire(netRate float64, src *hw.Node) float64 {
	if netRate > 0 {
		return netRate
	}
	return src.NIC.Adapter().UpLink().Bandwidth
}

// replayQPs performs the QP checkpoint/replay leg of a transparent
// migration at the stop-and-copy point: snapshot the source HCA's queue
// pairs, ship the encoded snapshot in the migration stream, and replay it
// onto the destination HCA with a bounded resync. Any failure demotes the
// VM to the hotplug rung on the destination — driver reset plus full link
// training — instead of failing the migration.
func (vm *VM) replayQPs(p *sim.Proc, src, dst *hw.Node, limit sim.Time) *RDMAStats {
	rs := &RDMAStats{}
	g := vm.guest
	srcHCA := g.ib
	dstHCA := dst.HCA
	if dst == src {
		dstHCA = srcHCA
	}
	if limit <= 0 {
		limit = vm.params.RDMAResyncTimeout
	}
	rebind := func(h *fabric.HCA) {
		if fn := vm.bus.At(HCASlot); fn != nil && fn.Class == pci.ClassIBHCA {
			fn.Payload = h
		}
		g.ib = h
	}
	demote := func(err error) *RDMAStats {
		rs.Demoted = true
		rs.DemoteReason = err.Error()
		// Hotplug rung on the destination: the guest driver resets the
		// destination adapter and the link trains from scratch (the ≈30 s
		// the native path was meant to avoid; observed in the link-up span
		// because the application stays parked until the port is Active).
		if dstHCA.State() != fabric.PortDown {
			dstHCA.PowerOff()
		}
		dstHCA.PowerOn()
		rebind(dstHCA)
		return rs
	}
	snap, err := srcHCA.SnapshotQPs()
	if err != nil {
		return demote(err)
	}
	wire := snap.Encode()
	rs.SnapshotBytes = len(wire)
	// Decode on the destination side, exercising the portable encoding
	// end to end exactly as the real migration stream would.
	decoded, err := fabric.DecodeQPSnapshot(wire)
	if err != nil {
		srcHCA.DiscardQPs(snap)
		return demote(err)
	}
	before := p.Now()
	err = dstHCA.RestoreQPs(p, srcHCA, decoded, limit)
	rs.Resync = p.Now() - before
	if err != nil {
		// The VM still leaves the source, so its QP state there is dead.
		srcHCA.DiscardQPs(snap)
		return demote(err)
	}
	rs.QPs = len(decoded.QPs)
	rebind(dstHCA)
	return rs
}

// switchHost moves the VM's residency: host memory accounting, the virtio
// backend bridge, and the node pointer. The guest's IP is preserved (one
// L2 segment spans the enclosure), exactly as in the paper's testbed.
func (vm *VM) switchHost(src, dst *hw.Node) {
	if src == dst {
		return
	}
	src.FreeMemory(vm.cfg.MemoryBytes)
	vm.vnic.SetUplink(dst.NIC)
	vm.node = dst
}
