package vmm

import (
	"testing"
	"testing/quick"
)

func TestMemoryRegionAccounting(t *testing.T) {
	m := NewMemory(20e9, 0.3e9)
	if m.UntouchedBytes() != 20e9-0.3e9 {
		t.Fatalf("UntouchedBytes = %v", m.UntouchedBytes())
	}
	r, err := m.AddRegion("array", 2e9, 0.8, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes != 2e9 {
		t.Fatalf("region bytes = %v", r.Bytes)
	}
	if m.FootprintBytes() != 2e9 {
		t.Fatalf("Footprint = %v", m.FootprintBytes())
	}
	if m.TouchedBytes() != 2.3e9 {
		t.Fatalf("Touched = %v", m.TouchedBytes())
	}
	if got, ok := m.Region("array"); !ok || got != r {
		t.Fatal("Region lookup failed")
	}
	m.RemoveRegion("array")
	if m.FootprintBytes() != 0 {
		t.Fatal("RemoveRegion did not free")
	}
}

func TestMemoryRegionOverflow(t *testing.T) {
	m := NewMemory(10e9, 0.3e9)
	if _, err := m.AddRegion("big", 9.8e9, 0, 0); err == nil {
		t.Fatal("expected overflow error")
	}
	if _, err := m.AddRegion("a", 5e9, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddRegion("b", 5e9, 0, 0); err == nil {
		t.Fatal("expected overflow on second region")
	}
}

func TestMemoryDuplicateRegion(t *testing.T) {
	m := NewMemory(10e9, 0)
	m.AddRegion("x", 1e9, 0, 0)
	if _, err := m.AddRegion("x", 1e9, 0, 0); err == nil {
		t.Fatal("expected duplicate error")
	}
}

func TestMemoryBadUniformity(t *testing.T) {
	m := NewMemory(10e9, 0)
	if _, err := m.AddRegion("x", 1e9, 1.5, 0); err == nil {
		t.Fatal("expected uniformity range error")
	}
	if _, err := m.AddRegion("y", 1e9, -0.1, 0); err == nil {
		t.Fatal("expected uniformity range error")
	}
}

func TestMemoryOSExceedsRAMPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMemory(1e9, 2e9)
}

func TestFirstPassCosts(t *testing.T) {
	m := NewMemory(20e9, 0.3e9)
	m.AddRegion("array", 2e9, 0.8, 1e9)
	c := m.firstPassCosts(4096)
	if c.scanBytes != 20e9 {
		t.Fatalf("scanBytes = %v, want whole RAM", c.scanBytes)
	}
	// wire: OS 0.3e9 + non-uniform 20% of 2e9 = 0.7e9
	if c.wireBytes != 0.7e9 {
		t.Fatalf("wireBytes = %v, want 0.7e9", c.wireBytes)
	}
	// uniform: untouched 17.7e9 + 80% of 2e9 = 19.3e9 → pages
	wantPages := 19.3e9 / 4096
	if c.uniformPages != wantPages {
		t.Fatalf("uniformPages = %v, want %v", c.uniformPages, wantPages)
	}
}

func TestDirtyAccumulationOnlyWhenRunning(t *testing.T) {
	m := NewMemory(20e9, 0.3e9)
	m.AddRegion("array", 2e9, 1.0, 1e9)
	m.firstPassCosts(4096) // clears dirty flags
	m.accumulateDirty(10, false)
	if m.dirtyBytes() != 0 {
		t.Fatal("frozen app dirtied memory")
	}
	m.accumulateDirty(10, true)
	if m.dirtyBytes() != 2e9 {
		t.Fatalf("dirtyBytes = %v, want 2e9", m.dirtyBytes())
	}
	c := m.dirtyPassCosts(4096)
	if c.scanBytes != 2e9 {
		t.Fatalf("dirty pass scan = %v", c.scanBytes)
	}
	if m.dirtyBytes() != 0 {
		t.Fatal("dirtyPassCosts should clear dirty flags")
	}
}

func TestZeroDirtyRateNeverDirties(t *testing.T) {
	m := NewMemory(20e9, 0)
	m.AddRegion("readonly", 2e9, 0, 0)
	m.firstPassCosts(4096)
	m.accumulateDirty(100, true)
	if m.dirtyBytes() != 0 {
		t.Fatal("zero-rate region dirtied")
	}
}

func TestRegionsSortedDeterministic(t *testing.T) {
	m := NewMemory(20e9, 0)
	m.AddRegion("zeta", 1e9, 0, 0)
	m.AddRegion("alpha", 1e9, 0, 0)
	rs := m.Regions()
	if len(rs) != 2 || rs[0].Name != "alpha" || rs[1].Name != "zeta" {
		t.Fatalf("Regions order: %v, %v", rs[0].Name, rs[1].Name)
	}
}

// Property: first-pass wire + uniform-page bytes always cover exactly the
// touched plus untouched memory (conservation of pages).
func TestPassCoverageProperty(t *testing.T) {
	f := func(footGB, uniPct uint8) bool {
		foot := float64(footGB%16+1) * 1e9
		uni := float64(uniPct%101) / 100
		m := NewMemory(20e9, 0.3e9)
		if _, err := m.AddRegion("r", foot, uni, 0); err != nil {
			return true // skip invalid
		}
		c := m.firstPassCosts(4096)
		covered := c.wireBytes + c.uniformPages*4096
		return approxFloat(covered, 20e9, 1e-6) && c.transferedBytes == 20e9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func approxFloat(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol*b
}
