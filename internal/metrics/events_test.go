package metrics

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestEventLogRecordAndQuery(t *testing.T) {
	now := sim.Time(0)
	l := NewEventLog(func() sim.Time { return now })

	now = 3 * sim.Second
	l.Record(EventFaultInjected, "migration", "vm00", "socket dropped")
	now = 5 * sim.Second
	l.Record(EventRetry, "migration", "vm00", "attempt 2")
	mark := l.Len()
	now = 8 * sim.Second
	l.Record(EventRetryOK, "migration", "vm00", "attempt 2 succeeded")

	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if got := l.Count(EventRetry); got != 1 {
		t.Fatalf("Count(retry) = %d, want 1", got)
	}
	since := l.Since(mark)
	if len(since) != 1 || since[0].Kind != EventRetryOK {
		t.Fatalf("Since(%d) = %+v, want the single retry-ok event", mark, since)
	}
	if since[0].At != 8*sim.Second {
		t.Fatalf("event stamped at %v, want 8s", since[0].At)
	}
	s := l.Events()[0].String()
	for _, want := range []string{"t=3.00s", string(EventFaultInjected), "vm00", "socket dropped"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
	if !strings.Contains(l.String(), "attempt 2 succeeded") {
		t.Fatalf("log String() missing last event: %q", l.String())
	}
}

func TestEventLogSetNotify(t *testing.T) {
	now := sim.Time(0)
	l := NewEventLog(func() sim.Time { return now })
	var seen []Event
	l.SetNotify(func(ev Event) { seen = append(seen, ev) })

	now = 2 * sim.Second
	l.Record(EventRetry, "migration", "vm01", "attempt 1")
	if len(seen) != 1 || seen[0].Kind != EventRetry || seen[0].At != 2*sim.Second {
		t.Fatalf("notify saw %+v, want the recorded retry event", seen)
	}
	// The log itself still accumulates — notify is a tap, not a redirect.
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
	l.SetNotify(nil)
	l.Record(EventRetryOK, "migration", "vm01", "attempt 1 succeeded")
	if len(seen) != 1 {
		t.Fatalf("notify fired after being cleared: %+v", seen)
	}
}
