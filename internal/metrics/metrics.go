// Package metrics provides small result-table and time-series containers
// with paper-style text rendering, shared by the experiment harness, the
// CLI tools and the benchmarks.
package metrics

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Table is a simple column-aligned results table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case sim.Time:
			row[i] = fmt.Sprintf("%.2f", v.Seconds())
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Series is a labelled time series (e.g. per-iteration elapsed times).
type Series struct {
	Label  string
	Points []Point
}

// Point is one sample.
type Point struct {
	X int
	Y sim.Time
}

// Add appends a sample.
func (s *Series) Add(x int, y sim.Time) { s.Points = append(s.Points, Point{x, y}) }

// Max returns the largest Y (zero for an empty series).
func (s *Series) Max() sim.Time {
	var m sim.Time
	for _, p := range s.Points {
		if p.Y > m {
			m = p.Y
		}
	}
	return m
}

// String renders "x y-seconds" lines.
func (s *Series) String() string {
	var b strings.Builder
	if s.Label != "" {
		fmt.Fprintf(&b, "# %s\n", s.Label)
	}
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%4d  %8.2f\n", p.X, p.Y.Seconds())
	}
	return b.String()
}

// Bars renders the series as a text bar chart with the given max width.
func (s *Series) Bars(width int) string {
	var b strings.Builder
	if s.Label != "" {
		fmt.Fprintf(&b, "# %s\n", s.Label)
	}
	max := s.Max()
	if max == 0 {
		max = 1
	}
	for _, p := range s.Points {
		n := int(float64(width) * float64(p.Y) / float64(max))
		fmt.Fprintf(&b, "%4d %8.2fs |%s\n", p.X, p.Y.Seconds(), strings.Repeat("█", n))
	}
	return b.String()
}
