package metrics

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// EventKind classifies an orchestration event. The robustness layer emits
// these from fault hooks, watchdogs and recovery decisions so experiments
// and tests can assert on *what happened*, not just on final timings.
type EventKind string

const (
	// EventFaultInjected: a fault plan fired one of its specs.
	EventFaultInjected EventKind = "fault-injected"
	// EventPhaseError: an orchestration phase attempt returned an error.
	EventPhaseError EventKind = "phase-error"
	// EventPhaseTimeout: a watchdog expired around a phase attempt.
	EventPhaseTimeout EventKind = "phase-timeout"
	// EventRetry: the orchestrator is about to re-attempt a phase or VM op.
	EventRetry EventKind = "retry"
	// EventRetryOK: a retried phase or VM operation succeeded.
	EventRetryOK EventKind = "retry-ok"
	// EventDegraded: the orchestrator abandoned InfiniBand for this VM and
	// let the MPI layer reconstruct over TCP.
	EventDegraded EventKind = "degraded-to-tcp"
	// EventRDMADemoted: the RDMA-native rung failed (preflight or QP
	// replay) and the run demoted to the hotplug rung.
	EventRDMADemoted EventKind = "rdma-demoted"
	// EventSpareUsed: a failed destination was replaced by a spare node.
	EventSpareUsed EventKind = "spare-node"
	// EventRollback: the script gave up and rolled the job back in place.
	EventRollback EventKind = "rolled-back"
	// EventBatch: the fleet executor launched one batch of concurrent
	// gang migrations.
	EventBatch EventKind = "batch"
	// EventReplan: the fleet planner reassigned a pending migration's
	// destinations (e.g. a planned destination node crashed before the
	// job's batch started).
	EventReplan EventKind = "replanned"
	// EventRequeue: the fleet executor put a rolled-back-in-place job into
	// a fresh batch for another attempt (bounded by the attempt budget).
	EventRequeue EventKind = "requeued"
	// EventDrain: a rolling-maintenance drain started or finished on one
	// node (the subject names the node).
	EventDrain EventKind = "drain"
	// EventReturnHome: an evacuate directive with ReturnHome observed the
	// source site restore (or gave up waiting) and acted on it.
	EventReturnHome EventKind = "return-home"
	// EventDeadlineMiss: a fleet directive finished after its deadline.
	EventDeadlineMiss EventKind = "deadline-miss"
	// EventSweepCell: a Monte Carlo sweep committed one cell's result
	// (subject is the cell label, detail the outcome). Cells are committed
	// in matrix enumeration order regardless of worker completion order,
	// so the trail is deterministic at any parallelism.
	EventSweepCell EventKind = "sweep-cell"
	// EventSweepRow: a sweep finished the last cell of one matrix row
	// (directive × fault-plan) and aggregated its distribution.
	EventSweepRow EventKind = "sweep-row"
)

// Event is one timestamped orchestration event. The JSON form is what the
// ninjad control plane streams over its /jobs/{id}/events endpoint.
type Event struct {
	At      sim.Time  `json:"at"`
	Kind    EventKind `json:"kind"`
	Phase   string    `json:"phase,omitempty"`   // orchestration phase ("detach", "migration", ...)
	Subject string    `json:"subject,omitempty"` // VM / node / device name, when applicable
	Detail  string    `json:"detail,omitempty"`
}

// String renders "t=12.00s detach retry vm00: ...".
func (e Event) String() string {
	s := fmt.Sprintf("t=%.2fs %-16s %s", e.At.Seconds(), e.Kind, e.Phase)
	if e.Subject != "" {
		s += " " + e.Subject
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// EventLog is an append-only, simulation-clocked event recorder.
type EventLog struct {
	now    func() sim.Time
	notify func(Event)
	events []Event
}

// NewEventLog creates a log stamped by the given clock (pass Kernel.Now).
func NewEventLog(now func() sim.Time) *EventLog {
	return &EventLog{now: now}
}

// SetNotify installs an observer called synchronously with every event as
// it is recorded (nil disables). The control-plane daemon uses this to
// stream a directive's trail live instead of waiting for the final report.
func (l *EventLog) SetNotify(fn func(Event)) { l.notify = fn }

// Record appends an event at the current simulated time.
func (l *EventLog) Record(kind EventKind, phase, subject, detail string) {
	ev := Event{At: l.now(), Kind: kind, Phase: phase, Subject: subject, Detail: detail}
	l.events = append(l.events, ev)
	if l.notify != nil {
		l.notify(ev)
	}
}

// Len returns the number of recorded events.
func (l *EventLog) Len() int { return len(l.events) }

// Events returns all recorded events (shared backing array; treat as
// read-only).
func (l *EventLog) Events() []Event { return l.events }

// Since returns the events recorded at or after index mark (use Len()
// before an operation to scope its events).
func (l *EventLog) Since(mark int) []Event {
	if mark < 0 {
		mark = 0
	}
	if mark > len(l.events) {
		mark = len(l.events)
	}
	return l.events[mark:]
}

// Count returns how many recorded events have the kind.
func (l *EventLog) Count(kind EventKind) int {
	n := 0
	for _, e := range l.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// String renders one event per line.
func (l *EventLog) String() string {
	var b strings.Builder
	for _, e := range l.events {
		b.WriteString(e.String())
		b.WriteString("\n")
	}
	return b.String()
}
