package metrics

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("T", "name", "seconds")
	tab.AddRow("alpha", 3*sim.Second)
	tab.AddRow("beta", 1.5)
	tab.AddRow("gamma", 42)
	out := tab.String()
	for _, want := range []string{"T\n", "name", "seconds", "alpha", "3.00", "beta", "1.50", "gamma", "42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + header + rule + 3 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableColumnAlignment(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("looooooong", "x")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines[0]) < len("looooooong") {
		t.Fatalf("header row not padded to column width: %q", lines[0])
	}
}

func TestSeries(t *testing.T) {
	s := Series{Label: "iters"}
	s.Add(1, 2*sim.Second)
	s.Add(2, 5*sim.Second)
	if s.Max() != 5*sim.Second {
		t.Fatalf("Max = %v", s.Max())
	}
	out := s.String()
	if !strings.Contains(out, "# iters") || !strings.Contains(out, "5.00") {
		t.Fatalf("series render:\n%s", out)
	}
	bars := s.Bars(10)
	if !strings.Contains(bars, "██████████") {
		t.Fatalf("max bar not full width:\n%s", bars)
	}
}

func TestEmptySeriesMax(t *testing.T) {
	var s Series
	if s.Max() != 0 {
		t.Fatal("empty series Max should be 0")
	}
	if s.Bars(10) == "" {
		// Bars on an empty series should still render (just no rows).
	}
}
