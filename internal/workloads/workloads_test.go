package workloads

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/vmm"
)

func newJob(t *testing.T, nVMs, ranksPerVM int) (*sim.Kernel, *mpi.Job) {
	t.Helper()
	k := sim.NewKernel()
	tb := hw.NewTestbed(k)
	ib := tb.AddCluster("ib", nVMs, hw.AGCNodeSpec)
	var vms []*vmm.VM
	for i := 0; i < nVMs; i++ {
		vm, err := vmm.New(k, ib.Nodes[i], tb.Segment, vmm.Config{
			Name: ib.Nodes[i].Name + "/vm", VCPUs: 8, MemoryBytes: 20 * hw.GB,
		}, vmm.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.AttachBootHCA(); err != nil {
			t.Fatal(err)
		}
		vms = append(vms, vm)
	}
	k.RunUntil(fabric.DefaultIBTrainingTime + sim.Second)
	job, err := mpi.NewJob(k, mpi.Config{VMs: vms, RanksPerVM: ranksPerVM})
	if err != nil {
		t.Fatal(err)
	}
	return k, job
}

func TestMemtestTiming(t *testing.T) {
	// 10 passes over 3 GB at 3 GB/s = 10 s of single-core writing.
	k, job := newJob(t, 2, 1)
	epoch := k.Now()
	mt := &Memtest{ArrayBytes: 3e9, Passes: 10}
	done, err := Run(job, mt)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !done.Done() {
		t.Fatal("memtest incomplete")
	}
	elapsed := (k.Now() - epoch).Seconds()
	if elapsed < 9.5 || elapsed > 10.5 {
		t.Fatalf("memtest took %.2fs, want ≈10s", elapsed)
	}
}

func TestMemtestInstallsRegions(t *testing.T) {
	_, job := newJob(t, 2, 1)
	mt := &Memtest{ArrayBytes: 2e9, Passes: 1}
	if err := mt.Install(job); err != nil {
		t.Fatal(err)
	}
	for _, vm := range job.VMs() {
		r, ok := vm.Memory().Region("memtest")
		if !ok {
			t.Fatalf("%s missing region", vm.Name())
		}
		if r.Uniformity != MemtestUniformity || r.Bytes != 2e9 {
			t.Fatalf("region = %+v", r)
		}
	}
	mt.Uninstall(job)
	if _, ok := job.VMs()[0].Memory().Region("memtest"); ok {
		t.Fatal("uninstall failed")
	}
}

func TestMemtestRegionTooBig(t *testing.T) {
	_, job := newJob(t, 1, 1)
	mt := &Memtest{ArrayBytes: 25 * hw.GB, Passes: 1} // > 20 GB guest
	if err := mt.Install(job); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestNPBPresets(t *testing.T) {
	for _, kn := range []string{"BT", "CG", "FT", "LU"} {
		b, err := NPBClassD(kn)
		if err != nil {
			t.Fatal(err)
		}
		if b.Iterations <= 0 || b.ComputePerIter <= 0 || b.FootprintPerVM <= 0 {
			t.Fatalf("%s preset incomplete: %+v", kn, b)
		}
	}
	if _, err := NPBClassD("XX"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	// Paper: footprints range 2.3–16 GB per VM.
	cg, _ := NPBClassD("CG")
	ft, _ := NPBClassD("FT")
	if cg.FootprintPerVM != 2.3e9 || ft.FootprintPerVM != 16e9 {
		t.Fatal("footprint endpoints drifted from the paper's 2.3–16 GB")
	}
}

func TestNPBRunsAllPatterns(t *testing.T) {
	for _, kn := range []string{"BT", "CG", "FT", "LU"} {
		k, job := newJob(t, 2, 2)
		b, err := NPBClassD(kn)
		if err != nil {
			t.Fatal(err)
		}
		b.Iterations = 3
		var steps int
		b.IterDone = func(step int, elapsed sim.Time) {
			steps++
			if elapsed <= 0 {
				t.Errorf("%s step %d elapsed %v", kn, step, elapsed)
			}
		}
		done, err := Run(job, b)
		if err != nil {
			t.Fatal(err)
		}
		k.Run()
		if !done.Done() {
			t.Fatalf("%s incomplete", kn)
		}
		if steps != 3 {
			t.Fatalf("%s recorded %d steps", kn, steps)
		}
	}
}

func TestBcastReduceSeries(t *testing.T) {
	k, job := newJob(t, 4, 1)
	var series []sim.Time
	br := &BcastReduce{
		BytesPerNode: 1e9,
		Steps:        5,
		StepDone:     func(step int, e sim.Time) { series = append(series, e) },
	}
	done, err := Run(job, br)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !done.Done() {
		t.Fatal("incomplete")
	}
	if len(series) != 5 {
		t.Fatalf("%d steps recorded", len(series))
	}
	// Steady state: steps should be nearly identical.
	for i := 1; i < len(series); i++ {
		ratio := float64(series[i]) / float64(series[0])
		if ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("step %d = %v deviates from step 0 = %v", i, series[i], series[0])
		}
	}
}

func TestBcastReduceBeforeStepHook(t *testing.T) {
	k, job := newJob(t, 2, 1)
	calls := 0
	br := &BcastReduce{
		BytesPerNode: 1e8,
		Steps:        3,
		BeforeStep:   func(p *sim.Proc, r *mpi.Rank, step int) { calls++ },
	}
	done, _ := Run(job, br)
	k.Run()
	if !done.Done() {
		t.Fatal("incomplete")
	}
	if calls != 3*job.Size() {
		t.Fatalf("BeforeStep called %d times, want %d", calls, 3*job.Size())
	}
}

func TestIMBPingPongLatencyAndBandwidth(t *testing.T) {
	k, job := newJob(t, 2, 1)
	bench := &IMB{Pattern: "pingpong", Sizes: []float64{64, 4e6}, Repetitions: 4}
	done, err := Run(job, bench)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !done.Done() {
		t.Fatal("incomplete")
	}
	if len(bench.Results) != 2 {
		t.Fatalf("%d results", len(bench.Results))
	}
	small, big := bench.Results[0], bench.Results[1]
	// Small messages are latency-bound near the IB verbs latency (≈2 µs).
	if small.AvgTime < sim.Microsecond || small.AvgTime > 10*sim.Microsecond {
		t.Fatalf("64B latency = %v, want ≈2µs", small.AvgTime)
	}
	// Large messages approach device bandwidth (3.2 GB/s).
	if big.Throughput < 2.5e9 {
		t.Fatalf("4MB throughput = %.2f GB/s, want ≈3.2", big.Throughput/1e9)
	}
}

func TestIMBAllPatternsComplete(t *testing.T) {
	for _, pat := range []string{"pingpong", "exchange", "allreduce", "bcast", "alltoall"} {
		k, job := newJob(t, 2, 2)
		bench := &IMB{Pattern: pat, Sizes: []float64{1024, 1e5}, Repetitions: 2}
		done, err := Run(job, bench)
		if err != nil {
			t.Fatalf("%s: %v", pat, err)
		}
		k.Run()
		if !done.Done() {
			t.Fatalf("%s incomplete", pat)
		}
		if len(bench.Results) != 2 {
			t.Fatalf("%s: %d results", pat, len(bench.Results))
		}
		for _, r := range bench.Results {
			if r.AvgTime <= 0 {
				t.Fatalf("%s: zero time for %v bytes", pat, r.Bytes)
			}
		}
	}
}

func TestIMBUnknownPattern(t *testing.T) {
	_, job := newJob(t, 2, 1)
	if err := (&IMB{Pattern: "nope"}).Install(job); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}

func TestIMBDefaultSizes(t *testing.T) {
	sizes := DefaultIMBSizes()
	if len(sizes) == 0 || sizes[0] != 64 || sizes[len(sizes)-1] < 1e6 {
		t.Fatalf("sizes = %v", sizes)
	}
}
